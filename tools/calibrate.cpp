// Calibration probe: prints per-packet cycle totals for the configurations
// the cost model is calibrated against (DESIGN.md §5). Not a benchmark —
// a development tool used to tune cost_model.h.
#include <cstdio>

#include "core/controller.h"
#include "tests/kernel/test_topo.h"

using namespace linuxfp;
using linuxfp::testing::RouterDut;

std::uint64_t cycles_for(RouterDut& dut, int prefix) {
  kern::CycleTrace t;
  dut.tx_eth1.clear();
  dut.kernel.rx(dut.eth0_ifindex(), dut.packet_to_prefix(prefix), t);
  return t.total();
}

int main() {
  double hz = kern::CostModel{}.cpu_hz;
  auto mpps = [&](std::uint64_t cycles) {
    return hz / static_cast<double>(cycles) / 1e6;
  };

  {  // Linux forwarding
    RouterDut dut;
    dut.add_prefixes(50);
    auto c = cycles_for(dut, 3);
    std::printf("linux fwd:        %6llu cycles  %.3f Mpps (target ~1.00)\n",
                (unsigned long long)c, mpps(c));
  }
  {  // LinuxFP XDP forwarding
    RouterDut dut;
    dut.add_prefixes(50);
    core::Controller ctl(dut.kernel);
    ctl.start();
    auto c = cycles_for(dut, 3);
    std::printf("lfp xdp fwd:      %6llu cycles  %.3f Mpps (target 1.768)\n",
                (unsigned long long)c, mpps(c));
  }
  {  // LinuxFP TC forwarding
    RouterDut dut;
    dut.add_prefixes(50);
    core::ControllerOptions o;
    o.hook = "tc";
    core::Controller ctl(dut.kernel, o);
    ctl.start();
    auto c = cycles_for(dut, 3);
    std::printf("lfp tc fwd:       %6llu cycles  %.3f Mpps (target 0.850)\n",
                (unsigned long long)c, mpps(c));
  }
  {  // LinuxFP XDP filtering (100 rules) + fwd
    RouterDut dut;
    dut.add_prefixes(50);
    for (int i = 0; i < 100; ++i) {
      dut.run("iptables -A FORWARD -s 10.77." + std::to_string(i) +
              ".0/24 -j DROP");
    }
    core::Controller ctl(dut.kernel);
    ctl.start();
    auto c = cycles_for(dut, 3);
    std::printf("lfp xdp filt+fwd: %6llu cycles  %.3f Mpps (target 1.183)\n",
                (unsigned long long)c, mpps(c));
    kern::CycleTrace t;
  }
  {  // Linux filtering (100 rules) + fwd
    RouterDut dut;
    dut.add_prefixes(50);
    for (int i = 0; i < 100; ++i) {
      dut.run("iptables -A FORWARD -s 10.77." + std::to_string(i) +
              ".0/24 -j DROP");
    }
    auto c = cycles_for(dut, 3);
    std::printf("linux filt+fwd:   %6llu cycles  %.3f Mpps (target ~0.60)\n",
                (unsigned long long)c, mpps(c));
  }
  {  // Bridge: slow vs fast
    kern::Kernel k("br");
    std::vector<net::Packet> sink;
    k.add_phys_dev("p1").set_phys_tx([&](net::Packet&& p) {
      sink.push_back(std::move(p));
    });
    k.add_phys_dev("p2").set_phys_tx([&](net::Packet&& p) {
      sink.push_back(std::move(p));
    });
    (void)kern::run_command(k, "brctl addbr br0");
    for (const char* d : {"p1", "p2", "br0"}) {
      (void)kern::run_command(k, std::string("ip link set ") + d + " up");
    }
    (void)kern::run_command(k, "brctl addif br0 p1");
    (void)kern::run_command(k, "brctl addif br0 p2");
    auto a = net::MacAddr::from_id(0xA), b = net::MacAddr::from_id(0xB);
    k.bridge_by_name("br0")->fdb_learn(a, 0, k.dev_by_name("p1")->ifindex(),
                                       k.now_ns());
    k.bridge_by_name("br0")->fdb_learn(b, 0, k.dev_by_name("p2")->ifindex(),
                                       k.now_ns());
    net::FlowKey f;
    f.src_ip = net::Ipv4Addr::parse("1.1.1.1").value();
    f.dst_ip = net::Ipv4Addr::parse("2.2.2.2").value();
    kern::CycleTrace slow;
    k.rx(k.dev_by_name("p1")->ifindex(), net::build_udp_packet(a, b, f, 64),
         slow);
    std::printf("linux bridge:     %6llu cycles  %.3f Mpps (target ~1.05)\n",
                (unsigned long long)slow.total(), mpps(slow.total()));

    core::ControllerOptions o;
    o.attach_bridge_ports = true;
    core::Controller ctl(k, o);
    ctl.start();
    kern::CycleTrace fast;
    k.rx(k.dev_by_name("p1")->ifindex(), net::build_udp_packet(a, b, f, 64),
         fast);
    std::printf("lfp xdp bridge:   %6llu cycles  %.3f Mpps (target 1.915)\n",
                (unsigned long long)fast.total(), mpps(fast.total()));
  }
  return 0;
}
