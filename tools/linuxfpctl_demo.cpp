// linuxfpctl demo: the operator-facing status surface over a live
// controller. Stands up a gateway with filtering, an ipset and an ipvs
// service, pushes some traffic, and prints `linuxfpctl show` output in both
// human and JSON forms.
#include <cstdio>

#include "core/status.h"
#include "sim/testbed.h"

using namespace linuxfp;

int main(int argc, char** argv) {
  bool json = argc > 1 && std::string(argv[1]) == "--json";

  sim::ScenarioConfig cfg;
  cfg.prefixes = 20;
  cfg.filter_rules = 40;
  cfg.use_ipset = true;
  cfg.accel = sim::Accel::kLinuxFpXdp;
  sim::LinuxTestbed dut(cfg);
  dut.run("ipvsadm -A -t 10.0.0.100:80 -s rr");
  dut.run("ipvsadm -a -t 10.0.0.100:80 -r 10.100.0.5:8080");

  for (int i = 0; i < 500; ++i) {
    dut.process(dut.forward_packet(i % 20, static_cast<std::uint16_t>(i)));
  }
  for (int i = 0; i < 20; ++i) {
    dut.process(dut.blacklisted_packet(i, 0));
  }

  if (json) {
    std::printf("%s\n", core::status_json(*dut.controller()).dump(2).c_str());
  } else {
    std::printf("%s", core::format_status(*dut.controller()).c_str());
  }
  return 0;
}
