// linuxfptrace demo: pwru-style per-packet tracing through the datapath.
// Replays single packets against a plain-Linux DUT and a LinuxFP-accelerated
// DUT with the trace ring enabled, then prints each packet's ordered
// (layer, stage, cycles) journey as JSON — the slow path's kernel stages,
// the eBPF program's helper calls, and the final verdict.
#include <cstdio>

#include "sim/testbed.h"

using namespace linuxfp;

namespace {

void show(const char* title, sim::LinuxTestbed& dut, net::Packet&& pkt) {
  dut.process(std::move(pkt));
  std::printf("\n--- %s ---\n%s\n", title,
              dut.latest_trace_json().dump(2).c_str());
}

}  // namespace

int main() {
  std::printf("linuxfptrace: per-packet datapath traces (pwru-style)\n");

  // Plain Linux: every packet walks the slow path.
  sim::ScenarioConfig slow_cfg;
  slow_cfg.prefixes = 20;
  sim::LinuxTestbed slow(slow_cfg);
  slow.enable_tracing(8);
  show("slow path: routed + forwarded", slow, slow.forward_packet(3, 7));

  // LinuxFP (XDP): the same traffic is handled by the synthesized program.
  sim::ScenarioConfig fast_cfg = slow_cfg;
  fast_cfg.accel = sim::Accel::kLinuxFpXdp;
  sim::LinuxTestbed fast(fast_cfg);
  fast.enable_tracing(8);
  show("fast path: XDP-forwarded", fast, fast.forward_packet(3, 7));

  // A destination with no installed route: the fast path's fib lookup
  // misses, the packet falls through to the slow path and is dropped there.
  show("fast->slow fallthrough: no route", fast, fast.forward_packet(40, 7));

  std::printf("\nring: %zu traces retained, %llu packets traced total\n",
              fast.trace_ring()->size(),
              static_cast<unsigned long long>(
                  fast.trace_ring()->packets_traced()));
  return 0;
}
