#!/usr/bin/env bash
# Tier-1 verification, twice: a plain RelWithDebInfo build and an ASan+UBSan
# build (-DLINUXFP_SANITIZE=ON). The sanitized pass exists mainly for the
# fault-injection suites: rollback/cleanup paths are where use-after-free and
# leaked-map bugs hide, and they only execute under injected failures.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 4)"

run_pass() {
  local build_dir="$1"; shift
  echo "=== ${build_dir}: configure ($*) ==="
  cmake -B "${build_dir}" -S . "$@"
  echo "=== ${build_dir}: build ==="
  cmake --build "${build_dir}" -j "${jobs}"
  echo "=== ${build_dir}: ctest ==="
  (cd "${build_dir}" && ctest --output-on-failure -j "${jobs}")
}

run_pass build
run_pass build-asan -DLINUXFP_SANITIZE=ON

echo "=== tier-1 OK (plain + sanitized) ==="

# --- JIT differential tier -------------------------------------------------
# The direct-threaded translator (DESIGN.md §14) must be bit-identical to
# the interpreter: run the differential oracle (JitDiff) plus every
# engine-parameterized suite with the JIT forced (the '/jit' TEST_P
# variants), in the plain and the ASan build -- the translator's fused
# handlers do raw packet/stack byte access, exactly where ASan bites.
echo "=== JIT differential tier (plain + ASan) ==="
(cd build && ctest --output-on-failure -j "${jobs}" -R 'JitDiff|/jit')
(cd build-asan && ctest --output-on-failure -j "${jobs}" -R 'JitDiff|/jit')
echo "JIT differential tier OK"

# --- TSan pass: the parallel engine's threads for real ---------------------
# The engine runs a worker pool + slow-path thread; its tests and the atomic
# metrics regression push real concurrency through the rings, the per-CPU
# VMs and the counter registry. ThreadSanitizer proves the lock-free
# structures' memory ordering, which ASan cannot see. The classifier suites
# ride along: engine workers evaluate netfilter (atomic rule hit counters +
# generation checks) concurrently with control-plane rebuilds.
echo "=== TSan: engine + metrics concurrency tests ==="
cmake -B build-tsan -S . -DLINUXFP_SANITIZE=thread
cmake --build build-tsan -j "${jobs}" --target engine_test util_test ebpf_test kernel_test core_test
(cd build-tsan &&
 ctest --output-on-failure -j "${jobs}" \
   -R 'Engine|BoundedRing|Rss|Steering|MetricsConcurrency|FlowCache|JitDiff|Tx|Gro|NfClassifier|ClassifierDiff|DeltaSynth')
echo "TSan pass OK"

# --- UBSan pass: guard + engine suites -------------------------------------
# A dedicated UBSan-only tier (-DLINUXFP_SANITIZE=undefined) for the runtime
# equivalence guard and the engine: the guard's cookie packing/bit-mixing and
# the watchdog's counter arithmetic are where shifts and conversions could
# silently invoke UB, and -fno-sanitize-recover makes any hit fatal.
echo "=== UBSan: guard + engine suites ==="
cmake -B build-ubsan -S . -DLINUXFP_SANITIZE=undefined
cmake --build build-ubsan -j "${jobs}" --target core_test engine_test kernel_test
(cd build-ubsan &&
 ctest --output-on-failure -j "${jobs}" \
   -R 'Guard|GuardFuzz|EngineWatchdog|Engine|BoundedRing|Rss|Steering|Tx|Gro|NfClassifier|ClassifierDiff|DeltaSynth')
echo "UBSan pass OK"

# --- bench smoke: every Reporter-wired bench must emit its BENCH_*.json ---
echo "=== bench smoke: BENCH_*.json emission ==="
(cd build/bench &&
 ./bench_fig5_router_tput --smoke >/dev/null &&
 test -s BENCH_fig5_router_tput.json &&
 ./bench_fig1_hotspots --smoke >/dev/null &&
 test -s BENCH_fig1_hotspots.json &&
 ./bench_scaling_queues --smoke >/dev/null &&
 test -s BENCH_scaling_queues.json &&
 test -s BENCH_steering.json &&
 ./bench_flowcache --smoke >/dev/null &&
 test -s BENCH_flowcache.json &&
 ./bench_guard --smoke >/dev/null &&
 test -s BENCH_guard.json &&
 ./bench_forwarding --smoke >/dev/null &&
 test -s BENCH_forwarding.json &&
 ./bench_ruleset_scale --smoke >/dev/null &&
 test -s BENCH_ruleset.json &&
 ./bench_table6_reaction --smoke >/dev/null &&
 test -s BENCH_reaction.json)
# The flowcache bench's headline fields must be present and sane: a real
# hit rate and the >= 1.5x steady-state speedup the cache exists for.
python3 - <<'EOF'
import json
doc = json.load(open("build/bench/BENCH_flowcache.json"))
hit_rate, speedup = doc["hit_rate"], doc["speedup"]
print(f"flowcache smoke: hit_rate={hit_rate:.3f} speedup={speedup:.2f}")
if not (0.5 <= hit_rate <= 1.0):
    raise SystemExit(f"flowcache hit_rate {hit_rate} out of range")
if speedup < 1.5:
    raise SystemExit(f"flowcache speedup {speedup} below 1.5x")

# Guard gates: 1-in-64 sampled shadowing must keep >=95% of unguarded
# throughput, and the injected-divergence lifecycle must have completed
# (quarantine reached, breaker closed again).
doc = json.load(open("build/bench/BENCH_guard.json"))
ratio = doc["overhead_ratio_1_in_64"]
reaction = doc["reaction"]
print(f"guard smoke: overhead_ratio={ratio:.3f} "
      f"detection={reaction['detection_packets']}pkts "
      f"recovery={reaction['recovery_ns']/1e3:.0f}us")
if ratio < 0.95:
    raise SystemExit(f"guard 1-in-64 overhead ratio {ratio} below 0.95")
if not (reaction["quarantined"] and reaction["recovered"]):
    raise SystemExit("guard reaction lifecycle incomplete")

# Steering gates (ISSUE 8): under the Zipf(1.2) single-elephant mix at 8
# queues, the adaptive rebalancer must beat static RSS by >= 1.5x and
# recover >= 3x over the 1-queue baseline.
doc = json.load(open("build/bench/BENCH_steering.json"))
shape = doc["shape_checks"]
on_off, recovery = shape["on_vs_off_8q"], shape["recovery_8q_vs_1q"]
print(f"steering smoke: on_vs_off_8q={on_off:.2f} "
      f"recovery_8q_vs_1q={recovery:.2f}")
if on_off < 1.5:
    raise SystemExit(f"adaptive steering {on_off:.2f}x over static below 1.5x")
if recovery < 3.0:
    raise SystemExit(f"steering recovery {recovery:.2f}x vs 1q below 3.0x")

# Forwarding gates (ISSUE 9): the closed-loop harness must conserve packets
# (out == in on every run) and show the two headline effects — xmit_more
# doorbell coalescing >= 1.3x on the TX-bound router, GRO >= 1.5x on the
# slow-path-bound TCP forwarder.
doc = json.load(open("build/bench/BENCH_forwarding.json"))
shape = doc["shape_checks"]
doorbell, gro = shape["doorbell_speedup"], shape["gro_speedup"]
print(f"forwarding smoke: doorbell_speedup={doorbell:.2f} "
      f"gro_speedup={gro:.2f} conserved={shape['packets_conserved']}")
if not shape["packets_conserved"]:
    raise SystemExit("forwarding loop lost packets (out != in)")
if doorbell < 1.3:
    raise SystemExit(f"doorbell coalescing {doorbell:.2f}x below 1.3x")
if gro < 1.5:
    raise SystemExit(f"GRO speedup {gro:.2f}x below 1.5x")

# Mega-ruleset gates (ISSUE 10): the compiled classifier must be >= 10x over
# the linear bpf_ipt_lookup scan at 10k rules while staying bit-exact
# (verdicts + per-rule hit counters), and delta synthesis must cut the
# event-storm reaction cost >= 5x (modeled clang/libbpf reaction time AND
# graph emissions) with a deployed FPM set identical to from-scratch.
doc = json.load(open("build/bench/BENCH_ruleset.json"))
speedup_10k, exact = doc["speedup_10k"], doc["exact"]
print(f"ruleset smoke: speedup_10k={speedup_10k:.1f} exact={exact}")
if speedup_10k < 10.0:
    raise SystemExit(f"classifier speedup {speedup_10k:.1f}x at 10k rules "
                     f"below 10x")
if not exact:
    raise SystemExit("classifier diverged from the linear scan")

doc = json.load(open("build/bench/BENCH_reaction.json"))
modeled = doc["storm_modeled_speedup"]
ratio = doc["storm_resynth_ratio"]
equivalent = doc["storm_equivalent"]
print(f"reaction storm smoke: modeled_speedup={modeled:.1f} "
      f"resynth_ratio={ratio:.1f} equivalent={equivalent}")
if modeled < 5.0:
    raise SystemExit(f"delta storm modeled speedup {modeled:.1f}x below 5x")
if ratio < 5.0:
    raise SystemExit(f"delta graph-emission ratio {ratio:.1f}x below 5x")
if not equivalent:
    raise SystemExit("delta deployed FPM set diverged from from-scratch")
EOF
echo "bench smoke OK"

# --- observability overhead guard -----------------------------------------
# The always-on counters must stay cheap: compare the metered forward-path
# microbenchmarks against their Bare (metrics-disabled) twins and fail when
# the metered run blows the ratio budget below. (The modeled-cycle budget is
# <2% — counters charge no simulated cycles at all; this guards the
# wall-clock cost of the substrate.)
echo "=== observability overhead guard ==="
# Repetitions + per-name minimum: scheduler interference on a shared single
# core only ever adds time, so the min is the steadiest estimator. The budget
# carries headroom for the interference that survives even that (whole
# repetition blocks slow down together on this box; the seed tree measures
# ratios up to ~1.45 with zero metering changes) — the guard is here to catch
# metering suddenly costing a multiple, not to resolve 10% swings.
build/bench/bench_micro_substrate \
  --benchmark_filter='BM_(Slow|Fast)PathForward(Bare)?$' \
  --benchmark_repetitions=5 \
  --benchmark_format=json > /tmp/overhead.json
python3 - <<'EOF'
import json
results = {}
for b in json.load(open("/tmp/overhead.json"))["benchmarks"]:
    if b.get("run_type") != "iteration":
        continue
    name, t = b["name"], b["cpu_time"]
    results[name] = min(results.get(name, t), t)
budget = 1.55
ok = True
for base in ("BM_SlowPathForward", "BM_FastPathForward"):
    metered, bare = results[base], results[base + "Bare"]
    ratio = metered / bare
    print(f"{base}: metered={metered:.0f}ns bare={bare:.0f}ns "
          f"ratio={ratio:.3f} (budget {budget})")
    if ratio > budget:
        ok = False
raise SystemExit(0 if ok else "observability overhead exceeds budget")
EOF
echo "overhead guard OK"

# --- interpreter ns/insn guard ---------------------------------------------
# The VM hot loop runs over the pre-decoded instruction array (operand
# selection and jump targets resolved at load time). Guard the raw per-insn
# interpretation cost so the decode stage can never silently regress back
# into the dispatch loop.
echo "=== interpreter ns/insn guard ==="
build/bench/bench_micro_substrate \
  --benchmark_filter='BM_VmNsPerInsn$' \
  --benchmark_format=json > /tmp/perinsn.json
python3 - <<'EOF'
import json
bench = json.load(open("/tmp/perinsn.json"))["benchmarks"][0]
ns_per_insn = 1e9 / bench["items_per_second"]
budget = 60.0
print(f"BM_VmNsPerInsn: {ns_per_insn:.2f} ns/insn (budget {budget})")
if ns_per_insn > budget:
    raise SystemExit(f"interpreter cost {ns_per_insn:.2f} ns/insn "
                     f"exceeds {budget} budget")
EOF
echo "ns/insn guard OK"

# --- JIT ns/insn guard + bench JSON ----------------------------------------
# The translator twin of the interpreter guard: the same 130-insn ALU kernel
# through the direct-threaded stream must stay within its own (much tighter)
# per-insn budget and must beat the interpreter -- cost-model cycles are
# charged identically by construction (the differential tier proves that),
# so this gate is purely about host dispatch speed.
echo "=== jit ns/insn guard ==="
build/bench/bench_micro_substrate \
  --benchmark_filter='BM_VmNsPerInsn(Jit)?$' \
  --benchmark_format=json > /tmp/perinsn_jit.json
python3 - <<'EOF'
import json
res = {}
for b in json.load(open("/tmp/perinsn_jit.json"))["benchmarks"]:
    if b.get("run_type", "iteration") == "iteration":
        res[b["name"]] = 1e9 / b["items_per_second"]
interp, jit = res["BM_VmNsPerInsn"], res["BM_VmNsPerInsnJit"]
speedup = interp / jit
budget = 12.0
print(f"BM_VmNsPerInsnJit: {jit:.2f} ns/insn (budget {budget}); "
      f"interpreter {interp:.2f} ns/insn; speedup {speedup:.2f}x")
json.dump({"interp_ns_per_insn": interp, "jit_ns_per_insn": jit,
           "speedup": speedup},
          open("build/bench/BENCH_vm_jit.json", "w"), indent=2)
if jit > budget:
    raise SystemExit(f"jit cost {jit:.2f} ns/insn exceeds {budget} budget")
if jit >= interp:
    raise SystemExit(f"jit ({jit:.2f} ns/insn) not faster than the "
                     f"interpreter ({interp:.2f} ns/insn)")
EOF
echo "jit guard OK"
