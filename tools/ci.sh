#!/usr/bin/env bash
# Tier-1 verification, twice: a plain RelWithDebInfo build and an ASan+UBSan
# build (-DLINUXFP_SANITIZE=ON). The sanitized pass exists mainly for the
# fault-injection suites: rollback/cleanup paths are where use-after-free and
# leaked-map bugs hide, and they only execute under injected failures.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 4)"

run_pass() {
  local build_dir="$1"; shift
  echo "=== ${build_dir}: configure ($*) ==="
  cmake -B "${build_dir}" -S . "$@"
  echo "=== ${build_dir}: build ==="
  cmake --build "${build_dir}" -j "${jobs}"
  echo "=== ${build_dir}: ctest ==="
  (cd "${build_dir}" && ctest --output-on-failure -j "${jobs}")
}

run_pass build
run_pass build-asan -DLINUXFP_SANITIZE=ON

echo "=== tier-1 OK (plain + sanitized) ==="
