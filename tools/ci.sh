#!/usr/bin/env bash
# Tier-1 verification, twice: a plain RelWithDebInfo build and an ASan+UBSan
# build (-DLINUXFP_SANITIZE=ON). The sanitized pass exists mainly for the
# fault-injection suites: rollback/cleanup paths are where use-after-free and
# leaked-map bugs hide, and they only execute under injected failures.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 4)"

run_pass() {
  local build_dir="$1"; shift
  echo "=== ${build_dir}: configure ($*) ==="
  cmake -B "${build_dir}" -S . "$@"
  echo "=== ${build_dir}: build ==="
  cmake --build "${build_dir}" -j "${jobs}"
  echo "=== ${build_dir}: ctest ==="
  (cd "${build_dir}" && ctest --output-on-failure -j "${jobs}")
}

run_pass build
run_pass build-asan -DLINUXFP_SANITIZE=ON

echo "=== tier-1 OK (plain + sanitized) ==="

# --- TSan pass: the parallel engine's threads for real ---------------------
# The engine runs a worker pool + slow-path thread; its tests and the atomic
# metrics regression push real concurrency through the rings, the per-CPU
# VMs and the counter registry. ThreadSanitizer proves the lock-free
# structures' memory ordering, which ASan cannot see.
echo "=== TSan: engine + metrics concurrency tests ==="
cmake -B build-tsan -S . -DLINUXFP_SANITIZE=thread
cmake --build build-tsan -j "${jobs}" --target engine_test util_test
(cd build-tsan &&
 ctest --output-on-failure -j "${jobs}" \
   -R 'Engine|BoundedRing|Rss|MetricsConcurrency')
echo "TSan pass OK"

# --- bench smoke: every Reporter-wired bench must emit its BENCH_*.json ---
echo "=== bench smoke: BENCH_*.json emission ==="
(cd build/bench &&
 ./bench_fig5_router_tput --smoke >/dev/null &&
 test -s BENCH_fig5_router_tput.json &&
 ./bench_fig1_hotspots --smoke >/dev/null &&
 test -s BENCH_fig1_hotspots.json &&
 ./bench_scaling_queues --smoke >/dev/null &&
 test -s BENCH_scaling_queues.json)
echo "bench smoke OK"

# --- observability overhead guard -----------------------------------------
# The always-on counters must stay cheap: compare the metered forward-path
# microbenchmarks against their Bare (metrics-disabled) twins and fail if
# the metered run is more than 35% slower in host time. (The modeled-cycle
# budget is <2% — counters charge no simulated cycles at all; this guards
# the wall-clock cost of the substrate.)
echo "=== observability overhead guard ==="
build/bench/bench_micro_substrate \
  --benchmark_filter='BM_(Slow|Fast)PathForward(Bare)?$' \
  --benchmark_format=json > /tmp/overhead.json
python3 - <<'EOF'
import json
results = {b["name"]: b["cpu_time"]
           for b in json.load(open("/tmp/overhead.json"))["benchmarks"]}
budget = 1.35
ok = True
for base in ("BM_SlowPathForward", "BM_FastPathForward"):
    metered, bare = results[base], results[base + "Bare"]
    ratio = metered / bare
    print(f"{base}: metered={metered:.0f}ns bare={bare:.0f}ns "
          f"ratio={ratio:.3f} (budget {budget})")
    if ratio > budget:
        ok = False
raise SystemExit(0 if ok else "observability overhead exceeds budget")
EOF
echo "overhead guard OK"
