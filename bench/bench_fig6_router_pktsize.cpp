// Figure 6: single-core virtual router throughput as a function of packet
// size. The shape claim: LinuxFP and Polycube reach near line rate (25 Gbps)
// at 1500 B with one core; Linux does not.
#include "bench/bench_util.h"

using namespace linuxfp;
using namespace linuxfp::bench;

int main() {
  print_header("Fig 6 — single-core router throughput vs packet size",
               "paper Fig 6: LinuxFP/Polycube near line rate (25G) at 1500B "
               "with one core");

  sim::ScenarioConfig linux_cfg;
  linux_cfg.prefixes = 50;
  sim::LinuxTestbed linux_dut(linux_cfg);
  sim::ScenarioConfig lfp_cfg = linux_cfg;
  lfp_cfg.accel = sim::Accel::kLinuxFpXdp;
  sim::LinuxTestbed lfp_dut(lfp_cfg);
  PolycubeScenario pcn(50);
  VppScenario vpp(50);

  sim::ThroughputRunner runner(25e9, 4000);
  const int flows = 256;

  std::vector<int> widths{8, 16, 16, 16, 16};
  print_row({"size", "Linux", "Polycube", "VPP", "LinuxFP"}, widths);
  print_row({"(B)", "Mpps / Gbps", "Mpps / Gbps", "Mpps / Gbps",
             "Mpps / Gbps"},
            widths);

  for (std::size_t size : {64, 128, 256, 512, 1024, 1500}) {
    auto cell = [&](const sim::ThroughputResult& r) {
      std::string s = fmt_mpps(r.total_pps) + " / " + fmt(r.total_bps / 1e9, 1);
      if (r.line_rate_limited) s += "*";
      return s;
    };
    auto linux_r = runner.run(
        linux_dut, forward_factory(linux_dut, 50, flows, size), 1, size);
    auto lfp_r =
        runner.run(lfp_dut, forward_factory(lfp_dut, 50, flows, size), 1, size);
    auto pcn_r = runner.run(
        *pcn.router,
        [&](std::uint64_t i) {
          return pcn.host->forward_packet(static_cast<int>(i % 50),
                                          static_cast<std::uint16_t>(i % flows),
                                          size);
        },
        1, size);
    auto vpp_r = runner.run(
        vpp.router,
        [&](std::uint64_t i) {
          return pcn.host->forward_packet(static_cast<int>(i % 50),
                                          static_cast<std::uint16_t>(i % flows),
                                          size);
        },
        1, size);
    print_row({std::to_string(size), cell(linux_r), cell(pcn_r), cell(vpp_r),
               cell(lfp_r)},
              widths);
  }
  std::printf("\n(*) line-rate limited at 25 Gbps incl. framing overhead\n");
  return 0;
}
