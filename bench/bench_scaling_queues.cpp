// Queue-scaling curve: aggregate fast-path throughput of the parallel
// datapath engine as rx queues (and worker threads) grow, on the virtual
// router scenario (50 prefixes, 64 B, XDP driver mode).
//
// The engine really runs RSS -> per-queue workers -> slow-path funnel on
// threads (engine/engine.h); sustained throughput is modeled from each
// queue's measured cycle cost (sim::QueueScalingRunner). Expected shape
// (EXPERIMENTS.md): near-linear scaling while verdicts settle in XDP,
// flattening once the single slow-path thread or line rate saturates. The
// second table shows the Zipf elephant-flow regime, where RSS pins the hot
// flow to one queue and extra workers stop helping.
//
// Emits BENCH_scaling_queues.json; --smoke trims samples for CI. Acceptance
// (ISSUE 4): >= 2.5x aggregate throughput at 4 queues vs 1.
#include <algorithm>

#include "bench/bench_util.h"

using namespace linuxfp;
using namespace linuxfp::bench;

int main(int argc, char** argv) {
  Reporter reporter("scaling_queues", argc, argv);

  print_header(
      "Engine queue scaling — router fast-path throughput vs rx queues",
      "paper §VI-A1 multi-core setup: RSS spreads flows over cores, each "
      "core polls its own queue (NAPI)");

  sim::ScenarioConfig cfg;
  cfg.prefixes = 50;
  cfg.accel = sim::Accel::kLinuxFpXdp;
  sim::LinuxTestbed dut(cfg);

  const std::uint64_t samples = reporter.smoke() ? 2000 : 8000;
  sim::QueueScalingRunner runner(25e9, samples);
  sim::FlowPattern uniform(50, 512, 64);
  auto factory = [&](std::uint64_t i) {
    auto [prefix, flow] = uniform.at(i);
    return dut.forward_packet(prefix, flow, uniform.frame_len());
  };

  std::vector<int> widths{8, 14, 12, 12, 16};
  print_row({"queues", "aggregate", "speedup", "fast-path", "limited by"},
            widths);
  print_row({"", "(Mpps)", "(vs 1q)", "fraction", ""}, widths);

  double base_pps = 0;
  double speedup_4q = 0;
  for (unsigned queues : {1u, 2u, 4u, 8u}) {
    auto r = runner.run(dut.kernel(), dut.ingress_ifindex(), factory, queues);
    if (queues == 1) base_pps = r.total_pps;
    double speedup = base_pps > 0 ? r.total_pps / base_pps : 0;
    if (queues == 4) speedup_4q = speedup;
    std::string limit = r.line_rate_limited   ? "line rate"
                        : r.slow_path_limited ? "slow path"
                                              : "cpu";
    print_row({std::to_string(queues), fmt_mpps(r.total_pps), fmt(speedup),
               fmt(r.fast_path_fraction), limit},
              widths);
    util::Json row = util::Json::object();
    row["queues"] = static_cast<int>(queues);
    row["total_pps"] = r.total_pps;
    row["speedup_vs_1q"] = speedup;
    row["fast_path_fraction"] = r.fast_path_fraction;
    row["mean_fast_cycles"] = r.mean_fast_cycles;
    row["line_rate_limited"] = r.line_rate_limited;
    row["slow_path_limited"] = r.slow_path_limited;
    reporter.add_row(row);
  }

  std::printf("\nshape checks:\n");
  std::printf("  4-queue speedup  = %.2fx   (acceptance: >= 2.5x)\n",
              speedup_4q);
  util::Json shape = util::Json::object();
  shape["speedup_4q_vs_1q"] = speedup_4q;
  shape["acceptance_min"] = 2.5;
  shape["pass"] = speedup_4q >= 2.5;
  reporter.set("shape_checks", shape);

  // Elephant-flow regime: Zipf(1.2) popularity concentrates traffic on a few
  // flows; RSS steers each flow to exactly one queue, so workers starve.
  print_header("Engine queue scaling — Zipf(1.2) elephant-flow skew",
               "queue imbalance: the hot flow pins one worker, siblings idle");
  sim::FlowPattern skewed(50, 512, 64, /*zipf_s=*/1.2);
  auto skew_factory = [&](std::uint64_t i) {
    auto [prefix, flow] = skewed.at(i);
    return dut.forward_packet(prefix, flow, skewed.frame_len());
  };
  print_row({"queues", "aggregate", "speedup", "hot queue", "ideal share"},
            widths);
    print_row({"", "(Mpps)", "(vs 1q)", "share", ""}, widths);
  double skew_base = 0;
  for (unsigned queues : {1u, 2u, 4u, 8u}) {
    auto r =
        runner.run(dut.kernel(), dut.ingress_ifindex(), skew_factory, queues);
    if (queues == 1) skew_base = r.total_pps;
    double hot_share = 0;
    for (double share : r.per_queue_share) hot_share = std::max(hot_share, share);
    print_row({std::to_string(queues), fmt_mpps(r.total_pps),
               fmt(skew_base > 0 ? r.total_pps / skew_base : 0), fmt(hot_share),
               fmt(1.0 / static_cast<double>(queues))},
              widths);
    util::Json row = util::Json::object();
    row["queues"] = static_cast<int>(queues);
    row["zipf_s"] = 1.2;
    row["total_pps"] = r.total_pps;
    row["hot_queue_share"] = hot_share;
    reporter.add_row(row);
  }

  // Zipf recovery: a true elephant mix — Zipf(1.2) concentrated over 16
  // flows, so the top flow alone carries ~1/3 of the traffic and static RSS
  // pins it (plus hash-colliding mice) to one queue. Adaptive steering
  // (DESIGN.md §15) — RETA rebalancing + RFS affinity + elephant spray —
  // must restore most of the lost scaling. Acceptance (ISSUE 8): adaptive
  // 8-queue >= 3x the 1-queue baseline, and >= 1.5x steering-off at 8
  // queues. Reported in its own BENCH_steering.json (scoped reporter); a
  // 100 Gbps runner keeps the 64 B line-rate cap out of the comparison.
  bool recovery_ok = false;
  {
    Reporter steering_reporter("steering", argc, argv);
    print_header(
        "Engine queue scaling — Zipf(1.2) elephant recovery via adaptive "
        "steering",
        "scaling.rst's RPS/RFS toolbox: rebalance buckets, pin flows, spray "
        "elephants");
    // One dst prefix: each zipf rank is ONE 5-tuple (the main tables cycle
    // 50 prefixes per rank, which dilutes the elephant across 50 tuples).
    sim::FlowPattern elephants(1, 16, 64, /*zipf_s=*/1.2);
    auto elephant_factory = [&](std::uint64_t i) {
      auto [prefix, flow] = elephants.at(i);
      return dut.forward_packet(prefix, flow, elephants.frame_len());
    };
    engine::SteeringConfig adaptive = engine::SteeringConfig::adaptive();
    adaptive.interval = 512;  // adapts even inside the smoke sample budget
    sim::QueueScalingRunner fat_runner(100e9, samples);

    print_row({"queues", "steering", "aggregate", "hot queue", "vs 1q"},
              widths);
    print_row({"", "", "(Mpps)", "share", ""}, widths);
    double recovery_base = 0, off_8q = 0, on_8q = 0;
    struct Case {
      unsigned queues;
      bool steering;
    };
    for (Case c : {Case{1, false}, Case{8, false}, Case{8, true}}) {
      auto r = fat_runner.run(dut.kernel(), dut.ingress_ifindex(),
                              elephant_factory, c.queues,
                              c.steering ? adaptive
                                         : engine::SteeringConfig{});
      if (c.queues == 1) recovery_base = r.total_pps;
      if (c.queues == 8 && !c.steering) off_8q = r.total_pps;
      if (c.queues == 8 && c.steering) on_8q = r.total_pps;
      double hot_share = 0;
      for (double share : r.per_queue_share) {
        hot_share = std::max(hot_share, share);
      }
      print_row({std::to_string(c.queues), c.steering ? "adaptive" : "off",
                 fmt_mpps(r.total_pps), fmt(hot_share),
                 fmt(recovery_base > 0 ? r.total_pps / recovery_base : 0)},
                widths);
      util::Json row = util::Json::object();
      row["queues"] = static_cast<int>(c.queues);
      row["zipf_s"] = 1.2;
      row["steering"] = c.steering;
      row["total_pps"] = r.total_pps;
      row["hot_queue_share"] = hot_share;
      steering_reporter.add_row(row);
    }

    double recovery_8q_vs_1q = recovery_base > 0 ? on_8q / recovery_base : 0;
    double on_vs_off_8q = off_8q > 0 ? on_8q / off_8q : 0;
    recovery_ok = recovery_8q_vs_1q >= 3.0 && on_vs_off_8q >= 1.5;
    std::printf("\nsteering shape checks:\n");
    std::printf(
        "  adaptive 8q vs 1q  = %.2fx   (acceptance: >= 3.0x; static 8q "
        "collapses toward 1x)\n",
        recovery_8q_vs_1q);
    std::printf("  adaptive vs static 8q = %.2fx   (guard: >= 1.5x)\n",
                on_vs_off_8q);
    util::Json sshape = util::Json::object();
    sshape["recovery_8q_vs_1q"] = recovery_8q_vs_1q;
    sshape["recovery_min"] = 3.0;
    sshape["on_vs_off_8q"] = on_vs_off_8q;
    sshape["on_vs_off_min"] = 1.5;
    sshape["pass"] = recovery_ok;
    steering_reporter.set("shape_checks", sshape);
  }

  return (speedup_4q >= 2.5 && recovery_ok) ? 0 : 1;
}
