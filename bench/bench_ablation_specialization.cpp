// Ablation: configuration-specialized synthesis (paper §IV-B1: "less code
// leads to more efficient code paths") vs a generic monolithic program that
// carries every feature branch whether configured or not.
//
// We sweep feature combinations and compare the synthesized minimal program
// against a maximal program synthesized as if every feature were on.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/synthesizer.h"

using namespace linuxfp;
using namespace linuxfp::bench;

namespace {
std::uint64_t measure(sim::LinuxTestbed& dut) {
  util::OnlineStats cycles;
  for (int i = 0; i < 1000; ++i) {
    auto out = dut.process(
        dut.forward_packet(i % 10, static_cast<std::uint16_t>(i % 128)));
    cycles.add(static_cast<double>(out.cycles));
  }
  return static_cast<std::uint64_t>(cycles.mean());
}
}  // namespace

int main() {
  print_header(
      "Ablation — configuration-specialized vs generic synthesis",
      "paper §IV-B: code not required by the current configuration is never "
      "generated (minimal critical path)");

  // Specialized: router only (no filtering configured).
  sim::ScenarioConfig minimal_cfg;
  minimal_cfg.prefixes = 10;
  minimal_cfg.accel = sim::Accel::kLinuxFpXdp;
  sim::LinuxTestbed minimal(minimal_cfg);

  // Same traffic, but the DUT carries filtering configuration it does not
  // need for this traffic (all-features program): filter node with port
  // parsing forced by a dport rule that never matches.
  sim::ScenarioConfig generic_cfg = minimal_cfg;
  generic_cfg.filter_rules = 0;
  sim::LinuxTestbed generic(generic_cfg);
  generic.run("iptables -A FORWARD -p tcp --dport 65000 -j DROP");
  generic.run("iptables -A FORWARD -s 172.31.0.0/16 -j DROP");

  auto minimal_cycles = measure(minimal);
  auto generic_cycles = measure(generic);

  // Program sizes from the deployed attachments.
  auto* min_att = minimal.controller()->deployer().attachment(
      "eth0", ebpf::HookType::kXdp);
  auto* gen_att = generic.controller()->deployer().attachment(
      "eth0", ebpf::HookType::kXdp);
  std::size_t min_insns =
      min_att->programs()[min_att->active_prog_id()].size();
  std::size_t gen_insns =
      gen_att->programs()[gen_att->active_prog_id()].size();

  print_row({"variant", "insns", "cycles/pkt", "Mpps"}, {30, 10, 14, 10});
  print_row({"specialized (router only)", std::to_string(min_insns),
             std::to_string(minimal_cycles),
             fmt_mpps(minimal.cpu_hz() / minimal_cycles)},
            {30, 10, 14, 10});
  print_row({"generic (filter branches in)", std::to_string(gen_insns),
             std::to_string(generic_cycles),
             fmt_mpps(generic.cpu_hz() / generic_cycles)},
            {30, 10, 14, 10});

  std::printf("\nshape check: the specialized program is smaller and faster; "
              "synthesis removes %zu instructions (%.0f%% cycle saving) that "
              "a generic pipeline would execute per packet.\n",
              gen_insns - min_insns,
              100.0 * (1.0 - double(minimal_cycles) / double(generic_cycles)));

  // Tail-call vs inline composition on the same graph (design decision 2).
  sim::ScenarioConfig tail_cfg = generic_cfg;
  tail_cfg.chain = core::ChainMode::kTailCalls;
  sim::LinuxTestbed tail(tail_cfg);
  tail.run("iptables -A FORWARD -p tcp --dport 65000 -j DROP");
  auto tail_cycles = measure(tail);
  std::printf("\ncomposition ablation (filter+router graph): inline %llu "
              "cycles/pkt vs tail-call %llu cycles/pkt (paper §VI-B: inlined "
              "function calls win)\n",
              (unsigned long long)generic_cycles,
              (unsigned long long)tail_cycles);
  return 0;
}
