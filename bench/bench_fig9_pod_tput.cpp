// Figure 9: pod-to-pod communication throughput (TCP_RR transactions/s) as
// a function of concurrently running pod pairs (1-10), intra- and
// inter-node. Shape claim: LinuxFP ~120% (intra) / ~116% (inter) of Linux.
#include <cstdio>

#include "bench/bench_util.h"
#include "k8s/cluster.h"
#include "k8s/latency_model.h"

using namespace linuxfp;
using namespace linuxfp::bench;

namespace {
// Transactions/s for p closed-loop pairs: each pair completes 1/RTT
// transactions per second; co-located pairs contend slightly for the node's
// softirq/CPU (mild sublinearity seen in the paper's curves).
double pairs_tps(double rtt_ms, int pairs) {
  double contention = 1.0 + 0.025 * (pairs - 1);
  return pairs * 1000.0 / (rtt_ms * contention);
}

struct PathMeasure {
  std::uint64_t cycles = 0;
  int crossings = 0;
};

PathMeasure measure_cycles(bool linuxfp, bool inter, int pairs) {
  k8s::Cluster cluster(2);
  if (linuxfp) cluster.enable_linuxfp();
  // Launch `pairs` pod pairs; measure the first pair (all equivalent).
  std::vector<std::pair<k8s::PodRef, k8s::PodRef>> refs;
  for (int i = 0; i < pairs; ++i) {
    auto c = cluster.launch_pod(1);
    auto s = cluster.launch_pod(inter ? 2 : 1);
    refs.emplace_back(c, s);
  }
  cluster.warm_path(refs[0].first, refs[0].second);
  auto rr = cluster.run_rr_transaction(refs[0].first, refs[0].second);
  return {rr.cycles, rr.underlay_crossings};
}
}  // namespace

int main() {
  print_header(
      "Fig 9 — pod-to-pod throughput vs #pod pairs (TCP_RR trans/s)",
      "paper Fig 9: LinuxFP = 120% of Linux (intra), 116% (inter)");

  k8s::PodLatencyModel model;

  PathMeasure li_m = measure_cycles(false, false, 1);
  PathMeasure fi_m = measure_cycles(true, false, 1);
  PathMeasure lr_m = measure_cycles(false, true, 1);
  PathMeasure fr_m = measure_cycles(true, true, 1);
  double li = model.mean_rtt_ms(li_m.cycles, li_m.crossings);
  double fi = model.mean_rtt_ms(fi_m.cycles, fi_m.crossings);
  double lr = model.mean_rtt_ms(lr_m.cycles, lr_m.crossings);
  double fr = model.mean_rtt_ms(fr_m.cycles, fr_m.crossings);

  std::vector<int> widths{8, 14, 14, 14, 14};
  print_row({"pairs", "Linux intra", "LFP intra", "Linux inter", "LFP inter"},
            widths);
  print_row({"", "(tps)", "(tps)", "(tps)", "(tps)"}, widths);
  for (int pairs = 1; pairs <= 10; ++pairs) {
    print_row({std::to_string(pairs), fmt(pairs_tps(li, pairs), 1),
               fmt(pairs_tps(fi, pairs), 1), fmt(pairs_tps(lr, pairs), 1),
               fmt(pairs_tps(fr, pairs), 1)},
              widths);
  }
  std::printf("\nshape checks:\n");
  std::printf("  LinuxFP/Linux intra = %.0f%%  (paper: 120%%)\n",
              100.0 * li / fi);
  std::printf("  LinuxFP/Linux inter = %.0f%%  (paper: 116%%)\n",
              100.0 * lr / fr);
  return 0;
}
