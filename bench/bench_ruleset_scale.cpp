// Mega-ruleset scaling (DESIGN.md §17): single-core gateway throughput at
// 1k/10k/100k blacklist rules, LinuxFP with the linear bpf_ipt_lookup scan
// versus the same helper backed by the compiled tuple-space classifier.
// Claims: the linear path collapses as the scan grows; the compiled path is
// flat (one masked-tuple probe per packet) and >=10x faster at 10k rules —
// while staying bit-exact: same verdicts, same per-rule hit counters.
#include "bench/bench_util.h"

using namespace linuxfp;
using namespace linuxfp::bench;

namespace {

// Differential exactness probe: stream a verdict-diverse mix (deep misses,
// hits across the whole rule window) through both twins and compare verdict
// flags and every per-rule hit counter.
bool exactness_check(sim::LinuxTestbed& lin, sim::LinuxTestbed& clf,
                     int rules, int packets) {
  for (int i = 0; i < packets; ++i) {
    sim::ProcessOutcome a, b;
    if (i % 3 == 2) {
      int entry = static_cast<int>((static_cast<long long>(i) * 7919) % rules);
      a = lin.process(lin.blacklisted_packet(entry, 9));
      b = clf.process(clf.blacklisted_packet(entry, 9));
    } else {
      a = lin.process(lin.forward_packet(i % 50, static_cast<std::uint16_t>(i % 64)));
      b = clf.process(clf.forward_packet(i % 50, static_cast<std::uint16_t>(i % 64)));
    }
    if (a.forwarded != b.forwarded ||
        a.dropped_by_policy != b.dropped_by_policy) {
      return false;
    }
  }
  auto da = lin.kernel().netfilter().dump();
  auto db = clf.kernel().netfilter().dump();
  if (da.size() != db.size()) return false;
  for (std::size_t c = 0; c < da.size(); ++c) {
    if (da[c]->rules.size() != db[c]->rules.size()) return false;
    for (std::size_t r = 0; r < da[c]->rules.size(); ++r) {
      if (da[c]->rules[r].hits != db[c]->rules[r].hits ||
          da[c]->rules[r].hit_bytes != db[c]->rules[r].hit_bytes) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Reporter reporter("ruleset", argc, argv);
  print_header(
      "Mega-ruleset scaling — gateway throughput vs 1k/10k/100k rules (64B)",
      "DESIGN.md §17: compiled classifier holds throughput flat where the "
      "linear bpf_ipt_lookup scan collapses, with exact scan semantics");

  const int samples = reporter.smoke() ? 300 : 600;
  sim::ThroughputRunner runner(25e9, samples);
  const int flows = 256;
  std::vector<int> widths{9, 14, 14, 10, 7};
  print_row({"rules", "LinuxFP(lin)", "LinuxFP(clf)", "speedup", "exact"},
            widths);
  print_row({"", "(Mpps)", "(Mpps)", "(x)", ""}, widths);

  std::vector<int> rule_counts{1000, 10000, 100000};
  if (reporter.smoke()) rule_counts = {1000, 10000};

  double speedup_10k = 0;
  bool all_exact = true;
  for (int rules : rule_counts) {
    sim::ScenarioConfig lin_cfg;
    lin_cfg.prefixes = 50;
    lin_cfg.filter_rules = rules;
    lin_cfg.accel = sim::Accel::kLinuxFpXdp;
    sim::LinuxTestbed lin_dut(lin_cfg);

    auto clf_cfg = lin_cfg;
    clf_cfg.rule_classifier = true;
    sim::LinuxTestbed clf_dut(clf_cfg);

    // Forward traffic misses the whole blacklist: the linear twin scans all
    // `rules` entries per packet, the compiled twin probes one tuple group.
    auto l = runner.run(lin_dut, forward_factory(lin_dut, 50, flows), 1, 64);
    auto c = runner.run(clf_dut, forward_factory(clf_dut, 50, flows), 1, 64);
    double speedup = l.total_pps > 0 ? c.total_pps / l.total_pps : 0;
    if (rules == 10000) speedup_10k = speedup;

    bool exact = exactness_check(lin_dut, clf_dut, rules,
                                 reporter.smoke() ? 150 : 450);
    all_exact = all_exact && exact;

    print_row({std::to_string(rules), fmt_mpps(l.total_pps),
               fmt_mpps(c.total_pps), fmt(speedup, 1),
               exact ? "yes" : "NO"},
              widths);
    util::Json row = util::Json::object();
    row["rules"] = rules;
    row["linear_mpps"] = l.total_pps / 1e6;
    row["clf_mpps"] = c.total_pps / 1e6;
    row["speedup"] = speedup;
    row["exact"] = exact;
    reporter.add_row(std::move(row));
  }
  reporter.set("speedup_10k", speedup_10k);
  reporter.set("exact", all_exact);

  std::printf("\nshape checks: linear column decays ~1/rules; clf column "
              "flat; speedup >=10x from 10k rules; exact=yes everywhere "
              "(verdicts and hit counters identical).\n");
  return 0;
}
