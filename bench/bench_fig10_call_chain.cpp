// Figure 10: function call vs tail call. A chain of N trivial network
// functions followed by one function that rewrites Ethernet/IP headers and
// XDP_REDIRECTs the packet (paper §VI-B, platform-independent experiment).
// Inlined (function-call) composition stays flat; tail-call composition
// loses ~1% throughput per added function.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/fpm_library.h"
#include "ebpf/builder.h"
#include "ebpf/kernel_helpers.h"
#include "ebpf/loader.h"

using namespace linuxfp;
using namespace linuxfp::bench;
using namespace linuxfp::ebpf;

namespace {

// The terminal function: rewrite headers + redirect (shared by both modes).
void emit_rewrite_redirect(ProgramBuilder& b, int out_ifindex) {
  b.new_scope();
  b.mov_reg(kR2, kR7);
  b.add(kR2, 34);
  b.jgt_reg(kR2, kR8, "punt");
  // Rewrite both MACs with constants and patch the IP TTL.
  b.st(kR7, 0, 0x02, MemSize::kU8);
  b.st(kR7, 5, 0x42, MemSize::kU8);
  b.st(kR7, 6, 0x02, MemSize::kU8);
  b.st(kR7, 11, 0x24, MemSize::kU8);
  b.ldx(kR2, kR7, 22, MemSize::kU8);
  b.sub(kR2, 1);
  b.stx(kR7, 22, kR2, MemSize::kU8);
  b.mov(kR1, out_ifindex);
  b.call(kHelperRedirect);
  b.exit();
}

std::uint64_t run_chain(bool tail_calls, int n_trivial, kern::Kernel& kernel,
                        int ifindex, int out_ifindex) {
  HelperRegistry helpers;
  register_all_helpers(helpers, kernel.cost());
  Attachment att(tail_calls ? "chain_tc" : "chain_fc", HookType::kXdp, kernel,
                 helpers);
  att.enable_dispatcher();

  if (!tail_calls) {
    // One program, all NFs inlined.
    ProgramBuilder b("chain", HookType::kXdp);
    core::FpmLibrary::emit_prologue(b, false);
    for (int i = 0; i < n_trivial; ++i) {
      core::FpmLibrary::emit_trivial_nf(b, i);
    }
    emit_rewrite_redirect(b, out_ifindex);
    core::FpmLibrary::emit_epilogue(b);
    auto id = att.load(b.build().value());
    LFP_CHECK(id.ok());
    LFP_CHECK(att.swap(id.value()).ok());
  } else {
    // N+1 programs chained through the dispatcher prog array.
    std::vector<std::uint32_t> ids;
    for (int i = 0; i < n_trivial; ++i) {
      ProgramBuilder b("nf" + std::to_string(i), HookType::kXdp);
      core::FpmLibrary::emit_prologue(b, false);
      core::FpmLibrary::emit_trivial_nf(b, i);
      b.mov_reg(kR1, kR6);
      b.mov(kR2, 0);
      b.mov(kR3, i + 2);  // next chain slot
      b.call(kHelperTailCall);
      b.ja("punt");
      core::FpmLibrary::emit_epilogue(b);
      auto id = att.load(b.build().value());
      LFP_CHECK(id.ok());
      ids.push_back(id.value());
    }
    ProgramBuilder last("nf_redirect", HookType::kXdp);
    core::FpmLibrary::emit_prologue(last, false);
    emit_rewrite_redirect(last, out_ifindex);
    core::FpmLibrary::emit_epilogue(last);
    auto last_id = att.load(last.build().value());
    LFP_CHECK(last_id.ok());
    ids.push_back(last_id.value());

    Map* prog_array = att.maps().get(0);
    for (std::size_t i = 0; i < ids.size(); ++i) {
      LFP_CHECK(prog_array
                    ->set_prog(static_cast<std::uint32_t>(i + 1), ids[i])
                    .ok());
    }
    LFP_CHECK(att.swap(ids[0]).ok());
  }

  LFP_CHECK(attach_to_device(kernel, "eth0", HookType::kXdp, &att).ok());
  net::FlowKey f;
  f.src_ip = net::Ipv4Addr::parse("10.10.1.2").value();
  f.dst_ip = net::Ipv4Addr::parse("10.100.0.9").value();
  std::uint64_t total = 0;
  const int kSamples = 200;
  for (int i = 0; i < kSamples; ++i) {
    kern::CycleTrace trace;
    kernel.rx(ifindex,
              net::build_udp_packet(net::MacAddr::from_id(0x501),
                                    kernel.dev_by_name("eth0")->mac(), f, 64),
              trace);
    total += trace.total();
  }
  detach_from_device(kernel, "eth0", HookType::kXdp);
  return total / kSamples;
}

}  // namespace

int main() {
  print_header("Fig 10 — function call vs tail call (chain of N trivial NFs)",
               "paper Fig 10: function-call curve flat; tail-call curve loses "
               "~1%/NF");

  kern::Kernel kernel("dut");
  kernel.add_phys_dev("eth0");
  kernel.add_phys_dev("eth1");
  kernel.dev_by_name("eth1")->set_phys_tx([](net::Packet&&) {});
  kernel.dev_by_name("eth0")->set_phys_tx([](net::Packet&&) {});
  (void)kern::run_command(kernel, "ip link set eth0 up");
  (void)kern::run_command(kernel, "ip link set eth1 up");
  int in_if = kernel.dev_by_name("eth0")->ifindex();
  int out_if = kernel.dev_by_name("eth1")->ifindex();

  double hz = kernel.cost().cpu_hz;
  std::vector<int> widths{6, 16, 16, 14, 14};
  print_row({"N", "func-call Mpps", "tail-call Mpps", "fc norm", "tc norm"},
            widths);
  double fc0 = 0, tc0 = 0;
  for (int n = 0; n <= 16; n += 2) {
    auto fc_cycles = run_chain(false, n, kernel, in_if, out_if);
    auto tc_cycles = run_chain(true, n, kernel, in_if, out_if);
    double fc = hz / static_cast<double>(fc_cycles) / 1e6;
    double tc = hz / static_cast<double>(tc_cycles) / 1e6;
    if (n == 0) {
      fc0 = fc;
      tc0 = tc;
    }
    print_row({std::to_string(n), fmt(fc, 3), fmt(tc, 3),
               fmt(100 * fc / fc0, 1) + "%", fmt(100 * tc / tc0, 1) + "%"},
              widths);
  }
  std::printf("\nshape check: the normalized function-call column stays near "
              "100%%; the tail-call column decays ~1%%/NF.\n");
  return 0;
}
