// Figure 8: single-core virtual gateway throughput as a function of the
// number of filtering rules. Shape claims: Linux and LinuxFP degrade with
// the linear iptables scan; LinuxFP(ipset) and Polycube stay flat; with the
// ipset aggregation LinuxFP tops the eBPF pipelines. The LinuxFP(clf)
// column (DESIGN.md §17) shows the compiled classifier holding the
// rule-structured table flat without collapsing it into one ipset.
#include "bench/bench_util.h"

using namespace linuxfp;
using namespace linuxfp::bench;

int main() {
  print_header(
      "Fig 8 — single-core gateway throughput vs #filter rules (64B)",
      "paper Fig 8: Linux/LinuxFP decay with rules (linear iptables scan); "
      "LinuxFP(ipset) and Polycube flat; +clf flat at full rule structure");

  sim::ThroughputRunner runner(25e9, 4000);
  const int flows = 256;
  std::vector<int> widths{8, 11, 11, 13, 15, 11};
  print_row({"rules", "Linux", "LinuxFP", "LinuxFP(clf)", "LinuxFP(ipset)",
             "Polycube"},
            widths);
  print_row({"", "(Mpps)", "(Mpps)", "(Mpps)", "(Mpps)", "(Mpps)"}, widths);

  for (int rules : {1, 10, 50, 100, 200, 400, 800}) {
    sim::ScenarioConfig linux_cfg;
    linux_cfg.prefixes = 50;
    linux_cfg.filter_rules = rules;
    sim::LinuxTestbed linux_dut(linux_cfg);

    auto lfp_cfg = linux_cfg;
    lfp_cfg.accel = sim::Accel::kLinuxFpXdp;
    sim::LinuxTestbed lfp_dut(lfp_cfg);

    auto clf_cfg = lfp_cfg;
    clf_cfg.rule_classifier = true;
    sim::LinuxTestbed clf_dut(clf_cfg);

    auto ipset_cfg = lfp_cfg;
    ipset_cfg.use_ipset = true;
    sim::LinuxTestbed ipset_dut(ipset_cfg);

    PolycubeScenario pcn(50, rules);
    auto pcn_factory = [&](std::uint64_t i) {
      return pcn.host->forward_packet(static_cast<int>(i % 50),
                                      static_cast<std::uint16_t>(i % flows));
    };

    auto l = runner.run(linux_dut, forward_factory(linux_dut, 50, flows), 1,
                        64);
    auto f = runner.run(lfp_dut, forward_factory(lfp_dut, 50, flows), 1, 64);
    auto fc = runner.run(clf_dut, forward_factory(clf_dut, 50, flows), 1, 64);
    auto fi =
        runner.run(ipset_dut, forward_factory(ipset_dut, 50, flows), 1, 64);
    auto p = runner.run(*pcn.router, pcn_factory, 1, 64);
    print_row({std::to_string(rules), fmt_mpps(l.total_pps),
               fmt_mpps(f.total_pps), fmt_mpps(fc.total_pps),
               fmt_mpps(fi.total_pps), fmt_mpps(p.total_pps)},
              widths);
  }

  // Mega-ruleset extension (DESIGN.md §17): beyond the paper's 800-rule
  // sweep, where the linear scan is no longer viable at all. Fewer samples —
  // the linear DUT burns ~rules compares per packet — and no Polycube row
  // (its firewall pipeline is the same linear regime).
  std::printf("\n");
  sim::ThroughputRunner mega_runner(25e9, 600);
  for (int rules : {1000, 10000, 100000}) {
    sim::ScenarioConfig linux_cfg;
    linux_cfg.prefixes = 50;
    linux_cfg.filter_rules = rules;
    sim::LinuxTestbed linux_dut(linux_cfg);

    auto lfp_cfg = linux_cfg;
    lfp_cfg.accel = sim::Accel::kLinuxFpXdp;
    sim::LinuxTestbed lfp_dut(lfp_cfg);

    auto clf_cfg = lfp_cfg;
    clf_cfg.rule_classifier = true;
    sim::LinuxTestbed clf_dut(clf_cfg);

    auto ipset_cfg = lfp_cfg;
    ipset_cfg.use_ipset = true;
    sim::LinuxTestbed ipset_dut(ipset_cfg);

    auto l = mega_runner.run(linux_dut, forward_factory(linux_dut, 50, flows),
                             1, 64);
    auto f =
        mega_runner.run(lfp_dut, forward_factory(lfp_dut, 50, flows), 1, 64);
    auto fc =
        mega_runner.run(clf_dut, forward_factory(clf_dut, 50, flows), 1, 64);
    auto fi = mega_runner.run(ipset_dut, forward_factory(ipset_dut, 50, flows),
                              1, 64);
    print_row({std::to_string(rules), fmt_mpps(l.total_pps),
               fmt_mpps(f.total_pps), fmt_mpps(fc.total_pps),
               fmt_mpps(fi.total_pps), "-"},
              widths);
  }

  std::printf("\nshape checks: LinuxFP(ipset) and Polycube columns flat; "
              "Linux and LinuxFP columns decay with rule count; crossover — "
              "LinuxFP(linear) drops below Polycube as rules grow; "
              "LinuxFP(clf) tracks the ipset column out to 100k rules.\n");
  return 0;
}
