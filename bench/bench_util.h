// Shared helpers for the reproduction benchmarks: table formatting with
// paper-reference columns, and platform builders wired to each scenario.
//
// Every bench regenerates one table or figure from the paper's evaluation
// (§VI); EXPERIMENTS.md records measured-vs-paper for each. Absolute numbers
// come from the calibrated cost model (DESIGN.md §5); the claims under test
// are the SHAPES: who wins, by what factor, where curves cross.
#pragma once

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "baselines/polycube/polycube.h"
#include "baselines/vpp/vpp.h"
#include "sim/runners.h"
#include "sim/testbed.h"
#include "util/json.h"

namespace linuxfp::bench {

// Machine-readable result emission: each bench builds rows as it prints its
// table, and the destructor writes BENCH_<name>.json next to the binary so
// the perf trajectory is diffable across commits (EXPERIMENTS.md §BENCH).
// Passing --smoke on the bench command line trims iteration counts to a CI
// smoke run; the JSON records which mode produced it.
class Reporter {
 public:
  Reporter(std::string name, int argc, char** argv)
      : name_(std::move(name)), rows_(util::Json::array()) {
    for (int i = 1; i < argc; ++i) {
      if (std::string(argv[i]) == "--smoke") smoke_ = true;
    }
    doc_ = util::Json::object();
    doc_["bench"] = name_;
    doc_["smoke"] = smoke_;
  }

  bool smoke() const { return smoke_; }

  void add_row(util::Json row) { rows_.push_back(std::move(row)); }
  void set(const std::string& key, util::Json value) {
    doc_[key] = std::move(value);
  }

  ~Reporter() {
    doc_["rows"] = rows_;
    std::string path = "BENCH_" + name_ + ".json";
    std::ofstream out(path);
    out << doc_.dump(2) << "\n";
    std::printf("\nwrote %s\n", path.c_str());
  }

 private:
  std::string name_;
  bool smoke_ = false;
  util::Json doc_;
  util::Json rows_;
};

inline void print_header(const std::string& title, const std::string& paper) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper.c_str());
  std::printf("================================================================\n");
}

inline void print_row(const std::vector<std::string>& cells,
                      const std::vector<int>& widths) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    int w = i < widths.size() ? widths[i] : 14;
    std::printf("%-*s", w, cells[i].c_str());
  }
  std::printf("\n");
}

inline std::string fmt(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string fmt_mpps(double pps) { return fmt(pps / 1e6, 3); }

// --- Polycube scenario builder -------------------------------------------------
// A Polycube DUT configured "with commands equivalent to the Linux
// configuration" (paper §VI-A): same prefixes, same neighbours, optional
// firewall blacklist.
struct PolycubeScenario {
  std::unique_ptr<sim::LinuxTestbed> host;  // provides devices + links only
  std::unique_ptr<pcn::PolycubeRouter> router;

  explicit PolycubeScenario(int prefixes, int fw_rules = 0) {
    sim::ScenarioConfig cfg;
    cfg.prefixes = 0;  // Polycube ignores kernel routes; none needed
    host = std::make_unique<sim::LinuxTestbed>(cfg);
    router = std::make_unique<pcn::PolycubeRouter>(host->kernel());
    auto cli = [&](const std::string& c) {
      auto st = router->cli(c);
      LFP_CHECK_MSG(st.ok(), "pcn cli failed: " + c);
    };
    cli("pcn router port add eth0 10.10.1.1/24");
    cli("pcn router port add eth1 10.10.2.1/24");
    cli("pcn router neigh add 10.10.1.2 " +
        net::MacAddr::from_id(0x501).to_string() + " eth0");
    cli("pcn router neigh add 10.10.2.2 " +
        net::MacAddr::from_id(0x502).to_string() + " eth1");
    for (int i = 0; i < prefixes; ++i) {
      cli("pcn router route add 10." + std::to_string(100 + (i % 150)) + "." +
          std::to_string(i / 150) + ".0/24 10.10.2.2");
    }
    for (int i = 0; i < fw_rules; ++i) {
      cli("pcn firewall rule add src 10.66." + std::to_string(i / 250) + "." +
          std::to_string(1 + i % 250) + " action DROP");
    }
  }
};

// --- VPP scenario builder --------------------------------------------------------
struct VppScenario {
  vpp::VppRouter router;

  explicit VppScenario(int prefixes, int acl_rules = 0) {
    auto cli = [&](const std::string& c) {
      auto st = router.cli(c);
      LFP_CHECK_MSG(st.ok(), "vpp cli failed: " + c);
    };
    cli("set interface ip address eth0 10.10.1.1/24");
    cli("set interface ip address eth1 10.10.2.1/24");
    cli("set ip neighbor eth1 10.10.2.2 " +
        net::MacAddr::from_id(0x502).to_string());
    for (int i = 0; i < prefixes; ++i) {
      cli("ip route add 10." + std::to_string(100 + (i % 150)) + "." +
          std::to_string(i / 150) + ".0/24 via 10.10.2.2");
    }
    for (int i = 0; i < acl_rules; ++i) {
      cli("acl add deny src 10.66." + std::to_string(i / 250) + "." +
          std::to_string(1 + i % 250) + "/32");
    }
  }
};

// Forward-traffic factory shared by throughput benches.
inline sim::ThroughputRunner::PacketFactory
forward_factory(sim::LinuxTestbed& dut, int prefixes, int flows,
                std::size_t frame_len = 64) {
  return [&dut, prefixes, flows, frame_len](std::uint64_t i) {
    return dut.forward_packet(static_cast<int>(i % prefixes),
                              static_cast<std::uint16_t>(i % flows),
                              frame_len);
  };
}

}  // namespace linuxfp::bench
