// google-benchmark microbenchmarks of the substrate itself: real host-time
// costs of the VM interpreter, verifier, LPM trie, FDB, netfilter evaluation
// and the controller's synthesis pipeline. These measure the SIMULATOR's
// speed (how fast the reproduction runs), complementing the modeled-cycle
// benches that reproduce the paper's numbers.
#include <benchmark/benchmark.h>

#include "core/controller.h"
#include "core/synthesizer.h"
#include "core/topology.h"
#include "core/introspect.h"
#include "ebpf/jit.h"
#include "ebpf/kernel_helpers.h"
#include "ebpf/verifier.h"
#include "ebpf/vm.h"
#include "sim/testbed.h"

using namespace linuxfp;

namespace {

sim::LinuxTestbed& router_dut(sim::Accel accel) {
  static sim::LinuxTestbed* linux_dut = [] {
    sim::ScenarioConfig cfg;
    cfg.prefixes = 50;
    return new sim::LinuxTestbed(cfg);
  }();
  static sim::LinuxTestbed* lfp_dut = [] {
    sim::ScenarioConfig cfg;
    cfg.prefixes = 50;
    cfg.accel = sim::Accel::kLinuxFpXdp;
    return new sim::LinuxTestbed(cfg);
  }();
  return accel == sim::Accel::kNone ? *linux_dut : *lfp_dut;
}

void BM_SlowPathForward(benchmark::State& state) {
  auto& dut = router_dut(sim::Accel::kNone);
  dut.kernel().set_metrics_enabled(true);
  int i = 0;
  for (auto _ : state) {
    auto out =
        dut.process(dut.forward_packet(i % 50, static_cast<std::uint16_t>(i)));
    benchmark::DoNotOptimize(out.cycles);
    ++i;
  }
}
BENCHMARK(BM_SlowPathForward);

// Bare = observability counters disabled; the delta against the metered
// variant above is the real host-time cost of the metrics layer. tools/ci.sh
// guards this ratio (DESIGN.md overhead budget: < 2% modeled, < ~35% host
// time under the microbench's tight loop).
void BM_SlowPathForwardBare(benchmark::State& state) {
  auto& dut = router_dut(sim::Accel::kNone);
  dut.kernel().set_metrics_enabled(false);
  int i = 0;
  for (auto _ : state) {
    auto out =
        dut.process(dut.forward_packet(i % 50, static_cast<std::uint16_t>(i)));
    benchmark::DoNotOptimize(out.cycles);
    ++i;
  }
  dut.kernel().set_metrics_enabled(true);
}
BENCHMARK(BM_SlowPathForwardBare);

void BM_FastPathForward(benchmark::State& state) {
  auto& dut = router_dut(sim::Accel::kLinuxFpXdp);
  dut.kernel().set_metrics_enabled(true);
  int i = 0;
  for (auto _ : state) {
    auto out =
        dut.process(dut.forward_packet(i % 50, static_cast<std::uint16_t>(i)));
    benchmark::DoNotOptimize(out.cycles);
    ++i;
  }
}
BENCHMARK(BM_FastPathForward);

void BM_FastPathForwardBare(benchmark::State& state) {
  auto& dut = router_dut(sim::Accel::kLinuxFpXdp);
  dut.kernel().set_metrics_enabled(false);
  int i = 0;
  for (auto _ : state) {
    auto out =
        dut.process(dut.forward_packet(i % 50, static_cast<std::uint16_t>(i)));
    benchmark::DoNotOptimize(out.cycles);
    ++i;
  }
  dut.kernel().set_metrics_enabled(true);
}
BENCHMARK(BM_FastPathForwardBare);

void BM_FibLookup(benchmark::State& state) {
  kern::Fib fib;
  for (int i = 0; i < 1000; ++i) {
    kern::Route r;
    r.dst = net::Ipv4Prefix(
        net::Ipv4Addr(0x0A000000u + (static_cast<std::uint32_t>(i) << 8)), 24);
    r.gateway = net::Ipv4Addr(0x0A0A0202);
    r.oif = 2;
    fib.add_route(r);
  }
  std::uint32_t probe = 0;
  for (auto _ : state) {
    auto hit = fib.lookup(net::Ipv4Addr(0x0A000009u + ((probe++ % 1000) << 8)));
    benchmark::DoNotOptimize(hit);
  }
}
BENCHMARK(BM_FibLookup);

void BM_NetfilterLinearScan(benchmark::State& state) {
  kern::Netfilter nf;
  kern::IpSetManager sets;
  for (int i = 0; i < state.range(0); ++i) {
    kern::Rule r;
    r.match.src = net::Ipv4Prefix(
        net::Ipv4Addr(0x0A420000u + static_cast<std::uint32_t>(i) * 256), 24);
    r.target = kern::RuleTarget::kDrop;
    (void)nf.append_rule("FORWARD", std::move(r));
  }
  kern::NfPacketInfo info;
  info.src = net::Ipv4Addr(0x0B000001);
  info.dst = net::Ipv4Addr(0x0C000001);
  for (auto _ : state) {
    auto res = nf.evaluate(kern::NfHook::kForward, info, sets);
    benchmark::DoNotOptimize(res);
  }
}
BENCHMARK(BM_NetfilterLinearScan)->Arg(10)->Arg(100)->Arg(1000);

void BM_VmInterpretation(benchmark::State& state) {
  kern::CostModel cost;
  ebpf::HelperRegistry helpers;
  ebpf::register_all_helpers(helpers, cost);
  ebpf::MapSet maps;
  ebpf::ProgramBuilder b("alu", ebpf::HookType::kXdp);
  b.mov(ebpf::kR0, 0);
  for (int i = 0; i < 64; ++i) {
    b.add(ebpf::kR0, i);
    b.and_(ebpf::kR0, 0xffff);
  }
  b.exit();
  ebpf::Program prog = b.build().value();
  ebpf::Vm vm(cost, helpers, maps, nullptr);
  net::Packet pkt(64);
  for (auto _ : state) {
    auto r = vm.run(prog, pkt, 1, nullptr);
    benchmark::DoNotOptimize(r.ret);
  }
}
BENCHMARK(BM_VmInterpretation);

// Twin of BM_VmInterpretation that reports per-instruction interpreter cost
// (items = executed insns, so google-benchmark prints items_per_second).
// The hot loop runs over the pre-decoded DecodedInsn array — operand
// selection (use_imm) and jump targets resolved at load time — and
// tools/ci.sh asserts ns/insn stays under budget so the decode stage can
// never silently regress back into the dispatch loop.
void BM_VmNsPerInsn(benchmark::State& state) {
  kern::CostModel cost;
  ebpf::HelperRegistry helpers;
  ebpf::register_all_helpers(helpers, cost);
  ebpf::MapSet maps;
  ebpf::ProgramBuilder b("alu_per_insn", ebpf::HookType::kXdp);
  b.mov(ebpf::kR0, 0);
  for (int i = 0; i < 64; ++i) {
    b.add(ebpf::kR0, i);
    b.and_(ebpf::kR0, 0xffff);
  }
  b.exit();
  ebpf::Program prog = b.build().value();
  const std::size_t insns_per_run = prog.insns.size();  // mov + 128 ALU + exit
  ebpf::Vm vm(cost, helpers, maps, nullptr);
  net::Packet pkt(64);
  for (auto _ : state) {
    auto r = vm.run(prog, pkt, 1, nullptr);
    benchmark::DoNotOptimize(r.ret);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(insns_per_run));
}
BENCHMARK(BM_VmNsPerInsn);

// The same 130-instruction ALU kernel through the direct-threaded translator
// (DESIGN.md §14): the add/and pairs fuse into AluPairImm superinstructions,
// so the gap to BM_VmNsPerInsn is the dispatch+fusion win (gated in ci.sh:
// JIT <= 12 ns/insn vs the interpreter's 60 ns budget).
void BM_VmNsPerInsnJit(benchmark::State& state) {
  kern::CostModel cost;
  ebpf::HelperRegistry helpers;
  ebpf::register_all_helpers(helpers, cost);
  ebpf::MapSet maps;
  ebpf::ProgramBuilder b("alu_per_insn_jit", ebpf::HookType::kXdp);
  b.mov(ebpf::kR0, 0);
  for (int i = 0; i < 64; ++i) {
    b.add(ebpf::kR0, i);
    b.and_(ebpf::kR0, 0xffff);
  }
  b.exit();
  ebpf::Program prog = b.build().value();
  prog.jit = ebpf::jit_translate(prog);
  const std::size_t insns_per_run = prog.insns.size();
  ebpf::Vm vm(cost, helpers, maps, nullptr);
  vm.set_engine(ebpf::ExecEngine::kJit);
  net::Packet pkt(64);
  for (auto _ : state) {
    auto r = vm.run(prog, pkt, 1, nullptr);
    benchmark::DoNotOptimize(r.ret);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(insns_per_run));
}
BENCHMARK(BM_VmNsPerInsnJit);

void BM_VerifierRouterProgram(benchmark::State& state) {
  sim::ScenarioConfig cfg;
  cfg.prefixes = 10;
  sim::LinuxTestbed dut(cfg);
  core::ServiceIntrospection si(dut.kernel().netlink());
  si.initial_sync();
  core::TopologyManager tm;
  auto graphs = tm.build(si.view());
  core::Synthesizer synth;
  auto result = synth.synthesize(graphs.at(0));
  kern::CostModel cost;
  ebpf::HelperRegistry helpers;
  ebpf::register_all_helpers(helpers, cost);
  ebpf::VerifyOptions opts;
  opts.helpers = &helpers;
  for (auto _ : state) {
    auto st = ebpf::verify(result->programs[0], opts);
    benchmark::DoNotOptimize(st.ok());
  }
}
BENCHMARK(BM_VerifierRouterProgram);

void BM_ControllerReaction(benchmark::State& state) {
  sim::ScenarioConfig cfg;
  cfg.prefixes = 10;
  cfg.accel = sim::Accel::kLinuxFpXdp;
  sim::LinuxTestbed dut(cfg);
  int toggle = 0;
  for (auto _ : state) {
    // Alternate a rule append/delete so every iteration re-synthesizes.
    if (toggle++ % 2 == 0) {
      (void)kern::run_command(dut.kernel(),
                              "iptables -A FORWARD -s 10.77.0.0/24 -j DROP");
    } else {
      (void)kern::run_command(dut.kernel(), "iptables -D FORWARD 1");
    }
    auto reaction = dut.controller()->run_once();
    benchmark::DoNotOptimize(reaction.insns);
  }
}
BENCHMARK(BM_ControllerReaction);

}  // namespace

BENCHMARK_MAIN();
