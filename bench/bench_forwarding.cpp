// Closed-loop forwarding harness (DESIGN.md §16): the first true
// packets-in/packets-out throughput benchmark — RX engine -> fast path ->
// TX engine end to end on real threads, with sustained rate modeled from the
// measured per-thread cycle budgets (sim::ForwardingRunner).
//
// Two experiments:
//  1. xmit_more doorbell coalescing on the XDP router (8 queues, 64 B): at
//     tx.burst=1 every fast-path transmit pays the doorbell MMIO on the TX
//     drain thread and the pipeline is TX-bound; at burst=64 the doorbell
//     amortizes and the bottleneck moves back to the workers.
//     Acceptance (ISSUE 9): batched >= 1.3x unbatched.
//  2. GRO on the slow-path-bound plain-Linux forwarder (same-flow TCP
//     streams, 512 B): coalescing runs the linear stack stages once per
//     super-packet, resegmenting at TX. Acceptance: GRO on >= 1.5x off.
//
// Emits BENCH_forwarding.json; --smoke trims samples for CI.
#include "bench/bench_util.h"

using namespace linuxfp;
using namespace linuxfp::bench;

int main(int argc, char** argv) {
  Reporter reporter("forwarding", argc, argv);
  const std::uint64_t samples = reporter.smoke() ? 2000 : 8000;
  std::vector<int> widths{12, 10, 12, 12, 12, 14};

  // --- Experiment 1: doorbell coalescing on the XDP router -----------------
  print_header(
      "Closed-loop forwarding — xmit_more doorbell coalescing (XDP router)",
      "8 queues, 64 B, uniform flows; TX rings drain on the slow thread, one "
      "doorbell per burst");

  sim::ScenarioConfig router;
  router.prefixes = 50;
  router.accel = sim::Accel::kLinuxFpXdp;
  sim::LinuxTestbed dut(router);
  sim::FlowPattern uniform(50, 512, 64);
  auto udp_factory = [&](std::uint64_t i) {
    auto [prefix, flow] = uniform.at(i);
    return dut.forward_packet(prefix, flow, uniform.frame_len());
  };
  sim::ForwardingRunner runner(25e9, samples);

  print_row({"tx burst", "in", "out", "doorbells", "Mpps", "limited by"},
            widths);
  double unbatched_pps = 0, batched_pps = 0;
  bool conserved = true;
  for (unsigned burst : {1u, 64u}) {
    sim::ForwardingOptions opts;
    opts.queues = 8;
    opts.tx.burst = burst;
    auto r = runner.run(dut.kernel(), dut.ingress_ifindex(), udp_factory, opts);
    if (burst == 1) unbatched_pps = r.total_pps;
    if (burst == 64) batched_pps = r.total_pps;
    if (r.packets_out != r.packets_in) conserved = false;
    std::string limit = r.line_rate_limited   ? "line rate"
                        : r.slow_path_limited ? "tx/slow thread"
                                              : "cpu";
    print_row({std::to_string(burst), std::to_string(r.packets_in),
               std::to_string(r.packets_out), std::to_string(r.doorbells),
               fmt_mpps(r.total_pps), limit},
              widths);
    util::Json row = util::Json::object();
    row["experiment"] = "doorbell";
    row["tx_burst"] = static_cast<int>(burst);
    row["packets_in"] = static_cast<std::int64_t>(r.packets_in);
    row["packets_out"] = static_cast<std::int64_t>(r.packets_out);
    row["descriptors"] = static_cast<std::int64_t>(r.descriptors);
    row["doorbells"] = static_cast<std::int64_t>(r.doorbells);
    row["total_pps"] = r.total_pps;
    row["slow_thread_cycles_per_pkt"] = r.slow_thread_cycles;
    row["fast_path_fraction"] = r.fast_path_fraction;
    row["slow_path_limited"] = r.slow_path_limited;
    row["line_rate_limited"] = r.line_rate_limited;
    reporter.add_row(row);
  }
  double doorbell_speedup = unbatched_pps > 0 ? batched_pps / unbatched_pps : 0;

  // --- Experiment 2: GRO on the slow-path-bound forwarder ------------------
  print_header(
      "Closed-loop forwarding — GRO aggregation (plain Linux, TCP streams)",
      "1 queue, 512 B same-flow TCP segments; the stack's linear stages run "
      "once per super-packet, GSO resegments at TX");

  sim::ScenarioConfig plain;
  plain.prefixes = 4;
  plain.accel = sim::Accel::kNone;
  sim::LinuxTestbed slow_dut(plain);
  constexpr std::size_t kFrame = 512;
  constexpr std::uint32_t kPayload = kFrame - 54;  // eth+ip+tcp headers
  // Four interleaved TCP streams, each in-sequence: the shape GRO folds.
  auto tcp_factory = [&](std::uint64_t i) {
    const int flow = static_cast<int>(i % 4);
    const std::uint32_t k = static_cast<std::uint32_t>(i / 4);
    return slow_dut.forward_tcp_segment(
        flow, static_cast<std::uint16_t>(flow), kFrame, 1 + k * kPayload,
        static_cast<std::uint16_t>(k));
  };

  print_row({"gro", "in", "out", "superpkts", "Mpps", "limited by"}, widths);
  double gro_off_pps = 0, gro_on_pps = 0;
  for (bool gro : {false, true}) {
    sim::ForwardingOptions opts;
    opts.queues = 1;
    opts.tx.burst = 64;
    opts.gro.enabled = gro;
    auto r = runner.run(slow_dut.kernel(), slow_dut.ingress_ifindex(),
                        tcp_factory, opts);
    if (gro) {
      gro_on_pps = r.total_pps;
    } else {
      gro_off_pps = r.total_pps;
    }
    if (r.packets_out != r.packets_in) conserved = false;
    std::string limit = r.line_rate_limited   ? "line rate"
                        : r.slow_path_limited ? "slow thread"
                                              : "cpu";
    print_row({gro ? "on" : "off", std::to_string(r.packets_in),
               std::to_string(r.packets_out),
               std::to_string(r.gro_superpackets), fmt_mpps(r.total_pps),
               limit},
              widths);
    util::Json row = util::Json::object();
    row["experiment"] = "gro";
    row["gro"] = gro;
    row["packets_in"] = static_cast<std::int64_t>(r.packets_in);
    row["packets_out"] = static_cast<std::int64_t>(r.packets_out);
    row["gro_coalesced"] = static_cast<std::int64_t>(r.gro_coalesced);
    row["gro_superpackets"] = static_cast<std::int64_t>(r.gro_superpackets);
    row["total_pps"] = r.total_pps;
    row["slow_thread_cycles_per_pkt"] = r.slow_thread_cycles;
    row["slow_path_limited"] = r.slow_path_limited;
    reporter.add_row(row);
  }
  double gro_speedup = gro_off_pps > 0 ? gro_on_pps / gro_off_pps : 0;

  bool ok = doorbell_speedup >= 1.3 && gro_speedup >= 1.5 && conserved;
  std::printf("\nshape checks:\n");
  std::printf("  batched vs unbatched (burst 64 vs 1) = %.2fx   (acceptance: "
              ">= 1.3x)\n",
              doorbell_speedup);
  std::printf("  GRO on vs off                        = %.2fx   (acceptance: "
              ">= 1.5x)\n",
              gro_speedup);
  std::printf("  packets out == packets in            = %s\n",
              conserved ? "yes" : "NO");
  util::Json shape = util::Json::object();
  shape["doorbell_speedup"] = doorbell_speedup;
  shape["doorbell_min"] = 1.3;
  shape["gro_speedup"] = gro_speedup;
  shape["gro_min"] = 1.5;
  shape["packets_conserved"] = conserved;
  shape["pass"] = ok;
  reporter.set("shape_checks", shape);

  return ok ? 0 : 1;
}
