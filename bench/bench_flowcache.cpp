// Microflow verdict cache (DESIGN.md §12): virtual-router steady-state
// throughput with the cache on vs off, under Zipf(1.0) flow popularity —
// the regime the cache targets (a handful of elephant flows dominating the
// traffic mix, OVS microflow-cache style).
//
// Setup mirrors Fig 5 single-core: 50 prefixes via iproute2, 64 B packets,
// XDP driver mode. Each flow keeps a fixed (dst prefix, src port) so a
// cached verdict is actually revisitable. The cache-on DUT gets one warm-up
// pass before the measured pass so the table reports steady state; hit/miss
// counters are deltas over the measured pass only.
//
// Emits BENCH_flowcache.json with hit_rate and speedup fields (tools/ci.sh
// sanity-checks both) and fails hard if the steady-state speedup drops
// below 1.5x or the Zipf hit rate below 50%.
#include "bench/bench_util.h"

using namespace linuxfp;
using namespace linuxfp::bench;

namespace {

// One flow = one consistent 5-tuple and destination (prefix derived from the
// flow rank), so Zipf popularity over ranks is Zipf popularity over cache
// keys.
sim::ThroughputRunner::PacketFactory flow_factory(sim::LinuxTestbed& dut,
                                                  const sim::FlowPattern& fp,
                                                  int prefixes) {
  return [&dut, &fp, prefixes](std::uint64_t i) {
    auto [prefix, flow] = fp.at(i);
    (void)prefix;
    return dut.forward_packet(static_cast<int>(flow) % prefixes, flow, 64);
  };
}

}  // namespace

int main(int argc, char** argv) {
  Reporter reporter("flowcache", argc, argv);

  print_header(
      "Microflow verdict cache — router throughput, cache on vs off",
      "DESIGN.md §12: generation-vector coherent verdict cache; target "
      ">= 1.5x single-core steady state on Zipf(1.0) flow skew");

  const int kPrefixes = 50;
  const int kFlows = 512;
  const std::uint64_t samples = reporter.smoke() ? 600 : 6000;

  sim::ScenarioConfig off_cfg;
  off_cfg.prefixes = kPrefixes;
  off_cfg.accel = sim::Accel::kLinuxFpXdp;
  sim::LinuxTestbed off_dut(off_cfg);

  sim::ScenarioConfig on_cfg = off_cfg;
  on_cfg.flow_cache = true;
  sim::LinuxTestbed on_dut(on_cfg);

  sim::ThroughputRunner runner(25e9, samples);

  std::vector<int> widths{10, 14, 14, 10, 10};
  print_row({"pattern", "cache-off", "cache-on", "speedup", "hit-rate"},
            widths);
  print_row({"", "(Mpps)", "(Mpps)", "", ""}, widths);

  double zipf_speedup = 0;
  double zipf_hit_rate = 0;
  for (double zipf_s : {0.0, 1.0}) {
    sim::FlowPattern fp(kPrefixes, kFlows, 64, zipf_s);
    auto off_factory = flow_factory(off_dut, fp, kPrefixes);
    auto on_factory = flow_factory(on_dut, fp, kPrefixes);

    auto off_r = runner.run(off_dut, off_factory, 1, 64);

    // Warm-up pass fills the cache; steady state is the second pass.
    (void)runner.run(on_dut, on_factory, 1, 64);
    engine::FlowCacheStats before =
        on_dut.controller()->deployer().flow_cache_stats();
    auto on_r = runner.run(on_dut, on_factory, 1, 64);
    engine::FlowCacheStats after =
        on_dut.controller()->deployer().flow_cache_stats();

    std::uint64_t hits = after.hits - before.hits;
    std::uint64_t misses = after.misses - before.misses;
    double hit_rate = hits + misses == 0
                          ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(hits + misses);
    double speedup = on_r.total_pps / off_r.total_pps;
    const char* label = zipf_s == 0.0 ? "uniform" : "zipf1.0";
    print_row({label, fmt_mpps(off_r.total_pps), fmt_mpps(on_r.total_pps),
               fmt(speedup), fmt(hit_rate)},
              widths);

    util::Json row = util::Json::object();
    row["pattern"] = label;
    row["zipf_s"] = zipf_s;
    row["cache_off_pps"] = off_r.total_pps;
    row["cache_on_pps"] = on_r.total_pps;
    row["speedup"] = speedup;
    row["hit_rate"] = hit_rate;
    row["hits"] = static_cast<std::int64_t>(hits);
    row["misses"] = static_cast<std::int64_t>(misses);
    reporter.add_row(row);

    if (zipf_s == 1.0) {
      zipf_speedup = speedup;
      zipf_hit_rate = hit_rate;
    }
  }

  engine::FlowCacheStats total =
      on_dut.controller()->deployer().flow_cache_stats();
  std::printf(
      "\ncache totals: hits=%llu misses=%llu invalidations=%llu "
      "evictions=%llu uncacheable=%llu replay_mismatch=%llu\n",
      static_cast<unsigned long long>(total.hits),
      static_cast<unsigned long long>(total.misses),
      static_cast<unsigned long long>(total.invalidations),
      static_cast<unsigned long long>(total.evictions),
      static_cast<unsigned long long>(total.uncacheable),
      static_cast<unsigned long long>(total.replay_mismatch));

  // Headline fields ci.sh sanity-checks.
  reporter.set("hit_rate", zipf_hit_rate);
  reporter.set("speedup", zipf_speedup);

  if (zipf_speedup < 1.5) {
    std::fprintf(stderr,
                 "FAIL: zipf(1.0) steady-state speedup %.2f < 1.5x\n",
                 zipf_speedup);
    return 1;
  }
  if (zipf_hit_rate < 0.5) {
    std::fprintf(stderr, "FAIL: zipf(1.0) hit rate %.2f < 0.5\n",
                 zipf_hit_rate);
    return 1;
  }
  std::printf("\nshape checks: zipf speedup %.2fx (>= 1.5 required), "
              "hit rate %.2f\n",
              zipf_speedup, zipf_hit_rate);
  return 0;
}
