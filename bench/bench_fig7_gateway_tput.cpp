// Figure 7: throughput of the virtual gateway (IP forwarding + 100-rule
// blacklist) as a function of cores, 64 B packets. LinuxFP is also run with
// the blacklist aggregated into one ipset-backed rule, where it beats
// Polycube (paper §VI-A1).
#include "bench/bench_util.h"

using namespace linuxfp;
using namespace linuxfp::bench;

int main() {
  print_header(
      "Fig 7 — virtual gateway throughput vs cores (64B, 100 rules + 50 "
      "prefixes)",
      "paper Fig 7: LinuxFP ~2x Linux; LinuxFP(ipset) above Polycube; VPP "
      "ahead on dedicated cores");

  sim::ScenarioConfig linux_cfg;
  linux_cfg.prefixes = 50;
  linux_cfg.filter_rules = 100;
  sim::LinuxTestbed linux_dut(linux_cfg);

  sim::ScenarioConfig lfp_cfg = linux_cfg;
  lfp_cfg.accel = sim::Accel::kLinuxFpXdp;
  sim::LinuxTestbed lfp_dut(lfp_cfg);

  sim::ScenarioConfig lfp_ipset_cfg = lfp_cfg;
  lfp_ipset_cfg.use_ipset = true;
  sim::LinuxTestbed lfp_ipset_dut(lfp_ipset_cfg);

  PolycubeScenario pcn(50, /*fw_rules=*/100);
  VppScenario vpp(50, /*acl_rules=*/100);

  sim::ThroughputRunner runner(25e9, 6000);
  const int flows = 512;

  std::vector<int> widths{8, 11, 11, 11, 11, 15};
  print_row({"cores", "Linux", "Polycube", "VPP", "LinuxFP", "LinuxFP(ipset)"},
            widths);

  auto ext_factory = [&](std::uint64_t i) {
    return pcn.host->forward_packet(static_cast<int>(i % 50),
                                    static_cast<std::uint16_t>(i % flows));
  };

  for (int cores = 1; cores <= 6; ++cores) {
    auto l = runner.run(linux_dut, forward_factory(linux_dut, 50, flows),
                        cores, 64);
    auto f =
        runner.run(lfp_dut, forward_factory(lfp_dut, 50, flows), cores, 64);
    auto fi = runner.run(lfp_ipset_dut,
                         forward_factory(lfp_ipset_dut, 50, flows), cores, 64);
    auto p = runner.run(*pcn.router, ext_factory, cores, 64);
    auto v = runner.run(vpp.router, ext_factory, cores, 64);
    print_row({std::to_string(cores), fmt_mpps(l.total_pps),
               fmt_mpps(p.total_pps), fmt_mpps(v.total_pps),
               fmt_mpps(f.total_pps), fmt_mpps(fi.total_pps)},
              widths);
  }

  auto l1 =
      runner.run(linux_dut, forward_factory(linux_dut, 50, flows), 1, 64);
  auto f1 = runner.run(lfp_dut, forward_factory(lfp_dut, 50, flows), 1, 64);
  auto fi1 = runner.run(lfp_ipset_dut,
                        forward_factory(lfp_ipset_dut, 50, flows), 1, 64);
  auto p1 = runner.run(*pcn.router, ext_factory, 1, 64);
  std::printf("\nshape checks (single core):\n");
  std::printf("  LinuxFP/Linux            = %.2f  (paper: ~2x)\n",
              f1.total_pps / l1.total_pps);
  std::printf("  LinuxFP(ipset)/Polycube  = %.2f  (paper: >1 — ipset beats "
              "Polycube here)\n",
              fi1.total_pps / p1.total_pps);
  return 0;
}
