// Figure 5: throughput of the virtual router as a function of cores.
// Setup (paper §VI-A1): 50 prefixes via iproute2, 64 B packets, XDP driver
// mode for LinuxFP and Polycube; Polycube/VPP configured with equivalent
// commands through their own CLIs.
//
// Emits BENCH_fig5_router_tput.json (see bench::Reporter); --smoke runs a
// single-core, short batch for CI.
#include "bench/bench_util.h"

using namespace linuxfp;
using namespace linuxfp::bench;

int main(int argc, char** argv) {
  Reporter reporter("fig5_router_tput", argc, argv);

  print_header("Fig 5 — virtual router throughput vs cores (64B, 50 prefixes)",
               "paper Fig 5: LinuxFP ~1.77x Linux; ~1.19x Polycube; VPP ahead "
               "(vector processing, dedicated busy-poll cores)");

  sim::ScenarioConfig linux_cfg;
  linux_cfg.prefixes = 50;
  sim::LinuxTestbed linux_dut(linux_cfg);

  sim::ScenarioConfig lfp_cfg = linux_cfg;
  lfp_cfg.accel = sim::Accel::kLinuxFpXdp;
  sim::LinuxTestbed lfp_dut(lfp_cfg);

  PolycubeScenario pcn(50);
  VppScenario vpp(50);

  sim::ThroughputRunner runner(25e9, reporter.smoke() ? 600 : 6000);
  const int flows = 512;
  const int max_cores = reporter.smoke() ? 1 : 6;

  std::vector<int> widths{8, 12, 12, 12, 12};
  print_row({"cores", "Linux", "Polycube", "VPP", "LinuxFP"}, widths);
  print_row({"", "(Mpps)", "(Mpps)", "(Mpps)", "(Mpps)"}, widths);

  auto pcn_factory = [&](std::uint64_t i) {
    return pcn.host->forward_packet(static_cast<int>(i % 50),
                                    static_cast<std::uint16_t>(i % flows));
  };
  auto vpp_factory = [&](std::uint64_t i) {
    return pcn.host->forward_packet(static_cast<int>(i % 50),
                                    static_cast<std::uint16_t>(i % flows));
  };

  for (int cores = 1; cores <= max_cores; ++cores) {
    auto linux_r =
        runner.run(linux_dut, forward_factory(linux_dut, 50, flows), cores, 64);
    auto lfp_r =
        runner.run(lfp_dut, forward_factory(lfp_dut, 50, flows), cores, 64);
    auto pcn_r = runner.run(*pcn.router, pcn_factory, cores, 64);
    auto vpp_r = runner.run(vpp.router, vpp_factory, cores, 64);
    print_row({std::to_string(cores), fmt_mpps(linux_r.total_pps),
               fmt_mpps(pcn_r.total_pps), fmt_mpps(vpp_r.total_pps),
               fmt_mpps(lfp_r.total_pps)},
              widths);
    util::Json row = util::Json::object();
    row["cores"] = cores;
    row["linux_pps"] = linux_r.total_pps;
    row["polycube_pps"] = pcn_r.total_pps;
    row["vpp_pps"] = vpp_r.total_pps;
    row["linuxfp_pps"] = lfp_r.total_pps;
    reporter.add_row(row);
  }

  auto l1 = runner.run(linux_dut, forward_factory(linux_dut, 50, flows), 1, 64);
  auto f1 = runner.run(lfp_dut, forward_factory(lfp_dut, 50, flows), 1, 64);
  auto p1 = runner.run(*pcn.router, pcn_factory, 1, 64);
  std::printf("\nshape checks (single core):\n");
  std::printf("  LinuxFP/Linux     = %.2f   (paper: ~1.77)\n",
              f1.total_pps / l1.total_pps);
  std::printf("  LinuxFP/Polycube  = %.2f   (paper: ~1.19)\n",
              f1.total_pps / p1.total_pps);
  std::printf("  note: VPP cores run at 100%% utilization (busy polling); "
              "Linux/LinuxFP/Polycube are interrupt-driven.\n");
  util::Json shape = util::Json::object();
  shape["linuxfp_over_linux"] = f1.total_pps / l1.total_pps;
  shape["linuxfp_over_polycube"] = f1.total_pps / p1.total_pps;
  shape["paper_linuxfp_over_linux"] = 1.77;
  shape["paper_linuxfp_over_polycube"] = 1.19;
  reporter.set("shape_checks", shape);
  return 0;
}
