// Table III: virtual router RTT with a single core, 128 parallel netperf
// sessions. Latency in microseconds (avg / P99 / stddev).
#include "bench/bench_util.h"

using namespace linuxfp;
using namespace linuxfp::bench;

namespace {
void report(const std::string& name, const util::SampleSet& rtt,
            const std::string& paper_ref) {
  print_row({name, fmt(rtt.mean(), 3), fmt(rtt.p99(), 3),
             fmt(rtt.stddev(), 3), paper_ref},
            {18, 12, 12, 12, 28});
}
}  // namespace

int main() {
  print_header(
      "Table III — virtual router RTT, 1 core, 128 netperf sessions (us)",
      "paper: Linux 326.9/512.4, Polycube 145.8/269.8, VPP 85.6/182.3, "
      "LinuxFP 151.7/279.4 (avg/p99)");

  sim::RrConfig rr_cfg;
  rr_cfg.sessions = 128;
  rr_cfg.transactions = 20000;
  sim::RrLatencyRunner runner(rr_cfg);

  print_row({"platform", "avg", "p99", "stddev", "paper avg/p99"},
            {18, 12, 12, 12, 28});

  auto request_of = [](sim::LinuxTestbed& dut) {
    return [&dut](int s) {
      return dut.forward_packet(s % 50, static_cast<std::uint16_t>(s), 66);
    };
  };

  {
    sim::ScenarioConfig cfg;
    cfg.prefixes = 50;
    sim::LinuxTestbed dut(cfg);
    auto r = runner.run(dut, request_of(dut), request_of(dut));
    report("Linux", r.rtt_us, "326.9 / 512.4");
  }
  {
    PolycubeScenario pcn(50);
    auto req = [&](int s) {
      return pcn.host->forward_packet(s % 50, static_cast<std::uint16_t>(s),
                                      66);
    };
    auto r = runner.run(*pcn.router, req, req);
    report("Polycube", r.rtt_us, "145.8 / 269.8");
  }
  {
    VppScenario vpp(50);
    sim::ScenarioConfig cfg;
    cfg.prefixes = 50;
    sim::LinuxTestbed pktsrc(cfg);
    auto req = [&](int s) {
      return pktsrc.forward_packet(s % 50, static_cast<std::uint16_t>(s), 66);
    };
    auto r = runner.run(vpp.router, req, req);
    report("VPP", r.rtt_us, "85.6 / 182.3");
  }
  {
    sim::ScenarioConfig cfg;
    cfg.prefixes = 50;
    cfg.accel = sim::Accel::kLinuxFpXdp;
    sim::LinuxTestbed dut(cfg);
    auto r = runner.run(dut, request_of(dut), request_of(dut));
    report("LinuxFP", r.rtt_us, "151.7 / 279.4");

    sim::ScenarioConfig plain;
    plain.prefixes = 50;
    sim::LinuxTestbed linux_dut(plain);
    auto lr = runner.run(linux_dut, request_of(linux_dut),
                         request_of(linux_dut));
    std::printf("\nshape checks:\n");
    std::printf("  LinuxFP latency reduction vs Linux = %.0f%%   (paper: 53%%)\n",
                (1.0 - r.rtt_us.mean() / lr.rtt_us.mean()) * 100);
  }
  return 0;
}
