// Table V: pod-to-pod latency with a single pod pair (ms), intra- and
// inter-node, Flannel CNI, netperf TCP_RR — Linux vs LinuxFP with the
// unmodified plugin.
#include <cstdio>

#include "bench/bench_util.h"
#include "k8s/cluster.h"
#include "k8s/latency_model.h"

using namespace linuxfp;
using namespace linuxfp::bench;

namespace {
struct Measured {
  std::uint64_t intra_cycles = 0;
  std::uint64_t inter_cycles = 0;
  int inter_crossings = 0;
};

Measured measure(bool linuxfp) {
  k8s::Cluster cluster(2);
  if (linuxfp) cluster.enable_linuxfp();
  auto a = cluster.launch_pod(1);
  auto b = cluster.launch_pod(1);
  auto c = cluster.launch_pod(2);
  cluster.warm_path(a, b);
  cluster.warm_path(a, c);
  Measured m;
  m.intra_cycles = cluster.run_rr_transaction(a, b).cycles;
  auto inter = cluster.run_rr_transaction(a, c);
  m.inter_cycles = inter.cycles;
  m.inter_crossings = inter.underlay_crossings;
  return m;
}
}  // namespace

int main() {
  print_header("Table V — pod-to-pod RTT, single pair, Flannel CNI (ms)",
               "paper: Linux intra 9.68/20.1, LinuxFP intra 7.92/15.9, Linux "
               "inter 29.2/34.7, LinuxFP inter 25.2/30.9 (avg/p99)");

  Measured linux_m = measure(false);
  Measured lfp_m = measure(true);

  k8s::PodLatencyModel model;
  const int kSamples = 20000;

  print_row({"config", "avg", "p99", "stddev", "paper avg/p99"},
            {20, 10, 10, 10, 24});
  struct Row {
    const char* name;
    std::uint64_t cycles;
    int crossings;
    const char* paper;
    std::uint64_t seed;
  };
  Row rows[] = {
      {"Linux (intra)", linux_m.intra_cycles, 0, "9.68 / 20.1", 11},
      {"LinuxFP (intra)", lfp_m.intra_cycles, 0, "7.92 / 15.9", 12},
      {"Linux (inter)", linux_m.inter_cycles, linux_m.inter_crossings,
       "29.2 / 34.7", 13},
      {"LinuxFP (inter)", lfp_m.inter_cycles, lfp_m.inter_crossings,
       "25.2 / 30.9", 14},
  };
  for (const Row& row : rows) {
    auto samples = model.sample_rtts(row.cycles, row.crossings, kSamples,
                                     row.seed);
    print_row({row.name, fmt(samples.mean(), 3), fmt(samples.p99(), 1),
               fmt(samples.stddev(), 3), row.paper},
              {20, 10, 10, 10, 24});
  }

  std::printf("\nmeasured datapath cycles per transaction:\n");
  std::printf("  intra: Linux %llu, LinuxFP %llu  (reduction %.0f%%, paper "
              "RTT reduction 18%%)\n",
              (unsigned long long)linux_m.intra_cycles,
              (unsigned long long)lfp_m.intra_cycles,
              100.0 * (1.0 - double(lfp_m.intra_cycles) /
                                 double(linux_m.intra_cycles)));
  std::printf("  inter: Linux %llu, LinuxFP %llu  (reduction %.0f%%, paper "
              "RTT reduction 14%%)\n",
              (unsigned long long)linux_m.inter_cycles,
              (unsigned long long)lfp_m.inter_cycles,
              100.0 * (1.0 - double(lfp_m.inter_cycles) /
                                 double(linux_m.inter_cycles)));
  return 0;
}
