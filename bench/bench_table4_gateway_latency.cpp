// Table IV: virtual gateway RTT with a single core, 128 netperf sessions,
// including the Linux(ipset) and LinuxFP(ipset) variants.
#include "bench/bench_util.h"

using namespace linuxfp;
using namespace linuxfp::bench;

namespace {
sim::RrResult run_linux_variant(const sim::ScenarioConfig& cfg,
                                const sim::RrConfig& rr_cfg) {
  sim::LinuxTestbed dut(cfg);
  auto req = [&dut](int s) {
    return dut.forward_packet(s % 50, static_cast<std::uint16_t>(s), 66);
  };
  return sim::RrLatencyRunner(rr_cfg).run(dut, req, req);
}

void report(const std::string& name, const util::SampleSet& rtt,
            const std::string& paper_ref) {
  print_row({name, fmt(rtt.mean(), 3), fmt(rtt.p99(), 3),
             fmt(rtt.stddev(), 3), paper_ref},
            {18, 12, 12, 12, 28});
}
}  // namespace

int main() {
  print_header(
      "Table IV — virtual gateway RTT, 1 core, 128 sessions (us); 100 rules",
      "paper: Linux 388.9/512.4, Linux(ipset) 331.5/437.3, Polycube "
      "181.5/289.4, VPP 85.6/180.9, LinuxFP 212.8/317.6, LinuxFP(ipset) "
      "161.5/275.1");

  sim::RrConfig rr_cfg;
  rr_cfg.sessions = 128;
  rr_cfg.transactions = 20000;

  print_row({"platform", "avg", "p99", "stddev", "paper avg/p99"},
            {18, 12, 12, 12, 28});

  sim::ScenarioConfig base;
  base.prefixes = 50;
  base.filter_rules = 100;

  {
    auto r = run_linux_variant(base, rr_cfg);
    report("Linux", r.rtt_us, "388.9 / 512.4");
  }
  {
    auto cfg = base;
    cfg.use_ipset = true;
    auto r = run_linux_variant(cfg, rr_cfg);
    report("Linux (ipset)", r.rtt_us, "331.5 / 437.3");
  }
  {
    PolycubeScenario pcn(50, 100);
    auto req = [&](int s) {
      return pcn.host->forward_packet(s % 50, static_cast<std::uint16_t>(s),
                                      66);
    };
    auto r = sim::RrLatencyRunner(rr_cfg).run(*pcn.router, req, req);
    report("Polycube", r.rtt_us, "181.5 / 289.4");
  }
  {
    VppScenario vpp(50, 100);
    sim::ScenarioConfig src_cfg;
    src_cfg.prefixes = 1;
    sim::LinuxTestbed pktsrc(src_cfg);
    auto req = [&](int s) {
      return pktsrc.forward_packet(s % 50, static_cast<std::uint16_t>(s), 66);
    };
    auto r = sim::RrLatencyRunner(rr_cfg).run(vpp.router, req, req);
    report("VPP", r.rtt_us, "85.6 / 180.9");
  }
  {
    auto cfg = base;
    cfg.accel = sim::Accel::kLinuxFpXdp;
    auto r = run_linux_variant(cfg, rr_cfg);
    report("LinuxFP", r.rtt_us, "212.8 / 317.6");
  }
  {
    auto cfg = base;
    cfg.accel = sim::Accel::kLinuxFpXdp;
    cfg.use_ipset = true;
    auto r = run_linux_variant(cfg, rr_cfg);
    report("LinuxFP (ipset)", r.rtt_us, "161.5 / 275.1");
  }
  std::printf("\nshape checks: ipset < linear rules on both platforms; "
              "LinuxFP(ipset) below Polycube; ordering Linux > Linux(ipset) > "
              "LinuxFP > LinuxFP(ipset) > VPP\n");
  return 0;
}
