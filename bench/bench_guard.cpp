// Equivalence-guard cost and reaction: (1) steady-state overhead of sampled
// shadow execution on the Fig-5 router config — 1-in-K flows replay through
// the slow path, so the expected cost is ~S/(K*F) of the fast-path budget
// (DESIGN.md §13) and the CI gate holds K=64 to <=5%; (2) breaker reaction —
// packets/sim-time from an injected fast-path divergence to quarantine, and
// from quarantine through re-probe + half-open to a closed breaker.
//
// Emits BENCH_guard.json; --smoke trims the throughput sample counts.
#include "bench/bench_util.h"
#include "core/controller.h"
#include "core/guard.h"
#include "util/fault.h"

using namespace linuxfp;
using namespace linuxfp::bench;

namespace {

struct TputPoint {
  double pps = 0;
  double cycles = 0;
  double fast_fraction = 0;
};

TputPoint measure(std::uint32_t sample_every, std::uint64_t samples) {
  sim::ScenarioConfig cfg;
  cfg.prefixes = 50;
  cfg.accel = sim::Accel::kLinuxFpXdp;
  if (sample_every > 0) {
    cfg.guard.enabled = true;
    cfg.guard.canary_packets = 64;
    cfg.guard.sample_every = sample_every;
  }
  sim::LinuxTestbed dut(cfg);
  sim::ThroughputRunner runner(25e9, samples);
  const int flows = 512;

  if (sample_every > 0) {
    // Warm through the canary so the measured run is steady-state active
    // mode (sampled shadowing), not the all-slow-path shadow phase.
    (void)runner.run(dut, forward_factory(dut, 50, flows), 1, 64);
    core::GuardUnit* unit =
        dut.controller()->guard()->unit("eth0", ebpf::HookType::kXdp);
    LFP_CHECK_MSG(unit && unit->mode() == core::GuardMode::kActive,
                  "guard canary failed to promote during warmup");
  }
  auto r = runner.run(dut, forward_factory(dut, 50, flows), 1, 64);
  return {r.total_pps, r.mean_cycles_per_pkt, r.fast_path_fraction};
}

}  // namespace

int main(int argc, char** argv) {
  Reporter reporter("guard", argc, argv);
  const std::uint64_t samples = reporter.smoke() ? 600 : 6000;

  // --- sampled-shadow overhead --------------------------------------------
  print_header(
      "Equivalence guard — sampled shadow overhead (Fig-5 router, 1 core)",
      "DESIGN.md §13: 1-in-K sampling costs ~S/(K*F); K=64 must stay <=5%");

  std::vector<int> widths{12, 12, 14, 10, 10};
  print_row({"config", "Mpps", "cycles/pkt", "fast%", "vs off"}, widths);

  TputPoint off = measure(0, samples);
  print_row({"guard off", fmt_mpps(off.pps), fmt(off.cycles, 1),
             fmt(off.fast_fraction * 100, 1), "1.000"},
            widths);
  util::Json row = util::Json::object();
  row["sample_every"] = 0;
  row["pps"] = off.pps;
  row["cycles_per_pkt"] = off.cycles;
  reporter.add_row(row);

  double ratio64 = 0;
  std::vector<std::uint32_t> ks =
      reporter.smoke() ? std::vector<std::uint32_t>{64}
                       : std::vector<std::uint32_t>{8, 16, 64, 256};
  for (std::uint32_t k : ks) {
    TputPoint p = measure(k, samples);
    double ratio = p.pps / off.pps;
    if (k == 64) ratio64 = ratio;
    print_row({"1-in-" + std::to_string(k), fmt_mpps(p.pps), fmt(p.cycles, 1),
               fmt(p.fast_fraction * 100, 1), fmt(ratio, 3)},
              widths);
    util::Json r = util::Json::object();
    r["sample_every"] = static_cast<int>(k);
    r["pps"] = p.pps;
    r["cycles_per_pkt"] = p.cycles;
    r["ratio_vs_off"] = ratio;
    reporter.add_row(r);
  }
  reporter.set("overhead_ratio_1_in_64", ratio64);
  std::printf("\nshape check: 1-in-64 sampling keeps >=95%% of unguarded "
              "throughput (measured ratio %.3f)\n", ratio64);

  // --- breaker reaction and recovery latency ------------------------------
  print_header(
      "Equivalence guard — divergence reaction / recovery (sim clock)",
      "sampled shadow detects an injected fast-path divergence; breaker "
      "quarantines to the bare slow path, re-probes, half-open closes");

  constexpr std::uint64_t kInterArrivalNs = 1000;  // 1 Mpps offered load
  util::FaultScope faults(7);

  sim::ScenarioConfig cfg;
  cfg.prefixes = 50;
  cfg.accel = sim::Accel::kLinuxFpXdp;
  cfg.guard.enabled = true;
  cfg.guard.canary_packets = 32;
  cfg.guard.sample_every = 8;
  cfg.guard.half_open_packets = 16;
  cfg.guard.reprobe_base_ns = 1'000'000;  // 1 ms backoff base
  cfg.guard.reprobe_jitter = 0.0;
  sim::LinuxTestbed dut(cfg);
  kern::Kernel& kernel = dut.kernel();

  auto send_one = [&](std::uint64_t i) {
    kernel.set_now_ns(kernel.now_ns() + kInterArrivalNs);
    kern::CycleTrace trace;
    (void)kernel.rx(dut.ingress_ifindex(),
                    dut.forward_packet(static_cast<int>(i % 50),
                                       static_cast<std::uint16_t>(i % 512)),
                    trace);
  };

  core::GuardUnit* unit =
      dut.controller()->guard()->unit("eth0", ebpf::HookType::kXdp);
  LFP_CHECK_MSG(unit != nullptr, "no guard unit on eth0");
  std::uint64_t i = 0;
  while (unit->mode() != core::GuardMode::kActive && i < 1000) send_one(i++);
  LFP_CHECK_MSG(unit->mode() == core::GuardMode::kActive,
                "canary failed to promote");

  // Inject: the next sampled shadow expectation is corrupted (an
  // unsatisfiable verdict), modeling a latent synthesizer bug.
  faults->fail_times(util::kFaultGuardVerdict, 1);
  const std::uint64_t armed_ns = kernel.now_ns();
  std::uint64_t detect_packets = 0;
  while (unit->mode() != core::GuardMode::kQuarantined &&
         detect_packets < 10000) {
    send_one(i++);
    ++detect_packets;
  }
  bool quarantined = unit->mode() == core::GuardMode::kQuarantined;
  LFP_CHECK_MSG(quarantined, "injected divergence never tripped the breaker");
  faults->clear(util::kFaultGuardVerdict);
  const std::uint64_t trip_ns = kernel.now_ns();
  dut.controller()->run_once();  // complete quarantine: PASS + epoch flush

  // Recovery: wait out the backoff, redeploy into half-open, probe clean.
  std::uint64_t reprobe = dut.controller()->guard()->next_reprobe_ns();
  LFP_CHECK_MSG(reprobe != 0, "no re-probe scheduled after quarantine");
  kernel.set_now_ns(std::max(reprobe, kernel.now_ns() + 1));
  dut.controller()->run_once();
  LFP_CHECK_MSG(unit->mode() == core::GuardMode::kHalfOpen,
                "re-probe did not enter half-open");
  std::uint64_t probe_packets = 0;
  while (unit->mode() != core::GuardMode::kActive && probe_packets < 1000) {
    send_one(i++);
    ++probe_packets;
  }
  bool recovered = unit->mode() == core::GuardMode::kActive;
  LFP_CHECK_MSG(recovered, "half-open probes never closed the breaker");
  kernel.set_now_ns(kernel.now_ns() + 1);
  dut.controller()->run_once();  // controller observes the close
  const std::uint64_t recovered_ns = kernel.now_ns();

  print_row({"metric", "value"}, {34, 20});
  print_row({"detection (packets)", std::to_string(detect_packets)}, {34, 20});
  print_row({"detection (us, 1 Mpps offered)",
             fmt((trip_ns - armed_ns) / 1e3, 1)},
            {34, 20});
  print_row({"recovery (us incl. backoff)",
             fmt((recovered_ns - trip_ns) / 1e3, 1)},
            {34, 20});
  print_row({"half-open probes", std::to_string(probe_packets)}, {34, 20});

  util::Json reaction = util::Json::object();
  reaction["detection_packets"] = static_cast<int>(detect_packets);
  reaction["detection_ns"] = static_cast<double>(trip_ns - armed_ns);
  reaction["recovery_ns"] = static_cast<double>(recovered_ns - trip_ns);
  reaction["half_open_probes"] = static_cast<int>(probe_packets);
  reaction["quarantined"] = quarantined;
  reaction["recovered"] = recovered;
  reporter.set("reaction", reaction);

  std::printf("\nshape check: detection takes O(sample_every) packets "
              "(%llu <= %u expected scale); recovery is backoff-dominated.\n",
              static_cast<unsigned long long>(detect_packets),
              8 * 4);
  return 0;
}
