// Figure 1: the hot-spot observation that motivates LinuxFP — when Linux is
// configured to forward with `ip route`, the overwhelming majority of
// packets walk the same sequence of kernel functions. We reconstruct the
// flame-graph view from the slow path's stage traces.
//
// Emits BENCH_fig1_hotspots.json (see bench::Reporter); --smoke trims the
// packet count for CI.
#include <algorithm>
#include <cstdio>
#include <map>

#include "bench/bench_util.h"

using namespace linuxfp;
using namespace linuxfp::bench;

int main(int argc, char** argv) {
  Reporter reporter("fig1_hotspots", argc, argv);

  print_header("Fig 1 — hot spots in Linux forwarding (stage profile)",
               "paper Fig 1: one dominant call path for forwarding traffic");

  sim::ScenarioConfig cfg;
  cfg.prefixes = 50;
  sim::LinuxTestbed dut(cfg);

  std::map<std::string, std::uint64_t> stage_cycles;
  std::map<std::string, std::uint64_t> path_counts;
  std::uint64_t total_cycles = 0;
  const int kPackets = reporter.smoke() ? 200 : 2000;

  for (int i = 0; i < kPackets; ++i) {
    kern::CycleTrace trace(/*record_stages=*/true);
    dut.kernel().rx(dut.ingress_ifindex(),
                    dut.forward_packet(i % 50,
                                       static_cast<std::uint16_t>(i % 256)),
                    trace);
    std::string path;
    for (const auto& [stage, cycles] : trace.stages()) {
      stage_cycles[stage] += cycles;
      total_cycles += cycles;
      if (!path.empty()) path += ";";
      path += stage;
    }
    ++path_counts[path];
  }

  std::printf("\nper-stage share of cycles (flame-graph widths):\n");
  std::vector<std::pair<std::string, std::uint64_t>> sorted(
      stage_cycles.begin(), stage_cycles.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  for (const auto& [stage, cycles] : sorted) {
    double pct = 100.0 * static_cast<double>(cycles) /
                 static_cast<double>(total_cycles);
    std::printf("  %-18s %5.1f%%  %s\n", stage.c_str(), pct,
                std::string(static_cast<std::size_t>(pct), '#').c_str());
    util::Json row = util::Json::object();
    row["stage"] = stage;
    row["cycles"] = static_cast<std::uint64_t>(cycles);
    row["pct"] = pct;
    reporter.add_row(row);
  }

  std::printf("\ndistinct call paths observed: %zu\n", path_counts.size());
  for (const auto& [path, count] : path_counts) {
    std::printf("  %5.1f%% of packets: %s\n", 100.0 * count / kPackets,
                path.c_str());
  }

  // The per-bench aggregation above should match the always-on metrics
  // registry (slowpath.<stage>.cycles) — operators get the same profile
  // from `linuxfpctl show` without instrumenting a bench.
  const kern::Kernel& k = dut.kernel();
  bool coherent = true;
  for (const auto& [stage, cycles] : stage_cycles) {
    if (k.metrics().value("slowpath." + stage + ".cycles") != cycles) {
      coherent = false;
    }
  }
  std::printf("\nmetrics registry coherence (slowpath.*.cycles == trace "
              "aggregation): %s\n",
              coherent ? "yes" : "NO");

  util::Json shape = util::Json::object();
  shape["distinct_paths"] = static_cast<std::int64_t>(path_counts.size());
  shape["metrics_coherent"] = coherent;
  reporter.set("shape_checks", shape);

  std::printf("\nshape check: a single call path dominates — the premise of "
              "rule-based hot-spot acceleration (paper §II-C).\n");
  return 0;
}
