// Ablation: state unification via kernel-bound helpers (LinuxFP, paper
// §IV-B2) vs mirrored eBPF maps with a separate control plane (Polycube
// style). Under a route flap driven through standard Linux tooling, LinuxFP
// is correct on the very next packet; the mirrored pipeline keeps using
// stale state until ITS control plane is reconfigured.
#include <cstdio>

#include "bench/bench_util.h"

using namespace linuxfp;
using namespace linuxfp::bench;

int main() {
  print_header(
      "Ablation — state coherence: kernel-bound helpers vs mirrored maps",
      "paper §IV-B2: 'every packet must be able to be processed either by "
      "the LinuxFP fast path or by the kernel with the identical result'");

  const int kFlaps = 50;
  const int kPacketsPerPhase = 20;

  // --- LinuxFP ------------------------------------------------------------
  int lfp_wrong = 0;
  {
    sim::ScenarioConfig cfg;
    cfg.prefixes = 1;
    cfg.accel = sim::Accel::kLinuxFpXdp;
    sim::LinuxTestbed dut(cfg);
    for (int flap = 0; flap < kFlaps; ++flap) {
      dut.run("ip route del 10.100.0.0/24");
      // Route is gone: any forwarded packet is a correctness violation.
      // (The controller is NOT consulted between packets — the point is
      // what happens inside the staleness window.)
      for (int i = 0; i < kPacketsPerPhase; ++i) {
        auto out = dut.process(
            dut.forward_packet(0, static_cast<std::uint16_t>(i)));
        if (out.forwarded) ++lfp_wrong;
      }
      dut.run("ip route add 10.100.0.0/24 via 10.10.2.2 dev eth1");
      for (int i = 0; i < kPacketsPerPhase; ++i) {
        auto out = dut.process(
            dut.forward_packet(0, static_cast<std::uint16_t>(i)));
        if (!out.forwarded) ++lfp_wrong;  // route exists; must forward
      }
    }
  }

  // --- Mirrored-map pipeline (Polycube) --------------------------------------
  int pcn_wrong = 0;
  {
    PolycubeScenario pcn(1);
    auto& kernel = pcn.host->kernel();
    // Kernel route state flaps via iproute2 (what FRR would do); Polycube's
    // control plane is NOT invoked — mirroring the operational reality that
    // standard tooling does not know about the custom pipeline.
    for (int flap = 0; flap < kFlaps; ++flap) {
      (void)kern::run_command(kernel, "ip route del 10.100.0.0/24");
      for (int i = 0; i < kPacketsPerPhase; ++i) {
        auto out = pcn.router->process(
            pcn.host->forward_packet(0, static_cast<std::uint16_t>(i)));
        if (out.forwarded) ++pcn_wrong;  // stale map still forwards
      }
      (void)kern::run_command(
          kernel, "ip route add 10.100.0.0/24 via 10.10.2.2 dev eth1");
      for (int i = 0; i < kPacketsPerPhase; ++i) {
        auto out = pcn.router->process(
            pcn.host->forward_packet(0, static_cast<std::uint16_t>(i)));
        if (!out.forwarded) ++pcn_wrong;
      }
    }
  }

  int total = kFlaps * kPacketsPerPhase * 2;
  print_row({"platform", "incoherent pkts", "of total", "rate"},
            {22, 18, 10, 10});
  print_row({"LinuxFP (helpers)", std::to_string(lfp_wrong),
             std::to_string(total), fmt(100.0 * lfp_wrong / total, 1) + "%"},
            {22, 18, 10, 10});
  print_row({"Mirrored maps", std::to_string(pcn_wrong),
             std::to_string(total), fmt(100.0 * pcn_wrong / total, 1) + "%"},
            {22, 18, 10, 10});
  std::printf("\nshape check: LinuxFP 0%% incoherent (state unification by "
              "construction); the mirrored pipeline diverges for the entire "
              "window in which kernel state and platform state disagree.\n");
  return 0;
}
