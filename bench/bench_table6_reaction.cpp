// Table VI: LinuxFP controller reaction time — from a configuration command
// to confirmed fast-path installation. Wall time is measured in-process; the
// "modeled" column adds the clang-compile/libbpf stages the real controller
// pays (this reproduction renders straight to bytecode — see EXPERIMENTS.md).
//
// The event-storm mode (DESIGN.md §17) drives a container-host topology —
// a few routed uplinks plus a bridge full of pod ports — through a sustained
// stream of mixed config events, comparing a from-scratch controller (every
// event re-emits every graph) against delta synthesis (only graphs whose
// description changed are re-emitted). Reaction work must be proportional to
// the delta, not to the topology size.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/controller.h"
#include "ebpf/loader.h"

using namespace linuxfp;
using namespace linuxfp::bench;

namespace {
struct Step {
  const char* command;
  const char* paper;
  // Pre-commands to bring the kernel into the right state first.
  std::vector<std::string> setup;
};

// Container-host DUT for the storm: routed physical uplinks plus an
// address-less bridge whose pod-facing veth ports each carry their own
// bridge-port FPM graph.
struct StormDut {
  kern::Kernel kernel{"host"};
  int pods = 0;

  explicit StormDut(int initial_pods) {
    for (const char* d : {"eth0", "eth1", "eth2", "eth3"}) {
      kernel.add_phys_dev(d).set_phys_tx([](net::Packet&&) {});
      run(std::string("ip link set ") + d + " up");
    }
    run("ip addr add 10.10.1.1/24 dev eth0");
    run("ip addr add 10.10.2.1/24 dev eth1");
    run("ip addr add 10.10.3.1/24 dev eth2");
    run("ip addr add 10.10.4.1/24 dev eth3");
    run("sysctl -w net.ipv4.ip_forward=1");
    run("ip neigh add 10.10.2.2 lladdr " +
        net::MacAddr::from_id(0x601).to_string() + " dev eth1 nud permanent");
    run("ip route add 10.100.0.0/24 via 10.10.2.2 dev eth1");
    run("ip link add br0 type bridge");
    run("ip link set br0 up");
    for (int i = 0; i < initial_pods; ++i) add_pod();
  }

  void run(const std::string& cmd) {
    auto st = kern::run_command(kernel, cmd);
    LFP_CHECK_MSG(st.ok(), "storm setup failed: " + cmd);
  }

  void add_pod() {
    std::string port = "pod" + std::to_string(pods);
    run("ip link add " + port + " type veth peer name ns" +
        std::to_string(pods));
    run("ip link set " + port + " up");
    run("ip link set " + port + " master br0");
    ++pods;
  }

  void del_pod() {
    if (pods == 0) return;
    --pods;
    run("ip link del pod" + std::to_string(pods));
  }
};

// The deployed-FPM-set equivalence check: same attachments, bit-identical
// active programs.
bool deployments_equivalent(core::Controller& a, core::Controller& b,
                            const StormDut& da, const StormDut& db) {
  if (a.deployer().attachment_count() != b.deployer().attachment_count()) {
    return false;
  }
  std::vector<std::string> devs{"eth0", "eth1", "eth2", "eth3"};
  for (int i = 0; i < da.pods; ++i) devs.push_back("pod" + std::to_string(i));
  if (da.pods != db.pods) return false;
  for (const std::string& dev : devs) {
    ebpf::Attachment* aa =
        a.deployer().attachment(dev, ebpf::HookType::kXdp);
    ebpf::Attachment* ab =
        b.deployer().attachment(dev, ebpf::HookType::kXdp);
    if ((aa == nullptr) != (ab == nullptr)) return false;
    if (!aa) continue;
    const ebpf::Program& pa = aa->programs()[aa->active_prog_id()];
    const ebpf::Program& pb = ab->programs()[ab->active_prog_id()];
    if (pa.name != pb.name || pa.insns.size() != pb.insns.size()) return false;
    for (std::size_t k = 0; k < pa.insns.size(); ++k) {
      const ebpf::Insn& x = pa.insns[k];
      const ebpf::Insn& y = pb.insns[k];
      if (!(x.op == y.op && x.dst == y.dst && x.src == y.src &&
            x.use_imm == y.use_imm && x.off == y.off && x.imm == y.imm &&
            x.size == y.size)) {
        return false;
      }
    }
  }
  return true;
}
}  // namespace

int main(int argc, char** argv) {
  Reporter reporter("reaction", argc, argv);
  print_header("Table VI — controller reaction time (s)",
               "paper: ip addr 0.602, brctl addbr 0.539, brctl addif 0.493, "
               "iptables -A 1.028");

  print_row({"command", "measured(ms)", "modeled(s)", "paper(s)"},
            {46, 14, 12, 10});

  Step steps[] = {
      {"ip addr add 10.10.1.1/24 dev ens1f0np0",
       "0.602",
       {"sysctl -w net.ipv4.ip_forward=1",
        "ip route add 10.2.0.0/16 via 10.10.1.2 dev ens1f0np0"}},
      {"brctl addbr br0", "0.539", {}},
      {"brctl addif br0 veth11", "0.493", {"brctl addbr br0"}},
      {"iptables -A FORWARD -d 10.10.3.0/24 -j DROP",
       "1.028",
       {"ip addr add 10.10.1.1/24 dev ens1f0np0",
        "sysctl -w net.ipv4.ip_forward=1",
        "ip route add 10.2.0.0/16 via 10.10.1.2 dev ens1f0np0"}},
  };

  for (const Step& step : steps) {
    kern::Kernel kernel("dut");
    kernel.add_phys_dev("ens1f0np0");
    kernel.add_veth_pair("veth11", "veth11p");
    (void)kern::run_command(kernel, "ip link set ens1f0np0 up");
    (void)kern::run_command(kernel, "ip link set veth11 up");

    core::ControllerOptions opts;
    opts.attach_bridge_ports = true;
    core::Controller controller(kernel, opts);
    controller.start();
    for (const std::string& pre : step.setup) {
      auto st = kern::run_command(kernel, pre);
      LFP_CHECK_MSG(st.ok(), "setup failed: " + pre);
      controller.run_once();
    }

    auto st = kern::run_command(kernel, step.command);
    LFP_CHECK_MSG(st.ok(), std::string("command failed: ") + step.command);
    core::Reaction reaction = controller.run_once();

    print_row({step.command, fmt(reaction.wall_seconds * 1e3, 3),
               fmt(reaction.modeled_seconds, 3), step.paper},
              {46, 14, 12, 10});
    util::Json row = util::Json::object();
    row["command"] = std::string(step.command);
    row["measured_ms"] = reaction.wall_seconds * 1e3;
    row["modeled_s"] = reaction.modeled_seconds;
    reporter.add_row(std::move(row));
  }

  // --- event-storm mode ------------------------------------------------------
  const int kPods = 64;
  const int kEvents = reporter.smoke() ? 200 : 1000;
  print_header(
      "Event storm — from-scratch vs delta synthesis (" +
          std::to_string(kEvents) + " events, 4 uplinks + " +
          std::to_string(kPods) + " pod ports)",
      "DESIGN.md §17: reaction work proportional to the delta, not the "
      "topology");

  StormDut full_dut(kPods), delta_dut(kPods);
  core::ControllerOptions full_opts;
  full_opts.attach_bridge_ports = true;
  full_opts.delta_synthesis = false;
  core::Controller full_ctl(full_dut.kernel, full_opts);
  core::ControllerOptions delta_opts;
  delta_opts.attach_bridge_ports = true;
  core::Controller delta_ctl(delta_dut.kernel, delta_opts);
  full_ctl.start();
  delta_ctl.start();
  std::uint64_t full_base = full_ctl.graph_resynth_count();
  std::uint64_t delta_base = delta_ctl.graph_resynth_count();

  double full_time = 0, delta_time = 0;
  double full_modeled = 0, delta_modeled = 0;
  int routes = 0, rules = 0;
  auto both = [&](const std::string& cmd) {
    full_dut.run(cmd);
    delta_dut.run(cmd);
  };
  for (int ev = 0; ev < kEvents; ++ev) {
    switch (ev % 5) {
      case 0:
        both("ip route add 10." + std::to_string(101 + routes % 100) + "." +
             std::to_string(routes / 100) + ".0/24 via 10.10.2.2 dev eth1");
        ++routes;
        break;
      case 1:
        both("iptables -A FORWARD -s 10.66." + std::to_string(rules / 250) +
             "." + std::to_string(1 + rules % 250) + " -j DROP");
        ++rules;
        break;
      case 2:
        full_dut.add_pod();
        delta_dut.add_pod();
        break;
      case 3:
        if (routes > 0) {
          --routes;
          both("ip route del 10." + std::to_string(101 + routes % 100) + "." +
               std::to_string(routes / 100) + ".0/24");
        }
        break;
      default:
        full_dut.del_pod();
        delta_dut.del_pod();
        break;
    }
    core::Reaction fr = full_ctl.run_once();
    core::Reaction dr = delta_ctl.run_once();
    full_time += fr.wall_seconds;
    delta_time += dr.wall_seconds;
    // Modeled time folds in the clang/libbpf stages the real controller pays
    // per emitted program (Table VI) — the cost delta synthesis avoids.
    full_modeled += fr.modeled_seconds;
    delta_modeled += dr.modeled_seconds;
  }

  std::uint64_t full_graphs = full_ctl.graph_resynth_count() - full_base;
  std::uint64_t delta_graphs = delta_ctl.graph_resynth_count() - delta_base;
  double speedup = delta_time > 0 ? full_time / delta_time : 0;
  double modeled_speedup =
      delta_modeled > 0 ? full_modeled / delta_modeled : 0;
  double resynth_ratio =
      delta_graphs > 0 ? static_cast<double>(full_graphs) / delta_graphs : 0;
  bool equivalent =
      deployments_equivalent(full_ctl, delta_ctl, full_dut, delta_dut);

  print_row({"mode", "sum wall(ms)", "sum modeled(s)", "graphs emitted",
             "per event"},
            {14, 14, 16, 16, 10});
  print_row({"from-scratch", fmt(full_time * 1e3, 1), fmt(full_modeled, 1),
             std::to_string(full_graphs),
             fmt(static_cast<double>(full_graphs) / kEvents, 1)},
            {14, 14, 16, 16, 10});
  print_row({"delta", fmt(delta_time * 1e3, 1), fmt(delta_modeled, 1),
             std::to_string(delta_graphs),
             fmt(static_cast<double>(delta_graphs) / kEvents, 1)},
            {14, 14, 16, 16, 10});
  std::printf("\nstorm: wall speedup %.1fx, modeled reaction speedup %.1fx, "
              "graph-emission ratio %.1fx, deployed FPM sets %s\n",
              speedup, modeled_speedup, resynth_ratio,
              equivalent ? "EQUIVALENT" : "DIVERGED");

  reporter.set("storm_events", kEvents);
  reporter.set("storm_speedup", speedup);
  reporter.set("storm_modeled_speedup", modeled_speedup);
  reporter.set("storm_resynth_ratio", resynth_ratio);
  reporter.set("storm_full_graphs", static_cast<double>(full_graphs));
  reporter.set("storm_delta_graphs", static_cast<double>(delta_graphs));
  reporter.set("storm_equivalent", equivalent);

  std::printf("\nshape check: the iptables command reacts slowest (netfilter "
              "introspection + larger synthesized data path), matching the "
              "paper's ordering; storm modeled-reaction and graph-emission "
              "ratios >=5x with equivalent deployed programs.\n");
  return 0;
}
