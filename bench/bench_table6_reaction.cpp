// Table VI: LinuxFP controller reaction time — from a configuration command
// to confirmed fast-path installation. Wall time is measured in-process; the
// "modeled" column adds the clang-compile/libbpf stages the real controller
// pays (this reproduction renders straight to bytecode — see EXPERIMENTS.md).
#include <cstdio>

#include "bench/bench_util.h"
#include "core/controller.h"

using namespace linuxfp;
using namespace linuxfp::bench;

namespace {
struct Step {
  const char* command;
  const char* paper;
  // Pre-commands to bring the kernel into the right state first.
  std::vector<std::string> setup;
};
}  // namespace

int main() {
  print_header("Table VI — controller reaction time (s)",
               "paper: ip addr 0.602, brctl addbr 0.539, brctl addif 0.493, "
               "iptables -A 1.028");

  print_row({"command", "measured(ms)", "modeled(s)", "paper(s)"},
            {46, 14, 12, 10});

  Step steps[] = {
      {"ip addr add 10.10.1.1/24 dev ens1f0np0",
       "0.602",
       {"sysctl -w net.ipv4.ip_forward=1",
        "ip route add 10.2.0.0/16 via 10.10.1.2 dev ens1f0np0"}},
      {"brctl addbr br0", "0.539", {}},
      {"brctl addif br0 veth11", "0.493", {"brctl addbr br0"}},
      {"iptables -A FORWARD -d 10.10.3.0/24 -j DROP",
       "1.028",
       {"ip addr add 10.10.1.1/24 dev ens1f0np0",
        "sysctl -w net.ipv4.ip_forward=1",
        "ip route add 10.2.0.0/16 via 10.10.1.2 dev ens1f0np0"}},
  };

  for (const Step& step : steps) {
    kern::Kernel kernel("dut");
    kernel.add_phys_dev("ens1f0np0");
    kernel.add_veth_pair("veth11", "veth11p");
    (void)kern::run_command(kernel, "ip link set ens1f0np0 up");
    (void)kern::run_command(kernel, "ip link set veth11 up");

    core::ControllerOptions opts;
    opts.attach_bridge_ports = true;
    core::Controller controller(kernel, opts);
    controller.start();
    for (const std::string& pre : step.setup) {
      auto st = kern::run_command(kernel, pre);
      LFP_CHECK_MSG(st.ok(), "setup failed: " + pre);
      controller.run_once();
    }

    auto st = kern::run_command(kernel, step.command);
    LFP_CHECK_MSG(st.ok(), std::string("command failed: ") + step.command);
    core::Reaction reaction = controller.run_once();

    print_row({step.command, fmt(reaction.wall_seconds * 1e3, 3),
               fmt(reaction.modeled_seconds, 3), step.paper},
              {46, 14, 12, 10});
  }
  std::printf("\nshape check: the iptables command reacts slowest (netfilter "
              "introspection + larger synthesized data path), matching the "
              "paper's ordering.\n");
  return 0;
}
