// Extension bench: ipvs load-balancer acceleration (paper §VIII "initial
// prototyping is showing promising results"). Measures director throughput
// for established flows — Linux slow path vs the synthesized loadbalance FPM
// — plus the new-flow (scheduling) path that stays slow by design.
#include "bench/bench_util.h"

#include "kernel/commands.h"

using namespace linuxfp;
using namespace linuxfp::bench;

namespace {
struct DirectorDut {
  sim::LinuxTestbed testbed;

  explicit DirectorDut(sim::Accel accel) : testbed(make_config(accel)) {
    testbed.run("ipvsadm -A -t 10.0.0.100:80 -s rr");
    testbed.run("ipvsadm -a -t 10.0.0.100:80 -r 10.100.0.5:8080");
    testbed.run("ipvsadm -a -t 10.0.0.100:80 -r 10.100.0.6:8080");
  }

  static sim::ScenarioConfig make_config(sim::Accel accel) {
    sim::ScenarioConfig cfg;
    cfg.prefixes = 1;
    cfg.accel = accel;
    return cfg;
  }

  net::Packet vip_packet(std::uint16_t sport) {
    net::FlowKey f;
    f.src_ip = net::Ipv4Addr::parse("10.10.1.2").value();
    f.dst_ip = net::Ipv4Addr::parse("10.0.0.100").value();
    f.proto = net::kIpProtoTcp;
    f.src_port = sport;
    f.dst_port = 80;
    return net::build_tcp_packet(net::MacAddr::from_id(0x501),
                                 testbed.kernel().dev_by_name("eth0")->mac(),
                                 f, 0x18, 64);
  }
};
}  // namespace

int main() {
  print_header(
      "Extension — ipvs director throughput (established flows, 1 core)",
      "paper §VIII: ipvs acceleration prototyping 'showing promising "
      "results'; Table I row 4 decomposition");

  const int kFlows = 128;

  auto measure = [&](DirectorDut& dut, bool established) {
    // Establish all flows first (slow-path scheduling).
    if (established) {
      for (int i = 0; i < kFlows; ++i) {
        dut.testbed.process(dut.vip_packet(static_cast<std::uint16_t>(i)));
      }
    }
    util::OnlineStats cycles;
    std::uint64_t fast = 0;
    for (int i = 0; i < 4000; ++i) {
      auto out = dut.testbed.process(
          dut.vip_packet(static_cast<std::uint16_t>(i % kFlows)));
      cycles.add(static_cast<double>(out.cycles));
      if (out.fast_path) ++fast;
    }
    return std::make_pair(cycles.mean(), 4000 ? double(fast) / 4000 : 0);
  };

  DirectorDut linux_dut(sim::Accel::kNone);
  DirectorDut lfp_dut(sim::Accel::kLinuxFpXdp);

  auto [linux_cycles, linux_fast] = measure(linux_dut, true);
  auto [lfp_cycles, lfp_fast] = measure(lfp_dut, true);

  double hz = linux_dut.testbed.cpu_hz();
  print_row({"platform", "cycles/pkt", "Mpps", "fast-path"}, {22, 14, 10, 12});
  print_row({"Linux (ipvs)", fmt(linux_cycles, 0), fmt_mpps(hz / linux_cycles),
             fmt(100 * linux_fast, 0) + "%"},
            {22, 14, 10, 12});
  print_row({"LinuxFP (lb FPM)", fmt(lfp_cycles, 0), fmt_mpps(hz / lfp_cycles),
             fmt(100 * lfp_fast, 0) + "%"},
            {22, 14, 10, 12});

  // New-flow path: scheduling stays slow on BOTH platforms by design.
  DirectorDut lfp_new(sim::Accel::kLinuxFpXdp);
  util::OnlineStats new_cycles;
  std::uint64_t new_fast = 0;
  for (int i = 0; i < 2000; ++i) {
    auto out =
        lfp_new.testbed.process(lfp_new.vip_packet(
            static_cast<std::uint16_t>(2000 + i)));  // every packet NEW
    new_cycles.add(static_cast<double>(out.cycles));
    if (out.fast_path) ++new_fast;
  }
  std::printf("\nnew-flow (scheduler) path on LinuxFP: %0.f cycles/pkt, "
              "fast-path share %.0f%% — scheduling is control-plane work "
              "(Table I), so NEW flows punt by design.\n",
              new_cycles.mean(), 100.0 * new_fast / 2000);
  std::printf("\nshape check: LinuxFP accelerates the established-flow "
              "(common) case by %.0f%% while inheriting Linux's scheduler "
              "unchanged.\n",
              100.0 * (1.0 - lfp_cycles / linux_cycles));
  return 0;
}
