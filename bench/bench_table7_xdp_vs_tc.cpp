// Table VII: throughput and latency of LinuxFP network functions on the XDP
// hook vs the TC hook, in a forwarding scenario (single core).
#include <cstdio>

#include "bench/bench_util.h"

using namespace linuxfp;
using namespace linuxfp::bench;

namespace {

struct NfResult {
  double pps = 0;
  double mean_latency_us = 0;
};

// Bridge scenario: two ports, stations pre-learned; fast path bridges.
NfResult run_bridge(sim::Accel accel, sim::RrConfig rr_cfg) {
  kern::Kernel k("dut");
  std::uint64_t sunk = 0;
  k.add_phys_dev("p1").set_phys_tx([](net::Packet&&) {});
  k.add_phys_dev("p2").set_phys_tx([&](net::Packet&&) { ++sunk; });
  (void)kern::run_command(k, "brctl addbr br0");
  for (const char* d : {"p1", "p2", "br0"}) {
    (void)kern::run_command(k, std::string("ip link set ") + d + " up");
  }
  (void)kern::run_command(k, "brctl addif br0 p1");
  (void)kern::run_command(k, "brctl addif br0 p2");
  auto a = net::MacAddr::from_id(0xA), b = net::MacAddr::from_id(0xB);
  int p1 = k.dev_by_name("p1")->ifindex();
  int p2 = k.dev_by_name("p2")->ifindex();
  k.bridge_by_name("br0")->fdb_learn(a, 0, p1, k.now_ns());
  k.bridge_by_name("br0")->fdb_learn(b, 0, p2, k.now_ns());

  std::unique_ptr<core::Controller> controller;
  if (accel != sim::Accel::kNone) {
    core::ControllerOptions opts;
    opts.attach_bridge_ports = true;
    opts.attach_physical = false;
    opts.hook = accel == sim::Accel::kLinuxFpTc ? "tc" : "xdp";
    controller = std::make_unique<core::Controller>(k, opts);
    controller->start();
  }

  net::FlowKey f;
  f.src_ip = net::Ipv4Addr::parse("1.1.1.1").value();
  f.dst_ip = net::Ipv4Addr::parse("2.2.2.2").value();
  util::OnlineStats cycles;
  for (int i = 0; i < 2000; ++i) {
    f.src_port = static_cast<std::uint16_t>(i);
    kern::CycleTrace t;
    k.rx(p1, net::build_udp_packet(a, b, f, 64), t);
    cycles.add(static_cast<double>(t.total()));
  }
  NfResult out;
  out.pps = k.cost().cpu_hz / cycles.mean();
  // Closed-loop latency estimate: sessions * 2 * service + base.
  double service_us = cycles.mean() / k.cost().cpu_hz * 1e6;
  out.mean_latency_us =
      rr_cfg.base_rtt_us + rr_cfg.sessions * 2 * service_us;
  return out;
}

NfResult run_l3(sim::Accel accel, int rules, sim::RrConfig rr_cfg) {
  sim::ScenarioConfig cfg;
  cfg.prefixes = 50;
  cfg.filter_rules = rules;
  cfg.accel = accel;
  sim::LinuxTestbed dut(cfg);
  util::OnlineStats cycles;
  for (int i = 0; i < 2000; ++i) {
    auto out = dut.process(
        dut.forward_packet(i % 50, static_cast<std::uint16_t>(i % 256)));
    cycles.add(static_cast<double>(out.cycles));
  }
  NfResult out;
  out.pps = dut.cpu_hz() / cycles.mean();
  double service_us = cycles.mean() / dut.cpu_hz() * 1e6;
  out.mean_latency_us =
      rr_cfg.base_rtt_us + rr_cfg.sessions * 2 * service_us;
  return out;
}

}  // namespace

int main() {
  print_header(
      "Table VII — XDP vs TC hook: throughput (pps) and latency per NF",
      "paper: bridge 1,914,978/889,735; forwarding 1,768,221/850,209; "
      "filtering 1,183,252/680,065 (XDP/TC pps)");

  sim::RrConfig rr;
  rr.sessions = 128;

  struct Row {
    const char* name;
    NfResult xdp;
    NfResult tc;
    const char* paper_pps;
  };
  Row rows[] = {
      {"bridge", run_bridge(sim::Accel::kLinuxFpXdp, rr),
       run_bridge(sim::Accel::kLinuxFpTc, rr), "1,914,978 / 889,735"},
      {"forwarding", run_l3(sim::Accel::kLinuxFpXdp, 0, rr),
       run_l3(sim::Accel::kLinuxFpTc, 0, rr), "1,768,221 / 850,209"},
      {"filtering", run_l3(sim::Accel::kLinuxFpXdp, 100, rr),
       run_l3(sim::Accel::kLinuxFpTc, 100, rr), "1,183,252 / 680,065"},
  };

  std::vector<int> widths{12, 13, 13, 12, 12, 24};
  print_row({"nf", "XDP pps", "TC pps", "XDP lat", "TC lat", "paper XDP/TC pps"},
            widths);
  for (const Row& row : rows) {
    print_row({row.name, fmt(row.xdp.pps, 0), fmt(row.tc.pps, 0),
               fmt(row.xdp.mean_latency_us, 1),
               fmt(row.tc.mean_latency_us, 1), row.paper_pps},
              widths);
  }
  std::printf("\nshape check: XDP > TC for every NF (sk_buff allocation and "
              "the deeper hook position cost the TC path ~2x); container "
              "scenarios still prefer TC because the sk_buff is needed "
              "anyway (paper §VI-B).\n");
  return 0;
}
