# Empty dependencies file for linuxfpctl_demo.
# This may be replaced when dependencies are built.
