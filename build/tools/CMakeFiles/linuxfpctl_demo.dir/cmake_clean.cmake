file(REMOVE_RECURSE
  "CMakeFiles/linuxfpctl_demo.dir/linuxfpctl_demo.cpp.o"
  "CMakeFiles/linuxfpctl_demo.dir/linuxfpctl_demo.cpp.o.d"
  "linuxfpctl_demo"
  "linuxfpctl_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linuxfpctl_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
