file(REMOVE_RECURSE
  "CMakeFiles/afxdp_monitor.dir/afxdp_monitor.cpp.o"
  "CMakeFiles/afxdp_monitor.dir/afxdp_monitor.cpp.o.d"
  "afxdp_monitor"
  "afxdp_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afxdp_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
