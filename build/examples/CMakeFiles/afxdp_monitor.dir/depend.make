# Empty dependencies file for afxdp_monitor.
# This may be replaced when dependencies are built.
