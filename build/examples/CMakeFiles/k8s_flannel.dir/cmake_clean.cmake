file(REMOVE_RECURSE
  "CMakeFiles/k8s_flannel.dir/k8s_flannel.cpp.o"
  "CMakeFiles/k8s_flannel.dir/k8s_flannel.cpp.o.d"
  "k8s_flannel"
  "k8s_flannel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/k8s_flannel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
