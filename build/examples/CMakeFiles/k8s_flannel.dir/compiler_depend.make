# Empty compiler generated dependencies file for k8s_flannel.
# This may be replaced when dependencies are built.
