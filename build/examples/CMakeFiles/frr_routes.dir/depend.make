# Empty dependencies file for frr_routes.
# This may be replaced when dependencies are built.
