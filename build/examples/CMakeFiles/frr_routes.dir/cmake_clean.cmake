file(REMOVE_RECURSE
  "CMakeFiles/frr_routes.dir/frr_routes.cpp.o"
  "CMakeFiles/frr_routes.dir/frr_routes.cpp.o.d"
  "frr_routes"
  "frr_routes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frr_routes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
