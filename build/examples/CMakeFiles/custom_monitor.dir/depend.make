# Empty dependencies file for custom_monitor.
# This may be replaced when dependencies are built.
