file(REMOVE_RECURSE
  "CMakeFiles/custom_monitor.dir/custom_monitor.cpp.o"
  "CMakeFiles/custom_monitor.dir/custom_monitor.cpp.o.d"
  "custom_monitor"
  "custom_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
