
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/custom_monitor.cpp" "examples/CMakeFiles/custom_monitor.dir/custom_monitor.cpp.o" "gcc" "examples/CMakeFiles/custom_monitor.dir/custom_monitor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/lfp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/k8s/CMakeFiles/lfp_k8s.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lfp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ebpf/CMakeFiles/lfp_ebpf.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/lfp_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/netlink/CMakeFiles/lfp_netlink.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/lfp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lfp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
