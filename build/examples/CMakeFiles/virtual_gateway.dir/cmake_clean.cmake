file(REMOVE_RECURSE
  "CMakeFiles/virtual_gateway.dir/virtual_gateway.cpp.o"
  "CMakeFiles/virtual_gateway.dir/virtual_gateway.cpp.o.d"
  "virtual_gateway"
  "virtual_gateway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/virtual_gateway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
