# Empty dependencies file for virtual_gateway.
# This may be replaced when dependencies are built.
