
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ebpf/afxdp_test.cpp" "tests/CMakeFiles/ebpf_test.dir/ebpf/afxdp_test.cpp.o" "gcc" "tests/CMakeFiles/ebpf_test.dir/ebpf/afxdp_test.cpp.o.d"
  "/root/repo/tests/ebpf/builder_test.cpp" "tests/CMakeFiles/ebpf_test.dir/ebpf/builder_test.cpp.o" "gcc" "tests/CMakeFiles/ebpf_test.dir/ebpf/builder_test.cpp.o.d"
  "/root/repo/tests/ebpf/fuzz_test.cpp" "tests/CMakeFiles/ebpf_test.dir/ebpf/fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/ebpf_test.dir/ebpf/fuzz_test.cpp.o.d"
  "/root/repo/tests/ebpf/helpers_test.cpp" "tests/CMakeFiles/ebpf_test.dir/ebpf/helpers_test.cpp.o" "gcc" "tests/CMakeFiles/ebpf_test.dir/ebpf/helpers_test.cpp.o.d"
  "/root/repo/tests/ebpf/loader_test.cpp" "tests/CMakeFiles/ebpf_test.dir/ebpf/loader_test.cpp.o" "gcc" "tests/CMakeFiles/ebpf_test.dir/ebpf/loader_test.cpp.o.d"
  "/root/repo/tests/ebpf/maps_test.cpp" "tests/CMakeFiles/ebpf_test.dir/ebpf/maps_test.cpp.o" "gcc" "tests/CMakeFiles/ebpf_test.dir/ebpf/maps_test.cpp.o.d"
  "/root/repo/tests/ebpf/verifier_test.cpp" "tests/CMakeFiles/ebpf_test.dir/ebpf/verifier_test.cpp.o" "gcc" "tests/CMakeFiles/ebpf_test.dir/ebpf/verifier_test.cpp.o.d"
  "/root/repo/tests/ebpf/vm_test.cpp" "tests/CMakeFiles/ebpf_test.dir/ebpf/vm_test.cpp.o" "gcc" "tests/CMakeFiles/ebpf_test.dir/ebpf/vm_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lfp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ebpf/CMakeFiles/lfp_ebpf.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/lfp_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/netlink/CMakeFiles/lfp_netlink.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/lfp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lfp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
