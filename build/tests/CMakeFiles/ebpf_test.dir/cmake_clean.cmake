file(REMOVE_RECURSE
  "CMakeFiles/ebpf_test.dir/ebpf/afxdp_test.cpp.o"
  "CMakeFiles/ebpf_test.dir/ebpf/afxdp_test.cpp.o.d"
  "CMakeFiles/ebpf_test.dir/ebpf/builder_test.cpp.o"
  "CMakeFiles/ebpf_test.dir/ebpf/builder_test.cpp.o.d"
  "CMakeFiles/ebpf_test.dir/ebpf/fuzz_test.cpp.o"
  "CMakeFiles/ebpf_test.dir/ebpf/fuzz_test.cpp.o.d"
  "CMakeFiles/ebpf_test.dir/ebpf/helpers_test.cpp.o"
  "CMakeFiles/ebpf_test.dir/ebpf/helpers_test.cpp.o.d"
  "CMakeFiles/ebpf_test.dir/ebpf/loader_test.cpp.o"
  "CMakeFiles/ebpf_test.dir/ebpf/loader_test.cpp.o.d"
  "CMakeFiles/ebpf_test.dir/ebpf/maps_test.cpp.o"
  "CMakeFiles/ebpf_test.dir/ebpf/maps_test.cpp.o.d"
  "CMakeFiles/ebpf_test.dir/ebpf/verifier_test.cpp.o"
  "CMakeFiles/ebpf_test.dir/ebpf/verifier_test.cpp.o.d"
  "CMakeFiles/ebpf_test.dir/ebpf/vm_test.cpp.o"
  "CMakeFiles/ebpf_test.dir/ebpf/vm_test.cpp.o.d"
  "ebpf_test"
  "ebpf_test.pdb"
  "ebpf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ebpf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
