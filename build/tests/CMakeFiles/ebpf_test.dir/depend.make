# Empty dependencies file for ebpf_test.
# This may be replaced when dependencies are built.
