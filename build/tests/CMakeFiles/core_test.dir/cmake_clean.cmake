file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/coherence_test.cpp.o"
  "CMakeFiles/core_test.dir/core/coherence_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/controller_test.cpp.o"
  "CMakeFiles/core_test.dir/core/controller_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/deployer_test.cpp.o"
  "CMakeFiles/core_test.dir/core/deployer_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/equivalence_fuzz_test.cpp.o"
  "CMakeFiles/core_test.dir/core/equivalence_fuzz_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/fpm_test.cpp.o"
  "CMakeFiles/core_test.dir/core/fpm_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/introspect_test.cpp.o"
  "CMakeFiles/core_test.dir/core/introspect_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/lb_fpm_test.cpp.o"
  "CMakeFiles/core_test.dir/core/lb_fpm_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/synthesizer_test.cpp.o"
  "CMakeFiles/core_test.dir/core/synthesizer_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/topology_test.cpp.o"
  "CMakeFiles/core_test.dir/core/topology_test.cpp.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
