
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/kernel/bridge_test.cpp" "tests/CMakeFiles/kernel_test.dir/kernel/bridge_test.cpp.o" "gcc" "tests/CMakeFiles/kernel_test.dir/kernel/bridge_test.cpp.o.d"
  "/root/repo/tests/kernel/commands_test.cpp" "tests/CMakeFiles/kernel_test.dir/kernel/commands_test.cpp.o" "gcc" "tests/CMakeFiles/kernel_test.dir/kernel/commands_test.cpp.o.d"
  "/root/repo/tests/kernel/conntrack_test.cpp" "tests/CMakeFiles/kernel_test.dir/kernel/conntrack_test.cpp.o" "gcc" "tests/CMakeFiles/kernel_test.dir/kernel/conntrack_test.cpp.o.d"
  "/root/repo/tests/kernel/ct_state_test.cpp" "tests/CMakeFiles/kernel_test.dir/kernel/ct_state_test.cpp.o" "gcc" "tests/CMakeFiles/kernel_test.dir/kernel/ct_state_test.cpp.o.d"
  "/root/repo/tests/kernel/datapath_test.cpp" "tests/CMakeFiles/kernel_test.dir/kernel/datapath_test.cpp.o" "gcc" "tests/CMakeFiles/kernel_test.dir/kernel/datapath_test.cpp.o.d"
  "/root/repo/tests/kernel/fib_test.cpp" "tests/CMakeFiles/kernel_test.dir/kernel/fib_test.cpp.o" "gcc" "tests/CMakeFiles/kernel_test.dir/kernel/fib_test.cpp.o.d"
  "/root/repo/tests/kernel/ipvs_test.cpp" "tests/CMakeFiles/kernel_test.dir/kernel/ipvs_test.cpp.o" "gcc" "tests/CMakeFiles/kernel_test.dir/kernel/ipvs_test.cpp.o.d"
  "/root/repo/tests/kernel/neigh_test.cpp" "tests/CMakeFiles/kernel_test.dir/kernel/neigh_test.cpp.o" "gcc" "tests/CMakeFiles/kernel_test.dir/kernel/neigh_test.cpp.o.d"
  "/root/repo/tests/kernel/netfilter_test.cpp" "tests/CMakeFiles/kernel_test.dir/kernel/netfilter_test.cpp.o" "gcc" "tests/CMakeFiles/kernel_test.dir/kernel/netfilter_test.cpp.o.d"
  "/root/repo/tests/kernel/netlink_test.cpp" "tests/CMakeFiles/kernel_test.dir/kernel/netlink_test.cpp.o" "gcc" "tests/CMakeFiles/kernel_test.dir/kernel/netlink_test.cpp.o.d"
  "/root/repo/tests/kernel/stp_e2e_test.cpp" "tests/CMakeFiles/kernel_test.dir/kernel/stp_e2e_test.cpp.o" "gcc" "tests/CMakeFiles/kernel_test.dir/kernel/stp_e2e_test.cpp.o.d"
  "/root/repo/tests/kernel/vxlan_test.cpp" "tests/CMakeFiles/kernel_test.dir/kernel/vxlan_test.cpp.o" "gcc" "tests/CMakeFiles/kernel_test.dir/kernel/vxlan_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lfp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ebpf/CMakeFiles/lfp_ebpf.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/lfp_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/netlink/CMakeFiles/lfp_netlink.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/lfp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lfp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
