file(REMOVE_RECURSE
  "CMakeFiles/kernel_test.dir/kernel/bridge_test.cpp.o"
  "CMakeFiles/kernel_test.dir/kernel/bridge_test.cpp.o.d"
  "CMakeFiles/kernel_test.dir/kernel/commands_test.cpp.o"
  "CMakeFiles/kernel_test.dir/kernel/commands_test.cpp.o.d"
  "CMakeFiles/kernel_test.dir/kernel/conntrack_test.cpp.o"
  "CMakeFiles/kernel_test.dir/kernel/conntrack_test.cpp.o.d"
  "CMakeFiles/kernel_test.dir/kernel/ct_state_test.cpp.o"
  "CMakeFiles/kernel_test.dir/kernel/ct_state_test.cpp.o.d"
  "CMakeFiles/kernel_test.dir/kernel/datapath_test.cpp.o"
  "CMakeFiles/kernel_test.dir/kernel/datapath_test.cpp.o.d"
  "CMakeFiles/kernel_test.dir/kernel/fib_test.cpp.o"
  "CMakeFiles/kernel_test.dir/kernel/fib_test.cpp.o.d"
  "CMakeFiles/kernel_test.dir/kernel/ipvs_test.cpp.o"
  "CMakeFiles/kernel_test.dir/kernel/ipvs_test.cpp.o.d"
  "CMakeFiles/kernel_test.dir/kernel/neigh_test.cpp.o"
  "CMakeFiles/kernel_test.dir/kernel/neigh_test.cpp.o.d"
  "CMakeFiles/kernel_test.dir/kernel/netfilter_test.cpp.o"
  "CMakeFiles/kernel_test.dir/kernel/netfilter_test.cpp.o.d"
  "CMakeFiles/kernel_test.dir/kernel/netlink_test.cpp.o"
  "CMakeFiles/kernel_test.dir/kernel/netlink_test.cpp.o.d"
  "CMakeFiles/kernel_test.dir/kernel/stp_e2e_test.cpp.o"
  "CMakeFiles/kernel_test.dir/kernel/stp_e2e_test.cpp.o.d"
  "CMakeFiles/kernel_test.dir/kernel/vxlan_test.cpp.o"
  "CMakeFiles/kernel_test.dir/kernel/vxlan_test.cpp.o.d"
  "kernel_test"
  "kernel_test.pdb"
  "kernel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
