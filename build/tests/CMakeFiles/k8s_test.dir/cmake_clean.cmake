file(REMOVE_RECURSE
  "CMakeFiles/k8s_test.dir/k8s/cluster_test.cpp.o"
  "CMakeFiles/k8s_test.dir/k8s/cluster_test.cpp.o.d"
  "k8s_test"
  "k8s_test.pdb"
  "k8s_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/k8s_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
