# Empty compiler generated dependencies file for k8s_test.
# This may be replaced when dependencies are built.
