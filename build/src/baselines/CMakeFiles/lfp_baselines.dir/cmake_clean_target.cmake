file(REMOVE_RECURSE
  "liblfp_baselines.a"
)
