file(REMOVE_RECURSE
  "CMakeFiles/lfp_baselines.dir/polycube/polycube.cpp.o"
  "CMakeFiles/lfp_baselines.dir/polycube/polycube.cpp.o.d"
  "CMakeFiles/lfp_baselines.dir/vpp/vpp.cpp.o"
  "CMakeFiles/lfp_baselines.dir/vpp/vpp.cpp.o.d"
  "liblfp_baselines.a"
  "liblfp_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfp_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
