# Empty compiler generated dependencies file for lfp_baselines.
# This may be replaced when dependencies are built.
