file(REMOVE_RECURSE
  "CMakeFiles/lfp_util.dir/json.cpp.o"
  "CMakeFiles/lfp_util.dir/json.cpp.o.d"
  "CMakeFiles/lfp_util.dir/logging.cpp.o"
  "CMakeFiles/lfp_util.dir/logging.cpp.o.d"
  "CMakeFiles/lfp_util.dir/stats.cpp.o"
  "CMakeFiles/lfp_util.dir/stats.cpp.o.d"
  "CMakeFiles/lfp_util.dir/strings.cpp.o"
  "CMakeFiles/lfp_util.dir/strings.cpp.o.d"
  "liblfp_util.a"
  "liblfp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
