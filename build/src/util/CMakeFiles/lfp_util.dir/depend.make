# Empty dependencies file for lfp_util.
# This may be replaced when dependencies are built.
