file(REMOVE_RECURSE
  "liblfp_util.a"
)
