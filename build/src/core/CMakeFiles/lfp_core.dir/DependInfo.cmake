
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/capability.cpp" "src/core/CMakeFiles/lfp_core.dir/capability.cpp.o" "gcc" "src/core/CMakeFiles/lfp_core.dir/capability.cpp.o.d"
  "/root/repo/src/core/controller.cpp" "src/core/CMakeFiles/lfp_core.dir/controller.cpp.o" "gcc" "src/core/CMakeFiles/lfp_core.dir/controller.cpp.o.d"
  "/root/repo/src/core/deployer.cpp" "src/core/CMakeFiles/lfp_core.dir/deployer.cpp.o" "gcc" "src/core/CMakeFiles/lfp_core.dir/deployer.cpp.o.d"
  "/root/repo/src/core/fpm_library.cpp" "src/core/CMakeFiles/lfp_core.dir/fpm_library.cpp.o" "gcc" "src/core/CMakeFiles/lfp_core.dir/fpm_library.cpp.o.d"
  "/root/repo/src/core/introspect.cpp" "src/core/CMakeFiles/lfp_core.dir/introspect.cpp.o" "gcc" "src/core/CMakeFiles/lfp_core.dir/introspect.cpp.o.d"
  "/root/repo/src/core/status.cpp" "src/core/CMakeFiles/lfp_core.dir/status.cpp.o" "gcc" "src/core/CMakeFiles/lfp_core.dir/status.cpp.o.d"
  "/root/repo/src/core/synthesizer.cpp" "src/core/CMakeFiles/lfp_core.dir/synthesizer.cpp.o" "gcc" "src/core/CMakeFiles/lfp_core.dir/synthesizer.cpp.o.d"
  "/root/repo/src/core/topology.cpp" "src/core/CMakeFiles/lfp_core.dir/topology.cpp.o" "gcc" "src/core/CMakeFiles/lfp_core.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lfp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/lfp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/netlink/CMakeFiles/lfp_netlink.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/lfp_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/ebpf/CMakeFiles/lfp_ebpf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
