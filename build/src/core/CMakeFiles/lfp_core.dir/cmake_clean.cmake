file(REMOVE_RECURSE
  "CMakeFiles/lfp_core.dir/capability.cpp.o"
  "CMakeFiles/lfp_core.dir/capability.cpp.o.d"
  "CMakeFiles/lfp_core.dir/controller.cpp.o"
  "CMakeFiles/lfp_core.dir/controller.cpp.o.d"
  "CMakeFiles/lfp_core.dir/deployer.cpp.o"
  "CMakeFiles/lfp_core.dir/deployer.cpp.o.d"
  "CMakeFiles/lfp_core.dir/fpm_library.cpp.o"
  "CMakeFiles/lfp_core.dir/fpm_library.cpp.o.d"
  "CMakeFiles/lfp_core.dir/introspect.cpp.o"
  "CMakeFiles/lfp_core.dir/introspect.cpp.o.d"
  "CMakeFiles/lfp_core.dir/status.cpp.o"
  "CMakeFiles/lfp_core.dir/status.cpp.o.d"
  "CMakeFiles/lfp_core.dir/synthesizer.cpp.o"
  "CMakeFiles/lfp_core.dir/synthesizer.cpp.o.d"
  "CMakeFiles/lfp_core.dir/topology.cpp.o"
  "CMakeFiles/lfp_core.dir/topology.cpp.o.d"
  "liblfp_core.a"
  "liblfp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
