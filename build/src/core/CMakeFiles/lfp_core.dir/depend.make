# Empty dependencies file for lfp_core.
# This may be replaced when dependencies are built.
