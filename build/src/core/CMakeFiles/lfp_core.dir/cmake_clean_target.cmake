file(REMOVE_RECURSE
  "liblfp_core.a"
)
