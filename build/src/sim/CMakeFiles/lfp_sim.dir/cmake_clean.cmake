file(REMOVE_RECURSE
  "CMakeFiles/lfp_sim.dir/runners.cpp.o"
  "CMakeFiles/lfp_sim.dir/runners.cpp.o.d"
  "CMakeFiles/lfp_sim.dir/testbed.cpp.o"
  "CMakeFiles/lfp_sim.dir/testbed.cpp.o.d"
  "liblfp_sim.a"
  "liblfp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
