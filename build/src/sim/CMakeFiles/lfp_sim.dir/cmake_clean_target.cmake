file(REMOVE_RECURSE
  "liblfp_sim.a"
)
