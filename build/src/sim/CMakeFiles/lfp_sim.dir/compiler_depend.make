# Empty compiler generated dependencies file for lfp_sim.
# This may be replaced when dependencies are built.
