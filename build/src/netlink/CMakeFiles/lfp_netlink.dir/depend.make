# Empty dependencies file for lfp_netlink.
# This may be replaced when dependencies are built.
