file(REMOVE_RECURSE
  "CMakeFiles/lfp_netlink.dir/netlink.cpp.o"
  "CMakeFiles/lfp_netlink.dir/netlink.cpp.o.d"
  "liblfp_netlink.a"
  "liblfp_netlink.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfp_netlink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
