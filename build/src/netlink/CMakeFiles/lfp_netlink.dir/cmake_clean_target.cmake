file(REMOVE_RECURSE
  "liblfp_netlink.a"
)
