# Empty compiler generated dependencies file for lfp_net.
# This may be replaced when dependencies are built.
