file(REMOVE_RECURSE
  "CMakeFiles/lfp_net.dir/checksum.cpp.o"
  "CMakeFiles/lfp_net.dir/checksum.cpp.o.d"
  "CMakeFiles/lfp_net.dir/headers.cpp.o"
  "CMakeFiles/lfp_net.dir/headers.cpp.o.d"
  "CMakeFiles/lfp_net.dir/ipaddr.cpp.o"
  "CMakeFiles/lfp_net.dir/ipaddr.cpp.o.d"
  "CMakeFiles/lfp_net.dir/mac.cpp.o"
  "CMakeFiles/lfp_net.dir/mac.cpp.o.d"
  "CMakeFiles/lfp_net.dir/packet.cpp.o"
  "CMakeFiles/lfp_net.dir/packet.cpp.o.d"
  "liblfp_net.a"
  "liblfp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
