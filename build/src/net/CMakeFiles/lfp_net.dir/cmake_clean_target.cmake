file(REMOVE_RECURSE
  "liblfp_net.a"
)
