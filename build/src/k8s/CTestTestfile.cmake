# CMake generated Testfile for 
# Source directory: /root/repo/src/k8s
# Build directory: /root/repo/build/src/k8s
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
