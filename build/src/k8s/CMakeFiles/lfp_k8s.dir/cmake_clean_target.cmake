file(REMOVE_RECURSE
  "liblfp_k8s.a"
)
