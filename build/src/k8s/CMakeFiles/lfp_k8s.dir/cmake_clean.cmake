file(REMOVE_RECURSE
  "CMakeFiles/lfp_k8s.dir/cluster.cpp.o"
  "CMakeFiles/lfp_k8s.dir/cluster.cpp.o.d"
  "liblfp_k8s.a"
  "liblfp_k8s.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfp_k8s.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
