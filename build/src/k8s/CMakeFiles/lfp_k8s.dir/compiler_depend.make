# Empty compiler generated dependencies file for lfp_k8s.
# This may be replaced when dependencies are built.
