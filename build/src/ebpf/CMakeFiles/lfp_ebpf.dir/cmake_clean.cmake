file(REMOVE_RECURSE
  "CMakeFiles/lfp_ebpf.dir/builder.cpp.o"
  "CMakeFiles/lfp_ebpf.dir/builder.cpp.o.d"
  "CMakeFiles/lfp_ebpf.dir/insn.cpp.o"
  "CMakeFiles/lfp_ebpf.dir/insn.cpp.o.d"
  "CMakeFiles/lfp_ebpf.dir/kernel_helpers.cpp.o"
  "CMakeFiles/lfp_ebpf.dir/kernel_helpers.cpp.o.d"
  "CMakeFiles/lfp_ebpf.dir/loader.cpp.o"
  "CMakeFiles/lfp_ebpf.dir/loader.cpp.o.d"
  "CMakeFiles/lfp_ebpf.dir/maps.cpp.o"
  "CMakeFiles/lfp_ebpf.dir/maps.cpp.o.d"
  "CMakeFiles/lfp_ebpf.dir/verifier.cpp.o"
  "CMakeFiles/lfp_ebpf.dir/verifier.cpp.o.d"
  "CMakeFiles/lfp_ebpf.dir/vm.cpp.o"
  "CMakeFiles/lfp_ebpf.dir/vm.cpp.o.d"
  "liblfp_ebpf.a"
  "liblfp_ebpf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfp_ebpf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
