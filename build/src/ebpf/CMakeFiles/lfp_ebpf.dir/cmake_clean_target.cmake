file(REMOVE_RECURSE
  "liblfp_ebpf.a"
)
