# Empty dependencies file for lfp_ebpf.
# This may be replaced when dependencies are built.
