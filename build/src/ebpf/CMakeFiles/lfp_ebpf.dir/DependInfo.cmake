
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ebpf/builder.cpp" "src/ebpf/CMakeFiles/lfp_ebpf.dir/builder.cpp.o" "gcc" "src/ebpf/CMakeFiles/lfp_ebpf.dir/builder.cpp.o.d"
  "/root/repo/src/ebpf/insn.cpp" "src/ebpf/CMakeFiles/lfp_ebpf.dir/insn.cpp.o" "gcc" "src/ebpf/CMakeFiles/lfp_ebpf.dir/insn.cpp.o.d"
  "/root/repo/src/ebpf/kernel_helpers.cpp" "src/ebpf/CMakeFiles/lfp_ebpf.dir/kernel_helpers.cpp.o" "gcc" "src/ebpf/CMakeFiles/lfp_ebpf.dir/kernel_helpers.cpp.o.d"
  "/root/repo/src/ebpf/loader.cpp" "src/ebpf/CMakeFiles/lfp_ebpf.dir/loader.cpp.o" "gcc" "src/ebpf/CMakeFiles/lfp_ebpf.dir/loader.cpp.o.d"
  "/root/repo/src/ebpf/maps.cpp" "src/ebpf/CMakeFiles/lfp_ebpf.dir/maps.cpp.o" "gcc" "src/ebpf/CMakeFiles/lfp_ebpf.dir/maps.cpp.o.d"
  "/root/repo/src/ebpf/verifier.cpp" "src/ebpf/CMakeFiles/lfp_ebpf.dir/verifier.cpp.o" "gcc" "src/ebpf/CMakeFiles/lfp_ebpf.dir/verifier.cpp.o.d"
  "/root/repo/src/ebpf/vm.cpp" "src/ebpf/CMakeFiles/lfp_ebpf.dir/vm.cpp.o" "gcc" "src/ebpf/CMakeFiles/lfp_ebpf.dir/vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lfp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/lfp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/lfp_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/netlink/CMakeFiles/lfp_netlink.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
