# Empty dependencies file for lfp_kernel.
# This may be replaced when dependencies are built.
