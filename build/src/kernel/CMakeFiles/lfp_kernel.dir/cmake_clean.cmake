file(REMOVE_RECURSE
  "CMakeFiles/lfp_kernel.dir/bridge.cpp.o"
  "CMakeFiles/lfp_kernel.dir/bridge.cpp.o.d"
  "CMakeFiles/lfp_kernel.dir/commands.cpp.o"
  "CMakeFiles/lfp_kernel.dir/commands.cpp.o.d"
  "CMakeFiles/lfp_kernel.dir/conntrack.cpp.o"
  "CMakeFiles/lfp_kernel.dir/conntrack.cpp.o.d"
  "CMakeFiles/lfp_kernel.dir/fib.cpp.o"
  "CMakeFiles/lfp_kernel.dir/fib.cpp.o.d"
  "CMakeFiles/lfp_kernel.dir/ipset.cpp.o"
  "CMakeFiles/lfp_kernel.dir/ipset.cpp.o.d"
  "CMakeFiles/lfp_kernel.dir/ipvs.cpp.o"
  "CMakeFiles/lfp_kernel.dir/ipvs.cpp.o.d"
  "CMakeFiles/lfp_kernel.dir/kernel.cpp.o"
  "CMakeFiles/lfp_kernel.dir/kernel.cpp.o.d"
  "CMakeFiles/lfp_kernel.dir/neigh.cpp.o"
  "CMakeFiles/lfp_kernel.dir/neigh.cpp.o.d"
  "CMakeFiles/lfp_kernel.dir/netdev.cpp.o"
  "CMakeFiles/lfp_kernel.dir/netdev.cpp.o.d"
  "CMakeFiles/lfp_kernel.dir/netfilter.cpp.o"
  "CMakeFiles/lfp_kernel.dir/netfilter.cpp.o.d"
  "CMakeFiles/lfp_kernel.dir/slowpath.cpp.o"
  "CMakeFiles/lfp_kernel.dir/slowpath.cpp.o.d"
  "liblfp_kernel.a"
  "liblfp_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfp_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
