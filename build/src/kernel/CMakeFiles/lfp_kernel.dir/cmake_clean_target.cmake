file(REMOVE_RECURSE
  "liblfp_kernel.a"
)
