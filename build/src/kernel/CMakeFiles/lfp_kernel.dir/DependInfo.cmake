
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/bridge.cpp" "src/kernel/CMakeFiles/lfp_kernel.dir/bridge.cpp.o" "gcc" "src/kernel/CMakeFiles/lfp_kernel.dir/bridge.cpp.o.d"
  "/root/repo/src/kernel/commands.cpp" "src/kernel/CMakeFiles/lfp_kernel.dir/commands.cpp.o" "gcc" "src/kernel/CMakeFiles/lfp_kernel.dir/commands.cpp.o.d"
  "/root/repo/src/kernel/conntrack.cpp" "src/kernel/CMakeFiles/lfp_kernel.dir/conntrack.cpp.o" "gcc" "src/kernel/CMakeFiles/lfp_kernel.dir/conntrack.cpp.o.d"
  "/root/repo/src/kernel/fib.cpp" "src/kernel/CMakeFiles/lfp_kernel.dir/fib.cpp.o" "gcc" "src/kernel/CMakeFiles/lfp_kernel.dir/fib.cpp.o.d"
  "/root/repo/src/kernel/ipset.cpp" "src/kernel/CMakeFiles/lfp_kernel.dir/ipset.cpp.o" "gcc" "src/kernel/CMakeFiles/lfp_kernel.dir/ipset.cpp.o.d"
  "/root/repo/src/kernel/ipvs.cpp" "src/kernel/CMakeFiles/lfp_kernel.dir/ipvs.cpp.o" "gcc" "src/kernel/CMakeFiles/lfp_kernel.dir/ipvs.cpp.o.d"
  "/root/repo/src/kernel/kernel.cpp" "src/kernel/CMakeFiles/lfp_kernel.dir/kernel.cpp.o" "gcc" "src/kernel/CMakeFiles/lfp_kernel.dir/kernel.cpp.o.d"
  "/root/repo/src/kernel/neigh.cpp" "src/kernel/CMakeFiles/lfp_kernel.dir/neigh.cpp.o" "gcc" "src/kernel/CMakeFiles/lfp_kernel.dir/neigh.cpp.o.d"
  "/root/repo/src/kernel/netdev.cpp" "src/kernel/CMakeFiles/lfp_kernel.dir/netdev.cpp.o" "gcc" "src/kernel/CMakeFiles/lfp_kernel.dir/netdev.cpp.o.d"
  "/root/repo/src/kernel/netfilter.cpp" "src/kernel/CMakeFiles/lfp_kernel.dir/netfilter.cpp.o" "gcc" "src/kernel/CMakeFiles/lfp_kernel.dir/netfilter.cpp.o.d"
  "/root/repo/src/kernel/slowpath.cpp" "src/kernel/CMakeFiles/lfp_kernel.dir/slowpath.cpp.o" "gcc" "src/kernel/CMakeFiles/lfp_kernel.dir/slowpath.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lfp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/lfp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/netlink/CMakeFiles/lfp_netlink.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
