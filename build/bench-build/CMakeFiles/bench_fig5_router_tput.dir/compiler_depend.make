# Empty compiler generated dependencies file for bench_fig5_router_tput.
# This may be replaced when dependencies are built.
