file(REMOVE_RECURSE
  "../bench/bench_fig1_hotspots"
  "../bench/bench_fig1_hotspots.pdb"
  "CMakeFiles/bench_fig1_hotspots.dir/bench_fig1_hotspots.cpp.o"
  "CMakeFiles/bench_fig1_hotspots.dir/bench_fig1_hotspots.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_hotspots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
