# Empty dependencies file for bench_fig1_hotspots.
# This may be replaced when dependencies are built.
