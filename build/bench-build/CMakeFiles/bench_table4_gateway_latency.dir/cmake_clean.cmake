file(REMOVE_RECURSE
  "../bench/bench_table4_gateway_latency"
  "../bench/bench_table4_gateway_latency.pdb"
  "CMakeFiles/bench_table4_gateway_latency.dir/bench_table4_gateway_latency.cpp.o"
  "CMakeFiles/bench_table4_gateway_latency.dir/bench_table4_gateway_latency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_gateway_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
