# Empty dependencies file for bench_fig9_pod_tput.
# This may be replaced when dependencies are built.
