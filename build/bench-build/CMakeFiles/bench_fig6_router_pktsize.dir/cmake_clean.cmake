file(REMOVE_RECURSE
  "../bench/bench_fig6_router_pktsize"
  "../bench/bench_fig6_router_pktsize.pdb"
  "CMakeFiles/bench_fig6_router_pktsize.dir/bench_fig6_router_pktsize.cpp.o"
  "CMakeFiles/bench_fig6_router_pktsize.dir/bench_fig6_router_pktsize.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_router_pktsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
