# Empty dependencies file for bench_fig6_router_pktsize.
# This may be replaced when dependencies are built.
