file(REMOVE_RECURSE
  "../bench/bench_table3_router_latency"
  "../bench/bench_table3_router_latency.pdb"
  "CMakeFiles/bench_table3_router_latency.dir/bench_table3_router_latency.cpp.o"
  "CMakeFiles/bench_table3_router_latency.dir/bench_table3_router_latency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_router_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
