# Empty compiler generated dependencies file for bench_table3_router_latency.
# This may be replaced when dependencies are built.
