# Empty dependencies file for bench_table5_pod_latency.
# This may be replaced when dependencies are built.
