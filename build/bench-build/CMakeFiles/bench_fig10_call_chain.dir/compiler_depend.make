# Empty compiler generated dependencies file for bench_fig10_call_chain.
# This may be replaced when dependencies are built.
