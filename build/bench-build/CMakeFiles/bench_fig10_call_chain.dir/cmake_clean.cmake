file(REMOVE_RECURSE
  "../bench/bench_fig10_call_chain"
  "../bench/bench_fig10_call_chain.pdb"
  "CMakeFiles/bench_fig10_call_chain.dir/bench_fig10_call_chain.cpp.o"
  "CMakeFiles/bench_fig10_call_chain.dir/bench_fig10_call_chain.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_call_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
