# Empty compiler generated dependencies file for bench_fig8_gateway_rules.
# This may be replaced when dependencies are built.
