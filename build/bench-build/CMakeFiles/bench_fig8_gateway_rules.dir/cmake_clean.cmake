file(REMOVE_RECURSE
  "../bench/bench_fig8_gateway_rules"
  "../bench/bench_fig8_gateway_rules.pdb"
  "CMakeFiles/bench_fig8_gateway_rules.dir/bench_fig8_gateway_rules.cpp.o"
  "CMakeFiles/bench_fig8_gateway_rules.dir/bench_fig8_gateway_rules.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_gateway_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
