# Empty dependencies file for bench_ablation_ipvs.
# This may be replaced when dependencies are built.
