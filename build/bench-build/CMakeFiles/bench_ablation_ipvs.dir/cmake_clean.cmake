file(REMOVE_RECURSE
  "../bench/bench_ablation_ipvs"
  "../bench/bench_ablation_ipvs.pdb"
  "CMakeFiles/bench_ablation_ipvs.dir/bench_ablation_ipvs.cpp.o"
  "CMakeFiles/bench_ablation_ipvs.dir/bench_ablation_ipvs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ipvs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
