# Empty compiler generated dependencies file for bench_fig7_gateway_tput.
# This may be replaced when dependencies are built.
