file(REMOVE_RECURSE
  "../bench/bench_fig7_gateway_tput"
  "../bench/bench_fig7_gateway_tput.pdb"
  "CMakeFiles/bench_fig7_gateway_tput.dir/bench_fig7_gateway_tput.cpp.o"
  "CMakeFiles/bench_fig7_gateway_tput.dir/bench_fig7_gateway_tput.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_gateway_tput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
