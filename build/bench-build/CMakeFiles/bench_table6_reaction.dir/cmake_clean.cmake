file(REMOVE_RECURSE
  "../bench/bench_table6_reaction"
  "../bench/bench_table6_reaction.pdb"
  "CMakeFiles/bench_table6_reaction.dir/bench_table6_reaction.cpp.o"
  "CMakeFiles/bench_table6_reaction.dir/bench_table6_reaction.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_reaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
