# Empty compiler generated dependencies file for bench_table6_reaction.
# This may be replaced when dependencies are built.
