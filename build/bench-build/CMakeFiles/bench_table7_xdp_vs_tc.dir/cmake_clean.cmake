file(REMOVE_RECURSE
  "../bench/bench_table7_xdp_vs_tc"
  "../bench/bench_table7_xdp_vs_tc.pdb"
  "CMakeFiles/bench_table7_xdp_vs_tc.dir/bench_table7_xdp_vs_tc.cpp.o"
  "CMakeFiles/bench_table7_xdp_vs_tc.dir/bench_table7_xdp_vs_tc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_xdp_vs_tc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
