# Empty compiler generated dependencies file for bench_table7_xdp_vs_tc.
# This may be replaced when dependencies are built.
