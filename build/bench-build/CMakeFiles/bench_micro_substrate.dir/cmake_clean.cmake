file(REMOVE_RECURSE
  "../bench/bench_micro_substrate"
  "../bench/bench_micro_substrate.pdb"
  "CMakeFiles/bench_micro_substrate.dir/bench_micro_substrate.cpp.o"
  "CMakeFiles/bench_micro_substrate.dir/bench_micro_substrate.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_substrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
