file(REMOVE_RECURSE
  "../bench/bench_ablation_specialization"
  "../bench/bench_ablation_specialization.pdb"
  "CMakeFiles/bench_ablation_specialization.dir/bench_ablation_specialization.cpp.o"
  "CMakeFiles/bench_ablation_specialization.dir/bench_ablation_specialization.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_specialization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
