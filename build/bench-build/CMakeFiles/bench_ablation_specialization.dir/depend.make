# Empty dependencies file for bench_ablation_specialization.
# This may be replaced when dependencies are built.
