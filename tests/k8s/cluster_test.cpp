#include "k8s/cluster.h"

#include <gtest/gtest.h>

#include "k8s/latency_model.h"

namespace linuxfp::k8s {
namespace {

TEST(Cluster, IntraNodePodToPod) {
  Cluster cluster(2);
  PodRef a = cluster.launch_pod(1);
  PodRef b = cluster.launch_pod(1);
  EXPECT_EQ(a.ip.to_string(), "10.244.1.10");
  EXPECT_EQ(b.ip.to_string(), "10.244.1.11");

  // First transaction resolves ARP along the way and still completes.
  auto first = cluster.run_rr_transaction(a, b);
  EXPECT_TRUE(first.completed);

  auto warm = cluster.run_rr_transaction(a, b);
  EXPECT_TRUE(warm.completed);
  EXPECT_GT(warm.cycles, 0u);
  EXPECT_LT(warm.cycles, first.cycles);  // no ARP detour when warm
}

TEST(Cluster, InterNodePodToPodOverVxlan) {
  Cluster cluster(2);
  PodRef a = cluster.launch_pod(1);
  PodRef b = cluster.launch_pod(2);

  auto first = cluster.run_rr_transaction(a, b);
  EXPECT_TRUE(first.completed);
  auto warm = cluster.run_rr_transaction(a, b);
  EXPECT_TRUE(warm.completed);

  // Inter-node costs more than intra-node (vxlan + underlay + two hosts).
  PodRef c = cluster.launch_pod(1);
  cluster.warm_path(a, c);
  auto intra = cluster.run_rr_transaction(a, c);
  EXPECT_GT(warm.cycles, intra.cycles);
}

TEST(Cluster, LinuxFpAcceleratesUnmodifiedPlugin) {
  Cluster plain(2), accel(2);
  accel.enable_linuxfp();

  PodRef pa = plain.launch_pod(1);
  PodRef pb = plain.launch_pod(1);
  PodRef aa = accel.launch_pod(1);
  PodRef ab = accel.launch_pod(1);

  plain.warm_path(pa, pb);
  accel.warm_path(aa, ab);

  auto linux_rr = plain.run_rr_transaction(pa, pb);
  auto lfp_rr = accel.run_rr_transaction(aa, ab);
  ASSERT_TRUE(linux_rr.completed);
  ASSERT_TRUE(lfp_rr.completed);
  EXPECT_LT(lfp_rr.cycles, linux_rr.cycles)
      << "LinuxFP should shorten the pod-to-pod datapath";

  // Inter-node too.
  PodRef pc = plain.launch_pod(2);
  PodRef ac = accel.launch_pod(2);
  plain.warm_path(pa, pc);
  accel.warm_path(aa, ac);
  auto linux_inter = plain.run_rr_transaction(pa, pc);
  auto lfp_inter = accel.run_rr_transaction(aa, ac);
  ASSERT_TRUE(linux_inter.completed);
  ASSERT_TRUE(lfp_inter.completed);
  EXPECT_LT(lfp_inter.cycles, linux_inter.cycles);
}

TEST(Cluster, FastPathPacketsObservedWithLinuxFp) {
  Cluster cluster(2);
  cluster.enable_linuxfp();
  PodRef a = cluster.launch_pod(1);
  PodRef b = cluster.launch_pod(1);
  cluster.warm_path(a, b);
  auto before = cluster.node(1).counters().fast_path_packets;
  cluster.run_rr_transaction(a, b);
  EXPECT_GT(cluster.node(1).counters().fast_path_packets, before);
}

TEST(Cluster, ManyPodPairsIsolated) {
  Cluster cluster(2);
  std::vector<std::pair<PodRef, PodRef>> pairs;
  for (int i = 0; i < 5; ++i) {
    pairs.emplace_back(cluster.launch_pod(1), cluster.launch_pod(2));
  }
  for (auto& [c, s] : pairs) {
    cluster.warm_path(c, s);
    auto rr = cluster.run_rr_transaction(c, s);
    EXPECT_TRUE(rr.completed);
  }
}

TEST(Cluster, PodDeletionWithdrawsPlumbing) {
  Cluster cluster(2);
  cluster.enable_linuxfp();
  PodRef a = cluster.launch_pod(1);
  PodRef b = cluster.launch_pod(1);
  cluster.warm_path(a, b);
  ASSERT_TRUE(cluster.run_rr_transaction(a, b).completed);

  cluster.delete_pod(b);
  // Traffic to the gone pod no longer completes; the cluster (and its
  // controllers) survive the churn.
  auto rr = cluster.run_rr_transaction(a, b);
  EXPECT_FALSE(rr.completed);

  // A replacement pod gets fresh plumbing and works.
  PodRef c = cluster.launch_pod(1);
  cluster.warm_path(a, c);
  EXPECT_TRUE(cluster.run_rr_transaction(a, c).completed);
}

TEST(Cluster, NetworkPolicyStyleIsolationEnforcedOnFastPath) {
  // A kube NetworkPolicy deny between two pods, rendered (as kube-proxy/
  // calico would) into an iptables rule on the node — must be enforced for
  // bridged pod-to-pod traffic by BOTH paths (br_netfilter).
  Cluster cluster(2);
  cluster.enable_linuxfp();
  PodRef a = cluster.launch_pod(1);
  PodRef b = cluster.launch_pod(1);
  cluster.warm_path(a, b);
  ASSERT_TRUE(cluster.run_rr_transaction(a, b).completed);

  auto st = kern::run_command(
      cluster.node(1), "iptables -I FORWARD 1 -s " + a.ip.to_string() +
                           " -d " + b.ip.to_string() + " -j DROP");
  ASSERT_TRUE(st.ok());
  cluster.controller(1)->run_once();

  auto rr = cluster.run_rr_transaction(a, b);
  EXPECT_FALSE(rr.completed);
  // The stateless deny also kills replies of b->a transactions (the reply
  // is a->b traffic) — exactly what the slow path does too. An unaffected
  // pod pair keeps communicating.
  EXPECT_FALSE(cluster.run_rr_transaction(b, a).completed);
  PodRef c = cluster.launch_pod(1);
  cluster.warm_path(c, b);
  EXPECT_TRUE(cluster.run_rr_transaction(c, b).completed);
}

TEST(LatencyModel, MonotoneInCycles) {
  PodLatencyModel model;
  EXPECT_LT(model.mean_rtt_ms(10000), model.mean_rtt_ms(20000));
  auto samples = model.sample_rtts(20000, 0, 2000, 7);
  EXPECT_NEAR(samples.mean(), model.mean_rtt_ms(20000),
              model.mean_rtt_ms(20000) * 0.05);
  EXPECT_GT(samples.p99(), samples.mean());
}

}  // namespace
}  // namespace linuxfp::k8s
