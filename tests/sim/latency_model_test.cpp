// Tests for the RR latency simulation's modeling knobs: closed-loop
// queueing behaviour, contention charging, and the correlated-hiccup tail.
#include <gtest/gtest.h>

#include "sim/runners.h"
#include "sim/testbed.h"

namespace linuxfp::sim {
namespace {

struct FixedCostDut : DeviceUnderTest {
  std::uint64_t cycles_per_pkt;
  bool fast = false;

  explicit FixedCostDut(std::uint64_t cycles) : cycles_per_pkt(cycles) {}
  std::string name() const override { return "fixed"; }
  ProcessOutcome process(net::Packet&&) override {
    ProcessOutcome out;
    out.cycles = cycles_per_pkt;
    out.forwarded = true;
    out.fast_path = fast;
    return out;
  }
  double cpu_hz() const override { return 2.4e9; }
};

net::Packet dummy_packet(int) { return net::Packet(64); }

TEST(RrLatencyModel, SaturatedRttScalesWithServiceTime) {
  RrConfig cfg;
  cfg.sessions = 64;
  cfg.transactions = 4000;
  cfg.jitter_sigma = 0.0;
  cfg.hiccup_per_service = 0.0;
  cfg.slowpath_contention_cycles = 0;

  // Service times chosen so the server is the bottleneck by a wide margin
  // (sessions * 2 * service >> base RTT): the closed-loop identity holds.
  FixedCostDut cheap(12000), expensive(24000);
  auto r1 = RrLatencyRunner(cfg).run(cheap, dummy_packet, dummy_packet);
  auto r2 = RrLatencyRunner(cfg).run(expensive, dummy_packet, dummy_packet);
  // Saturated closed loop: RTT ~ sessions * 2 * service (+ base).
  double s1 = 12000 / 2.4e9 * 1e6, s2 = 24000 / 2.4e9 * 1e6;
  EXPECT_NEAR(r1.rtt_us.mean(), cfg.sessions * 2 * s1 + cfg.base_rtt_us,
              cfg.sessions * 2 * s1 * 0.15 + 5);
  EXPECT_NEAR(r2.rtt_us.mean() / r1.rtt_us.mean(),
              (cfg.sessions * 2 * s2 + cfg.base_rtt_us) /
                  (cfg.sessions * 2 * s1 + cfg.base_rtt_us),
              0.15);
}

TEST(RrLatencyModel, ContentionChargesSlowPathOnly) {
  RrConfig cfg;
  cfg.sessions = 32;
  cfg.transactions = 2000;
  cfg.jitter_sigma = 0.0;
  cfg.hiccup_per_service = 0.0;
  cfg.slowpath_contention_cycles = 1200;

  FixedCostDut slow_dut(1200);
  FixedCostDut fast_dut(1200);
  fast_dut.fast = true;
  auto slow_r = RrLatencyRunner(cfg).run(slow_dut, dummy_packet, dummy_packet);
  auto fast_r = RrLatencyRunner(cfg).run(fast_dut, dummy_packet, dummy_packet);
  // The slow-path DUT is charged contention on every packet -> ~2x service.
  EXPECT_GT(slow_r.rtt_us.mean(), fast_r.rtt_us.mean() * 1.5);
}

TEST(RrLatencyModel, HiccupsProduceTailNotMeanShift) {
  RrConfig base;
  base.sessions = 64;
  base.transactions = 8000;
  base.hiccup_per_service = 0.0;
  RrConfig hic = base;
  hic.hiccup_per_service = 0.0004;
  hic.hiccup_mean_us = 110;

  FixedCostDut dut(1500);
  auto clean = RrLatencyRunner(base).run(dut, dummy_packet, dummy_packet);
  auto tailed = RrLatencyRunner(hic).run(dut, dummy_packet, dummy_packet);
  // Mean moves a little; p99 and stddev move a lot.
  EXPECT_LT(tailed.rtt_us.mean() / clean.rtt_us.mean(), 1.25);
  EXPECT_GT(tailed.rtt_us.p99() / clean.rtt_us.p99(), 1.3);
  EXPECT_GT(tailed.rtt_us.stddev(), clean.rtt_us.stddev() * 2);
}

TEST(RrLatencyModel, TransactionsPerSecondConsistentWithRtt) {
  RrConfig cfg;
  cfg.sessions = 16;
  cfg.transactions = 3000;
  cfg.jitter_sigma = 0.0;
  cfg.hiccup_per_service = 0.0;
  cfg.slowpath_contention_cycles = 0;
  FixedCostDut dut(24000);
  auto r = RrLatencyRunner(cfg).run(dut, dummy_packet, dummy_packet);
  // Closed loop identity: tps ~= sessions / mean RTT.
  double expected_tps = cfg.sessions / (r.rtt_us.mean() * 1e-6);
  EXPECT_NEAR(r.transactions_per_second, expected_tps, expected_tps * 0.2);
}

}  // namespace
}  // namespace linuxfp::sim
