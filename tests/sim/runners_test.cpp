#include "sim/runners.h"

#include <gtest/gtest.h>

#include "sim/testbed.h"

namespace linuxfp::sim {
namespace {

ScenarioConfig router_config(Accel accel) {
  ScenarioConfig cfg;
  cfg.prefixes = 50;
  cfg.accel = accel;
  return cfg;
}

TEST(Testbed, LinuxForwardsScenarioTraffic) {
  LinuxTestbed dut(router_config(Accel::kNone));
  auto out = dut.process(dut.forward_packet(0, 0));
  EXPECT_TRUE(out.forwarded);
  EXPECT_FALSE(out.fast_path);
  EXPECT_GT(out.cycles, 0u);
}

TEST(Testbed, LinuxFpForwardsOnFastPath) {
  LinuxTestbed dut(router_config(Accel::kLinuxFpXdp));
  auto out = dut.process(dut.forward_packet(0, 0));
  EXPECT_TRUE(out.forwarded);
  EXPECT_TRUE(out.fast_path);
}

TEST(Testbed, GatewayDropsBlacklisted) {
  ScenarioConfig cfg;
  cfg.prefixes = 10;
  cfg.filter_rules = 100;
  cfg.accel = Accel::kLinuxFpXdp;
  LinuxTestbed dut(cfg);
  auto blocked = dut.process(dut.blacklisted_packet(5, 0));
  EXPECT_TRUE(blocked.dropped_by_policy);
  auto ok = dut.process(dut.forward_packet(1, 0));
  EXPECT_TRUE(ok.forwarded);
}

TEST(Testbed, IpsetVariantEquivalentVerdicts) {
  ScenarioConfig plain;
  plain.filter_rules = 100;
  ScenarioConfig ipset = plain;
  ipset.use_ipset = true;
  LinuxTestbed a(plain), b(ipset);
  for (int entry : {0, 13, 57, 99}) {
    EXPECT_TRUE(a.process(a.blacklisted_packet(entry, 0)).dropped_by_policy);
    EXPECT_TRUE(b.process(b.blacklisted_packet(entry, 0)).dropped_by_policy);
  }
  EXPECT_TRUE(a.process(a.forward_packet(2, 0)).forwarded);
  EXPECT_TRUE(b.process(b.forward_packet(2, 0)).forwarded);
}

TEST(ThroughputRunner, ScalesWithCores) {
  LinuxTestbed dut(router_config(Accel::kNone));
  FlowPattern pattern(50, 256, 64);
  ThroughputRunner runner(25e9, 2000);
  auto factory = [&](std::uint64_t i) {
    auto [prefix, flow] = pattern.at(i);
    return dut.forward_packet(prefix, flow);
  };
  auto one = runner.run(dut, factory, 1, 64);
  auto four = runner.run(dut, factory, 4, 64);
  EXPECT_GT(one.total_pps, 0.5e6);
  EXPECT_GT(four.total_pps, one.total_pps * 3.2);
  EXPECT_LT(four.total_pps, one.total_pps * 4.8);
  EXPECT_FALSE(one.line_rate_limited);
}

TEST(ThroughputRunner, LinuxFpBeatsLinux) {
  LinuxTestbed linux_dut(router_config(Accel::kNone));
  LinuxTestbed lfp_dut(router_config(Accel::kLinuxFpXdp));
  FlowPattern pattern(50, 256, 64);
  ThroughputRunner runner(25e9, 2000);
  auto linux_pps =
      runner
          .run(linux_dut,
               [&](std::uint64_t i) {
                 auto [p, f] = pattern.at(i);
                 return linux_dut.forward_packet(p, f);
               },
               1, 64)
          .total_pps;
  auto lfp_pps =
      runner
          .run(lfp_dut,
               [&](std::uint64_t i) {
                 auto [p, f] = pattern.at(i);
                 return lfp_dut.forward_packet(p, f);
               },
               1, 64)
          .total_pps;
  // The headline claim: 77% improvement (accept 50-100%).
  EXPECT_GT(lfp_pps, linux_pps * 1.5);
  EXPECT_LT(lfp_pps, linux_pps * 2.0);
}

TEST(ThroughputRunner, LineRateCapAt1500B) {
  LinuxTestbed dut(router_config(Accel::kLinuxFpXdp));
  ThroughputRunner runner(25e9, 1500);
  auto result = runner.run(
      dut, [&](std::uint64_t i) { return dut.forward_packet(0, i % 64, 1500); },
      /*cores=*/8, 1500);
  EXPECT_TRUE(result.line_rate_limited);
  EXPECT_NEAR(result.total_bps, 25e9, 1e6);
}

TEST(RrLatencyRunner, LatencyOrderingMatchesPaper) {
  LinuxTestbed linux_dut(router_config(Accel::kNone));
  LinuxTestbed lfp_dut(router_config(Accel::kLinuxFpXdp));
  RrConfig cfg;
  cfg.transactions = 2000;
  RrLatencyRunner runner(cfg);
  auto req = [&](LinuxTestbed& dut) {
    return [&dut](int s) {
      return dut.forward_packet(s % 50, static_cast<std::uint16_t>(s));
    };
  };
  auto linux_rtt = runner.run(linux_dut, req(linux_dut), req(linux_dut));
  auto lfp_rtt = runner.run(lfp_dut, req(lfp_dut), req(lfp_dut));

  EXPECT_GT(linux_rtt.rtt_us.mean(), lfp_rtt.rtt_us.mean());
  // Paper Table III: 53% lower latency (accept 35-60% reduction).
  double reduction = 1.0 - lfp_rtt.rtt_us.mean() / linux_rtt.rtt_us.mean();
  EXPECT_GT(reduction, 0.35);
  EXPECT_LT(reduction, 0.60);
  // Distribution sanity: p99 > mean, stddev meaningful.
  EXPECT_GT(linux_rtt.rtt_us.p99(), linux_rtt.rtt_us.mean());
  EXPECT_GT(linux_rtt.rtt_us.stddev(), 0.0);
}

TEST(RrLatencyRunner, MoreSessionsMoreQueueing) {
  LinuxTestbed dut(router_config(Accel::kNone));
  RrConfig small;
  small.sessions = 16;
  small.transactions = 1500;
  RrConfig big;
  big.sessions = 128;
  big.transactions = 1500;
  auto req = [&dut](int s) {
    return dut.forward_packet(s % 50, static_cast<std::uint16_t>(s));
  };
  auto rtt_small = RrLatencyRunner(small).run(dut, req, req);
  auto rtt_big = RrLatencyRunner(big).run(dut, req, req);
  EXPECT_GT(rtt_big.rtt_us.mean(), rtt_small.rtt_us.mean() * 2);
}

}  // namespace
}  // namespace linuxfp::sim
