// N-queue vs 1-queue equivalence (ISSUE 4 satellite): parallelizing the
// fast path must not change WHAT happens to any packet, only WHERE it is
// processed. For a seeded flow mix over the LinuxFP XDP router, every
// verdict, drop and forwarding counter from a 4-queue run must exactly
// match the 1-queue run (determinism modulo ordering), and per-CPU map
// aggregation must be partition-invariant.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <string>

#include "core/status.h"
#include "ebpf/builder.h"
#include "ebpf/kernel_helpers.h"
#include "ebpf/loader.h"
#include "engine/engine.h"
#include "sim/testbed.h"
#include "tests/kernel/test_topo.h"

namespace linuxfp::engine {
namespace {

using linuxfp::testing::RouterDut;

// Runs once per execution engine: queue-partition invariance must hold for
// the interpreter and the direct-threaded translator alike (DESIGN.md §14).
class EngineEquivalence : public ::testing::TestWithParam<ebpf::ExecEngine> {
};

// Everything about a run that must be queue-count invariant.
struct RunCounters {
  std::uint64_t processed = 0;
  std::uint64_t xdp_drop = 0;
  std::uint64_t xdp_tx = 0;
  std::uint64_t xdp_redirect = 0;
  std::uint64_t xdp_pass = 0;
  std::uint64_t to_userspace = 0;
  std::uint64_t aborted = 0;
  std::uint64_t tail_drops = 0;
  std::uint64_t slow_processed = 0;
  std::uint64_t kc_forwarded = 0;
  std::uint64_t kc_fast_path = 0;
  std::uint64_t kc_slow_path = 0;
  std::map<kern::Drop, std::uint64_t> kc_drops;
  std::uint64_t testbed_forwarded = 0;
  std::uint64_t eth0_rx = 0;
  std::uint64_t eth1_tx = 0;

  bool operator==(const RunCounters&) const = default;
};

// One engine run over a fresh LinuxFP XDP router testbed. The flow mix is
// fully seeded: Zipf(1.1) skew over 256 flows, every 5th packet unroutable
// (FIB miss -> XDP pass -> slow-path drop), so both fast and slow verdict
// paths are exercised.
RunCounters run_scenario(unsigned queues, ebpf::ExecEngine engine,
                         const SteeringConfig& steering = {},
                         SteeringStats* steering_out = nullptr) {
  sim::ScenarioConfig cfg;
  cfg.prefixes = 50;
  cfg.accel = sim::Accel::kLinuxFpXdp;
  cfg.exec_engine = engine;
  cfg.steering = steering;
  sim::LinuxTestbed bed(cfg);
  sim::FlowPattern pattern(50, 256, 64, /*zipf_s=*/1.1);

  EngineConfig ecfg = bed.engine_config(queues);
  Engine eng(bed.kernel(), bed.ingress_ifindex(), ecfg);
  eng.start();
  constexpr std::uint64_t kPackets = 5000;
  for (std::uint64_t i = 0; i < kPackets; ++i) {
    auto [prefix, flow] = pattern.at(i);
    if (i % 5 == 4) {
      // No route for 10.250/16: the program punts, the stack drops.
      net::FlowKey f;
      f.src_ip = net::Ipv4Addr::parse("10.10.1.2").value();
      f.dst_ip = net::Ipv4Addr::parse("10.250.0.9").value();
      f.proto = net::kIpProtoUdp;
      f.src_port = static_cast<std::uint16_t>(2000 + flow);
      f.dst_port = 7;
      eng.inject(net::build_udp_packet(
          net::MacAddr::from_id(0x501),
          bed.kernel().dev_by_name("eth0")->mac(), f, 64));
    } else {
      eng.inject(bed.forward_packet(prefix, flow, pattern.frame_len()));
    }
  }
  eng.stop();

  RunCounters rc;
  rc.processed = eng.total_processed();
  rc.tail_drops = eng.total_tail_drops();
  for (unsigned q = 0; q < queues; ++q) {
    const QueueStats& st = eng.queue_stats(q);
    rc.xdp_drop += st.xdp_drop;
    rc.xdp_tx += st.xdp_tx;
    rc.xdp_redirect += st.xdp_redirect;
    rc.xdp_pass += st.xdp_pass;
    rc.to_userspace += st.to_userspace;
    rc.aborted += st.aborted;
  }
  rc.slow_processed = eng.slow_stats().processed;
  const kern::KernelCounters& kc = bed.kernel().counters();
  rc.kc_forwarded = kc.forwarded;
  rc.kc_fast_path = kc.fast_path_packets;
  rc.kc_slow_path = kc.slow_path_packets;
  rc.kc_drops = kc.drops;
  rc.testbed_forwarded = bed.forwarded_count();
  rc.eth0_rx = bed.kernel().dev_by_name("eth0")->stats().rx_packets;
  rc.eth1_tx = bed.kernel().dev_by_name("eth1")->stats().tx_packets;
  if (steering_out != nullptr && eng.steerer() != nullptr) {
    *steering_out = eng.steerer()->stats();
  }
  return rc;
}

TEST_P(EngineEquivalence, FourQueueRunMatchesSingleQueue) {
  RunCounters one = run_scenario(1, GetParam());
  RunCounters four = run_scenario(4, GetParam());

  // Sanity on the baseline itself: the mix really drove both paths.
  EXPECT_EQ(one.processed, 5000u);
  EXPECT_EQ(one.tail_drops, 0u);
  EXPECT_GT(one.xdp_redirect + one.xdp_tx, 0u) << "no fast-path forwards";
  EXPECT_EQ(one.slow_processed, one.xdp_pass + one.aborted);
  EXPECT_EQ(one.slow_processed, 1000u);  // the unroutable fifth

  EXPECT_EQ(one, four);
}

TEST_P(EngineEquivalence, AdaptiveSteeringPreservesEquivalence) {
  // The tentpole invariant: adaptive steering — live RETA rewrites, RFS
  // re-pins, elephant spray, all re-steering flows mid-run — changes only
  // WHERE packets process. Every verdict, drop and forwarding counter of an
  // 8-queue adaptively-steered run must exactly equal the plain 1-queue run.
  RunCounters one = run_scenario(1, GetParam());

  SteeringConfig steering = SteeringConfig::adaptive();
  steering.interval = 256;  // many live adaptation passes inside 5000 packets
  SteeringStats ss;
  RunCounters eight = run_scenario(8, GetParam(), steering, &ss);

  // The steering machinery demonstrably acted: this is not a vacuous pass.
  EXPECT_EQ(ss.decisions, 5000u);
  EXPECT_GT(ss.adapt_passes, 10u);
  EXPECT_GT(ss.rebalances, 0u);
  EXPECT_GT(ss.rfs_hits, 0u);

  EXPECT_EQ(one, eight);
}

TEST_P(EngineEquivalence, PercpuAggregationIsPartitionInvariant) {
  // A per-CPU counter map sees a different slot partition under 1 and 4
  // queues, but its control-plane aggregate must be identical.
  auto aggregate_after_run = [](unsigned queues, ebpf::ExecEngine engine) {
    RouterDut dut;
    ebpf::HelperRegistry helpers;
    ebpf::register_all_helpers(helpers, dut.kernel.cost());
    ebpf::Attachment att("pc", ebpf::HookType::kXdp, dut.kernel, helpers);
    att.set_exec_engine(engine);
    std::uint32_t map_id =
        att.maps().create("cnt", ebpf::MapType::kPercpuArray, 4, 8, 2);

    // key = ip proto is UDP ? 0 : 1; slot += 1; drop.
    ebpf::ProgramBuilder b("pc_count", ebpf::HookType::kXdp);
    b.mov_reg(ebpf::kR2, ebpf::kR10);
    b.add(ebpf::kR2, -8);
    b.st(ebpf::kR2, 0, 0, ebpf::MemSize::kU32);
    b.mov(ebpf::kR1, map_id);
    b.call(ebpf::kHelperMapLookup);
    b.jeq(ebpf::kR0, 0, "miss");
    b.ldx(ebpf::kR1, ebpf::kR0, 0, ebpf::MemSize::kU64);
    b.add(ebpf::kR1, 1);
    b.stx(ebpf::kR0, 0, ebpf::kR1, ebpf::MemSize::kU64);
    b.label("miss");
    b.ret(ebpf::kActDrop);
    auto id = att.load(b.build().value());
    EXPECT_TRUE(id.ok()) << (id.ok() ? "" : id.error().message);
    EXPECT_TRUE(att.set_entry(id.value()).ok());
    EXPECT_TRUE(
        ebpf::attach_to_device(dut.kernel, "eth0", ebpf::HookType::kXdp, &att)
            .ok());

    EngineConfig cfg;
    cfg.queues = queues;
    cfg.backpressure = true;
    Engine eng(dut.kernel, dut.eth0_ifindex(), cfg);
    eng.start();
    for (std::uint64_t i = 0; i < 3000; ++i) {
      eng.inject(
          dut.packet_to_prefix(static_cast<int>(i % 4),
                               static_cast<std::uint16_t>(i % 128)));
    }
    eng.stop();

    std::uint32_t key = 0;
    return att.maps().get(map_id)->percpu_sum(
        reinterpret_cast<std::uint8_t*>(&key));
  };

  std::uint64_t one = aggregate_after_run(1, GetParam());
  std::uint64_t four = aggregate_after_run(4, GetParam());
  EXPECT_EQ(one, 3000u);
  EXPECT_EQ(one, four);
}

TEST_P(EngineEquivalence, StatusJsonExposesPerQueueStats) {
  sim::ScenarioConfig cfg;
  cfg.prefixes = 4;
  cfg.accel = sim::Accel::kLinuxFpXdp;
  cfg.exec_engine = GetParam();
  sim::LinuxTestbed bed(cfg);

  EngineConfig ecfg;
  ecfg.queues = 2;
  ecfg.backpressure = true;
  Engine eng(bed.kernel(), bed.ingress_ifindex(), ecfg);
  eng.start();
  for (std::uint64_t i = 0; i < 300; ++i) {
    eng.inject(bed.forward_packet(static_cast<int>(i % 4),
                                  static_cast<std::uint16_t>(i % 64)));
  }
  eng.stop();

  util::Json status = core::status_json(*bed.controller());
  ASSERT_TRUE(status.object_items().contains("engine"));
  const util::Json& engine = status.at("engine");
  const util::Json& queues = engine.at("queues");
  ASSERT_EQ(queues.size(), 2u);
  std::uint64_t processed = 0;
  for (std::size_t q = 0; q < queues.size(); ++q) {
    const util::Json& qj = queues.at(q);
    processed += static_cast<std::uint64_t>(qj.at("processed").as_int());
    EXPECT_GE(qj.at("polls").as_int(), 1);
    EXPECT_EQ(qj.at("drops").as_int(), 0);
  }
  EXPECT_EQ(processed, 300u);

  // The raw counters also reach the Prometheus exporter.
  std::string prom = core::prometheus_status(*bed.controller());
  EXPECT_NE(prom.find("engine_queue0_processed"), std::string::npos);

  // Under the JIT the status document reports the translator's coverage and
  // the packets above really ran threaded.
  if (GetParam() == ebpf::ExecEngine::kJit) {
    ASSERT_TRUE(status.object_items().contains("jit"));
    const util::Json& jit = status.at("jit");
    EXPECT_GT(jit.at("translated").as_int(), 0);
    EXPECT_GT(jit.at("runs").as_int(), 0);
    EXPECT_EQ(jit.at("fallbacks").as_int(), 0);
  } else {
    EXPECT_FALSE(status.object_items().contains("jit"));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Engines, EngineEquivalence,
    ::testing::Values(ebpf::ExecEngine::kInterpreter, ebpf::ExecEngine::kJit),
    [](const ::testing::TestParamInfo<ebpf::ExecEngine>& info) {
      return std::string(info.param == ebpf::ExecEngine::kJit ? "jit"
                                                              : "interp");
    });

}  // namespace
}  // namespace linuxfp::engine
