// Parallel datapath engine tests: the MPMC ring, the symmetric Toeplitz RSS
// classifier, and full engine runs (worker pool + slow-path funnel) against
// the router DUT. The multi-threaded cases here are the ones tools/ci.sh
// replays under TSan.
#include "engine/engine.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "ebpf/builder.h"
#include "ebpf/kernel_helpers.h"
#include "ebpf/loader.h"
#include "engine/ring.h"
#include "engine/rss.h"
#include "tests/kernel/test_topo.h"

namespace linuxfp::engine {
namespace {

using linuxfp::testing::RouterDut;

// --- BoundedRing ---------------------------------------------------------------

TEST(BoundedRing, FifoOrderAndCapacity) {
  BoundedRing<int> ring(4);
  int out = 0;
  EXPECT_FALSE(ring.try_pop(out));
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(int{i}));
  EXPECT_FALSE(ring.try_push(99));  // full
  EXPECT_EQ(ring.occupancy(), 4u);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.try_pop(out));
  EXPECT_EQ(ring.occupancy(), 0u);
}

TEST(BoundedRing, FailedPushKeepsValue) {
  BoundedRing<std::vector<int>> ring(2);
  ASSERT_TRUE(ring.try_push(std::vector<int>{1}));
  ASSERT_TRUE(ring.try_push(std::vector<int>{2}));
  std::vector<int> v{3, 4, 5};
  EXPECT_FALSE(ring.try_push(std::move(v)));
  // A rejected push must not have consumed the value — callers retry with it.
  EXPECT_EQ(v.size(), 3u);
}

TEST(BoundedRing, MpscCountsPreserved) {
  // The slow ring's shape: several producers, one consumer. Every pushed
  // value must be popped exactly once.
  BoundedRing<std::uint64_t> ring(128);
  constexpr int kProducers = 4;
  constexpr std::uint64_t kPerProducer = 20000;
  std::atomic<int> live{kProducers};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, &live, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        std::uint64_t v = static_cast<std::uint64_t>(p) * kPerProducer + i;
        while (!ring.try_push(std::uint64_t{v})) std::this_thread::yield();
      }
      live.fetch_sub(1, std::memory_order_release);
    });
  }
  std::uint64_t sum = 0, count = 0, v = 0;
  for (;;) {
    if (ring.try_pop(v)) {
      sum += v;
      ++count;
      continue;
    }
    if (live.load(std::memory_order_acquire) == 0) {
      while (ring.try_pop(v)) {
        sum += v;
        ++count;
      }
      break;
    }
    std::this_thread::yield();
  }
  for (auto& t : producers) t.join();
  constexpr std::uint64_t kTotal = kProducers * kPerProducer;
  EXPECT_EQ(count, kTotal);
  EXPECT_EQ(sum, kTotal * (kTotal - 1) / 2);
}

// --- RSS -----------------------------------------------------------------------

net::Packet flow_packet(const char* src, const char* dst, std::uint16_t sport,
                        std::uint16_t dport) {
  net::FlowKey f;
  f.src_ip = net::Ipv4Addr::parse(src).value();
  f.dst_ip = net::Ipv4Addr::parse(dst).value();
  f.proto = net::kIpProtoUdp;
  f.src_port = sport;
  f.dst_port = dport;
  return net::build_udp_packet(net::MacAddr::from_id(1),
                               net::MacAddr::from_id(2), f, 64);
}

TEST(Rss, HashIsSymmetric) {
  // The repeated-key Toeplitz construction: both directions of a flow hash
  // identically, so request and reply land on the same queue (required for
  // per-CPU conntrack-style state).
  RssClassifier rss(4);
  for (std::uint16_t i = 0; i < 64; ++i) {
    net::Packet fwd =
        flow_packet("10.10.1.2", "10.100.0.9", 1000 + i, 7);
    net::Packet rev =
        flow_packet("10.100.0.9", "10.10.1.2", 7, 1000 + i);
    EXPECT_EQ(rss.hash(fwd), rss.hash(rev)) << "flow " << i;
    EXPECT_EQ(rss.queue_for(fwd), rss.queue_for(rev));
  }
}

TEST(Rss, SameFlowAlwaysSameQueue) {
  RssClassifier rss(8);
  net::Packet a = flow_packet("10.10.1.2", "10.100.0.9", 1234, 7);
  net::Packet b = flow_packet("10.10.1.2", "10.100.0.9", 1234, 7);
  EXPECT_EQ(rss.queue_for(a), rss.queue_for(b));
}

TEST(Rss, SpreadsFlowsAcrossQueues) {
  RssClassifier rss(4);
  std::vector<unsigned> hits(4, 0);
  for (std::uint16_t flow = 0; flow < 512; ++flow) {
    net::Packet p = flow_packet("10.10.1.2", "10.100.0.9",
                                static_cast<std::uint16_t>(1000 + flow), 7);
    unsigned q = rss.queue_for(p);
    ASSERT_LT(q, 4u);
    ++hits[q];
  }
  for (unsigned q = 0; q < 4; ++q) {
    // 512 flows over 4 queues: expect ~128 each; require at least a quarter
    // of fair share so a broken hash (all-one-queue) fails loudly.
    EXPECT_GT(hits[q], 32u) << "queue " << q;
  }
}

TEST(Rss, NonIpFallsBackToL2Hash) {
  // Non-IPv4 frames hash the canonicalized MAC pair + ethertype instead of
  // collapsing to hash 0 (which pinned all such traffic to reta_[0]'s queue
  // and one flowcache set). Deterministic, and symmetric in the MAC pair so
  // an ARP request and its reply stay on one queue.
  RssClassifier rss(4);
  net::Packet req = net::build_arp_request(net::MacAddr::from_id(7),
                                           net::Ipv4Addr::parse("10.0.0.1").value(),
                                           net::Ipv4Addr::parse("10.0.0.2").value());
  EXPECT_NE(rss.hash(req), 0u);
  EXPECT_EQ(rss.hash(req), rss.hash(req));
  net::Packet reply = net::build_arp_reply(
      net::MacAddr::from_id(9), net::Ipv4Addr::parse("10.0.0.2").value(),
      net::MacAddr::from_id(7), net::Ipv4Addr::parse("10.0.0.1").value());
  net::Packet reverse = net::build_arp_reply(
      net::MacAddr::from_id(7), net::Ipv4Addr::parse("10.0.0.1").value(),
      net::MacAddr::from_id(9), net::Ipv4Addr::parse("10.0.0.2").value());
  EXPECT_EQ(rss.hash(reply), rss.hash(reverse));
  // An all-zero runt frame still hashes without tripping the key window.
  net::Packet runt(8);
  EXPECT_EQ(rss.hash(runt), rss.hash(runt));
}

// --- Engine --------------------------------------------------------------------

// A deliberately fat XDP drop program (~200 straight-line insns): makes the
// worker the bottleneck so overload/tail-drop behaviour is deterministic.
ebpf::Program slow_drop_prog() {
  ebpf::ProgramBuilder b("slow_drop", ebpf::HookType::kXdp);
  for (int i = 0; i < 200; ++i) b.mov(ebpf::kR3, i);
  b.ret(ebpf::kActDrop);
  return b.build().value();
}

TEST(Engine, SlowPathForwardsWithoutProgram) {
  RouterDut dut;
  dut.add_prefixes(8);
  EngineConfig cfg;
  cfg.queues = 2;
  cfg.backpressure = true;
  Engine eng(dut.kernel, dut.eth0_ifindex(), cfg);
  eng.start();
  constexpr int kPackets = 400;
  for (int i = 0; i < kPackets; ++i) {
    eng.inject(dut.packet_to_prefix(i % 8, static_cast<std::uint16_t>(i)));
  }
  eng.stop();

  // No XDP program: every packet funnels through the slow-path thread and
  // is forwarded by the real stack.
  EXPECT_EQ(eng.total_processed(), static_cast<std::uint64_t>(kPackets));
  EXPECT_EQ(eng.total_tail_drops(), 0u);
  EXPECT_EQ(eng.slow_stats().processed, static_cast<std::uint64_t>(kPackets));
  EXPECT_GT(eng.slow_stats().cycles, 0u);
  EXPECT_EQ(dut.tx_eth1.size(), static_cast<std::size_t>(kPackets));
  EXPECT_EQ(dut.kernel.counters().forwarded,
            static_cast<std::uint64_t>(kPackets));

  // Reconciled observability: per-queue counters and device stats.
  util::MetricsRegistry& reg = dut.kernel.metrics();
  std::uint64_t processed = 0;
  for (unsigned q = 0; q < 2; ++q) {
    processed +=
        reg.value("engine.queue" + std::to_string(q) + ".processed");
    EXPECT_GT(reg.value("engine.queue" + std::to_string(q) + ".polls"), 0u)
        << "queue " << q;
  }
  EXPECT_EQ(processed, static_cast<std::uint64_t>(kPackets));
  EXPECT_EQ(reg.value("engine.slow.processed"),
            static_cast<std::uint64_t>(kPackets));
  auto& rx = dut.kernel.dev_by_name("eth0")->stats();
  EXPECT_EQ(rx.rx_packets, static_cast<std::uint64_t>(kPackets));
}

TEST(Engine, PercpuMapCountsAcrossWorkers) {
  // Four workers bump one per-CPU array entry concurrently; each writes its
  // own slot, so the control-plane aggregate equals the packet count with
  // no atomics in the program at all.
  RouterDut dut;
  ebpf::HelperRegistry helpers;
  ebpf::register_all_helpers(helpers, dut.kernel.cost());
  ebpf::Attachment att("pc", ebpf::HookType::kXdp, dut.kernel, helpers);
  std::uint32_t map_id =
      att.maps().create("cnt", ebpf::MapType::kPercpuArray, 4, 8, 1);

  // lookup key 0 -> load slot, +1, store, drop.
  ebpf::ProgramBuilder b("pc_count", ebpf::HookType::kXdp);
  b.mov_reg(ebpf::kR2, ebpf::kR10);
  b.add(ebpf::kR2, -8);
  b.st(ebpf::kR2, 0, 0, ebpf::MemSize::kU32);
  b.mov(ebpf::kR1, map_id);
  b.call(ebpf::kHelperMapLookup);
  b.jeq(ebpf::kR0, 0, "miss");
  b.ldx(ebpf::kR1, ebpf::kR0, 0, ebpf::MemSize::kU64);
  b.add(ebpf::kR1, 1);
  b.stx(ebpf::kR0, 0, ebpf::kR1, ebpf::MemSize::kU64);
  b.label("miss");
  b.ret(ebpf::kActDrop);
  auto id = att.load(b.build().value());
  ASSERT_TRUE(id.ok()) << id.error().message;
  ASSERT_TRUE(att.set_entry(id.value()).ok());
  ASSERT_TRUE(
      ebpf::attach_to_device(dut.kernel, "eth0", ebpf::HookType::kXdp, &att)
          .ok());

  EngineConfig cfg;
  cfg.queues = 4;
  cfg.backpressure = true;
  Engine eng(dut.kernel, dut.eth0_ifindex(), cfg);
  eng.start();
  constexpr std::uint64_t kPackets = 4000;
  for (std::uint64_t i = 0; i < kPackets; ++i) {
    eng.inject(dut.packet_to_prefix(0, static_cast<std::uint16_t>(i % 256)));
  }
  eng.stop();

  EXPECT_EQ(eng.total_processed(), kPackets);
  EXPECT_EQ(eng.total_fast_verdicts(), kPackets);
  EXPECT_EQ(eng.slow_stats().processed, 0u);

  // Aggregate-on-read equals the total; each CPU slot holds exactly its
  // queue's packet count.
  std::uint32_t key = 0;
  ebpf::Map* m = att.maps().get(map_id);
  EXPECT_EQ(m->percpu_sum(reinterpret_cast<std::uint8_t*>(&key)), kPackets);
  for (unsigned q = 0; q < 4; ++q) {
    std::uint64_t slot = 0;
    std::memcpy(&slot, m->lookup(reinterpret_cast<std::uint8_t*>(&key), q), 8);
    EXPECT_EQ(slot, eng.queue_stats(q).processed) << "cpu " << q;
  }

  // Attachment per-CPU stat shards aggregate to the run total.
  EXPECT_EQ(att.stats().runs, kPackets);
  EXPECT_EQ(att.stats().drop, kPackets);
  EXPECT_EQ(dut.kernel.counters().fast_path_packets, kPackets);
  EXPECT_EQ(dut.kernel.metrics().value("drop.xdp_drop"), kPackets);
}

TEST(Engine, TailDropUnderOverload) {
  RouterDut dut;
  ebpf::HelperRegistry helpers;
  ebpf::register_all_helpers(helpers, dut.kernel.cost());
  ebpf::Attachment att("slow", ebpf::HookType::kXdp, dut.kernel, helpers);
  auto id = att.load(slow_drop_prog());
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(att.set_entry(id.value()).ok());
  ASSERT_TRUE(
      ebpf::attach_to_device(dut.kernel, "eth0", ebpf::HookType::kXdp, &att)
          .ok());

  EngineConfig cfg;
  cfg.queues = 1;
  cfg.queue_depth = 8;
  cfg.backpressure = false;  // NIC tail-drop semantics
  Engine eng(dut.kernel, dut.eth0_ifindex(), cfg);
  eng.start();
  constexpr std::uint64_t kPackets = 20000;
  for (std::uint64_t i = 0; i < kPackets; ++i) {
    eng.inject(dut.packet_to_prefix(0, 1));  // one flow -> one queue
  }
  eng.stop();

  const QueueStats& st = eng.queue_stats(0);
  // Conservation: every injected packet was either enqueued or tail-dropped,
  // and everything enqueued was processed (drain-on-stop).
  EXPECT_EQ(st.enqueued + st.tail_drops, kPackets);
  EXPECT_EQ(st.processed, st.enqueued);
  EXPECT_GT(st.tail_drops, 0u);
  EXPECT_LE(st.max_occupancy, cfg.queue_depth);
  EXPECT_EQ(eng.total_tail_drops(), st.tail_drops);
  // Tail drops are charged to the ingress device like rx_dropped.
  EXPECT_EQ(dut.kernel.dev_by_name("eth0")->stats().rx_dropped,
            st.tail_drops);
}

TEST(Engine, NapiBudgetBoundsBurstSize) {
  RouterDut dut;
  ebpf::HelperRegistry helpers;
  ebpf::register_all_helpers(helpers, dut.kernel.cost());
  ebpf::Attachment att("slow", ebpf::HookType::kXdp, dut.kernel, helpers);
  auto id = att.load(slow_drop_prog());
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(att.set_entry(id.value()).ok());
  ASSERT_TRUE(
      ebpf::attach_to_device(dut.kernel, "eth0", ebpf::HookType::kXdp, &att)
          .ok());

  EngineConfig cfg;
  cfg.queues = 1;
  cfg.queue_depth = 256;
  cfg.napi_budget = 16;
  cfg.backpressure = true;
  Engine eng(dut.kernel, dut.eth0_ifindex(), cfg);
  eng.start();
  constexpr std::uint64_t kPackets = 2048;
  for (std::uint64_t i = 0; i < kPackets; ++i) {
    eng.inject(dut.packet_to_prefix(0, 1));
  }
  eng.stop();

  const QueueStats& st = eng.queue_stats(0);
  EXPECT_EQ(st.processed, kPackets);
  // polls * budget >= processed, and any full-budget poll is a burst.
  EXPECT_GE(st.polls * cfg.napi_budget, st.processed);
  EXPECT_LE(st.bursts, st.polls);
}

}  // namespace
}  // namespace linuxfp::engine
