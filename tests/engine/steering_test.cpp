// Adaptive flow steering tests (DESIGN.md §15): the space-saving sketch, the
// RSS bugfix sweep (L2 fallback spread, fragment hash consistency, RETA
// re-convergence after include_queue), the FlowSteerer's three mechanisms
// (RFS affinity, elephant spray/demote, RETA rebalancing), and the
// steering-enabled engine end to end with its reconciled steering.* metrics.
// The multi-threaded cases run under TSan/UBSan via tools/ci.sh.
#include "engine/steering.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "ebpf/loader.h"
#include "engine/engine.h"
#include "engine/flowcache.h"
#include "net/headers.h"
#include "sim/testbed.h"
#include "tests/kernel/test_topo.h"

namespace linuxfp::engine {
namespace {

using linuxfp::testing::RouterDut;

// --- SpaceSaving ---------------------------------------------------------------

TEST(Steering, SpaceSavingTracksHeavyHitterUnderEviction) {
  SpaceSaving sketch(4);
  for (int i = 0; i < 100; ++i) sketch.add(0xE1E);
  // 40 mice churn through the remaining 3 slots.
  for (std::uint32_t m = 1; m <= 40; ++m) sketch.add(m);
  EXPECT_TRUE(sketch.tracked(0xE1E));
  EXPECT_LE(sketch.items().size(), 4u);
  const SpaceSaving::Item* hot = nullptr;
  for (const SpaceSaving::Item& it : sketch.items()) {
    if (it.hash == 0xE1E) hot = &it;
  }
  ASSERT_NE(hot, nullptr);
  // Space-saving never undercounts: count - err <= true count <= count.
  EXPECT_GE(hot->count, 100u);
  EXPECT_LE(hot->count - hot->err, 100u);
}

TEST(Steering, SpaceSavingHalveDecaysAndDropsDeadItems) {
  SpaceSaving sketch(4);
  for (int i = 0; i < 8; ++i) sketch.add(1);
  sketch.add(2);  // count 1: one halve() kills it
  sketch.halve();
  EXPECT_TRUE(sketch.tracked(1));
  EXPECT_FALSE(sketch.tracked(2));
  for (const SpaceSaving::Item& it : sketch.items()) {
    if (it.hash == 1) EXPECT_EQ(it.count, 4u);
  }
}

// --- RSS bugfix sweep ----------------------------------------------------------

TEST(Rss, L2FallbackSpreadsNonIpTrafficAcrossQueues) {
  // Regression for the hash-0 pinning bug: distinct non-IP "flows" (ARP
  // exchanges between distinct MAC pairs) must spread over all queues
  // instead of collapsing onto reta_[0]'s queue.
  RssClassifier rss(4);
  std::vector<unsigned> hits(4, 0);
  for (std::uint32_t id = 0; id < 256; ++id) {
    net::Packet arp = net::build_arp_request(
        net::MacAddr::from_id(1000 + id),
        net::Ipv4Addr::parse("10.0.0.1").value(),
        net::Ipv4Addr::parse("10.0.0.2").value());
    ++hits[rss.queue_for(arp)];
  }
  for (unsigned q = 0; q < 4; ++q) {
    // 256 flows over 4 queues: expect ~64 each; at least a quarter of fair
    // share means no queue is starved and none hoards everything.
    EXPECT_GT(hits[q], 16u) << "queue " << q;
  }
}

TEST(Rss, FragmentsOfOneDatagramHashIdentically) {
  // Every fragment of a datagram — first (MF=1, off=0), middle (MF=1,
  // off>0), last (MF=0, off>0) — must hash identically (ports excluded for
  // all of them, including the first fragment, which still carries the UDP
  // header), or a fragmented flow straddles queues and defeats the
  // flowcache. Locks the parse_packet has_ports gating.
  net::FlowKey f;
  f.src_ip = net::Ipv4Addr::parse("10.10.1.2").value();
  f.dst_ip = net::Ipv4Addr::parse("10.100.0.9").value();
  f.proto = net::kIpProtoUdp;
  f.src_port = 4242;
  f.dst_port = 7;
  auto frag = [&](std::uint16_t frag_field) {
    net::Packet p = net::build_udp_packet(net::MacAddr::from_id(1),
                                          net::MacAddr::from_id(2), f, 128);
    net::Ipv4View ip(p.data() + net::kEthHdrLen);
    ip.set_frag_field(frag_field);
    ip.update_checksum();
    return p;
  };
  net::Packet whole = frag(0x0000);
  net::Packet first = frag(0x2000);        // MF, offset 0
  net::Packet middle = frag(0x2000 | 5);   // MF, offset 5
  net::Packet last = frag(0x0005);         // offset 5, no MF
  std::uint32_t h = rss_hash_of(first);
  EXPECT_NE(h, 0u);
  EXPECT_EQ(rss_hash_of(middle), h);
  EXPECT_EQ(rss_hash_of(last), h);
  // The unfragmented datagram hashes with ports — a different input. What
  // matters for steering is that all fragments agree with each other.
  EXPECT_NE(rss_hash_of(whole), 0u);
}

TEST(Rss, IncludeQueueReconvergesRetaToUniform) {
  // Regression for permanent RETA skew: after exclude + include, the table
  // must return to a uniform spread (not leave the recovered queue starved).
  RssClassifier rss(4);
  ASSERT_GT(rss.exclude_queue(2), 0u);
  EXPECT_TRUE(rss.excluded(2));
  std::array<unsigned, kRetaSize> skewed = rss.reta();
  for (unsigned entry : skewed) EXPECT_NE(entry, 2u);

  EXPECT_GT(rss.include_queue(2), 0u);
  EXPECT_FALSE(rss.excluded(2));
  std::vector<unsigned> owned(4, 0);
  for (unsigned entry : rss.reta()) {
    ASSERT_LT(entry, 4u);
    ++owned[entry];
  }
  for (unsigned q = 0; q < 4; ++q) {
    EXPECT_EQ(owned[q], kRetaSize / 4) << "queue " << q;
  }
  // Including a queue that isn't excluded is a no-op.
  EXPECT_EQ(rss.include_queue(2), 0u);
  EXPECT_EQ(rss.include_queue(99), 0u);
}

TEST(Rss, SetEntryRespectsExclusionAndBounds) {
  RssClassifier rss(4);
  EXPECT_TRUE(rss.set_entry(0, 3));
  EXPECT_EQ(rss.reta()[0], 3u);
  EXPECT_FALSE(rss.set_entry(0, 3));  // unchanged
  EXPECT_FALSE(rss.set_entry(kRetaSize, 1));
  EXPECT_FALSE(rss.set_entry(1, 9));
  rss.exclude_queue(3);
  EXPECT_FALSE(rss.set_entry(1, 3));  // excluded target rejected
}

// --- FlowSteerer ---------------------------------------------------------------

SteeringConfig no_adapt(SteeringConfig cfg) {
  cfg.interval = 1u << 30;  // adaptation only when the test calls adapt()
  return cfg;
}

TEST(Steering, RfsPinSurvivesRetaRewrite) {
  // The affinity table exists so a RETA rewrite never silently migrates an
  // established flow away from its warm per-CPU state.
  RssClassifier rss(4);
  SteeringConfig cfg;
  cfg.rfs = true;
  FlowSteerer s(rss, no_adapt(cfg));
  const std::uint32_t h = 0x5EED;
  unsigned pinned = s.pick_queue(h);
  EXPECT_EQ(s.rfs_queue(h), pinned);
  // Adversarial rewrite: point every bucket somewhere else.
  for (std::size_t i = 0; i < kRetaSize; ++i) {
    rss.set_entry(i, (pinned + 1) % 4);
  }
  for (int i = 0; i < 8; ++i) EXPECT_EQ(s.pick_queue(h), pinned);
  EXPECT_GE(s.stats().rfs_hits, 8u);
  // A fresh flow follows the rewritten RETA, not the old pin.
  EXPECT_EQ(s.pick_queue(h + kRetaSize), (pinned + 1) % 4);
}

TEST(Steering, RfsRepinsWhenPinnedQueueIsExcluded) {
  RssClassifier rss(2);
  SteeringConfig cfg;
  cfg.rfs = true;
  FlowSteerer s(rss, no_adapt(cfg));
  const std::uint32_t h = 0xABC;
  unsigned pinned = s.pick_queue(h);
  rss.exclude_queue(pinned);
  unsigned moved = s.pick_queue(h);
  EXPECT_NE(moved, pinned);
  EXPECT_EQ(s.rfs_queue(h), moved);  // re-pinned to the live queue
}

TEST(Steering, RebalancerPacksHotBucketAlone) {
  // One RETA bucket carries half the traffic; the LPT pass must give it a
  // queue of its own and spread the other 127 buckets over the rest.
  RssClassifier rss(4);
  SteeringConfig cfg;
  cfg.rebalance = true;
  FlowSteerer s(rss, no_adapt(cfg));
  for (int i = 0; i < 512; ++i) s.pick_queue(128);  // bucket 0, hot
  for (std::uint32_t b = 1; b < kRetaSize; ++b) {
    for (int i = 0; i < 4; ++i) s.pick_queue(b);  // buckets 1..127, 4 each
  }
  s.adapt();
  EXPECT_GT(s.stats().reta_rewrites, 0u);
  std::array<unsigned, kRetaSize> reta = rss.reta();
  unsigned hot_queue = reta[0];
  std::vector<unsigned> owned(4, 0);
  for (unsigned entry : reta) ++owned[entry];
  // The hot bucket's queue holds (almost) nothing else; the cold queues
  // split the rest roughly evenly.
  EXPECT_LE(owned[hot_queue], 4u);
  for (unsigned q = 0; q < 4; ++q) {
    if (q == hot_queue) continue;
    EXPECT_GE(owned[q], 30u) << "queue " << q;
  }
}

TEST(Steering, ElephantIsSprayedThenDemotedWhenItCools) {
  RssClassifier rss(4);
  SteeringConfig cfg;
  cfg.elephants = true;
  cfg.interval = 256;
  FlowSteerer s(rss, cfg);
  const std::uint32_t kHot = 0x0E1E;
  // ~70% of traffic is one flow: far above the auto spray threshold
  // (0.5 / 4 alive = 12.5% share).
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 256; ++i) {
      s.pick_queue(i % 10 < 7 ? kHot : 0x1000 + static_cast<std::uint32_t>(i));
    }
  }
  ASSERT_TRUE(s.sprayed(kHot));
  EXPECT_GE(s.stats().spray_flows, 1u);
  // A sprayed flow round-robins over every alive queue.
  std::set<unsigned> queues;
  for (int i = 0; i < 16; ++i) queues.insert(s.pick_queue(kHot));
  EXPECT_EQ(queues.size(), 4u);
  EXPECT_GT(s.stats().sprayed, 0u);

  // The flow goes quiet: decay drops its share below the demote threshold
  // and it returns to normal affinity steering.
  for (int round = 0; round < 8; ++round) {
    for (int i = 0; i < 256; ++i) {
      s.pick_queue(0x2000 + static_cast<std::uint32_t>(i % 64));
    }
  }
  EXPECT_FALSE(s.sprayed(kHot));
  EXPECT_GE(s.stats().unspray_flows, 1u);
}

TEST(Steering, PinnedElephantsMigrateOffHotQueue) {
  // Three pinned flows land on queue 0, one light flow on queue 1. The
  // adaptation pass must retarget pins until the imbalance is inside
  // tolerance — without spraying (threshold set out of reach).
  RssClassifier rss(2);
  SteeringConfig cfg;
  cfg.rfs = true;
  cfg.elephants = true;
  cfg.spray_share = 0.95;  // nothing sprays: isolate migration
  FlowSteerer s(rss, no_adapt(cfg));
  // Even hashes -> even buckets -> queue 0 under the round-robin RETA.
  for (int i = 0; i < 100; ++i) s.pick_queue(0);
  for (int i = 0; i < 100; ++i) s.pick_queue(2);
  for (int i = 0; i < 100; ++i) s.pick_queue(4);
  for (int i = 0; i < 20; ++i) s.pick_queue(1);
  ASSERT_EQ(s.rfs_queue(0), 0u);
  ASSERT_EQ(s.rfs_queue(2), 0u);
  ASSERT_EQ(s.rfs_queue(4), 0u);
  s.adapt();
  EXPECT_GE(s.stats().rfs_migrations, 1u);
  bool any_moved = s.rfs_queue(0) == 1u || s.rfs_queue(2) == 1u ||
                   s.rfs_queue(4) == 1u;
  EXPECT_TRUE(any_moved);
}

// --- steering-enabled engine end to end ----------------------------------------

TEST(Steering, EngineAdaptiveSteeringSpreadsZipfSkewLosslessly) {
  // Under Zipf(1.2) one flow is ~1/5 of all traffic and classic RSS pins it
  // (plus everything sharing its bucket) to one queue. With adaptive
  // steering the hot queue's processed share must come down toward fair,
  // and the run stays lossless with every packet accounted for.
  RouterDut dut;
  dut.add_prefixes(8);
  EngineConfig cfg;
  cfg.queues = 4;
  cfg.backpressure = true;
  cfg.steering = SteeringConfig::adaptive();
  cfg.steering.interval = 512;
  Engine eng(dut.kernel, dut.eth0_ifindex(), cfg);
  sim::FlowPattern pattern(8, 256, 64, /*zipf_s=*/1.2);
  eng.start();
  constexpr std::uint64_t kPackets = 6000;
  for (std::uint64_t i = 0; i < kPackets; ++i) {
    auto [prefix, flow] = pattern.at(i);
    eng.inject(dut.packet_to_prefix(prefix, flow));
  }
  eng.stop();

  EXPECT_EQ(eng.total_processed(), kPackets);
  EXPECT_EQ(eng.total_tail_drops(), 0u);
  ASSERT_NE(eng.steerer(), nullptr);
  const SteeringStats& ss = eng.steerer()->stats();
  EXPECT_EQ(ss.decisions, kPackets);
  EXPECT_GT(ss.adapt_passes, 0u);
  EXPECT_GT(ss.rebalances, 0u);
  std::uint64_t hottest = 0;
  for (unsigned q = 0; q < 4; ++q) {
    hottest = std::max(hottest, eng.queue_stats(q).processed);
  }
  // Static RSS gives the hot queue well over 40% of this mix (the rank-1
  // flow alone is ~21%). Adaptive steering must pull it under that.
  EXPECT_LT(static_cast<double>(hottest) / static_cast<double>(kPackets), 0.4);

  // The reconciled steering.* counters reached the registry.
  EXPECT_EQ(dut.kernel.metrics().value("engine.steering.decisions"), kPackets);
  EXPECT_EQ(dut.kernel.metrics().value("engine.steering.adapt_passes"),
            ss.adapt_passes);
}

// --- flowcache migration coherence ---------------------------------------------

TEST(Steering, FlowcacheStaysCoherentWhenFlowMigratesCpus) {
  // An elephant migration re-steers a flow from CPU 0's worker to CPU 1's.
  // The microflow cache is per-CPU exact-match: the new CPU takes one miss,
  // re-records, and both caches may hold the flow at the SAME epoch — no
  // epoch bump, no stale verdict (the entries are equal pure functions).
  sim::ScenarioConfig cfg;
  cfg.prefixes = 8;
  cfg.accel = sim::Accel::kLinuxFpXdp;
  cfg.flow_cache = true;
  sim::LinuxTestbed dut(cfg);
  ebpf::Attachment* att =
      dut.controller()->deployer().attachment("eth0", ebpf::HookType::kXdp);
  ASSERT_NE(att, nullptr);
  att->prepare_cpus(2);
  const std::uint64_t epoch = att->flow_epoch();

  net::Packet warm = dut.forward_packet(1, 5);
  const std::uint32_t hash = rss_hash_cached(warm);

  // Flow lives on CPU 0: miss then hits.
  auto r0 = att->run_on_cpu(warm, dut.ingress_ifindex(), 0);
  net::Packet again = dut.forward_packet(1, 5);
  auto r0b = att->run_on_cpu(again, dut.ingress_ifindex(), 0);
  EXPECT_EQ(r0b.verdict, r0.verdict);
  ASSERT_NE(att->flow_cache(0), nullptr);
  ASSERT_NE(att->flow_cache(1), nullptr);
  EXPECT_TRUE(att->flow_cache(0)->contains(hash, epoch));
  EXPECT_FALSE(att->flow_cache(1)->contains(hash, epoch));

  // Migration: the same flow now arrives on CPU 1. Verdict identical, entry
  // re-recorded there, CPU 0's entry untouched and both at the same epoch.
  net::Packet migrated = dut.forward_packet(1, 5);
  auto r1 = att->run_on_cpu(migrated, dut.ingress_ifindex(), 1);
  EXPECT_EQ(r1.verdict, r0.verdict);
  EXPECT_TRUE(att->flow_cache(1)->contains(hash, epoch));
  EXPECT_TRUE(att->flow_cache(0)->contains(hash, epoch));
  EXPECT_EQ(att->flow_epoch(), epoch);

  // And the warm entry still serves on the new CPU: one more run is a hit.
  std::uint64_t hits_before = att->flow_cache(1)->stats().hits;
  net::Packet settled = dut.forward_packet(1, 5);
  auto r1b = att->run_on_cpu(settled, dut.ingress_ifindex(), 1);
  EXPECT_EQ(r1b.verdict, r0.verdict);
  EXPECT_EQ(att->flow_cache(1)->stats().hits, hits_before + 1);
}

}  // namespace
}  // namespace linuxfp::engine
