// Microflow verdict cache unit tests (DESIGN.md §12): exact-match keying,
// per-subsystem generation invalidation filtered by the dependency mask,
// epoch flushes, uncacheable rules, conntrack replay-validation, FDB refresh
// replay, set-associativity, and the per-CPU concurrency contract (the
// FlowCacheConcurrency suite runs under TSan via tools/ci.sh).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/controller.h"
#include "ebpf/loader.h"
#include "engine/flowcache.h"
#include "engine/rss.h"
#include "kernel/commands.h"
#include "kernel/kernel.h"
#include "net/headers.h"
#include "sim/testbed.h"

namespace linuxfp::engine {
namespace {

net::Packet flow_packet(std::uint16_t flow, std::uint8_t ttl = 0) {
  net::FlowKey f;
  f.src_ip = net::Ipv4Addr::parse("10.10.1.2").value();
  f.dst_ip = net::Ipv4Addr::parse("10.100.0.9").value();
  f.proto = net::kIpProtoUdp;
  f.src_port = static_cast<std::uint16_t>(1000 + flow);
  f.dst_port = 7;
  net::Packet p = net::build_udp_packet(net::MacAddr::from_id(0x501),
                                        net::MacAddr::from_id(0x1), f, 64);
  if (ttl != 0) {
    net::Ipv4View ip(p.data() + net::kEthHdrLen);
    ip.set_ttl(ttl);
    ip.update_checksum();
  }
  return p;
}

// Records a miss run that read the Eth+IP headers, depended on the FIB, and
// rewrote the destination MAC; inserts it with the given act/epoch.
void insert_entry(FlowCache& cache, kern::Kernel& kernel, std::uint16_t flow,
                  int ifindex, std::uint64_t epoch, std::uint64_t act,
                  int redirect) {
  net::Packet pkt = flow_packet(flow);
  rss_hash_cached(pkt);
  FlowCacheRecorder& rec = cache.recorder();
  rec.begin(pkt);
  rec.add_dep(kDepFib);
  rec.note_packet_read(0, 34);
  rec.note_packet_write(0, 6);
  for (int i = 0; i < 6; ++i) pkt.data()[i] = static_cast<std::uint8_t>(0xA0 + i);
  cache.insert(pkt, ifindex, epoch, kernel, rec, act, redirect, true);
}

TEST(FlowCache, HitReplaysVerdictAndHeaderDiff) {
  kern::Kernel kernel{"dut"};
  FlowCache cache(64);
  insert_entry(cache, kernel, 1, 3, 7, 4, 2);
  ASSERT_EQ(cache.live_entries(), 1u);

  net::Packet probe = flow_packet(1);
  FlowCache::Hit hit;
  ASSERT_TRUE(cache.try_hit(probe, 3, 7, kernel, &hit));
  EXPECT_EQ(hit.act, 4u);
  EXPECT_EQ(hit.redirect_ifindex, 2);
  // The recorded MAC rewrite was replayed onto the probe packet.
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(probe.data()[i], static_cast<std::uint8_t>(0xA0 + i));
  }
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(FlowCache, ReadMaskByteDifferenceMisses) {
  kern::Kernel kernel{"dut"};
  FlowCache cache(64);
  insert_entry(cache, kernel, 1, 3, 0, 4, 2);

  // Same 5-tuple (same RSS hash, same set) but a different TTL — a byte
  // under the read mask — must not hit.
  net::Packet probe = flow_packet(1, 9);
  FlowCache::Hit hit;
  EXPECT_FALSE(cache.try_hit(probe, 3, 0, kernel, &hit));
  // Different ingress device: same bytes, different ctx — no hit either.
  net::Packet probe2 = flow_packet(1);
  EXPECT_FALSE(cache.try_hit(probe2, 4, 0, kernel, &hit));
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(FlowCache, GenerationInvalidationFollowsDependencyMask) {
  kern::Kernel kernel{"dut"};
  FlowCache cache(64);
  insert_entry(cache, kernel, 1, 3, 0, 4, 2);  // deps = kDepFib only

  // Netfilter churn: not in the entry's dependency mask, still a hit.
  kern::Rule rule;
  rule.target = kern::RuleTarget::kDrop;
  ASSERT_TRUE(kernel.netfilter().append_rule("FORWARD", std::move(rule)).ok());
  net::Packet probe = flow_packet(1);
  FlowCache::Hit hit;
  EXPECT_TRUE(cache.try_hit(probe, 3, 0, kernel, &hit));

  // FIB churn: in the mask — invalidates.
  kern::Route route;
  route.dst = net::Ipv4Prefix(net::Ipv4Addr::parse("10.200.0.0").value(), 24);
  route.oif = 2;
  kernel.fib().add_route(route);
  net::Packet probe2 = flow_packet(1);
  EXPECT_FALSE(cache.try_hit(probe2, 3, 0, kernel, &hit));
  EXPECT_EQ(cache.stats().invalidations, 1u);
  // The stale entry was dropped, not left to shadow the slot.
  EXPECT_EQ(cache.live_entries(), 0u);
}

TEST(FlowCache, EpochMismatchFlushesEntry) {
  kern::Kernel kernel{"dut"};
  FlowCache cache(64);
  insert_entry(cache, kernel, 1, 3, 0, 4, 2);

  net::Packet probe = flow_packet(1);
  FlowCache::Hit hit;
  // Program redeploy bumped the attachment epoch: the entry is gone.
  EXPECT_FALSE(cache.try_hit(probe, 3, 1, kernel, &hit));
  EXPECT_EQ(cache.stats().invalidations, 1u);
  EXPECT_EQ(cache.live_entries(), 0u);

  // Re-recorded at the new epoch, it serves again.
  insert_entry(cache, kernel, 1, 3, 1, 4, 2);
  net::Packet probe2 = flow_packet(1);
  EXPECT_TRUE(cache.try_hit(probe2, 3, 1, kernel, &hit));
}

TEST(FlowCache, UncacheableRunsAreNeverInserted) {
  kern::Kernel kernel{"dut"};
  FlowCache cache(64);
  net::Packet pkt = flow_packet(1);
  rss_hash_cached(pkt);
  FlowCacheRecorder& rec = cache.recorder();

  // Explicitly marked (helper outside the replayable whitelist).
  rec.begin(pkt);
  rec.mark_uncacheable("map write");
  cache.insert(pkt, 3, 0, kernel, rec, 2, -1, true);
  EXPECT_EQ(cache.live_entries(), 0u);
  EXPECT_EQ(cache.stats().uncacheable, 1u);

  // Packet access beyond the bounded header window.
  rec.begin(pkt);
  rec.note_packet_read(60, 8);
  EXPECT_TRUE(rec.uncacheable());
  cache.insert(pkt, 3, 0, kernel, rec, 2, -1, true);
  EXPECT_EQ(cache.live_entries(), 0u);

  // Aborted/XSK runs arrive with cacheable=false from the attachment.
  rec.begin(pkt);
  cache.insert(pkt, 3, 0, kernel, rec, 0, -1, false);
  EXPECT_EQ(cache.live_entries(), 0u);
  EXPECT_EQ(cache.stats().uncacheable, 3u);
}

TEST(FlowCache, ConntrackReplayMismatchInvalidates) {
  kern::Kernel kernel{"dut"};
  FlowCache cache(64);

  net::FlowKey key;
  key.src_ip = net::Ipv4Addr::parse("10.10.1.2").value();
  key.dst_ip = net::Ipv4Addr::parse("10.100.0.9").value();
  key.proto = net::kIpProtoUdp;
  key.src_port = 1001;
  key.dst_port = 7;

  // The recorded run created the conntrack entry (NEW, forward direction)
  // via ct_lookup_or_create; the entry snapshot is taken after that, so the
  // creation's generation bump is already absorbed.
  ASSERT_NE(kernel.conntrack().lookup_or_create(key, kernel.now_ns()).entry,
            nullptr);
  net::Packet pkt = flow_packet(1);
  rss_hash_cached(pkt);
  FlowCacheRecorder& rec = cache.recorder();
  rec.begin(pkt);
  rec.add_dep(kDepConntrack);
  rec.note_packet_read(0, 42);
  CtReplayOp op;
  op.key = key;
  op.lookup_or_create = true;
  op.expect_found = true;
  op.expect_ct_state = 0;  // NEW
  rec.add_ct_replay(op);
  cache.insert(pkt, 3, 0, kernel, rec, 2, -1, true);

  // Same state: replay observes the same NEW entry, the hit serves (and the
  // replayed lookup refreshes last_seen exactly like a full run would).
  net::Packet probe = flow_packet(1);
  FlowCache::Hit hit;
  EXPECT_TRUE(cache.try_hit(probe, 3, 0, kernel, &hit));

  // Reply traffic promotes NEW -> ESTABLISHED — deliberately without a
  // generation bump (that is the point of replay validation): the replay
  // observes state != cached observation and falls back to a full run.
  net::FlowKey reply;
  reply.src_ip = key.dst_ip;
  reply.dst_ip = key.src_ip;
  reply.proto = key.proto;
  reply.src_port = key.dst_port;
  reply.dst_port = key.src_port;
  auto r = kernel.conntrack().lookup(reply, kernel.now_ns());
  ASSERT_NE(r.entry, nullptr);
  ASSERT_EQ(r.entry->state, kern::CtState::kEstablished);
  net::Packet probe2 = flow_packet(1);
  EXPECT_FALSE(cache.try_hit(probe2, 3, 0, kernel, &hit));
  EXPECT_EQ(cache.stats().replay_mismatch, 1u);
  EXPECT_EQ(cache.live_entries(), 0u);
}

TEST(FlowCache, FdbRefreshReplayKeepsEntryAlive) {
  kern::Kernel kernel{"dut"};
  kernel.add_phys_dev("p0");
  ASSERT_TRUE(kern::run_command(kernel, "ip link add br0 type bridge").ok());
  ASSERT_TRUE(kern::run_command(kernel, "ip link set br0 up").ok());
  ASSERT_TRUE(kern::run_command(kernel, "ip link set p0 up").ok());
  ASSERT_TRUE(kern::run_command(kernel, "ip link set p0 master br0").ok());
  int br_if = kernel.dev_by_name("br0")->ifindex();
  int p0_if = kernel.dev_by_name("p0")->ifindex();
  net::MacAddr smac = net::MacAddr::from_id(0x777);

  FlowCache cache(64);
  net::Packet pkt = flow_packet(1);
  rss_hash_cached(pkt);
  FlowCacheRecorder& rec = cache.recorder();
  rec.begin(pkt);
  rec.add_dep(kDepBridge);
  rec.note_packet_read(0, 14);
  rec.add_fdb_refresh(FdbReplayOp{br_if, smac, 0, p0_if});
  // The recorded run performed this learn itself; the first learn of a new
  // station bumps the bridge generation, and the post-run snapshot absorbs
  // it — only the replayed same-port refreshes must stay bump-free.
  kernel.bridge(br_if)->fdb_learn(smac, 0, p0_if, kernel.now_ns());
  cache.insert(pkt, p0_if, 0, kernel, rec, 2, -1, true);

  // The learn the recorded run performed happens again on every hit, so
  // fast-path traffic refreshes its FDB entry without the interpreter.
  net::Packet probe = flow_packet(1);
  FlowCache::Hit hit;
  ASSERT_TRUE(cache.try_hit(probe, p0_if, 0, kernel, &hit));
  const kern::FdbEntry* fdb = kernel.bridge(br_if)->fdb_lookup(smac, 0);
  ASSERT_NE(fdb, nullptr);
  EXPECT_EQ(fdb->port_ifindex, p0_if);

  // The same-port refresh did not bump the bridge generation — the entry
  // must not self-invalidate.
  net::Packet probe2 = flow_packet(1);
  EXPECT_TRUE(cache.try_hit(probe2, p0_if, 0, kernel, &hit));
  EXPECT_EQ(cache.stats().invalidations, 0u);
}

TEST(FlowCache, SetAssociativityAbsorbsCollisionsThenEvicts) {
  kern::Kernel kernel{"dut"};
  FlowCache cache(FlowCache::kWays);  // one set: every flow collides
  for (std::uint16_t flow = 1; flow <= FlowCache::kWays; ++flow) {
    insert_entry(cache, kernel, flow, 3, 0, 4, 2);
  }
  EXPECT_EQ(cache.live_entries(), FlowCache::kWays);
  EXPECT_EQ(cache.stats().evictions, 0u);
  FlowCache::Hit hit;
  for (std::uint16_t flow = 1; flow <= FlowCache::kWays; ++flow) {
    net::Packet probe = flow_packet(flow);
    EXPECT_TRUE(cache.try_hit(probe, 3, 0, kernel, &hit)) << "flow " << flow;
  }
  // One more distinct flow overflows the set and evicts round-robin.
  insert_entry(cache, kernel, FlowCache::kWays + 1, 3, 0, 4, 2);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.live_entries(), FlowCache::kWays);
}

TEST(FlowCacheRss, EnginePathAndSimPathHashesAgree) {
  // Engine path: Engine::inject caches the Toeplitz hash before queue
  // steering. Sim path: FlowCache::try_hit caches it on first probe. Both go
  // through rss_hash_cached, so the stashed metadata must agree with a
  // fresh stateless computation and steer to the same queue.
  net::Packet engine_pkt = flow_packet(3);
  net::Packet sim_pkt = flow_packet(3);
  std::uint32_t engine_hash = rss_hash_cached(engine_pkt);

  kern::Kernel kernel{"dut"};
  FlowCache cache(16);
  FlowCache::Hit hit;
  cache.try_hit(sim_pkt, 1, 0, kernel, &hit);  // miss; stashes the hash
  ASSERT_TRUE(sim_pkt.rss_hash_valid);
  EXPECT_EQ(sim_pkt.rss_hash, engine_hash);
  EXPECT_EQ(rss_hash_of(sim_pkt), engine_hash);

  RssClassifier rss(4);
  EXPECT_EQ(rss.queue_for_hash(engine_hash), rss.queue_for(sim_pkt));
}

TEST(FlowCacheIntegration, SecondPacketHitsAndCostsLess) {
  sim::ScenarioConfig cfg;
  cfg.prefixes = 4;
  cfg.accel = sim::Accel::kLinuxFpXdp;
  cfg.flow_cache = true;
  sim::LinuxTestbed dut(cfg);

  auto out1 = dut.process(dut.forward_packet(1, 5));
  auto out2 = dut.process(dut.forward_packet(1, 5));
  EXPECT_TRUE(out1.forwarded);
  EXPECT_TRUE(out2.forwarded);
  EXPECT_LT(out2.cycles, out1.cycles);

  engine::FlowCacheStats fs =
      dut.controller()->deployer().flow_cache_stats();
  EXPECT_EQ(fs.hits, 1u);
  EXPECT_GE(fs.misses, 1u);
}

TEST(FlowCacheIntegration, RedeployBumpsEpochAndFlushes) {
  sim::ScenarioConfig cfg;
  cfg.prefixes = 4;
  cfg.accel = sim::Accel::kLinuxFpXdp;
  cfg.flow_cache = true;
  sim::LinuxTestbed dut(cfg);

  ebpf::Attachment* att = dut.controller()->deployer().attachment(
      "eth0", ebpf::HookType::kXdp);
  ASSERT_NE(att, nullptr);
  std::uint64_t epoch0 = att->flow_epoch();

  (void)dut.process(dut.forward_packet(1, 5));
  (void)dut.process(dut.forward_packet(1, 5));
  ASSERT_EQ(dut.controller()->deployer().flow_cache_stats().hits, 1u);

  // Config change -> resynthesis -> atomic swap: the epoch must advance and
  // the cached verdict from the old program must not serve.
  dut.run("ip route add 10.210.0.0/24 via 10.10.2.2 dev eth1");
  EXPECT_GT(att->flow_epoch(), epoch0);
  (void)dut.process(dut.forward_packet(1, 5));
  engine::FlowCacheStats fs =
      dut.controller()->deployer().flow_cache_stats();
  EXPECT_EQ(fs.hits, 1u);  // no new hit: the entry was epoch-flushed
  EXPECT_GE(fs.invalidations + fs.misses, 2u);
}

TEST(FlowCacheConcurrency, WorkersShareMetricsWithoutRaces) {
  sim::ScenarioConfig cfg;
  cfg.prefixes = 8;
  cfg.accel = sim::Accel::kLinuxFpXdp;
  cfg.flow_cache = true;
  sim::LinuxTestbed dut(cfg);
  dut.kernel().set_metrics_enabled(true);

  ebpf::Attachment* att = dut.controller()->deployer().attachment(
      "eth0", ebpf::HookType::kXdp);
  ASSERT_NE(att, nullptr);
  constexpr unsigned kCpus = 4;
  constexpr int kPerCpu = 500;
  att->prepare_cpus(kCpus);

  // Each worker drives its private per-CPU cache; the only shared flow-cache
  // state is the mirrored flowcache.* counters (relaxed atomics) and the
  // generation vector loads. TSan (tools/ci.sh) proves that.
  std::vector<std::thread> workers;
  for (unsigned cpu = 0; cpu < kCpus; ++cpu) {
    workers.emplace_back([&, cpu] {
      for (int i = 0; i < kPerCpu; ++i) {
        net::Packet pkt = dut.forward_packet(
            i % 8, static_cast<std::uint16_t>(cpu * 64 + i % 16));
        att->run_on_cpu(pkt, dut.ingress_ifindex(), cpu);
      }
    });
  }
  for (std::thread& t : workers) t.join();

  engine::FlowCacheStats fs = att->flow_cache_stats();
  EXPECT_EQ(fs.hits + fs.misses, static_cast<std::uint64_t>(kCpus) * kPerCpu);
  EXPECT_GT(fs.hits, 0u);
  // The registry mirror agrees with the summed per-CPU stats.
  EXPECT_EQ(dut.kernel().metrics().value("flowcache.hits"), fs.hits);
  EXPECT_EQ(dut.kernel().metrics().value("flowcache.misses"), fs.misses);
}

}  // namespace
}  // namespace linuxfp::engine
