// Worker-watchdog and bounded-backpressure tests: a stuck worker must never
// wedge the producer (spin-bounded waits, counted stalls), must be detected
// by the slow-path thread's heartbeat sampling, and must be routed around by
// an atomic RETA re-steer — while a forced (false-positive) trip stays safe:
// traffic keeps flowing through the surviving queues. Also the end-to-end
// guard-over-engine run: deferred expectation cookies ride the MPSC handoff
// and resolve on the slow-path thread across worker partitions.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/controller.h"
#include "core/guard.h"
#include "engine/engine.h"
#include "sim/testbed.h"
#include "tests/kernel/test_topo.h"
#include "util/fault.h"

namespace linuxfp::engine {
namespace {

using linuxfp::testing::RouterDut;

// Real-time wait for a live engine predicate (watchdog detection latency is
// wall-clock here, not sim-clock).
template <typename Pred>
bool wait_for(Pred pred, int timeout_ms = 5000) {
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

TEST(EngineWatchdog, BackpressureWaitIsBoundedAndCounted) {
  RouterDut dut;
  dut.add_prefixes(4);
  std::atomic<bool> block{true};
  EngineConfig cfg;
  cfg.queues = 1;
  cfg.queue_depth = 8;
  cfg.backpressure = true;
  cfg.backpressure_spin_limit = 200;  // tiny budget: force bounded give-up
  cfg.worker_poll_hook = [&block](unsigned) {
    while (block.load(std::memory_order_acquire)) std::this_thread::yield();
  };
  Engine eng(dut.kernel, dut.eth0_ifindex(), cfg);
  eng.start();
  constexpr std::uint64_t kPackets = 20;
  for (std::uint64_t i = 0; i < kPackets; ++i) {
    eng.inject(dut.packet_to_prefix(0, 7));  // one flow, one queue
  }
  // The worker never polled: the ring filled, every further inject waited its
  // bounded budget and then dropped. The producer provably got here.
  block.store(false, std::memory_order_release);
  eng.stop();

  const QueueStats& st = eng.queue_stats(0);
  EXPECT_EQ(st.enqueued, cfg.queue_depth);
  EXPECT_EQ(st.enqueued + st.tail_drops, kPackets);
  EXPECT_EQ(st.backpressure_stalls, st.tail_drops);  // each drop waited first
  EXPECT_GT(st.backpressure_stalls, 0u);
  EXPECT_EQ(st.processed, st.enqueued);  // drained after unblock
  EXPECT_EQ(dut.kernel.metrics().value("engine.queue0.backpressure_stalls"),
            st.backpressure_stalls);
}

TEST(EngineWatchdog, StuckWorkerIsDetectedExcludedAndResteered) {
  RouterDut dut;
  dut.add_prefixes(4);
  std::atomic<bool> block{true};
  EngineConfig cfg;
  cfg.queues = 2;
  cfg.backpressure = true;
  cfg.watchdog = true;
  cfg.watchdog_check_interval = 16;
  cfg.watchdog_stall_checks = 3;
  cfg.worker_poll_hook = [&block](unsigned q) {
    if (q != 0) return;
    while (block.load(std::memory_order_acquire)) std::this_thread::yield();
  };
  Engine eng(dut.kernel, dut.eth0_ifindex(), cfg);

  // A flow that RSS steers to the stuck queue, so it has work waiting.
  std::uint16_t q0_flow = 0;
  for (std::uint16_t f = 0; f < 512; ++f) {
    if (eng.rss().queue_for(dut.packet_to_prefix(0, f)) == 0) {
      q0_flow = f;
      break;
    }
  }
  ASSERT_EQ(eng.rss().queue_for(dut.packet_to_prefix(0, q0_flow)), 0u);

  eng.start();
  constexpr std::uint64_t kStuckPackets = 64;
  for (std::uint64_t i = 0; i < kStuckPackets; ++i) {
    eng.inject(dut.packet_to_prefix(0, q0_flow));
  }
  // Occupancy > 0 with a frozen heartbeat across consecutive samples: the
  // slow-path thread declares queue 0 dead and re-steers the RETA.
  ASSERT_TRUE(wait_for([&eng] { return !eng.healthy(); }))
      << "watchdog never fired";
  EXPECT_TRUE(eng.rss().excluded(0));
  EXPECT_FALSE(eng.rss().excluded(1));
  EXPECT_EQ(eng.watchdog_resteers(), 1u);
  for (unsigned entry : eng.rss().reta()) EXPECT_EQ(entry, 1u);

  // New traffic — including the formerly-stuck flow — now lands on the
  // surviving queue and keeps flowing while worker 0 is still wedged.
  constexpr std::uint64_t kAfter = 200;
  for (std::uint64_t i = 0; i < kAfter; ++i) {
    eng.inject(dut.packet_to_prefix(0, q0_flow));
  }
  block.store(false, std::memory_order_release);
  eng.stop();

  EXPECT_EQ(eng.total_processed(), kStuckPackets + kAfter);
  EXPECT_EQ(eng.total_tail_drops(), 0u);
  EXPECT_GE(eng.queue_stats(1).processed, kAfter);
  EXPECT_EQ(dut.tx_eth1.size(),
            static_cast<std::size_t>(kStuckPackets + kAfter));
  EXPECT_EQ(dut.kernel.metrics().value("engine.watchdog.resteers"), 1u);
}

TEST(EngineWatchdog, RecoveredWorkerIsReincludedAndRetaReconverges) {
  // Half-open recovery (the guard's circuit-breaker close applied to the
  // watchdog): once the stuck worker's heartbeat advances across consecutive
  // samples, the queue is re-included and the RETA re-spreads to uniform —
  // regression for the permanent-skew bug where a recovered queue never got
  // entries back.
  RouterDut dut;
  dut.add_prefixes(4);
  std::atomic<bool> block{true};
  EngineConfig cfg;
  cfg.queues = 2;
  cfg.backpressure = true;
  cfg.watchdog = true;
  cfg.watchdog_check_interval = 16;
  cfg.watchdog_stall_checks = 3;
  cfg.watchdog_recovery = true;
  cfg.watchdog_recover_checks = 2;
  cfg.worker_poll_hook = [&block](unsigned q) {
    if (q != 0) return;
    while (block.load(std::memory_order_acquire)) std::this_thread::yield();
  };
  Engine eng(dut.kernel, dut.eth0_ifindex(), cfg);

  std::uint16_t q0_flow = 0;
  for (std::uint16_t f = 0; f < 512; ++f) {
    if (eng.rss().queue_for(dut.packet_to_prefix(0, f)) == 0) {
      q0_flow = f;
      break;
    }
  }
  ASSERT_EQ(eng.rss().queue_for(dut.packet_to_prefix(0, q0_flow)), 0u);

  eng.start();
  for (std::uint64_t i = 0; i < 64; ++i) {
    eng.inject(dut.packet_to_prefix(0, q0_flow));
  }
  ASSERT_TRUE(wait_for([&eng] { return !eng.healthy(); }))
      << "watchdog never fired";
  ASSERT_TRUE(eng.rss().excluded(0));

  // Unblock the worker: its heartbeat resumes, the half-open probe closes.
  block.store(false, std::memory_order_release);
  ASSERT_TRUE(wait_for([&eng] { return eng.healthy(); }))
      << "recovery never fired";
  EXPECT_FALSE(eng.rss().excluded(0));
  EXPECT_EQ(eng.watchdog_recoveries(), 1u);
  // The table re-converged to uniform — queue 0 owns half again.
  unsigned q0_entries = 0;
  for (unsigned entry : eng.rss().reta()) q0_entries += entry == 0u;
  EXPECT_EQ(q0_entries, static_cast<unsigned>(kRetaSize / 2));

  // Traffic flows over BOTH queues again, losslessly.
  for (std::uint64_t i = 0; i < 400; ++i) {
    eng.inject(dut.packet_to_prefix(0, static_cast<std::uint16_t>(i % 64)));
  }
  eng.stop();
  EXPECT_EQ(eng.total_processed(), 464u);
  EXPECT_EQ(eng.total_tail_drops(), 0u);
  EXPECT_GT(eng.queue_stats(0).processed, 0u);
  EXPECT_GT(eng.queue_stats(1).processed, 0u);
  EXPECT_EQ(dut.kernel.metrics().value("engine.watchdog.recoveries"), 1u);
}

TEST(EngineWatchdog, ForcedFalsePositiveTripIsSafe) {
  // The engine.watchdog fault point forces a stuck verdict on a perfectly
  // healthy worker. The failure mode must be graceful: capacity shrinks to
  // the surviving queues, nothing is lost or wedged.
  util::FaultScope faults(99);
  faults->fail_nth(util::kFaultEngineWatchdog, 1);

  RouterDut dut;
  dut.add_prefixes(4);
  EngineConfig cfg;
  cfg.queues = 2;
  cfg.backpressure = true;
  cfg.watchdog = true;
  cfg.watchdog_check_interval = 16;
  Engine eng(dut.kernel, dut.eth0_ifindex(), cfg);
  eng.start();
  ASSERT_TRUE(wait_for([&eng] { return !eng.healthy(); }))
      << "forced trip never fired";
  EXPECT_TRUE(eng.rss().excluded(0));
  EXPECT_EQ(eng.watchdog_resteers(), 1u);

  constexpr std::uint64_t kPackets = 300;
  for (std::uint64_t i = 0; i < kPackets; ++i) {
    eng.inject(dut.packet_to_prefix(static_cast<int>(i % 4),
                                    static_cast<std::uint16_t>(i % 64)));
  }
  eng.stop();

  EXPECT_EQ(eng.total_processed(), kPackets);
  EXPECT_EQ(eng.total_tail_drops(), 0u);
  // All flows re-steered off the "dead" queue; the survivor carried them.
  EXPECT_EQ(eng.queue_stats(0).processed, 0u);
  EXPECT_EQ(eng.queue_stats(1).processed, kPackets);
  EXPECT_EQ(dut.tx_eth1.size(), static_cast<std::size_t>(kPackets));
}

TEST(EngineWatchdog, GuardComparesAcrossEngineWorkers) {
  // Guard-over-engine integration: expectation cookies recorded on worker
  // CPUs ride pkt.guard_cookie through the MPSC handoff and resolve on the
  // slow-path thread — canary promotes, sampling keeps comparing, and the
  // multi-threaded run stays divergence-free with no stale slots.
  sim::ScenarioConfig cfg;
  cfg.prefixes = 50;
  cfg.accel = sim::Accel::kLinuxFpXdp;
  cfg.guard.enabled = true;
  cfg.guard.canary_packets = 16;
  cfg.guard.sample_every = 4;
  sim::LinuxTestbed bed(cfg);

  EngineConfig ecfg;
  ecfg.queues = 2;
  ecfg.backpressure = true;
  Engine eng(bed.kernel(), bed.ingress_ifindex(), ecfg);
  eng.start();
  constexpr std::uint64_t kPackets = 4000;
  for (std::uint64_t i = 0; i < kPackets; ++i) {
    eng.inject(bed.forward_packet(static_cast<int>(i % 50),
                                  static_cast<std::uint16_t>(i % 256)));
  }
  eng.stop();

  core::GuardUnit* unit =
      bed.controller()->guard()->unit("eth0", ebpf::HookType::kXdp);
  ASSERT_NE(unit, nullptr);
  core::GuardUnitStats st = unit->stats();
  EXPECT_EQ(unit->mode(), core::GuardMode::kActive);
  EXPECT_EQ(st.promotions, 1u);
  EXPECT_GE(st.compares, 16u);
  EXPECT_GT(st.sampled, 0u);
  EXPECT_EQ(st.divergences, 0u);
  EXPECT_EQ(st.stale, 0u);

  // Conservation: lossless run, every routable packet forwarded — by the
  // fast path for unsampled post-promotion flows, by the slow path for the
  // canary/sampled slice — and both slices really ran.
  EXPECT_EQ(eng.total_processed(), kPackets);
  EXPECT_EQ(eng.total_tail_drops(), 0u);
  EXPECT_EQ(bed.kernel().dev_by_name("eth1")->stats().tx_packets, kPackets);
  EXPECT_GT(bed.kernel().counters().fast_path_packets, 0u);
  EXPECT_GT(eng.slow_stats().processed, 0u);
}

}  // namespace
}  // namespace linuxfp::engine
