// TX engine + GRO (ISSUE 9, DESIGN.md §16): batched transmit rings with
// xmit_more doorbell coalescing, slow-path GRO with TX resegmentation, and
// the invariants that make both invisible to the wire:
//  * GRO byte-identity: coalescing + gso_segment restores the exact original
//    frames, for in-order, reordered and interleaved streams; fragments and
//    non-TCP traffic bypass; per-flow order is preserved end to end.
//  * DevStats symmetry: fast-path kTx/redirect egress and slow-path egress
//    account tx_packets/tx_bytes identically (both flow through dev_xmit).
//  * Closed-loop equivalence: TX batching + GRO on vs off changes no
//    counter and no per-flow output byte stream — interp and jit, 1q and 8q.
//  * Redirect audit: a verdict naming an attachment-less device transmits
//    through the TX ring; one naming a ghost ifindex counts drop.no_device
//    with a trace record — never silent.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "core/status.h"
#include "ebpf/builder.h"
#include "ebpf/kernel_helpers.h"
#include "ebpf/loader.h"
#include "engine/engine.h"
#include "engine/gro.h"
#include "engine/tx.h"
#include "net/headers.h"
#include "sim/testbed.h"
#include "tests/kernel/test_topo.h"
#include "util/metrics.h"

namespace linuxfp::engine {
namespace {

using linuxfp::testing::RouterDut;

std::string bytes_of(const net::Packet& p) {
  return std::string(reinterpret_cast<const char*>(p.data()), p.size());
}

// One TCP segment of a synthetic stream; seq/ip_id are caller-controlled so
// tests can build exact in-order / out-of-order shapes.
net::Packet tcp_seg(std::uint16_t flow, std::uint32_t seq, std::uint16_t ip_id,
                    std::size_t frame_len = 128, std::uint8_t ttl = 64,
                    std::uint8_t flags = 0x18) {
  net::FlowKey f;
  f.src_ip = net::Ipv4Addr::from_octets(192, 168, 1, 1);
  f.dst_ip = net::Ipv4Addr::from_octets(192, 168, 2, 2);
  f.proto = net::kIpProtoTcp;
  f.src_port = static_cast<std::uint16_t>(5000 + flow);
  f.dst_port = 80;
  net::Packet p =
      net::build_tcp_packet(net::MacAddr::from_id(0xA),
                            net::MacAddr::from_id(0xB), f, flags, frame_len,
                            ttl);
  net::Ipv4View ip(p.data() + net::kEthHdrLen);
  ip.set_id(ip_id);
  ip.update_checksum();
  net::TcpView tcp(p.data() + net::kEthHdrLen + net::kIpv4HdrLen);
  tcp.set_seq(seq);
  return p;
}

net::Packet udp_pkt(std::uint16_t flow, std::size_t frame_len = 128) {
  net::FlowKey f;
  f.src_ip = net::Ipv4Addr::from_octets(192, 168, 1, 1);
  f.dst_ip = net::Ipv4Addr::from_octets(192, 168, 2, 2);
  f.proto = net::kIpProtoUdp;
  f.src_port = static_cast<std::uint16_t>(5000 + flow);
  f.dst_port = 53;
  return net::build_udp_packet(net::MacAddr::from_id(0xA),
                               net::MacAddr::from_id(0xB), f, frame_len);
}

constexpr std::uint32_t kSegPayload = 128 - 54;  // tcp_seg default frame

// Expands GRO output back to wire frames: super-packets resegment through
// net::gso_segment, everything else passes through untouched.
std::vector<net::Packet> expand(std::vector<net::Packet>&& out) {
  std::vector<net::Packet> wire;
  for (net::Packet& p : out) {
    if (p.gro_segs.size() > 1) {
      for (net::Packet& seg : net::gso_segment(p)) {
        wire.push_back(std::move(seg));
      }
    } else {
      wire.push_back(std::move(p));
    }
  }
  return wire;
}

// --- GRO unit + property tests (ISSUE 9 satellite 2) ------------------------

TEST(GroEngineTest, CoalescesInSequenceTcpRun) {
  GroEngine gro(GroConfig{.enabled = true});
  std::vector<net::Packet> out;
  std::vector<std::string> originals;
  for (std::uint32_t k = 0; k < 4; ++k) {
    net::Packet seg = tcp_seg(0, 1 + k * kSegPayload,
                              static_cast<std::uint16_t>(k));
    originals.push_back(bytes_of(seg));
    gro.fold(std::move(seg), out);
  }
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(gro.held(), 1u);
  EXPECT_EQ(gro.stats().folds, 4u);
  EXPECT_EQ(gro.stats().coalesced, 3u);
  EXPECT_EQ(gro.stats().bypassed, 0u);

  gro.flush_all(out);
  ASSERT_EQ(out.size(), 1u);
  ASSERT_EQ(out[0].gro_segs.size(), 4u);
  EXPECT_EQ(gro.stats().superpackets, 1u);
  EXPECT_EQ(gro.stats().flush_idle, 1u);
  EXPECT_EQ(out[0].size(), 128u + 3u * kSegPayload);
  net::Ipv4View ip(out[0].data() + net::kEthHdrLen);
  EXPECT_EQ(ip.total_len(), out[0].size() - net::kEthHdrLen);
  EXPECT_TRUE(ip.checksum_valid());

  // Resegmentation restores the original wire bytes exactly.
  std::vector<net::Packet> segs = net::gso_segment(out[0]);
  ASSERT_EQ(segs.size(), 4u);
  for (std::size_t i = 0; i < segs.size(); ++i) {
    EXPECT_EQ(bytes_of(segs[i]), originals[i]) << "segment " << i;
  }
}

TEST(GroEngineTest, OutOfOrderSegmentFlushesRun) {
  GroEngine gro(GroConfig{.enabled = true});
  std::vector<net::Packet> out;
  net::Packet first = tcp_seg(0, 1, 0);
  const std::string first_bytes = bytes_of(first);
  gro.fold(std::move(first), out);
  // Skip a segment: seq jumps past next_seq, so the held run flushes and the
  // out-of-order segment starts a fresh run (kernel GRO behaviour).
  gro.fold(tcp_seg(0, 1 + 2 * kSegPayload, 2), out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(bytes_of(out[0]), first_bytes);  // single-seg run, untouched
  EXPECT_TRUE(out[0].gro_segs.empty());
  EXPECT_EQ(gro.stats().flush_ooo, 1u);
  EXPECT_EQ(gro.stats().superpackets, 0u);
  EXPECT_EQ(gro.held(), 1u);
}

TEST(GroEngineTest, HeaderDeltaFlushesRun) {
  GroEngine gro(GroConfig{.enabled = true});
  std::vector<net::Packet> out;
  gro.fold(tcp_seg(0, 1, 0), out);
  // In-sequence but a different TTL: headers no longer identical modulo the
  // per-segment restore fields, so the run must not absorb it.
  gro.fold(tcp_seg(0, 1 + kSegPayload, 1, 128, /*ttl=*/63), out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(gro.stats().flush_mismatch, 1u);
  EXPECT_EQ(gro.held(), 1u);  // the new-TTL segment started its own run
}

TEST(GroEngineTest, MaxSegsCapFlushes) {
  GroEngine gro(GroConfig{.enabled = true, .max_segs = 3});
  std::vector<net::Packet> out;
  for (std::uint32_t k = 0; k < 3; ++k) {
    gro.fold(tcp_seg(0, 1 + k * kSegPayload, static_cast<std::uint16_t>(k)),
             out);
  }
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].gro_segs.size(), 3u);
  EXPECT_EQ(gro.stats().flush_max_segs, 1u);
  EXPECT_EQ(gro.stats().superpackets, 1u);
  EXPECT_EQ(gro.held(), 0u);
}

TEST(GroEngineTest, SameFlowBypasserIsOrderBarrier) {
  GroEngine gro(GroConfig{.enabled = true});
  std::vector<net::Packet> out;
  gro.fold(tcp_seg(0, 1, 0), out);
  gro.fold(tcp_seg(0, 1 + kSegPayload, 1), out);
  ASSERT_TRUE(out.empty());
  // A SYN of the same flow cannot coalesce — and must not overtake the held
  // run: the run flushes first, then the SYN is emitted.
  net::Packet syn = tcp_seg(0, 9000, 7, 128, 64, /*flags=*/0x02);
  const std::string syn_bytes = bytes_of(syn);
  gro.fold(std::move(syn), out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].gro_segs.size(), 2u);  // the flushed run, in front
  EXPECT_EQ(bytes_of(out[1]), syn_bytes);
  EXPECT_EQ(gro.stats().flush_mismatch, 1u);
  EXPECT_EQ(gro.stats().bypassed, 1u);
}

TEST(GroEngineTest, FragmentsAndNonTcpBypass) {
  GroEngine gro(GroConfig{.enabled = true});
  std::vector<net::Packet> out;
  gro.fold(tcp_seg(0, 1, 0), out);
  ASSERT_TRUE(out.empty());

  // An offset fragment has no L4 header: no flow key, no barrier — it passes
  // straight through and the held run stays.
  net::Packet off_frag = tcp_seg(0, 1 + kSegPayload, 1);
  {
    net::Ipv4View ip(off_frag.data() + net::kEthHdrLen);
    ip.set_frag_field(10);  // offset 10, no MF
    ip.update_checksum();
  }
  gro.fold(std::move(off_frag), out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(gro.held(), 1u);
  EXPECT_EQ(gro.stats().bypassed, 1u);
  out.clear();

  // A first fragment (MF, offset 0) has the L4 header, so it forms a key and
  // acts as an order barrier for its flow — but never coalesces.
  net::Packet first_frag = tcp_seg(0, 1 + kSegPayload, 2);
  {
    net::Ipv4View ip(first_frag.data() + net::kEthHdrLen);
    ip.set_frag_field(0x2000);  // MF set, offset 0
    ip.update_checksum();
  }
  gro.fold(std::move(first_frag), out);
  ASSERT_EQ(out.size(), 2u);  // flushed run first, then the fragment
  EXPECT_EQ(gro.held(), 0u);
  EXPECT_EQ(gro.stats().flush_mismatch, 1u);

  // Plain UDP bypasses unless GroConfig::udp opts in.
  out.clear();
  gro.fold(udp_pkt(0), out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(gro.held(), 0u);
}

TEST(GroEngineTest, UdpFoldingIsOptIn) {
  GroEngine gro(GroConfig{.enabled = true, .udp = true});
  std::vector<net::Packet> out;
  std::vector<std::string> originals;
  for (int k = 0; k < 3; ++k) {
    net::Packet p = udp_pkt(0);
    net::Ipv4View ip(p.data() + net::kEthHdrLen);
    ip.set_id(static_cast<std::uint16_t>(k));  // distinct per-seg ip ids
    ip.update_checksum();
    originals.push_back(bytes_of(p));
    gro.fold(std::move(p), out);
  }
  EXPECT_TRUE(out.empty());
  gro.flush_all(out);
  ASSERT_EQ(out.size(), 1u);
  ASSERT_EQ(out[0].gro_segs.size(), 3u);
  net::UdpView udp(out[0].data() + net::kEthHdrLen + net::kIpv4HdrLen);
  EXPECT_EQ(udp.length(), out[0].size() - net::kEthHdrLen - net::kIpv4HdrLen);
  std::vector<net::Packet> segs = net::gso_segment(out[0]);
  ASSERT_EQ(segs.size(), 3u);
  for (std::size_t i = 0; i < segs.size(); ++i) {
    EXPECT_EQ(bytes_of(segs[i]), originals[i]) << "datagram " << i;
  }
}

TEST(GroEngineTest, CapacityEvictsOldestRun) {
  GroEngine gro(GroConfig{.enabled = true});
  std::vector<net::Packet> out;
  for (std::uint16_t flow = 0; flow < 9; ++flow) {
    gro.fold(tcp_seg(flow, 1, flow), out);
  }
  // The 9th distinct flow evicted flow 0's run (kMaxHeld = 8).
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(gro.held(), 8u);
  EXPECT_EQ(gro.stats().flush_capacity, 1u);
  net::TcpView tcp(out[0].data() + net::kEthHdrLen + net::kIpv4HdrLen);
  EXPECT_EQ(tcp.src_port(), 5000u);  // flow 0 went first
}

TEST(GroEngineTest, AgedRunFlushesOnTimeout) {
  GroEngine gro(GroConfig{.enabled = true, .timeout_folds = 3});
  std::vector<net::Packet> out;
  gro.fold(tcp_seg(0, 1, 0), out);  // fold #1 starts the run
  gro.fold(udp_pkt(1), out);        // #2
  gro.fold(udp_pkt(2), out);        // #3
  EXPECT_EQ(gro.held(), 1u);
  out.clear();
  gro.fold(udp_pkt(3), out);  // #4: run age = 3 folds -> timeout
  ASSERT_EQ(out.size(), 2u);  // the aged run, then the UDP packet
  EXPECT_EQ(gro.stats().flush_timeout, 1u);
  EXPECT_EQ(gro.held(), 0u);
}

// The property at the heart of satellite 2: for an arbitrary interleaving of
// in-order TCP streams (with bypassing UDP sprinkled in), folding +
// resegmentation is byte-identical to no GRO at all, and per-flow order is
// preserved.
TEST(GroEngineTest, RandomInterleavingIsByteIdenticalAfterResegmentation) {
  constexpr int kFlows = 6;
  constexpr int kSegsPerFlow = 40;
  GroEngine gro(GroConfig{.enabled = true, .max_segs = 5});

  // Deterministic LCG interleaving: each step advances one random flow's
  // stream by one in-order segment.
  std::uint64_t rng = 0x5eed;
  auto next = [&rng](std::uint64_t bound) {
    rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
    return (rng >> 33) % bound;
  };

  std::map<std::uint16_t, std::vector<std::string>> in_by_flow;
  std::vector<net::Packet> out;
  int sent[kFlows] = {};
  int total = 0;
  int steps = 0;
  while (total < kFlows * kSegsPerFlow) {
    auto flow = static_cast<std::uint16_t>(next(kFlows));
    if (sent[flow] >= kSegsPerFlow) continue;
    if (++steps % 11 == 0) {
      // A bypasser mid-stream: flushes its flow's held run (order barrier)
      // but must not corrupt any byte.
      net::Packet u = udp_pkt(flow);
      in_by_flow[static_cast<std::uint16_t>(1000 + flow)].push_back(
          bytes_of(u));
      gro.fold(std::move(u), out);
      continue;
    }
    const auto k = static_cast<std::uint32_t>(sent[flow]++);
    ++total;
    net::Packet seg = tcp_seg(flow, 1 + k * kSegPayload,
                              static_cast<std::uint16_t>(k));
    in_by_flow[flow].push_back(bytes_of(seg));
    gro.fold(std::move(seg), out);
  }
  gro.flush_all(out);
  EXPECT_GT(gro.stats().superpackets, 0u);
  EXPECT_GT(gro.stats().coalesced, 0u);

  std::vector<net::Packet> wire = expand(std::move(out));
  std::map<std::uint16_t, std::vector<std::string>> out_by_flow;
  for (const net::Packet& p : wire) {
    const std::uint8_t* b = p.data();
    net::Ipv4View ip(const_cast<std::uint8_t*>(b) + net::kEthHdrLen);
    const std::uint16_t sport =
        net::load_be16(b + net::kEthHdrLen + net::kIpv4HdrLen);
    const bool tcp = ip.protocol() == net::kIpProtoTcp;
    const auto flow = static_cast<std::uint16_t>(
        tcp ? sport - 5000 : 1000 + (sport - 5000));
    out_by_flow[flow].push_back(bytes_of(p));
  }
  EXPECT_EQ(out_by_flow, in_by_flow);
}

// --- TxEngine unit tests ----------------------------------------------------

TEST(TxEngineTest, DoorbellCoalescingChargesOncePerBurst) {
  RouterDut dut;
  RssClassifier rss(1);
  TxEngine tx(dut.kernel, rss, TxConfig{.burst = 4, .ring_depth = 64}, 1);
  dut.kernel.set_tx_batcher(&tx);

  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(tx.try_push(0, TxDesc{dut.eth1_ifindex(),
                                      dut.packet_to_prefix(0, 0)}));
  }
  // Drain rounds pop at most `burst` descriptors: 4 + 4 + 2.
  EXPECT_EQ(tx.drain(0), 4u);
  EXPECT_EQ(tx.drain(0), 4u);
  EXPECT_EQ(tx.drain(0), 2u);
  EXPECT_TRUE(tx.all_empty());

  // One descriptor write per packet; the doorbell rings at the burst
  // watermark (x2) and once more when the final short round closes.
  EXPECT_EQ(tx.descriptors(), 10u);
  EXPECT_EQ(tx.doorbells(), 3u);
  const TxQueueStats& st = tx.queue_stats(0);
  EXPECT_EQ(st.transmitted, 10u);
  EXPECT_EQ(st.tx_bytes, 10u * 64u);
  EXPECT_EQ(st.bursts, 3u);
  EXPECT_EQ(st.full_bursts, 2u);
  EXPECT_EQ(st.bad_redirect, 0u);
  EXPECT_GT(st.cycles, 0u);
  // DevStats credited by dev_xmit, frames delivered to the device.
  EXPECT_EQ(dut.kernel.dev_by_name("eth1")->stats().tx_packets, 10u);
  EXPECT_EQ(dut.tx_eth1.size(), 10u);
  dut.kernel.set_tx_batcher(nullptr);
}

TEST(TxEngineTest, BurstOfOneRingsEveryPacket) {
  RouterDut dut;
  RssClassifier rss(1);
  TxEngine tx(dut.kernel, rss, TxConfig{.burst = 1, .ring_depth = 64}, 1);
  dut.kernel.set_tx_batcher(&tx);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(tx.try_push(0, TxDesc{dut.eth1_ifindex(),
                                      dut.packet_to_prefix(0, 0)}));
  }
  while (tx.drain(0) > 0) {
  }
  EXPECT_EQ(tx.descriptors(), 10u);
  EXPECT_EQ(tx.doorbells(), 10u);  // the pre-xmit_more driver
  dut.kernel.set_tx_batcher(nullptr);
}

TEST(TxEngineTest, GhostIfindexCountsNoDeviceWithTraceRecord) {
  RouterDut dut;
  util::TraceRing ring(8);
  dut.kernel.set_trace_ring(&ring);
  RssClassifier rss(1);
  TxEngine tx(dut.kernel, rss, TxConfig{.burst = 4, .ring_depth = 64}, 1);
  dut.kernel.set_tx_batcher(&tx);

  ASSERT_TRUE(tx.try_push(0, TxDesc{777, dut.packet_to_prefix(0, 0)}));
  EXPECT_EQ(tx.drain(0), 1u);

  EXPECT_EQ(tx.queue_stats(0).bad_redirect, 1u);
  EXPECT_EQ(tx.queue_stats(0).transmitted, 0u);
  auto it = dut.kernel.counters().drops.find(kern::Drop::kNoDevice);
  ASSERT_NE(it, dut.kernel.counters().drops.end());
  EXPECT_EQ(it->second, 1u);
  EXPECT_EQ(dut.kernel.metrics().value("drop.no_device"), 1u);

  // Never silent: the TX drain opened a pwru-style record whose verdict is
  // the drop reason.
  ASSERT_EQ(ring.size(), 1u);
  const util::PacketTrace& t = ring.latest();
  EXPECT_EQ(t.verdict, "no_device");
  EXPECT_TRUE(t.fast_path);
  bool saw_dequeue = false, saw_verdict = false;
  for (const auto& ev : t.events) {
    if (std::strcmp(ev.layer, "tx") == 0 &&
        std::strcmp(ev.stage, "ring_dequeue") == 0) {
      saw_dequeue = true;
    }
    if (std::strcmp(ev.layer, "verdict") == 0 &&
        std::strcmp(ev.stage, "no_device") == 0) {
      saw_verdict = true;
    }
  }
  EXPECT_TRUE(saw_dequeue);
  EXPECT_TRUE(saw_verdict);
  dut.kernel.set_tx_batcher(nullptr);
  dut.kernel.set_trace_ring(nullptr);
}

// --- DevStats symmetry (ISSUE 9 satellite 1) --------------------------------

TEST(TxDevStatsTest, FastAndSlowPathEgressAccountIdentically) {
  struct RunOut {
    std::uint64_t tx_packets = 0;
    std::uint64_t tx_bytes = 0;
    std::vector<std::string> frames;
  };
  auto run = [](sim::Accel accel) {
    sim::ScenarioConfig cfg;
    cfg.prefixes = 8;
    cfg.accel = accel;
    sim::LinuxTestbed bed(cfg);
    RunOut out;
    bed.kernel().dev_by_name("eth1")->set_phys_tx(
        [&out](net::Packet&& p) { out.frames.push_back(bytes_of(p)); });
    Engine eng(bed.kernel(), bed.ingress_ifindex(), bed.engine_config(4));
    eng.start();
    for (std::uint64_t i = 0; i < 1200; ++i) {
      eng.inject(bed.forward_packet(static_cast<int>(i % 8),
                                    static_cast<std::uint16_t>(i % 32), 96));
    }
    eng.stop();
    const kern::DevStats& st = bed.kernel().dev_by_name("eth1")->stats();
    out.tx_packets = st.tx_packets;
    out.tx_bytes = st.tx_bytes;
    return out;
  };

  RunOut fast = run(sim::Accel::kLinuxFpXdp);  // egress via the TX rings
  RunOut slow = run(sim::Accel::kNone);        // egress inline on slow path
  EXPECT_EQ(fast.tx_packets, 1200u);
  EXPECT_EQ(fast.tx_packets, slow.tx_packets);
  EXPECT_EQ(fast.tx_bytes, slow.tx_bytes);
  EXPECT_EQ(fast.tx_bytes, 1200u * 96u);
  // Same frames on the wire too (cross-flow order may differ across runs).
  std::sort(fast.frames.begin(), fast.frames.end());
  std::sort(slow.frames.begin(), slow.frames.end());
  EXPECT_EQ(fast.frames, slow.frames);
}

// --- Redirect audit through the full engine (ISSUE 9 satellite 6) -----------

// Builds and attaches an XDP program that redirects every packet to
// `target_ifindex`. Returns the attachment (must outlive the engine run).
std::unique_ptr<ebpf::Attachment> attach_redirect_all(
    RouterDut& dut, ebpf::HelperRegistry& helpers, int target_ifindex) {
  auto att = std::make_unique<ebpf::Attachment>("redir", ebpf::HookType::kXdp,
                                                dut.kernel, helpers);
  ebpf::ProgramBuilder b("redir_all", ebpf::HookType::kXdp);
  b.mov(ebpf::kR1, target_ifindex);
  b.call(ebpf::kHelperRedirect);
  b.exit();  // r0 = kActRedirect from the helper
  auto id = att->load(b.build().value());
  EXPECT_TRUE(id.ok()) << (id.ok() ? "" : id.error().message);
  EXPECT_TRUE(att->set_entry(id.value()).ok());
  EXPECT_TRUE(
      ebpf::attach_to_device(dut.kernel, "eth0", ebpf::HookType::kXdp,
                             att.get())
          .ok());
  return att;
}

TEST(TxRedirectTest, RedirectToAttachmentlessDeviceReachesTxRing) {
  RouterDut dut;
  ebpf::HelperRegistry helpers;
  ebpf::register_all_helpers(helpers, dut.kernel.cost());
  // eth1 has no XDP attachment of its own — the redirect must still land.
  auto att = attach_redirect_all(dut, helpers, dut.eth1_ifindex());

  EngineConfig cfg;
  cfg.queues = 2;
  cfg.backpressure = true;
  Engine eng(dut.kernel, dut.eth0_ifindex(), cfg);
  eng.start();
  constexpr std::uint64_t kPackets = 300;
  for (std::uint64_t i = 0; i < kPackets; ++i) {
    eng.inject(dut.packet_to_prefix(static_cast<int>(i % 4),
                                    static_cast<std::uint16_t>(i % 64)));
  }
  eng.stop();

  std::uint64_t redirects = 0, tx_enq = 0;
  for (unsigned q = 0; q < cfg.queues; ++q) {
    redirects += eng.queue_stats(q).xdp_redirect;
    tx_enq += eng.queue_stats(q).tx_enqueued;
  }
  EXPECT_EQ(redirects, kPackets);
  EXPECT_EQ(tx_enq, kPackets);
  std::uint64_t transmitted = 0, bad = 0;
  for (unsigned q = 0; q < cfg.queues; ++q) {
    transmitted += eng.tx().queue_stats(q).transmitted;
    bad += eng.tx().queue_stats(q).bad_redirect;
  }
  EXPECT_EQ(transmitted, kPackets);
  EXPECT_EQ(bad, 0u);
  EXPECT_EQ(dut.tx_eth1.size(), kPackets);
  EXPECT_EQ(dut.kernel.dev_by_name("eth1")->stats().tx_packets, kPackets);
  EXPECT_EQ(dut.kernel.metrics().value("engine.tx.transmitted"), kPackets);
}

TEST(TxRedirectTest, RedirectToGhostIfindexIsAuditedNeverSilent) {
  RouterDut dut;
  util::TraceRing ring(4);
  dut.kernel.set_trace_ring(&ring);
  ebpf::HelperRegistry helpers;
  ebpf::register_all_helpers(helpers, dut.kernel.cost());
  auto att = attach_redirect_all(dut, helpers, /*target_ifindex=*/999);

  EngineConfig cfg;
  cfg.queues = 2;
  cfg.backpressure = true;
  Engine eng(dut.kernel, dut.eth0_ifindex(), cfg);
  eng.start();
  constexpr std::uint64_t kPackets = 64;
  for (std::uint64_t i = 0; i < kPackets; ++i) {
    eng.inject(dut.packet_to_prefix(static_cast<int>(i % 4),
                                    static_cast<std::uint16_t>(i % 16)));
  }
  eng.stop();

  auto it = dut.kernel.counters().drops.find(kern::Drop::kNoDevice);
  ASSERT_NE(it, dut.kernel.counters().drops.end());
  EXPECT_EQ(it->second, kPackets);
  EXPECT_EQ(dut.kernel.metrics().value("drop.no_device"), kPackets);
  std::uint64_t bad = 0;
  for (unsigned q = 0; q < cfg.queues; ++q) {
    bad += eng.tx().queue_stats(q).bad_redirect;
  }
  EXPECT_EQ(bad, kPackets);
  EXPECT_EQ(dut.kernel.metrics().value("engine.tx.bad_redirect"), kPackets);
  EXPECT_EQ(dut.tx_eth1.size(), 0u);
  // Every drained descriptor left a trace record; the surviving ones name
  // the drop.
  EXPECT_EQ(ring.packets_traced(), kPackets);
  ASSERT_GT(ring.size(), 0u);
  EXPECT_EQ(ring.latest().verdict, "no_device");
  dut.kernel.set_trace_ring(nullptr);
}

// --- Observability: status document, Prometheus, packet traces --------------

TEST(TxGroObservabilityTest, StatusJsonExposesTxAndGroSections) {
  sim::ScenarioConfig cfg;
  cfg.prefixes = 4;
  cfg.accel = sim::Accel::kLinuxFpXdp;
  cfg.gro.enabled = true;
  cfg.tx.burst = 8;
  sim::LinuxTestbed bed(cfg);

  Engine eng(bed.kernel(), bed.ingress_ifindex(), bed.engine_config(2));
  eng.start();
  // Routable UDP exercises the fast path + TX rings; unroutable TCP punts to
  // the slow path where GRO sees it.
  constexpr std::uint32_t kTcpPayload = 128 - 54;
  for (std::uint64_t i = 0; i < 400; ++i) {
    eng.inject(bed.forward_packet(static_cast<int>(i % 4),
                                  static_cast<std::uint16_t>(i % 32), 64));
  }
  net::FlowKey punt;
  punt.src_ip = net::Ipv4Addr::parse("10.10.1.2").value();
  punt.dst_ip = net::Ipv4Addr::parse("10.250.0.9").value();
  punt.proto = net::kIpProtoTcp;
  punt.src_port = 2000;
  punt.dst_port = 80;
  for (std::uint32_t k = 0; k < 64; ++k) {
    net::Packet seg = net::build_tcp_packet(
        net::MacAddr::from_id(0x501), bed.kernel().dev_by_name("eth0")->mac(),
        punt, 0x18, 128);
    net::Ipv4View ip(seg.data() + net::kEthHdrLen);
    ip.set_id(static_cast<std::uint16_t>(k));
    ip.update_checksum();
    net::TcpView tcp(seg.data() + net::kEthHdrLen + net::kIpv4HdrLen);
    tcp.set_seq(1 + k * kTcpPayload);
    eng.inject(std::move(seg));
  }
  eng.stop();

  util::Json status = core::status_json(*bed.controller());
  ASSERT_TRUE(status.object_items().contains("engine"));
  const util::Json& engine = status.at("engine");
  ASSERT_TRUE(engine.object_items().contains("tx"));
  const util::Json& tx = engine.at("tx");
  EXPECT_GE(tx.at("descriptors").as_int(), 400);
  EXPECT_GT(tx.at("transmitted").as_int(), 0);
  EXPECT_GT(tx.at("doorbells").as_int(), 0);
  // Batched: strictly fewer doorbells than descriptors at burst 8.
  EXPECT_LT(tx.at("doorbells").as_int(), tx.at("descriptors").as_int());
  EXPECT_EQ(tx.at("bad_redirect").as_int(), 0);

  ASSERT_TRUE(engine.object_items().contains("gro"));
  const util::Json& gro = engine.at("gro");
  EXPECT_EQ(gro.at("folds").as_int(), 64);
  EXPECT_GE(gro.at("superpackets").as_int(), 0);

  std::string prom = core::prometheus_status(*bed.controller());
  EXPECT_NE(prom.find("engine_tx_descriptors"), std::string::npos);
  EXPECT_NE(prom.find("engine_tx_doorbells"), std::string::npos);
  EXPECT_NE(prom.find("engine_gro_folds"), std::string::npos);
}

TEST(TxGroObservabilityTest, SuperpacketTraceShowsGroAndResegmentation) {
  sim::ScenarioConfig cfg;
  cfg.prefixes = 4;
  cfg.accel = sim::Accel::kNone;
  sim::LinuxTestbed bed(cfg);
  bed.enable_tracing(8);

  // Coalesce four routed segments off-line, then hand the super-packet to
  // the engine entry point the slow thread uses — fully deterministic.
  GroEngine gro(GroConfig{.enabled = true});
  std::vector<net::Packet> out;
  constexpr std::uint32_t kPayload = 512 - 54;
  for (std::uint32_t k = 0; k < 4; ++k) {
    gro.fold(bed.forward_tcp_segment(0, 0, 512, 1 + k * kPayload,
                                     static_cast<std::uint16_t>(k)),
             out);
  }
  gro.flush_all(out);
  ASSERT_EQ(out.size(), 1u);
  ASSERT_EQ(out[0].gro_segs.size(), 4u);

  const std::uint64_t fwd_before = bed.kernel().counters().forwarded;
  kern::CycleTrace trace;
  kern::RxSummary sum = bed.kernel().rx_from_engine(
      bed.ingress_ifindex(), std::move(out[0]), trace);
  EXPECT_EQ(sum.drop, kern::Drop::kNone);
  // Segment-aware counters and DevStats: one super counts as four wire
  // packets everywhere.
  EXPECT_EQ(bed.kernel().counters().forwarded - fwd_before, 4u);
  const kern::DevStats& st = bed.kernel().dev_by_name("eth1")->stats();
  EXPECT_EQ(st.tx_packets, 4u);
  EXPECT_EQ(st.tx_bytes, 4u * 512u);

  ASSERT_FALSE(bed.trace_ring()->empty());
  const util::PacketTrace& t = bed.trace_ring()->latest();
  bool saw_super = false, saw_reseg = false;
  for (const auto& ev : t.events) {
    if (std::strcmp(ev.layer, "gro") != 0) continue;
    if (std::strcmp(ev.stage, "superpacket") == 0) saw_super = true;
    if (std::strcmp(ev.stage, "gso_segment") == 0) saw_reseg = true;
  }
  EXPECT_TRUE(saw_super);
  EXPECT_TRUE(saw_reseg);
  EXPECT_EQ(t.verdict, "ok");
}

// --- Closed-loop equivalence (ISSUE 9 satellite 3) --------------------------

// Runs once per execution engine: TX batching and GRO must be invisible under
// the interpreter and the JIT alike.
class TxGroEquivalence : public ::testing::TestWithParam<ebpf::ExecEngine> {};

// Everything about a forwarding run that batching/GRO must not change.
// Cycle budgets and doorbell counts legitimately differ and are excluded.
struct FwdCounters {
  std::uint64_t processed = 0;
  std::uint64_t tail_drops = 0;
  std::uint64_t xdp_drop = 0;
  std::uint64_t xdp_tx = 0;
  std::uint64_t xdp_redirect = 0;
  std::uint64_t xdp_pass = 0;
  std::uint64_t to_userspace = 0;
  std::uint64_t aborted = 0;
  std::uint64_t tx_enqueued = 0;
  std::uint64_t tx_drops = 0;
  std::uint64_t slow_processed = 0;
  std::uint64_t kc_forwarded = 0;
  std::uint64_t kc_fast_path = 0;
  std::uint64_t kc_slow_path = 0;
  std::map<kern::Drop, std::uint64_t> kc_drops;
  std::uint64_t tx_transmitted = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t bad_redirect = 0;
  std::uint64_t descriptors = 0;
  std::uint64_t eth1_tx_packets = 0;
  std::uint64_t eth1_tx_bytes = 0;

  bool operator==(const FwdCounters&) const = default;
};

// Byte streams that left eth1, keyed by 5-tuple and in per-flow order.
using FlowSigs = std::map<std::string, std::vector<std::string>>;

struct FwdRun {
  FwdCounters c;
  FlowSigs sigs;
};

FwdRun run_forwarding(sim::Accel accel, ebpf::ExecEngine exec, unsigned queues,
                      unsigned burst, bool gro,
                      const std::function<net::Packet(sim::LinuxTestbed&,
                                                      std::uint64_t)>& factory,
                      std::uint64_t packets) {
  sim::ScenarioConfig cfg;
  cfg.prefixes = 8;
  cfg.accel = accel;
  cfg.exec_engine = exec;
  sim::LinuxTestbed bed(cfg);

  FwdRun run;
  bed.kernel().dev_by_name("eth1")->set_phys_tx([&run](net::Packet&& p) {
    const std::uint8_t* b = p.data();
    std::string key(reinterpret_cast<const char*>(b + net::kEthHdrLen + 9),
                    1);  // proto
    key.append(reinterpret_cast<const char*>(b + net::kEthHdrLen + 12), 8);
    key.append(reinterpret_cast<const char*>(b + 34), 4);  // L4 ports
    run.sigs[key].push_back(bytes_of(p));
  });

  EngineConfig ecfg = bed.engine_config(queues);
  ecfg.tx.burst = burst;
  ecfg.gro.enabled = gro;
  Engine eng(bed.kernel(), bed.ingress_ifindex(), ecfg);
  eng.start();
  for (std::uint64_t i = 0; i < packets; ++i) eng.inject(factory(bed, i));
  eng.stop();

  FwdCounters& c = run.c;
  c.processed = eng.total_processed();
  c.tail_drops = eng.total_tail_drops();
  for (unsigned q = 0; q < queues; ++q) {
    const QueueStats& st = eng.queue_stats(q);
    c.xdp_drop += st.xdp_drop;
    c.xdp_tx += st.xdp_tx;
    c.xdp_redirect += st.xdp_redirect;
    c.xdp_pass += st.xdp_pass;
    c.to_userspace += st.to_userspace;
    c.aborted += st.aborted;
    c.tx_enqueued += st.tx_enqueued;
    c.tx_drops += st.tx_drops;
  }
  c.slow_processed = eng.slow_stats().processed;
  const kern::KernelCounters& kc = bed.kernel().counters();
  c.kc_forwarded = kc.forwarded;
  c.kc_fast_path = kc.fast_path_packets;
  c.kc_slow_path = kc.slow_path_packets;
  c.kc_drops = kc.drops;
  for (unsigned q = 0; q < queues; ++q) {
    const TxQueueStats& ts = eng.tx().queue_stats(q);
    c.tx_transmitted += ts.transmitted;
    c.tx_bytes += ts.tx_bytes;
    c.bad_redirect += ts.bad_redirect;
  }
  c.descriptors = eng.tx().descriptors();
  const kern::DevStats& st = bed.kernel().dev_by_name("eth1")->stats();
  c.eth1_tx_packets = st.tx_packets;
  c.eth1_tx_bytes = st.tx_bytes;
  return run;
}

TEST_P(TxGroEquivalence, BatchingIsInvisibleOnTheXdpRouter) {
  // The router mix from the engine equivalence suite: every 5th packet is
  // unroutable (XDP punt -> slow-path drop), the rest forward on the fast
  // path through the TX rings.
  auto factory = [](sim::LinuxTestbed& bed, std::uint64_t i) {
    if (i % 5 == 4) {
      net::FlowKey f;
      f.src_ip = net::Ipv4Addr::parse("10.10.1.2").value();
      f.dst_ip = net::Ipv4Addr::parse("10.250.0.9").value();
      f.proto = net::kIpProtoUdp;
      f.src_port = static_cast<std::uint16_t>(2000 + i % 32);
      f.dst_port = 7;
      return net::build_udp_packet(net::MacAddr::from_id(0x501),
                                   bed.kernel().dev_by_name("eth0")->mac(), f,
                                   64);
    }
    return bed.forward_packet(static_cast<int>(i % 8),
                              static_cast<std::uint16_t>(i % 64), 64);
  };
  constexpr std::uint64_t kPackets = 3000;
  for (unsigned queues : {1u, 8u}) {
    FwdRun base = run_forwarding(sim::Accel::kLinuxFpXdp, GetParam(), queues,
                                 /*burst=*/1, /*gro=*/false, factory,
                                 kPackets);
    FwdRun batched = run_forwarding(sim::Accel::kLinuxFpXdp, GetParam(),
                                    queues, /*burst=*/64, /*gro=*/true,
                                    factory, kPackets);
    // The baseline itself drove both paths and the TX rings.
    EXPECT_EQ(base.c.processed, kPackets);
    EXPECT_GT(base.c.tx_transmitted, 0u);
    EXPECT_EQ(base.c.tx_transmitted, base.c.xdp_tx + base.c.xdp_redirect);
    EXPECT_EQ(base.c, batched.c) << "queues=" << queues;
    EXPECT_EQ(base.sigs, batched.sigs) << "queues=" << queues;
  }
}

TEST_P(TxGroEquivalence, GroIsInvisibleOnTheSlowPathForwarder) {
  // Six in-order TCP streams with UDP sprinkled in, all through the plain
  // Linux stack (every packet takes the slow path, the shape GRO folds).
  constexpr std::uint32_t kPayload = 256 - 54;
  auto factory = [](sim::LinuxTestbed& bed, std::uint64_t i) {
    if (i % 7 == 6) {
      return bed.forward_packet(static_cast<int>(i % 8),
                                static_cast<std::uint16_t>(i % 16), 64);
    }
    const auto flow = static_cast<std::uint16_t>(i % 6);
    const auto k = static_cast<std::uint32_t>(i / 6);
    return bed.forward_tcp_segment(flow % 4, flow, 256, 1 + k * kPayload,
                                   static_cast<std::uint16_t>(k));
  };
  constexpr std::uint64_t kPackets = 2400;
  for (unsigned queues : {1u, 8u}) {
    FwdRun off = run_forwarding(sim::Accel::kNone, GetParam(), queues,
                                /*burst=*/1, /*gro=*/false, factory, kPackets);
    FwdRun on = run_forwarding(sim::Accel::kNone, GetParam(), queues,
                               /*burst=*/64, /*gro=*/true, factory, kPackets);
    EXPECT_EQ(off.c.processed, kPackets);
    EXPECT_EQ(off.c.slow_processed, kPackets);
    EXPECT_EQ(off.c.eth1_tx_packets, kPackets);  // everything routable
    EXPECT_EQ(off.c, on.c) << "queues=" << queues;
    EXPECT_EQ(off.sigs, on.sigs) << "queues=" << queues;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Engines, TxGroEquivalence,
    ::testing::Values(ebpf::ExecEngine::kInterpreter, ebpf::ExecEngine::kJit),
    [](const ::testing::TestParamInfo<ebpf::ExecEngine>& info) {
      return std::string(info.param == ebpf::ExecEngine::kJit ? "jit"
                                                              : "interp");
    });

}  // namespace
}  // namespace linuxfp::engine
