#include "ebpf/loader.h"

#include <gtest/gtest.h>

#include "ebpf/builder.h"
#include "ebpf/kernel_helpers.h"

namespace linuxfp::ebpf {
namespace {

class LoaderTest : public ::testing::Test {
 protected:
  LoaderTest() : kernel_("host") {
    register_all_helpers(helpers_, kernel_.cost());
    kernel_.add_phys_dev("eth0");
    (void)kernel_.set_link_up("eth0", true);
  }

  Program action_prog(std::uint64_t action) {
    ProgramBuilder b("act", HookType::kXdp);
    b.ret(action);
    return b.build().value();
  }

  kern::Kernel kernel_;
  HelperRegistry helpers_;
};

TEST_F(LoaderTest, LoadRejectsUnverifiableProgram) {
  Attachment att("t", HookType::kXdp, kernel_, helpers_);
  Program bad;
  bad.insns.push_back({Op::kExit, 0, 0, true, 0, 0, MemSize::kU64});
  auto id = att.load(bad);
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.error().code, "verifier.r0_uninit");
}

TEST_F(LoaderTest, DirectEntryRuns) {
  Attachment att("t", HookType::kXdp, kernel_, helpers_);
  auto id = att.load(action_prog(kActDrop));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(att.set_entry(id.value()).ok());
  net::Packet pkt(64);
  auto r = att.run(pkt, 1);
  EXPECT_EQ(r.verdict, kern::PacketProgram::Verdict::kDrop);
  EXPECT_EQ(att.stats().runs, 1u);
  EXPECT_EQ(att.stats().drop, 1u);
}

TEST_F(LoaderTest, DispatcherBeforeFirstDeployPasses) {
  Attachment att("t", HookType::kXdp, kernel_, helpers_);
  att.enable_dispatcher();
  net::Packet pkt(64);
  auto r = att.run(pkt, 1);
  EXPECT_EQ(r.verdict, kern::PacketProgram::Verdict::kPass);
}

TEST_F(LoaderTest, AtomicSwapNeverDropsPackets) {
  Attachment att("t", HookType::kXdp, kernel_, helpers_);
  att.enable_dispatcher();
  auto drop_id = att.load(action_prog(kActDrop));
  auto tx_id = att.load(action_prog(kActTx));
  ASSERT_TRUE(drop_id.ok());
  ASSERT_TRUE(tx_id.ok());

  // Interleave packets with swaps: every packet must see exactly one of the
  // two verdicts, never a missing program (aborted).
  ASSERT_TRUE(att.swap(drop_id.value()).ok());
  for (int i = 0; i < 100; ++i) {
    net::Packet pkt(64);
    auto r = att.run(pkt, 1);
    ASSERT_NE(r.verdict, kern::PacketProgram::Verdict::kAborted);
    ASSERT_NE(r.verdict, kern::PacketProgram::Verdict::kPass);
    ASSERT_TRUE(att.swap(i % 2 ? drop_id.value() : tx_id.value()).ok());
  }
  EXPECT_EQ(att.stats().aborted, 0u);
  EXPECT_EQ(att.stats().drop + att.stats().tx, 100u);
}

TEST_F(LoaderTest, SwapValidatesProgramId) {
  Attachment att("t", HookType::kXdp, kernel_, helpers_);
  att.enable_dispatcher();
  EXPECT_FALSE(att.swap(123).ok());
  Attachment no_dispatch("t2", HookType::kXdp, kernel_, helpers_);
  EXPECT_FALSE(no_dispatch.swap(0).ok());
}

TEST_F(LoaderTest, AttachDetachDevice) {
  Attachment att("t", HookType::kXdp, kernel_, helpers_);
  ASSERT_TRUE(attach_to_device(kernel_, "eth0", HookType::kXdp, &att).ok());
  EXPECT_EQ(kernel_.dev_by_name("eth0")->xdp_prog(), &att);
  detach_from_device(kernel_, "eth0", HookType::kXdp);
  EXPECT_EQ(kernel_.dev_by_name("eth0")->xdp_prog(), nullptr);
  EXPECT_FALSE(
      attach_to_device(kernel_, "nope", HookType::kXdp, &att).ok());

  ASSERT_TRUE(
      attach_to_device(kernel_, "eth0", HookType::kTcIngress, &att).ok());
  EXPECT_EQ(kernel_.dev_by_name("eth0")->tc_ingress_prog(), &att);
  ASSERT_TRUE(
      attach_to_device(kernel_, "eth0", HookType::kTcEgress, &att).ok());
  EXPECT_EQ(kernel_.dev_by_name("eth0")->tc_egress_prog(), &att);
}

TEST_F(LoaderTest, XdpDropCountsAsFastPath) {
  Attachment att("t", HookType::kXdp, kernel_, helpers_);
  auto id = att.load(action_prog(kActDrop));
  ASSERT_TRUE(att.set_entry(id.value()).ok());
  ASSERT_TRUE(attach_to_device(kernel_, "eth0", HookType::kXdp, &att).ok());

  kern::CycleTrace trace;
  auto summary =
      kernel_.rx(kernel_.dev_by_name("eth0")->ifindex(), net::Packet(64),
                 trace);
  EXPECT_TRUE(summary.fast_path);
  EXPECT_EQ(summary.drop, kern::Drop::kXdpDrop);
  EXPECT_EQ(kernel_.counters().fast_path_packets, 1u);
  EXPECT_EQ(kernel_.counters().slow_path_packets, 0u);
}

}  // namespace
}  // namespace linuxfp::ebpf
