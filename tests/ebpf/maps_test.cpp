#include "ebpf/maps.h"
#include "ebpf/program.h"

#include <gtest/gtest.h>

#include <cstring>

namespace linuxfp::ebpf {
namespace {

std::vector<std::uint8_t> key32(std::uint32_t k) {
  std::vector<std::uint8_t> v(4);
  std::memcpy(v.data(), &k, 4);
  return v;
}

std::vector<std::uint8_t> val64(std::uint64_t x) {
  std::vector<std::uint8_t> v(8);
  std::memcpy(v.data(), &x, 8);
  return v;
}

TEST(ArrayMap, UpdateLookupDelete) {
  Map m("a", MapType::kArray, 4, 8, 16);
  auto k = key32(3);
  auto v = val64(0x1234);
  ASSERT_TRUE(m.update(k.data(), v.data()).ok());
  std::uint8_t* got = m.lookup(k.data());
  ASSERT_NE(got, nullptr);
  std::uint64_t out;
  std::memcpy(&out, got, 8);
  EXPECT_EQ(out, 0x1234u);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_TRUE(m.erase(k.data()));
  EXPECT_EQ(m.lookup(k.data()), nullptr);
}

TEST(ArrayMap, OutOfRangeIndexRejected) {
  Map m("a", MapType::kArray, 4, 8, 4);
  auto k = key32(4);
  auto v = val64(1);
  EXPECT_FALSE(m.update(k.data(), v.data()).ok());
  EXPECT_EQ(m.lookup(k.data()), nullptr);
}

TEST(HashMap, BasicOps) {
  Map m("h", MapType::kHash, 8, 8, 128);
  std::uint64_t key = 0xAABBCCDD;
  auto v = val64(42);
  ASSERT_TRUE(
      m.update(reinterpret_cast<std::uint8_t*>(&key), v.data()).ok());
  EXPECT_NE(m.lookup(reinterpret_cast<std::uint8_t*>(&key)), nullptr);
  std::uint64_t other = 0x11;
  EXPECT_EQ(m.lookup(reinterpret_cast<std::uint8_t*>(&other)), nullptr);
}

TEST(HashMap, CapacityEnforced) {
  Map m("h", MapType::kHash, 4, 8, 2);
  auto v = val64(1);
  ASSERT_TRUE(m.update(key32(1).data(), v.data()).ok());
  ASSERT_TRUE(m.update(key32(2).data(), v.data()).ok());
  EXPECT_FALSE(m.update(key32(3).data(), v.data()).ok());
  // Updating an existing key is fine at capacity.
  EXPECT_TRUE(m.update(key32(2).data(), v.data()).ok());
}

TEST(LpmMap, LongestPrefixMatch) {
  Map m("lpm", MapType::kLpmTrie, 8, 8, 64);
  auto add = [&](std::uint32_t plen, std::uint32_t addr, std::uint64_t val) {
    std::uint8_t key[8];
    std::memcpy(key, &plen, 4);
    std::memcpy(key + 4, &addr, 4);
    auto v = val64(val);
    ASSERT_TRUE(m.update(key, v.data()).ok());
  };
  // 10.0.0.0/8 -> 1 ; 10.10.0.0/16 -> 2
  add(8, 0x0A000000, 1);
  add(16, 0x0A0A0000, 2);

  auto probe = [&](std::uint32_t addr) -> std::int64_t {
    std::uint32_t full = 32;
    std::uint8_t key[8];
    std::memcpy(key, &full, 4);
    std::memcpy(key + 4, &addr, 4);
    std::uint8_t* got = m.lookup(key);
    if (!got) return -1;
    std::uint64_t out;
    std::memcpy(&out, got, 8);
    return static_cast<std::int64_t>(out);
  };
  EXPECT_EQ(probe(0x0A0A0101), 2);  // 10.10.1.1 matches /16
  EXPECT_EQ(probe(0x0A0B0101), 1);  // 10.11.1.1 matches /8
  EXPECT_EQ(probe(0x0B000001), -1);
}

TEST(ProgArray, SetAndGet) {
  Map m("pa", MapType::kProgArray, 4, 4, 8);
  EXPECT_FALSE(m.prog_at(0).has_value());
  ASSERT_TRUE(m.set_prog(0, 17).ok());
  ASSERT_TRUE(m.prog_at(0).has_value());
  EXPECT_EQ(*m.prog_at(0), 17u);
  ASSERT_TRUE(m.set_prog(0, 23).ok());  // atomic swap
  EXPECT_EQ(*m.prog_at(0), 23u);
}

TEST(PercpuArray, SlotsAreIndependentAndAlwaysPresent) {
  Map m("pca", MapType::kPercpuArray, 4, 8, 4);
  auto k = key32(2);
  // Per-CPU arrays are fully pre-allocated, like the kernel's.
  EXPECT_EQ(m.size(), 4u);
  ASSERT_NE(m.lookup(k.data(), 0), nullptr);

  auto v3 = val64(3);
  auto v5 = val64(5);
  ASSERT_TRUE(m.update_cpu(k.data(), v3.data(), 0).ok());
  ASSERT_TRUE(m.update_cpu(k.data(), v5.data(), 7).ok());
  std::uint64_t out = 0;
  std::memcpy(&out, m.lookup(k.data(), 0), 8);
  EXPECT_EQ(out, 3u);
  std::memcpy(&out, m.lookup(k.data(), 7), 8);
  EXPECT_EQ(out, 5u);
  std::memcpy(&out, m.lookup(k.data(), 1), 8);
  EXPECT_EQ(out, 0u);  // untouched slot
  EXPECT_EQ(m.percpu_sum(k.data()), 8u);

  // Slots of one entry are distinct storage: concurrent per-CPU writers
  // never alias.
  EXPECT_NE(m.lookup(k.data(), 0), m.lookup(k.data(), 1));
  // CPU beyond NR_CPUS is a miss, not UB.
  EXPECT_EQ(m.lookup(k.data(), kMaxCpus), nullptr);
  // bpf_map_delete_elem on a per-CPU array is -EINVAL in the kernel.
  EXPECT_FALSE(m.erase(k.data()));
}

TEST(PercpuArray, ControlPlaneUpdateReplicatesAllSlots) {
  Map m("pca", MapType::kPercpuArray, 4, 8, 2);
  auto k = key32(0);
  auto v = val64(11);
  ASSERT_TRUE(m.update(k.data(), v.data()).ok());
  for (unsigned cpu = 0; cpu < kMaxCpus; ++cpu) {
    std::uint64_t out = 0;
    std::memcpy(&out, m.lookup(k.data(), cpu), 8);
    EXPECT_EQ(out, 11u) << "cpu " << cpu;
  }
  EXPECT_EQ(m.percpu_sum(k.data()), 11u * kMaxCpus);
  m.clear();
  EXPECT_EQ(m.percpu_sum(k.data()), 0u);
  EXPECT_NE(m.lookup(k.data(), 3), nullptr);  // still present after clear
}

TEST(PercpuHash, UpdateCpuRequiresPreCreatedKey) {
  Map m("pch", MapType::kPercpuHash, 4, 8, 8);
  auto k = key32(9);
  auto v = val64(1);
  // Program-side single-slot update must not insert: insertion would need a
  // lock the worker pool doesn't take. The control plane creates the entry.
  auto st = m.update_cpu(k.data(), v.data(), 2);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, "map.percpu_key");

  ASSERT_TRUE(m.update(k.data(), v.data()).ok());  // replicates 1 everywhere
  auto v7 = val64(7);
  ASSERT_TRUE(m.update_cpu(k.data(), v7.data(), 2).ok());
  EXPECT_EQ(m.percpu_sum(k.data()), 1u * (kMaxCpus - 1) + 7u);
  EXPECT_TRUE(m.erase(k.data()));
  EXPECT_EQ(m.lookup(k.data(), 2), nullptr);
  EXPECT_EQ(m.percpu_sum(k.data()), 0u);
}

TEST(PercpuSum, OrdinaryMapReadsSingleValue) {
  Map m("h", MapType::kHash, 4, 8, 8);
  auto k = key32(1);
  auto v = val64(42);
  ASSERT_TRUE(m.update(k.data(), v.data()).ok());
  EXPECT_EQ(m.percpu_sum(k.data()), 42u);
}

TEST(MapSetTest, CreateAndFind) {
  MapSet set;
  auto a = set.create("one", MapType::kArray, 4, 4, 4);
  auto b = set.create("two", MapType::kHash, 4, 4, 4);
  EXPECT_NE(a, b);
  EXPECT_EQ(set.get(a)->name(), "one");
  EXPECT_EQ(set.by_name("two")->type(), MapType::kHash);
  EXPECT_EQ(set.get(99), nullptr);
  EXPECT_EQ(set.by_name("three"), nullptr);
}

}  // namespace
}  // namespace linuxfp::ebpf
