// Property/fuzz tests for the verifier-VM contract:
//  1. Soundness: any program the verifier ACCEPTS must never abort at
//     runtime with a memory error, on any packet.
//  2. Robustness: random instruction streams (mostly garbage) must be
//     cleanly rejected — never crash the verifier or, if accepted, the VM.
#include <gtest/gtest.h>

#include "ebpf/builder.h"
#include "ebpf/kernel_helpers.h"
#include "ebpf/verifier.h"
#include "ebpf/vm.h"
#include "util/rng.h"

namespace linuxfp::ebpf {
namespace {

class FuzzRig {
 public:
  FuzzRig() { register_all_helpers(helpers_, cost_); }

  util::Status verify_prog(const Program& p) {
    VerifyOptions opts;
    opts.helpers = &helpers_;
    opts.maps = &maps_;
    return verify(p, opts);
  }

  VmResult run(const Program& p, net::Packet& pkt) {
    Vm vm(cost_, helpers_, maps_, nullptr);
    return vm.run(p, pkt, 1, nullptr);
  }

  kern::CostModel cost_;
  HelperRegistry helpers_;
  MapSet maps_;
};

// Completely random (garbage) instruction streams.
Program random_program(util::Rng& rng) {
  Program p;
  std::size_t n = 1 + rng.next_below(64);
  for (std::size_t i = 0; i < n; ++i) {
    Insn insn;
    insn.op = static_cast<Op>(rng.next_below(28));
    insn.dst = static_cast<std::uint8_t>(rng.next_below(12));  // incl. invalid
    insn.src = static_cast<std::uint8_t>(rng.next_below(12));
    insn.use_imm = rng.next_below(2) == 0;
    insn.off = static_cast<std::int32_t>(rng.next_below(128)) - 32;
    insn.imm = static_cast<std::int64_t>(rng.next_below(1 << 16)) - (1 << 15);
    insn.size = static_cast<MemSize>(1u << rng.next_below(4));
    p.insns.push_back(insn);
  }
  p.insns.push_back({Op::kMov, kR0, 0, true, 0, 2, MemSize::kU64});
  p.insns.push_back({Op::kExit, 0, 0, true, 0, 0, MemSize::kU64});
  return p;
}

TEST(VerifierFuzz, GarbageProgramsNeverCrashAndAcceptedOnesNeverAbort) {
  FuzzRig rig;
  util::Rng rng(0xF00D);
  int accepted = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    Program p = random_program(rng);
    auto st = rig.verify_prog(p);
    if (!st.ok()) continue;  // rejection is fine; not crashing is the test
    ++accepted;
    for (std::size_t len : {0u, 14u, 60u, 1500u}) {
      net::Packet pkt(len);
      auto r = rig.run(p, pkt);
      // Division by zero is the one runtime trap the verifier does not
      // track (the kernel JIT inserts a runtime guard instead; our VM's
      // abort models that guard).
      if (r.aborted) {
        EXPECT_TRUE(r.error.find("zero") != std::string::npos)
            << "accepted program aborted with: " << r.error;
      }
    }
  }
  // Sanity: the generator does occasionally produce verifiable programs.
  EXPECT_GT(accepted, 0);
}

// Structured generator: prologue with a real bounds check, then random
// *verified-range* packet reads, stack traffic and ALU. These must always
// verify and always run clean.
Program structured_program(util::Rng& rng) {
  ProgramBuilder b("fuzz", HookType::kXdp);
  b.mov_reg(kR6, kR1);
  b.ldx(kR7, kR6, kCtxData, MemSize::kU64);
  b.ldx(kR8, kR6, kCtxDataEnd, MemSize::kU64);
  std::int64_t verified = 14 + static_cast<std::int64_t>(rng.next_below(40));
  b.mov_reg(kR2, kR7);
  b.add(kR2, verified);
  b.jgt_reg(kR2, kR8, "out");

  int ops = 2 + static_cast<int>(rng.next_below(30));
  for (int i = 0; i < ops; ++i) {
    switch (rng.next_below(6)) {
      case 0: {  // verified packet read
        auto width = static_cast<std::int64_t>(1u << rng.next_below(3));
        auto off = static_cast<std::int32_t>(
            rng.next_below(static_cast<std::uint64_t>(verified - width + 1)));
        b.ldx(kR3, kR7, off,
              width == 1 ? MemSize::kU8
                         : width == 2 ? MemSize::kU16 : MemSize::kU32);
        break;
      }
      case 1: {  // stack write + read
        auto off = -8 * (1 + static_cast<std::int32_t>(rng.next_below(32)));
        b.mov_reg(kR4, kR10);
        b.add(kR4, off);
        b.st(kR4, 0, static_cast<std::int64_t>(rng.next_below(1000)),
             MemSize::kU64);
        b.ldx(kR3, kR4, 0, MemSize::kU64);
        break;
      }
      case 2:
        b.mov(kR3, static_cast<std::int64_t>(rng.next_below(100000)));
        b.add(kR3, 17);
        break;
      case 3:
        b.mov(kR5, static_cast<std::int64_t>(rng.next_below(256)));
        b.and_(kR5, 0x7f);
        b.or_(kR5, 0x10);
        break;
      case 4:
        b.mov(kR3, static_cast<std::int64_t>(rng.next_below(1 << 20)));
        b.be32(kR3);
        b.rsh(kR3, static_cast<std::int64_t>(rng.next_below(31)));
        break;
      case 5: {  // forward branch over one op
        b.mov(kR3, static_cast<std::int64_t>(rng.next_below(4)));
        std::string label = b.scoped("skip" + std::to_string(i));
        b.jeq(kR3, 1, label);
        b.mov(kR4, 7);
        b.label(label);
        b.new_scope();
        break;
      }
    }
  }
  b.ret(kActPass);
  b.label("out");
  b.ret(kActPass);
  auto built = b.build();
  EXPECT_TRUE(built.ok());
  return std::move(built).take();
}

TEST(VerifierFuzz, StructuredProgramsAlwaysVerifyAndRunClean) {
  FuzzRig rig;
  util::Rng rng(0xBEEF);
  for (int trial = 0; trial < 500; ++trial) {
    Program p = structured_program(rng);
    auto st = rig.verify_prog(p);
    ASSERT_TRUE(st.ok()) << "trial " << trial << ": " << st.error().message;
    for (std::size_t len : {14u, 54u, 60u, 128u, 1514u}) {
      net::Packet pkt(len);
      for (std::size_t i = 0; i < pkt.size(); ++i) {
        pkt.data()[i] = static_cast<std::uint8_t>(rng.next_u64());
      }
      auto r = rig.run(p, pkt);
      ASSERT_FALSE(r.aborted)
          << "trial " << trial << " len " << len << ": " << r.error;
      EXPECT_EQ(r.ret, kActPass);
    }
  }
}

// The verifier must also reject the structured programs when their bounds
// check is removed — a mutation test on the checker itself.
TEST(VerifierFuzz, MutatedProgramsWithoutBoundsCheckRejected) {
  FuzzRig rig;
  util::Rng rng(0xCAFE);
  int exercised = 0;
  for (int trial = 0; trial < 200; ++trial) {
    Program p = structured_program(rng);
    // Remove the jgt bounds-check instruction (index 5 in the prologue) by
    // turning it into a no-op mov — any later packet read must now fail.
    bool has_pkt_read = false;
    for (std::size_t i = 6; i < p.insns.size(); ++i) {
      if (p.insns[i].op == Op::kLdx && p.insns[i].src == kR7) {
        has_pkt_read = true;
      }
    }
    if (!has_pkt_read) continue;
    ++exercised;
    p.insns[5] = {Op::kMov, kR2, 0, true, 0, 0, MemSize::kU64};
    auto st = rig.verify_prog(p);
    ASSERT_FALSE(st.ok()) << "trial " << trial;
    EXPECT_EQ(st.error().code, "verifier.pkt_unverified");
  }
  EXPECT_GT(exercised, 50);
}

}  // namespace
}  // namespace linuxfp::ebpf
