// Transactional object-load tests under fault injection: a load that fails
// partway (after creating maps, or between programs) must free everything it
// created — no leaked map FDs, no unreachable tail programs — exactly like
// libbpf's bpf_object__load error path.
#include "ebpf/loader.h"

#include <gtest/gtest.h>

#include "ebpf/builder.h"
#include "ebpf/kernel_helpers.h"
#include "util/fault.h"

namespace linuxfp::ebpf {
namespace {

class LoaderFaultTest : public ::testing::Test {
 protected:
  LoaderFaultTest() : kernel_("host") {
    register_all_helpers(helpers_, kernel_.cost());
  }

  Program action_prog(const std::string& name, std::uint64_t action) {
    ProgramBuilder b(name, HookType::kXdp);
    b.ret(action);
    return b.build().value();
  }

  Program unverifiable_prog() {
    Program bad;
    bad.name = "bad";
    bad.insns.push_back({Op::kExit, 0, 0, true, 0, 0, MemSize::kU64});
    return bad;
  }

  std::vector<MapSpec> two_maps() {
    return {MapSpec{"state_a", MapType::kHash, 4, 8, 64},
            MapSpec{"state_b", MapType::kArray, 4, 4, 16}};
  }

  kern::Kernel kernel_;
  HelperRegistry helpers_;
};

TEST_F(LoaderFaultTest, SuccessfulObjectLoadReturnsIds) {
  Attachment att("t", HookType::kXdp, kernel_, helpers_);
  std::size_t maps_before = att.maps().count();
  std::vector<Program> progs;
  progs.push_back(action_prog("p0", kActPass));
  progs.push_back(action_prog("p1", kActDrop));
  auto obj = att.load_object(two_maps(), std::move(progs));
  ASSERT_TRUE(obj.ok()) << obj.error().message;
  EXPECT_EQ(obj->map_ids.size(), 2u);
  EXPECT_EQ(obj->prog_ids.size(), 2u);
  EXPECT_EQ(att.maps().count(), maps_before + 2);
  EXPECT_NE(att.maps().by_name("state_a"), nullptr);
  EXPECT_EQ(att.programs().size(), 2u);
}

TEST_F(LoaderFaultTest, MapCreateFaultLoadsNothing) {
  util::FaultScope faults(201);
  faults->fail_nth(util::kFaultMapCreate, 2);  // second map creation fails
  Attachment att("t", HookType::kXdp, kernel_, helpers_);
  std::size_t maps_before = att.maps().count();
  std::vector<Program> progs;
  progs.push_back(action_prog("p0", kActPass));
  auto obj = att.load_object(two_maps(), std::move(progs));
  ASSERT_FALSE(obj.ok());
  EXPECT_EQ(obj.error().code, "fault.maps.create");
  // The first map was created before the fault; cleanup must have destroyed
  // it again, and no program may have been loaded.
  EXPECT_EQ(att.maps().count(), maps_before);
  EXPECT_EQ(att.maps().by_name("state_a"), nullptr);
  EXPECT_TRUE(att.programs().empty());
}

TEST_F(LoaderFaultTest, ProgramLoadFaultFreesCreatedMaps) {
  util::FaultScope faults(202);
  // Both maps create fine; the second program's load fails.
  faults->fail_nth(util::kFaultLoaderLoad, 2);
  Attachment att("t", HookType::kXdp, kernel_, helpers_);
  std::size_t maps_before = att.maps().count();
  std::vector<Program> progs;
  progs.push_back(action_prog("p0", kActPass));
  progs.push_back(action_prog("p1", kActDrop));
  auto obj = att.load_object(two_maps(), std::move(progs));
  ASSERT_FALSE(obj.ok());
  EXPECT_EQ(obj.error().code, "fault.loader.load");
  // No leaked map FDs: both maps destroyed, program table restored (the
  // first program had loaded and must be truncated away again).
  EXPECT_EQ(att.maps().count(), maps_before);
  EXPECT_EQ(att.maps().by_name("state_a"), nullptr);
  EXPECT_EQ(att.maps().by_name("state_b"), nullptr);
  EXPECT_TRUE(att.programs().empty());
}

TEST_F(LoaderFaultTest, VerifierRejectionMidObjectFreesCreatedMaps) {
  // Same shape without injected faults: a genuinely unverifiable program in
  // the middle of an object triggers the identical cleanup path.
  Attachment att("t", HookType::kXdp, kernel_, helpers_);
  std::size_t maps_before = att.maps().count();
  std::vector<Program> progs;
  progs.push_back(action_prog("p0", kActPass));
  progs.push_back(unverifiable_prog());
  progs.push_back(action_prog("p2", kActDrop));
  auto obj = att.load_object(two_maps(), std::move(progs));
  ASSERT_FALSE(obj.ok());
  EXPECT_EQ(att.maps().count(), maps_before);
  EXPECT_TRUE(att.programs().empty());
}

TEST_F(LoaderFaultTest, FailedLoadDoesNotDisturbEarlierObjects) {
  util::FaultScope faults(203);
  Attachment att("t", HookType::kXdp, kernel_, helpers_);
  att.enable_dispatcher();
  std::vector<Program> first;
  first.push_back(action_prog("gen1", kActDrop));
  auto obj1 = att.load_object({MapSpec{"gen1_state", MapType::kHash, 4, 4, 8}},
                              std::move(first));
  ASSERT_TRUE(obj1.ok());
  ASSERT_TRUE(att.swap(obj1->prog_ids[0]).ok());
  std::size_t maps_before = att.maps().count();
  std::size_t progs_before = att.programs().size();

  faults->fail_always(util::kFaultLoaderLoad);
  std::vector<Program> second;
  second.push_back(action_prog("gen2", kActPass));
  auto obj2 = att.load_object(
      {MapSpec{"gen2_state", MapType::kHash, 4, 4, 8}}, std::move(second));
  ASSERT_FALSE(obj2.ok());

  // Generation 1 keeps running untouched: same table sizes, its map still
  // resolvable, and the active program still executes.
  EXPECT_EQ(att.maps().count(), maps_before);
  EXPECT_EQ(att.programs().size(), progs_before);
  EXPECT_NE(att.maps().by_name("gen1_state"), nullptr);
  EXPECT_EQ(att.maps().by_name("gen2_state"), nullptr);
  net::Packet pkt(64);
  auto r = att.run(pkt, 1);
  EXPECT_EQ(r.verdict, kern::PacketProgram::Verdict::kDrop);
}

TEST_F(LoaderFaultTest, UnloadObjectRestoresTables) {
  Attachment att("t", HookType::kXdp, kernel_, helpers_);
  att.enable_dispatcher();
  std::size_t maps_before = att.maps().count();
  std::size_t progs_before = att.programs().size();
  std::vector<Program> progs;
  progs.push_back(action_prog("p0", kActPass));
  auto obj = att.load_object(two_maps(), std::move(progs));
  ASSERT_TRUE(obj.ok());
  att.unload_object(*obj);
  EXPECT_EQ(att.maps().count(), maps_before);
  EXPECT_EQ(att.programs().size(), progs_before);
  // Destroyed map ids stay dead (never reused).
  for (std::uint32_t id : obj->map_ids) {
    EXPECT_EQ(att.maps().get(id), nullptr);
  }
}

TEST_F(LoaderFaultTest, AttachFaultReportsError) {
  util::FaultScope faults(204);
  faults->fail_always(util::kFaultLoaderAttach);
  kernel_.add_phys_dev("eth0");
  (void)kernel_.set_link_up("eth0", true);
  Attachment att("t", HookType::kXdp, kernel_, helpers_);
  auto st = attach_to_device(kernel_, "eth0", HookType::kXdp, &att);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, "fault.loader.attach");
  EXPECT_EQ(kernel_.dev_by_name("eth0")->xdp_prog(), nullptr);
  faults->clear(util::kFaultLoaderAttach);
  EXPECT_TRUE(attach_to_device(kernel_, "eth0", HookType::kXdp, &att).ok());
}

}  // namespace
}  // namespace linuxfp::ebpf
