#include "ebpf/vm.h"

#include <gtest/gtest.h>

#include "ebpf/builder.h"
#include "ebpf/jit.h"
#include "ebpf/kernel_helpers.h"
#include "kernel/kernel.h"
#include "net/headers.h"

namespace linuxfp::ebpf {
namespace {

class VmTest : public ::testing::Test {
 protected:
  VmTest() { register_all_helpers(helpers_, cost_); }

  VmResult run(Program prog, net::Packet& pkt) {
    Vm vm(cost_, helpers_, maps_, &progs_);
    return vm.run(prog, pkt, 1, nullptr);
  }

  // Runs under the requested engine (translating first for the JIT); edge
  // tests call this once per engine so both backends cover the same corner.
  VmResult run_engine(Program prog, net::Packet& pkt, ExecEngine engine) {
    if (engine == ExecEngine::kJit) prog.jit = jit_translate(prog);
    Vm vm(cost_, helpers_, maps_, &progs_);
    vm.set_engine(engine);
    return vm.run(prog, pkt, 1, nullptr);
  }

  static constexpr ExecEngine kEngines[] = {ExecEngine::kInterpreter,
                                            ExecEngine::kJit};

  kern::CostModel cost_;
  HelperRegistry helpers_;
  MapSet maps_;
  std::vector<Program> progs_;
};

TEST_F(VmTest, ReturnsAction) {
  ProgramBuilder b("ret", HookType::kXdp);
  b.ret(kActDrop);
  net::Packet pkt(64);
  auto r = run(b.build().value(), pkt);
  EXPECT_FALSE(r.aborted);
  EXPECT_EQ(r.ret, kActDrop);
  EXPECT_EQ(r.insns_executed, 2u);
}

TEST_F(VmTest, AluOps) {
  ProgramBuilder b("alu", HookType::kXdp);
  b.mov(kR0, 10);
  b.add(kR0, 5);       // 15
  b.lsh(kR0, 2);       // 60
  b.sub(kR0, 10);      // 50
  b.mov(kR1, 7);
  b.add_reg(kR0, kR1); // 57
  b.and_(kR0, 0x3f);   // 57
  b.or_(kR0, 0x40);    // 121
  b.exit();
  net::Packet pkt(64);
  auto r = run(b.build().value(), pkt);
  EXPECT_EQ(r.ret, 121u);
}

TEST_F(VmTest, ByteSwaps) {
  ProgramBuilder b("bswap", HookType::kXdp);
  b.mov(kR0, 0x1234);
  b.be16(kR0);
  b.exit();
  net::Packet pkt(64);
  EXPECT_EQ(run(b.build().value(), pkt).ret, 0x3412u);

  ProgramBuilder b2("bswap32", HookType::kXdp);
  b2.mov(kR0, 0x12345678);
  b2.be32(kR0);
  b2.exit();
  EXPECT_EQ(run(b2.build().value(), pkt).ret, 0x78563412u);
}

TEST_F(VmTest, PacketLoadAfterBoundsCheck) {
  ProgramBuilder b("pktload", HookType::kXdp);
  b.mov_reg(kR6, kR1);
  b.ldx(kR7, kR6, kCtxData, MemSize::kU64);
  b.ldx(kR8, kR6, kCtxDataEnd, MemSize::kU64);
  b.mov_reg(kR2, kR7);
  b.add(kR2, 14);
  b.jgt_reg(kR2, kR8, "short");
  b.ldx(kR0, kR7, 12, MemSize::kU16);  // ethertype raw
  b.be16(kR0);
  b.exit();
  b.label("short");
  b.ret(kActAborted);

  net::FlowKey f;
  f.src_ip = net::Ipv4Addr::parse("1.1.1.1").value();
  f.dst_ip = net::Ipv4Addr::parse("2.2.2.2").value();
  net::Packet pkt = net::build_udp_packet(net::MacAddr::from_id(1),
                                          net::MacAddr::from_id(2), f, 64);
  auto r = run(b.build().value(), pkt);
  EXPECT_FALSE(r.aborted);
  EXPECT_EQ(r.ret, 0x0800u);
}

TEST_F(VmTest, PacketStoreModifiesBytes) {
  ProgramBuilder b("pktstore", HookType::kXdp);
  b.mov_reg(kR6, kR1);
  b.ldx(kR7, kR6, kCtxData, MemSize::kU64);
  b.ldx(kR8, kR6, kCtxDataEnd, MemSize::kU64);
  b.mov_reg(kR2, kR7);
  b.add(kR2, 14);
  b.jgt_reg(kR2, kR8, "out");
  b.st(kR7, 0, 0xAB, MemSize::kU8);
  b.label("out");
  b.ret(kActPass);
  net::Packet pkt(64);
  run(b.build().value(), pkt);
  EXPECT_EQ(pkt.data()[0], 0xAB);
}

TEST_F(VmTest, RuntimeOutOfBoundsAborts) {
  // The VM itself enforces bounds even if a hostile program skips the check
  // (defense in depth; the verifier would reject this program).
  ProgramBuilder b("oob", HookType::kXdp);
  b.mov_reg(kR6, kR1);
  b.ldx(kR7, kR6, kCtxData, MemSize::kU64);
  b.ldx(kR0, kR7, 1000, MemSize::kU32);
  b.exit();
  net::Packet pkt(64);
  auto r = run(b.build().value(), pkt);
  EXPECT_TRUE(r.aborted);
  EXPECT_NE(r.error.find("out of bounds"), std::string::npos);
}

TEST_F(VmTest, StackReadWrite) {
  ProgramBuilder b("stack", HookType::kXdp);
  b.mov_reg(kR2, kR10);
  b.add(kR2, -16);
  b.st(kR2, 0, 0x1122, MemSize::kU32);
  b.ldx(kR0, kR2, 0, MemSize::kU32);
  b.exit();
  net::Packet pkt(64);
  EXPECT_EQ(run(b.build().value(), pkt).ret, 0x1122u);
}

TEST_F(VmTest, DivisionByZeroAborts) {
  ProgramBuilder b("div0", HookType::kXdp);
  b.mov(kR0, 5);
  b.mov(kR1, 0);
  Insn div{Op::kDiv, kR0, kR1, false, 0, 0, MemSize::kU64};
  b.mov(kR0, 5);
  // emit raw div via builder-internal path: use mov + manual insn
  Program p = b.build().value();
  p.insns.pop_back();  // nothing; construct manually instead
  p.insns.clear();
  p.insns.push_back({Op::kMov, kR0, 0, true, 0, 5, MemSize::kU64});
  p.insns.push_back({Op::kMov, kR1, 0, true, 0, 0, MemSize::kU64});
  p.insns.push_back(div);
  p.insns.push_back({Op::kExit, 0, 0, true, 0, 0, MemSize::kU64});
  net::Packet pkt(64);
  auto r = run(p, pkt);
  EXPECT_TRUE(r.aborted);
}

TEST_F(VmTest, TailCallSwitchesProgram) {
  std::uint32_t pa = maps_.create("jmp", MapType::kProgArray, 4, 4, 8);

  ProgramBuilder target("target", HookType::kXdp);
  target.ret(kActTx);
  progs_.push_back(target.build().value());
  maps_.get(pa)->set_prog(3, 0);

  ProgramBuilder entry("entry", HookType::kXdp);
  entry.mov_reg(kR6, kR1);
  entry.mov_reg(kR1, kR6);
  entry.mov(kR2, pa);
  entry.mov(kR3, 3);
  entry.call(kHelperTailCall);
  entry.ret(kActPass);  // only on miss

  net::Packet pkt(64);
  auto r = run(entry.build().value(), pkt);
  EXPECT_EQ(r.ret, kActTx);
  EXPECT_EQ(r.tail_calls, 1u);
  EXPECT_GT(r.cycles, cost_.bpf_tail_call);
}

TEST_F(VmTest, TailCallMissFallsThrough) {
  std::uint32_t pa = maps_.create("jmp", MapType::kProgArray, 4, 4, 8);
  ProgramBuilder entry("entry", HookType::kXdp);
  entry.mov_reg(kR6, kR1);
  entry.mov_reg(kR1, kR6);
  entry.mov(kR2, pa);
  entry.mov(kR3, 5);  // empty slot
  entry.call(kHelperTailCall);
  entry.ret(kActPass);
  net::Packet pkt(64);
  auto r = run(entry.build().value(), pkt);
  EXPECT_EQ(r.ret, kActPass);
  EXPECT_EQ(r.tail_calls, 0u);
}

TEST_F(VmTest, TailCallDepthLimited) {
  std::uint32_t pa = maps_.create("jmp", MapType::kProgArray, 4, 4, 8);
  // A program that tail-calls itself forever.
  ProgramBuilder loop("loop", HookType::kXdp);
  loop.mov_reg(kR6, kR1);
  loop.mov_reg(kR1, kR6);
  loop.mov(kR2, pa);
  loop.mov(kR3, 0);
  loop.call(kHelperTailCall);
  loop.ret(kActPass);
  progs_.push_back(loop.build().value());
  maps_.get(pa)->set_prog(0, 0);

  net::Packet pkt(64);
  auto r = run(progs_[0], pkt);
  EXPECT_TRUE(r.aborted);
  EXPECT_NE(r.error.find("tail call"), std::string::npos);
}

TEST_F(VmTest, RedirectHelperSetsTarget) {
  ProgramBuilder b("redir", HookType::kXdp);
  b.mov(kR1, 42);
  b.call(kHelperRedirect);
  b.exit();
  net::Packet pkt(64);
  auto r = run(b.build().value(), pkt);
  EXPECT_EQ(r.ret, kActRedirect);
  EXPECT_EQ(r.redirect_ifindex, 42);
}

TEST_F(VmTest, CyclesScaleWithInstructionCount) {
  ProgramBuilder b10("p10", HookType::kXdp);
  for (int i = 0; i < 10; ++i) b10.mov(kR0, i);
  b10.exit();
  ProgramBuilder b100("p100", HookType::kXdp);
  for (int i = 0; i < 100; ++i) b100.mov(kR0, i);
  b100.exit();
  net::Packet pkt(64);
  auto small = run(b10.build().value(), pkt);
  auto big = run(b100.build().value(), pkt);
  EXPECT_EQ(big.cycles - small.cycles, 90 * cost_.bpf_insn);
}

TEST_F(VmTest, MapLookupThroughHelper) {
  std::uint32_t map_id = maps_.create("h", MapType::kHash, 4, 8, 16);
  std::uint32_t key = 7;
  std::uint64_t value = 0xdeadbeef;
  maps_.get(map_id)->update(reinterpret_cast<std::uint8_t*>(&key),
                            reinterpret_cast<std::uint8_t*>(&value));

  ProgramBuilder b("lookup", HookType::kXdp);
  b.mov_reg(kR2, kR10);
  b.add(kR2, -8);
  b.st(kR2, 0, 7, MemSize::kU32);
  b.mov(kR1, map_id);
  b.call(kHelperMapLookup);
  b.jeq(kR0, 0, "miss");
  b.ldx(kR0, kR0, 0, MemSize::kU64);
  b.exit();
  b.label("miss");
  b.ret(0);
  net::Packet pkt(64);
  auto r = run(b.build().value(), pkt);
  EXPECT_FALSE(r.aborted) << r.error;
  EXPECT_EQ(r.ret, 0xdeadbeefu);
}

// be16/be32 are 16/32-bit conversions: on a register whose high bits are
// set they must truncate before swapping, on both engines (the fused
// ldx+be handlers share this edge).
TEST_F(VmTest, ByteswapTruncatesHighBitsOnBothEngines) {
  for (ExecEngine engine : kEngines) {
    ProgramBuilder b16("be16hi", HookType::kXdp);
    b16.mov(kR0, 0x11223344);
    b16.lsh(kR0, 16);
    b16.or_(kR0, 0x5566);  // r0 = 0x1122_3344_5566
    b16.be16(kR0);
    b16.exit();
    net::Packet pkt(64);
    auto r = run_engine(b16.build().value(), pkt, engine);
    EXPECT_EQ(r.ret, 0x6655u) << exec_engine_name(engine);

    ProgramBuilder b32("be32hi", HookType::kXdp);
    b32.mov(kR0, 0x11223344);
    b32.lsh(kR0, 16);
    b32.or_(kR0, 0x5566);
    b32.be32(kR0);
    b32.exit();
    r = run_engine(b32.build().value(), pkt, engine);
    EXPECT_EQ(r.ret, 0x66554433u) << exec_engine_name(engine);
  }
}

// Sub-64-bit loads zero-extend: a u64 of all-ones read back at u32/u16/u8
// widths must yield exactly the low bytes.
TEST_F(VmTest, NarrowLoadsZeroExtendOnBothEngines) {
  struct Case {
    MemSize size;
    std::uint64_t want;
  };
  const Case cases[] = {{MemSize::kU32, 0xFFFFFFFFu},
                        {MemSize::kU16, 0xFFFFu},
                        {MemSize::kU8, 0xFFu}};
  for (ExecEngine engine : kEngines) {
    for (const Case& c : cases) {
      ProgramBuilder b("zext", HookType::kXdp);
      b.mov_reg(kR2, kR10);
      b.add(kR2, -8);
      b.mov(kR3, -1);  // 0xFFFF...FF
      b.stx(kR2, 0, kR3, MemSize::kU64);
      b.ldx(kR0, kR2, 0, c.size);
      b.exit();
      net::Packet pkt(64);
      auto r = run_engine(b.build().value(), pkt, engine);
      EXPECT_EQ(r.ret, c.want) << exec_engine_name(engine);
    }
  }
}

// Division/modulo by zero abort identically (same flag, same error string,
// same charged cycles) and kArsh stays an arithmetic (sign-extending) shift.
TEST_F(VmTest, DivModByZeroAndArshEdgesOnBothEngines) {
  auto raw = [](Op op, std::int64_t lhs, std::int64_t rhs) {
    Program p;
    p.name = "aluedge";
    p.insns.push_back({Op::kMov, kR0, 0, true, 0, lhs, MemSize::kU64});
    p.insns.push_back({Op::kMov, kR1, 0, true, 0, rhs, MemSize::kU64});
    p.insns.push_back({op, kR0, kR1, false, 0, 0, MemSize::kU64});
    p.insns.push_back({Op::kExit, 0, 0, true, 0, 0, MemSize::kU64});
    return p;
  };

  net::Packet pkt(64);
  for (Op op : {Op::kDiv, Op::kMod}) {
    auto ri = run_engine(raw(op, 5, 0), pkt, ExecEngine::kInterpreter);
    auto rj = run_engine(raw(op, 5, 0), pkt, ExecEngine::kJit);
    EXPECT_TRUE(ri.aborted);
    EXPECT_TRUE(rj.aborted);
    EXPECT_EQ(ri.error, rj.error);
    EXPECT_EQ(ri.cycles, rj.cycles);
    EXPECT_EQ(ri.insns_executed, rj.insns_executed);
    EXPECT_NE(rj.error.find("zero"), std::string::npos) << rj.error;
  }
  for (ExecEngine engine : kEngines) {
    EXPECT_EQ(run_engine(raw(Op::kDiv, 7, 2), pkt, engine).ret, 3u);
    EXPECT_EQ(run_engine(raw(Op::kMod, 7, 2), pkt, engine).ret, 1u);
    // -8 >> 1 arithmetic = -4; logical would give a huge positive.
    EXPECT_EQ(run_engine(raw(Op::kArsh, -8, 1), pkt, engine).ret,
              static_cast<std::uint64_t>(-4));
    EXPECT_EQ(run_engine(raw(Op::kRsh, -8, 1), pkt, engine).ret,
              static_cast<std::uint64_t>(-8) >> 1);
  }
}

TEST_F(VmTest, InstructionBudgetGuard) {
  // Without back-edge rejection at load time, a self-jump would spin; the
  // VM's budget still catches it.
  Program p;
  p.name = "spin";
  p.insns.push_back({Op::kJa, 0, 0, true, -1, 0, MemSize::kU64});
  net::Packet pkt(64);
  auto r = run(p, pkt);
  EXPECT_TRUE(r.aborted);
}

}  // namespace
}  // namespace linuxfp::ebpf
