#include "ebpf/verifier.h"

#include <gtest/gtest.h>

#include "ebpf/builder.h"
#include "ebpf/kernel_helpers.h"

namespace linuxfp::ebpf {
namespace {

class VerifierTest : public ::testing::Test {
 protected:
  VerifierTest() {
    register_all_helpers(helpers_, cost_);
    opts_.helpers = &helpers_;
    opts_.maps = &maps_;
  }

  util::Status verify_prog(const Program& p) { return verify(p, opts_); }

  kern::CostModel cost_;
  HelperRegistry helpers_;
  MapSet maps_;
  VerifyOptions opts_;
};

TEST_F(VerifierTest, AcceptsMinimalProgram) {
  ProgramBuilder b("ok", HookType::kXdp);
  b.ret(kActPass);
  EXPECT_TRUE(verify_prog(b.build().value()).ok());
}

TEST_F(VerifierTest, RejectsEmptyProgram) {
  Program p;
  EXPECT_FALSE(verify_prog(p).ok());
}

TEST_F(VerifierTest, RejectsExitWithUninitializedR0) {
  Program p;
  p.insns.push_back({Op::kExit, 0, 0, true, 0, 0, MemSize::kU64});
  auto st = verify_prog(p);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, "verifier.r0_uninit");
}

TEST_F(VerifierTest, RejectsUninitializedRegisterRead) {
  ProgramBuilder b("uninit", HookType::kXdp);
  b.mov_reg(kR0, kR5);  // r5 never written
  b.exit();
  auto st = verify_prog(b.build().value());
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, "verifier.uninit");
}

TEST_F(VerifierTest, RejectsPacketAccessWithoutBoundsCheck) {
  ProgramBuilder b("nobounds", HookType::kXdp);
  b.mov_reg(kR6, kR1);
  b.ldx(kR7, kR6, kCtxData, MemSize::kU64);
  b.ldx(kR0, kR7, 0, MemSize::kU16);  // no check against data_end
  b.exit();
  auto st = verify_prog(b.build().value());
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, "verifier.pkt_unverified");
}

TEST_F(VerifierTest, AcceptsPacketAccessAfterBoundsCheck) {
  ProgramBuilder b("bounds", HookType::kXdp);
  b.mov_reg(kR6, kR1);
  b.ldx(kR7, kR6, kCtxData, MemSize::kU64);
  b.ldx(kR8, kR6, kCtxDataEnd, MemSize::kU64);
  b.mov_reg(kR2, kR7);
  b.add(kR2, 14);
  b.jgt_reg(kR2, kR8, "out");
  b.ldx(kR0, kR7, 12, MemSize::kU16);
  b.exit();
  b.label("out");
  b.ret(kActPass);
  auto st = verify_prog(b.build().value());
  EXPECT_TRUE(st.ok()) << (st.ok() ? "" : st.error().message);
}

TEST_F(VerifierTest, BoundsCheckDoesNotLeakToUncheckedOffsets) {
  ProgramBuilder b("partial", HookType::kXdp);
  b.mov_reg(kR6, kR1);
  b.ldx(kR7, kR6, kCtxData, MemSize::kU64);
  b.ldx(kR8, kR6, kCtxDataEnd, MemSize::kU64);
  b.mov_reg(kR2, kR7);
  b.add(kR2, 14);
  b.jgt_reg(kR2, kR8, "out");
  b.ldx(kR0, kR7, 20, MemSize::kU32);  // beyond the 14 verified bytes
  b.exit();
  b.label("out");
  b.ret(kActPass);
  auto st = verify_prog(b.build().value());
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, "verifier.pkt_unverified");
}

TEST_F(VerifierTest, RejectsBackwardJump) {
  Program p;
  p.insns.push_back({Op::kMov, kR0, 0, true, 0, 0, MemSize::kU64});
  p.insns.push_back({Op::kJa, 0, 0, true, -2, 0, MemSize::kU64});
  p.insns.push_back({Op::kExit, 0, 0, true, 0, 0, MemSize::kU64});
  auto st = verify_prog(p);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, "verifier.back_edge");
}

TEST_F(VerifierTest, RejectsJumpOutOfRange) {
  Program p;
  p.insns.push_back({Op::kJa, 0, 0, true, 100, 0, MemSize::kU64});
  auto st = verify_prog(p);
  EXPECT_EQ(st.error().code, "verifier.jump_oob");
}

TEST_F(VerifierTest, RejectsFallOffEnd) {
  Program p;
  p.insns.push_back({Op::kMov, kR0, 0, true, 0, 0, MemSize::kU64});
  auto st = verify_prog(p);
  EXPECT_EQ(st.error().code, "verifier.fallthrough");
}

TEST_F(VerifierTest, RejectsStackOutOfBounds) {
  ProgramBuilder b("stackoob", HookType::kXdp);
  b.mov_reg(kR2, kR10);
  b.add(kR2, -520);  // below the frame
  b.st(kR2, 0, 1, MemSize::kU64);
  b.ret(kActPass);
  auto st = verify_prog(b.build().value());
  EXPECT_EQ(st.error().code, "verifier.stack_oob");
}

TEST_F(VerifierTest, RejectsWriteToFramePointer) {
  ProgramBuilder b("fp", HookType::kXdp);
  b.mov(kR10, 0);
  b.ret(kActPass);
  EXPECT_EQ(verify_prog(b.build().value()).error().code,
            "verifier.fp_write");
}

TEST_F(VerifierTest, RejectsUnknownHelper) {
  ProgramBuilder b("badhelper", HookType::kXdp);
  b.mov(kR1, 0);
  b.call(9999);
  b.ret(kActPass);
  EXPECT_EQ(verify_prog(b.build().value()).error().code,
            "verifier.helper_unknown");
}

TEST_F(VerifierTest, CapabilityPruningRejectsFdbHelperOnMainline) {
  HelperRegistry mainline;
  register_mainline_helpers(mainline, cost_);
  VerifyOptions opts;
  opts.helpers = &mainline;
  ProgramBuilder b("fdb", HookType::kXdp);
  b.mov_reg(kR6, kR1);
  b.mov_reg(kR9, kR10);
  b.add(kR9, -64);
  b.mov_reg(kR1, kR6);
  b.mov_reg(kR2, kR9);
  b.call(kHelperFdbLookup);
  b.ret(kActPass);
  auto st = verify(b.build().value(), opts);
  EXPECT_EQ(st.error().code, "verifier.helper_unknown");
}

TEST_F(VerifierTest, RejectsMapValueDerefWithoutNullCheck) {
  std::uint32_t map_id = maps_.create("m", MapType::kHash, 4, 8, 4);
  ProgramBuilder b("nonull", HookType::kXdp);
  b.mov_reg(kR2, kR10);
  b.add(kR2, -8);
  b.st(kR2, 0, 1, MemSize::kU32);
  b.mov(kR1, map_id);
  b.call(kHelperMapLookup);
  b.ldx(kR0, kR0, 0, MemSize::kU64);  // no null check
  b.exit();
  EXPECT_EQ(verify_prog(b.build().value()).error().code,
            "verifier.maybe_null");
}

TEST_F(VerifierTest, AcceptsMapValueDerefAfterNullCheck) {
  std::uint32_t map_id = maps_.create("m", MapType::kHash, 4, 8, 4);
  ProgramBuilder b("null_ok", HookType::kXdp);
  b.mov_reg(kR2, kR10);
  b.add(kR2, -8);
  b.st(kR2, 0, 1, MemSize::kU32);
  b.mov(kR1, map_id);
  b.call(kHelperMapLookup);
  b.jeq(kR0, 0, "miss");
  b.ldx(kR0, kR0, 0, MemSize::kU64);
  b.exit();
  b.label("miss");
  b.ret(0);
  auto st = verify_prog(b.build().value());
  EXPECT_TRUE(st.ok()) << (st.ok() ? "" : st.error().message);
}

TEST_F(VerifierTest, RejectsMapValueOutOfBounds) {
  std::uint32_t map_id = maps_.create("m", MapType::kHash, 4, 8, 4);
  ProgramBuilder b("mv_oob", HookType::kXdp);
  b.mov_reg(kR2, kR10);
  b.add(kR2, -8);
  b.st(kR2, 0, 1, MemSize::kU32);
  b.mov(kR1, map_id);
  b.call(kHelperMapLookup);
  b.jeq(kR0, 0, "miss");
  b.ldx(kR0, kR0, 4, MemSize::kU64);  // 4+8 > value_size 8
  b.exit();
  b.label("miss");
  b.ret(0);
  EXPECT_EQ(verify_prog(b.build().value()).error().code,
            "verifier.mapvalue_oob");
}

TEST_F(VerifierTest, RejectsPointerLeakToPacket) {
  ProgramBuilder b("leak", HookType::kXdp);
  b.mov_reg(kR6, kR1);
  b.ldx(kR7, kR6, kCtxData, MemSize::kU64);
  b.ldx(kR8, kR6, kCtxDataEnd, MemSize::kU64);
  b.mov_reg(kR2, kR7);
  b.add(kR2, 16);
  b.jgt_reg(kR2, kR8, "out");
  b.stx(kR7, 0, kR10, MemSize::kU64);  // write stack ptr into the packet
  b.label("out");
  b.ret(kActPass);
  EXPECT_EQ(verify_prog(b.build().value()).error().code,
            "verifier.ptr_leak");
}

TEST_F(VerifierTest, RejectsCtxStoreToReadOnlyFields) {
  ProgramBuilder b("ctxw", HookType::kXdp);
  b.st(kR1, kCtxData, 0, MemSize::kU64);
  b.ret(kActPass);
  EXPECT_EQ(verify_prog(b.build().value()).error().code, "verifier.ctx_ro");
}

TEST_F(VerifierTest, RejectsVariablePointerArithmetic) {
  ProgramBuilder b("varptr", HookType::kXdp);
  b.mov_reg(kR6, kR1);
  b.ldx(kR7, kR6, kCtxData, MemSize::kU64);
  b.ldx(kR3, kR6, kCtxIfindex, MemSize::kU64);  // unknown scalar
  b.add_reg(kR7, kR3);
  b.ret(kActPass);
  EXPECT_EQ(verify_prog(b.build().value()).error().code, "verifier.var_ptr");
}

TEST_F(VerifierTest, RejectsScalarDereference) {
  ProgramBuilder b("scalarptr", HookType::kXdp);
  b.mov(kR2, 1234);
  b.ldx(kR0, kR2, 0, MemSize::kU64);
  b.exit();
  EXPECT_EQ(verify_prog(b.build().value()).error().code, "verifier.bad_ptr");
}

TEST_F(VerifierTest, RejectsOverlongProgram) {
  Program p;
  for (std::size_t i = 0; i < kMaxInsns + 1; ++i) {
    p.insns.push_back({Op::kMov, kR0, 0, true, 0, 0, MemSize::kU64});
  }
  p.insns.push_back({Op::kExit, 0, 0, true, 0, 0, MemSize::kU64});
  EXPECT_EQ(verify_prog(p).error().code, "verifier.too_long");
}

TEST_F(VerifierTest, BothBranchesAreExplored) {
  // The taken branch is fine; the fall-through dereferences the packet
  // without a check — must still be rejected.
  ProgramBuilder b("paths", HookType::kXdp);
  b.mov_reg(kR6, kR1);
  b.ldx(kR7, kR6, kCtxData, MemSize::kU64);
  b.ldx(kR3, kR6, kCtxIfindex, MemSize::kU64);
  b.jeq(kR3, 7, "safe");
  b.ldx(kR0, kR7, 0, MemSize::kU8);  // unchecked!
  b.exit();
  b.label("safe");
  b.ret(kActPass);
  EXPECT_EQ(verify_prog(b.build().value()).error().code,
            "verifier.pkt_unverified");
}

TEST_F(VerifierTest, StatsReportExploration) {
  ProgramBuilder b("stats", HookType::kXdp);
  b.mov(kR3, 1);
  b.jeq(kR3, 1, "a");
  b.label("a");
  b.jeq(kR3, 2, "b");
  b.label("b");
  b.ret(kActPass);
  VerifyStats stats;
  ASSERT_TRUE(verify(b.build().value(), opts_, &stats).ok());
  EXPECT_GE(stats.paths_explored, 3u);
  EXPECT_GT(stats.states_visited, 0u);
}

}  // namespace
}  // namespace linuxfp::ebpf
