// AF_XDP socket tests: XDP programs redirect selected frames into a
// user-space socket through an XSK map (paper §VIII future work).
#include "ebpf/afxdp.h"

#include <gtest/gtest.h>

#include "ebpf/builder.h"
#include "ebpf/kernel_helpers.h"
#include "ebpf/loader.h"
#include "kernel/commands.h"

namespace linuxfp::ebpf {
namespace {

class AfXdpTest : public ::testing::Test {
 protected:
  AfXdpTest() : kernel_("host") {
    register_all_helpers(helpers_, kernel_.cost());
    kernel_.add_phys_dev("eth0");
    (void)kernel_.set_link_up("eth0", true);
    eth0_ = kernel_.dev_by_name("eth0")->ifindex();
  }

  // Program: UDP packets to port 9999 go to user space; rest pass.
  Program sampler(std::uint32_t xsk_map_id) {
    ProgramBuilder b("sampler", HookType::kXdp);
    b.mov_reg(kR6, kR1);
    b.ldx(kR7, kR6, kCtxData, MemSize::kU64);
    b.ldx(kR8, kR6, kCtxDataEnd, MemSize::kU64);
    b.mov_reg(kR2, kR7);
    b.add(kR2, 38);
    b.jgt_reg(kR2, kR8, "pass");
    b.ldx(kR2, kR7, 12, MemSize::kU16);
    b.be16(kR2);
    b.jne(kR2, 0x0800, "pass");
    b.ldx(kR2, kR7, 23, MemSize::kU8);
    b.jne(kR2, 17, "pass");
    b.ldx(kR2, kR7, 36, MemSize::kU16);
    b.be16(kR2);
    b.jne(kR2, 9999, "pass");
    b.mov(kR1, xsk_map_id);
    b.mov(kR2, 0);  // XSK map slot 0
    b.call(kHelperRedirectMap);
    b.exit();
    b.label("pass");
    b.ret(kActPass);
    return b.build().value();
  }

  net::Packet udp_to(std::uint16_t dport) {
    net::FlowKey f;
    f.src_ip = net::Ipv4Addr::parse("10.0.0.2").value();
    f.dst_ip = net::Ipv4Addr::parse("10.0.0.1").value();
    f.proto = net::kIpProtoUdp;
    f.src_port = 5;
    f.dst_port = dport;
    return net::build_udp_packet(net::MacAddr::from_id(1),
                                 net::MacAddr::from_id(2), f, 80);
  }

  kern::Kernel kernel_;
  HelperRegistry helpers_;
  int eth0_ = 0;
};

TEST_F(AfXdpTest, SelectedTrafficDeliveredToUserspace) {
  Attachment att("xsk", HookType::kXdp, kernel_, helpers_);
  AfXdpSocket socket;
  std::uint32_t slot = att.register_xsk(&socket);
  std::uint32_t map_id = att.maps().create("xsks", MapType::kXskMap, 4, 4, 4);
  std::uint32_t key = 0;
  ASSERT_TRUE(att.maps()
                  .get(map_id)
                  ->update(reinterpret_cast<std::uint8_t*>(&key),
                           reinterpret_cast<std::uint8_t*>(&slot))
                  .ok());
  auto id = att.load(sampler(map_id));
  ASSERT_TRUE(id.ok()) << id.error().message;
  ASSERT_TRUE(att.set_entry(id.value()).ok());
  ASSERT_TRUE(attach_to_device(kernel_, "eth0", HookType::kXdp, &att).ok());

  // Matching packet: consumed by user space, never enters the stack.
  kern::CycleTrace t1;
  auto summary = kernel_.rx(eth0_, udp_to(9999), t1);
  EXPECT_TRUE(summary.fast_path);
  EXPECT_EQ(kernel_.counters().slow_path_packets, 0u);
  ASSERT_EQ(socket.pending(), 1u);
  auto frame = socket.poll();
  ASSERT_TRUE(frame.has_value());
  auto parsed = net::parse_packet(*frame);
  EXPECT_EQ(parsed->dst_port, 9999);
  EXPECT_FALSE(socket.poll().has_value());

  // Non-matching packet: passes to the stack.
  kern::CycleTrace t2;
  kernel_.rx(eth0_, udp_to(80), t2);
  EXPECT_EQ(kernel_.counters().slow_path_packets, 1u);
  EXPECT_EQ(socket.pending(), 0u);
  EXPECT_EQ(att.stats().to_userspace, 1u);
}

TEST_F(AfXdpTest, EmptyXskSlotAborts) {
  Attachment att("xsk", HookType::kXdp, kernel_, helpers_);
  std::uint32_t map_id = att.maps().create("xsks", MapType::kXskMap, 4, 4, 4);
  auto id = att.load(sampler(map_id));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(att.set_entry(id.value()).ok());
  net::Packet pkt = udp_to(9999);
  auto result = att.run(pkt, eth0_);
  // redirect_map on an empty slot returns XDP_ABORTED -> packet continues
  // to the stack (fail open).
  EXPECT_EQ(result.verdict, kern::PacketProgram::Verdict::kAborted);
}

TEST_F(AfXdpTest, RingOverflowCounted) {
  AfXdpSocket tiny(/*ring_size=*/2);
  tiny.push_rx(net::Packet(64));
  tiny.push_rx(net::Packet(64));
  tiny.push_rx(net::Packet(64));  // dropped
  EXPECT_EQ(tiny.pending(), 2u);
  EXPECT_EQ(tiny.stats().rx_ring_full, 1u);
  EXPECT_EQ(tiny.stats().rx_delivered, 2u);
}

TEST_F(AfXdpTest, TxInjectsThroughDevice) {
  std::vector<net::Packet> wire;
  kernel_.dev_by_name("eth0")->set_phys_tx(
      [&](net::Packet&& p) { wire.push_back(std::move(p)); });
  AfXdpSocket socket;
  socket.send(kernel_, eth0_, udp_to(53));
  ASSERT_EQ(wire.size(), 1u);
  EXPECT_EQ(socket.stats().tx_sent, 1u);
  EXPECT_EQ(net::parse_packet(wire[0])->dst_port, 53);
}

}  // namespace
}  // namespace linuxfp::ebpf
