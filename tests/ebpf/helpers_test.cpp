// Kernel-bound helper tests: the state-unification mechanism. Each helper is
// exercised through a real program so the full ctx/stack/verifier path runs.
#include <gtest/gtest.h>

#include "ebpf/builder.h"
#include "ebpf/kernel_helpers.h"
#include "ebpf/verifier.h"
#include "ebpf/vm.h"
#include "tests/kernel/test_topo.h"

namespace linuxfp::ebpf {
namespace {

using linuxfp::testing::RouterDut;

class HelpersTest : public ::testing::Test {
 protected:
  HelpersTest() { register_all_helpers(helpers_, cost_); }

  VmResult run_on(kern::Kernel& kernel, const Program& prog, net::Packet& pkt,
                  int ifindex) {
    VerifyOptions opts;
    opts.helpers = &helpers_;
    opts.maps = &maps_;
    auto st = verify(prog, opts);
    EXPECT_TRUE(st.ok()) << (st.ok() ? "" : st.error().message);
    Vm vm(cost_, helpers_, maps_, nullptr);
    return vm.run(prog, pkt, ifindex, &kernel);
  }

  // Program: fib_lookup for the packet's dst; on success return
  // out_ifindex, else return 1000 + helper return code.
  Program fib_probe() {
    ProgramBuilder b("fib_probe", HookType::kXdp);
    b.mov_reg(kR6, kR1);
    b.ldx(kR7, kR6, kCtxData, MemSize::kU64);
    b.ldx(kR8, kR6, kCtxDataEnd, MemSize::kU64);
    b.mov_reg(kR2, kR7);
    b.add(kR2, 34);
    b.jgt_reg(kR2, kR8, "short");
    b.mov_reg(kR9, kR10);
    b.add(kR9, -64);
    b.ldx(kR2, kR6, kCtxIfindex, MemSize::kU64);
    b.stx(kR9, kFibParamIfindex, kR2, MemSize::kU32);
    b.ldx(kR2, kR7, 30, MemSize::kU32);
    b.be32(kR2);
    b.stx(kR9, kFibParamDst, kR2, MemSize::kU32);
    b.mov_reg(kR1, kR6);
    b.mov_reg(kR2, kR9);
    b.mov(kR3, kFibParamSize);
    b.mov(kR4, 0);
    b.call(kHelperFibLookup);
    b.jne(kR0, 0, "fail");
    b.ldx(kR0, kR9, kFibParamOutIfindex, MemSize::kU32);
    b.exit();
    b.label("fail");
    b.add(kR0, 1000);
    b.exit();
    b.label("short");
    b.ret(999);
    return b.build().value();
  }

  kern::CostModel cost_;
  HelperRegistry helpers_;
  MapSet maps_;
};

TEST_F(HelpersTest, FibLookupReadsLiveKernelState) {
  RouterDut dut;
  dut.add_prefixes(3);
  net::Packet pkt = dut.packet_to_prefix(1);
  auto r = run_on(dut.kernel, fib_probe(), pkt, dut.eth0_ifindex());
  ASSERT_FALSE(r.aborted) << r.error;
  EXPECT_EQ(r.ret, static_cast<std::uint64_t>(dut.eth1_ifindex()));

  // Route removal is visible to the very next helper call — no resync.
  dut.run("ip route del 10.101.0.0/24");
  net::Packet pkt2 = dut.packet_to_prefix(1);
  auto r2 = run_on(dut.kernel, fib_probe(), pkt2, dut.eth0_ifindex());
  EXPECT_EQ(r2.ret, 1000 + kFibLkupNotFwded);
}

TEST_F(HelpersTest, FibLookupReturnsNoNeighWhenUnresolved) {
  RouterDut dut;
  dut.run("ip route add 10.200.0.0/24 via 10.10.2.77 dev eth1");
  net::FlowKey f;
  f.src_ip = net::Ipv4Addr::parse("10.10.1.2").value();
  f.dst_ip = net::Ipv4Addr::parse("10.200.0.1").value();
  net::Packet pkt =
      net::build_udp_packet(dut.src_host_mac, dut.eth0_mac(), f, 64);
  auto r = run_on(dut.kernel, fib_probe(), pkt, dut.eth0_ifindex());
  EXPECT_EQ(r.ret, 1000 + kFibLkupNoNeigh);
}

TEST_F(HelpersTest, FibLookupFillsMacs) {
  RouterDut dut;
  dut.add_prefixes(1);
  // Variant returning first smac byte for inspection.
  ProgramBuilder b("fib_macs", HookType::kXdp);
  b.mov_reg(kR6, kR1);
  b.ldx(kR7, kR6, kCtxData, MemSize::kU64);
  b.ldx(kR8, kR6, kCtxDataEnd, MemSize::kU64);
  b.mov_reg(kR2, kR7);
  b.add(kR2, 34);
  b.jgt_reg(kR2, kR8, "short");
  b.mov_reg(kR9, kR10);
  b.add(kR9, -64);
  b.ldx(kR2, kR7, 30, MemSize::kU32);
  b.be32(kR2);
  b.stx(kR9, kFibParamDst, kR2, MemSize::kU32);
  b.mov_reg(kR1, kR6);
  b.mov_reg(kR2, kR9);
  b.call(kHelperFibLookup);
  b.jne(kR0, 0, "short");
  b.ldx(kR0, kR9, kFibParamDmac, MemSize::kU32);
  b.exit();
  b.label("short");
  b.ret(0);
  net::Packet pkt = dut.packet_to_prefix(0);
  auto r = run_on(dut.kernel, b.build().value(), pkt, dut.eth0_ifindex());
  // First 4 bytes of the sink gateway MAC, little-endian packed.
  const auto& mac = dut.sink_gw_mac.bytes();
  std::uint32_t expect = std::uint32_t{mac[0]} | std::uint32_t{mac[1]} << 8 |
                         std::uint32_t{mac[2]} << 16 |
                         std::uint32_t{mac[3]} << 24;
  EXPECT_EQ(r.ret, expect);
}

Program fdb_probe() {
  ProgramBuilder b("fdb_probe", HookType::kXdp);
  b.mov_reg(kR6, kR1);
  b.ldx(kR7, kR6, kCtxData, MemSize::kU64);
  b.ldx(kR8, kR6, kCtxDataEnd, MemSize::kU64);
  b.mov_reg(kR2, kR7);
  b.add(kR2, 14);
  b.jgt_reg(kR2, kR8, "short");
  b.mov_reg(kR9, kR10);
  b.add(kR9, -64);
  b.ldx(kR2, kR6, kCtxIfindex, MemSize::kU64);
  b.stx(kR9, kFdbParamIfindex, kR2, MemSize::kU32);
  b.st(kR9, kFdbParamVlan, 0, MemSize::kU16);
  b.ldx(kR2, kR7, 0, MemSize::kU32);
  b.stx(kR9, kFdbParamDmac, kR2, MemSize::kU32);
  b.ldx(kR2, kR7, 4, MemSize::kU16);
  b.stx(kR9, kFdbParamDmac + 4, kR2, MemSize::kU16);
  b.ldx(kR2, kR7, 6, MemSize::kU32);
  b.stx(kR9, kFdbParamSmac, kR2, MemSize::kU32);
  b.ldx(kR2, kR7, 10, MemSize::kU16);
  b.stx(kR9, kFdbParamSmac + 4, kR2, MemSize::kU16);
  b.mov_reg(kR1, kR6);
  b.mov_reg(kR2, kR9);
  b.call(kHelperFdbLookup);
  b.jne(kR0, 0, "code");
  b.ldx(kR0, kR9, kFdbParamOutIfindex, MemSize::kU32);
  b.exit();
  b.label("code");
  b.add(kR0, 1000);
  b.exit();
  b.label("short");
  b.ret(999);
  return b.build().value();
}

TEST_F(HelpersTest, FdbLookupFindsLearnedStations) {
  kern::Kernel k("br");
  k.add_phys_dev("p1");
  k.add_phys_dev("p2");
  ASSERT_TRUE(kern::run_command(k, "brctl addbr br0").ok());
  for (const char* d : {"p1", "p2", "br0"}) {
    ASSERT_TRUE(
        kern::run_command(k, std::string("ip link set ") + d + " up").ok());
  }
  ASSERT_TRUE(kern::run_command(k, "brctl addif br0 p1").ok());
  ASSERT_TRUE(kern::run_command(k, "brctl addif br0 p2").ok());

  auto a = net::MacAddr::from_id(0xA);
  auto b_mac = net::MacAddr::from_id(0xB);
  int p1 = k.dev_by_name("p1")->ifindex();
  int p2 = k.dev_by_name("p2")->ifindex();
  kern::Bridge* br = k.bridge_by_name("br0");
  br->fdb_learn(a, 0, p1, k.now_ns());
  br->fdb_learn(b_mac, 0, p2, k.now_ns());

  net::FlowKey f;
  f.src_ip = net::Ipv4Addr::parse("1.1.1.1").value();
  f.dst_ip = net::Ipv4Addr::parse("2.2.2.2").value();
  net::Packet pkt = net::build_udp_packet(a, b_mac, f, 64);
  auto r = run_on(k, fdb_probe(), pkt, p1);
  ASSERT_FALSE(r.aborted) << r.error;
  EXPECT_EQ(r.ret, static_cast<std::uint64_t>(p2));

  // Unknown destination -> miss code (slow path floods).
  net::Packet pkt2 =
      net::build_udp_packet(a, net::MacAddr::from_id(0xC), f, 64);
  auto r2 = run_on(k, fdb_probe(), pkt2, p1);
  EXPECT_EQ(r2.ret, 1000 + kFdbLkupMiss);

  // Unknown *source* -> learn punt (slow path learns).
  net::Packet pkt3 =
      net::build_udp_packet(net::MacAddr::from_id(0xD), b_mac, f, 64);
  auto r3 = run_on(k, fdb_probe(), pkt3, p1);
  EXPECT_EQ(r3.ret, 1000 + kFdbLkupLearn);
}

TEST_F(HelpersTest, FdbLookupRefreshesAging) {
  kern::Kernel k("br");
  k.add_phys_dev("p1");
  k.add_phys_dev("p2");
  ASSERT_TRUE(kern::run_command(k, "brctl addbr br0").ok());
  for (const char* d : {"p1", "p2", "br0"}) {
    ASSERT_TRUE(
        kern::run_command(k, std::string("ip link set ") + d + " up").ok());
  }
  ASSERT_TRUE(kern::run_command(k, "brctl addif br0 p1").ok());
  ASSERT_TRUE(kern::run_command(k, "brctl addif br0 p2").ok());

  auto a = net::MacAddr::from_id(0xA);
  auto b_mac = net::MacAddr::from_id(0xB);
  int p1 = k.dev_by_name("p1")->ifindex();
  int p2 = k.dev_by_name("p2")->ifindex();
  kern::Bridge* br = k.bridge_by_name("br0");
  br->fdb_learn(a, 0, p1, k.now_ns());
  br->fdb_learn(b_mac, 0, p2, k.now_ns());

  // Advance close to the aging limit, then run the fast path: the helper
  // refreshes the source entry.
  k.set_now_ns(k.now_ns() + 299'000'000'000ull);
  net::FlowKey f;
  f.src_ip = net::Ipv4Addr::parse("1.1.1.1").value();
  f.dst_ip = net::Ipv4Addr::parse("2.2.2.2").value();
  net::Packet pkt = net::build_udp_packet(a, b_mac, f, 64);
  run_on(k, fdb_probe(), pkt, p1);

  // Aging now removes only the un-refreshed destination entry.
  EXPECT_EQ(br->fdb_age(k.now_ns() + 2'000'000'000ull), 1u);
  EXPECT_NE(br->fdb_lookup(a, 0), nullptr);
  EXPECT_EQ(br->fdb_lookup(b_mac, 0), nullptr);
}

TEST_F(HelpersTest, IptLookupEvaluatesLiveRules) {
  RouterDut dut;
  dut.add_prefixes(1);
  dut.run("iptables -A FORWARD -s 10.10.1.0/24 -d 10.100.0.0/24 -j DROP");

  ProgramBuilder b("ipt_probe", HookType::kXdp);
  b.mov_reg(kR6, kR1);
  b.ldx(kR7, kR6, kCtxData, MemSize::kU64);
  b.ldx(kR8, kR6, kCtxDataEnd, MemSize::kU64);
  b.mov_reg(kR2, kR7);
  b.add(kR2, 34);
  b.jgt_reg(kR2, kR8, "short");
  b.mov_reg(kR9, kR10);
  b.add(kR9, -64);
  b.ldx(kR2, kR7, 26, MemSize::kU32);
  b.be32(kR2);
  b.stx(kR9, kIptParamSrc, kR2, MemSize::kU32);
  b.ldx(kR2, kR7, 30, MemSize::kU32);
  b.be32(kR2);
  b.stx(kR9, kIptParamDst, kR2, MemSize::kU32);
  b.ldx(kR2, kR7, 23, MemSize::kU8);
  b.stx(kR9, kIptParamProto, kR2, MemSize::kU8);
  b.st(kR9, kIptParamHook, kIptHookForward, MemSize::kU8);
  b.st(kR9, kIptParamSport, 0, MemSize::kU16);
  b.st(kR9, kIptParamDport, 0, MemSize::kU16);
  b.st(kR9, kIptParamInIf, 0, MemSize::kU32);
  b.st(kR9, kIptParamOutIf, 0, MemSize::kU32);
  b.mov_reg(kR1, kR6);
  b.mov_reg(kR2, kR9);
  b.call(kHelperIptLookup);
  b.exit();
  b.label("short");
  b.ret(999);
  Program prog = b.build().value();

  net::Packet blocked = dut.packet_to_prefix(0);  // dst 10.100.0.9
  auto r = run_on(dut.kernel, prog, blocked, dut.eth0_ifindex());
  EXPECT_EQ(r.ret, kIptVerdictDrop);

  // Flush the chain: the helper immediately sees ACCEPT.
  dut.run("iptables -F FORWARD");
  net::Packet ok = dut.packet_to_prefix(0);
  auto r2 = run_on(dut.kernel, prog, ok, dut.eth0_ifindex());
  EXPECT_EQ(r2.ret, kIptVerdictAccept);
}

TEST_F(HelpersTest, CtLookupMissThenHit) {
  RouterDut dut;
  dut.kernel.set_conntrack_enabled(true);

  ProgramBuilder b("ct_probe", HookType::kXdp);
  b.mov_reg(kR6, kR1);
  b.ldx(kR7, kR6, kCtxData, MemSize::kU64);
  b.ldx(kR8, kR6, kCtxDataEnd, MemSize::kU64);
  b.mov_reg(kR2, kR7);
  b.add(kR2, 38);
  b.jgt_reg(kR2, kR8, "short");
  b.mov_reg(kR9, kR10);
  b.add(kR9, -64);
  b.ldx(kR2, kR7, 26, MemSize::kU32);
  b.be32(kR2);
  b.stx(kR9, kCtParamSrc, kR2, MemSize::kU32);
  b.ldx(kR2, kR7, 30, MemSize::kU32);
  b.be32(kR2);
  b.stx(kR9, kCtParamDst, kR2, MemSize::kU32);
  b.ldx(kR2, kR7, 23, MemSize::kU8);
  b.stx(kR9, kCtParamProto, kR2, MemSize::kU8);
  b.ldx(kR2, kR7, 34, MemSize::kU16);
  b.be16(kR2);
  b.stx(kR9, kCtParamSport, kR2, MemSize::kU16);
  b.ldx(kR2, kR7, 36, MemSize::kU16);
  b.be16(kR2);
  b.stx(kR9, kCtParamDport, kR2, MemSize::kU16);
  b.mov_reg(kR1, kR6);
  b.mov_reg(kR2, kR9);
  b.call(kHelperCtLookup);
  b.exit();
  b.label("short");
  b.ret(999);
  Program prog = b.build().value();

  net::Packet pkt = dut.packet_to_prefix(0, /*flow=*/5);
  auto miss = run_on(dut.kernel, prog, pkt, dut.eth0_ifindex());
  EXPECT_EQ(miss.ret, kCtLkupMiss);

  // Create via the slow path (conntrack-enabled forward).
  dut.add_prefixes(1);
  kern::CycleTrace t;
  dut.kernel.rx(dut.eth0_ifindex(), dut.packet_to_prefix(0, 5), t);
  net::Packet pkt2 = dut.packet_to_prefix(0, 5);
  auto hit = run_on(dut.kernel, prog, pkt2, dut.eth0_ifindex());
  EXPECT_EQ(hit.ret, kCtLkupFound);
}

TEST_F(HelpersTest, GetSmpProcessorIdReturnsVmCpu) {
  RouterDut dut;
  ProgramBuilder b("smp_id", HookType::kXdp);
  b.call(kHelperGetSmpProcessorId);
  b.exit();
  Program prog = b.build().value();
  VerifyOptions opts;
  opts.helpers = &helpers_;
  opts.maps = &maps_;
  ASSERT_TRUE(verify(prog, opts).ok());

  for (unsigned cpu : {0u, 3u, 11u}) {
    Vm vm(cost_, helpers_, maps_, nullptr);
    vm.set_cpu(cpu);
    net::Packet pkt = dut.packet_to_prefix(0);
    auto r = vm.run(prog, pkt, dut.eth0_ifindex(), &dut.kernel);
    ASSERT_FALSE(r.aborted) << r.error;
    EXPECT_EQ(r.ret, cpu);
  }
}

TEST_F(HelpersTest, MapHelpersAreCpuAware) {
  // bpf_map_lookup_elem must hand a program ITS cpu's slot of a per-CPU
  // entry (this_cpu_ptr semantics), and writes through that pointer must
  // land only there.
  RouterDut dut;
  std::uint32_t map_id = maps_.create("pc", MapType::kPercpuArray, 4, 8, 4);

  // key 0: load slot value, add 10, store back, return the new value.
  ProgramBuilder b("pc_bump", HookType::kXdp);
  b.mov_reg(kR2, kR10);
  b.add(kR2, -8);
  b.st(kR2, 0, 0, MemSize::kU32);
  b.mov(kR1, map_id);
  b.call(kHelperMapLookup);
  b.jeq(kR0, 0, "miss");
  b.mov_reg(kR6, kR0);
  b.ldx(kR1, kR6, 0, MemSize::kU64);
  b.add(kR1, 10);
  b.stx(kR6, 0, kR1, MemSize::kU64);
  b.mov_reg(kR0, kR1);
  b.exit();
  b.label("miss");
  b.ret(0);
  Program prog = b.build().value();
  VerifyOptions opts;
  opts.helpers = &helpers_;
  opts.maps = &maps_;
  ASSERT_TRUE(verify(prog, opts).ok());

  auto bump_on = [&](unsigned cpu) {
    Vm vm(cost_, helpers_, maps_, nullptr);
    vm.set_cpu(cpu);
    net::Packet pkt = dut.packet_to_prefix(0);
    auto r = vm.run(prog, pkt, dut.eth0_ifindex(), &dut.kernel);
    EXPECT_FALSE(r.aborted) << r.error;
    return r.ret;
  };
  EXPECT_EQ(bump_on(1), 10u);
  EXPECT_EQ(bump_on(1), 20u);
  EXPECT_EQ(bump_on(4), 10u);  // its own slot, untouched by cpu 1

  std::uint32_t key = 0;
  Map* m = maps_.get(map_id);
  EXPECT_EQ(m->percpu_sum(reinterpret_cast<std::uint8_t*>(&key)), 30u);
}

}  // namespace
}  // namespace linuxfp::ebpf
