// JIT-vs-interpreter differential oracle (DESIGN.md §14).
//
// The direct-threaded translator promises bit-for-bit interpreter semantics:
// same verdict, same register file, same abort strings, same charged cycles,
// same map and packet mutations. These tests enforce that promise with
// randomized differential execution (structured and garbage generators, both
// adapted from fuzz_test.cpp), plus targeted coverage of the translator's
// refusal reasons, superinstruction fusion, and the runtime demotion paths
// (untranslated entry, tail call into an untranslated target, XSK redirect).
#include "ebpf/jit.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "ebpf/builder.h"
#include "ebpf/kernel_helpers.h"
#include "ebpf/loader.h"
#include "ebpf/verifier.h"
#include "ebpf/vm.h"
#include "util/rng.h"

namespace linuxfp::ebpf {
namespace {

// One engine's world: helpers, maps (prepopulated identically across rigs)
// and a program table for tail calls. Differential runs use two rigs — one
// per engine — so map mutations stay independent and comparable.
class DiffRig {
 public:
  DiffRig() {
    register_all_helpers(helpers_, cost_);
    hash_id_ = maps_.create("h", MapType::kHash, 4, 8, 64);
    arr_id_ = maps_.create("a", MapType::kArray, 4, 8, 16);
    Map* h = maps_.get(hash_id_);
    Map* a = maps_.get(arr_id_);
    for (std::uint32_t key = 0; key < 8; ++key) {
      std::uint64_t value = 0x0101010101ull * (key + 1);
      (void)h->update(reinterpret_cast<std::uint8_t*>(&key),
                      reinterpret_cast<std::uint8_t*>(&value));
      (void)a->update(reinterpret_cast<std::uint8_t*>(&key),
                      reinterpret_cast<std::uint8_t*>(&value));
    }
  }

  util::Status verify_prog(const Program& p) {
    VerifyOptions opts;
    opts.helpers = &helpers_;
    opts.maps = &maps_;
    return verify(p, opts);
  }

  VmResult run(const Program& p, net::Packet& pkt, ExecEngine engine) {
    Vm vm(cost_, helpers_, maps_, &progs_);
    vm.set_engine(engine);
    return vm.run(p, pkt, 1, nullptr);
  }

  std::uint32_t hash_id() const { return hash_id_; }
  std::uint32_t arr_id() const { return arr_id_; }

  kern::CostModel cost_;
  HelperRegistry helpers_;
  MapSet maps_;
  std::vector<Program> progs_;

 private:
  std::uint32_t hash_id_ = 0;
  std::uint32_t arr_id_ = 0;
};

// Every observable of a run must match between the two engines except the
// engine bookkeeping itself (VmResult::jit / jit_fallbacks).
void expect_same_result(const VmResult& interp, const VmResult& jit,
                        const std::string& what) {
  EXPECT_EQ(interp.ret, jit.ret) << what;
  EXPECT_EQ(interp.aborted, jit.aborted) << what;
  EXPECT_EQ(interp.error, jit.error) << what;
  EXPECT_EQ(interp.cycles, jit.cycles) << what;
  EXPECT_EQ(interp.insns_executed, jit.insns_executed) << what;
  EXPECT_EQ(interp.tail_calls, jit.tail_calls) << what;
  EXPECT_EQ(interp.redirect_ifindex, jit.redirect_ifindex) << what;
  EXPECT_EQ(interp.redirect_xsk, jit.redirect_xsk) << what;
  for (int reg = 0; reg < kNumRegs; ++reg) {
    EXPECT_EQ(interp.regs[static_cast<std::size_t>(reg)],
              jit.regs[static_cast<std::size_t>(reg)])
        << what << " r" << reg;
  }
  EXPECT_FALSE(interp.jit) << what;
  EXPECT_TRUE(jit.jit) << what;
}

// Map state must match key-by-key after both runs (covers stx through
// looked-up value pointers).
void expect_same_maps(DiffRig& a, DiffRig& b, const std::string& what) {
  for (std::uint32_t id : {a.hash_id(), a.arr_id()}) {
    Map* ma = a.maps_.get(id);
    Map* mb = b.maps_.get(id);
    ASSERT_TRUE(ma != nullptr && mb != nullptr);
    for (std::uint32_t key = 0; key < 16; ++key) {
      std::uint8_t* va = ma->lookup(reinterpret_cast<std::uint8_t*>(&key));
      std::uint8_t* vb = mb->lookup(reinterpret_cast<std::uint8_t*>(&key));
      ASSERT_EQ(va == nullptr, vb == nullptr) << what << " map " << id
                                              << " key " << key;
      if (va != nullptr) {
        EXPECT_EQ(std::memcmp(va, vb, ma->value_size()), 0)
            << what << " map " << id << " key " << key;
      }
    }
  }
}

// Garbage generator, verbatim from fuzz_test.cpp: mostly rejected, but
// whatever the verifier accepts must behave identically on both engines.
Program random_program(util::Rng& rng) {
  Program p;
  std::size_t n = 1 + rng.next_below(64);
  for (std::size_t i = 0; i < n; ++i) {
    Insn insn;
    insn.op = static_cast<Op>(rng.next_below(28));
    insn.dst = static_cast<std::uint8_t>(rng.next_below(12));
    insn.src = static_cast<std::uint8_t>(rng.next_below(12));
    insn.use_imm = rng.next_below(2) == 0;
    insn.off = static_cast<std::int32_t>(rng.next_below(128)) - 32;
    insn.imm = static_cast<std::int64_t>(rng.next_below(1 << 16)) - (1 << 15);
    insn.size = static_cast<MemSize>(1u << rng.next_below(4));
    p.insns.push_back(insn);
  }
  p.insns.push_back({Op::kMov, kR0, 0, true, 0, 2, MemSize::kU64});
  p.insns.push_back({Op::kExit, 0, 0, true, 0, 0, MemSize::kU64});
  return p;
}

// Structured generator: fuzz_test.cpp's shape extended with the sequences
// the translator fuses — load+swap+mask+compare, packet writes, map
// lookup+branch+value write, helper call+branch — so the differential runs
// squarely through the superinstruction handlers, not just singles.
Program structured_program(util::Rng& rng, std::uint32_t hash_id,
                           std::uint32_t arr_id) {
  ProgramBuilder b("jitfuzz", HookType::kXdp);
  b.mov_reg(kR6, kR1);
  b.ldx(kR7, kR6, kCtxData, MemSize::kU64);
  b.ldx(kR8, kR6, kCtxDataEnd, MemSize::kU64);
  std::int64_t verified = 16 + static_cast<std::int64_t>(rng.next_below(40));
  b.mov_reg(kR2, kR7);
  b.add(kR2, verified);
  b.jgt_reg(kR2, kR8, "out");

  int ops = 2 + static_cast<int>(rng.next_below(24));
  for (int i = 0; i < ops; ++i) {
    switch (rng.next_below(10)) {
      case 0: {  // verified packet read
        auto width = static_cast<std::int64_t>(1u << rng.next_below(3));
        auto off = static_cast<std::int32_t>(
            rng.next_below(static_cast<std::uint64_t>(verified - width + 1)));
        b.ldx(kR3, kR7, off,
              width == 1 ? MemSize::kU8
                         : width == 2 ? MemSize::kU16 : MemSize::kU32);
        break;
      }
      case 1: {  // stack write + read
        auto off = -8 * (1 + static_cast<std::int32_t>(rng.next_below(32)));
        b.mov_reg(kR4, kR10);
        b.add(kR4, off);
        b.st(kR4, 0, static_cast<std::int64_t>(rng.next_below(1000)),
             MemSize::kU64);
        b.ldx(kR3, kR4, 0, MemSize::kU64);
        break;
      }
      case 2:  // imm ALU pair (AluPairImm fusion)
        b.mov(kR3, static_cast<std::int64_t>(rng.next_below(100000)));
        b.add(kR3, 17);
        b.and_(kR3, 0xffff);
        break;
      case 3:
        b.mov(kR5, static_cast<std::int64_t>(rng.next_below(256)));
        b.and_(kR5, 0x7f);
        b.or_(kR5, 0x10);
        break;
      case 4:  // byteswap + shift on a value with high bits set
        b.mov(kR3, static_cast<std::int64_t>(rng.next_below(1 << 20)));
        b.be32(kR3);
        b.rsh(kR3, static_cast<std::int64_t>(rng.next_below(31)));
        break;
      case 5: {  // parse sequence: ldx+be16+and+jeq (LdxBeAndJcc fusion)
        auto off = static_cast<std::int32_t>(
            rng.next_below(static_cast<std::uint64_t>(verified - 1)));
        std::string label = b.scoped("parse" + std::to_string(i));
        b.ldx(kR3, kR7, off, MemSize::kU16);
        b.be16(kR3);
        b.and_(kR3, 0x0fff);
        b.jeq(kR3, static_cast<std::int64_t>(rng.next_below(0x1000)), label);
        b.mov(kR4, 7);
        b.label(label);
        b.new_scope();
        break;
      }
      case 6: {  // packet write within the verified range (LdxStx fusion)
        auto off = static_cast<std::int32_t>(
            rng.next_below(static_cast<std::uint64_t>(verified - 2)));
        b.ldx(kR3, kR7, off, MemSize::kU8);
        b.stx(kR7, off + 1, kR3, MemSize::kU8);
        break;
      }
      case 7: {  // hash/array lookup + branch + value rewrite (CallJcc)
        std::string label = b.scoped("miss" + std::to_string(i));
        b.mov_reg(kR2, kR10);
        b.add(kR2, -8);
        b.st(kR2, 0, static_cast<std::int64_t>(rng.next_below(16)),
             MemSize::kU32);
        b.mov(kR1, rng.next_below(2) == 0 ? hash_id : arr_id);
        b.call(kHelperMapLookup);
        b.jeq(kR0, 0, label);
        b.ldx(kR4, kR0, 0, MemSize::kU64);
        b.add(kR4, 1);
        b.stx(kR0, 0, kR4, MemSize::kU64);
        b.label(label);
        b.new_scope();
        break;
      }
      case 8: {  // helper call + compare on r0 (CallJcc fusion)
        std::string label = b.scoped("cpu" + std::to_string(i));
        b.call(kHelperGetSmpProcessorId);
        b.jeq(kR0, 0, label);
        b.mov(kR4, 3);
        b.label(label);
        b.new_scope();
        break;
      }
      case 9: {  // reg-reg compare on scalars
        std::string label = b.scoped("cmp" + std::to_string(i));
        b.mov(kR3, static_cast<std::int64_t>(rng.next_below(64)));
        b.mov(kR4, static_cast<std::int64_t>(rng.next_below(64)));
        b.jgt_reg(kR3, kR4, label);
        b.xor_reg(kR4, kR3);
        b.label(label);
        b.new_scope();
        break;
      }
    }
  }
  b.ret(kActPass);
  b.label("out");
  b.ret(kActPass);
  auto built = b.build();
  EXPECT_TRUE(built.ok());
  return std::move(built).take();
}

// The oracle proper: same program, same packet, one run per engine on
// identically-seeded worlds; every observable must match.
TEST(JitDiff, StructuredProgramsMatchInterpreter) {
  util::Rng rng(0x717D1FF);
  int fused_programs = 0;
  for (int trial = 0; trial < 300; ++trial) {
    DiffRig interp_rig;
    DiffRig jit_rig;
    Program p =
        structured_program(rng, interp_rig.hash_id(), interp_rig.arr_id());
    auto st = interp_rig.verify_prog(p);
    ASSERT_TRUE(st.ok()) << "trial " << trial << ": " << st.error().message;
    std::string reason;
    p.jit = jit_translate(p, &reason);
    ASSERT_TRUE(p.jit != nullptr)
        << "trial " << trial << " untranslatable: " << reason;
    if (p.jit->n_fused > 0) ++fused_programs;
    for (std::size_t len : {14u, 56u, 60u, 128u, 1514u}) {
      net::Packet pkt_a(len);
      for (std::size_t i = 0; i < pkt_a.size(); ++i) {
        pkt_a.data()[i] = static_cast<std::uint8_t>(rng.next_u64());
      }
      net::Packet pkt_b(len);
      if (len > 0) std::memcpy(pkt_b.data(), pkt_a.data(), len);
      auto ri = interp_rig.run(p, pkt_a, ExecEngine::kInterpreter);
      auto rj = jit_rig.run(p, pkt_b, ExecEngine::kJit);
      std::string what =
          "trial " + std::to_string(trial) + " len " + std::to_string(len);
      expect_same_result(ri, rj, what);
      EXPECT_EQ(rj.jit_fallbacks, 0u) << what;
      ASSERT_EQ(pkt_a.size(), pkt_b.size()) << what;
      EXPECT_EQ(std::memcmp(pkt_a.data(), pkt_b.data(), pkt_a.size()), 0)
          << what;
    }
    expect_same_maps(interp_rig, jit_rig, "trial " + std::to_string(trial));
  }
  // The generator must actually exercise superinstructions, not just singles.
  EXPECT_GT(fused_programs, 250);
}

// Garbage streams: whatever the verifier accepts — including programs that
// abort at runtime on division by zero — must behave identically, whether
// the translator takes them or refuses them (refusal = interpreter fallback
// with identical semantics and one counted demotion).
TEST(JitDiff, GarbageProgramsMatchInterpreter) {
  util::Rng rng(0xD1FF);
  int accepted = 0;
  int translated = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    DiffRig interp_rig;
    DiffRig jit_rig;
    Program p = random_program(rng);
    if (!interp_rig.verify_prog(p).ok()) continue;
    ++accepted;
    p.jit = jit_translate(p);
    if (p.jit != nullptr) ++translated;
    for (std::size_t len : {0u, 14u, 60u, 1500u}) {
      net::Packet pkt_a(len);
      net::Packet pkt_b(len);
      auto ri = interp_rig.run(p, pkt_a, ExecEngine::kInterpreter);
      auto rj = jit_rig.run(p, pkt_b, ExecEngine::kJit);
      std::string what =
          "trial " + std::to_string(trial) + " len " + std::to_string(len);
      expect_same_result(ri, rj, what);
      if (p.jit == nullptr) {
        EXPECT_EQ(rj.jit_fallbacks, 1u) << what;
      }
      if (len > 0) {
        EXPECT_EQ(std::memcmp(pkt_a.data(), pkt_b.data(), len), 0) << what;
      }
    }
    expect_same_maps(interp_rig, jit_rig, "trial " + std::to_string(trial));
  }
  EXPECT_GT(accepted, 0);
  EXPECT_GT(translated, 0);
}

// --- translator unit coverage ---------------------------------------------

TEST(JitDiff, TranslatorFusesSynthesizerParseSequence) {
  // The canonical FPM parse shape: bounds check, ldx+be16 ethertype compare,
  // map value rewrite. Fusion must shrink the stream below one op per insn.
  ProgramBuilder b("parse", HookType::kXdp);
  b.mov_reg(kR6, kR1);
  b.ldx(kR7, kR6, kCtxData, MemSize::kU64);
  b.ldx(kR8, kR6, kCtxDataEnd, MemSize::kU64);
  b.mov_reg(kR2, kR7);
  b.add(kR2, 14);
  b.jgt_reg(kR2, kR8, "out");
  b.ldx(kR3, kR7, 12, MemSize::kU16);
  b.be16(kR3);
  b.and_(kR3, 0xffff);
  b.jne(kR3, 0x0800, "out");
  b.ldx(kR4, kR7, 0, MemSize::kU8);
  b.stx(kR7, 1, kR4, MemSize::kU8);
  b.ret(kActTx);
  b.label("out");
  b.ret(kActPass);
  Program p = b.build().value();

  auto jp = jit_translate(p);
  ASSERT_TRUE(jp != nullptr);
  EXPECT_EQ(jp->n_insns, p.insns.size());
  EXPECT_GE(jp->n_fused, 3u);  // mov+add, ldx+be+and+jne, ldx+stx, mov+exit
  // ops.size() counts the sentinel; even so the stream must be shorter than
  // the bytecode.
  EXPECT_LT(jp->ops.size(), p.insns.size());
}

TEST(JitDiff, TranslatorRefusesBackwardJump) {
  Program p;
  p.insns.push_back({Op::kMov, kR0, 0, true, 0, 2, MemSize::kU64});
  p.insns.push_back({Op::kJa, 0, 0, true, -1, 0, MemSize::kU64});
  p.insns.push_back({Op::kExit, 0, 0, true, 0, 0, MemSize::kU64});
  std::string reason;
  EXPECT_EQ(jit_translate(p, &reason), nullptr);
  EXPECT_NE(reason.find("backward jump"), std::string::npos) << reason;
}

TEST(JitDiff, TranslatorRefusesXskRedirectPrograms) {
  ProgramBuilder b("xsk", HookType::kXdp);
  b.mov(kR1, 0);
  b.mov(kR2, 0);
  b.call(kHelperRedirectMap);
  b.exit();
  Program p = b.build().value();
  std::string reason;
  EXPECT_EQ(jit_translate(p, &reason), nullptr);
  EXPECT_NE(reason.find("redirect_map"), std::string::npos) << reason;
}

TEST(JitDiff, TranslatorRefusesEmptyAndOversizedPrograms) {
  Program empty;
  std::string reason;
  EXPECT_EQ(jit_translate(empty, &reason), nullptr);
  EXPECT_NE(reason.find("empty"), std::string::npos) << reason;

  Program huge;
  for (std::size_t i = 0; i < kMaxInsns + 1; ++i) {
    huge.insns.push_back({Op::kMov, kR0, 0, true, 0, 0, MemSize::kU64});
  }
  EXPECT_EQ(jit_translate(huge, &reason), nullptr);
  EXPECT_NE(reason.find("size budget"), std::string::npos) << reason;
}

// --- runtime demotion paths -----------------------------------------------

// XSK-redirecting programs run interpreted under the JIT engine — refused at
// translation, demoted at entry — with identical observable results.
TEST(JitDiff, XskRedirectProgramFallsBackWithSameSemantics) {
  ProgramBuilder b("xskrun", HookType::kXdp);
  b.mov(kR1, 0);
  b.mov(kR2, 0);
  b.call(kHelperRedirectMap);
  b.exit();
  Program p = b.build().value();

  DiffRig interp_rig;
  DiffRig jit_rig;
  std::uint32_t xa = interp_rig.maps_.create("x", MapType::kXskMap, 4, 4, 4);
  std::uint32_t xb = jit_rig.maps_.create("x", MapType::kXskMap, 4, 4, 4);
  ASSERT_EQ(xa, xb);
  // r1 must carry the map id; rebuild with the real id.
  ProgramBuilder b2("xskrun", HookType::kXdp);
  b2.mov(kR1, xa);
  b2.mov(kR2, 0);
  b2.call(kHelperRedirectMap);
  b2.exit();
  p = b2.build().value();
  p.jit = jit_translate(p);
  ASSERT_EQ(p.jit, nullptr);

  net::Packet pkt_a(64);
  net::Packet pkt_b(64);
  auto ri = interp_rig.run(p, pkt_a, ExecEngine::kInterpreter);
  auto rj = jit_rig.run(p, pkt_b, ExecEngine::kJit);
  expect_same_result(ri, rj, "xsk fallback");
  EXPECT_EQ(rj.jit_fallbacks, 1u);
}

// A tail call into a program with no translated stream demotes mid-run: the
// entry runs threaded, the target runs interpreted, the observables match
// the all-interpreter run exactly, and the demotion is counted.
TEST(JitDiff, TailCallIntoUntranslatedProgramDemotes) {
  auto build_world = [](DiffRig& rig, bool translate_target) {
    std::uint32_t pa = rig.maps_.create("jmp", MapType::kProgArray, 4, 4, 8);
    ProgramBuilder target("target", HookType::kXdp);
    target.mov(kR0, 0);
    target.add(kR0, 40);
    target.add(kR0, 2);  // 42
    target.exit();
    Program tp = target.build().value();
    if (translate_target) tp.jit = jit_translate(tp);
    rig.progs_.push_back(std::move(tp));
    (void)rig.maps_.get(pa)->set_prog(3, 0);

    ProgramBuilder entry("entry", HookType::kXdp);
    entry.mov_reg(kR6, kR1);
    entry.mov_reg(kR1, kR6);
    entry.mov(kR2, pa);
    entry.mov(kR3, 3);
    entry.call(kHelperTailCall);
    entry.ret(kActPass);  // only on miss
    Program ep = entry.build().value();
    ep.jit = jit_translate(ep);
    EXPECT_TRUE(ep.jit != nullptr);
    return ep;
  };

  DiffRig interp_rig;
  DiffRig jit_rig;
  Program pi = build_world(interp_rig, false);
  Program pj = build_world(jit_rig, false);
  net::Packet pkt_a(64);
  net::Packet pkt_b(64);
  auto ri = interp_rig.run(pi, pkt_a, ExecEngine::kInterpreter);
  auto rj = jit_rig.run(pj, pkt_b, ExecEngine::kJit);
  expect_same_result(ri, rj, "tail-call demotion");
  EXPECT_EQ(rj.ret, 42u);
  EXPECT_EQ(rj.tail_calls, 1u);
  EXPECT_EQ(rj.jit_fallbacks, 1u);

  // Same world with the target translated: no demotion, same observables.
  DiffRig jit_full;
  Program pf = build_world(jit_full, true);
  net::Packet pkt_c(64);
  auto rf = jit_full.run(pf, pkt_c, ExecEngine::kJit);
  expect_same_result(ri, rf, "tail-call fully threaded");
  EXPECT_EQ(rf.jit_fallbacks, 0u);
}

// An entry program with no stream at all (loader refusal) interprets the
// whole run and still reports the engine + one fallback.
TEST(JitDiff, UntranslatedEntryRunsInterpretedUnderJitEngine) {
  DiffRig rig;
  ProgramBuilder b("plain", HookType::kXdp);
  b.mov(kR0, 5);
  b.mov(kR1, 0);
  b.exit();
  Program p = b.build().value();
  ASSERT_EQ(p.jit, nullptr);  // never translated
  net::Packet pkt(64);
  auto r = rig.run(p, pkt, ExecEngine::kJit);
  EXPECT_TRUE(r.jit);
  EXPECT_EQ(r.jit_fallbacks, 1u);
  EXPECT_EQ(r.ret, 5u);
  EXPECT_FALSE(r.aborted);
}

// --- attachment-level engine selection and fallback metric ----------------

TEST(JitDiff, AttachmentCountsJitRunsAndFallbacks) {
  kern::Kernel kernel("host");
  HelperRegistry helpers;
  register_all_helpers(helpers, kernel.cost());

  Attachment att("t", HookType::kXdp, kernel, helpers);
  att.set_exec_engine(ExecEngine::kJit);
  ProgramBuilder b("act", HookType::kXdp);
  b.ret(kActDrop);
  auto id = att.load(b.build().value());
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(att.set_entry(id.value()).ok());
  EXPECT_EQ(att.jit_translated(), 1u);
  EXPECT_EQ(att.jit_untranslatable(), 0u);

  for (int i = 0; i < 5; ++i) {
    net::Packet pkt(64);
    att.run(pkt, 1);
  }
  EXPECT_EQ(att.stats().jit_runs, 5u);
  EXPECT_EQ(att.stats().jit_fallbacks, 0u);

  // An XSK sampler is untranslatable: it loads, runs interpreted, and every
  // run counts one fallback (the jit.fallbacks observable).
  Attachment xatt("x", HookType::kXdp, kernel, helpers);
  xatt.set_exec_engine(ExecEngine::kJit);
  std::uint32_t map_id = xatt.maps().create("xsks", MapType::kXskMap, 4, 4, 4);
  ProgramBuilder xb("xsk", HookType::kXdp);
  xb.mov(kR1, map_id);
  xb.mov(kR2, 0);
  xb.call(kHelperRedirectMap);
  xb.exit();
  auto xid = xatt.load(xb.build().value());
  ASSERT_TRUE(xid.ok()) << xid.error().message;
  ASSERT_TRUE(xatt.set_entry(xid.value()).ok());
  EXPECT_EQ(xatt.jit_untranslatable(), 1u);
  for (int i = 0; i < 3; ++i) {
    net::Packet pkt(64);
    xatt.run(pkt, 1);
  }
  EXPECT_EQ(xatt.stats().jit_runs, 3u);
  EXPECT_EQ(xatt.stats().jit_fallbacks, 3u);
}

// Switching a loaded attachment to the JIT translates retroactively.
TEST(JitDiff, SetExecEngineTranslatesAlreadyLoadedPrograms) {
  kern::Kernel kernel("host");
  HelperRegistry helpers;
  register_all_helpers(helpers, kernel.cost());
  Attachment att("t", HookType::kXdp, kernel, helpers);
  ProgramBuilder b("act", HookType::kXdp);
  b.ret(kActPass);
  auto id = att.load(b.build().value());
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(att.jit_translated(), 0u);
  att.set_exec_engine(ExecEngine::kJit);
  EXPECT_EQ(att.jit_translated(), 1u);
  ASSERT_TRUE(att.set_entry(id.value()).ok());
  net::Packet pkt(64);
  att.run(pkt, 1);
  EXPECT_EQ(att.stats().jit_runs, 1u);
  EXPECT_EQ(att.stats().jit_fallbacks, 0u);
}

}  // namespace
}  // namespace linuxfp::ebpf
