#include "ebpf/builder.h"

#include <gtest/gtest.h>

namespace linuxfp::ebpf {
namespace {

TEST(Builder, ResolvesForwardLabels) {
  ProgramBuilder b("lbl", HookType::kXdp);
  b.mov(kR0, 1);
  b.jeq(kR0, 1, "done");
  b.mov(kR0, 2);
  b.label("done");
  b.exit();
  auto p = b.build();
  ASSERT_TRUE(p.ok());
  // jeq at index 1 must skip index 2 (off = +1).
  EXPECT_EQ(p->insns[1].off, 1);
}

TEST(Builder, UndefinedLabelFails) {
  ProgramBuilder b("bad", HookType::kXdp);
  b.ja("nowhere");
  b.exit();
  auto p = b.build();
  ASSERT_FALSE(p.ok());
  EXPECT_EQ(p.error().code, "builder.label");
}

TEST(Builder, ScopedLabelsAreUniquePerScope) {
  ProgramBuilder b("scoped", HookType::kXdp);
  std::string first = b.scoped("x");
  b.new_scope();
  std::string second = b.scoped("x");
  EXPECT_NE(first, second);
}

TEST(Builder, DisassemblerCoversOps) {
  Insn ldx{Op::kLdx, kR2, kR7, false, 12, 0, MemSize::kU16};
  EXPECT_EQ(disassemble(ldx), "r2 = *(u16*)(r7 +12)");
  Insn call{Op::kCall, 0, 0, true, 0, 69, MemSize::kU64};
  EXPECT_EQ(disassemble(call), "call 69");
  Insn mov{Op::kMov, kR0, 0, true, 0, 2, MemSize::kU64};
  EXPECT_EQ(disassemble(mov), "mov r0, 2");
}

TEST(Builder, RetEmitsMovAndExit) {
  ProgramBuilder b("ret", HookType::kTcIngress);
  b.ret(kActDrop);
  auto p = b.build().value();
  ASSERT_EQ(p.insns.size(), 2u);
  EXPECT_EQ(p.insns[0].op, Op::kMov);
  EXPECT_EQ(p.insns[1].op, Op::kExit);
  EXPECT_EQ(p.hook, HookType::kTcIngress);
}

}  // namespace
}  // namespace linuxfp::ebpf
