// Classifier-vs-linear differential fuzz (DESIGN.md §17): random rule sets —
// user chains, DAG jumps, ipsets, negations, conntrack state, every match
// dimension — crossed with random packets and interleaved mutations. The
// compiled path must be indistinguishable from the linear scan: identical
// verdicts, identical rules_examined / ipset_probes accounting, identical
// per-rule hit counters.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "kernel/nf_classifier.h"
#include "kernel/netfilter.h"
#include "util/rng.h"

namespace linuxfp::kern {
namespace {

struct FuzzWorld {
  Netfilter lin;
  Netfilter clf;
  IpSetManager sets;
  std::vector<std::string> chains{"FORWARD"};  // jump DAG: only to later ones
  util::Rng rng;

  explicit FuzzWorld(std::uint64_t seed) : rng(seed) {
    clf.set_classifier_enabled(true);
    // Two sets with random membership for -m set rules.
    EXPECT_TRUE(sets.create("s0", IpSetType::kHashIp).ok());
    EXPECT_TRUE(sets.create("s1", IpSetType::kHashNet).ok());
    for (int i = 0; i < 32; ++i) {
      (void)sets.find("s0")->add(
          net::Ipv4Prefix(random_addr(), 32));
      (void)sets.find("s1")->add(
          net::Ipv4Prefix(random_addr(), 24));
    }
    // A small chain tree. Chains are created in order and jumps only target
    // strictly later chains, so the rule graph is a DAG (depth < 16).
    int user_chains = 2 + static_cast<int>(rng.next_below(3));
    for (int i = 0; i < user_chains; ++i) {
      std::string name = "U" + std::to_string(i);
      EXPECT_TRUE(lin.new_chain(name).ok());
      EXPECT_TRUE(clf.new_chain(name).ok());
      chains.push_back(name);
    }
    if (rng.next_below(2)) {
      (void)lin.set_policy("FORWARD", NfVerdict::kDrop);
      (void)clf.set_policy("FORWARD", NfVerdict::kDrop);
    }
  }

  net::Ipv4Addr random_addr() {
    // A small address pool so packets actually hit rules often.
    return net::Ipv4Addr::from_octets(
        10, static_cast<std::uint8_t>(rng.next_below(4)),
        static_cast<std::uint8_t>(rng.next_below(8)),
        static_cast<std::uint8_t>(rng.next_below(16)));
  }

  Rule random_rule(std::size_t chain_idx) {
    Rule r;
    if (rng.next_below(2)) {
      r.match.src = net::Ipv4Prefix(random_addr(),
                                    rng.next_below(2) ? 32 : 8 + 8 * rng.next_below(4));
      r.match.src_negated = rng.next_below(8) == 0;
    }
    if (rng.next_below(3) == 0) {
      r.match.dst = net::Ipv4Prefix(random_addr(), 16 + 8 * rng.next_below(3));
      r.match.dst_negated = rng.next_below(8) == 0;
    }
    if (rng.next_below(3) == 0) r.match.proto = rng.next_below(2) ? 6 : 17;
    if (rng.next_below(4) == 0) {
      r.match.dport = static_cast<std::uint16_t>(rng.next_below(4) * 1000);
    }
    if (rng.next_below(6) == 0) {
      r.match.sport = static_cast<std::uint16_t>(1024 + rng.next_below(3));
    }
    if (rng.next_below(8) == 0) r.match.in_if = "eth0";
    if (rng.next_below(10) == 0) r.match.out_if = "eth1";
    if (rng.next_below(6) == 0) {
      r.match.match_set = rng.next_below(2) ? "s0" : "s1";
      r.match.set_match_src = rng.next_below(2);
    }
    if (rng.next_below(8) == 0) {
      r.match.ct_state = rng.next_below(2) ? "NEW" : "ESTABLISHED";
    }
    std::uint64_t kind = rng.next_below(10);
    if (kind < 4) {
      r.target = RuleTarget::kDrop;
    } else if (kind < 7) {
      r.target = RuleTarget::kAccept;
    } else if (kind < 8 && chain_idx > 0) {
      r.target = RuleTarget::kReturn;
    } else if (chain_idx + 1 < chains.size()) {
      r.target = RuleTarget::kJump;
      r.jump_chain = chains[chain_idx + 1 + rng.next_below(
          chains.size() - chain_idx - 1)];
    } else {
      r.target = RuleTarget::kDrop;
    }
    return r;
  }

  void mutate() {
    std::size_t ci = rng.next_below(chains.size());
    const std::string& chain = chains[ci];
    Rule r = random_rule(ci);
    std::uint64_t op = rng.next_below(10);
    const Chain* c = lin.find_chain(chain);
    if (op < 6 || c->rules.empty()) {
      ASSERT_EQ(lin.append_rule(chain, r).ok(), clf.append_rule(chain, r).ok());
    } else if (op < 8) {
      std::size_t at = rng.next_below(c->rules.size() + 1);
      ASSERT_EQ(lin.insert_rule(chain, at, r).ok(),
                clf.insert_rule(chain, at, r).ok());
    } else if (op < 9) {
      std::size_t at = rng.next_below(c->rules.size());
      ASSERT_EQ(lin.delete_rule(chain, at).ok(),
                clf.delete_rule(chain, at).ok());
    } else {
      // ipset churn mid-stream: rules referencing the set see the new
      // membership on both paths (sets are consulted live, never compiled).
      if (rng.next_below(2)) {
        (void)sets.find("s0")->add(net::Ipv4Prefix(random_addr(), 32));
      } else {
        (void)sets.find("s0")->del(net::Ipv4Prefix(random_addr(), 32));
      }
    }
  }

  NfPacketInfo random_packet() {
    NfPacketInfo i;
    i.src = random_addr();
    i.dst = random_addr();
    i.proto = rng.next_below(2) ? 6 : 17;
    i.sport = static_cast<std::uint16_t>(1024 + rng.next_below(4));
    i.dport = static_cast<std::uint16_t>(rng.next_below(5) * 1000);
    i.in_if = rng.next_below(2) ? "eth0" : "eth2";
    i.out_if = rng.next_below(2) ? "eth1" : "eth3";
    i.bytes = 64 + rng.next_below(1400);
    i.ct_state = static_cast<int>(rng.next_below(3)) - 1;  // -1, 0, 1
    return i;
  }

  void check_packet(const NfPacketInfo& i, std::uint64_t seed, int step) {
    NfEvalResult a = lin.evaluate(NfHook::kForward, i, sets);
    NfEvalResult b = clf.evaluate(NfHook::kForward, i, sets);
    ASSERT_EQ(a.verdict, b.verdict) << "seed " << seed << " step " << step;
    ASSERT_EQ(a.rules_examined, b.rules_examined)
        << "seed " << seed << " step " << step;
    ASSERT_EQ(a.ipset_probes, b.ipset_probes)
        << "seed " << seed << " step " << step;
    ASSERT_TRUE(b.compiled) << "seed " << seed << " step " << step;
  }

  void check_hits(std::uint64_t seed) {
    for (const Chain* lc : lin.dump()) {
      const Chain* cc = clf.find_chain(lc->name);
      ASSERT_NE(cc, nullptr);
      ASSERT_EQ(lc->rules.size(), cc->rules.size());
      for (std::size_t i = 0; i < lc->rules.size(); ++i) {
        ASSERT_EQ(lc->rules[i].hits, cc->rules[i].hits)
            << "seed " << seed << " chain " << lc->name << " rule " << i;
        ASSERT_EQ(lc->rules[i].hit_bytes, cc->rules[i].hit_bytes)
            << "seed " << seed << " chain " << lc->name << " rule " << i;
      }
    }
  }
};

TEST(NfClassifierFuzz, DifferentialRulesetsAndPackets) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    FuzzWorld w(seed * 0x9e3779b9ULL);
    int rules = 5 + static_cast<int>(w.rng.next_below(60));
    for (int i = 0; i < rules; ++i) w.mutate();
    for (int p = 0; p < 150; ++p) {
      // Interleave occasional mutations with traffic: the incremental
      // append path and the chain-rebuild path both stay exact mid-stream.
      if (w.rng.next_below(10) == 0) w.mutate();
      w.check_packet(w.random_packet(), seed, p);
      if (::testing::Test::HasFatalFailure()) return;
    }
    w.check_hits(seed);
    // The compiled index answered every query above (never fell back).
    EXPECT_TRUE(w.clf.classifier()->ready(w.clf.generation()));
  }
}

TEST(NfClassifierFuzz, RebuiltFromScratchAgreesWithIncremental) {
  // After a long mutation run, a from-scratch build over the final tables
  // must classify identically to the incrementally maintained index.
  for (std::uint64_t seed = 100; seed < 110; ++seed) {
    FuzzWorld w(seed);
    for (int i = 0; i < 80; ++i) w.mutate();
    Netfilter fresh;
    // Clone the final rule tables into a fresh classifier-enabled instance.
    for (const Chain* c : w.lin.dump()) {
      if (!c->builtin) ASSERT_TRUE(fresh.new_chain(c->name).ok());
    }
    for (const Chain* c : w.lin.dump()) {
      if (c->builtin) (void)fresh.set_policy(c->name, c->policy);
      for (const Rule& r : c->rules) {
        Rule copy = r;
        copy.hits.store(0, std::memory_order_relaxed);
        copy.hit_bytes.store(0, std::memory_order_relaxed);
        ASSERT_TRUE(fresh.append_rule(c->name, copy).ok());
      }
    }
    fresh.set_classifier_enabled(true);
    EXPECT_EQ(fresh.classifier()->full_builds(), 1u);
    for (int p = 0; p < 100; ++p) {
      NfPacketInfo i = w.random_packet();
      NfEvalResult inc = w.clf.evaluate(NfHook::kForward, i, w.sets);
      NfEvalResult scratch = fresh.evaluate(NfHook::kForward, i, w.sets);
      ASSERT_EQ(inc.verdict, scratch.verdict) << "seed " << seed;
      ASSERT_EQ(inc.rules_examined, scratch.rules_examined) << "seed " << seed;
      ASSERT_EQ(inc.tuple_probes, scratch.tuple_probes) << "seed " << seed;
      ASSERT_EQ(inc.residual_examined, scratch.residual_examined)
          << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace linuxfp::kern
