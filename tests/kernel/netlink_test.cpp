#include "netlink/netlink.h"

#include <gtest/gtest.h>

#include "kernel/commands.h"
#include "kernel/kernel.h"

namespace linuxfp::kern {
namespace {

TEST(Netlink, SubscribersReceiveOnlyJoinedGroups) {
  Kernel k("host");
  nl::Socket* routes_only = k.netlink().open_socket();
  routes_only->join(nl::Group::kRoute);

  k.add_phys_dev("eth0");  // link event: not delivered
  ASSERT_TRUE(run_command(k, "ip link set eth0 up").ok());
  ASSERT_TRUE(run_command(k, "ip addr add 10.0.0.1/24 dev eth0").ok());

  // The addr command publishes kNewAddr (not ours) and kNewRoute (ours).
  ASSERT_TRUE(routes_only->has_pending());
  nl::Message msg;
  ASSERT_TRUE(routes_only->receive(msg));
  EXPECT_EQ(msg.type, nl::MsgType::kNewRoute);
  EXPECT_EQ(msg.attrs.at("dst").as_string(), "10.0.0.0/24");
  EXPECT_EQ(msg.attrs.at("scope").as_string(), "link");
  EXPECT_FALSE(routes_only->receive(msg));  // nothing else
}

TEST(Netlink, DumpProviderAnswersQueries) {
  Kernel k("host");
  k.add_phys_dev("eth0");
  ASSERT_TRUE(run_command(k, "ip addr add 10.0.0.1/24 dev eth0").ok());
  ASSERT_TRUE(run_command(k, "sysctl -w net.ipv4.ip_forward=1").ok());

  auto links = k.netlink().dump(nl::DumpKind::kLinks);
  ASSERT_EQ(links.size(), 1u);
  EXPECT_EQ(links[0].attrs.at("ifname").as_string(), "eth0");
  EXPECT_EQ(links[0].attrs.at("addrs").at(0).as_string(), "10.0.0.1/24");

  auto routes = k.netlink().dump(nl::DumpKind::kRoutes);
  EXPECT_EQ(routes.size(), 1u);

  auto sysctls = k.netlink().dump(nl::DumpKind::kSysctls);
  ASSERT_EQ(sysctls.size(), 1u);
  EXPECT_EQ(sysctls[0].attrs.at("key").as_string(), "net.ipv4.ip_forward");
}

TEST(Netlink, NetfilterEventsOnRuleChanges) {
  Kernel k("host");
  nl::Socket* sock = k.netlink().open_socket();
  sock->join(nl::Group::kNetfilter);

  ASSERT_TRUE(
      run_command(k, "iptables -A FORWARD -s 10.1.0.0/16 -j DROP").ok());
  nl::Message msg;
  ASSERT_TRUE(sock->receive(msg));
  EXPECT_EQ(msg.type, nl::MsgType::kNewRule);
  EXPECT_EQ(msg.attrs.at("chain").as_string(), "FORWARD");

  ASSERT_TRUE(run_command(k, "ipset create s hash:ip").ok());
  ASSERT_TRUE(sock->receive(msg));
  EXPECT_EQ(msg.type, nl::MsgType::kNewSet);

  auto rules = k.netlink().dump(nl::DumpKind::kRules);
  bool found = false;
  for (auto& m : rules) {
    if (m.attrs.at("chain").as_string() == "FORWARD") {
      found = true;
      EXPECT_EQ(m.attrs.at("rules").size(), 1u);
      EXPECT_EQ(m.attrs.at("rules").at(0).at("target").as_string(), "DROP");
    }
  }
  EXPECT_TRUE(found);
}

TEST(Netlink, LinkEventCarriesBridgeDetails) {
  Kernel k("host");
  nl::Socket* sock = k.netlink().open_socket();
  sock->join(nl::Group::kLink);
  ASSERT_TRUE(run_command(k, "brctl addbr br0").ok());
  k.add_phys_dev("eth0");
  ASSERT_TRUE(run_command(k, "brctl addif br0 eth0").ok());

  // Last link event (enslavement) must carry the master.
  nl::Message msg, last;
  while (sock->receive(msg)) last = msg;
  EXPECT_EQ(last.attrs.at("ifname").as_string(), "eth0");
  EXPECT_EQ(last.attrs.at("master").as_int(),
            k.dev_by_name("br0")->ifindex());
}

}  // namespace
}  // namespace linuxfp::kern
