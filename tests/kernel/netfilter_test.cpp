#include "kernel/netfilter.h"

#include <gtest/gtest.h>

namespace linuxfp::kern {
namespace {

NfPacketInfo info(const std::string& src, const std::string& dst,
                  std::uint8_t proto = 17, std::uint16_t dport = 0) {
  NfPacketInfo i;
  i.src = net::Ipv4Addr::parse(src).value();
  i.dst = net::Ipv4Addr::parse(dst).value();
  i.proto = proto;
  i.dport = dport;
  i.bytes = 64;
  return i;
}

Rule drop_src(const std::string& prefix) {
  Rule r;
  r.match.src = net::Ipv4Prefix::parse(prefix).value();
  r.target = RuleTarget::kDrop;
  return r;
}

TEST(Netfilter, DefaultPolicyAccepts) {
  Netfilter nf;
  IpSetManager sets;
  auto res = nf.evaluate(NfHook::kForward, info("1.1.1.1", "2.2.2.2"), sets);
  EXPECT_EQ(res.verdict, NfVerdict::kAccept);
  EXPECT_EQ(res.rules_examined, 0u);
}

TEST(Netfilter, DropRuleMatches) {
  Netfilter nf;
  IpSetManager sets;
  ASSERT_TRUE(nf.append_rule("FORWARD", drop_src("10.9.0.0/24")).ok());
  EXPECT_EQ(nf.evaluate(NfHook::kForward, info("10.9.0.5", "2.2.2.2"), sets)
                .verdict,
            NfVerdict::kDrop);
  EXPECT_EQ(nf.evaluate(NfHook::kForward, info("10.8.0.5", "2.2.2.2"), sets)
                .verdict,
            NfVerdict::kAccept);
}

TEST(Netfilter, LinearScanCountsWork) {
  Netfilter nf;
  IpSetManager sets;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        nf.append_rule("FORWARD", drop_src("10.9." + std::to_string(i) +
                                           ".0/24"))
            .ok());
  }
  // Non-matching traffic examines every rule — the iptables scalability
  // problem the paper measures in Fig 8.
  auto res = nf.evaluate(NfHook::kForward, info("10.8.0.1", "2.2.2.2"), sets);
  EXPECT_EQ(res.rules_examined, 100u);
  // A packet matching rule 50 examines 51.
  res = nf.evaluate(NfHook::kForward, info("10.9.50.1", "2.2.2.2"), sets);
  EXPECT_EQ(res.rules_examined, 51u);
  EXPECT_EQ(res.verdict, NfVerdict::kDrop);
}

TEST(Netfilter, FirstMatchWins) {
  Netfilter nf;
  IpSetManager sets;
  Rule accept;
  accept.match.src = net::Ipv4Prefix::parse("10.9.0.0/16").value();
  accept.target = RuleTarget::kAccept;
  ASSERT_TRUE(nf.append_rule("FORWARD", accept).ok());
  ASSERT_TRUE(nf.append_rule("FORWARD", drop_src("10.9.1.0/24")).ok());
  EXPECT_EQ(nf.evaluate(NfHook::kForward, info("10.9.1.1", "2.2.2.2"), sets)
                .verdict,
            NfVerdict::kAccept);
}

TEST(Netfilter, ProtoAndPortMatch) {
  Netfilter nf;
  IpSetManager sets;
  Rule r;
  r.match.proto = 6;
  r.match.dport = 80;
  r.target = RuleTarget::kDrop;
  ASSERT_TRUE(nf.append_rule("FORWARD", r).ok());
  EXPECT_EQ(nf.evaluate(NfHook::kForward, info("1.1.1.1", "2.2.2.2", 6, 80),
                        sets)
                .verdict,
            NfVerdict::kDrop);
  EXPECT_EQ(nf.evaluate(NfHook::kForward, info("1.1.1.1", "2.2.2.2", 6, 443),
                        sets)
                .verdict,
            NfVerdict::kAccept);
  EXPECT_EQ(nf.evaluate(NfHook::kForward, info("1.1.1.1", "2.2.2.2", 17, 80),
                        sets)
                .verdict,
            NfVerdict::kAccept);
}

TEST(Netfilter, NegatedMatch) {
  Netfilter nf;
  IpSetManager sets;
  Rule r;
  r.match.src = net::Ipv4Prefix::parse("10.0.0.0/8").value();
  r.match.src_negated = true;
  r.target = RuleTarget::kDrop;  // drop everything NOT from 10/8
  ASSERT_TRUE(nf.append_rule("FORWARD", r).ok());
  EXPECT_EQ(nf.evaluate(NfHook::kForward, info("10.1.1.1", "2.2.2.2"), sets)
                .verdict,
            NfVerdict::kAccept);
  EXPECT_EQ(nf.evaluate(NfHook::kForward, info("11.1.1.1", "2.2.2.2"), sets)
                .verdict,
            NfVerdict::kDrop);
}

TEST(Netfilter, InterfaceMatch) {
  Netfilter nf;
  IpSetManager sets;
  Rule r;
  r.match.in_if = "eth0";
  r.target = RuleTarget::kDrop;
  ASSERT_TRUE(nf.append_rule("FORWARD", r).ok());
  NfPacketInfo i = info("1.1.1.1", "2.2.2.2");
  i.in_if = "eth0";
  EXPECT_EQ(nf.evaluate(NfHook::kForward, i, sets).verdict, NfVerdict::kDrop);
  i.in_if = "eth1";
  EXPECT_EQ(nf.evaluate(NfHook::kForward, i, sets).verdict,
            NfVerdict::kAccept);
}

TEST(Netfilter, UserChainJumpAndReturn) {
  Netfilter nf;
  IpSetManager sets;
  ASSERT_TRUE(nf.new_chain("BLOCKLIST").ok());
  ASSERT_TRUE(nf.append_rule("BLOCKLIST", drop_src("10.9.0.0/24")).ok());
  Rule ret;
  ret.target = RuleTarget::kReturn;
  ASSERT_TRUE(nf.append_rule("BLOCKLIST", ret).ok());

  Rule jump;
  jump.target = RuleTarget::kJump;
  jump.jump_chain = "BLOCKLIST";
  ASSERT_TRUE(nf.append_rule("FORWARD", jump).ok());
  ASSERT_TRUE(nf.append_rule("FORWARD", drop_src("10.8.0.0/24")).ok());

  // Dropped inside the user chain.
  EXPECT_EQ(nf.evaluate(NfHook::kForward, info("10.9.0.1", "2.2.2.2"), sets)
                .verdict,
            NfVerdict::kDrop);
  // RETURNs from user chain, then matches rule after the jump.
  EXPECT_EQ(nf.evaluate(NfHook::kForward, info("10.8.0.1", "2.2.2.2"), sets)
                .verdict,
            NfVerdict::kDrop);
  // Falls through everything.
  EXPECT_EQ(nf.evaluate(NfHook::kForward, info("10.7.0.1", "2.2.2.2"), sets)
                .verdict,
            NfVerdict::kAccept);
}

TEST(Netfilter, PolicyDrop) {
  Netfilter nf;
  IpSetManager sets;
  ASSERT_TRUE(nf.set_policy("FORWARD", NfVerdict::kDrop).ok());
  Rule allow;
  allow.match.dst = net::Ipv4Prefix::parse("10.0.1.0/24").value();
  allow.target = RuleTarget::kAccept;
  ASSERT_TRUE(nf.append_rule("FORWARD", allow).ok());
  EXPECT_EQ(nf.evaluate(NfHook::kForward, info("1.1.1.1", "10.0.1.5"), sets)
                .verdict,
            NfVerdict::kAccept);
  EXPECT_EQ(nf.evaluate(NfHook::kForward, info("1.1.1.1", "10.0.2.5"), sets)
                .verdict,
            NfVerdict::kDrop);
}

TEST(Netfilter, IpsetMatchAggregatesRules) {
  Netfilter nf;
  IpSetManager sets;
  ASSERT_TRUE(sets.create("blacklist", IpSetType::kHashIp).ok());
  IpSet* set = sets.find("blacklist");
  for (int i = 1; i <= 100; ++i) {
    ASSERT_TRUE(set->add(net::Ipv4Prefix::parse(
                             "10.9.0." + std::to_string(i) + "/32")
                             .value())
                    .ok());
  }
  Rule r;
  r.match.match_set = "blacklist";
  r.match.set_match_src = true;
  r.target = RuleTarget::kDrop;
  ASSERT_TRUE(nf.append_rule("FORWARD", r).ok());

  auto res = nf.evaluate(NfHook::kForward, info("10.9.0.50", "2.2.2.2"), sets);
  EXPECT_EQ(res.verdict, NfVerdict::kDrop);
  EXPECT_EQ(res.rules_examined, 1u);  // one rule instead of 100
  EXPECT_EQ(res.ipset_probes, 1u);
  res = nf.evaluate(NfHook::kForward, info("10.8.0.50", "2.2.2.2"), sets);
  EXPECT_EQ(res.verdict, NfVerdict::kAccept);
}

TEST(Netfilter, RuleHitCounters) {
  Netfilter nf;
  IpSetManager sets;
  ASSERT_TRUE(nf.append_rule("FORWARD", drop_src("10.9.0.0/24")).ok());
  for (int i = 0; i < 5; ++i) {
    nf.evaluate(NfHook::kForward, info("10.9.0.1", "2.2.2.2"), sets);
  }
  EXPECT_EQ(nf.find_chain("FORWARD")->rules[0].hits, 5u);
  EXPECT_EQ(nf.find_chain("FORWARD")->rules[0].hit_bytes, 5u * 64);
}

TEST(Netfilter, ChainManagementErrors) {
  Netfilter nf;
  EXPECT_FALSE(nf.delete_chain("FORWARD").ok());  // builtin
  EXPECT_FALSE(nf.new_chain("FORWARD").ok());     // exists
  ASSERT_TRUE(nf.new_chain("X").ok());
  ASSERT_TRUE(nf.append_rule("X", Rule{}).ok());
  EXPECT_FALSE(nf.delete_chain("X").ok());  // non-empty
  ASSERT_TRUE(nf.flush("X").ok());
  EXPECT_TRUE(nf.delete_chain("X").ok());
  EXPECT_FALSE(nf.append_rule("NOPE", Rule{}).ok());
  Rule bad_jump;
  bad_jump.target = RuleTarget::kJump;
  bad_jump.jump_chain = "MISSING";
  EXPECT_FALSE(nf.append_rule("FORWARD", bad_jump).ok());
}

TEST(Netfilter, GenerationBumpsOnMutation) {
  Netfilter nf;
  auto g0 = nf.generation();
  ASSERT_TRUE(nf.append_rule("FORWARD", Rule{}).ok());
  EXPECT_GT(nf.generation(), g0);
}

TEST(Netfilter, InsertAndDeleteByIndex) {
  Netfilter nf;
  IpSetManager sets;
  ASSERT_TRUE(nf.append_rule("FORWARD", drop_src("10.1.0.0/24")).ok());
  Rule accept;
  accept.target = RuleTarget::kAccept;
  ASSERT_TRUE(nf.insert_rule("FORWARD", 0, accept).ok());
  // The accept now shadows the drop.
  EXPECT_EQ(nf.evaluate(NfHook::kForward, info("10.1.0.1", "2.2.2.2"), sets)
                .verdict,
            NfVerdict::kAccept);
  ASSERT_TRUE(nf.delete_rule("FORWARD", 0).ok());
  EXPECT_EQ(nf.evaluate(NfHook::kForward, info("10.1.0.1", "2.2.2.2"), sets)
                .verdict,
            NfVerdict::kDrop);
  EXPECT_FALSE(nf.delete_rule("FORWARD", 5).ok());
}

}  // namespace
}  // namespace linuxfp::kern
