// End-to-end spanning-tree test: two bridges in two kernels joined by a
// redundant pair of links (a loop). BPDU exchange over ticks must elect a
// root and block one port, and the blocked port must stop both slow-path
// and fast-path forwarding.
#include <gtest/gtest.h>

#include "core/controller.h"
#include "kernel/commands.h"
#include "kernel/kernel.h"

namespace linuxfp::kern {
namespace {

struct LoopRig {
  Kernel a{"bridge-a"}, b{"bridge-b"};

  LoopRig() {
    // Two veth "cables" between the bridges = a loop.
    a.add_veth_to("link1", b, "link1");
    a.add_veth_to("link2", b, "link2");
    for (Kernel* k : {&a, &b}) {
      EXPECT_TRUE(run_command(*k, "brctl addbr br0").ok());
      for (const char* d : {"link1", "link2", "br0"}) {
        EXPECT_TRUE(
            run_command(*k, std::string("ip link set ") + d + " up").ok());
      }
      EXPECT_TRUE(run_command(*k, "brctl addif br0 link1").ok());
      EXPECT_TRUE(run_command(*k, "brctl addif br0 link2").ok());
      EXPECT_TRUE(run_command(*k, "brctl stp br0 on").ok());
    }
  }

  // Runs STP hello/forward-delay time forward on both kernels.
  void converge() {
    for (int tick = 0; tick < 40; ++tick) {
      std::uint64_t now = a.now_ns() + 2'000'000'000ull;  // 2 s hello
      a.set_now_ns(now);
      b.set_now_ns(now);
      a.tick();
      b.tick();
    }
  }

  int blocked_ports(Kernel& k) {
    int blocked = 0;
    for (Bridge* br : k.bridges()) {
      for (const auto& [ifi, port] : br->ports()) {
        if (port.state == StpState::kBlocking) ++blocked;
      }
    }
    return blocked;
  }
};

TEST(StpEndToEnd, LoopConvergesWithOneBlockedPort) {
  LoopRig rig;
  rig.converge();

  // Exactly one side of the loop must block exactly one port; the root
  // bridge (lower bridge id) keeps both ports designated/forwarding.
  Bridge* ba = rig.a.bridge_by_name("br0");
  Bridge* bb = rig.b.bridge_by_name("br0");
  bool a_is_root = ba->is_root();
  bool b_is_root = bb->is_root();
  EXPECT_NE(a_is_root, b_is_root) << "exactly one root";
  Kernel& non_root = a_is_root ? rig.b : rig.a;
  EXPECT_EQ(rig.blocked_ports(a_is_root ? rig.a : rig.b), 0);
  EXPECT_EQ(rig.blocked_ports(non_root), 1);

  // The non-root's root port reached forwarding.
  Bridge* nr = non_root.bridge_by_name("br0");
  ASSERT_NE(nr->root_port(), 0);
  EXPECT_EQ(nr->port(nr->root_port())->state, StpState::kForwarding);
}

TEST(StpEndToEnd, BlockedPortDropsTrafficOnBothPaths) {
  LoopRig rig;
  rig.converge();

  Bridge* ba = rig.a.bridge_by_name("br0");
  Kernel& non_root = ba->is_root() ? rig.b : rig.a;
  Bridge* nr = non_root.bridge_by_name("br0");
  int blocked_ifindex = 0;
  for (const auto& [ifi, port] : nr->ports()) {
    if (port.state == StpState::kBlocking) blocked_ifindex = ifi;
  }
  ASSERT_NE(blocked_ifindex, 0);

  // Attach a LinuxFP bridge fast path on the non-root's ports; traffic
  // arriving on the blocked port must not be forwarded by EITHER path.
  core::ControllerOptions opts;
  opts.attach_bridge_ports = true;
  opts.attach_physical = false;
  core::Controller controller(non_root, opts);
  controller.start();

  net::FlowKey f;
  f.src_ip = net::Ipv4Addr::parse("1.1.1.1").value();
  f.dst_ip = net::Ipv4Addr::parse("2.2.2.2").value();
  net::Packet pkt = net::build_udp_packet(net::MacAddr::from_id(0xAA),
                                          net::MacAddr::from_id(0xBB), f, 64);
  CycleTrace t;
  auto summary = non_root.rx(blocked_ifindex, std::move(pkt), t);
  EXPECT_EQ(summary.drop, Drop::kStpBlocked);
  EXPECT_EQ(non_root.counters().bridged, 0u);
  EXPECT_EQ(non_root.counters().flooded, 0u);
}

TEST(StpEndToEnd, StateChangeTriggersResynthesis) {
  LoopRig rig;
  core::ControllerOptions opts;
  opts.attach_bridge_ports = true;
  opts.attach_physical = false;
  core::Controller controller(rig.a, opts);
  controller.start();
  auto n0 = controller.resynth_count();

  // Convergence flips port states; the kernel publishes link events with
  // the new STP states and the controller re-derives the graph.
  rig.converge();
  controller.run_once();
  // The graph signature includes port states via the link dump; a change in
  // any port state forces at least one resynthesis on the affected node.
  EXPECT_GE(controller.resynth_count(), n0);
  // And traffic through a forwarding port still works after the redeploys.
  auto* att = controller.deployer().attachment(
      "link1", ebpf::HookType::kXdp);
  if (att) {
    EXPECT_EQ(att->stats().aborted, 0u);
  }
}

}  // namespace
}  // namespace linuxfp::kern
