#include "kernel/conntrack.h"

#include <gtest/gtest.h>

namespace linuxfp::kern {
namespace {

net::FlowKey flow(const std::string& src, const std::string& dst,
                  std::uint16_t sport, std::uint16_t dport) {
  net::FlowKey f;
  f.src_ip = net::Ipv4Addr::parse(src).value();
  f.dst_ip = net::Ipv4Addr::parse(dst).value();
  f.proto = net::kIpProtoTcp;
  f.src_port = sport;
  f.dst_port = dport;
  return f;
}

TEST(Conntrack, CreateThenEstablishOnReply) {
  Conntrack ct;
  auto f = flow("10.0.0.1", "10.0.0.2", 4000, 80);
  auto r1 = ct.lookup_or_create(f, 1000);
  ASSERT_NE(r1.entry, nullptr);
  EXPECT_TRUE(r1.created);
  EXPECT_EQ(r1.entry->state, CtState::kNew);

  // Reply direction promotes to established.
  auto reply = flow("10.0.0.2", "10.0.0.1", 80, 4000);
  auto r2 = ct.lookup_or_create(reply, 2000);
  EXPECT_FALSE(r2.created);
  EXPECT_TRUE(r2.is_reply_direction);
  EXPECT_EQ(r2.entry->state, CtState::kEstablished);
  EXPECT_EQ(ct.size(), 1u);
}

TEST(Conntrack, PureLookupDoesNotCreate) {
  Conntrack ct;
  auto r = ct.lookup(flow("1.1.1.1", "2.2.2.2", 1, 2), 0);
  EXPECT_EQ(r.entry, nullptr);
  EXPECT_EQ(ct.size(), 0u);
}

TEST(Conntrack, DistinctFlowsDistinctEntries) {
  Conntrack ct;
  ct.lookup_or_create(flow("10.0.0.1", "10.0.0.2", 4000, 80), 0);
  ct.lookup_or_create(flow("10.0.0.1", "10.0.0.2", 4001, 80), 0);
  EXPECT_EQ(ct.size(), 2u);
}

TEST(Conntrack, IdleExpiry) {
  Conntrack ct;
  ct.lookup_or_create(flow("10.0.0.1", "10.0.0.2", 4000, 80), 1'000);
  ct.lookup_or_create(flow("10.0.0.1", "10.0.0.2", 4001, 80), 50'000'000'000);
  EXPECT_EQ(ct.expire_idle(121'000'000'000, 120'000'000'000), 1u);
  EXPECT_EQ(ct.size(), 1u);
}

TEST(Conntrack, TrafficRefreshesIdleTimer) {
  Conntrack ct;
  auto f = flow("10.0.0.1", "10.0.0.2", 4000, 80);
  ct.lookup_or_create(f, 0);
  // Keep the flow alive with a packet every 60s; a 120s idle sweep at each
  // step must never expire it.
  for (std::uint64_t t = 60; t <= 600; t += 60) {
    ct.lookup(f, t * 1'000'000'000);
    EXPECT_EQ(ct.expire_idle(t * 1'000'000'000 + 1, 120'000'000'000), 0u);
  }
  EXPECT_EQ(ct.size(), 1u);
  // Once traffic stops, the next sweep past the idle window removes it.
  EXPECT_EQ(ct.expire_idle(721'000'000'000, 120'000'000'000), 1u);
  EXPECT_EQ(ct.size(), 0u);
}

TEST(Conntrack, ExpiryAtExactIdleBoundaryKeepsEntry) {
  Conntrack ct;
  ct.lookup_or_create(flow("10.0.0.1", "10.0.0.2", 4000, 80), 1'000);
  // idle == threshold is not "greater than": the entry survives.
  EXPECT_EQ(ct.expire_idle(1'000 + 120'000'000'000, 120'000'000'000), 0u);
  EXPECT_EQ(ct.size(), 1u);
  EXPECT_EQ(ct.expire_idle(1'001 + 120'000'000'000, 120'000'000'000), 1u);
}

TEST(Conntrack, ExpiryOfDnatEntryDropsNatIndex) {
  Conntrack ct;
  auto f = flow("10.0.0.1", "10.96.0.1", 4000, 80);  // client -> VIP
  auto r = ct.lookup_or_create(f, 1'000);
  ASSERT_TRUE(r.created);
  ct.set_dnat(*r.entry, net::Ipv4Addr::parse("10.0.1.5").value(), 8080);

  // Reply from the backend resolves through the NAT index.
  auto reply = flow("10.0.1.5", "10.0.0.1", 8080, 4000);
  auto rr = ct.lookup(reply, 2'000);
  ASSERT_NE(rr.entry, nullptr);
  EXPECT_TRUE(rr.is_reply_direction);
  EXPECT_EQ(rr.entry->state, CtState::kEstablished);

  // After idle expiry, the reply tuple must no longer resolve: a stale NAT
  // index entry would steer a new connection's reply into a dead mapping.
  EXPECT_EQ(ct.expire_idle(300'000'000'000, 120'000'000'000), 1u);
  EXPECT_EQ(ct.size(), 0u);
  auto stale = ct.lookup(reply, 300'000'000'001);
  EXPECT_EQ(stale.entry, nullptr);
}

TEST(Conntrack, ExpirySweepIsSelective) {
  Conntrack ct;
  // Three flows with staggered last activity; only the two oldest expire.
  ct.lookup_or_create(flow("10.0.0.1", "10.0.0.2", 4000, 80), 1'000'000'000);
  ct.lookup_or_create(flow("10.0.0.1", "10.0.0.2", 4001, 80), 5'000'000'000);
  ct.lookup_or_create(flow("10.0.0.1", "10.0.0.2", 4002, 80), 100'000'000'000);
  EXPECT_EQ(ct.expire_idle(130'000'000'000, 120'000'000'000), 2u);
  EXPECT_EQ(ct.size(), 1u);
  // The survivor is still usable.
  auto r = ct.lookup(flow("10.0.0.1", "10.0.0.2", 4002, 80), 131'000'000'000);
  ASSERT_NE(r.entry, nullptr);
  EXPECT_EQ(r.entry->packets, 2u);
}

TEST(Conntrack, PacketCounting) {
  Conntrack ct;
  auto f = flow("10.0.0.1", "10.0.0.2", 4000, 80);
  ct.lookup_or_create(f, 0);
  ct.lookup(f, 1);
  ct.lookup(f, 2);
  EXPECT_EQ(ct.lookup(f, 3).entry->packets, 4u);
}

}  // namespace
}  // namespace linuxfp::kern
