#include "kernel/conntrack.h"

#include <gtest/gtest.h>

namespace linuxfp::kern {
namespace {

net::FlowKey flow(const std::string& src, const std::string& dst,
                  std::uint16_t sport, std::uint16_t dport) {
  net::FlowKey f;
  f.src_ip = net::Ipv4Addr::parse(src).value();
  f.dst_ip = net::Ipv4Addr::parse(dst).value();
  f.proto = net::kIpProtoTcp;
  f.src_port = sport;
  f.dst_port = dport;
  return f;
}

TEST(Conntrack, CreateThenEstablishOnReply) {
  Conntrack ct;
  auto f = flow("10.0.0.1", "10.0.0.2", 4000, 80);
  auto r1 = ct.lookup_or_create(f, 1000);
  ASSERT_NE(r1.entry, nullptr);
  EXPECT_TRUE(r1.created);
  EXPECT_EQ(r1.entry->state, CtState::kNew);

  // Reply direction promotes to established.
  auto reply = flow("10.0.0.2", "10.0.0.1", 80, 4000);
  auto r2 = ct.lookup_or_create(reply, 2000);
  EXPECT_FALSE(r2.created);
  EXPECT_TRUE(r2.is_reply_direction);
  EXPECT_EQ(r2.entry->state, CtState::kEstablished);
  EXPECT_EQ(ct.size(), 1u);
}

TEST(Conntrack, PureLookupDoesNotCreate) {
  Conntrack ct;
  auto r = ct.lookup(flow("1.1.1.1", "2.2.2.2", 1, 2), 0);
  EXPECT_EQ(r.entry, nullptr);
  EXPECT_EQ(ct.size(), 0u);
}

TEST(Conntrack, DistinctFlowsDistinctEntries) {
  Conntrack ct;
  ct.lookup_or_create(flow("10.0.0.1", "10.0.0.2", 4000, 80), 0);
  ct.lookup_or_create(flow("10.0.0.1", "10.0.0.2", 4001, 80), 0);
  EXPECT_EQ(ct.size(), 2u);
}

TEST(Conntrack, IdleExpiry) {
  Conntrack ct;
  ct.lookup_or_create(flow("10.0.0.1", "10.0.0.2", 4000, 80), 1'000);
  ct.lookup_or_create(flow("10.0.0.1", "10.0.0.2", 4001, 80), 50'000'000'000);
  EXPECT_EQ(ct.expire_idle(121'000'000'000, 120'000'000'000), 1u);
  EXPECT_EQ(ct.size(), 1u);
}

TEST(Conntrack, PacketCounting) {
  Conntrack ct;
  auto f = flow("10.0.0.1", "10.0.0.2", 4000, 80);
  ct.lookup_or_create(f, 0);
  ct.lookup(f, 1);
  ct.lookup(f, 2);
  EXPECT_EQ(ct.lookup(f, 3).entry->packets, 4u);
}

}  // namespace
}  // namespace linuxfp::kern
