// End-to-end slow-path tests: forwarding, ARP, ICMP, netfilter on the
// datapath, bridging, VLAN filtering, VXLAN and veth crossing — all via the
// public Kernel::rx/dev_xmit interface with packets built on the wire format.
#include <gtest/gtest.h>

#include "kernel/kernel.h"
#include "net/checksum.h"
#include "tests/kernel/test_topo.h"

namespace linuxfp::kern {
namespace {

using testing::RouterDut;

TEST(SlowPathForward, ForwardsAndRewrites) {
  RouterDut dut;
  dut.add_prefixes(50);

  net::Packet pkt = dut.packet_to_prefix(7);
  CycleTrace trace;
  auto summary = dut.kernel.rx(dut.eth0_ifindex(), std::move(pkt), trace);

  EXPECT_EQ(summary.drop, Drop::kNone);
  EXPECT_FALSE(summary.fast_path);
  ASSERT_EQ(dut.tx_eth1.size(), 1u);
  auto out = net::parse_packet(dut.tx_eth1[0]);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->eth_src, dut.eth1_mac());
  EXPECT_EQ(out->eth_dst, dut.sink_gw_mac);
  EXPECT_EQ(out->ttl, 63);  // decremented
  net::Ipv4View ip(dut.tx_eth1[0].data() + out->l3_offset);
  EXPECT_TRUE(ip.checksum_valid());
  EXPECT_EQ(dut.kernel.counters().forwarded, 1u);
  EXPECT_GT(trace.total(), 1000u);  // the slow path costs real cycles
}

TEST(SlowPathForward, NoRouteDrops) {
  RouterDut dut;
  dut.add_prefixes(5);
  net::FlowKey f;
  f.src_ip = net::Ipv4Addr::parse("10.10.1.2").value();
  f.dst_ip = net::Ipv4Addr::parse("99.99.99.99").value();
  net::Packet pkt =
      net::build_udp_packet(dut.src_host_mac, dut.eth0_mac(), f, 64);
  CycleTrace trace;
  auto summary = dut.kernel.rx(dut.eth0_ifindex(), std::move(pkt), trace);
  EXPECT_EQ(summary.drop, Drop::kNoRoute);
  EXPECT_TRUE(dut.tx_eth1.empty());
}

TEST(SlowPathForward, TtlExpiryDrops) {
  RouterDut dut;
  dut.add_prefixes(5);
  net::FlowKey f;
  f.src_ip = net::Ipv4Addr::parse("10.10.1.2").value();
  f.dst_ip = net::Ipv4Addr::parse("10.100.0.9").value();
  net::Packet pkt = net::build_udp_packet(dut.src_host_mac, dut.eth0_mac(), f,
                                          64, /*ttl=*/1);
  CycleTrace trace;
  auto summary = dut.kernel.rx(dut.eth0_ifindex(), std::move(pkt), trace);
  EXPECT_EQ(summary.drop, Drop::kTtlExceeded);
}

TEST(SlowPathForward, ForwardingDisabledDrops) {
  RouterDut dut;
  dut.add_prefixes(5);
  dut.run("sysctl -w net.ipv4.ip_forward=0");
  CycleTrace trace;
  auto summary =
      dut.kernel.rx(dut.eth0_ifindex(), dut.packet_to_prefix(0), trace);
  EXPECT_EQ(summary.drop, Drop::kNotForUs);
}

TEST(SlowPathForward, CorruptChecksumDropped) {
  RouterDut dut;
  dut.add_prefixes(5);
  net::Packet pkt = dut.packet_to_prefix(0);
  pkt.data()[net::kEthHdrLen + 10] ^= 0xFF;  // corrupt checksum
  CycleTrace trace;
  auto summary = dut.kernel.rx(dut.eth0_ifindex(), std::move(pkt), trace);
  EXPECT_EQ(summary.drop, Drop::kMalformed);
}

TEST(SlowPathArp, ResolvesNeighborAndFlushesQueue) {
  RouterDut dut;
  // Route via an unresolved gateway.
  dut.run("ip route add 10.55.0.0/24 via 10.10.2.99 dev eth1");

  net::FlowKey f;
  f.src_ip = net::Ipv4Addr::parse("10.10.1.2").value();
  f.dst_ip = net::Ipv4Addr::parse("10.55.0.1").value();
  net::Packet pkt =
      net::build_udp_packet(dut.src_host_mac, dut.eth0_mac(), f, 64);
  CycleTrace trace;
  auto summary = dut.kernel.rx(dut.eth0_ifindex(), std::move(pkt), trace);
  EXPECT_EQ(summary.drop, Drop::kNeighPending);

  // The kernel must have emitted an ARP request on eth1.
  ASSERT_EQ(dut.tx_eth1.size(), 1u);
  auto arp_out = net::parse_packet(dut.tx_eth1[0]);
  ASSERT_TRUE(arp_out.has_value());
  EXPECT_EQ(arp_out->ethertype, net::kEtherTypeArp);
  net::ArpView req(dut.tx_eth1[0].data() + net::kEthHdrLen);
  EXPECT_EQ(req.read().target_ip.to_string(), "10.10.2.99");
  EXPECT_EQ(req.read().sender_ip.to_string(), "10.10.2.1");

  // Deliver the ARP reply; the parked packet must flush.
  auto neighbor_mac = net::MacAddr::from_id(0x999);
  net::Packet reply = net::build_arp_reply(
      neighbor_mac, net::Ipv4Addr::parse("10.10.2.99").value(),
      dut.eth1_mac(), net::Ipv4Addr::parse("10.10.2.1").value());
  CycleTrace trace2;
  dut.kernel.rx(dut.eth1_ifindex(), std::move(reply), trace2);

  ASSERT_EQ(dut.tx_eth1.size(), 2u);  // request + flushed data packet
  auto flushed = net::parse_packet(dut.tx_eth1[1]);
  ASSERT_TRUE(flushed.has_value());
  EXPECT_EQ(flushed->eth_dst, neighbor_mac);
  EXPECT_EQ(flushed->ip_dst.to_string(), "10.55.0.1");
}

TEST(SlowPathArp, RespondsToRequestForOwnAddress) {
  RouterDut dut;
  net::Packet req = net::build_arp_request(
      dut.src_host_mac, net::Ipv4Addr::parse("10.10.1.2").value(),
      net::Ipv4Addr::parse("10.10.1.1").value());
  CycleTrace trace;
  dut.kernel.rx(dut.eth0_ifindex(), std::move(req), trace);
  ASSERT_EQ(dut.tx_eth0.size(), 1u);
  net::ArpView reply(dut.tx_eth0[0].data() + net::kEthHdrLen);
  auto fields = reply.read();
  EXPECT_EQ(fields.opcode, 2);
  EXPECT_EQ(fields.sender_ip.to_string(), "10.10.1.1");
  EXPECT_EQ(fields.sender_mac, dut.eth0_mac());
  EXPECT_EQ(fields.target_mac, dut.src_host_mac);
}

TEST(SlowPathArp, IgnoresRequestForForeignAddress) {
  RouterDut dut;
  net::Packet req = net::build_arp_request(
      dut.src_host_mac, net::Ipv4Addr::parse("10.10.1.2").value(),
      net::Ipv4Addr::parse("10.10.1.77").value());
  CycleTrace trace;
  dut.kernel.rx(dut.eth0_ifindex(), std::move(req), trace);
  EXPECT_TRUE(dut.tx_eth0.empty());
}

TEST(SlowPathIcmp, EchoReply) {
  RouterDut dut;
  net::Packet echo = net::build_icmp_echo(
      dut.src_host_mac, dut.eth0_mac(),
      net::Ipv4Addr::parse("10.10.1.2").value(),
      net::Ipv4Addr::parse("10.10.1.1").value(), /*is_reply=*/false, 42, 7);
  CycleTrace trace;
  dut.kernel.rx(dut.eth0_ifindex(), std::move(echo), trace);
  ASSERT_EQ(dut.tx_eth0.size(), 1u);
  auto out = net::parse_packet(dut.tx_eth0[0]);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->ip_proto, net::kIpProtoIcmp);
  EXPECT_EQ(out->ip_dst.to_string(), "10.10.1.2");
  net::IcmpView icmp(dut.tx_eth0[0].data() + out->l4_offset);
  EXPECT_EQ(icmp.type(), 0);  // reply
  EXPECT_EQ(icmp.ident(), 42);
  EXPECT_EQ(icmp.sequence(), 7);
  EXPECT_EQ(dut.kernel.counters().icmp_echo_replies, 1u);
}

TEST(SlowPathFilter, ForwardChainDropsOnPath) {
  RouterDut dut;
  dut.add_prefixes(5);
  dut.run("iptables -A FORWARD -d 10.100.0.0/24 -j DROP");
  CycleTrace trace;
  auto summary =
      dut.kernel.rx(dut.eth0_ifindex(), dut.packet_to_prefix(0), trace);
  EXPECT_EQ(summary.drop, Drop::kPolicy);
  EXPECT_TRUE(dut.tx_eth1.empty());
  // Other prefixes still forward.
  CycleTrace trace2;
  auto ok = dut.kernel.rx(dut.eth0_ifindex(), dut.packet_to_prefix(1), trace2);
  EXPECT_EQ(ok.drop, Drop::kNone);
  EXPECT_EQ(dut.tx_eth1.size(), 1u);
}

TEST(SlowPathFilter, FilterCostScalesWithRules) {
  RouterDut dut;
  dut.add_prefixes(5);
  CycleTrace base_trace;
  dut.kernel.rx(dut.eth0_ifindex(), dut.packet_to_prefix(0), base_trace);

  for (int i = 0; i < 100; ++i) {
    dut.run("iptables -A FORWARD -s 10.77." + std::to_string(i) +
            ".0/24 -j DROP");
  }
  CycleTrace filtered_trace;
  dut.kernel.rx(dut.eth0_ifindex(), dut.packet_to_prefix(0), filtered_trace);
  EXPECT_GT(filtered_trace.total(),
            base_trace.total() + 100 * dut.kernel.cost().ipt_per_rule);
}

TEST(SlowPathBridge, LearnsFloodsAndForwards) {
  Kernel k("br-host");
  std::vector<net::Packet> tx1, tx2, tx3;
  k.add_phys_dev("p1").set_phys_tx(
      [&](net::Packet&& p) { tx1.push_back(std::move(p)); });
  k.add_phys_dev("p2").set_phys_tx(
      [&](net::Packet&& p) { tx2.push_back(std::move(p)); });
  k.add_phys_dev("p3").set_phys_tx(
      [&](net::Packet&& p) { tx3.push_back(std::move(p)); });
  ASSERT_TRUE(run_command(k, "brctl addbr br0").ok());
  for (const char* d : {"p1", "p2", "p3", "br0"}) {
    ASSERT_TRUE(run_command(k, std::string("ip link set ") + d + " up").ok());
  }
  ASSERT_TRUE(run_command(k, "brctl addif br0 p1").ok());
  ASSERT_TRUE(run_command(k, "brctl addif br0 p2").ok());
  ASSERT_TRUE(run_command(k, "brctl addif br0 p3").ok());

  auto host_a = net::MacAddr::from_id(0xA);
  auto host_b = net::MacAddr::from_id(0xB);
  net::FlowKey f;
  f.src_ip = net::Ipv4Addr::parse("192.168.0.10").value();
  f.dst_ip = net::Ipv4Addr::parse("192.168.0.20").value();

  // Unknown destination: flood out every other port.
  CycleTrace t1;
  k.rx(k.dev_by_name("p1")->ifindex(),
       net::build_udp_packet(host_a, host_b, f, 64), t1);
  EXPECT_EQ(tx2.size(), 1u);
  EXPECT_EQ(tx3.size(), 1u);
  EXPECT_TRUE(tx1.empty());
  EXPECT_EQ(k.counters().flooded, 1u);

  // B replies from p2: A was learned, so unicast only to p1.
  net::FlowKey back;
  back.src_ip = f.dst_ip;
  back.dst_ip = f.src_ip;
  CycleTrace t2;
  k.rx(k.dev_by_name("p2")->ifindex(),
       net::build_udp_packet(host_b, host_a, back, 64), t2);
  EXPECT_EQ(tx1.size(), 1u);
  EXPECT_EQ(tx3.size(), 1u);  // unchanged
  EXPECT_EQ(k.counters().bridged, 1u);

  // Now A -> B is also unicast.
  CycleTrace t3;
  k.rx(k.dev_by_name("p1")->ifindex(),
       net::build_udp_packet(host_a, host_b, f, 64), t3);
  EXPECT_EQ(tx2.size(), 2u);
  EXPECT_EQ(tx3.size(), 1u);
}

TEST(SlowPathBridge, VlanFilteringDropsDisallowed) {
  Kernel k("br-host");
  std::vector<net::Packet> tx2;
  k.add_phys_dev("p1");
  k.add_phys_dev("p2").set_phys_tx(
      [&](net::Packet&& p) { tx2.push_back(std::move(p)); });
  ASSERT_TRUE(run_command(k, "brctl addbr br0").ok());
  for (const char* d : {"p1", "p2", "br0"}) {
    ASSERT_TRUE(run_command(k, std::string("ip link set ") + d + " up").ok());
  }
  ASSERT_TRUE(run_command(k, "brctl addif br0 p1").ok());
  ASSERT_TRUE(run_command(k, "brctl addif br0 p2").ok());
  ASSERT_TRUE(run_command(k, "bridge vlan add dev p1 vid 100").ok());
  // p2 does NOT allow vid 100.

  auto host_a = net::MacAddr::from_id(0xA);
  auto host_b = net::MacAddr::from_id(0xB);
  // Teach the FDB where B lives (static), so the drop is a VLAN effect.
  ASSERT_TRUE(run_command(k, "bridge fdb add " + host_b.to_string() +
                                 " dev p2 vlan 100")
                  .ok());
  net::FlowKey f;
  f.src_ip = net::Ipv4Addr::parse("192.168.0.10").value();
  f.dst_ip = net::Ipv4Addr::parse("192.168.0.20").value();
  net::Packet pkt = net::build_udp_packet(host_a, host_b, f, 64);
  net::insert_vlan_tag(pkt, 100);
  CycleTrace t;
  auto summary = k.rx(k.dev_by_name("p1")->ifindex(), std::move(pkt), t);
  EXPECT_EQ(summary.drop, Drop::kVlanFiltered);
  EXPECT_TRUE(tx2.empty());
}

TEST(SlowPathVeth, CrossKernelDelivery) {
  Kernel host("host");
  Kernel pod("pod");
  host.add_veth_to("veth-host", pod, "eth0");
  ASSERT_TRUE(host.set_link_up("veth-host", true).ok());
  ASSERT_TRUE(pod.set_link_up("eth0", true).ok());
  ASSERT_TRUE(pod.add_addr("eth0", net::IfAddr::parse("10.244.0.5/24").value())
                  .ok());

  // ICMP echo into the pod; the pod's kernel replies back across the veth.
  auto gw_mac = net::MacAddr::from_id(0x1);
  net::Packet echo = net::build_icmp_echo(
      gw_mac, pod.dev_by_name("eth0")->mac(),
      net::Ipv4Addr::parse("10.244.0.1").value(),
      net::Ipv4Addr::parse("10.244.0.5").value(), false, 1, 1);
  // Pod needs a route + neighbour back.
  ASSERT_TRUE(pod.add_neigh(net::Ipv4Addr::parse("10.244.0.1").value(),
                            gw_mac, "eth0", true)
                  .ok());
  CycleTrace t;
  host.dev_xmit(host.dev_by_name("veth-host")->ifindex(), std::move(echo), t);
  EXPECT_EQ(pod.counters().icmp_echo_replies, 1u);
  // The reply crossed back into the host kernel (rx on veth-host).
  EXPECT_EQ(host.dev_by_name("veth-host")->stats().rx_packets, 1u);
}

TEST(SlowPathStage, TraceRecordsHotSpotSequence) {
  RouterDut dut;
  dut.add_prefixes(5);
  CycleTrace trace(/*record_stages=*/true);
  dut.kernel.rx(dut.eth0_ifindex(), dut.packet_to_prefix(0), trace);
  std::vector<std::string> stages;
  for (auto& [name, cycles] : trace.stages()) stages.push_back(name);
  // The Fig 1 observation: forwarding traffic walks a fixed stage sequence.
  EXPECT_EQ(stages.front(), "driver_rx");
  EXPECT_NE(std::find(stages.begin(), stages.end(), "fib_lookup"),
            stages.end());
  EXPECT_NE(std::find(stages.begin(), stages.end(), "ip_forward"),
            stages.end());
  EXPECT_EQ(stages.back(), "driver_tx");
}

}  // namespace
}  // namespace linuxfp::kern
