#include "kernel/fib.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace linuxfp::kern {
namespace {

Route make_route(const std::string& prefix, const std::string& gw, int oif) {
  Route r;
  r.dst = net::Ipv4Prefix::parse(prefix).value();
  if (!gw.empty()) r.gateway = net::Ipv4Addr::parse(gw).value();
  r.oif = oif;
  r.scope = gw.empty() ? RouteScope::kLink : RouteScope::kGlobal;
  return r;
}

TEST(Fib, LongestPrefixWins) {
  Fib fib;
  fib.add_route(make_route("10.0.0.0/8", "1.1.1.1", 1));
  fib.add_route(make_route("10.10.0.0/16", "2.2.2.2", 2));
  fib.add_route(make_route("10.10.3.0/24", "3.3.3.3", 3));

  auto r = fib.lookup(net::Ipv4Addr::parse("10.10.3.7").value());
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->route.oif, 3);

  r = fib.lookup(net::Ipv4Addr::parse("10.10.9.1").value());
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->route.oif, 2);

  r = fib.lookup(net::Ipv4Addr::parse("10.200.0.1").value());
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->route.oif, 1);

  EXPECT_FALSE(fib.lookup(net::Ipv4Addr::parse("11.0.0.1").value()));
}

TEST(Fib, DefaultRoute) {
  Fib fib;
  fib.add_route(make_route("0.0.0.0/0", "9.9.9.9", 5));
  auto r = fib.lookup(net::Ipv4Addr::parse("123.45.67.89").value());
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->route.oif, 5);
  EXPECT_EQ(r->next_hop.to_string(), "9.9.9.9");
}

TEST(Fib, ConnectedRouteNextHopIsDestination) {
  Fib fib;
  fib.add_route(make_route("10.10.1.0/24", "", 2));
  auto r = fib.lookup(net::Ipv4Addr::parse("10.10.1.77").value());
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->next_hop.to_string(), "10.10.1.77");
  EXPECT_EQ(r->route.scope, RouteScope::kLink);
}

TEST(Fib, DeleteRoute) {
  Fib fib;
  fib.add_route(make_route("10.0.0.0/8", "1.1.1.1", 1));
  fib.add_route(make_route("10.10.0.0/16", "2.2.2.2", 2));
  EXPECT_EQ(fib.size(), 2u);
  EXPECT_TRUE(fib.del_route(net::Ipv4Prefix::parse("10.10.0.0/16").value()));
  EXPECT_EQ(fib.size(), 1u);
  EXPECT_FALSE(fib.del_route(net::Ipv4Prefix::parse("10.10.0.0/16").value()));
  auto r = fib.lookup(net::Ipv4Addr::parse("10.10.1.1").value());
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->route.oif, 1);  // falls back to the /8
}

TEST(Fib, ReplaceSamePrefix) {
  Fib fib;
  fib.add_route(make_route("10.0.0.0/8", "1.1.1.1", 1));
  fib.add_route(make_route("10.0.0.0/8", "5.5.5.5", 5));
  EXPECT_EQ(fib.size(), 1u);
  auto r = fib.lookup(net::Ipv4Addr::parse("10.1.1.1").value());
  EXPECT_EQ(r->route.oif, 5);
}

TEST(Fib, SamePrefixDistinctMetricsCoexist) {
  // Regression: the FIB used to key routes by prefix alone, so
  // `ip route add ... metric 200` silently replaced the metric-0 route and
  // deleting it took the primary down with it. Same-prefix routes with
  // distinct metrics are separate entries; the lowest metric is active.
  Fib fib;
  Route primary = make_route("10.50.0.0/16", "1.1.1.1", 1);
  primary.metric = 0;
  Route backup = make_route("10.50.0.0/16", "2.2.2.2", 2);
  backup.metric = 200;
  fib.add_route(primary);
  fib.add_route(backup);
  EXPECT_EQ(fib.size(), 2u);

  auto r = fib.lookup(net::Ipv4Addr::parse("10.50.3.3").value());
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->route.oif, 1) << "lowest metric must win";

  // Deleting the backup by metric leaves the primary serving traffic.
  EXPECT_TRUE(
      fib.del_route(net::Ipv4Prefix::parse("10.50.0.0/16").value(), 200));
  EXPECT_EQ(fib.size(), 1u);
  r = fib.lookup(net::Ipv4Addr::parse("10.50.3.3").value());
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->route.oif, 1);

  // Re-add the backup, then drop the primary: traffic fails over.
  fib.add_route(backup);
  EXPECT_TRUE(fib.del_route(net::Ipv4Prefix::parse("10.50.0.0/16").value(), 0));
  r = fib.lookup(net::Ipv4Addr::parse("10.50.3.3").value());
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->route.oif, 2);

  // Deleting a metric that does not exist is a miss, not a wildcard.
  EXPECT_FALSE(
      fib.del_route(net::Ipv4Prefix::parse("10.50.0.0/16").value(), 5));
}

TEST(Fib, ReplaceIsPerMetricAndDumpListsAll) {
  Fib fib;
  Route primary = make_route("10.60.0.0/16", "1.1.1.1", 1);
  primary.metric = 10;
  Route backup = make_route("10.60.0.0/16", "2.2.2.2", 2);
  backup.metric = 20;
  fib.add_route(primary);
  fib.add_route(backup);

  // Re-adding (prefix, metric=10) with a new gateway replaces only that
  // entry — `ip route replace` semantics.
  Route replacement = make_route("10.60.0.0/16", "3.3.3.3", 3);
  replacement.metric = 10;
  fib.add_route(replacement);
  EXPECT_EQ(fib.size(), 2u);

  auto r = fib.lookup(net::Ipv4Addr::parse("10.60.1.1").value());
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->route.oif, 3);

  auto got = fib.get_route(net::Ipv4Prefix::parse("10.60.0.0/16").value(), 20);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->oif, 2) << "backup untouched by the metric-10 replace";

  // Metric-less delete removes the active (lowest-metric) route.
  EXPECT_TRUE(fib.del_route(net::Ipv4Prefix::parse("10.60.0.0/16").value()));
  r = fib.lookup(net::Ipv4Addr::parse("10.60.1.1").value());
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->route.oif, 2);

  EXPECT_EQ(fib.dump().size(), 1u);
}

TEST(Fib, LookupReportsTrieDepth) {
  Fib fib;
  fib.add_route(make_route("10.0.0.0/8", "1.1.1.1", 1));
  fib.add_route(make_route("10.10.0.0/16", "2.2.2.2", 2));
  auto shallow = fib.lookup(net::Ipv4Addr::parse("10.200.0.1").value());
  auto deep = fib.lookup(net::Ipv4Addr::parse("10.10.0.1").value());
  ASSERT_TRUE(shallow.has_value());
  ASSERT_TRUE(deep.has_value());
  EXPECT_GT(shallow->depth, 0u);
  EXPECT_GT(deep->depth, shallow->depth)
      << "/16 match must walk deeper than the /8";
}

TEST(Fib, PurgeInterface) {
  Fib fib;
  fib.add_route(make_route("10.1.0.0/16", "1.1.1.1", 1));
  fib.add_route(make_route("10.2.0.0/16", "2.2.2.2", 2));
  fib.add_route(make_route("10.3.0.0/16", "2.2.2.3", 2));
  auto removed = fib.purge_interface(2);
  EXPECT_EQ(removed.size(), 2u);
  EXPECT_EQ(fib.size(), 1u);
  EXPECT_FALSE(fib.lookup(net::Ipv4Addr::parse("10.2.0.1").value()));
}

TEST(Fib, DumpRoundTrip) {
  Fib fib;
  for (int i = 0; i < 50; ++i) {
    fib.add_route(make_route("10." + std::to_string(i) + ".0.0/24",
                             "2.2.2.2", 2));
  }
  EXPECT_EQ(fib.dump().size(), 50u);
  EXPECT_EQ(fib.size(), 50u);
}

TEST(Fib, RandomizedAgainstLinearScan) {
  util::Rng rng(1234);
  Fib fib;
  std::vector<Route> routes;
  for (int i = 0; i < 300; ++i) {
    auto len = static_cast<std::uint8_t>(8 + rng.next_below(17));
    net::Ipv4Addr base(rng.next_u32());
    Route r;
    r.dst = net::Ipv4Prefix(base, len);
    r.gateway = net::Ipv4Addr(rng.next_u32() | 1);
    r.oif = static_cast<int>(1 + rng.next_below(8));
    // Avoid duplicate prefixes (replace semantics would diverge from the
    // reference list).
    bool dup = false;
    for (const auto& existing : routes) {
      if (existing.dst == r.dst) dup = true;
    }
    if (dup) continue;
    routes.push_back(r);
    fib.add_route(r);
  }
  for (int trial = 0; trial < 2000; ++trial) {
    net::Ipv4Addr probe(rng.next_u32());
    const Route* best = nullptr;
    for (const auto& r : routes) {
      if (r.dst.contains(probe) &&
          (!best || r.dst.prefix_len() > best->dst.prefix_len())) {
        best = &r;
      }
    }
    auto got = fib.lookup(probe);
    if (!best) {
      EXPECT_FALSE(got.has_value());
    } else {
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(got->route.dst.to_string(), best->dst.to_string());
    }
  }
}

}  // namespace
}  // namespace linuxfp::kern
