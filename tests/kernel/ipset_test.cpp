// ipset capacity behavior: sets created with `maxelem N` reject new members
// once full (the kernel's "Hash is full, cannot add more elements" error),
// while re-adds of existing members and del-then-add churn keep working.
#include "kernel/ipset.h"

#include <gtest/gtest.h>

#include "kernel/commands.h"
#include "kernel/kernel.h"

namespace linuxfp::kern {
namespace {

net::Ipv4Prefix host(int i) {
  return net::Ipv4Prefix(
      net::Ipv4Addr::from_octets(10, 0, static_cast<std::uint8_t>(i / 250),
                                 static_cast<std::uint8_t>(1 + i % 250)),
      32);
}

TEST(IpSet, AddBeyondMaxElemFails) {
  IpSet set("bl", IpSetType::kHashIp, 3);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(set.add(host(i)).ok());
  }
  auto st = set.add(host(3));
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, "ipset.full");
  EXPECT_EQ(set.size(), 3u);
  // The rejected member must not match.
  EXPECT_FALSE(set.test(host(3).network()));
  EXPECT_TRUE(set.test(host(0).network()));
}

TEST(IpSet, ReAddingExistingMemberAtCapacityIsOk) {
  IpSet set("bl", IpSetType::kHashIp, 2);
  ASSERT_TRUE(set.add(host(0)).ok());
  ASSERT_TRUE(set.add(host(1)).ok());
  // Kernel semantics: adding a member that is already present succeeds even
  // when the set is full.
  EXPECT_TRUE(set.add(host(0)).ok());
  EXPECT_EQ(set.size(), 2u);
}

TEST(IpSet, DelThenAddReclaimsCapacity) {
  IpSet set("bl", IpSetType::kHashIp, 2);
  ASSERT_TRUE(set.add(host(0)).ok());
  ASSERT_TRUE(set.add(host(1)).ok());
  ASSERT_FALSE(set.add(host(2)).ok());
  EXPECT_TRUE(set.del(host(0)));
  EXPECT_TRUE(set.add(host(2)).ok());
  EXPECT_EQ(set.size(), 2u);
  EXPECT_FALSE(set.test(host(0).network()));
  EXPECT_TRUE(set.test(host(2).network()));
}

TEST(IpSet, HashNetRespectsMaxElem) {
  IpSet set("nets", IpSetType::kHashNet, 2);
  ASSERT_TRUE(
      set.add(net::Ipv4Prefix(net::Ipv4Addr::parse("10.1.0.0").value(), 16))
          .ok());
  ASSERT_TRUE(
      set.add(net::Ipv4Prefix(net::Ipv4Addr::parse("10.2.0.0").value(), 24))
          .ok());
  auto st =
      set.add(net::Ipv4Prefix(net::Ipv4Addr::parse("10.3.0.0").value(), 24));
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, "ipset.full");
  // Existing prefixes still match across lengths.
  EXPECT_TRUE(set.test(net::Ipv4Addr::parse("10.1.200.7").value()));
  EXPECT_FALSE(set.test(net::Ipv4Addr::parse("10.3.0.7").value()));
}

TEST(IpSet, CommandFrontEndParsesMaxElem) {
  Kernel kernel("dut");
  ASSERT_TRUE(
      run_command(kernel, "ipset create small hash:ip maxelem 2").ok());
  ASSERT_TRUE(run_command(kernel, "ipset add small 10.0.0.1").ok());
  ASSERT_TRUE(run_command(kernel, "ipset add small 10.0.0.2").ok());
  auto st = run_command(kernel, "ipset add small 10.0.0.3");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, "ipset.full");
  // Default-capacity sets are unaffected.
  ASSERT_TRUE(run_command(kernel, "ipset create big hash:ip").ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        run_command(kernel, "ipset add big 10.0.1." + std::to_string(1 + i))
            .ok());
  }
  // Malformed maxelem is rejected at parse time.
  EXPECT_FALSE(run_command(kernel, "ipset create bad hash:ip maxelem x").ok());
  EXPECT_FALSE(run_command(kernel, "ipset create bad hash:ip maxelem 0").ok());
  EXPECT_FALSE(run_command(kernel, "ipset create bad hash:ip bogus 3").ok());
}

}  // namespace
}  // namespace linuxfp::kern
