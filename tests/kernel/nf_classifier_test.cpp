// Compiled rule classifier (DESIGN.md §17): exactness against the linear
// scan, incremental maintenance, generation coherence, and the mutation
// audit the flowcache's generation vector depends on.
#include "kernel/nf_classifier.h"

#include <gtest/gtest.h>

#include "kernel/cost_model.h"
#include "kernel/netfilter.h"

namespace linuxfp::kern {
namespace {

NfPacketInfo info(const std::string& src, const std::string& dst,
                  std::uint8_t proto = 17, std::uint16_t dport = 0,
                  std::uint16_t sport = 0) {
  NfPacketInfo i;
  i.src = net::Ipv4Addr::parse(src).value();
  i.dst = net::Ipv4Addr::parse(dst).value();
  i.proto = proto;
  i.dport = dport;
  i.sport = sport;
  i.bytes = 64;
  return i;
}

Rule rule_src(const std::string& prefix, RuleTarget t = RuleTarget::kDrop) {
  Rule r;
  r.match.src = net::Ipv4Prefix::parse(prefix).value();
  r.target = t;
  return r;
}

// Twin tables: every mutation is applied to both; `clf` compiles, `lin`
// scans. Exactness = identical NfEvalResult accounting, verdicts and
// per-rule hit counters for any packet sequence.
struct Twin {
  Netfilter lin;
  Netfilter clf;
  IpSetManager sets;

  Twin() { clf.set_classifier_enabled(true); }

  void both(util::Status (Netfilter::*op)(const std::string&, Rule),
            const std::string& chain, const Rule& rule) {
    ASSERT_TRUE((lin.*op)(chain, rule).ok());
    ASSERT_TRUE((clf.*op)(chain, rule).ok());
  }

  void append(const std::string& chain, const Rule& rule) {
    both(&Netfilter::append_rule, chain, rule);
  }

  void check(NfHook hook, const NfPacketInfo& i, const char* what) {
    NfEvalResult a = lin.evaluate(hook, i, sets);
    NfEvalResult b = clf.evaluate(hook, i, sets);
    EXPECT_EQ(a.verdict, b.verdict) << what;
    EXPECT_EQ(a.rules_examined, b.rules_examined) << what;
    EXPECT_EQ(a.ipset_probes, b.ipset_probes) << what;
    EXPECT_FALSE(a.compiled) << what;
    EXPECT_TRUE(b.compiled) << what;
  }

  void check_hits(const char* what) {
    for (const Chain* lc : lin.dump()) {
      const Chain* cc = clf.find_chain(lc->name);
      ASSERT_NE(cc, nullptr) << what;
      ASSERT_EQ(lc->rules.size(), cc->rules.size()) << what;
      for (std::size_t i = 0; i < lc->rules.size(); ++i) {
        EXPECT_EQ(lc->rules[i].hits, cc->rules[i].hits)
            << what << " chain " << lc->name << " rule " << i;
        EXPECT_EQ(lc->rules[i].hit_bytes, cc->rules[i].hit_bytes)
            << what << " chain " << lc->name << " rule " << i;
      }
    }
  }
};

TEST(NfClassifier, EveryMutationBumpsGeneration) {
  Netfilter nf;
  std::uint64_t gen = nf.generation();
  auto bumped = [&](const char* what) {
    EXPECT_GT(nf.generation(), gen) << what;
    gen = nf.generation();
  };
  ASSERT_TRUE(nf.new_chain("USER").ok());
  bumped("new_chain");
  ASSERT_TRUE(nf.append_rule("USER", rule_src("10.1.0.0/16")).ok());
  bumped("append_rule");
  ASSERT_TRUE(nf.insert_rule("USER", 0, rule_src("10.2.0.0/16")).ok());
  bumped("insert_rule");
  ASSERT_TRUE(nf.delete_rule("USER", 0).ok());
  bumped("delete_rule");
  ASSERT_TRUE(nf.set_policy("FORWARD", NfVerdict::kDrop).ok());
  bumped("set_policy");
  ASSERT_TRUE(nf.flush("USER").ok());
  bumped("flush");
  ASSERT_TRUE(nf.delete_chain("USER").ok());
  bumped("delete_chain");
}

TEST(NfClassifier, IpsetChurnBumpsManagerGeneration) {
  IpSetManager sets;
  std::uint64_t gen = sets.generation();
  ASSERT_TRUE(sets.create("bl", IpSetType::kHashIp).ok());
  EXPECT_GT(sets.generation(), gen);
  gen = sets.generation();
  ASSERT_TRUE(
      sets.find("bl")->add(net::Ipv4Prefix::parse("10.1.1.1").value()).ok());
  EXPECT_GT(sets.generation(), gen);
  gen = sets.generation();
  ASSERT_TRUE(
      sets.find("bl")->del(net::Ipv4Prefix::parse("10.1.1.1").value()));
  EXPECT_GT(sets.generation(), gen);
  gen = sets.generation();
  ASSERT_TRUE(sets.destroy("bl").ok());
  EXPECT_GT(sets.generation(), gen);
}

TEST(NfClassifier, ClassifierTracksEveryMutationKind) {
  Netfilter nf;
  nf.set_classifier_enabled(true);
  auto current = [&](const char* what) {
    EXPECT_TRUE(nf.classifier()->ready(nf.generation())) << what;
  };
  current("after enable");
  ASSERT_TRUE(nf.new_chain("USER").ok());
  current("new_chain");
  ASSERT_TRUE(nf.append_rule("USER", rule_src("10.1.0.0/16")).ok());
  current("append_rule");
  ASSERT_TRUE(nf.insert_rule("USER", 0, rule_src("10.2.0.0/16")).ok());
  current("insert_rule");
  ASSERT_TRUE(nf.delete_rule("USER", 0).ok());
  current("delete_rule");
  ASSERT_TRUE(nf.set_policy("FORWARD", NfVerdict::kDrop).ok());
  current("set_policy");
  ASSERT_TRUE(nf.flush("USER").ok());
  current("flush");
  ASSERT_TRUE(nf.delete_chain("USER").ok());
  current("delete_chain");
}

TEST(NfClassifier, HomogeneousRulesetCompilesToOneTuple) {
  Netfilter nf;
  nf.set_classifier_enabled(true);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(nf.append_rule("FORWARD",
                               rule_src("10.9." + std::to_string(i / 250) +
                                        "." + std::to_string(1 + i % 250)))
                    .ok());
  }
  EXPECT_EQ(nf.classifier()->tuple_count("FORWARD"), 1u);
  EXPECT_EQ(nf.classifier()->residual_count("FORWARD"), 0u);
  EXPECT_EQ(nf.classifier()->incremental_appends(), 1000u);
  EXPECT_EQ(nf.classifier()->chain_rebuilds(), 0u);

  IpSetManager sets;
  // Miss: the linear path would examine all 1000 rules; the compiled path
  // reports the same accounting but answers with one tuple probe.
  NfEvalResult res =
      nf.evaluate(NfHook::kForward, info("10.8.0.1", "2.2.2.2"), sets);
  EXPECT_TRUE(res.compiled);
  EXPECT_EQ(res.rules_examined, 1000u);
  EXPECT_EQ(res.tuple_probes, 1u);
  EXPECT_EQ(res.residual_examined, 0u);
  // Hit on rule 500 (entry 500 = 10.9.2.1): first-match accounting.
  res = nf.evaluate(NfHook::kForward, info("10.9.2.1", "2.2.2.2"), sets);
  EXPECT_EQ(res.verdict, NfVerdict::kDrop);
  EXPECT_EQ(res.rules_examined, 501u);
  EXPECT_EQ(nf.find_chain("FORWARD")->rules[500].hits, 1u);

  // The compiled charge is the algorithmic cost; the linear charge is the
  // per-rule scan — the gap is the whole point (≥10x at 10k rules).
  CostModel cost;
  std::uint64_t compiled = nf_eval_cost(res, cost.nf_hook_base,
                                        cost.bpf_ipt_per_rule,
                                        cost.bpf_ipt_clf_probe,
                                        cost.ipset_lookup);
  NfEvalResult linear = res;
  linear.compiled = false;
  std::uint64_t scanned = nf_eval_cost(linear, cost.nf_hook_base,
                                       cost.bpf_ipt_per_rule,
                                       cost.bpf_ipt_clf_probe,
                                       cost.ipset_lookup);
  EXPECT_GT(scanned, 10 * compiled);
}

TEST(NfClassifier, FirstMatchOrderAcrossTuples) {
  Twin t;
  // Three different signatures → three tuple groups; first match must obey
  // rule order, not group order.
  t.append("FORWARD", rule_src("10.1.0.0/16", RuleTarget::kAccept));
  Rule dport;
  dport.match.proto = 6;
  dport.match.dport = 80;
  dport.target = RuleTarget::kDrop;
  t.append("FORWARD", dport);
  t.append("FORWARD", rule_src("10.1.1.0/24", RuleTarget::kDrop));

  // Matches rules 0 (ACCEPT) and 2 (DROP): rule 0 wins.
  t.check(NfHook::kForward, info("10.1.1.5", "2.2.2.2", 6, 80),
          "earlier rule wins");
  // Matches only rule 1.
  t.check(NfHook::kForward, info("9.9.9.9", "2.2.2.2", 6, 80), "tcp/80 drop");
  // Matches nothing: policy.
  t.check(NfHook::kForward, info("9.9.9.9", "2.2.2.2", 6, 443), "fallthrough");
  t.check_hits("first-match order");
}

TEST(NfClassifier, JumpsReturnsAndUserChains) {
  Twin t;
  ASSERT_TRUE(t.lin.new_chain("APP").ok());
  ASSERT_TRUE(t.clf.new_chain("APP").ok());

  Rule jump;
  jump.match.src = net::Ipv4Prefix::parse("10.0.0.0/8").value();
  jump.target = RuleTarget::kJump;
  jump.jump_chain = "APP";
  t.append("FORWARD", jump);
  t.append("FORWARD", rule_src("10.2.0.0/16", RuleTarget::kDrop));

  Rule ret;
  ret.match.dport = 53;
  ret.target = RuleTarget::kReturn;
  t.append("APP", ret);
  t.append("APP", rule_src("10.2.3.0/24", RuleTarget::kDrop));

  // Jump → RETURN (dport 53) → back to FORWARD → rule 1 drops.
  t.check(NfHook::kForward, info("10.2.3.4", "2.2.2.2", 17, 53),
          "jump/return/fallthrough");
  // Jump → APP rule 1 drops (decided inside the user chain).
  t.check(NfHook::kForward, info("10.2.3.4", "2.2.2.2", 17, 80),
          "decided in user chain");
  // Jump → APP exhausted undecided → FORWARD rule 1 misses → policy.
  t.check(NfHook::kForward, info("10.7.0.1", "2.2.2.2", 17, 80),
          "user chain undecided");
  t.check_hits("jump traversal");
}

TEST(NfClassifier, ResidualKindsStayExact) {
  Twin t;
  ASSERT_TRUE(t.sets.create("bl", IpSetType::kHashIp).ok());
  ASSERT_TRUE(t.sets.find("bl")
                  ->add(net::Ipv4Prefix::parse("10.5.0.1").value())
                  .ok());

  Rule neg;  // negated source
  neg.match.src = net::Ipv4Prefix::parse("10.0.0.0/8").value();
  neg.match.src_negated = true;
  neg.target = RuleTarget::kDrop;
  t.append("FORWARD", neg);

  Rule set;  // ipset membership
  set.match.match_set = "bl";
  set.match.set_match_src = true;
  set.target = RuleTarget::kDrop;
  t.append("FORWARD", set);

  Rule state;  // conntrack state
  state.match.ct_state = "ESTABLISHED";
  state.target = RuleTarget::kAccept;
  t.append("FORWARD", state);

  t.append("FORWARD", rule_src("10.6.0.0/16", RuleTarget::kDrop));

  EXPECT_EQ(t.clf.classifier()->residual_count("FORWARD"), 3u);
  EXPECT_EQ(t.clf.classifier()->tuple_count("FORWARD"), 1u);

  t.check(NfHook::kForward, info("11.0.0.1", "2.2.2.2"), "negation drops");
  t.check(NfHook::kForward, info("10.5.0.1", "2.2.2.2"), "ipset member");
  NfPacketInfo est = info("10.6.1.1", "2.2.2.2");
  est.ct_state = 1;
  t.check(NfHook::kForward, est, "established accepted before tuple drop");
  t.check(NfHook::kForward, info("10.6.1.1", "2.2.2.2"), "tuple drop");
  t.check(NfHook::kForward, info("10.7.0.1", "2.2.2.2"), "fallthrough");
  t.check_hits("residual kinds");

  // ipset probe accounting: a packet stopping at the tuple rule (index 3)
  // must have probed the set exactly once (rule 1), on both paths.
  NfEvalResult lin =
      t.lin.evaluate(NfHook::kForward, info("10.6.1.1", "2.2.2.2"), t.sets);
  NfEvalResult clf =
      t.clf.evaluate(NfHook::kForward, info("10.6.1.1", "2.2.2.2"), t.sets);
  EXPECT_EQ(lin.ipset_probes, 1u);
  EXPECT_EQ(clf.ipset_probes, 1u);
}

TEST(NfClassifier, InterfaceAndPortDimensions) {
  Twin t;
  Rule r;
  r.match.in_if = "eth0";
  r.match.out_if = "eth1";
  r.match.proto = 17;
  r.match.sport = 1024;
  r.target = RuleTarget::kDrop;
  t.append("FORWARD", r);

  NfPacketInfo i = info("1.1.1.1", "2.2.2.2", 17, 7, 1024);
  i.in_if = "eth0";
  i.out_if = "eth1";
  t.check(NfHook::kForward, i, "all dimensions match");
  i.out_if = "eth2";
  t.check(NfHook::kForward, i, "out_if mismatch");
  i.out_if = "eth1";
  i.sport = 1025;
  t.check(NfHook::kForward, i, "sport mismatch");
  t.check_hits("interface/port dims");
}

TEST(NfClassifier, InsertDeleteFlushRebuildTheChain) {
  Twin t;
  for (int i = 0; i < 10; ++i) {
    t.append("FORWARD", rule_src("10.9." + std::to_string(i) + ".0/24"));
  }
  // Insert an ACCEPT ahead of everything: first-match flips.
  Rule front = rule_src("10.9.0.0/16", RuleTarget::kAccept);
  ASSERT_TRUE(t.lin.insert_rule("FORWARD", 0, front).ok());
  ASSERT_TRUE(t.clf.insert_rule("FORWARD", 0, front).ok());
  EXPECT_GE(t.clf.classifier()->chain_rebuilds(), 1u);
  t.check(NfHook::kForward, info("10.9.5.1", "2.2.2.2"), "insert at front");

  ASSERT_TRUE(t.lin.delete_rule("FORWARD", 0).ok());
  ASSERT_TRUE(t.clf.delete_rule("FORWARD", 0).ok());
  t.check(NfHook::kForward, info("10.9.5.1", "2.2.2.2"), "delete front");

  ASSERT_TRUE(t.lin.flush("FORWARD").ok());
  ASSERT_TRUE(t.clf.flush("FORWARD").ok());
  t.check(NfHook::kForward, info("10.9.5.1", "2.2.2.2"), "flush");
  t.check_hits("structural mutations");
}

TEST(NfClassifier, StaleIndexFallsBackToLinear) {
  Netfilter nf;
  nf.set_classifier_enabled(true);
  ASSERT_TRUE(nf.append_rule("FORWARD", rule_src("10.9.0.0/16")).ok());
  IpSetManager sets;

  NfEvalResult res =
      nf.evaluate(NfHook::kForward, info("10.9.0.1", "2.2.2.2"), sets);
  EXPECT_TRUE(res.compiled);

  nf.classifier()->invalidate();
  res = nf.evaluate(NfHook::kForward, info("10.9.0.1", "2.2.2.2"), sets);
  EXPECT_FALSE(res.compiled);  // linear fallback, still correct
  EXPECT_EQ(res.verdict, NfVerdict::kDrop);

  // The next mutation re-syncs the index.
  ASSERT_TRUE(nf.append_rule("FORWARD", rule_src("10.10.0.0/16")).ok());
  res = nf.evaluate(NfHook::kForward, info("10.9.0.1", "2.2.2.2"), sets);
  EXPECT_TRUE(res.compiled);
}

TEST(NfClassifier, DisableRevertsToLinear) {
  Netfilter nf;
  nf.set_classifier_enabled(true);
  ASSERT_TRUE(nf.append_rule("FORWARD", rule_src("10.9.0.0/16")).ok());
  nf.set_classifier_enabled(false);
  EXPECT_FALSE(nf.classifier_enabled());
  IpSetManager sets;
  NfEvalResult res =
      nf.evaluate(NfHook::kForward, info("10.9.0.1", "2.2.2.2"), sets);
  EXPECT_FALSE(res.compiled);
  EXPECT_EQ(res.verdict, NfVerdict::kDrop);
}

}  // namespace
}  // namespace linuxfp::kern
