#include "kernel/neigh.h"

#include <gtest/gtest.h>

namespace linuxfp::kern {
namespace {

net::Ipv4Addr ip(const std::string& s) {
  return net::Ipv4Addr::parse(s).value();
}

TEST(Neigh, UpdateAndLookup) {
  NeighborTable table;
  table.update(ip("10.0.0.2"), net::MacAddr::from_id(2), 1,
               NeighState::kReachable, 1000);
  const NeighEntry* e = table.lookup(ip("10.0.0.2"));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->mac, net::MacAddr::from_id(2));
  EXPECT_EQ(e->state, NeighState::kReachable);
  EXPECT_EQ(table.lookup(ip("10.0.0.3")), nullptr);
}

TEST(Neigh, PermanentNotDowngraded) {
  NeighborTable table;
  table.update(ip("10.0.0.2"), net::MacAddr::from_id(2), 1,
               NeighState::kPermanent, 1000);
  table.update(ip("10.0.0.2"), net::MacAddr::from_id(3), 1,
               NeighState::kReachable, 2000);
  const NeighEntry* e = table.lookup(ip("10.0.0.2"));
  EXPECT_EQ(e->state, NeighState::kPermanent);
  EXPECT_EQ(e->mac, net::MacAddr::from_id(3));  // address still refreshes
}

TEST(Neigh, AgingMarksStale) {
  NeighborTable table;
  table.update(ip("10.0.0.2"), net::MacAddr::from_id(2), 1,
               NeighState::kReachable, 1000);
  table.update(ip("10.0.0.3"), net::MacAddr::from_id(3), 1,
               NeighState::kPermanent, 1000);
  EXPECT_EQ(table.age(2000 + 60'000'000'000ull, 60'000'000'000ull), 1u);
  EXPECT_EQ(table.lookup(ip("10.0.0.2"))->state, NeighState::kStale);
  EXPECT_EQ(table.lookup(ip("10.0.0.3"))->state, NeighState::kPermanent);
}

TEST(Neigh, IncompleteQueuesBounded) {
  NeighborTable table;
  NeighEntry& e = table.create_incomplete(ip("10.0.0.9"), 2, 500);
  EXPECT_EQ(e.state, NeighState::kIncomplete);
  for (int i = 0; i < 10; ++i) {
    if (e.pending.size() < NeighborTable::kMaxPending) {
      e.pending.push_back(net::Packet(64));
    }
  }
  EXPECT_EQ(e.pending.size(), NeighborTable::kMaxPending);
  // Resolution flips state, pending is flushed by the caller.
  table.update(ip("10.0.0.9"), net::MacAddr::from_id(9), 2,
               NeighState::kReachable, 600);
  EXPECT_EQ(table.lookup(ip("10.0.0.9"))->state, NeighState::kReachable);
}

TEST(Neigh, EraseAndDump) {
  NeighborTable table;
  table.update(ip("10.0.0.2"), net::MacAddr::from_id(2), 1,
               NeighState::kReachable, 0);
  table.update(ip("10.0.0.3"), net::MacAddr::from_id(3), 1,
               NeighState::kReachable, 0);
  EXPECT_EQ(table.dump().size(), 2u);
  EXPECT_TRUE(table.erase(ip("10.0.0.2")));
  EXPECT_FALSE(table.erase(ip("10.0.0.2")));
  EXPECT_EQ(table.size(), 1u);
}

}  // namespace
}  // namespace linuxfp::kern
