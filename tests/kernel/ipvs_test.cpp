// ipvs subsystem tests: virtual services, schedulers, ipvsadm front-end,
// slow-path DNAT + reply un-NAT through the director.
#include "kernel/ipvs.h"

#include <gtest/gtest.h>

#include "kernel/commands.h"
#include "kernel/kernel.h"
#include "tests/kernel/test_topo.h"

namespace linuxfp::kern {
namespace {

net::Ipv4Addr ip(const std::string& s) {
  return net::Ipv4Addr::parse(s).value();
}

TEST(Ipvs, ServiceLifecycle) {
  Ipvs ipvs;
  ASSERT_TRUE(ipvs.add_service(ip("10.0.0.100"), 80, 6,
                               IpvsScheduler::kRoundRobin)
                  .ok());
  EXPECT_FALSE(ipvs.add_service(ip("10.0.0.100"), 80, 6,
                                IpvsScheduler::kRoundRobin)
                   .ok());  // duplicate
  EXPECT_NE(ipvs.match(ip("10.0.0.100"), 6, 80), nullptr);
  EXPECT_EQ(ipvs.match(ip("10.0.0.100"), 6, 81), nullptr);
  EXPECT_EQ(ipvs.match(ip("10.0.0.100"), 17, 80), nullptr);
  ASSERT_TRUE(ipvs.del_service(ip("10.0.0.100"), 80, 6).ok());
  EXPECT_FALSE(ipvs.del_service(ip("10.0.0.100"), 80, 6).ok());
}

TEST(Ipvs, RoundRobinRespectsWeights) {
  Ipvs ipvs;
  ASSERT_TRUE(ipvs.add_service(ip("10.0.0.100"), 80, 6,
                               IpvsScheduler::kRoundRobin)
                  .ok());
  ASSERT_TRUE(
      ipvs.add_backend(ip("10.0.0.100"), 80, 6, ip("10.2.0.1"), 8080, 3).ok());
  ASSERT_TRUE(
      ipvs.add_backend(ip("10.0.0.100"), 80, 6, ip("10.2.0.2"), 8080, 1).ok());
  const VirtualService* svc = ipvs.match(ip("10.0.0.100"), 6, 80);
  ASSERT_NE(svc, nullptr);

  int first = 0, second = 0;
  for (int i = 0; i < 400; ++i) {
    const RealServer* rs = ipvs.schedule(*svc, ip("1.2.3.4"));
    ASSERT_NE(rs, nullptr);
    (rs->addr == ip("10.2.0.1") ? first : second)++;
  }
  EXPECT_EQ(first, 300);  // 3:1 weight wheel
  EXPECT_EQ(second, 100);
}

TEST(Ipvs, SourceHashIsStablePerClient) {
  Ipvs ipvs;
  ASSERT_TRUE(ipvs.add_service(ip("10.0.0.100"), 80, 6,
                               IpvsScheduler::kSourceHash)
                  .ok());
  for (int i = 1; i <= 4; ++i) {
    ASSERT_TRUE(ipvs.add_backend(ip("10.0.0.100"), 80, 6,
                                 ip("10.2.0." + std::to_string(i)), 8080, 1)
                    .ok());
  }
  const VirtualService* svc = ipvs.match(ip("10.0.0.100"), 6, 80);
  // Same client always lands on the same backend.
  const RealServer* a = ipvs.schedule(*svc, ip("9.9.9.9"));
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(ipvs.schedule(*svc, ip("9.9.9.9")), a);
  }
  // Different clients spread across backends.
  std::set<const RealServer*> seen;
  for (int i = 1; i < 64; ++i) {
    seen.insert(ipvs.schedule(*svc, ip("9.9.9." + std::to_string(i))));
  }
  EXPECT_GE(seen.size(), 3u);
}

TEST(Ipvs, EmptyServiceSchedulesNothing) {
  Ipvs ipvs;
  ASSERT_TRUE(ipvs.add_service(ip("10.0.0.100"), 80, 6,
                               IpvsScheduler::kRoundRobin)
                  .ok());
  const VirtualService* svc = ipvs.match(ip("10.0.0.100"), 6, 80);
  EXPECT_EQ(ipvs.schedule(*svc, ip("1.1.1.1")), nullptr);
}

TEST(IpvsAdm, CommandFrontEnd) {
  Kernel k("lb");
  ASSERT_TRUE(run_command(k, "ipvsadm -A -t 10.0.0.100:80 -s rr").ok());
  ASSERT_TRUE(
      run_command(k, "ipvsadm -a -t 10.0.0.100:80 -r 10.2.0.5:8080 -w 2")
          .ok());
  ASSERT_TRUE(
      run_command(k, "ipvsadm -a -t 10.0.0.100:80 -r 10.2.0.6:8080").ok());
  EXPECT_EQ(k.ipvs().service_count(), 1u);
  const VirtualService* svc = k.ipvs().match(ip("10.0.0.100"), 6, 80);
  ASSERT_NE(svc, nullptr);
  ASSERT_EQ(svc->backends.size(), 2u);
  EXPECT_EQ(svc->backends[0].weight, 2u);

  ASSERT_TRUE(run_command(k, "ipvsadm -A -u 10.0.0.101:53 -s sh").ok());
  EXPECT_NE(k.ipvs().match(ip("10.0.0.101"), 17, 53), nullptr);

  EXPECT_FALSE(run_command(k, "ipvsadm -A -t nonsense").ok());
  EXPECT_FALSE(run_command(k, "ipvsadm -a -t 10.0.0.100:80").ok());
  EXPECT_FALSE(
      run_command(k, "ipvsadm -a -t 10.0.0.200:80 -r 10.2.0.5:80").ok());
  ASSERT_TRUE(run_command(k, "ipvsadm -D -t 10.0.0.100:80").ok());
}

// Director rig: RouterDut + a VIP served by two backends in the 10.100.0/24
// sink subnet.
struct DirectorRig {
  linuxfp::testing::RouterDut dut;

  DirectorRig() {
    dut.add_prefixes(1);  // 10.100.0.0/24 via 10.10.2.2
    dut.run("ipvsadm -A -t 10.0.0.100:80 -s rr");
    dut.run("ipvsadm -a -t 10.0.0.100:80 -r 10.100.0.5:8080");
    dut.run("ipvsadm -a -t 10.0.0.100:80 -r 10.100.0.6:8080");
  }

  net::Packet client_packet(std::uint16_t sport) {
    net::FlowKey f;
    f.src_ip = ip_("10.10.1.2");
    f.dst_ip = ip_("10.0.0.100");
    f.proto = net::kIpProtoTcp;
    f.src_port = sport;
    f.dst_port = 80;
    return net::build_tcp_packet(dut.src_host_mac, dut.eth0_mac(), f, 0x18,
                                 64);
  }

  net::Packet backend_reply(const std::string& backend, std::uint16_t dport) {
    net::FlowKey f;
    f.src_ip = ip_(backend);
    f.dst_ip = ip_("10.10.1.2");
    f.proto = net::kIpProtoTcp;
    f.src_port = 8080;
    f.dst_port = dport;
    return net::build_tcp_packet(dut.sink_gw_mac, dut.eth1_mac(), f, 0x18, 64);
  }

  static net::Ipv4Addr ip_(const std::string& s) {
    return net::Ipv4Addr::parse(s).value();
  }
};

TEST(IpvsDirector, DnatsNewFlowsRoundRobin) {
  DirectorRig rig;
  kern::CycleTrace t1, t2;
  rig.dut.kernel.rx(rig.dut.eth0_ifindex(), rig.client_packet(4000), t1);
  rig.dut.kernel.rx(rig.dut.eth0_ifindex(), rig.client_packet(4001), t2);

  ASSERT_EQ(rig.dut.tx_eth1.size(), 2u);
  std::set<std::string> backends;
  for (const net::Packet& pkt : rig.dut.tx_eth1) {
    auto parsed = net::parse_packet(pkt);
    ASSERT_TRUE(parsed.has_value());
    backends.insert(parsed->ip_dst.to_string());
    EXPECT_EQ(parsed->dst_port, 8080);
    net::Ipv4View iph(const_cast<std::uint8_t*>(pkt.data()) +
                      parsed->l3_offset);
    EXPECT_TRUE(iph.checksum_valid());
  }
  EXPECT_EQ(backends,
            (std::set<std::string>{"10.100.0.5", "10.100.0.6"}));
}

TEST(IpvsDirector, FlowAffinityAcrossPackets) {
  DirectorRig rig;
  for (int i = 0; i < 4; ++i) {
    kern::CycleTrace t;
    rig.dut.kernel.rx(rig.dut.eth0_ifindex(), rig.client_packet(5000), t);
  }
  ASSERT_EQ(rig.dut.tx_eth1.size(), 4u);
  std::set<std::string> backends;
  for (const net::Packet& pkt : rig.dut.tx_eth1) {
    backends.insert(net::parse_packet(pkt)->ip_dst.to_string());
  }
  EXPECT_EQ(backends.size(), 1u);  // one conntrack entry, one backend
}

TEST(IpvsDirector, RepliesUnNattedToVip) {
  DirectorRig rig;
  kern::CycleTrace t;
  rig.dut.kernel.rx(rig.dut.eth0_ifindex(), rig.client_packet(6000), t);
  ASSERT_EQ(rig.dut.tx_eth1.size(), 1u);
  std::string backend =
      net::parse_packet(rig.dut.tx_eth1[0])->ip_dst.to_string();

  kern::CycleTrace t2;
  rig.dut.kernel.rx(rig.dut.eth1_ifindex(), rig.backend_reply(backend, 6000),
                    t2);
  ASSERT_EQ(rig.dut.tx_eth0.size(), 1u);
  auto parsed = net::parse_packet(rig.dut.tx_eth0[0]);
  ASSERT_TRUE(parsed.has_value());
  // The client sees the VIP, not the backend.
  EXPECT_EQ(parsed->ip_src.to_string(), "10.0.0.100");
  EXPECT_EQ(parsed->src_port, 80);
  EXPECT_EQ(parsed->ip_dst.to_string(), "10.10.1.2");
  net::Ipv4View iph(rig.dut.tx_eth0[0].data() + parsed->l3_offset);
  EXPECT_TRUE(iph.checksum_valid());
}

TEST(IpvsDirector, NonVipTrafficUnaffected) {
  DirectorRig rig;
  kern::CycleTrace t;
  rig.dut.kernel.rx(rig.dut.eth0_ifindex(), rig.dut.packet_to_prefix(0), t);
  ASSERT_EQ(rig.dut.tx_eth1.size(), 1u);
  EXPECT_EQ(net::parse_packet(rig.dut.tx_eth1[0])->ip_dst.to_string(),
            "10.100.0.9");
}

}  // namespace
}  // namespace linuxfp::kern
