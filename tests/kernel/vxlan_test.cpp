// VXLAN datapath tests: VTEP transmit (encap + underlay routing), receive
// (decap + inner forwarding), FDB-driven remote selection, failure modes.
#include <gtest/gtest.h>

#include "kernel/commands.h"
#include "kernel/kernel.h"

namespace linuxfp::kern {
namespace {

// Two hosts connected by a wire; each has a VTEP (vni 7) and a local stub
// subnet.
struct VxlanRig {
  Kernel left{"left"}, right{"right"};
  std::vector<net::Packet> wire_to_right, wire_to_left;

  VxlanRig() {
    setup(left, "192.168.0.1", 1);
    setup(right, "192.168.0.2", 2);
    left.dev_by_name("ens0")->set_phys_tx([this](net::Packet&& p) {
      wire_to_right.push_back(p);
      CycleTrace t;
      right.rx(right.dev_by_name("ens0")->ifindex(), std::move(p), t);
    });
    right.dev_by_name("ens0")->set_phys_tx([this](net::Packet&& p) {
      wire_to_left.push_back(p);
      CycleTrace t;
      left.rx(left.dev_by_name("ens0")->ifindex(), std::move(p), t);
    });
    // Cross-VTEP wiring (static, flannel-style).
    wire_vteps(left, right, "192.168.0.2", "10.77.2.0/24");
    wire_vteps(right, left, "192.168.0.1", "10.77.1.0/24");
  }

  void cmd(Kernel& k, const std::string& c) {
    auto st = run_command(k, c);
    ASSERT_TRUE(st.ok()) << c << ": " << st.error().message;
  }

  void setup(Kernel& k, const std::string& underlay, int index) {
    k.add_phys_dev("ens0");
    cmd(k, "ip link set ens0 up");
    cmd(k, "ip addr add " + underlay + "/24 dev ens0");
    cmd(k, "sysctl -w net.ipv4.ip_forward=1");
    k.add_vxlan_dev("vx0", 7, net::Ipv4Addr::parse(underlay).value(),
                    k.dev_by_name("ens0")->ifindex());
    cmd(k, "ip link set vx0 up");
    cmd(k, "ip addr add 10.77." + std::to_string(index) + ".1/24 dev vx0");
  }

  void wire_vteps(Kernel& k, Kernel& peer, const std::string& peer_underlay,
                  const std::string& peer_subnet) {
    std::string peer_vtep_mac = peer.dev_by_name("vx0")->mac().to_string();
    std::string peer_ens_mac = peer.dev_by_name("ens0")->mac().to_string();
    std::string gw = net::Ipv4Prefix::parse(peer_subnet)->host(1).to_string();
    cmd(k, "ip route add " + peer_subnet + " via " + gw + " dev vx0");
    cmd(k, "ip neigh add " + gw + " lladdr " + peer_vtep_mac +
               " dev vx0 nud permanent");
    cmd(k, "bridge fdb append " + peer_vtep_mac + " dev vx0 dst " +
               peer_underlay);
    cmd(k, "ip neigh add " + peer_underlay + " lladdr " + peer_ens_mac +
               " dev ens0 nud permanent");
  }
};

TEST(Vxlan, EncapsulatesWithCorrectOuterHeaders) {
  VxlanRig rig;
  // ICMP from left's vx0 address to right's vx0 address.
  net::Packet echo = net::build_icmp_echo(
      rig.left.dev_by_name("vx0")->mac(), net::MacAddr::zero(),
      net::Ipv4Addr::parse("10.77.1.1").value(),
      net::Ipv4Addr::parse("10.77.2.1").value(), false, 7, 1);
  CycleTrace t;
  rig.left.send_ip_packet(std::move(echo), t);

  ASSERT_GE(rig.wire_to_right.size(), 1u);
  auto outer = net::parse_packet(rig.wire_to_right[0]);
  ASSERT_TRUE(outer.has_value());
  EXPECT_EQ(outer->ip_src.to_string(), "192.168.0.1");
  EXPECT_EQ(outer->ip_dst.to_string(), "192.168.0.2");
  EXPECT_EQ(outer->ip_proto, net::kIpProtoUdp);
  EXPECT_EQ(outer->dst_port, net::kVxlanPort);
  net::VxlanView vx(rig.wire_to_right[0].data() + outer->l4_offset +
                    net::kUdpHdrLen);
  EXPECT_EQ(vx.vni(), 7u);
}

TEST(Vxlan, EndToEndPingAcrossOverlay) {
  VxlanRig rig;
  net::Packet echo = net::build_icmp_echo(
      rig.left.dev_by_name("vx0")->mac(), net::MacAddr::zero(),
      net::Ipv4Addr::parse("10.77.1.1").value(),
      net::Ipv4Addr::parse("10.77.2.1").value(), false, 7, 1);
  CycleTrace t;
  rig.left.send_ip_packet(std::move(echo), t);

  // right received, decapped, replied; the reply decapped back on left.
  EXPECT_EQ(rig.right.counters().icmp_echo_replies, 1u);
  EXPECT_GE(rig.wire_to_left.size(), 1u);
  EXPECT_EQ(rig.left.counters().locally_delivered, 1u);  // the echo reply
}

TEST(Vxlan, UnknownInnerMacDropsWithNoRoute) {
  VxlanRig rig;
  // Remove the FDB entry: encap cannot resolve a remote VTEP.
  rig.left.dev_by_name("vx0")->vxlan().vtep_fdb.clear();
  net::Packet echo = net::build_icmp_echo(
      rig.left.dev_by_name("vx0")->mac(), net::MacAddr::zero(),
      net::Ipv4Addr::parse("10.77.1.1").value(),
      net::Ipv4Addr::parse("10.77.2.1").value(), false, 7, 1);
  CycleTrace t;
  auto before = rig.left.mutable_counters().drops[Drop::kNoRoute];
  rig.left.send_ip_packet(std::move(echo), t);
  EXPECT_TRUE(rig.wire_to_right.empty());
  EXPECT_GT(rig.left.mutable_counters().drops[Drop::kNoRoute], before);
}

TEST(Vxlan, MismatchedVniNotDelivered) {
  VxlanRig rig;
  // Change right's VTEP to a different VNI: left's frames must not surface.
  rig.right.dev_by_name("vx0")->vxlan().vni = 99;
  net::Packet echo = net::build_icmp_echo(
      rig.left.dev_by_name("vx0")->mac(), net::MacAddr::zero(),
      net::Ipv4Addr::parse("10.77.1.1").value(),
      net::Ipv4Addr::parse("10.77.2.1").value(), false, 7, 1);
  CycleTrace t;
  rig.left.send_ip_packet(std::move(echo), t);
  EXPECT_EQ(rig.right.counters().icmp_echo_replies, 0u);
  EXPECT_GT(rig.right.mutable_counters().drops[Drop::kNoHandler], 0u);
}

TEST(Vxlan, DecapChargesCostModel) {
  VxlanRig rig;
  net::Packet echo = net::build_icmp_echo(
      rig.left.dev_by_name("vx0")->mac(), net::MacAddr::zero(),
      net::Ipv4Addr::parse("10.77.1.1").value(),
      net::Ipv4Addr::parse("10.77.2.1").value(), false, 7, 1);
  CycleTrace t(true);
  rig.left.send_ip_packet(std::move(echo), t);
  bool saw_encap = false;
  for (auto& [stage, cycles] : t.stages()) {
    if (std::string(stage) == "vxlan_encap") saw_encap = true;
  }
  EXPECT_TRUE(saw_encap);
}

}  // namespace
}  // namespace linuxfp::kern
