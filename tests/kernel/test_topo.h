// Shared fixture helpers: a virtual-router DUT configured purely through the
// tool front-ends, with capture of transmitted packets on both physical
// interfaces (the two links of the paper's three-node line topology).
#pragma once

#include <gtest/gtest.h>

#include <vector>

#include "kernel/commands.h"
#include "kernel/kernel.h"
#include "net/headers.h"

namespace linuxfp::testing {

struct RouterDut {
  kern::Kernel kernel{"dut"};
  std::vector<net::Packet> tx_eth0;
  std::vector<net::Packet> tx_eth1;
  net::MacAddr src_host_mac = net::MacAddr::from_id(0x501);
  net::MacAddr sink_gw_mac = net::MacAddr::from_id(0x502);

  RouterDut() {
    kernel.add_phys_dev("eth0").set_phys_tx(
        [this](net::Packet&& p) { tx_eth0.push_back(std::move(p)); });
    kernel.add_phys_dev("eth1").set_phys_tx(
        [this](net::Packet&& p) { tx_eth1.push_back(std::move(p)); });
    run("ip link set eth0 up");
    run("ip link set eth1 up");
    run("ip addr add 10.10.1.1/24 dev eth0");
    run("ip addr add 10.10.2.1/24 dev eth1");
    run("sysctl -w net.ipv4.ip_forward=1");
    // Static neighbours, as a pktgen benchmark would configure them.
    run("ip neigh add 10.10.1.2 lladdr " + src_host_mac.to_string() +
        " dev eth0 nud permanent");
    run("ip neigh add 10.10.2.2 lladdr " + sink_gw_mac.to_string() +
        " dev eth1 nud permanent");
  }

  void run(const std::string& cmd) {
    auto st = kern::run_command(kernel, cmd);
    if (!st.ok()) {
      ADD_FAILURE() << "command failed: " << cmd << " — "
                    << st.error().message;
    }
  }

  // Installs `n` /24 prefixes 10.<100+i>.0.0/24 via 10.10.2.2 (the paper's
  // 50-prefix router config).
  void add_prefixes(int n) {
    for (int i = 0; i < n; ++i) {
      run("ip route add 10." + std::to_string(100 + (i % 150)) + "." +
          std::to_string(i / 150) + ".0/24 via 10.10.2.2 dev eth1");
    }
  }

  net::MacAddr eth0_mac() { return kernel.dev_by_name("eth0")->mac(); }
  net::MacAddr eth1_mac() { return kernel.dev_by_name("eth1")->mac(); }
  int eth0_ifindex() { return kernel.dev_by_name("eth0")->ifindex(); }
  int eth1_ifindex() { return kernel.dev_by_name("eth1")->ifindex(); }

  // A 64-byte UDP packet from the source host toward prefix i.
  net::Packet packet_to_prefix(int i, std::uint16_t flow = 0,
                               std::size_t frame_len = 64) {
    net::FlowKey f;
    f.src_ip = net::Ipv4Addr::parse("10.10.1.2").value();
    f.dst_ip = net::Ipv4Addr::from_octets(
        10, static_cast<std::uint8_t>(100 + (i % 150)),
        static_cast<std::uint8_t>(i / 150), 9);
    f.proto = net::kIpProtoUdp;
    f.src_port = static_cast<std::uint16_t>(1000 + flow);
    f.dst_port = 7;
    return net::build_udp_packet(src_host_mac, eth0_mac(), f, frame_len);
  }
};

}  // namespace linuxfp::testing
