#include "kernel/bridge.h"

#include <gtest/gtest.h>

namespace linuxfp::kern {
namespace {

constexpr std::uint64_t kSec = 1'000'000'000ull;

TEST(BridgeFdb, LearnLookupAge) {
  Bridge br(10, net::MacAddr::from_id(10));
  br.add_port(1);
  br.add_port(2);

  auto mac = net::MacAddr::from_id(0xA);
  br.fdb_learn(mac, 0, 1, 100 * kSec);
  const FdbEntry* e = br.fdb_lookup(mac, 0);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->port_ifindex, 1);

  // Station moves to port 2.
  br.fdb_learn(mac, 0, 2, 101 * kSec);
  EXPECT_EQ(br.fdb_lookup(mac, 0)->port_ifindex, 2);

  // Aging (default 300 s).
  EXPECT_EQ(br.fdb_age(402 * kSec), 1u);
  EXPECT_EQ(br.fdb_lookup(mac, 0), nullptr);
}

TEST(BridgeFdb, StaticEntriesNeverAgeNorMove) {
  Bridge br(10, net::MacAddr::from_id(10));
  br.add_port(1);
  br.add_port(2);
  auto mac = net::MacAddr::from_id(0xB);
  br.fdb_add_static(mac, 0, 1);
  br.fdb_learn(mac, 0, 2, 100 * kSec);  // learning must not override static
  EXPECT_EQ(br.fdb_lookup(mac, 0)->port_ifindex, 1);
  EXPECT_EQ(br.fdb_age(10000 * kSec), 0u);
  ASSERT_NE(br.fdb_lookup(mac, 0), nullptr);
  EXPECT_TRUE(br.fdb_delete(mac, 0));
}

TEST(BridgeFdb, VlanScopedEntries) {
  Bridge br(10, net::MacAddr::from_id(10));
  br.add_port(1);
  br.add_port(2);
  auto mac = net::MacAddr::from_id(0xC);
  br.fdb_learn(mac, 100, 1, 0);
  br.fdb_learn(mac, 200, 2, 0);
  EXPECT_EQ(br.fdb_lookup(mac, 100)->port_ifindex, 1);
  EXPECT_EQ(br.fdb_lookup(mac, 200)->port_ifindex, 2);
  EXPECT_EQ(br.fdb_lookup(mac, 300), nullptr);
}

TEST(BridgeFdb, MulticastNeverLearned) {
  Bridge br(10, net::MacAddr::from_id(10));
  br.add_port(1);
  br.fdb_learn(net::MacAddr::broadcast(), 0, 1, 0);
  EXPECT_EQ(br.fdb_size(), 0u);
}

TEST(BridgeFdb, PortRemovalFlushesEntries) {
  Bridge br(10, net::MacAddr::from_id(10));
  br.add_port(1);
  br.add_port(2);
  br.fdb_learn(net::MacAddr::from_id(1), 0, 1, 0);
  br.fdb_learn(net::MacAddr::from_id(2), 0, 2, 0);
  br.del_port(1);
  EXPECT_EQ(br.fdb_size(), 1u);
  EXPECT_EQ(br.fdb_lookup(net::MacAddr::from_id(1), 0), nullptr);
}

TEST(BridgeStp, DisabledPortsForwardImmediately) {
  Bridge br(10, net::MacAddr::from_id(10));
  br.add_port(1);
  EXPECT_EQ(br.port(1)->state, StpState::kForwarding);
}

TEST(BridgeStp, EnableMovesPortsToListening) {
  Bridge br(10, net::MacAddr::from_id(10));
  br.add_port(1);
  br.set_stp_enabled(true);
  EXPECT_EQ(br.port(1)->state, StpState::kListening);
  EXPECT_TRUE(br.is_root());
}

TEST(BridgeStp, ForwardDelayTransitions) {
  Bridge br(10, net::MacAddr::from_id(10));
  br.set_stp_enabled(true);
  br.add_port(1);
  br.stp_tick(1 * kSec);   // records start
  br.stp_tick(17 * kSec);  // listening -> learning (15 s delay)
  EXPECT_EQ(br.port(1)->state, StpState::kLearning);
  br.stp_tick(33 * kSec);  // learning -> forwarding
  EXPECT_EQ(br.port(1)->state, StpState::kForwarding);
}

TEST(BridgeStp, SuperiorBpduTakesRootAndBlocksWorsePath) {
  // Two bridges, ours has the higher (worse) bridge id.
  Bridge br(10, net::MacAddr::from_id(0xFFFF));
  br.set_stp_enabled(true);
  br.add_port(1);
  br.add_port(2);

  BridgeId other;
  other.priority = 0x1000;
  other.mac = net::MacAddr::from_id(1);

  Bpdu bpdu;
  bpdu.root = other;
  bpdu.root_path_cost = 0;
  bpdu.sender = other;
  bpdu.sender_port = 1;
  EXPECT_TRUE(br.process_bpdu(1, bpdu));
  EXPECT_FALSE(br.is_root());
  EXPECT_EQ(br.root_port(), 1);

  // The same root is also heard on port 2 with equal cost from a better
  // sender: port 2 must not be designated (blocking).
  Bpdu bpdu2 = bpdu;
  bpdu2.sender_port = 2;
  br.process_bpdu(2, bpdu2);
  EXPECT_EQ(br.port(2)->state, StpState::kBlocking);
  // Port 1 (root port) converges to forwarding through the delay states.
  br.stp_tick(1 * kSec);
  br.stp_tick(17 * kSec);
  br.stp_tick(33 * kSec);
  EXPECT_EQ(br.port(1)->state, StpState::kForwarding);
}

TEST(BridgeStp, InferiorBpduIgnored) {
  Bridge br(10, net::MacAddr::from_id(1));  // we are a good root
  br.set_stp_enabled(true);
  br.add_port(1);
  BridgeId worse;
  worse.priority = 0xF000;
  worse.mac = net::MacAddr::from_id(0xEEEE);
  Bpdu bpdu;
  bpdu.root = worse;
  bpdu.sender = worse;
  br.process_bpdu(1, bpdu);
  EXPECT_TRUE(br.is_root());
}

TEST(BridgeStp, RootGeneratesBpdusOnDesignatedPorts) {
  Bridge br(10, net::MacAddr::from_id(1));
  br.set_stp_enabled(true);
  br.add_port(1);
  br.add_port(2);
  auto bpdus = br.generate_bpdus();
  EXPECT_EQ(bpdus.size(), 2u);
  for (auto& [port, bpdu] : bpdus) {
    EXPECT_EQ(bpdu.root.as_u64(), br.bridge_id().as_u64());
  }
}

TEST(BridgeVlan, PortFiltering) {
  Bridge br(10, net::MacAddr::from_id(10));
  br.set_vlan_filtering(true);
  br.add_port(1);
  BridgePort* p = br.port(1);
  p->allowed_vlans = {1, 100};
  p->pvid = 1;
  EXPECT_TRUE(p->allows_vlan(100));
  EXPECT_FALSE(p->allows_vlan(200));
}

}  // namespace
}  // namespace linuxfp::kern
