#include "kernel/commands.h"

#include <gtest/gtest.h>

namespace linuxfp::kern {
namespace {

class CommandsTest : public ::testing::Test {
 protected:
  Kernel k{"host"};

  util::Status run(const std::string& cmd) { return run_command(k, cmd); }
  void expect_ok(const std::string& cmd) {
    auto st = run(cmd);
    EXPECT_TRUE(st.ok()) << cmd << ": "
                         << (st.ok() ? "" : st.error().message);
  }
};

TEST_F(CommandsTest, IpLinkLifecycle) {
  k.add_phys_dev("eth0");
  expect_ok("ip link set dev eth0 up");
  EXPECT_TRUE(k.dev_by_name("eth0")->is_up());
  expect_ok("ip link set eth0 down");
  EXPECT_FALSE(k.dev_by_name("eth0")->is_up());
  expect_ok("ip link add br0 type bridge");
  EXPECT_NE(k.bridge_by_name("br0"), nullptr);
  expect_ok("ip link set eth0 master br0");
  EXPECT_EQ(k.dev_by_name("eth0")->master(),
            k.dev_by_name("br0")->ifindex());
  expect_ok("ip link set eth0 nomaster");
  EXPECT_EQ(k.dev_by_name("eth0")->master(), 0);
  expect_ok("ip link del br0");
  EXPECT_EQ(k.dev_by_name("br0"), nullptr);
}

TEST_F(CommandsTest, VethPair) {
  expect_ok("ip link add veth0 type veth peer name veth1");
  ASSERT_NE(k.dev_by_name("veth0"), nullptr);
  ASSERT_NE(k.dev_by_name("veth1"), nullptr);
  EXPECT_EQ(k.dev_by_name("veth0")->veth().ifindex,
            k.dev_by_name("veth1")->ifindex());
}

TEST_F(CommandsTest, AddrInstallsConnectedRoute) {
  k.add_phys_dev("eth0");
  expect_ok("ip addr add 10.10.1.1/24 dev eth0");
  auto hit = k.fib().lookup(net::Ipv4Addr::parse("10.10.1.200").value());
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->route.scope, RouteScope::kLink);
  EXPECT_EQ(hit->next_hop.to_string(), "10.10.1.200");

  expect_ok("ip addr del 10.10.1.1/24 dev eth0");
  EXPECT_FALSE(
      k.fib().lookup(net::Ipv4Addr::parse("10.10.1.200").value()).has_value());
}

TEST_F(CommandsTest, RouteAddDel) {
  k.add_phys_dev("eth0");
  expect_ok("ip route add 10.2.0.0/16 via 10.10.1.2 dev eth0");
  auto hit = k.fib().lookup(net::Ipv4Addr::parse("10.2.3.4").value());
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->next_hop.to_string(), "10.10.1.2");
  expect_ok("ip route del 10.2.0.0/16");
  EXPECT_FALSE(
      k.fib().lookup(net::Ipv4Addr::parse("10.2.3.4").value()).has_value());
  expect_ok("ip route add default via 10.10.1.254 dev eth0");
  EXPECT_TRUE(
      k.fib().lookup(net::Ipv4Addr::parse("8.8.8.8").value()).has_value());
}

TEST_F(CommandsTest, RouteMetricAwareDelete) {
  // Regression: `ip route del <prefix> metric N` used to ignore the metric
  // and remove whichever route was stored for the prefix; with per-metric
  // entries it must remove exactly the (prefix, metric) route.
  k.add_phys_dev("eth0");
  expect_ok("ip route add 10.3.0.0/16 via 10.10.1.2 dev eth0");
  expect_ok("ip route add 10.3.0.0/16 via 10.10.1.9 dev eth0 metric 200");
  EXPECT_EQ(k.fib().size(), 2u);

  auto hit = k.fib().lookup(net::Ipv4Addr::parse("10.3.1.1").value());
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->next_hop.to_string(), "10.10.1.2");

  expect_ok("ip route del 10.3.0.0/16 metric 200");
  hit = k.fib().lookup(net::Ipv4Addr::parse("10.3.1.1").value());
  ASSERT_TRUE(hit.has_value()) << "primary must survive the backup delete";
  EXPECT_EQ(hit->next_hop.to_string(), "10.10.1.2");

  // Deleting the same metric again fails; deleting without a metric removes
  // the remaining (active) route.
  EXPECT_FALSE(run("ip route del 10.3.0.0/16 metric 200").ok());
  expect_ok("ip route del 10.3.0.0/16");
  EXPECT_FALSE(
      k.fib().lookup(net::Ipv4Addr::parse("10.3.1.1").value()).has_value());
}

TEST_F(CommandsTest, NeighAdd) {
  k.add_phys_dev("eth0");
  expect_ok(
      "ip neigh add 10.10.1.2 lladdr 02:00:00:00:00:05 dev eth0 "
      "nud permanent");
  auto* e = k.neigh().lookup(net::Ipv4Addr::parse("10.10.1.2").value());
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->state, NeighState::kPermanent);
  expect_ok("ip neigh del 10.10.1.2");
  EXPECT_EQ(k.neigh().lookup(net::Ipv4Addr::parse("10.10.1.2").value()),
            nullptr);
}

TEST_F(CommandsTest, Sysctl) {
  expect_ok("sysctl -w net.ipv4.ip_forward=1");
  EXPECT_TRUE(k.ip_forward_enabled());
  expect_ok("sysctl net.ipv4.ip_forward=0");
  EXPECT_FALSE(k.ip_forward_enabled());
}

TEST_F(CommandsTest, BrctlSuite) {
  k.add_phys_dev("eth0");
  expect_ok("brctl addbr br0");
  expect_ok("brctl addif br0 eth0");
  EXPECT_TRUE(k.bridge_by_name("br0")->has_port(
      k.dev_by_name("eth0")->ifindex()));
  expect_ok("brctl stp br0 on");
  EXPECT_TRUE(k.bridge_by_name("br0")->stp_enabled());
  expect_ok("brctl setageing br0 60");
  EXPECT_EQ(k.bridge_by_name("br0")->aging_time_ns(), 60'000'000'000ull);
  expect_ok("brctl delif br0 eth0");
  expect_ok("brctl delbr br0");
  EXPECT_EQ(k.bridge_by_name("br0"), nullptr);
}

TEST_F(CommandsTest, IptablesSuite) {
  expect_ok("iptables -A FORWARD -s 10.10.3.0/24 -j DROP");
  expect_ok("iptables -A FORWARD -p tcp --dport 80 -j ACCEPT");
  expect_ok("iptables -A FORWARD -i eth0 -o eth1 -j ACCEPT");
  expect_ok("iptables -N mychain");
  expect_ok("iptables -A FORWARD -j mychain");
  EXPECT_EQ(k.netfilter().find_chain("FORWARD")->rules.size(), 4u);

  const Rule& r0 = k.netfilter().find_chain("FORWARD")->rules[0];
  EXPECT_EQ(r0.match.src->to_string(), "10.10.3.0/24");
  EXPECT_EQ(r0.target, RuleTarget::kDrop);
  const Rule& r1 = k.netfilter().find_chain("FORWARD")->rules[1];
  EXPECT_EQ(*r1.match.proto, net::kIpProtoTcp);
  EXPECT_EQ(*r1.match.dport, 80);

  expect_ok("iptables -I FORWARD 1 -d 1.2.3.4 -j DROP");
  EXPECT_EQ(k.netfilter().find_chain("FORWARD")->rules[0].match.dst
                ->to_string(),
            "1.2.3.4/32");
  expect_ok("iptables -D FORWARD 1");
  expect_ok("iptables -P FORWARD DROP");
  EXPECT_EQ(k.netfilter().find_chain("FORWARD")->policy, NfVerdict::kDrop);
  expect_ok("iptables -F FORWARD");
  EXPECT_TRUE(k.netfilter().find_chain("FORWARD")->rules.empty());
  expect_ok("iptables -X mychain");
}

TEST_F(CommandsTest, IptablesNegation) {
  expect_ok("iptables -A FORWARD ! -s 10.0.0.0/8 -j DROP");
  const Rule& r = k.netfilter().find_chain("FORWARD")->rules[0];
  EXPECT_TRUE(r.match.src_negated);
}

TEST_F(CommandsTest, IpsetSuite) {
  expect_ok("ipset create blacklist hash:ip");
  expect_ok("ipset add blacklist 10.9.0.1");
  expect_ok("ipset add blacklist 10.9.0.2");
  expect_ok(
      "iptables -A FORWARD -m set --match-set blacklist src -j DROP");
  EXPECT_TRUE(k.ipsets().find("blacklist")->test(
      net::Ipv4Addr::parse("10.9.0.1").value()));
  expect_ok("ipset del blacklist 10.9.0.1");
  EXPECT_FALSE(k.ipsets().find("blacklist")->test(
      net::Ipv4Addr::parse("10.9.0.1").value()));

  expect_ok("ipset create nets hash:net");
  expect_ok("ipset add nets 10.20.0.0/16");
  EXPECT_TRUE(k.ipsets().find("nets")->test(
      net::Ipv4Addr::parse("10.20.55.1").value()));
}

TEST_F(CommandsTest, VxlanFdbViaBridgeCommand) {
  k.add_phys_dev("eth0");
  k.add_vxlan_dev("flannel.1", 1, net::Ipv4Addr::parse("192.168.0.1").value(),
                  k.dev_by_name("eth0")->ifindex());
  expect_ok(
      "bridge fdb append 02:00:00:00:00:42 dev flannel.1 dst 192.168.0.2");
  auto& fdb = k.dev_by_name("flannel.1")->vxlan().vtep_fdb;
  auto it = fdb.find(net::MacAddr::parse("02:00:00:00:00:42").value());
  ASSERT_NE(it, fdb.end());
  EXPECT_EQ(it->second.to_string(), "192.168.0.2");
}

TEST_F(CommandsTest, ErrorsAreReported) {
  EXPECT_FALSE(run("ip route add 10.0.0.0/8 via 1.1.1.1 dev nope").ok());
  EXPECT_FALSE(run("ip addr add bogus dev eth0").ok());
  EXPECT_FALSE(run("iptables -A FORWARD -s 10.0.0.0/8").ok());  // no -j
  EXPECT_FALSE(run("iptables -A FORWARD -w x -j DROP").ok());
  EXPECT_FALSE(run("frobnicate").ok());
  EXPECT_FALSE(run("").ok());
  EXPECT_FALSE(run("ipset add missing 1.2.3.4").ok());
}

}  // namespace
}  // namespace linuxfp::kern
