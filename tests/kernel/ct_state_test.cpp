// Conntrack state-match tests (-m state / -m conntrack): the stateful-
// firewall idiom every Kubernetes node uses ("-m state --state
// ESTABLISHED,RELATED -j ACCEPT"), on both the slow path and the synthesized
// fast path with identical verdicts.
#include <gtest/gtest.h>

#include "core/controller.h"
#include "tests/kernel/test_topo.h"

namespace linuxfp::kern {
namespace {

using linuxfp::testing::RouterDut;

NfPacketInfo info_with_state(int state) {
  NfPacketInfo i;
  i.src = net::Ipv4Addr::parse("1.1.1.1").value();
  i.dst = net::Ipv4Addr::parse("2.2.2.2").value();
  i.proto = net::kIpProtoTcp;
  i.ct_state = state;
  return i;
}

TEST(CtStateMatch, RuleSemantics) {
  Netfilter nf;
  IpSetManager sets;
  Rule est;
  est.match.ct_state = "ESTABLISHED";
  est.target = RuleTarget::kAccept;
  Rule drop_rest;
  drop_rest.target = RuleTarget::kDrop;
  ASSERT_TRUE(nf.append_rule("FORWARD", est).ok());
  ASSERT_TRUE(nf.append_rule("FORWARD", drop_rest).ok());

  EXPECT_EQ(nf.evaluate(NfHook::kForward, info_with_state(1), sets).verdict,
            NfVerdict::kAccept);
  EXPECT_EQ(nf.evaluate(NfHook::kForward, info_with_state(0), sets).verdict,
            NfVerdict::kDrop);
  // Untracked packets match no state rule.
  EXPECT_EQ(nf.evaluate(NfHook::kForward, info_with_state(-1), sets).verdict,
            NfVerdict::kDrop);
}

TEST(CtStateMatch, CommandParsing) {
  Kernel k("host");
  ASSERT_TRUE(run_command(
                  k, "iptables -A FORWARD -m state --state "
                     "ESTABLISHED,RELATED -j ACCEPT")
                  .ok());
  ASSERT_TRUE(run_command(
                  k, "iptables -A FORWARD -m conntrack --ctstate NEW -j DROP")
                  .ok());
  const auto& rules = k.netfilter().find_chain("FORWARD")->rules;
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_EQ(rules[0].match.ct_state, "ESTABLISHED");
  EXPECT_EQ(rules[1].match.ct_state, "NEW");
  EXPECT_FALSE(
      run_command(k, "iptables -A FORWARD -m state --state BOGUS -j DROP")
          .ok());
}

// Stateful gateway: allow outbound (eth0->eth1) NEW+ESTABLISHED, inbound
// only ESTABLISHED — the classic stateful-firewall setup.
struct StatefulRig {
  RouterDut dut;
  explicit StatefulRig(bool accelerated) {
    dut.kernel.set_conntrack_enabled(true);
    dut.add_prefixes(1);
    dut.run("ip route add 10.10.1.0/24 via 10.10.1.2 dev eth0 metric 50");
    dut.run(
        "iptables -A FORWARD -m state --state ESTABLISHED,RELATED -j ACCEPT");
    dut.run("iptables -A FORWARD -i eth0 -j ACCEPT");
    dut.run("iptables -P FORWARD DROP");
    if (accelerated) {
      controller = std::make_unique<core::Controller>(dut.kernel);
      controller->start();
    }
  }

  net::Packet outbound(std::uint16_t sport) {
    net::FlowKey f;
    f.src_ip = net::Ipv4Addr::parse("10.10.1.2").value();
    f.dst_ip = net::Ipv4Addr::parse("10.100.0.9").value();
    f.proto = net::kIpProtoTcp;
    f.src_port = sport;
    f.dst_port = 80;
    return net::build_tcp_packet(dut.src_host_mac, dut.eth0_mac(), f, 0x18,
                                 64);
  }
  net::Packet inbound(std::uint16_t dport) {
    net::FlowKey f;
    f.src_ip = net::Ipv4Addr::parse("10.100.0.9").value();
    f.dst_ip = net::Ipv4Addr::parse("10.10.1.2").value();
    f.proto = net::kIpProtoTcp;
    f.src_port = 80;
    f.dst_port = dport;
    return net::build_tcp_packet(dut.sink_gw_mac, dut.eth1_mac(), f, 0x18, 64);
  }

  std::unique_ptr<core::Controller> controller;
};

TEST(CtStateMatch, StatefulGatewaySlowPath) {
  StatefulRig rig(false);
  // Unsolicited inbound: dropped (no established flow).
  kern::CycleTrace t0;
  auto blocked = rig.dut.kernel.rx(rig.dut.eth1_ifindex(), rig.inbound(700),
                                   t0);
  EXPECT_EQ(blocked.drop, Drop::kPolicy);
  EXPECT_TRUE(rig.dut.tx_eth0.empty());

  // Outbound NEW: allowed by the -i eth0 rule; creates the flow.
  kern::CycleTrace t1;
  auto out = rig.dut.kernel.rx(rig.dut.eth0_ifindex(), rig.outbound(700), t1);
  EXPECT_EQ(out.drop, Drop::kNone);
  EXPECT_EQ(rig.dut.tx_eth1.size(), 1u);

  // Replies to the established flow now pass.
  kern::CycleTrace t2;
  auto reply = rig.dut.kernel.rx(rig.dut.eth1_ifindex(), rig.inbound(700),
                                 t2);
  EXPECT_EQ(reply.drop, Drop::kNone);
  EXPECT_EQ(rig.dut.tx_eth0.size(), 1u);
}

TEST(CtStateMatch, StatefulGatewayFastPathEquivalent) {
  StatefulRig fast(true), slow(false);
  struct Step {
    bool inbound;
    std::uint16_t port;
  } steps[] = {
      {true, 800},   // unsolicited: drop
      {false, 800},  // open outbound
      {true, 800},   // reply: accept
      {true, 800},   // more replies: accept
      {true, 801},   // different flow, unsolicited: drop
      {false, 801},  // open it
      {true, 801},   // now accepted
  };
  for (const Step& s : steps) {
    kern::CycleTrace tf, ts;
    if (s.inbound) {
      fast.dut.kernel.rx(fast.dut.eth1_ifindex(), fast.inbound(s.port), tf);
      slow.dut.kernel.rx(slow.dut.eth1_ifindex(), slow.inbound(s.port), ts);
    } else {
      fast.dut.kernel.rx(fast.dut.eth0_ifindex(), fast.outbound(s.port), tf);
      slow.dut.kernel.rx(slow.dut.eth0_ifindex(), slow.outbound(s.port), ts);
    }
    ASSERT_EQ(fast.dut.tx_eth0.size(), slow.dut.tx_eth0.size());
    ASSERT_EQ(fast.dut.tx_eth1.size(), slow.dut.tx_eth1.size());
  }
  // The accelerated DUT used the fast path for accepted traffic.
  EXPECT_GT(fast.dut.kernel.counters().fast_path_packets, 2u);
}

}  // namespace
}  // namespace linuxfp::kern
