#include "util/result.h"

#include <gtest/gtest.h>

namespace linuxfp::util {
namespace {

Result<int> parse_positive(int v) {
  if (v <= 0) return Error::make("neg", "not positive");
  return v;
}

TEST(Result, OkPath) {
  auto r = parse_positive(5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 5);
  EXPECT_EQ(*r, 5);
  EXPECT_EQ(r.value_or(-1), 5);
}

TEST(Result, ErrorPath) {
  auto r = parse_positive(-2);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "neg");
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, MoveTake) {
  Result<std::string> r(std::string("hello"));
  std::string s = std::move(r).take();
  EXPECT_EQ(s, "hello");
}

TEST(Status, DefaultOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  Status e = Error::make("x", "y");
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.error().code, "x");
}

}  // namespace
}  // namespace linuxfp::util
