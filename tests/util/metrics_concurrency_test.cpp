// Regression test for the atomic counter layer (ISSUE 4 satellite): the
// engine's worker pool bumps registry counters from many threads at once,
// so counters must be std::atomic — with plain uint64_t these tests lose
// increments and fail. Run under TSan by tools/ci.sh.
#include "util/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace linuxfp::util {
namespace {

TEST(MetricsConcurrency, EightThreadsLoseNoCounts) {
  MetricsRegistry reg;
  Counter* shared = reg.counter("engine.test.shared");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([shared] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) bump(shared);
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(reg.value("engine.test.shared"), kThreads * kPerThread);
}

TEST(MetricsConcurrency, MixedNamesAndStrides) {
  // Concurrent bumps across several counters with varying strides: each
  // counter must end at exactly the sum of what was added to it.
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kIters = 20000;
  std::vector<Counter*> counters;
  for (int c = 0; c < 4; ++c) {
    counters.push_back(reg.counter("mix." + std::to_string(c)));
  }

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counters, t] {
      for (std::uint64_t i = 0; i < kIters; ++i) {
        bump(counters[(t + i) % counters.size()],
             1 + (i % 3));  // strides 1..3
      }
    });
  }
  for (auto& t : threads) t.join();

  // Every thread contributes sum over i of (1 + i%3) split across the four
  // counters; the grand total is exact regardless of interleaving.
  std::uint64_t total = 0;
  for (Counter* c : counters) total += counter_value(c);
  std::uint64_t expect_per_thread = 0;
  for (std::uint64_t i = 0; i < kIters; ++i) expect_per_thread += 1 + (i % 3);
  EXPECT_EQ(total, kThreads * expect_per_thread);
}

}  // namespace
}  // namespace linuxfp::util
