#include "util/json.h"

#include <gtest/gtest.h>

namespace linuxfp::util {
namespace {

TEST(Json, BuildsObjectsWithInsertionOrder) {
  Json j = Json::object();
  j["zeta"] = 1;
  j["alpha"] = "two";
  j["mid"] = true;
  std::vector<std::string> keys;
  for (const auto& [k, v] : j.object_items()) keys.push_back(k);
  EXPECT_EQ(keys, (std::vector<std::string>{"zeta", "alpha", "mid"}));
}

TEST(Json, DumpCompact) {
  Json j = Json::object();
  j["name"] = "router";
  j["count"] = 50;
  j["enabled"] = true;
  j["gw"] = nullptr;
  EXPECT_EQ(j.dump(),
            "{\"name\": \"router\", \"count\": 50, \"enabled\": true, "
            "\"gw\": null}");
}

TEST(Json, RoundTripsThroughParse) {
  Json j = Json::object();
  j["device"] = "ens1f0";
  j["nodes"]["bridge"]["conf"]["STP_enabled"] = true;
  j["nodes"]["bridge"]["next_nf"] = "router";
  Json arr = Json::array();
  arr.push_back(1);
  arr.push_back("two");
  arr.push_back(false);
  j["list"] = arr;

  auto parsed = Json::parse(j.dump());
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_TRUE(parsed.value() == j);
}

TEST(Json, ParsesNestedDocument) {
  auto r = Json::parse(R"({"a": [1, 2.5, -3], "b": {"c": "x\ny"}, "d": null})");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->at("a").size(), 3u);
  EXPECT_DOUBLE_EQ(r->at("a").at(1).as_number(), 2.5);
  EXPECT_EQ(r->at("a").at(2).as_int(), -3);
  EXPECT_EQ(r->at("b").at("c").as_string(), "x\ny");
  EXPECT_TRUE(r->at("d").is_null());
}

TEST(Json, ParseRejectsGarbage) {
  EXPECT_FALSE(Json::parse("{").ok());
  EXPECT_FALSE(Json::parse("{\"a\": }").ok());
  EXPECT_FALSE(Json::parse("[1,]").ok());
  EXPECT_FALSE(Json::parse("{\"a\": 1} trailing").ok());
  EXPECT_FALSE(Json::parse("nul").ok());
  EXPECT_FALSE(Json::parse("").ok());
}

TEST(Json, ParsesUnicodeEscapes) {
  auto r = Json::parse(R"("aAé")");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->as_string(), "aA\xc3\xa9");
}

TEST(Json, MissingKeyLookupsReturnNull) {
  Json j = Json::object();
  j["present"] = 5;
  EXPECT_TRUE(j.at("absent").is_null());
  EXPECT_EQ(j.at("absent").as_int(42), 42);
  EXPECT_FALSE(j.contains("absent"));
  EXPECT_TRUE(j.contains("present"));
}

TEST(Json, EqualityIsOrderSensitiveForObjects) {
  Json a = Json::object();
  a["x"] = 1;
  a["y"] = 2;
  Json b = Json::object();
  b["y"] = 2;
  b["x"] = 1;
  EXPECT_FALSE(a == b);  // processing-graph keys are ordered FPM stages
}

TEST(Json, IndentedDumpParsesBack) {
  Json j = Json::object();
  j["a"]["b"] = 1;
  j["c"] = Json::array();
  j["c"].push_back("s");
  auto round = Json::parse(j.dump(2));
  ASSERT_TRUE(round.ok());
  EXPECT_TRUE(round.value() == j);
}

}  // namespace
}  // namespace linuxfp::util
