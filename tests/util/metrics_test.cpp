#include "util/metrics.h"

#include <gtest/gtest.h>

namespace linuxfp::util {
namespace {

TEST(MetricsRegistry, CounterFindOrCreateStablePointer) {
  MetricsRegistry reg;
  Counter* a = reg.counter("drop.no_route");
  Counter* b = reg.counter("drop.no_route");
  EXPECT_EQ(a, b);
  EXPECT_EQ(reg.value("drop.no_route"), 0u);
  bump(a, 3);
  EXPECT_EQ(reg.value("drop.no_route"), 3u);
  EXPECT_EQ(reg.value("never.created"), 0u);
  EXPECT_EQ(reg.counter_count(), 1u);

  // Pointers stay valid as the deque grows past any single block.
  for (int i = 0; i < 1000; ++i) {
    reg.counter("c" + std::to_string(i));
  }
  EXPECT_EQ(reg.value("drop.no_route"), 3u);
  bump(a);
  EXPECT_EQ(reg.value("drop.no_route"), 4u);
}

TEST(MetricsRegistry, ResetZeroesButKeepsPointers) {
  MetricsRegistry reg;
  Counter* a = reg.counter("x");
  *a = 42;
  Histogram* h = reg.histogram("lat");
  reg.set_histograms_enabled(true);
  h->record(1.0);
  h->record(2.0);
  EXPECT_EQ(h->count(), 2u);

  reg.reset();
  EXPECT_EQ(reg.value("x"), 0u);
  EXPECT_EQ(h->count(), 0u);
  *a = 7;  // cached pointer still live
  EXPECT_EQ(reg.value("x"), 7u);
}

TEST(MetricsRegistry, HistogramsOptIn) {
  MetricsRegistry reg;
  Histogram* h = reg.histogram("lat");
  h->record(5.0);  // disabled by default — dropped
  EXPECT_EQ(h->count(), 0u);
  reg.set_histograms_enabled(true);
  h->record(5.0);
  h->record(15.0);
  EXPECT_EQ(h->count(), 2u);
  EXPECT_DOUBLE_EQ(h->stats().mean(), 10.0);
  reg.set_histograms_enabled(false);
  h->record(100.0);
  EXPECT_EQ(h->count(), 2u);
}

TEST(MetricsRegistry, ToJsonSortedAndComplete) {
  MetricsRegistry reg;
  *reg.counter("b.two") = 2;
  *reg.counter("a.one") = 1;
  Json j = reg.to_json();
  const Json& counters = j.at("counters");
  EXPECT_EQ(counters.at("a.one").as_int(), 1);
  EXPECT_EQ(counters.at("b.two").as_int(), 2);
  // std::map index → deterministic (sorted) iteration order.
  EXPECT_EQ(counters.object_items().begin()->first, "a.one");
}

TEST(MetricsRegistry, PrometheusTextSanitizesNames) {
  MetricsRegistry reg;
  *reg.counter("fastpath.lfp@eth0.xdp.runs") = 9;
  std::string text = reg.prometheus_text("linuxfp");
  EXPECT_NE(text.find("linuxfp_fastpath_lfp_eth0_xdp_runs 9"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE linuxfp_fastpath_lfp_eth0_xdp_runs counter"),
            std::string::npos);
  // No raw '.'/'@' survives in metric identifiers.
  for (const char bad : {'.', '@'}) {
    for (std::size_t pos = 0; (pos = text.find(bad, pos)) != std::string::npos;
         ++pos) {
      ADD_FAILURE() << "unsanitized '" << bad << "' at " << pos;
    }
  }
}

TEST(StageSink, ChargesCallsCyclesPerStage) {
  MetricsRegistry reg;
  StageSink sink;
  sink.bind(&reg, "slowpath.");
  static const char* kFib = "fib_lookup";
  static const char* kNeigh = "neigh_lookup";
  sink.charge(kFib, 100);
  sink.charge(kFib, 50);
  sink.charge(kNeigh, 30);
  EXPECT_EQ(reg.value("slowpath.fib_lookup.calls"), 2u);
  EXPECT_EQ(reg.value("slowpath.fib_lookup.cycles"), 150u);
  EXPECT_EQ(reg.value("slowpath.neigh_lookup.calls"), 1u);
  EXPECT_EQ(reg.value("slowpath.neigh_lookup.cycles"), 30u);
}

TEST(StageSink, DisabledRegistrySkipsUpdates) {
  MetricsRegistry reg;
  StageSink sink;
  sink.bind(&reg, "slowpath.");
  reg.set_enabled(false);
  sink.charge("ip_rcv", 100);
  EXPECT_EQ(reg.value("slowpath.ip_rcv.calls"), 0u);
  reg.set_enabled(true);
  sink.charge("ip_rcv", 100);
  EXPECT_EQ(reg.value("slowpath.ip_rcv.calls"), 1u);
}

TEST(StageSink, ManyDistinctStagesOverflowTable) {
  // More live literals than the open-addressing table holds: the overflow
  // map must keep attribution exact.
  MetricsRegistry reg;
  StageSink sink;
  sink.bind(&reg, "s.");
  std::vector<std::string> names;
  names.reserve(300);
  for (int i = 0; i < 300; ++i) names.push_back("stage" + std::to_string(i));
  for (int round = 0; round < 3; ++round) {
    for (const auto& n : names) sink.charge(n.c_str(), 7);
  }
  for (const auto& n : names) {
    EXPECT_EQ(reg.value("s." + n + ".calls"), 3u) << n;
    EXPECT_EQ(reg.value("s." + n + ".cycles"), 21u) << n;
  }
}

TEST(StageSink, HistogramRecordsWhenEnabled) {
  MetricsRegistry reg;
  reg.set_histograms_enabled(true);
  StageSink sink;
  sink.bind(&reg, "slowpath.");
  sink.charge("fib_lookup", 100);
  sink.charge("fib_lookup", 300);
  Histogram* h = reg.histogram("slowpath.fib_lookup.cycles_hist");
  ASSERT_EQ(h->count(), 2u);
  EXPECT_DOUBLE_EQ(h->stats().mean(), 200.0);
  double p50 = h->samples().percentile(0.5);
  EXPECT_GE(p50, 100.0);
  EXPECT_LE(p50, 300.0);
}

TEST(TraceRing, EvictsOldestAtCapacity) {
  TraceRing ring(2);
  PacketTrace* a = ring.begin_packet(1, "eth0");
  a->add("slow", "ip_rcv", 10);
  PacketTrace* b = ring.begin_packet(1, "eth0");
  b->verdict = "ok";
  PacketTrace* c = ring.begin_packet(2, "eth1");
  c->verdict = "no_route";
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring.packets_traced(), 3u);
  EXPECT_EQ(ring.at(0).id, 1u);
  EXPECT_EQ(ring.latest().id, 2u);
  EXPECT_EQ(ring.latest().ifindex, 2);
  EXPECT_EQ(ring.latest().verdict, "no_route");
}

TEST(TraceRing, TraceJsonRoundTrip) {
  TraceRing ring(4);
  PacketTrace* t = ring.begin_packet(3, "eth0");
  t->fast_path = true;
  t->verdict = "ok";
  t->total_cycles = 123;
  t->add("slow", "driver_rx", 90);
  t->add("ebpf", "fib_lookup", 33, "hit");
  Json j = ring.latest().to_json();
  EXPECT_EQ(j.at("device").as_string(), "eth0");
  EXPECT_TRUE(j.at("fast_path").as_bool());
  EXPECT_EQ(j.at("verdict").as_string(), "ok");
  ASSERT_EQ(j.at("events").size(), 2u);
  EXPECT_EQ(j.at("events").at(0).at("stage").as_string(), "driver_rx");
  EXPECT_EQ(j.at("events").at(1).at("layer").as_string(), "ebpf");
  EXPECT_EQ(j.at("events").at(1).at("detail").as_string(), "hit");

  Json all = ring.to_json();
  EXPECT_EQ(all.size(), 1u);
}

TEST(ActivePacketTrace, GlobalSetAndClear) {
  EXPECT_EQ(active_packet_trace(), nullptr);
  PacketTrace t;
  set_active_packet_trace(&t);
  EXPECT_EQ(active_packet_trace(), &t);
  set_active_packet_trace(nullptr);
  EXPECT_EQ(active_packet_trace(), nullptr);
}

}  // namespace
}  // namespace linuxfp::util
