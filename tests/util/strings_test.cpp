#include "util/strings.h"

#include <gtest/gtest.h>

namespace linuxfp::util {
namespace {

TEST(Strings, SplitWs) {
  EXPECT_EQ(split_ws("ip  route   add"),
            (std::vector<std::string>{"ip", "route", "add"}));
  EXPECT_EQ(split_ws("  leading trailing  "),
            (std::vector<std::string>{"leading", "trailing"}));
  EXPECT_TRUE(split_ws("").empty());
  EXPECT_TRUE(split_ws("   \t\n ").empty());
}

TEST(Strings, SplitDelim) {
  EXPECT_EQ(split("10.0.0.1/24", '/'),
            (std::vector<std::string>{"10.0.0.1", "24"}));
  EXPECT_EQ(split("a::b", ':'), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"one"}, ","), "one");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("net.ipv4.ip_forward", "net.ipv4"));
  EXPECT_FALSE(starts_with("net", "net.ipv4"));
}

TEST(Strings, TrimAndLower) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(to_lower("FORWARD"), "forward");
}

TEST(Strings, ParseU64) {
  unsigned long long v = 0;
  EXPECT_TRUE(parse_u64("12345", v));
  EXPECT_EQ(v, 12345u);
  EXPECT_FALSE(parse_u64("", v));
  EXPECT_FALSE(parse_u64("12a", v));
  EXPECT_FALSE(parse_u64("-3", v));
  EXPECT_TRUE(parse_u64("0", v));
  EXPECT_EQ(v, 0u);
}

}  // namespace
}  // namespace linuxfp::util
