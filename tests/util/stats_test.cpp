#include "util/stats.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace linuxfp::util {
namespace {

TEST(OnlineStats, MeanAndStddev) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8u);
}

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(SampleSet, ExactPercentiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_NEAR(s.percentile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(s.percentile(1.0), 100.0, 1e-9);
  EXPECT_NEAR(s.p50(), 50.5, 1e-9);
  EXPECT_NEAR(s.p99(), 99.01, 1e-9);
}

TEST(SampleSet, MeanMatchesOnline) {
  Rng rng(7);
  SampleSet set;
  OnlineStats online;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.next_double() * 100;
    set.add(v);
    online.add(v);
  }
  EXPECT_NEAR(set.mean(), online.mean(), 1e-9);
  EXPECT_NEAR(set.stddev(), online.stddev(), 1e-6);
}

TEST(SampleSet, AddAfterSortKeepsCorrectness) {
  SampleSet s;
  s.add(10);
  EXPECT_DOUBLE_EQ(s.p50(), 10);
  s.add(20);
  s.add(0);
  EXPECT_DOUBLE_EQ(s.p50(), 10);
  EXPECT_DOUBLE_EQ(s.min(), 0);
  EXPECT_DOUBLE_EQ(s.max(), 20);
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformCoverage) {
  Rng rng(3);
  int buckets[10] = {0};
  for (int i = 0; i < 100000; ++i) {
    ++buckets[static_cast<int>(rng.next_double() * 10)];
  }
  for (int b : buckets) EXPECT_NEAR(b, 10000, 600);
}

TEST(Rng, ExponentialMean) {
  Rng rng(9);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.next_exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Format, SiRates) {
  EXPECT_EQ(format_si_rate(1768221), "1.77M");
  EXPECT_EQ(format_si_rate(25e9), "25.00G");
  EXPECT_EQ(format_si_rate(950), "950.00");
  EXPECT_EQ(format_si_rate(1200), "1.20k");
}

}  // namespace
}  // namespace linuxfp::util
