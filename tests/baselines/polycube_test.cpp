#include "baselines/polycube/polycube.h"

#include <gtest/gtest.h>

#include "core/controller.h"
#include "tests/kernel/test_topo.h"

namespace linuxfp::pcn {
namespace {

using linuxfp::testing::RouterDut;

// Builds a Polycube DUT configured (via its custom CLI) equivalently to the
// Linux commands of the RouterDut — the paper's "configured with commands
// equivalent to the Linux configuration".
class PolycubeTest : public ::testing::Test {
 protected:
  PolycubeTest() : pcn_(dut_.kernel) {
    cli("pcn router port add eth0 10.10.1.1/24");
    cli("pcn router port add eth1 10.10.2.1/24");
    cli("pcn router neigh add 10.10.1.2 " + dut_.src_host_mac.to_string() +
        " eth0");
    cli("pcn router neigh add 10.10.2.2 " + dut_.sink_gw_mac.to_string() +
        " eth1");
  }

  void cli(const std::string& cmd) {
    auto st = pcn_.cli(cmd);
    ASSERT_TRUE(st.ok()) << cmd << ": " << st.error().message;
  }

  RouterDut dut_;
  PolycubeRouter pcn_;
};

TEST_F(PolycubeTest, ForwardsViaOwnMaps) {
  cli("pcn router route add 10.100.0.0/24 10.10.2.2");
  auto out = pcn_.process(dut_.packet_to_prefix(0));
  EXPECT_TRUE(out.forwarded);
  EXPECT_TRUE(out.fast_path);
  ASSERT_EQ(dut_.tx_eth1.size(), 1u);
  auto parsed = net::parse_packet(dut_.tx_eth1[0]);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->eth_dst, dut_.sink_gw_mac);
  EXPECT_EQ(parsed->ttl, 63);
  net::Ipv4View ip(dut_.tx_eth1[0].data() + parsed->l3_offset);
  EXPECT_TRUE(ip.checksum_valid());
}

TEST_F(PolycubeTest, IgnoresKernelRoutingState) {
  // Route installed with iproute2 into the KERNEL: Polycube must not see it
  // (its pipeline reads its own maps) — the anti-transparency property.
  dut_.run("ip route add 10.100.0.0/24 via 10.10.2.2 dev eth1");
  auto out = pcn_.process(dut_.packet_to_prefix(0));
  EXPECT_FALSE(out.forwarded);
}

TEST_F(PolycubeTest, StaleAfterKernelRouteChange) {
  cli("pcn router route add 10.100.0.0/24 10.10.2.2");
  // Operator deletes the kernel route (e.g. FRR withdraws it); Polycube
  // keeps forwarding until ITS control plane is updated = staleness window.
  (void)kern::run_command(dut_.kernel, "ip route del 10.100.0.0/24");
  auto out = pcn_.process(dut_.packet_to_prefix(0));
  EXPECT_TRUE(out.forwarded);  // stale!
  cli("pcn router route del 10.100.0.0/24");
  auto out2 = pcn_.process(dut_.packet_to_prefix(0));
  EXPECT_FALSE(out2.forwarded);
}

TEST_F(PolycubeTest, FirewallDropsBlacklistedSources) {
  cli("pcn router route add 10.100.0.0/24 10.10.2.2");
  cli("pcn firewall rule add src 10.10.1.2 action DROP");
  auto out = pcn_.process(dut_.packet_to_prefix(0));
  EXPECT_TRUE(out.dropped_by_policy);
  EXPECT_TRUE(dut_.tx_eth1.empty());
}

TEST_F(PolycubeTest, FirewallCostFlatInRuleCount) {
  cli("pcn router route add 10.100.0.0/24 10.10.2.2");
  cli("pcn firewall rule add src 10.9.0.1 action DROP");
  auto one_rule = pcn_.process(dut_.packet_to_prefix(0));
  for (int i = 2; i <= 100; ++i) {
    cli("pcn firewall rule add src 10.9." + std::to_string(i / 250) + "." +
        std::to_string(1 + i % 250) + " action DROP");
  }
  auto hundred_rules = pcn_.process(dut_.packet_to_prefix(0));
  EXPECT_TRUE(one_rule.forwarded);
  EXPECT_TRUE(hundred_rules.forwarded);
  // Hash-based classification: identical cost (the Fig 8 Polycube curve).
  EXPECT_EQ(one_rule.cycles, hundred_rules.cycles);
}

TEST_F(PolycubeTest, UsesTailCallsBetweenCubes) {
  cli("pcn router route add 10.100.0.0/24 10.10.2.2");
  cli("pcn firewall rule add src 10.9.0.1 action DROP");
  auto before_stats = pcn_.attachment().stats().runs;
  pcn_.process(dut_.packet_to_prefix(0));
  EXPECT_GT(pcn_.attachment().stats().runs, before_stats);
  // Pipeline: dispatcher -> parser -> firewall -> router = 3 tail calls.
  // (Verified indirectly: cost exceeds the no-firewall pipeline by at least
  // one tail-call transition.)
}

TEST_F(PolycubeTest, SlowerThanLinuxFpForSameFunction) {
  cli("pcn router route add 10.100.0.0/24 10.10.2.2");
  auto pcn_out = pcn_.process(dut_.packet_to_prefix(0));

  RouterDut lfp_dut;
  lfp_dut.add_prefixes(1);
  linuxfp::core::Controller controller(lfp_dut.kernel);
  controller.start();
  kern::CycleTrace t;
  lfp_dut.kernel.rx(lfp_dut.eth0_ifindex(), lfp_dut.packet_to_prefix(0), t);
  // Paper §VI-B: LinuxFP ~19% faster, attributed to inlined calls vs tail
  // calls and specialized vs generic code.
  EXPECT_GT(pcn_out.cycles, t.total());
  double ratio =
      static_cast<double>(pcn_out.cycles) / static_cast<double>(t.total());
  EXPECT_GT(ratio, 1.05);
  EXPECT_LT(ratio, 1.45);
}

}  // namespace
}  // namespace linuxfp::pcn
