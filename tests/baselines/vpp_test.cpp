#include "baselines/vpp/vpp.h"

#include <gtest/gtest.h>

namespace linuxfp::vpp {
namespace {

class VppTest : public ::testing::Test {
 protected:
  VppTest() {
    cli("set interface ip address eth0 10.10.1.1/24");
    cli("set interface ip address eth1 10.10.2.1/24");
    cli("set ip neighbor eth1 10.10.2.2 02:00:00:00:05:02");
    cli("ip route add 10.100.0.0/24 via 10.10.2.2");
  }

  void cli(const std::string& cmd) {
    auto st = vpp_.cli(cmd);
    ASSERT_TRUE(st.ok()) << cmd << ": " << st.error().message;
  }

  net::Packet packet(const std::string& dst) {
    net::FlowKey f;
    f.src_ip = net::Ipv4Addr::parse("10.10.1.2").value();
    f.dst_ip = net::Ipv4Addr::parse(dst).value();
    f.src_port = 1234;
    f.dst_port = 7;
    return net::build_udp_packet(net::MacAddr::from_id(1),
                                 net::MacAddr::from_id(2), f, 64);
  }

  VppRouter vpp_;
};

TEST_F(VppTest, ForwardsAndRewrites) {
  net::Packet pkt = packet("10.100.0.9");
  auto out = vpp_.process(std::move(pkt));
  EXPECT_TRUE(out.forwarded);
  EXPECT_TRUE(out.fast_path);
  EXPECT_GT(out.cycles, 0u);
}

TEST_F(VppTest, DropsUnroutable) {
  auto out = vpp_.process(packet("99.9.9.9"));
  EXPECT_FALSE(out.forwarded);
}

TEST_F(VppTest, VectorBatchingAmortizesCosts) {
  vpp_.set_vector_size(1);
  auto unbatched = vpp_.process(packet("10.100.0.9"));
  vpp_.set_vector_size(256);
  auto batched = vpp_.process(packet("10.100.0.9"));
  EXPECT_GT(unbatched.cycles, batched.cycles);
  // The entire per-vector cost shows up at vector=1.
  std::uint64_t per_vector_sum = 0;
  for (const auto& node : vpp_.graph_nodes()) per_vector_sum += node.per_vector;
  EXPECT_GE(unbatched.cycles - batched.cycles, per_vector_sum / 2);
}

TEST_F(VppTest, BusyPollDeclared) { EXPECT_TRUE(vpp_.busy_poll()); }

TEST_F(VppTest, AclDropsAndStaysFlat) {
  cli("acl add deny src 10.10.1.2/32");
  auto dropped = vpp_.process(packet("10.100.0.9"));
  EXPECT_TRUE(dropped.dropped_by_policy);

  // Unmatched traffic forwards; cost independent of rule count.
  cli("set ip neighbor eth1 10.10.2.3 02:00:00:00:05:03");
  net::FlowKey f;
  f.src_ip = net::Ipv4Addr::parse("10.10.1.3").value();
  f.dst_ip = net::Ipv4Addr::parse("10.100.0.9").value();
  f.src_port = 9;
  f.dst_port = 9;
  auto mk = [&] {
    return net::build_udp_packet(net::MacAddr::from_id(1),
                                 net::MacAddr::from_id(2), f, 64);
  };
  auto one = vpp_.process(mk());
  for (int i = 0; i < 99; ++i) {
    cli("acl add deny src 10.9.0." + std::to_string(i + 1) + "/32");
  }
  auto many = vpp_.process(mk());
  EXPECT_TRUE(one.forwarded);
  EXPECT_TRUE(many.forwarded);
  EXPECT_EQ(one.cycles, many.cycles);
}

TEST_F(VppTest, FasterThanTypicalKernelPaths) {
  // VPP's whole point: bypass + batching beat in-kernel processing.
  auto out = vpp_.process(packet("10.100.0.9"));
  // Under 1000 cycles/packet at vector=256 (cf. LinuxFP ~1356).
  EXPECT_LT(out.cycles, 1000u);
}

TEST_F(VppTest, CliErrors) {
  EXPECT_FALSE(vpp_.cli("ip route add 10.0.0.0/8 via 7.7.7.7").ok());
  EXPECT_FALSE(vpp_.cli("set ip neighbor nope 1.1.1.1 02:00:00:00:00:01").ok());
  EXPECT_FALSE(vpp_.cli("bogus").ok());
}

}  // namespace
}  // namespace linuxfp::vpp
