// Guard differential fuzz: a guarded, accelerated DUT against a pure-Linux
// twin under random firewall policies and random traffic, with faults
// injected at the guard's own seams (forced divergence, breaker trips racing
// redeploys). The contract is stronger than detection: at every instant —
// before, during and after a quarantine — the guarded DUT's emitted packet
// stream is byte-identical to the twin's, because shadow execution serves
// via the slow path and quarantine degrades to exactly the slow path (with
// the flow cache epoch-flushed). Divergence handling must never itself
// diverge.
#include <gtest/gtest.h>

#include "core/controller.h"
#include "core/guard.h"
#include "tests/kernel/test_topo.h"
#include "util/fault.h"
#include "util/rng.h"

namespace linuxfp::core {
namespace {

using linuxfp::testing::RouterDut;

// Runs once per execution engine: quarantine, shadow comparison and breaker
// state machines must behave identically over interpreted and
// direct-threaded fast paths (DESIGN.md §14).
class GuardFuzz : public ::testing::TestWithParam<ebpf::ExecEngine> {};

std::string random_rule(util::Rng& rng) {
  std::string rule = "iptables -A FORWARD";
  if (rng.next_below(4) == 0) rule += " !";
  rule += " -d 10." + std::to_string(100 + rng.next_below(10)) + "." +
          std::to_string(rng.next_below(2)) + ".0/24";
  if (rng.next_below(2) == 0) {
    rule += rng.next_below(2) == 0 ? " -p udp" : " -p tcp";
  }
  rule += rng.next_below(3) == 0 ? " -j ACCEPT" : " -j DROP";
  return rule;
}

struct GuardedTwins {
  RouterDut fast, slow;
  std::unique_ptr<Controller> controller;
  GuardUnit* unit = nullptr;
  util::Rng rng;
  std::uint64_t sent = 0;

  explicit GuardedTwins(std::uint64_t seed, ebpf::ExecEngine engine)
      : rng(seed * 16127 + 3) {
    fast.add_prefixes(20);
    slow.add_prefixes(20);
    int n_rules = 1 + static_cast<int>(rng.next_below(8));
    for (int i = 0; i < n_rules; ++i) {
      std::string rule = random_rule(rng);
      auto s1 = kern::run_command(fast.kernel, rule);
      auto s2 = kern::run_command(slow.kernel, rule);
      EXPECT_EQ(s1.ok(), s2.ok()) << rule;
    }
    ControllerOptions opts;
    opts.flow_cache = true;  // quarantine must epoch-flush cached verdicts
    opts.guard.enabled = true;
    opts.guard.canary_packets = 4;
    opts.guard.sample_every = 2;
    opts.guard.half_open_packets = 4;
    opts.guard.reprobe_base_ns = 1'000'000;
    opts.guard.reprobe_jitter = 0.0;
    opts.exec_engine = engine;
    controller = std::make_unique<Controller>(fast.kernel, opts);
    controller->start();
    unit = controller->guard()->unit("eth0", ebpf::HookType::kXdp);
  }

  // One random packet into both twins; asserts the emitted streams stay
  // byte-identical.
  void step() {
    int prefix = static_cast<int>(rng.next_below(20));
    auto flow = static_cast<std::uint16_t>(rng.next_below(32));
    kern::CycleTrace tf, ts;
    fast.kernel.rx(fast.eth0_ifindex(), fast.packet_to_prefix(prefix, flow),
                   tf);
    slow.kernel.rx(slow.eth0_ifindex(), slow.packet_to_prefix(prefix, flow),
                   ts);
    ++sent;
    ASSERT_EQ(fast.tx_eth1.size(), slow.tx_eth1.size()) << "packet " << sent;
    if (!fast.tx_eth1.empty()) {
      const net::Packet& a = fast.tx_eth1.back();
      const net::Packet& b = slow.tx_eth1.back();
      ASSERT_EQ(a.size(), b.size()) << "packet " << sent;
      ASSERT_EQ(0, std::memcmp(a.data(), b.data(), a.size()))
          << "packet " << sent;
    }
  }

  void check_drop_parity() {
    auto drop_of = [](const kern::Kernel& k, kern::Drop r) {
      auto it = k.counters().drops.find(r);
      return it == k.counters().drops.end() ? 0ull : it->second;
    };
    std::uint64_t fast_policy = drop_of(fast.kernel, kern::Drop::kPolicy) +
                                drop_of(fast.kernel, kern::Drop::kXdpDrop);
    EXPECT_EQ(fast_policy, drop_of(slow.kernel, kern::Drop::kPolicy));
    for (kern::Drop r : {kern::Drop::kNoRoute, kern::Drop::kTtlExceeded,
                         kern::Drop::kMalformed}) {
      EXPECT_EQ(drop_of(fast.kernel, r), drop_of(slow.kernel, r))
          << kern::drop_name(r);
    }
  }
};

TEST_P(GuardFuzz, ForcedDivergenceQuarantinesWithoutEverDiverging) {
  for (std::uint64_t seed : {11ull, 12ull, 13ull}) {
    util::FaultScope faults(seed);
    GuardedTwins t(seed, GetParam());
    ASSERT_NE(t.unit, nullptr);

    // Phase 1: canary + promotion under random policy. Equivalence holds
    // packet-for-packet while the guard is still shadow-comparing.
    for (int i = 0; i < 60 && !::testing::Test::HasFatalFailure(); ++i) {
      t.step();
    }
    ASSERT_FALSE(::testing::Test::HasFatalFailure());
    ASSERT_EQ(t.unit->mode(), GuardMode::kActive) << "seed " << seed;

    // Phase 2: a synthesis bug ships — the nth sampled shadow expectation is
    // corrupted. The guarded DUT must keep emitting the twin's exact stream
    // (the diverging packet is served by the slow path) while the breaker
    // trips.
    // fail_times counts from rule installation (fail_nth counts from arming,
    // and phase 1's shadow runs already hit this point).
    faults->fail_times(util::kFaultGuardVerdict, 1);
    int spins = 0;
    while (t.unit->mode() != GuardMode::kQuarantined && spins++ < 300) {
      t.step();
      if (::testing::Test::HasFatalFailure()) return;
    }
    ASSERT_EQ(t.unit->mode(), GuardMode::kQuarantined) << "seed " << seed;
    faults->clear(util::kFaultGuardVerdict);
    EXPECT_GE(t.unit->stats().divergences, 1u);

    // Quarantine completion: PASS fallback active, flow epoch bumped.
    ebpf::Attachment* att =
        t.controller->deployer().attachment("eth0", ebpf::HookType::kXdp);
    ASSERT_NE(att, nullptr);
    std::uint64_t epoch_before = att->flow_epoch();
    t.controller->run_once();
    EXPECT_GT(att->flow_epoch(), epoch_before) << "seed " << seed;
    EXPECT_EQ(att->programs()[att->active_prog_id()].name, "lfp_pass");
    EXPECT_TRUE(t.controller->health().degraded);

    // Phase 3: quarantined = exactly the slow path. Zero post-quarantine
    // divergence, zero fast-path verdicts, byte-identical streams, coherent
    // drop accounting.
    const std::uint64_t div_at_quarantine = t.unit->stats().divergences;
    const std::uint64_t fast_pkts =
        t.fast.kernel.counters().fast_path_packets;
    for (int i = 0; i < 100; ++i) {
      t.step();
      if (::testing::Test::HasFatalFailure()) return;
    }
    EXPECT_EQ(t.unit->stats().divergences, div_at_quarantine)
        << "seed " << seed;
    EXPECT_EQ(t.fast.kernel.counters().fast_path_packets, fast_pkts)
        << "seed " << seed;
    t.check_drop_parity();

    // Phase 4: re-probe, half-open, clean close — and the fast path resumes
    // without breaking equivalence.
    std::uint64_t reprobe = t.controller->guard()->next_reprobe_ns();
    ASSERT_NE(reprobe, 0u);
    t.fast.kernel.set_now_ns(
        std::max(reprobe, t.fast.kernel.now_ns() + 1));
    t.controller->run_once();
    ASSERT_EQ(t.unit->mode(), GuardMode::kHalfOpen) << "seed " << seed;
    spins = 0;
    while (t.unit->mode() != GuardMode::kActive && spins++ < 300) {
      t.step();
      if (::testing::Test::HasFatalFailure()) return;
    }
    ASSERT_EQ(t.unit->mode(), GuardMode::kActive) << "seed " << seed;
    t.fast.kernel.set_now_ns(t.fast.kernel.now_ns() + 1);
    t.controller->run_once();
    EXPECT_FALSE(t.controller->health().degraded) << "seed " << seed;
    for (int i = 0; i < 50; ++i) {
      t.step();
      if (::testing::Test::HasFatalFailure()) return;
    }
    EXPECT_GT(t.fast.kernel.counters().fast_path_packets, fast_pkts)
        << "seed " << seed;
    t.check_drop_parity();
  }
}

TEST_P(GuardFuzz, BreakerTripRacingRedeployStaysEquivalent) {
  for (std::uint64_t seed : {21ull, 22ull}) {
    util::FaultScope faults(seed);
    GuardedTwins t(seed, GetParam());
    ASSERT_NE(t.unit, nullptr);
    for (int i = 0; i < 30; ++i) {
      t.step();
      if (::testing::Test::HasFatalFailure()) return;
    }
    ASSERT_EQ(t.unit->mode(), GuardMode::kActive);

    // The breaker trips (forced) in the same reaction that deploys a config
    // change on both twins: the freshly deployed program must come up in
    // half-open probing — never trusted-active — and the streams stay equal.
    faults->fail_times(util::kFaultGuardBreaker, 1);
    std::string rule = random_rule(t.rng);
    EXPECT_EQ(kern::run_command(t.fast.kernel, rule).ok(),
              kern::run_command(t.slow.kernel, rule).ok());
    t.controller->run_once();
    EXPECT_EQ(t.unit->trip_reason(), TripReason::kForced);
    EXPECT_TRUE(t.unit->mode() == GuardMode::kQuarantined ||
                t.unit->mode() == GuardMode::kHalfOpen);
    EXPECT_TRUE(t.controller->health().degraded);

    for (int i = 0; i < 60; ++i) {
      t.step();
      if (::testing::Test::HasFatalFailure()) return;
    }
    // Recover fully (quarantined -> reprobe; half-open -> close).
    if (t.unit->mode() == GuardMode::kQuarantined) {
      std::uint64_t reprobe = t.controller->guard()->next_reprobe_ns();
      ASSERT_NE(reprobe, 0u);
      t.fast.kernel.set_now_ns(std::max(reprobe, t.fast.kernel.now_ns() + 1));
      t.controller->run_once();
      ASSERT_EQ(t.unit->mode(), GuardMode::kHalfOpen);
    }
    int spins = 0;
    while (t.unit->mode() != GuardMode::kActive && spins++ < 300) {
      t.step();
      if (::testing::Test::HasFatalFailure()) return;
    }
    EXPECT_EQ(t.unit->mode(), GuardMode::kActive) << "seed " << seed;
    t.fast.kernel.set_now_ns(t.fast.kernel.now_ns() + 1);
    t.controller->run_once();
    EXPECT_FALSE(t.controller->health().degraded) << "seed " << seed;
    t.check_drop_parity();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Engines, GuardFuzz,
    ::testing::Values(ebpf::ExecEngine::kInterpreter, ebpf::ExecEngine::kJit),
    [](const ::testing::TestParamInfo<ebpf::ExecEngine>& info) {
      return std::string(info.param == ebpf::ExecEngine::kJit ? "jit"
                                                              : "interp");
    });

}  // namespace
}  // namespace linuxfp::core
