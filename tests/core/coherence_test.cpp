// State-coherence property tests (the paper's central correctness argument,
// §IV-B2): the fast path reads live kernel state through helpers, so any
// slow-path/tool mutation is visible to the very next fast-path packet, and
// packets produce identical results on either path under randomized
// interleavings of traffic and configuration changes.
#include <gtest/gtest.h>

#include "core/controller.h"
#include "tests/kernel/test_topo.h"
#include "util/rng.h"

namespace linuxfp::core {
namespace {

using linuxfp::testing::RouterDut;

TEST(Coherence, RouteFlapUnderTraffic) {
  RouterDut dut;
  dut.add_prefixes(1);
  Controller controller(dut.kernel);
  controller.start();

  // Warm: forwarded on fast path.
  kern::CycleTrace t0;
  EXPECT_TRUE(
      dut.kernel.rx(dut.eth0_ifindex(), dut.packet_to_prefix(0), t0)
          .fast_path);
  EXPECT_EQ(dut.tx_eth1.size(), 1u);

  // Delete the route. Even BEFORE the controller reacts, the fast path must
  // not forward (the helper reads the live FIB).
  dut.run("ip route del 10.100.0.0/24");
  kern::CycleTrace t1;
  auto during = dut.kernel.rx(dut.eth0_ifindex(), dut.packet_to_prefix(0), t1);
  EXPECT_EQ(dut.tx_eth1.size(), 1u) << "stale fast path forwarded a packet";
  EXPECT_NE(during.drop, kern::Drop::kNone);

  // Re-add; again immediately visible.
  dut.run("ip route add 10.100.0.0/24 via 10.10.2.2 dev eth1");
  kern::CycleTrace t2;
  dut.kernel.rx(dut.eth0_ifindex(), dut.packet_to_prefix(0), t2);
  EXPECT_EQ(dut.tx_eth1.size(), 2u);
}

TEST(Coherence, FirewallRuleImmediatelyEnforced) {
  RouterDut dut;
  dut.add_prefixes(2);
  // Pre-existing rule so the filter FPM is already deployed.
  dut.run("iptables -A FORWARD -d 10.66.0.0/16 -j DROP");
  Controller controller(dut.kernel);
  controller.start();

  kern::CycleTrace t0;
  dut.kernel.rx(dut.eth0_ifindex(), dut.packet_to_prefix(0), t0);
  EXPECT_EQ(dut.tx_eth1.size(), 1u);

  // Append a rule blocking prefix 0 and do NOT run the controller: the
  // bpf_ipt_lookup helper walks the live rule list.
  ASSERT_TRUE(dut.kernel.netfilter()
                  .append_rule("FORWARD",
                               [] {
                                 kern::Rule r;
                                 r.match.dst = net::Ipv4Prefix::parse(
                                                   "10.100.0.0/24")
                                                   .value();
                                 r.target = kern::RuleTarget::kDrop;
                                 return r;
                               }())
                  .ok());
  kern::CycleTrace t1;
  auto summary =
      dut.kernel.rx(dut.eth0_ifindex(), dut.packet_to_prefix(0), t1);
  EXPECT_TRUE(summary.fast_path);
  EXPECT_EQ(summary.drop, kern::Drop::kXdpDrop);
  EXPECT_EQ(dut.tx_eth1.size(), 1u);
}

TEST(Coherence, IpsetMembershipLiveOnFastPath) {
  RouterDut dut;
  dut.add_prefixes(2);
  dut.run("ipset create blacklist hash:ip");
  dut.run("iptables -A FORWARD -m set --match-set blacklist src -j DROP");
  Controller controller(dut.kernel);
  controller.start();

  kern::CycleTrace t0;
  dut.kernel.rx(dut.eth0_ifindex(), dut.packet_to_prefix(0), t0);
  EXPECT_EQ(dut.tx_eth1.size(), 1u);

  dut.run("ipset add blacklist 10.10.1.2");  // the traffic source
  kern::CycleTrace t1;
  auto blocked =
      dut.kernel.rx(dut.eth0_ifindex(), dut.packet_to_prefix(0), t1);
  EXPECT_EQ(blocked.drop, kern::Drop::kXdpDrop);

  dut.run("ipset del blacklist 10.10.1.2");
  kern::CycleTrace t2;
  dut.kernel.rx(dut.eth0_ifindex(), dut.packet_to_prefix(0), t2);
  EXPECT_EQ(dut.tx_eth1.size(), 2u);
}

// Property test: randomized interleaving of config mutations and traffic;
// after every step an accelerated DUT and a pure-Linux DUT must emit
// byte-identical packet streams.
TEST(Coherence, RandomizedEquivalenceWithPureLinux) {
  util::Rng rng(2024);
  RouterDut fast, slow;
  Controller controller(fast.kernel);
  controller.start();

  std::vector<std::string> installed_routes;
  std::vector<std::size_t> installed_rules;
  int rule_seq = 0;

  for (int step = 0; step < 400; ++step) {
    int action = static_cast<int>(rng.next_below(10));
    if (action == 0) {
      // Add a route.
      std::string prefix = "10." + std::to_string(100 + rng.next_below(20)) +
                           ".0.0/24";
      std::string cmd = "ip route add " + prefix + " via 10.10.2.2 dev eth1";
      (void)kern::run_command(fast.kernel, cmd);
      (void)kern::run_command(slow.kernel, cmd);
      installed_routes.push_back(prefix);
    } else if (action == 1 && !installed_routes.empty()) {
      // Delete a random installed route from both DUTs.
      std::size_t pick = rng.next_below(installed_routes.size());
      std::string cmd = "ip route del " + installed_routes[pick];
      (void)kern::run_command(fast.kernel, cmd);
      (void)kern::run_command(slow.kernel, cmd);
      installed_routes.erase(installed_routes.begin() +
                             static_cast<std::ptrdiff_t>(pick));
    } else if (action == 2) {
      // Add a DROP rule for a random /24.
      std::string prefix =
          "10." + std::to_string(100 + rng.next_below(20)) + ".0.0/24";
      std::string cmd = "iptables -A FORWARD -d " + prefix + " -j DROP";
      (void)kern::run_command(fast.kernel, cmd);
      (void)kern::run_command(slow.kernel, cmd);
      ++rule_seq;
    } else if (action == 3 && rule_seq > 0) {
      (void)kern::run_command(fast.kernel, "iptables -D FORWARD 1");
      (void)kern::run_command(slow.kernel, "iptables -D FORWARD 1");
      --rule_seq;
    } else if (action == 4) {
      controller.run_once();
    }
    // Traffic: a random destination in the same universe.
    int target = static_cast<int>(rng.next_below(20));
    kern::CycleTrace tf, ts;
    fast.kernel.rx(fast.eth0_ifindex(), fast.packet_to_prefix(target), tf);
    slow.kernel.rx(slow.eth0_ifindex(), slow.packet_to_prefix(target), ts);

    ASSERT_EQ(fast.tx_eth1.size(), slow.tx_eth1.size()) << "step " << step;
    if (!fast.tx_eth1.empty()) {
      const net::Packet& a = fast.tx_eth1.back();
      const net::Packet& b = slow.tx_eth1.back();
      ASSERT_EQ(a.size(), b.size());
      ASSERT_EQ(0, std::memcmp(a.data(), b.data(), a.size()))
          << "step " << step;
    }
  }
  // The accelerated DUT really did use the fast path.
  EXPECT_GT(fast.kernel.counters().fast_path_packets, 40u);
  EXPECT_EQ(slow.kernel.counters().fast_path_packets, 0u);
}

TEST(Coherence, SlowPathLearningFeedsFastPath) {
  // Bridge scenario: first packet floods (slow path learns), subsequent
  // reverse traffic uses the fast path with the learned entry.
  kern::Kernel k("br-host");
  std::vector<net::Packet> tx1, tx2;
  k.add_phys_dev("p1").set_phys_tx(
      [&](net::Packet&& p) { tx1.push_back(std::move(p)); });
  k.add_phys_dev("p2").set_phys_tx(
      [&](net::Packet&& p) { tx2.push_back(std::move(p)); });
  ASSERT_TRUE(kern::run_command(k, "brctl addbr br0").ok());
  for (const char* d : {"p1", "p2", "br0"}) {
    ASSERT_TRUE(
        kern::run_command(k, std::string("ip link set ") + d + " up").ok());
  }
  ASSERT_TRUE(kern::run_command(k, "brctl addif br0 p1").ok());
  ASSERT_TRUE(kern::run_command(k, "brctl addif br0 p2").ok());

  ControllerOptions opts;
  opts.attach_bridge_ports = true;
  Controller controller(k, opts);
  controller.start();

  auto a = net::MacAddr::from_id(0xA);
  auto b = net::MacAddr::from_id(0xB);
  net::FlowKey f;
  f.src_ip = net::Ipv4Addr::parse("192.168.0.1").value();
  f.dst_ip = net::Ipv4Addr::parse("192.168.0.2").value();

  // A -> B: both unknown; fast path punts (learn), slow path floods+learns A.
  kern::CycleTrace t1;
  auto s1 = k.rx(k.dev_by_name("p1")->ifindex(),
                 net::build_udp_packet(a, b, f, 64), t1);
  EXPECT_FALSE(s1.fast_path);
  EXPECT_EQ(tx2.size(), 1u);

  // B -> A: B unknown source (punt+learn), but A known -> slow path unicast.
  net::FlowKey back;
  back.src_ip = f.dst_ip;
  back.dst_ip = f.src_ip;
  kern::CycleTrace t2;
  auto s2 = k.rx(k.dev_by_name("p2")->ifindex(),
                 net::build_udp_packet(b, a, back, 64), t2);
  EXPECT_FALSE(s2.fast_path);
  EXPECT_EQ(tx1.size(), 1u);

  // A -> B again: both known now -> pure fast path L2 forward.
  kern::CycleTrace t3;
  auto s3 = k.rx(k.dev_by_name("p1")->ifindex(),
                 net::build_udp_packet(a, b, f, 64), t3);
  EXPECT_TRUE(s3.fast_path);
  EXPECT_EQ(tx2.size(), 2u);
  EXPECT_LT(t3.total(), t1.total());
}

}  // namespace
}  // namespace linuxfp::core
