#include "core/introspect.h"

#include <gtest/gtest.h>

#include "kernel/commands.h"
#include "kernel/kernel.h"

namespace linuxfp::core {
namespace {

TEST(Introspection, InitialSyncCapturesExistingConfig) {
  kern::Kernel k("host");
  k.add_phys_dev("eth0");
  ASSERT_TRUE(kern::run_command(k, "ip link set eth0 up").ok());
  ASSERT_TRUE(kern::run_command(k, "ip addr add 10.0.0.1/24 dev eth0").ok());
  ASSERT_TRUE(kern::run_command(k, "sysctl -w net.ipv4.ip_forward=1").ok());
  ASSERT_TRUE(
      kern::run_command(k, "ip route add 10.2.0.0/16 via 10.0.0.2 dev eth0")
          .ok());

  ServiceIntrospection si(k.netlink());
  si.initial_sync();
  const WorldView& v = si.view();
  ASSERT_EQ(v.links.size(), 1u);
  const LinkObject* eth0 = v.link_by_name("eth0");
  ASSERT_NE(eth0, nullptr);
  EXPECT_TRUE(eth0->up);
  EXPECT_EQ(eth0->addrs.size(), 1u);
  EXPECT_TRUE(v.ip_forward());
  EXPECT_EQ(v.routes.size(), 2u);  // connected + global
  EXPECT_EQ(v.global_route_count(), 1u);
}

TEST(Introspection, IncrementalEventsUpdateView) {
  kern::Kernel k("host");
  k.add_phys_dev("eth0");
  ServiceIntrospection si(k.netlink());
  si.initial_sync();
  EXPECT_FALSE(si.view().link_by_name("eth0")->up);

  ASSERT_TRUE(kern::run_command(k, "ip link set eth0 up").ok());
  EXPECT_TRUE(si.poll());
  EXPECT_TRUE(si.view().link_by_name("eth0")->up);

  ASSERT_TRUE(
      kern::run_command(k, "iptables -A FORWARD -s 1.2.3.0/24 -j DROP").ok());
  EXPECT_TRUE(si.poll());
  EXPECT_EQ(si.view().forward_rule_count(), 1u);

  EXPECT_FALSE(si.poll());  // no new events
}

TEST(Introspection, DynamicNeighborChurnDoesNotForceResynth) {
  kern::Kernel k("host");
  k.add_phys_dev("eth0");
  ServiceIntrospection si(k.netlink());
  si.initial_sync();

  // Static neighbour: relevant change.
  ASSERT_TRUE(kern::run_command(
                  k,
                  "ip neigh add 10.0.0.2 lladdr 02:00:00:00:00:05 dev eth0 "
                  "nud permanent")
                  .ok());
  EXPECT_TRUE(si.poll());
  EXPECT_EQ(si.view().neighbors.size(), 1u);
}

TEST(Introspection, BridgeObjectsCarryPortsAndFlags) {
  kern::Kernel k("host");
  k.add_phys_dev("p1");
  ASSERT_TRUE(kern::run_command(k, "brctl addbr br0").ok());
  ASSERT_TRUE(kern::run_command(k, "brctl addif br0 p1").ok());
  ASSERT_TRUE(kern::run_command(k, "brctl stp br0 on").ok());
  ServiceIntrospection si(k.netlink());
  si.initial_sync();
  const LinkObject* br = si.view().link_by_name("br0");
  ASSERT_NE(br, nullptr);
  EXPECT_EQ(br->kind, "bridge");
  EXPECT_TRUE(br->stp);
  ASSERT_EQ(br->ports.size(), 1u);
  EXPECT_EQ(br->ports[0].ifname, "p1");
  const LinkObject* p1 = si.view().link_by_name("p1");
  EXPECT_EQ(p1->master, br->ifindex);
}

TEST(Introspection, RouteDeletionReflected) {
  kern::Kernel k("host");
  k.add_phys_dev("eth0");
  ASSERT_TRUE(kern::run_command(k, "ip link set eth0 up").ok());
  ASSERT_TRUE(
      kern::run_command(k, "ip route add 10.2.0.0/16 via 10.0.0.2 dev eth0")
          .ok());
  ServiceIntrospection si(k.netlink());
  si.initial_sync();
  EXPECT_EQ(si.view().routes.size(), 1u);
  ASSERT_TRUE(kern::run_command(k, "ip route del 10.2.0.0/16").ok());
  EXPECT_TRUE(si.poll());
  EXPECT_TRUE(si.view().routes.empty());
}

}  // namespace
}  // namespace linuxfp::core
