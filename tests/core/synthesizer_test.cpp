#include "core/synthesizer.h"

#include <gtest/gtest.h>

#include "core/capability.h"
#include "core/introspect.h"
#include "core/topology.h"
#include "ebpf/kernel_helpers.h"
#include "ebpf/verifier.h"
#include "kernel/commands.h"
#include "kernel/kernel.h"

namespace linuxfp::core {
namespace {

// Builds the graph for a configured kernel and synthesizes it.
class SynthesizerTest : public ::testing::Test {
 protected:
  SynthesizerTest() { ebpf::register_all_helpers(helpers_, cost_); }

  void cmd(kern::Kernel& k, const std::string& c) {
    auto st = kern::run_command(k, c);
    ASSERT_TRUE(st.ok()) << c << ": " << st.error().message;
  }

  util::Json graphs_for(kern::Kernel& k, bool bridge_ports = false) {
    ServiceIntrospection si(k.netlink());
    si.initial_sync();
    TopologyOptions opts;
    opts.attach_bridge_ports = bridge_ports;
    TopologyManager tm(opts);
    return tm.build(si.view());
  }

  void setup_router(kern::Kernel& k, bool with_filter) {
    k.add_phys_dev("eth0");
    k.add_phys_dev("eth1");
    cmd(k, "ip link set eth0 up");
    cmd(k, "ip link set eth1 up");
    cmd(k, "ip addr add 10.1.0.1/24 dev eth0");
    cmd(k, "ip addr add 10.2.0.1/24 dev eth1");
    cmd(k, "sysctl -w net.ipv4.ip_forward=1");
    cmd(k, "ip route add 10.50.0.0/16 via 10.2.0.2 dev eth1");
    if (with_filter) {
      cmd(k, "iptables -A FORWARD -s 10.66.0.0/16 -j DROP");
    }
  }

  void expect_verifies(const ebpf::Program& prog) {
    ebpf::VerifyOptions opts;
    opts.helpers = &helpers_;
    auto st = ebpf::verify(prog, opts);
    EXPECT_TRUE(st.ok()) << prog.name << ": "
                         << (st.ok() ? "" : st.error().message);
  }

  kern::CostModel cost_;
  ebpf::HelperRegistry helpers_;
};

TEST_F(SynthesizerTest, RouterOnlyProgramVerifies) {
  kern::Kernel k("host");
  setup_router(k, false);
  auto graphs = graphs_for(k);
  ASSERT_GT(graphs.size(), 0u);
  Synthesizer synth;
  auto result = synth.synthesize(graphs.at(0));
  ASSERT_TRUE(result.ok()) << result.error().message;
  ASSERT_EQ(result->programs.size(), 1u);
  EXPECT_EQ(result->fpms, (std::vector<std::string>{"router"}));
  expect_verifies(result->programs[0]);
}

TEST_F(SynthesizerTest, FilterInclusionGrowsProgram) {
  kern::Kernel plain("plain"), filtered("filtered");
  setup_router(plain, false);
  setup_router(filtered, true);
  Synthesizer synth;
  auto p = synth.synthesize(graphs_for(plain).at(0));
  auto f = synth.synthesize(graphs_for(filtered).at(0));
  ASSERT_TRUE(p.ok());
  ASSERT_TRUE(f.ok());
  // Specialization: the filter snippet exists only when rules exist.
  EXPECT_GT(f->programs[0].size(), p->programs[0].size());
  EXPECT_EQ(f->fpms, (std::vector<std::string>{"filter", "router"}));
  expect_verifies(f->programs[0]);
}

TEST_F(SynthesizerTest, PortParsingOnlyWhenRulesNeedPorts) {
  kern::Kernel no_ports("a"), with_ports("b");
  setup_router(no_ports, true);  // src-prefix rule only
  setup_router(with_ports, false);
  cmd(with_ports, "iptables -A FORWARD -p tcp --dport 80 -j DROP");
  Synthesizer synth;
  auto a = synth.synthesize(graphs_for(no_ports).at(0));
  auto b = synth.synthesize(graphs_for(with_ports).at(0));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GT(b->programs[0].size(), a->programs[0].size());
}

TEST_F(SynthesizerTest, BridgeGraphSynthesizesAndVerifies) {
  kern::Kernel k("host");
  k.add_phys_dev("eth0");
  cmd(k, "brctl addbr br0");
  cmd(k, "ip link set eth0 up");
  cmd(k, "ip link set br0 up");
  cmd(k, "brctl addif br0 eth0");
  auto graphs = graphs_for(k, /*bridge_ports=*/true);
  ASSERT_EQ(graphs.size(), 1u);
  Synthesizer synth;
  auto result = synth.synthesize(graphs.at(0));
  ASSERT_TRUE(result.ok()) << result.error().message;
  EXPECT_EQ(result->fpms, (std::vector<std::string>{"bridge"}));
  expect_verifies(result->programs[0]);
}

TEST_F(SynthesizerTest, VlanSnippetOnlyWhenConfigured) {
  kern::Kernel plain("p"), vlan("v");
  for (kern::Kernel* k : {&plain, &vlan}) {
    k->add_phys_dev("eth0");
    cmd(*k, "brctl addbr br0");
    cmd(*k, "ip link set eth0 up");
    cmd(*k, "ip link set br0 up");
    cmd(*k, "brctl addif br0 eth0");
  }
  cmd(vlan, "bridge vlan add dev eth0 vid 100");
  Synthesizer synth;
  auto p = synth.synthesize(graphs_for(plain, true).at(0));
  auto v = synth.synthesize(graphs_for(vlan, true).at(0));
  ASSERT_TRUE(p.ok());
  ASSERT_TRUE(v.ok());
  EXPECT_GT(v->programs[0].size(), p->programs[0].size());
  expect_verifies(v->programs[0]);
}

TEST_F(SynthesizerTest, TailCallModeEmitsOneProgramPerFpm) {
  kern::Kernel k("host");
  setup_router(k, true);
  Synthesizer synth(ChainMode::kTailCalls);
  auto result = synth.synthesize(graphs_for(k).at(0), /*tail_call_base=*/5);
  ASSERT_TRUE(result.ok()) << result.error().message;
  EXPECT_EQ(result->programs.size(), 2u);  // filter, router
  EXPECT_EQ(result->tail_call_base, 5u);
  for (const auto& prog : result->programs) expect_verifies(prog);
}

TEST_F(SynthesizerTest, CustomSnippetInjected) {
  kern::Kernel k("host");
  setup_router(k, false);
  Synthesizer synth;
  auto base = synth.synthesize(graphs_for(k).at(0));
  ASSERT_TRUE(base.ok());
  synth.set_custom_snippet([](ebpf::ProgramBuilder& b) {
    // Tiny monitoring snippet: count-ish ALU work.
    b.mov(ebpf::kR3, 1);
    b.add(ebpf::kR3, 2);
  });
  auto custom = synth.synthesize(graphs_for(k).at(0));
  ASSERT_TRUE(custom.ok());
  EXPECT_EQ(custom->programs[0].size(), base->programs[0].size() + 2);
  expect_verifies(custom->programs[0]);
}

TEST_F(SynthesizerTest, EmptyGraphRejected) {
  util::Json g = util::Json::object();
  g["device"] = "eth0";
  g["ifindex"] = 1;
  g["hook"] = "xdp";
  g["dev_mac"] = "02:00:00:00:00:01";
  g["nodes"] = util::Json::object();
  Synthesizer synth;
  EXPECT_FALSE(synth.synthesize(g).ok());
}

TEST_F(SynthesizerTest, TcHookPropagates) {
  kern::Kernel k("host");
  setup_router(k, false);
  ServiceIntrospection si(k.netlink());
  si.initial_sync();
  TopologyOptions opts;
  opts.hook = "tc";
  TopologyManager tm(opts);
  auto graphs = tm.build(si.view());
  ASSERT_GT(graphs.size(), 0u);
  Synthesizer synth;
  auto result = synth.synthesize(graphs.at(0));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->hook, ebpf::HookType::kTcIngress);
  EXPECT_EQ(result->programs[0].hook, ebpf::HookType::kTcIngress);
}

}  // namespace
}  // namespace linuxfp::core
