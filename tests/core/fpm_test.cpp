// Direct tests of the synthesized FPM code paths: fast/slow equivalence for
// bridged traffic under br_netfilter, VLAN-filtered bridges, the
// local-address early punt, and the conntrack gate.
#include <gtest/gtest.h>

#include "core/controller.h"
#include "core/synthesizer.h"
#include "ebpf/kernel_helpers.h"
#include "ebpf/loader.h"
#include "kernel/commands.h"
#include "tests/kernel/test_topo.h"

namespace linuxfp::core {
namespace {

struct BridgeRig {
  kern::Kernel kernel{"br-host"};
  std::vector<net::Packet> tx_p1, tx_p2;
  net::MacAddr host_a = net::MacAddr::from_id(0xA);
  net::MacAddr host_b = net::MacAddr::from_id(0xB);
  int p1 = 0, p2 = 0;

  BridgeRig() {
    kernel.add_phys_dev("p1").set_phys_tx(
        [this](net::Packet&& p) { tx_p1.push_back(std::move(p)); });
    kernel.add_phys_dev("p2").set_phys_tx(
        [this](net::Packet&& p) { tx_p2.push_back(std::move(p)); });
    cmd("brctl addbr br0");
    for (const char* d : {"p1", "p2", "br0"}) {
      cmd(std::string("ip link set ") + d + " up");
    }
    cmd("brctl addif br0 p1");
    cmd("brctl addif br0 p2");
    p1 = kernel.dev_by_name("p1")->ifindex();
    p2 = kernel.dev_by_name("p2")->ifindex();
    // Pre-learn both stations so the fast path has FDB hits.
    kernel.bridge_by_name("br0")->fdb_learn(host_a, 0, p1, kernel.now_ns());
    kernel.bridge_by_name("br0")->fdb_learn(host_b, 0, p2, kernel.now_ns());
  }

  void cmd(const std::string& c) {
    auto st = kern::run_command(kernel, c);
    ASSERT_TRUE(st.ok()) << c << ": " << st.error().message;
  }

  net::Packet a_to_b(const std::string& src_ip, std::uint16_t dport) {
    net::FlowKey f;
    f.src_ip = net::Ipv4Addr::parse(src_ip).value();
    f.dst_ip = net::Ipv4Addr::parse("192.168.0.20").value();
    f.proto = net::kIpProtoTcp;
    f.src_port = 555;
    f.dst_port = dport;
    return net::build_tcp_packet(host_a, host_b, f, 0x18, 64);
  }
};

TEST(FpmBridgeNetfilter, FastPathEnforcesForwardChain) {
  BridgeRig rig;
  rig.cmd("sysctl -w net.bridge.bridge-nf-call-iptables=1");
  rig.cmd("iptables -A FORWARD -p tcp --dport 8080 -j DROP");

  ControllerOptions opts;
  opts.attach_bridge_ports = true;
  opts.attach_physical = false;
  Controller controller(rig.kernel, opts);
  controller.start();

  // The bridge FPM must carry the br_netfilter sub-config.
  const util::Json& graphs = controller.current_graphs();
  ASSERT_GT(graphs.size(), 0u);
  EXPECT_TRUE(graphs.at(0)
                  .at("nodes")
                  .at("bridge")
                  .at("conf")
                  .at("br_netfilter")
                  .as_bool());

  // Allowed port: forwarded on the fast path.
  kern::CycleTrace t1;
  auto ok = rig.kernel.rx(rig.p1, rig.a_to_b("192.168.0.10", 80), t1);
  EXPECT_TRUE(ok.fast_path);
  EXPECT_EQ(rig.tx_p2.size(), 1u);

  // Blocked port: dropped ON THE FAST PATH, not forwarded.
  kern::CycleTrace t2;
  auto blocked = rig.kernel.rx(rig.p1, rig.a_to_b("192.168.0.10", 8080), t2);
  EXPECT_TRUE(blocked.fast_path);
  EXPECT_EQ(blocked.drop, kern::Drop::kXdpDrop);
  EXPECT_EQ(rig.tx_p2.size(), 1u);
}

TEST(FpmBridgeNetfilter, FastSlowVerdictsIdentical) {
  BridgeRig fast_rig, slow_rig;
  for (BridgeRig* rig : {&fast_rig, &slow_rig}) {
    rig->cmd("sysctl -w net.bridge.bridge-nf-call-iptables=1");
    rig->cmd("iptables -A FORWARD -s 10.66.0.0/16 -j DROP");
    rig->cmd("iptables -A FORWARD -p tcp --dport 23 -j DROP");
  }
  ControllerOptions opts;
  opts.attach_bridge_ports = true;
  opts.attach_physical = false;
  Controller controller(fast_rig.kernel, opts);
  controller.start();

  struct Case {
    const char* src;
    std::uint16_t dport;
  } cases[] = {
      {"10.66.1.1", 80}, {"10.65.1.1", 80}, {"10.65.1.1", 23},
      {"10.66.255.1", 23}, {"192.168.0.10", 443},
  };
  for (const Case& c : cases) {
    kern::CycleTrace tf, ts;
    fast_rig.kernel.rx(fast_rig.p1, fast_rig.a_to_b(c.src, c.dport), tf);
    slow_rig.kernel.rx(slow_rig.p1, slow_rig.a_to_b(c.src, c.dport), ts);
    ASSERT_EQ(fast_rig.tx_p2.size(), slow_rig.tx_p2.size())
        << c.src << ":" << c.dport;
  }
  EXPECT_GT(fast_rig.kernel.counters().fast_path_packets, 0u);
}

TEST(FpmBridgeNetfilter, WithoutBrNfSysctlNoFilteringInBridge) {
  BridgeRig rig;
  rig.cmd("iptables -A FORWARD -p tcp --dport 8080 -j DROP");
  // bridge-nf-call-iptables NOT set: bridged traffic is not iptables
  // subject, on either path.
  ControllerOptions opts;
  opts.attach_bridge_ports = true;
  opts.attach_physical = false;
  Controller controller(rig.kernel, opts);
  controller.start();
  kern::CycleTrace t;
  auto summary = rig.kernel.rx(rig.p1, rig.a_to_b("10.0.0.1", 8080), t);
  EXPECT_TRUE(summary.fast_path);
  EXPECT_EQ(rig.tx_p2.size(), 1u);  // forwarded despite the DROP rule
}

TEST(FpmVlan, TaggedTrafficForwardedPerVlanFdb) {
  BridgeRig rig;
  rig.cmd("bridge vlan add dev p1 vid 100");
  rig.cmd("bridge vlan add dev p2 vid 100");
  // VLAN-scoped FDB entries.
  rig.kernel.bridge_by_name("br0")->fdb_learn(rig.host_a, 100, rig.p1,
                                              rig.kernel.now_ns());
  rig.kernel.bridge_by_name("br0")->fdb_learn(rig.host_b, 100, rig.p2,
                                              rig.kernel.now_ns());

  ControllerOptions opts;
  opts.attach_bridge_ports = true;
  opts.attach_physical = false;
  Controller controller(rig.kernel, opts);
  controller.start();

  net::Packet pkt = rig.a_to_b("192.168.0.10", 80);
  net::insert_vlan_tag(pkt, 100);
  kern::CycleTrace t;
  auto summary = rig.kernel.rx(rig.p1, std::move(pkt), t);
  EXPECT_TRUE(summary.fast_path);
  ASSERT_EQ(rig.tx_p2.size(), 1u);
  auto parsed = net::parse_packet(rig.tx_p2[0]);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->has_vlan);
  EXPECT_EQ(parsed->vlan_id, 100);

  // A VID not allowed on the egress port punts / is filtered, not forwarded.
  net::Packet bad = rig.a_to_b("192.168.0.10", 80);
  net::insert_vlan_tag(bad, 200);
  kern::CycleTrace t2;
  rig.kernel.rx(rig.p1, std::move(bad), t2);
  EXPECT_EQ(rig.tx_p2.size(), 1u);
}

TEST(FpmLocalPunt, TrafficToOwnAddressPuntsEarly) {
  linuxfp::testing::RouterDut dut;
  dut.add_prefixes(5);
  Controller controller(dut.kernel);
  controller.start();

  // Packet addressed to the router itself (eth0's address): slow path
  // (local delivery), even though a route would technically match.
  net::FlowKey f;
  f.src_ip = net::Ipv4Addr::parse("10.10.1.2").value();
  f.dst_ip = net::Ipv4Addr::parse("10.10.1.1").value();
  f.proto = net::kIpProtoUdp;
  f.src_port = 1;
  f.dst_port = 2;
  kern::CycleTrace t;
  auto summary = dut.kernel.rx(
      dut.eth0_ifindex(),
      net::build_udp_packet(dut.src_host_mac, dut.eth0_mac(), f, 64), t);
  EXPECT_FALSE(summary.fast_path);
  EXPECT_EQ(dut.kernel.counters().locally_delivered, 1u);
}

TEST(FpmStp, BlockedPortNotForwardedByFastPath) {
  BridgeRig rig;
  ControllerOptions opts;
  opts.attach_bridge_ports = true;
  opts.attach_physical = false;
  Controller controller(rig.kernel, opts);
  controller.start();

  // Force the egress port into blocking (as STP would).
  rig.kernel.bridge_by_name("br0")->port(rig.p2)->state =
      kern::StpState::kBlocking;
  kern::CycleTrace t;
  auto summary = rig.kernel.rx(rig.p1, rig.a_to_b("10.0.0.1", 80), t);
  // Fast path helper sees the port state and refuses; slow path agrees.
  EXPECT_TRUE(rig.tx_p2.empty());
  EXPECT_NE(summary.drop, kern::Drop::kNone);
}

TEST(FpmConntrackGate, SynthesizedGateVerifiesAndGates) {
  linuxfp::testing::RouterDut dut;
  dut.add_prefixes(1);
  dut.kernel.set_conntrack_enabled(true);

  util::Json graph = util::Json::object();
  graph["device"] = "eth0";
  graph["ifindex"] = dut.eth0_ifindex();
  graph["hook"] = "xdp";
  graph["dev_mac"] = dut.eth0_mac().to_string();
  util::Json ct = util::Json::object();
  ct["conf"] = util::Json::object();
  graph["nodes"]["conntrack"] = ct;
  util::Json rconf = util::Json::object();
  rconf["route_count"] = 1;
  rconf["local_addrs"] = util::Json::array();
  util::Json rnode = util::Json::object();
  rnode["conf"] = rconf;
  graph["nodes"]["router"] = rnode;

  Synthesizer synth;
  auto result = synth.synthesize(graph);
  ASSERT_TRUE(result.ok()) << result.error().message;

  ebpf::HelperRegistry helpers;
  ebpf::register_all_helpers(helpers, dut.kernel.cost());
  ebpf::Attachment att("ct", ebpf::HookType::kXdp, dut.kernel, helpers);
  auto id = att.load(result->programs[0]);
  ASSERT_TRUE(id.ok()) << id.error().message;
  ASSERT_TRUE(att.set_entry(id.value()).ok());
  ASSERT_TRUE(
      ebpf::attach_to_device(dut.kernel, "eth0", ebpf::HookType::kXdp, &att)
          .ok());

  auto tcp_packet = [&](std::uint16_t sport) {
    net::FlowKey f;
    f.src_ip = net::Ipv4Addr::parse("10.10.1.2").value();
    f.dst_ip = net::Ipv4Addr::parse("10.100.0.9").value();
    f.proto = net::kIpProtoTcp;
    f.src_port = sport;
    f.dst_port = 80;
    return net::build_tcp_packet(dut.src_host_mac, dut.eth0_mac(), f, 0x18,
                                 64);
  };

  kern::CycleTrace t1;
  auto first = dut.kernel.rx(dut.eth0_ifindex(), tcp_packet(1000), t1);
  EXPECT_FALSE(first.fast_path);  // NEW flow punts (scheduling = slow path)
  kern::CycleTrace t2;
  auto second = dut.kernel.rx(dut.eth0_ifindex(), tcp_packet(1000), t2);
  EXPECT_TRUE(second.fast_path);  // established: conntrack-affinity hit
}

TEST(FpmCustomSnippet, UnverifiableSnippetRejectedGracefully) {
  linuxfp::testing::RouterDut dut;
  dut.add_prefixes(2);
  Controller controller(dut.kernel);
  controller.start();

  controller.set_custom_snippet([](ebpf::ProgramBuilder& b) {
    b.ldx(ebpf::kR3, ebpf::kR7, 9999, ebpf::MemSize::kU64);  // unchecked
  });
  auto reaction = controller.run_once();
  EXPECT_EQ(reaction.programs, 0u);  // nothing deployed

  // The previously deployed fast path keeps serving traffic.
  kern::CycleTrace t;
  auto summary =
      dut.kernel.rx(dut.eth0_ifindex(), dut.packet_to_prefix(0), t);
  EXPECT_TRUE(summary.fast_path);
  EXPECT_EQ(dut.tx_eth1.size(), 1u);
}

}  // namespace
}  // namespace linuxfp::core
