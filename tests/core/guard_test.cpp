// Equivalence-guard state machine suite (DESIGN.md §13): canary shadow mode
// serving via the slow path until promotion, sampled shadow execution after
// promotion, injected divergence tripping the breaker into quarantine, the
// half-open re-probe cycle closing it again, and the interactions with
// config churn and deploy failures mid-canary.
#include <gtest/gtest.h>

#include "core/controller.h"
#include "core/guard.h"
#include "core/status.h"
#include "engine/rss.h"
#include "tests/kernel/test_topo.h"
#include "util/fault.h"

namespace linuxfp::core {
namespace {

using linuxfp::testing::RouterDut;

ControllerOptions guarded_options(std::uint32_t canary,
                                  std::uint32_t sample_every,
                                  std::uint32_t half_open = 2) {
  ControllerOptions opts;
  opts.guard.enabled = true;
  opts.guard.canary_packets = canary;
  opts.guard.sample_every = sample_every;
  opts.guard.half_open_packets = half_open;
  opts.guard.reprobe_base_ns = 1'000'000;  // 1 ms, keeps tests brisk
  opts.guard.reprobe_jitter = 0.0;
  return opts;
}

// One forwarded packet through the DUT; asserts it reached eth1 and reports
// whether the fast path settled it.
bool forward_one(RouterDut& dut, int prefix, std::uint16_t flow) {
  std::size_t before = dut.tx_eth1.size();
  kern::CycleTrace t;
  auto summary =
      dut.kernel.rx(dut.eth0_ifindex(), dut.packet_to_prefix(prefix, flow), t);
  EXPECT_EQ(summary.drop, kern::Drop::kNone);
  EXPECT_EQ(dut.tx_eth1.size(), before + 1);
  return summary.fast_path;
}

TEST(Guard, CanaryServesSlowPathThenPromotes) {
  RouterDut dut;
  dut.add_prefixes(4);
  Controller controller(dut.kernel, guarded_options(8, 0));
  controller.start();

  GuardUnit* unit =
      controller.guard()->unit("eth0", ebpf::HookType::kXdp);
  ASSERT_NE(unit, nullptr);
  EXPECT_EQ(unit->mode(), GuardMode::kShadow);

  // Every canary packet is served by the slow path (shadow verdicts are
  // computed on a copy and discarded) yet still forwarded correctly.
  for (int i = 0; i < 8; ++i) {
    EXPECT_FALSE(forward_one(dut, i % 4, static_cast<std::uint16_t>(i)));
  }
  EXPECT_EQ(unit->mode(), GuardMode::kActive);
  GuardUnitStats s = unit->stats();
  EXPECT_EQ(s.promotions, 1u);
  EXPECT_EQ(s.divergences, 0u);
  EXPECT_GE(s.compares, 8u);

  // Promoted with sampling disabled: the fast path serves everything.
  EXPECT_TRUE(forward_one(dut, 0, 99));

  HealthStatus h = controller.health();
  EXPECT_EQ(h.guard_promotions, 1u);
  EXPECT_EQ(h.guard_divergences, 0u);
  EXPECT_FALSE(h.degraded);
}

TEST(Guard, SampledShadowKeepsComparingAfterPromotion) {
  RouterDut dut;
  dut.add_prefixes(4);
  Controller controller(dut.kernel, guarded_options(1, 2));
  controller.start();
  GuardUnit* unit = controller.guard()->unit("eth0", ebpf::HookType::kXdp);
  ASSERT_NE(unit, nullptr);

  forward_one(dut, 0, 0);  // canary length 1: first clean compare promotes
  ASSERT_EQ(unit->mode(), GuardMode::kActive);

  std::uint64_t fast = 0;
  for (int i = 0; i < 64; ++i) {
    if (forward_one(dut, i % 4, static_cast<std::uint16_t>(i))) ++fast;
  }
  GuardUnitStats s = unit->stats();
  // With K=2 roughly half the flows stay on the (compared) slow path and the
  // rest run the fast path untouched; both populations must be non-empty.
  EXPECT_GT(s.sampled, 0u);
  EXPECT_GT(fast, 0u);
  EXPECT_EQ(s.divergences, 0u);
  EXPECT_EQ(unit->mode(), GuardMode::kActive);
}

TEST(Guard, SamplerIsDeterministicAndUncorrelatedWithReta) {
  // ~1-in-K rate over a hash population, deterministic per hash.
  std::uint64_t sampled = 0;
  for (std::uint32_t h = 0; h < 100'000; ++h) {
    bool a = EquivalenceGuard::sampled_hash(h, 64);
    bool b = EquivalenceGuard::sampled_hash(h, 64);
    EXPECT_EQ(a, b);
    if (a) ++sampled;
  }
  EXPECT_GT(sampled, 1000u);  // 100k/64 ~ 1563
  EXPECT_LT(sampled, 2200u);
  // Not a function of the RETA index bits: hashes sharing low 7 bits must
  // not share the sampling decision.
  bool all_same = true;
  bool first = EquivalenceGuard::sampled_hash(5, 64);
  for (std::uint32_t i = 1; i < 64; ++i) {
    if (EquivalenceGuard::sampled_hash(5 + (i << 7), 64) != first) {
      all_same = false;
      break;
    }
  }
  EXPECT_FALSE(all_same);
}

TEST(Guard, InjectedDivergenceQuarantinesThenHalfOpenRecovers) {
  util::FaultScope faults(201);
  RouterDut dut;
  dut.add_prefixes(4);
  Controller controller(dut.kernel, guarded_options(2, 1));
  controller.start();
  GuardUnit* unit = controller.guard()->unit("eth0", ebpf::HookType::kXdp);
  ASSERT_NE(unit, nullptr);

  forward_one(dut, 0, 0);
  forward_one(dut, 1, 1);
  ASSERT_EQ(unit->mode(), GuardMode::kActive);

  ebpf::Attachment* att =
      controller.deployer().attachment("eth0", ebpf::HookType::kXdp);
  ASSERT_NE(att, nullptr);
  const std::uint64_t epoch_before = att->flow_epoch();

  // A synthesis bug ships: every recorded fast-path expectation is corrupted
  // (guard.verdict models the program misforwarding). sample_every=1 means
  // the very next packet is compared — and, crucially, it is still forwarded
  // correctly because shadow execution serves via the slow path.
  faults->fail_always(util::kFaultGuardVerdict);
  EXPECT_FALSE(forward_one(dut, 2, 2));
  EXPECT_EQ(unit->mode(), GuardMode::kQuarantined);
  EXPECT_EQ(unit->trip_reason(), TripReason::kDivergence);
  EXPECT_EQ(unit->stats().divergences, 1u);
  faults->clear(util::kFaultGuardVerdict);

  // The controller completes the quarantine: PASS fallback swapped in
  // (bumping the flow epoch so cached verdicts flush), health degraded with
  // a monotonic timestamp.
  controller.run_once();
  EXPECT_GT(att->flow_epoch(), epoch_before);
  EXPECT_EQ(att->programs()[att->active_prog_id()].name, "lfp_pass");
  HealthStatus h = controller.health();
  EXPECT_TRUE(h.degraded);
  EXPECT_EQ(h.guard_quarantines, 1u);
  EXPECT_EQ(h.last_degraded_ns, dut.kernel.now_ns());
  EXPECT_GE(h.failures_by_code.at("guard.quarantine"), 1u);

  // Quarantined behaviour is the exact slow path: traffic keeps flowing,
  // nothing is compared, no further divergence is possible.
  for (int i = 0; i < 16; ++i) {
    EXPECT_FALSE(forward_one(dut, i % 4, static_cast<std::uint16_t>(i)));
  }
  EXPECT_EQ(unit->stats().divergences, 1u);
  EXPECT_GT(unit->stats().quarantine_passes, 0u);

  // Backoff elapses -> re-probe redeploy -> half-open shadow probing.
  std::uint64_t reprobe = controller.guard()->next_reprobe_ns();
  ASSERT_GT(reprobe, dut.kernel.now_ns());
  dut.kernel.set_now_ns(reprobe);
  controller.run_once();
  EXPECT_EQ(unit->mode(), GuardMode::kHalfOpen);
  EXPECT_EQ(unit->stats().half_open_probes, 1u);

  // Clean probes close the breaker; the controller clears degradation with
  // a recovery timestamp.
  EXPECT_FALSE(forward_one(dut, 0, 7));
  EXPECT_FALSE(forward_one(dut, 1, 8));
  EXPECT_EQ(unit->mode(), GuardMode::kActive);
  dut.kernel.set_now_ns(dut.kernel.now_ns() + 1'000'000);
  controller.run_once();
  h = controller.health();
  EXPECT_FALSE(h.degraded);
  EXPECT_EQ(h.guard_recoveries, 1u);
  EXPECT_EQ(h.last_recovered_ns, dut.kernel.now_ns());
  EXPECT_GE(h.last_recovered_ns, h.last_degraded_ns);

  // Fully healed: the fast path serves again (sampled flows excepted).
  GuardUnitStats s = unit->stats();
  EXPECT_EQ(s.closes, 1u);
  EXPECT_EQ(s.quarantines, 1u);
}

TEST(Guard, ConfigChurnMidCanaryRestartsShadow) {
  RouterDut dut;
  dut.add_prefixes(4);
  Controller controller(dut.kernel, guarded_options(8, 0));
  controller.start();
  GuardUnit* unit = controller.guard()->unit("eth0", ebpf::HookType::kXdp);
  ASSERT_NE(unit, nullptr);

  for (int i = 0; i < 3; ++i) forward_one(dut, i % 4, 1);
  ASSERT_EQ(unit->mode(), GuardMode::kShadow);

  // Config churn mid-canary: the redeploy replaces the program under test,
  // so the canary restarts from zero — 3 old compares must not count.
  dut.add_prefixes(5);
  controller.run_once();
  EXPECT_EQ(unit->mode(), GuardMode::kShadow);
  for (int i = 0; i < 7; ++i) forward_one(dut, i % 4, 2);
  EXPECT_EQ(unit->mode(), GuardMode::kShadow);  // 7 < 8: not yet
  forward_one(dut, 0, 3);
  EXPECT_EQ(unit->mode(), GuardMode::kActive);

  // Churn after promotion demotes back to shadow (re-canary the new build).
  dut.add_prefixes(6);
  controller.run_once();
  EXPECT_EQ(unit->mode(), GuardMode::kShadow);
}

TEST(Guard, DeployFailureMidCanaryKeepsSlowPathAndRecanaries) {
  util::FaultScope faults(202);
  RouterDut dut;
  dut.add_prefixes(2);
  Controller controller(dut.kernel, guarded_options(4, 0));
  controller.start();
  GuardUnit* unit = controller.guard()->unit("eth0", ebpf::HookType::kXdp);
  ASSERT_NE(unit, nullptr);
  forward_one(dut, 0, 0);
  forward_one(dut, 1, 1);
  ASSERT_EQ(unit->mode(), GuardMode::kShadow);

  // Rollback mid-canary: the redeploy fails, the device degrades to PASS and
  // the half-finished canary is abandoned (the program it was judging is
  // gone). Traffic keeps flowing on the slow path throughout.
  faults->fail_always(util::kFaultLoaderLoad);
  dut.add_prefixes(3);
  auto reaction = controller.run_once();
  EXPECT_TRUE(reaction.deploy_failed);
  EXPECT_EQ(unit->mode(), GuardMode::kShadow);
  EXPECT_FALSE(forward_one(dut, 0, 2));
  HealthStatus h = controller.health();
  EXPECT_TRUE(h.degraded);
  EXPECT_EQ(h.last_degraded_ns, dut.kernel.now_ns());

  // Retry succeeds: a fresh canary runs to completion.
  faults->clear(util::kFaultLoaderLoad);
  ASSERT_NE(h.next_retry_ns, 0u);
  dut.kernel.set_now_ns(h.next_retry_ns);
  controller.run_once();
  EXPECT_EQ(unit->mode(), GuardMode::kShadow);
  for (int i = 0; i < 4; ++i) forward_one(dut, i % 2, 5);
  EXPECT_EQ(unit->mode(), GuardMode::kActive);
  EXPECT_FALSE(controller.health().degraded);
}

TEST(Guard, ForcedBreakerTripDuringRedeployQuarantinesAndRecovers) {
  util::FaultScope faults(203);
  RouterDut dut;
  dut.add_prefixes(2);
  Controller controller(dut.kernel, guarded_options(1, 0));
  controller.start();
  GuardUnit* unit = controller.guard()->unit("eth0", ebpf::HookType::kXdp);
  ASSERT_NE(unit, nullptr);
  forward_one(dut, 0, 0);
  ASSERT_EQ(unit->mode(), GuardMode::kActive);

  // guard.breaker fires during the same run_once that is also redeploying a
  // config change — the trip must win (the fresh program enters half-open
  // probing, not trusted-active).
  faults->fail_nth(util::kFaultGuardBreaker, 1);
  dut.add_prefixes(3);
  controller.run_once();
  // The breaker tripped eth0's unit (forced) and the quarantine completed in
  // the same maintenance pass; the subsequent redeploy of the changed config
  // re-entered it as half-open.
  EXPECT_EQ(unit->trip_reason(), TripReason::kForced);
  EXPECT_TRUE(unit->mode() == GuardMode::kQuarantined ||
              unit->mode() == GuardMode::kHalfOpen);
  EXPECT_TRUE(controller.health().degraded);
  EXPECT_EQ(controller.health().guard_quarantines, 1u);

  if (unit->mode() == GuardMode::kQuarantined) {
    std::uint64_t reprobe = controller.guard()->next_reprobe_ns();
    ASSERT_NE(reprobe, 0u);
    dut.kernel.set_now_ns(std::max(reprobe, dut.kernel.now_ns() + 1));
    controller.run_once();
    ASSERT_EQ(unit->mode(), GuardMode::kHalfOpen);
  }
  forward_one(dut, 0, 1);
  forward_one(dut, 1, 2);
  EXPECT_EQ(unit->mode(), GuardMode::kActive);
  dut.kernel.set_now_ns(dut.kernel.now_ns() + 1'000'000);
  controller.run_once();
  EXPECT_FALSE(controller.health().degraded);
  EXPECT_EQ(controller.health().guard_recoveries, 1u);
}

TEST(Guard, StatusReportsGuardSection) {
  RouterDut dut;
  dut.add_prefixes(2);
  Controller controller(dut.kernel, guarded_options(1, 4));
  controller.start();
  forward_one(dut, 0, 0);

  util::Json j = status_json(controller);
  ASSERT_TRUE(j.object_items().contains("guard"));
  const util::Json& g = j.at("guard");
  EXPECT_GE(g.at("units").size(), 2u);  // eth0 + eth1
  EXPECT_GE(g.at("compares").as_int(), 1);
  const util::Json& h = j.at("health");
  EXPECT_TRUE(h.object_items().contains("last_degraded_ns"));
  EXPECT_TRUE(h.object_items().contains("last_recovered_ns"));

  std::string prom = prometheus_status(controller);
  EXPECT_NE(prom.find("linuxfp_guard_compares"), std::string::npos);
  EXPECT_NE(prom.find("linuxfp_controller_last_degraded_ns"),
            std::string::npos);
}

}  // namespace
}  // namespace linuxfp::core
