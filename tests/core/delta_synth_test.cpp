// Delta synthesis (DESIGN.md §17): on a configuration event the controller
// diffs each FPM graph against the signature recorded at its last deploy and
// re-emits only the changed ones. These tests pin the equivalence contract —
// a delta controller and a from-scratch controller driven through identical
// event sequences must converge to identical deployed programs — plus the
// work accounting (unchanged graphs are reused, not re-synthesized), the
// withdrawal rule, and the failed-device retry path.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/controller.h"
#include "ebpf/loader.h"
#include "kernel/commands.h"
#include "kernel/kernel.h"
#include "util/fault.h"

namespace linuxfp::core {
namespace {

// Mixed DUT: routed physical uplinks (router/filter graphs) plus a bridge
// with pod-facing veth ports (bridge-port graphs) — the container-host shape
// where most events touch a small fraction of the graphs.
struct MixedDut {
  kern::Kernel kernel{"host"};
  int pods = 0;

  MixedDut() {
    for (const char* d : {"eth0", "eth1", "eth2"}) {
      kernel.add_phys_dev(d).set_phys_tx([](net::Packet&&) {});
      run(std::string("ip link set ") + d + " up");
    }
    run("ip addr add 10.10.1.1/24 dev eth0");
    run("ip addr add 10.10.2.1/24 dev eth1");
    run("ip addr add 10.10.3.1/24 dev eth2");
    run("sysctl -w net.ipv4.ip_forward=1");
    run("ip neigh add 10.10.2.2 lladdr " + net::MacAddr::from_id(0x77).to_string() +
        " dev eth1 nud permanent");
    // Routing must be active (ip_forward + at least one route) for the
    // uplinks to grow router graphs.
    run("ip route add 10.100.0.0/24 via 10.10.2.2 dev eth1");
    run("ip route add 10.101.0.0/24 via 10.10.2.2 dev eth1");
    run("ip link add br0 type bridge");
    run("ip link set br0 up");
  }

  void run(const std::string& cmd) {
    auto st = kern::run_command(kernel, cmd);
    ASSERT_TRUE(st.ok()) << cmd << " — " << st.error().message;
  }

  void add_pod() {
    std::string port = "pod" + std::to_string(pods);
    run("ip link add " + port + " type veth peer name ns" +
        std::to_string(pods));
    run("ip link set " + port + " up");
    run("ip link set " + port + " master br0");
    ++pods;
  }

  void del_pod() {
    if (pods == 0) return;
    --pods;
    run("ip link del pod" + std::to_string(pods));
  }

  std::vector<std::string> device_names() const {
    std::vector<std::string> names{"eth0", "eth1", "eth2"};
    for (int i = 0; i < pods; ++i) names.push_back("pod" + std::to_string(i));
    return names;
  }
};

ControllerOptions mixed_options(bool delta) {
  ControllerOptions opts;
  opts.attach_bridge_ports = true;
  opts.delta_synthesis = delta;
  return opts;
}

// The deployed-FPM-set equivalence check: for every device and hook, both
// controllers expose the same attachment presence and a bit-identical active
// program (name + instruction stream).
void compare_deployments(Controller& a, Controller& b, MixedDut& dut,
                         const char* where) {
  ASSERT_EQ(a.deployer().attachment_count(), b.deployer().attachment_count())
      << where;
  for (const std::string& dev : dut.device_names()) {
    for (ebpf::HookType hook :
         {ebpf::HookType::kXdp, ebpf::HookType::kTcIngress}) {
      ebpf::Attachment* aa = a.deployer().attachment(dev, hook);
      ebpf::Attachment* ab = b.deployer().attachment(dev, hook);
      ASSERT_EQ(aa == nullptr, ab == nullptr) << where << " " << dev;
      if (!aa) continue;
      const ebpf::Program& pa = aa->programs()[aa->active_prog_id()];
      const ebpf::Program& pb = ab->programs()[ab->active_prog_id()];
      EXPECT_EQ(pa.name, pb.name) << where << " " << dev;
      ASSERT_EQ(pa.insns.size(), pb.insns.size()) << where << " " << dev;
      for (std::size_t i = 0; i < pa.insns.size(); ++i) {
        const ebpf::Insn& x = pa.insns[i];
        const ebpf::Insn& y = pb.insns[i];
        ASSERT_TRUE(x.op == y.op && x.dst == y.dst && x.src == y.src &&
                    x.use_imm == y.use_imm && x.off == y.off &&
                    x.imm == y.imm && x.size == y.size)
            << where << " " << dev << " insn " << i;
      }
    }
  }
}

TEST(DeltaSynth, ConvergesWithFromScratchUnderChurn) {
  MixedDut delta_dut, full_dut;
  Controller delta_ctl(delta_dut.kernel, mixed_options(true));
  Controller full_ctl(full_dut.kernel, mixed_options(false));
  delta_ctl.start();
  full_ctl.start();
  compare_deployments(delta_ctl, full_ctl, delta_dut, "startup");

  auto both = [&](const std::string& cmd) {
    delta_dut.run(cmd);
    full_dut.run(cmd);
  };
  auto react = [&] {
    delta_ctl.run_once();
    full_ctl.run_once();
  };

  // An event storm touching different slices of the graph set.
  for (int i = 0; i < 3; ++i) {
    delta_dut.add_pod();
    full_dut.add_pod();
    react();
    compare_deployments(delta_ctl, full_ctl, delta_dut, "pod add");
  }
  for (int i = 0; i < 12; ++i) {
    both("ip route add 10." + std::to_string(120 + i) +
         ".0.0/24 via 10.10.2.2 dev eth1");
    react();
  }
  compare_deployments(delta_ctl, full_ctl, delta_dut, "routes");
  both("iptables -A FORWARD -s 10.66.0.1 -j DROP");
  react();
  both("ip route del 10.120.0.0/24");
  react();
  both("ip link set eth2 down");
  react();
  compare_deployments(delta_ctl, full_ctl, delta_dut, "link down");
  both("ip link set eth2 up");
  react();
  delta_dut.del_pod();
  full_dut.del_pod();
  react();
  compare_deployments(delta_ctl, full_ctl, delta_dut, "final");

  // The whole point: the delta controller synthesized a fraction of the
  // graph-emissions the from-scratch controller burned on the same events.
  EXPECT_EQ(delta_ctl.resynth_count(), full_ctl.resynth_count());
  EXPECT_LT(delta_ctl.graph_resynth_count() * 2,
            full_ctl.graph_resynth_count());
}

TEST(DeltaSynth, ReusesUnchangedGraphs) {
  MixedDut dut;
  Controller ctl(dut.kernel, mixed_options(true));
  ctl.start();
  for (int i = 0; i < 4; ++i) dut.add_pod();
  Reaction r = ctl.run_once();
  ASSERT_TRUE(r.changed);

  // A route event touches only the routed uplinks; the four pod ports and
  // the untouched uplink graphs are reused verbatim.
  dut.run("ip route add 10.200.0.0/24 via 10.10.2.2 dev eth1");
  r = ctl.run_once();
  ASSERT_TRUE(r.changed);
  EXPECT_GT(r.reused_graphs, 0u);
  EXPECT_LT(r.synthesized_graphs, r.graphs);
  EXPECT_EQ(r.synthesized_graphs + r.reused_graphs, r.graphs);

  // A pod attach synthesizes exactly the new port's graph.
  dut.add_pod();
  r = ctl.run_once();
  ASSERT_TRUE(r.changed);
  EXPECT_EQ(r.synthesized_graphs, 1u);
  EXPECT_EQ(r.reused_graphs, r.graphs - 1);

  // A no-op config event (dynamic neighbour) synthesizes nothing at all.
  dut.run("ip neigh add 10.10.2.9 lladdr 02:00:00:00:00:09 dev eth1");
  r = ctl.run_once();
  EXPECT_EQ(r.synthesized_graphs, 0u);
}

TEST(DeltaSynth, WithdrawalOnlyTouchesDepartingDevice) {
  MixedDut dut;
  Controller ctl(dut.kernel, mixed_options(true));
  ctl.start();
  for (int i = 0; i < 3; ++i) dut.add_pod();
  ctl.run_once();
  std::uint64_t before = ctl.graph_resynth_count();

  // Pod teardown: the departing port's attachment is withdrawn; every other
  // graph is unchanged, so nothing is re-synthesized.
  dut.del_pod();
  Reaction r = ctl.run_once();
  ASSERT_TRUE(r.changed);
  EXPECT_EQ(r.synthesized_graphs, 0u);
  EXPECT_GT(r.reused_graphs, 0u);
  EXPECT_EQ(ctl.graph_resynth_count(), before);

  // The surviving pods keep serving; re-adding a pod synthesizes one graph.
  dut.add_pod();
  r = ctl.run_once();
  EXPECT_EQ(r.synthesized_graphs, 1u);
}

TEST(DeltaSynth, FailedDeviceIsResynthesizedDespiteUnchangedGraph) {
  MixedDut dut;
  Controller ctl(dut.kernel, mixed_options(true));
  {
    // Fault the first deploy wave: at least one device degrades, its
    // recorded graph signature is dropped, and consecutive failures arm the
    // retry timer.
    util::FaultScope faults(0x5eed);
    ASSERT_TRUE(faults->install_schedule("deployer.attach:nth=2").ok());
    Reaction r = ctl.start();
    ASSERT_TRUE(r.deploy_failed);
    ASSERT_TRUE(ctl.health().degraded);
  }

  // A config event NOT touching the failed device's graph arrives before the
  // retry timer: the delta diff must still re-synthesize the failed device
  // (its deploy never landed, so its recorded signature was dropped)
  // alongside the genuinely new graph — two emissions, not one.
  dut.add_pod();
  Reaction r = ctl.run_once();
  ASSERT_TRUE(r.changed);
  EXPECT_FALSE(r.deploy_failed);
  EXPECT_GE(r.synthesized_graphs, 2u);
  EXPECT_FALSE(ctl.health().degraded);

  // Steady state afterwards: delta accounting is back to normal.
  dut.run("ip route add 10.211.0.0/24 via 10.10.2.2 dev eth1");
  r = ctl.run_once();
  EXPECT_LT(r.synthesized_graphs, r.graphs);
}

}  // namespace
}  // namespace linuxfp::core
