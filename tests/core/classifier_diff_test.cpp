// End-to-end classifier differential (DESIGN.md §17): twin gateway testbeds —
// identical except one compiles its rule tables into the tuple-space
// classifier — must produce identical verdicts and identical per-rule hit
// counters for every packet, under both execution engines, while the compiled
// twin spends measurably fewer cycles. A second suite is the generation-
// coherence regression: a flowcache-cached verdict must die the moment a rule
// mutation triggers a classifier rebuild mid-stream.
#include <gtest/gtest.h>

#include <string>

#include "core/controller.h"
#include "kernel/nf_classifier.h"
#include "sim/testbed.h"

namespace linuxfp::core {
namespace {

sim::ScenarioConfig gateway_config(ebpf::ExecEngine engine, bool classifier) {
  sim::ScenarioConfig cfg;
  cfg.filter_rules = 300;
  cfg.accel = sim::Accel::kLinuxFpXdp;
  cfg.exec_engine = engine;
  cfg.rule_classifier = classifier;
  return cfg;
}

void compare_rule_hits(kern::Kernel& a, kern::Kernel& b, const char* where) {
  auto da = a.netfilter().dump();
  auto db = b.netfilter().dump();
  ASSERT_EQ(da.size(), db.size()) << where;
  for (std::size_t c = 0; c < da.size(); ++c) {
    ASSERT_EQ(da[c]->name, db[c]->name) << where;
    ASSERT_EQ(da[c]->rules.size(), db[c]->rules.size()) << where;
    for (std::size_t r = 0; r < da[c]->rules.size(); ++r) {
      EXPECT_EQ(da[c]->rules[r].hits, db[c]->rules[r].hits)
          << where << " chain " << da[c]->name << " rule " << r;
      EXPECT_EQ(da[c]->rules[r].hit_bytes, db[c]->rules[r].hit_bytes)
          << where << " chain " << da[c]->name << " rule " << r;
    }
  }
}

class ClassifierDiff : public ::testing::TestWithParam<ebpf::ExecEngine> {};

TEST_P(ClassifierDiff, GatewayVerdictsAndHitCountersIdentical) {
  sim::LinuxTestbed lin(gateway_config(GetParam(), false));
  sim::LinuxTestbed clf(gateway_config(GetParam(), true));
  ASSERT_TRUE(clf.kernel().netfilter().classifier_enabled());
  ASSERT_FALSE(lin.kernel().netfilter().classifier_enabled());

  std::uint64_t lin_cycles = 0;
  std::uint64_t clf_cycles = 0;
  for (int i = 0; i < 400; ++i) {
    sim::ProcessOutcome a, b;
    if (i % 3 == 2) {
      // Every third packet sources from a blacklisted address, walking the
      // whole rule window so deep rules accrue hits.
      int entry = (i / 3) % 300;
      a = lin.process(lin.blacklisted_packet(entry, 7));
      b = clf.process(clf.blacklisted_packet(entry, 7));
      EXPECT_TRUE(a.dropped_by_policy) << "pkt " << i;
    } else {
      a = lin.process(lin.forward_packet(i % 50, static_cast<std::uint16_t>(i % 16)));
      b = clf.process(clf.forward_packet(i % 50, static_cast<std::uint16_t>(i % 16)));
      EXPECT_TRUE(a.forwarded) << "pkt " << i;
    }
    ASSERT_EQ(a.forwarded, b.forwarded) << "pkt " << i;
    ASSERT_EQ(a.dropped_by_policy, b.dropped_by_policy) << "pkt " << i;
    ASSERT_EQ(a.fast_path, b.fast_path) << "pkt " << i;
    lin_cycles += a.cycles;
    clf_cycles += b.cycles;
  }
  compare_rule_hits(lin.kernel(), clf.kernel(), "gateway");
  // The compiled index stayed current throughout and actually paid off:
  // at 300 rules the scan is a large share of total per-packet cycles
  // (fib/redirect/driver stages bound the end-to-end win; the ruleset-scale
  // bench measures the >=10x regime at 10k rules).
  EXPECT_TRUE(clf.kernel().netfilter().classifier()->ready(
      clf.kernel().netfilter().generation()));
  EXPECT_LT(clf_cycles * 4, lin_cycles * 3);
}

TEST_P(ClassifierDiff, UserChainJumpsStayIdentical) {
  sim::ScenarioConfig base = gateway_config(GetParam(), false);
  base.filter_rules = 0;
  sim::ScenarioConfig compiled = base;
  compiled.rule_classifier = true;
  sim::LinuxTestbed lin(base);
  sim::LinuxTestbed clf(compiled);
  for (sim::LinuxTestbed* tb : {&lin, &clf}) {
    tb->run("iptables -N GUESTS");
    tb->run("iptables -A FORWARD -s 10.10.1.0/24 -j GUESTS");
    for (int i = 0; i < 40; ++i) {
      tb->run("iptables -A GUESTS -d 10." + std::to_string(100 + i) +
              ".0.0/24 -p udp --dport 9 -j DROP");
    }
    tb->run("iptables -A GUESTS -p udp --dport 7 -j ACCEPT");
    tb->run("iptables -A FORWARD -p udp -j DROP");
  }
  for (int i = 0; i < 200; ++i) {
    sim::ProcessOutcome a =
        lin.process(lin.forward_packet(i % 50, static_cast<std::uint16_t>(i)));
    sim::ProcessOutcome b =
        clf.process(clf.forward_packet(i % 50, static_cast<std::uint16_t>(i)));
    ASSERT_EQ(a.forwarded, b.forwarded) << "pkt " << i;
    ASSERT_EQ(a.dropped_by_policy, b.dropped_by_policy) << "pkt " << i;
    EXPECT_TRUE(a.forwarded) << "pkt " << i;  // dport 7 traffic is whitelisted
  }
  compare_rule_hits(lin.kernel(), clf.kernel(), "user-chains");
}

TEST_P(ClassifierDiff, CachedVerdictDiesAcrossClassifierRebuild) {
  // Flow cache + classifier together: a memoized ACCEPT verdict recorded
  // against the compiled index must be invalidated by the generation-vector
  // check when a rule mutation rebuilds the classifier mid-stream — the very
  // next packet of the cached flow must hit the new DROP rule.
  sim::ScenarioConfig cfg = gateway_config(GetParam(), true);
  cfg.filter_rules = 50;
  cfg.flow_cache = true;
  sim::LinuxTestbed tb(cfg);

  // Stream one flow until its verdict is demonstrably served from the cache.
  for (int i = 0; i < 32; ++i) {
    sim::ProcessOutcome out = tb.process(tb.forward_packet(3, 11));
    ASSERT_TRUE(out.forwarded) << "warmup pkt " << i;
  }
  engine::FlowCacheStats warm = tb.controller()->deployer().flow_cache_stats();
  ASSERT_GT(warm.hits, 0u);

  // Head-insert a DROP matching the cached flow's source: insert_rule takes
  // the chain-rebuild path in the classifier, and the netfilter generation
  // bump must ripple through the flowcache generation vector.
  std::uint64_t gen_before = tb.kernel().netfilter().generation();
  tb.run("iptables -I FORWARD 1 -s 10.10.1.2 -j DROP");
  EXPECT_GT(tb.kernel().netfilter().generation(), gen_before);
  ASSERT_TRUE(tb.kernel().netfilter().classifier()->ready(
      tb.kernel().netfilter().generation()));

  sim::ProcessOutcome out = tb.process(tb.forward_packet(3, 11));
  EXPECT_FALSE(out.forwarded);
  EXPECT_TRUE(out.dropped_by_policy);
  engine::FlowCacheStats after = tb.controller()->deployer().flow_cache_stats();
  EXPECT_GT(after.invalidations + after.replay_mismatch, warm.invalidations +
                                                             warm.replay_mismatch);
}

INSTANTIATE_TEST_SUITE_P(
    Engines, ClassifierDiff,
    ::testing::Values(ebpf::ExecEngine::kInterpreter, ebpf::ExecEngine::kJit),
    [](const ::testing::TestParamInfo<ebpf::ExecEngine>& info) {
      return std::string(info.param == ebpf::ExecEngine::kJit ? "jit"
                                                              : "interp");
    });

}  // namespace
}  // namespace linuxfp::core
