// The observability acceptance criteria of the datapath layer: status_json
// must expose per-FPM and per-stage counters from the kernel's metrics
// registry, a traced packet must yield an ordered JSON journey through both
// the fast and slow path, and the Prometheus exposition must carry both
// datapath and controller series.
#include <gtest/gtest.h>

#include <cstring>

#include "core/controller.h"
#include "core/status.h"
#include "tests/kernel/test_topo.h"
#include "util/metrics.h"

namespace linuxfp::core {
namespace {

using linuxfp::testing::RouterDut;

TEST(Observability, StatusJsonExposesStageAndFpmCounters) {
  RouterDut dut;
  dut.add_prefixes(10);
  Controller controller(dut.kernel);
  controller.start();

  const int kPackets = 50;
  for (int i = 0; i < kPackets; ++i) {
    kern::CycleTrace t;
    dut.kernel.rx(dut.eth0_ifindex(),
                  dut.packet_to_prefix(i % 10, static_cast<std::uint16_t>(i)),
                  t);
  }

  util::Json st = status_json(controller);
  const util::Json& counters = st.at("metrics").at("counters");

  // Per-FPM: the router FPM deployed at least once (eth0 + eth1 graphs).
  EXPECT_GE(counters.at("fpm.router.deployed").as_int(), 1);

  // Per-stage: every packet entered through driver_rx; the accelerated ones
  // ran the XDP program stage.
  EXPECT_GE(counters.at("slowpath.driver_rx.calls").as_int(), kPackets);
  EXPECT_GT(counters.at("slowpath.driver_rx.cycles").as_int(), 0);
  EXPECT_GT(counters.at("slowpath.xdp_prog.calls").as_int(), 0);

  // Per-attachment fast-path counters and per-helper call counts.
  EXPECT_GT(counters.at("fastpath.lfp@eth0.xdp.runs").as_int(), 0);
  EXPECT_GT(counters.at("fastpath.lfp@eth0.xdp.redirect").as_int(), 0);
  EXPECT_GT(counters.at("ebpf.helper.fib_lookup.calls").as_int(), 0);

  // FIB activity flows through the (metrics-carrying) FibResult depth.
  EXPECT_GT(counters.at("fib.lookups").as_int(), 0);
  EXPECT_GT(counters.at("fib.depth_total").as_int(), 0);

  // The datapath section mirrors the kernel counters.
  const util::Json& datapath = st.at("datapath");
  EXPECT_GT(datapath.at("fast_path_packets").as_int(), 0);
  EXPECT_EQ(datapath.at("forwarded").as_int(),
            static_cast<std::int64_t>(dut.kernel.counters().forwarded));
}

TEST(Observability, TracedPacketIsOrderedThroughFastAndSlowPath) {
  RouterDut dut;
  dut.add_prefixes(5);
  Controller controller(dut.kernel);
  controller.start();

  util::TraceRing ring(4);
  dut.kernel.set_trace_ring(&ring);

  // Fast path: routed prefix, XDP redirects.
  {
    kern::CycleTrace t;
    dut.kernel.rx(dut.eth0_ifindex(), dut.packet_to_prefix(1, 7), t);
  }
  ASSERT_EQ(ring.size(), 1u);
  {
    const util::PacketTrace& tr = ring.latest();
    EXPECT_TRUE(tr.fast_path);
    EXPECT_EQ(tr.verdict, "ok");
    EXPECT_EQ(tr.device, "eth0");
    EXPECT_GT(tr.total_cycles, 0u);
    ASSERT_GE(tr.events.size(), 3u);
    // Ordered: ingress stages first, then the eBPF program's events, then
    // the final verdict event.
    EXPECT_STREQ(tr.events.front().layer, "slow");
    EXPECT_STREQ(tr.events.front().stage, "driver_rx");
    EXPECT_STREQ(tr.events.back().layer, "verdict");
    EXPECT_STREQ(tr.events.back().stage, "ok");
    std::size_t first_ebpf = tr.events.size(), last_ebpf = 0;
    bool saw_redirect = false;
    for (std::size_t i = 0; i < tr.events.size(); ++i) {
      if (std::strcmp(tr.events[i].layer, "ebpf") == 0) {
        first_ebpf = std::min(first_ebpf, i);
        last_ebpf = i;
        if (std::strcmp(tr.events[i].stage, "redirect") == 0) {
          saw_redirect = true;
        }
      }
    }
    ASSERT_LT(first_ebpf, tr.events.size()) << "no eBPF events traced";
    EXPECT_GT(first_ebpf, 0u);                      // after driver_rx
    EXPECT_LT(last_ebpf, tr.events.size() - 1u);    // before the verdict
    EXPECT_TRUE(saw_redirect);
    // JSON form carries the same ordering.
    util::Json j = tr.to_json();
    EXPECT_EQ(j.at("events").at(0).at("stage").as_string(), "driver_rx");
    EXPECT_EQ(j.at("events").at(j.at("events").size() - 1)
                  .at("layer").as_string(),
              "verdict");
  }

  // Slow path: no installed route — XDP passes, the kernel stack walks
  // ip_rcv/fib_lookup and drops with no_route.
  {
    kern::CycleTrace t;
    dut.kernel.rx(dut.eth0_ifindex(), dut.packet_to_prefix(100, 7), t);
  }
  ASSERT_EQ(ring.size(), 2u);
  {
    const util::PacketTrace& tr = ring.latest();
    EXPECT_FALSE(tr.fast_path);
    EXPECT_EQ(tr.verdict, "no_route");
    bool saw_ip_rcv = false, saw_pass = false;
    for (const util::TraceEvent& ev : tr.events) {
      if (std::strcmp(ev.stage, "ip_rcv") == 0) saw_ip_rcv = true;
      if (std::strcmp(ev.layer, "ebpf") == 0 && ev.detail == "pass") {
        saw_pass = true;
      }
    }
    EXPECT_TRUE(saw_ip_rcv);
    EXPECT_TRUE(saw_pass);
    EXPECT_STREQ(tr.events.back().layer, "verdict");
    EXPECT_STREQ(tr.events.back().stage, "no_route");
  }

  dut.kernel.set_trace_ring(nullptr);
  {
    kern::CycleTrace t;
    dut.kernel.rx(dut.eth0_ifindex(), dut.packet_to_prefix(1, 8), t);
  }
  EXPECT_EQ(ring.size(), 2u) << "detached ring must stop recording";
}

TEST(Observability, PrometheusExportCarriesDatapathAndControllerSeries) {
  RouterDut dut;
  dut.add_prefixes(5);
  Controller controller(dut.kernel);
  controller.start();
  dut.kernel.metrics().set_histograms_enabled(true);
  for (int i = 0; i < 20; ++i) {
    kern::CycleTrace t;
    dut.kernel.rx(dut.eth0_ifindex(),
                  dut.packet_to_prefix(i % 5, static_cast<std::uint16_t>(i)),
                  t);
  }

  std::string text = prometheus_status(controller);
  for (const char* needle :
       {"# TYPE linuxfp_slowpath_driver_rx_calls counter",
        "linuxfp_fastpath_lfp_eth0_xdp_runs",
        "linuxfp_fpm_router_deployed",
        "linuxfp_controller_deploy_attempts",
        "linuxfp_controller_degraded",
        // Histograms were enabled → summary series exist.
        "linuxfp_slowpath_driver_rx_cycles_hist_count",
        "quantile=\"0.99\""}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
}

TEST(Observability, DisabledMetricsFreezeCountersButKeepForwarding) {
  RouterDut dut;
  dut.add_prefixes(5);
  Controller controller(dut.kernel);
  controller.start();

  kern::CycleTrace t1;
  dut.kernel.rx(dut.eth0_ifindex(), dut.packet_to_prefix(1, 1), t1);
  std::uint64_t rx_calls = dut.kernel.metrics().value("slowpath.driver_rx.calls");
  ASSERT_GT(rx_calls, 0u);

  dut.kernel.set_metrics_enabled(false);
  std::size_t tx_before = dut.tx_eth1.size();
  kern::CycleTrace t2;
  dut.kernel.rx(dut.eth0_ifindex(), dut.packet_to_prefix(1, 2), t2);
  EXPECT_EQ(dut.kernel.metrics().value("slowpath.driver_rx.calls"), rx_calls);
  EXPECT_EQ(dut.tx_eth1.size(), tx_before + 1) << "datapath must not change";

  dut.kernel.set_metrics_enabled(true);
  kern::CycleTrace t3;
  dut.kernel.rx(dut.eth0_ifindex(), dut.packet_to_prefix(1, 3), t3);
  EXPECT_EQ(dut.kernel.metrics().value("slowpath.driver_rx.calls"),
            rx_calls + 1);
}

}  // namespace
}  // namespace linuxfp::core
