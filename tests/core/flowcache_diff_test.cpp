// Cache-on vs cache-off differential fuzz (DESIGN.md §12): two accelerated
// DUTs — identical except that one runs the microflow verdict cache — fed
// identical randomized traffic interleaved with randomized configuration
// mutations (route add/del, FDB churn, iptables/ipset edits, conntrack
// aging). Every emitted packet, every verdict and every kernel counter must
// stay identical: the cache must be a pure accelerator, invisible to every
// observable output. A second suite runs the cached DUT under fault
// injection and proves the deploy-rollback path flushes the cache epoch.
#include <gtest/gtest.h>

#include <cstring>

#include "core/controller.h"
#include "ebpf/loader.h"
#include "tests/kernel/test_topo.h"
#include "util/fault.h"
#include "util/rng.h"

namespace linuxfp::core {
namespace {

using linuxfp::testing::RouterDut;

// Runs once per execution engine: the flow cache must stay invisible whether
// the miss runs it records come from the interpreter or the direct-threaded
// translator (DESIGN.md §14).
class FlowCacheDiff : public ::testing::TestWithParam<ebpf::ExecEngine> {};

void compare_counters(const kern::Kernel& on, const kern::Kernel& off,
                      const char* where) {
  const kern::KernelCounters& a = on.counters();
  const kern::KernelCounters& b = off.counters();
  EXPECT_EQ(a.slow_path_packets, b.slow_path_packets) << where;
  EXPECT_EQ(a.fast_path_packets, b.fast_path_packets) << where;
  EXPECT_EQ(a.forwarded, b.forwarded) << where;
  EXPECT_EQ(a.bridged, b.bridged) << where;
  EXPECT_EQ(a.locally_delivered, b.locally_delivered) << where;
  EXPECT_EQ(a.total_drops(), b.total_drops()) << where;
  for (const auto& [reason, count] : a.drops) {
    auto it = b.drops.find(reason);
    EXPECT_EQ(count, it == b.drops.end() ? 0ull : it->second)
        << where << " drop " << kern::drop_name(reason);
  }
  for (const auto& [reason, count] : b.drops) {
    auto it = a.drops.find(reason);
    EXPECT_EQ(it == a.drops.end() ? 0ull : it->second, count)
        << where << " drop " << kern::drop_name(reason);
  }
}

void compare_attachments(Controller& on, Controller& off, const char* where) {
  for (const char* dev : {"eth0", "eth1"}) {
    ebpf::Attachment* a = on.deployer().attachment(dev, ebpf::HookType::kXdp);
    ebpf::Attachment* b = off.deployer().attachment(dev, ebpf::HookType::kXdp);
    ASSERT_EQ(a == nullptr, b == nullptr) << where << " " << dev;
    if (!a) continue;
    // Verdict counters must agree exactly (cache hits count as runs; insn
    // and cycle totals legitimately differ — DESIGN.md §12).
    ebpf::AttachmentStats sa = a->stats();
    ebpf::AttachmentStats sb = b->stats();
    EXPECT_EQ(sa.runs, sb.runs) << where << " " << dev;
    EXPECT_EQ(sa.pass, sb.pass) << where << " " << dev;
    EXPECT_EQ(sa.drop, sb.drop) << where << " " << dev;
    EXPECT_EQ(sa.tx, sb.tx) << where << " " << dev;
    EXPECT_EQ(sa.redirect, sb.redirect) << where << " " << dev;
    EXPECT_EQ(sa.aborted, 0u) << where << " " << dev;
    EXPECT_EQ(sb.aborted, 0u) << where << " " << dev;
  }
}

TEST_P(FlowCacheDiff, ChurnedConfigNeverDiverges) {
  for (std::uint64_t seed : {17ull, 29ull, 53ull}) {
    util::Rng rng(seed * 9973);
    RouterDut on_dut, off_dut;
    on_dut.add_prefixes(20);
    off_dut.add_prefixes(20);
    // Side bridge for FDB churn (not in the forwarding path: its generation
    // traffic must not disturb router cache entries).
    for (RouterDut* d : {&on_dut, &off_dut}) {
      d->kernel.add_phys_dev("p9");
      d->run("ip link add br1 type bridge");
      d->run("ip link set p9 master br1");
    }

    auto both = [&](const std::string& cmd) {
      auto s1 = kern::run_command(on_dut.kernel, cmd);
      auto s2 = kern::run_command(off_dut.kernel, cmd);
      ASSERT_EQ(s1.ok(), s2.ok()) << "seed " << seed << " cmd " << cmd;
    };
    both("ipset create fuzzset hash:ip");
    both("ipset add fuzzset 10.10.1.77");
    // Stateful policy so the fast path consults conntrack (replay-validated
    // on cache hits) plus set- and prefix-based drops.
    both("iptables -A FORWARD -m state --state ESTABLISHED,RELATED -j ACCEPT");
    both("iptables -A FORWARD -m set --match-set fuzzset src -j DROP");
    both("iptables -A FORWARD -d 10.105.0.0/24 -j DROP");

    ControllerOptions on_opts;
    on_opts.flow_cache = true;
    on_opts.exec_engine = GetParam();
    Controller on_ctl(on_dut.kernel, on_opts);
    ControllerOptions off_opts;
    off_opts.exec_engine = GetParam();
    Controller off_ctl(off_dut.kernel, off_opts);
    on_ctl.start();
    off_ctl.start();
    ASSERT_TRUE(on_ctl.deployer().flow_cache_enabled());

    int routes_added = 0;
    int rules_added = 0;
    for (int pkt_i = 0; pkt_i < 400; ++pkt_i) {
      if (pkt_i % 25 == 13) {
        // Randomized config mutation, mirrored on both DUTs.
        switch (rng.next_below(6)) {
          case 0:
            both("ip route add 10." + std::to_string(150 + routes_added++) +
                 ".0.0/24 via 10.10.2.2 dev eth1");
            break;
          case 1:
            if (routes_added > 0) {
              both("ip route del 10." + std::to_string(150 + --routes_added) +
                   ".0.0/24");
            }
            break;
          case 2:
            both("iptables -A FORWARD -d 10." +
                 std::to_string(110 + rules_added++ % 8) + ".0.0/24 -j DROP");
            break;
          case 3:
            both(rng.next_below(2) == 0 ? "ipset add fuzzset 10.10.1.88"
                                        : "ipset del fuzzset 10.10.1.88");
            break;
          case 4: {
            // FDB churn on the side bridge.
            both("bridge fdb add " +
                 net::MacAddr::from_id(0x900 + rng.next_below(4)).to_string() +
                 " dev p9");
            break;
          }
          default: {
            // Conntrack aging: jump both clocks far past the UDP timeout.
            std::uint64_t now =
                on_dut.kernel.now_ns() + 600ull * 1'000'000'000ull;
            on_dut.kernel.set_now_ns(now);
            off_dut.kernel.set_now_ns(now);
            break;
          }
        }
        on_ctl.run_once();
        off_ctl.run_once();
      }

      int prefix = static_cast<int>(rng.next_below(24));  // some unrouted
      auto flow = static_cast<std::uint16_t>(rng.next_below(48));
      net::Packet p_on = on_dut.packet_to_prefix(prefix, flow);
      net::Packet p_off = off_dut.packet_to_prefix(prefix, flow);
      if (rng.next_below(5) == 0) {
        // Occasionally source from the ipset-blacklisted host.
        auto src = net::Ipv4Addr::parse("10.10.1.77").value();
        for (net::Packet* p : {&p_on, &p_off}) {
          net::Ipv4View ip(p->data() + net::kEthHdrLen);
          ip.set_src(src);
          ip.update_checksum();
        }
      }
      kern::CycleTrace t1, t2;
      on_dut.kernel.rx(on_dut.eth0_ifindex(), std::move(p_on), t1);
      off_dut.kernel.rx(off_dut.eth0_ifindex(), std::move(p_off), t2);
      ASSERT_EQ(on_dut.tx_eth1.size(), off_dut.tx_eth1.size())
          << "seed " << seed << " pkt " << pkt_i;
      if (!on_dut.tx_eth1.empty()) {
        const net::Packet& a = on_dut.tx_eth1.back();
        const net::Packet& b = off_dut.tx_eth1.back();
        ASSERT_EQ(a.size(), b.size()) << "seed " << seed << " pkt " << pkt_i;
        ASSERT_EQ(0, std::memcmp(a.data(), b.data(), a.size()))
            << "seed " << seed << " pkt " << pkt_i;
      }
    }

    compare_counters(on_dut.kernel, off_dut.kernel,
                     ("seed " + std::to_string(seed)).c_str());
    compare_attachments(on_ctl, off_ctl,
                        ("seed " + std::to_string(seed)).c_str());

    // The run must actually have exercised the machinery under test: real
    // hits, and real invalidations from the config churn.
    engine::FlowCacheStats fs = on_ctl.deployer().flow_cache_stats();
    EXPECT_GT(fs.hits, 0u) << "seed " << seed;
    EXPECT_GT(fs.invalidations + fs.replay_mismatch, 0u) << "seed " << seed;
    EXPECT_EQ(on_ctl.deployer().flow_cache_stats().hits,
              on_dut.kernel.metrics().value("flowcache.hits"))
        << "seed " << seed;
  }
}

TEST_P(FlowCacheDiff, FaultRollbackFlushesEpochAndStaysEquivalent) {
  // The cached DUT under an aggressive fault schedule — deploys failing,
  // devices rolling back to the PASS slow path, backoff retries recovering —
  // against a pure-Linux twin. Every rollback swap must bump the flow epoch
  // so no stale verdict survives a program change, and the packet streams
  // must never diverge.
  constexpr std::uint64_t kSeeds[] = {7, 21};
  constexpr const char* kSchedule =
      "loader.load:p=0.25;verifier.verify:p=0.2;maps.update:p=0.2;"
      "deployer.attach:p=0.15";
  std::uint64_t total_failures = 0;

  for (std::uint64_t seed : kSeeds) {
    util::FaultScope faults(seed);
    ASSERT_TRUE(faults->install_schedule(kSchedule).ok());
    util::Rng rng(seed * 3371);
    RouterDut cached, plain;
    cached.add_prefixes(12);
    plain.add_prefixes(12);

    auto both = [&](const std::string& cmd) {
      auto s1 = kern::run_command(cached.kernel, cmd);
      auto s2 = kern::run_command(plain.kernel, cmd);
      ASSERT_EQ(s1.ok(), s2.ok()) << "seed " << seed << " cmd " << cmd;
    };

    ControllerOptions opts;
    opts.flow_cache = true;
    opts.exec_engine = GetParam();
    Controller controller(cached.kernel, opts);
    controller.start();

    auto advance_to_retry = [&] {
      HealthStatus h = controller.health();
      if (h.next_retry_ns == 0) return;
      cached.kernel.set_now_ns(h.next_retry_ns);
      plain.kernel.set_now_ns(h.next_retry_ns);
      controller.run_once();
    };

    // The coherence invariant under test: whenever a deploy reaction changes
    // the active program on a device — successful swap or failed-deploy
    // rollback to PASS — the flow epoch must have advanced past the value any
    // cache entry recorded under the old program carries. (A deploy that
    // fails before touching the device, or a repeat degrade while already
    // parked on PASS, changes nothing and owes no flush.)
    std::uint64_t last_prog[2] = {0, 0};
    std::uint64_t last_epoch[2] = {0, 0};
    bool observed_change = false;
    auto check_epochs = [&](int pkt_i) {
      const char* devs[2] = {"eth0", "eth1"};
      for (int d = 0; d < 2; ++d) {
        ebpf::Attachment* att =
            controller.deployer().attachment(devs[d], ebpf::HookType::kXdp);
        if (!att) continue;
        std::uint64_t prog = att->active_prog_id();
        std::uint64_t epoch = att->flow_epoch();
        if (last_prog[d] != 0 && prog != last_prog[d]) {
          EXPECT_GT(epoch, last_epoch[d])
              << "fault seed " << seed << " pkt " << pkt_i << " " << devs[d];
          observed_change = true;
        }
        last_prog[d] = prog;
        last_epoch[d] = epoch;
      }
    };
    check_epochs(-1);

    int rules = 0;
    for (int pkt_i = 0; pkt_i < 300; ++pkt_i) {
      if (pkt_i % 40 == 20 && rules < 5) {
        both("iptables -A FORWARD -d 10." + std::to_string(108 + rules++) +
             ".0.0/24 -j DROP");
        controller.run_once();
        check_epochs(pkt_i);
      }
      if (pkt_i % 60 == 45) {
        advance_to_retry();
        check_epochs(pkt_i);
      }

      int prefix = static_cast<int>(rng.next_below(12));
      auto flow = static_cast<std::uint16_t>(rng.next_below(24));
      kern::CycleTrace t1, t2;
      cached.kernel.rx(cached.eth0_ifindex(),
                       cached.packet_to_prefix(prefix, flow), t1);
      plain.kernel.rx(plain.eth0_ifindex(),
                      plain.packet_to_prefix(prefix, flow), t2);
      ASSERT_EQ(cached.tx_eth1.size(), plain.tx_eth1.size())
          << "fault seed " << seed << " pkt " << pkt_i;
      if (!cached.tx_eth1.empty()) {
        const net::Packet& a = cached.tx_eth1.back();
        const net::Packet& b = plain.tx_eth1.back();
        ASSERT_EQ(a.size(), b.size()) << "fault seed " << seed;
        ASSERT_EQ(0, std::memcmp(a.data(), b.data(), a.size()))
            << "fault seed " << seed << " pkt " << pkt_i;
      }
    }

    // Policy drops: fast-path verdicts map to xdp_drop; the twin counts
    // policy. Totals must agree.
    auto drop_of = [](const kern::Kernel& k, kern::Drop r) {
      auto it = k.counters().drops.find(r);
      return it == k.counters().drops.end() ? 0ull : it->second;
    };
    std::uint64_t cached_policy =
        drop_of(cached.kernel, kern::Drop::kPolicy) +
        drop_of(cached.kernel, kern::Drop::kXdpDrop) +
        drop_of(cached.kernel, kern::Drop::kTcDrop);
    EXPECT_EQ(cached_policy, drop_of(plain.kernel, kern::Drop::kPolicy))
        << "fault seed " << seed;
    EXPECT_EQ(drop_of(cached.kernel, kern::Drop::kNoRoute),
              drop_of(plain.kernel, kern::Drop::kNoRoute))
        << "fault seed " << seed;

    total_failures += controller.health().deploy_failures;
    EXPECT_TRUE(observed_change) << "fault seed " << seed;

    faults->clear_all();
    for (int i = 0; i < 3 && controller.health().degraded; ++i) {
      advance_to_retry();
      check_epochs(300);
    }
    EXPECT_FALSE(controller.health().degraded) << "fault seed " << seed;
  }
  // The schedule really fired somewhere across the seeds, so the epoch
  // assertions above covered genuine rollback swaps, not only clean deploys.
  EXPECT_GT(total_failures, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Engines, FlowCacheDiff,
    ::testing::Values(ebpf::ExecEngine::kInterpreter, ebpf::ExecEngine::kJit),
    [](const ::testing::TestParamInfo<ebpf::ExecEngine>& info) {
      return std::string(info.param == ebpf::ExecEngine::kJit ? "jit"
                                                              : "interp");
    });

}  // namespace
}  // namespace linuxfp::core
