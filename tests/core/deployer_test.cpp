// Deployer tests: atomic redeploys under traffic (design decision 4 in
// DESIGN.md — no packet observes a missing program across configuration
// churn), chain-index management in tail-call mode, and withdrawal.
#include "core/deployer.h"

#include <gtest/gtest.h>

#include "core/controller.h"
#include "tests/kernel/test_topo.h"
#include "util/rng.h"

namespace linuxfp::core {
namespace {

using linuxfp::testing::RouterDut;

TEST(Deployer, RedeployUnderTrafficNeverAborts) {
  RouterDut dut;
  dut.add_prefixes(4);
  Controller controller(dut.kernel);
  controller.start();

  util::Rng rng(99);
  int rules = 0;
  for (int step = 0; step < 300; ++step) {
    // Interleave traffic with config churn that forces redeploys.
    kern::CycleTrace t;
    auto summary = dut.kernel.rx(dut.eth0_ifindex(),
                                 dut.packet_to_prefix(step % 4), t);
    ASSERT_NE(summary.drop, kern::Drop::kMalformed);
    switch (rng.next_below(4)) {
      case 0:
        dut.run("iptables -A FORWARD -s 10.77." + std::to_string(rules++) +
                ".0/24 -j DROP");
        break;
      case 1:
        if (rules > 0) {
          dut.run("iptables -D FORWARD 1");
          --rules;
        }
        break;
      case 2:
        dut.run("ip route add 10.210." + std::to_string(rng.next_below(100)) +
                ".0/24 via 10.10.2.2 dev eth1");
        break;
      default:
        controller.run_once();
        break;
    }
  }
  controller.run_once();

  // Every attachment processed traffic with zero aborted programs.
  auto* att = controller.deployer().attachment("eth0", ebpf::HookType::kXdp);
  ASSERT_NE(att, nullptr);
  EXPECT_EQ(att->stats().aborted, 0u);
  EXPECT_GT(att->stats().runs, 0u);
}

TEST(Deployer, TailCallChainIndicesNeverCollide) {
  RouterDut dut;
  dut.add_prefixes(2);
  dut.run("iptables -A FORWARD -s 10.77.0.0/24 -j DROP");
  ControllerOptions opts;
  opts.chain = ChainMode::kTailCalls;
  Controller controller(dut.kernel, opts);
  controller.start();

  // Force several resyntheses; each deploy takes fresh prog-array slots, so
  // packets in flight during the swap still find their chain.
  for (int i = 1; i <= 5; ++i) {
    dut.run("iptables -A FORWARD -s 10.78." + std::to_string(i) +
            ".0/24 -j DROP");
    controller.run_once();
    kern::CycleTrace t;
    auto summary =
        dut.kernel.rx(dut.eth0_ifindex(), dut.packet_to_prefix(0), t);
    ASSERT_TRUE(summary.fast_path) << "redeploy " << i;
    ASSERT_EQ(dut.tx_eth1.size(), static_cast<std::size_t>(i));
  }
  auto* att = controller.deployer().attachment("eth0", ebpf::HookType::kXdp);
  EXPECT_EQ(att->stats().aborted, 0u);
  EXPECT_GT(controller.deployer().next_chain_index("eth0",
                                                   ebpf::HookType::kXdp),
            10u);
}

TEST(Deployer, WithdrawalInstallsPassProgram) {
  RouterDut dut;
  dut.add_prefixes(2);
  Controller controller(dut.kernel);
  controller.start();
  auto* att = controller.deployer().attachment("eth0", ebpf::HookType::kXdp);
  ASSERT_NE(att, nullptr);

  dut.run("sysctl -w net.ipv4.ip_forward=0");
  controller.run_once();

  // Attachment persists but swaps to PASS; Linux handles (and drops,
  // forwarding now being off).
  kern::CycleTrace t;
  auto summary =
      dut.kernel.rx(dut.eth0_ifindex(), dut.packet_to_prefix(0), t);
  EXPECT_FALSE(summary.fast_path);
  EXPECT_EQ(summary.drop, kern::Drop::kNotForUs);

  // Re-enable: acceleration returns through the same attachment.
  dut.run("sysctl -w net.ipv4.ip_forward=1");
  controller.run_once();
  kern::CycleTrace t2;
  auto back = dut.kernel.rx(dut.eth0_ifindex(), dut.packet_to_prefix(0), t2);
  EXPECT_TRUE(back.fast_path);
  EXPECT_EQ(controller.deployer().attachment("eth0", ebpf::HookType::kXdp),
            att);
}

TEST(Deployer, ReportAccountsProgramsAndInsns) {
  RouterDut dut;
  dut.add_prefixes(2);
  Controller controller(dut.kernel);
  auto reaction = controller.start();
  EXPECT_EQ(reaction.graphs, 2u);     // eth0 + eth1
  EXPECT_EQ(reaction.programs, 2u);   // one inline program per device
  EXPECT_GT(reaction.insns, 100u);
  EXPECT_EQ(controller.deployer().attachment_count(), 2u);
}

}  // namespace
}  // namespace linuxfp::core
