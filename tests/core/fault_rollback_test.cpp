// Fault-injection rollback tests: every registered injection point in the
// deploy pipeline fires, and the contract under test is always the same —
// the datapath never loses its working program (traffic keeps flowing via
// the slow path), the controller reports degraded health with per-point
// failure counters, and a backoff retry recovers once the fault clears.
#include <gtest/gtest.h>

#include "core/controller.h"
#include "core/status.h"
#include "tests/kernel/test_topo.h"
#include "util/fault.h"

namespace linuxfp::core {
namespace {

using linuxfp::testing::RouterDut;

// Sends one packet to prefix 0 and asserts it was forwarded (on either
// path) — the "never leaves the datapath without a working program" check.
void expect_forwarded(RouterDut& dut, bool expect_fast) {
  std::size_t before = dut.tx_eth1.size();
  kern::CycleTrace t;
  auto summary = dut.kernel.rx(dut.eth0_ifindex(), dut.packet_to_prefix(0), t);
  EXPECT_EQ(summary.drop, kern::Drop::kNone);
  EXPECT_EQ(summary.fast_path, expect_fast);
  EXPECT_EQ(dut.tx_eth1.size(), before + 1);
}

// Advances simulated time to the controller's pending retry deadline and
// runs one reaction.
Reaction fire_retry(RouterDut& dut, Controller& controller) {
  HealthStatus h = controller.health();
  EXPECT_NE(h.next_retry_ns, 0u);
  dut.kernel.set_now_ns(h.next_retry_ns);
  return controller.run_once();
}

TEST(FaultRollback, LoaderLoadFaultDegradesThenRecovers) {
  util::FaultScope faults(101);
  RouterDut dut;
  dut.add_prefixes(2);
  Controller controller(dut.kernel);
  controller.start();
  expect_forwarded(dut, true);

  faults->fail_always(util::kFaultLoaderLoad);
  dut.add_prefixes(3);  // signature change -> redeploy attempt
  auto reaction = controller.run_once();
  EXPECT_TRUE(reaction.deploy_failed);
  // Both physical devices (eth0, eth1) fail their deploy.
  EXPECT_EQ(reaction.failed_devices, 2u);

  HealthStatus h = controller.health();
  EXPECT_TRUE(h.degraded);
  EXPECT_EQ(h.consecutive_failures, 1u);
  EXPECT_GE(h.deploy_failures, 1u);
  EXPECT_EQ(h.failures_by_code.at("fault.loader.load"), 2u);
  EXPECT_NE(h.next_retry_ns, 0u);
  // Degraded: the device is parked on the PASS fallback, traffic takes the
  // slow path but keeps flowing.
  expect_forwarded(dut, false);

  faults->clear(util::kFaultLoaderLoad);
  auto retry = fire_retry(dut, controller);
  EXPECT_FALSE(retry.deploy_failed);
  h = controller.health();
  EXPECT_FALSE(h.degraded);
  EXPECT_EQ(h.recoveries, 1u);
  EXPECT_EQ(h.consecutive_failures, 0u);
  EXPECT_EQ(h.next_retry_ns, 0u);
  expect_forwarded(dut, true);
}

TEST(FaultRollback, VerifierRejectionRollsBackToSlowPath) {
  util::FaultScope faults(102);
  RouterDut dut;
  dut.add_prefixes(2);
  Controller controller(dut.kernel);
  controller.start();
  expect_forwarded(dut, true);

  faults->fail_always(util::kFaultVerifier);
  dut.run("iptables -A FORWARD -d 10.100.0.0/24 -j DROP");
  auto reaction = controller.run_once();
  EXPECT_TRUE(reaction.deploy_failed);
  EXPECT_EQ(controller.health().failures_by_code.count("fault.verifier.verify"),
            1u);

  // The new rule must be enforced even while degraded: the slow path drops
  // the blocked prefix. Keeping the (stale, rule-less) old program would
  // have forwarded it — this is the coherence argument for degrade-to-PASS.
  std::size_t tx_before = dut.tx_eth1.size();
  kern::CycleTrace t;
  auto blocked =
      dut.kernel.rx(dut.eth0_ifindex(), dut.packet_to_prefix(0), t);
  EXPECT_EQ(blocked.drop, kern::Drop::kPolicy);
  EXPECT_FALSE(blocked.fast_path);
  EXPECT_EQ(dut.tx_eth1.size(), tx_before);

  faults->clear(util::kFaultVerifier);
  auto retry = fire_retry(dut, controller);
  EXPECT_FALSE(retry.deploy_failed);
  EXPECT_FALSE(controller.health().degraded);
  // Recovered fast path enforces the same drop (now as XDP_DROP).
  kern::CycleTrace t2;
  auto blocked2 =
      dut.kernel.rx(dut.eth0_ifindex(), dut.packet_to_prefix(0), t2);
  EXPECT_NE(blocked2.drop, kern::Drop::kNone);
  EXPECT_TRUE(blocked2.fast_path);
  EXPECT_EQ(dut.tx_eth1.size(), tx_before);
}

TEST(FaultRollback, AttachFaultOnFreshDeviceLeavesNativeSlowPath) {
  util::FaultScope faults(103);
  faults->fail_always(util::kFaultDeployerAttach);
  RouterDut dut;
  dut.add_prefixes(2);
  Controller controller(dut.kernel);
  auto reaction = controller.start();
  EXPECT_TRUE(reaction.deploy_failed);
  // No attachment was ever installed: the device runs plain Linux.
  EXPECT_EQ(controller.deployer().attachment_count(), 0u);
  expect_forwarded(dut, false);
  EXPECT_GE(controller.health()
                .failures_by_code.at("fault.deployer.attach"), 1u);

  faults->clear(util::kFaultDeployerAttach);
  auto retry = fire_retry(dut, controller);
  EXPECT_FALSE(retry.deploy_failed);
  EXPECT_EQ(controller.deployer().attachment_count(), 2u);
  expect_forwarded(dut, true);
}

TEST(FaultRollback, MapUpdateFaultFailsAtomicSwapAndRollsBack) {
  util::FaultScope faults(104);
  RouterDut dut;
  dut.add_prefixes(2);
  Controller controller(dut.kernel);
  controller.start();
  ebpf::Attachment* att =
      controller.deployer().attachment("eth0", ebpf::HookType::kXdp);
  ASSERT_NE(att, nullptr);
  std::size_t progs_before = att->programs().size();

  // The dispatcher entry swap is a prog-array update: failing maps.update
  // once makes the final (atomic) transaction step fail after the program
  // already loaded, forcing a full rollback.
  faults->fail_times(util::kFaultMapUpdate, 1);
  dut.add_prefixes(3);
  auto reaction = controller.run_once();
  EXPECT_TRUE(reaction.deploy_failed);
  HealthStatus h = controller.health();
  EXPECT_GE(h.device_rollbacks, 1u);
  EXPECT_EQ(h.failures_by_code.at("fault.maps.update"), 1u);
  // Rollback unloaded everything the failed transaction loaded (the PASS
  // fallback program may have been added once, but nothing leaks per retry).
  EXPECT_LE(att->programs().size(), progs_before + 1);
  expect_forwarded(dut, false);

  // fail_times(1) is exhausted: the scheduled retry succeeds on its own.
  auto retry = fire_retry(dut, controller);
  EXPECT_FALSE(retry.deploy_failed);
  EXPECT_EQ(controller.health().recoveries, 1u);
  expect_forwarded(dut, true);
}

TEST(FaultRollback, NetlinkDumpFaultKeepsStaleButCoherentView) {
  util::FaultScope faults(105);
  RouterDut dut;
  dut.add_prefixes(2);
  Controller controller(dut.kernel);
  controller.start();
  std::size_t routes_before = controller.view().routes.size();

  faults->fail_always(util::kFaultNetlinkDump);
  dut.add_prefixes(3);
  controller.run_once();
  HealthStatus h = controller.health();
  EXPECT_GE(h.introspection_errors, 1u);
  // The dump failed, so the controller kept its stale route table instead of
  // a torn half-refresh.
  EXPECT_EQ(controller.view().routes.size(), routes_before);
  // Coherence holds regardless: the fast path resolves routes through the
  // live-FIB helper, not the controller's view.
  expect_forwarded(dut, true);

  faults->clear(util::kFaultNetlinkDump);
  dut.add_prefixes(4);
  controller.run_once();
  EXPECT_GT(controller.view().routes.size(), routes_before);
}

TEST(FaultRollback, KernelCommandFaultReportsErrorWithoutMutatingState) {
  util::FaultScope faults(106);
  RouterDut dut;
  std::size_t routes = dut.kernel.fib().size();
  faults->fail_always(util::kFaultKernelCommand);
  auto st = kern::run_command(dut.kernel,
                              "ip route add 10.150.0.0/24 via 10.10.2.2 dev eth1");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, "fault.kernel.command");
  EXPECT_EQ(dut.kernel.fib().size(), routes);
  faults->clear(util::kFaultKernelCommand);
  EXPECT_TRUE(kern::run_command(
                  dut.kernel,
                  "ip route add 10.150.0.0/24 via 10.10.2.2 dev eth1")
                  .ok());
}

TEST(FaultRollback, BackoffGrowsExponentiallyAndIsBounded) {
  util::FaultScope faults(107);
  RouterDut dut;
  dut.add_prefixes(2);
  Controller controller(dut.kernel);
  controller.start();

  faults->fail_always(util::kFaultLoaderLoad);
  dut.add_prefixes(3);
  controller.run_once();

  const BackoffPolicy policy;  // controller defaults
  std::vector<std::uint64_t> delays;
  for (int i = 0; i < 12; ++i) {
    HealthStatus h = controller.health();
    ASSERT_NE(h.next_retry_ns, 0u);
    delays.push_back(h.next_retry_ns - dut.kernel.now_ns());
    // Before the deadline nothing happens.
    dut.kernel.set_now_ns(h.next_retry_ns - 1);
    auto r = controller.run_once();
    EXPECT_FALSE(r.changed);
    auto retry = fire_retry(dut, controller);
    EXPECT_TRUE(retry.deploy_failed);
  }
  for (std::uint64_t d : delays) {
    EXPECT_LE(d, static_cast<std::uint64_t>(
                     static_cast<double>(policy.max_ns) * (1.0 + policy.jitter)));
    EXPECT_GE(d, static_cast<std::uint64_t>(
                     static_cast<double>(policy.base_ns) * (1.0 - policy.jitter)));
  }
  // Exponential growth dominates the jitter: by the 8th consecutive failure
  // the delay must have grown well past the first one.
  EXPECT_GT(delays[7], delays[0] * 8);
  // And it saturates at the cap.
  EXPECT_GE(delays.back(),
            static_cast<std::uint64_t>(
                static_cast<double>(policy.max_ns) * (1.0 - policy.jitter)));

  faults->clear(util::kFaultLoaderLoad);
  auto recovered = fire_retry(dut, controller);
  EXPECT_FALSE(recovered.deploy_failed);
  HealthStatus h = controller.health();
  EXPECT_FALSE(h.degraded);
  EXPECT_EQ(h.consecutive_failures, 0u);
  EXPECT_EQ(h.deploy_failures, 13u);
  expect_forwarded(dut, true);
}

TEST(FaultRollback, SeededScheduleReplaysIdentically) {
  auto run_scenario = [](std::uint64_t seed) {
    util::FaultScope faults(seed);
    ASSERT_TRUE(
        faults->install_schedule("loader.load:p=0.5;maps.update:p=0.3").ok());
    RouterDut dut;
    dut.add_prefixes(2);
    Controller controller(dut.kernel);
    controller.start();
    for (int i = 0; i < 6; ++i) {
      dut.add_prefixes(3 + i);
      controller.run_once();
      if (controller.health().next_retry_ns != 0) {
        dut.kernel.set_now_ns(controller.health().next_retry_ns);
        controller.run_once();
      }
    }
    HealthStatus h = controller.health();
    std::uint64_t fires = util::FaultInjector::global().fires("loader.load") +
                          util::FaultInjector::global().fires("maps.update");
    SCOPED_TRACE("seed " + std::to_string(seed));
    static std::map<std::uint64_t, std::pair<std::uint64_t, std::uint64_t>>
        first_run;
    auto it = first_run.find(seed);
    if (it == first_run.end()) {
      first_run[seed] = {h.deploy_failures, fires};
    } else {
      EXPECT_EQ(it->second.first, h.deploy_failures);
      EXPECT_EQ(it->second.second, fires);
    }
  };
  // Same seed twice -> bit-identical failure history; different seed -> the
  // schedule is actually seed-driven (not asserted equal).
  run_scenario(4242);
  run_scenario(4242);
  run_scenario(777);
}

TEST(FaultRollback, StatusReportExposesHealthAndFaultTable) {
  util::FaultScope faults(108);
  RouterDut dut;
  dut.add_prefixes(2);
  Controller controller(dut.kernel);
  controller.start();
  faults->fail_always(util::kFaultLoaderLoad);
  dut.add_prefixes(3);
  controller.run_once();

  util::Json status = status_json(controller);
  EXPECT_TRUE(status.at("health").at("degraded").as_bool());
  EXPECT_GE(status.at("health")
                .at("failures_by_code")
                .at("fault.loader.load")
                .as_int(),
            1);
  ASSERT_TRUE(status.contains("fault_injection"));
  bool saw_point = false;
  for (std::size_t i = 0; i < status.at("fault_injection").size(); ++i) {
    const util::Json& p = status.at("fault_injection").at(i);
    if (p.at("point").as_string() == "loader.load") {
      saw_point = true;
      EXPECT_GE(p.at("fires").as_int(), 1);
    }
  }
  EXPECT_TRUE(saw_point);
  std::string text = format_status(controller);
  EXPECT_NE(text.find("DEGRADED"), std::string::npos);
}

}  // namespace
}  // namespace linuxfp::core
