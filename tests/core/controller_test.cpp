// End-to-end controller tests: unmodified tool commands -> introspection ->
// synthesis -> atomic deploy -> packets take the fast path with results
// identical to the slow path.
#include "core/controller.h"
#include "core/status.h"

#include <gtest/gtest.h>

#include "tests/kernel/test_topo.h"

namespace linuxfp::core {
namespace {

using linuxfp::testing::RouterDut;

TEST(Controller, AcceleratesForwardingTransparently) {
  RouterDut dut;
  dut.add_prefixes(50);

  Controller controller(dut.kernel);
  auto reaction = controller.start();
  EXPECT_TRUE(reaction.changed);
  EXPECT_EQ(reaction.graphs, 2u);  // eth0 + eth1

  kern::CycleTrace trace;
  auto summary =
      dut.kernel.rx(dut.eth0_ifindex(), dut.packet_to_prefix(3), trace);
  EXPECT_TRUE(summary.fast_path);
  EXPECT_EQ(summary.drop, kern::Drop::kNone);
  ASSERT_EQ(dut.tx_eth1.size(), 1u);
  auto out = net::parse_packet(dut.tx_eth1[0]);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->eth_dst, dut.sink_gw_mac);
  EXPECT_EQ(out->eth_src, dut.eth1_mac());
  EXPECT_EQ(out->ttl, 63);
  net::Ipv4View ip(dut.tx_eth1[0].data() + out->l3_offset);
  EXPECT_TRUE(ip.checksum_valid());
}

TEST(Controller, FastPathOutputIdenticalToSlowPath) {
  // Two identical DUTs, one accelerated: byte-identical output packets
  // (paper §IV-B2: identical result under all circumstances).
  RouterDut slow, fast;
  slow.add_prefixes(20);
  fast.add_prefixes(20);
  Controller controller(fast.kernel);
  controller.start();

  for (int i = 0; i < 20; ++i) {
    kern::CycleTrace t1, t2;
    slow.kernel.rx(slow.eth0_ifindex(), slow.packet_to_prefix(i, i), t1);
    fast.kernel.rx(fast.eth0_ifindex(), fast.packet_to_prefix(i, i), t2);
  }
  ASSERT_EQ(slow.tx_eth1.size(), fast.tx_eth1.size());
  for (std::size_t i = 0; i < slow.tx_eth1.size(); ++i) {
    ASSERT_EQ(slow.tx_eth1[i].size(), fast.tx_eth1[i].size());
    EXPECT_EQ(0, std::memcmp(slow.tx_eth1[i].data(), fast.tx_eth1[i].data(),
                             slow.tx_eth1[i].size()))
        << "packet " << i;
  }
  EXPECT_GT(fast.kernel.counters().fast_path_packets, 0u);
}

TEST(Controller, FastPathIsCheaperThanSlowPath) {
  RouterDut dut;
  dut.add_prefixes(50);
  kern::CycleTrace slow_trace;
  dut.kernel.rx(dut.eth0_ifindex(), dut.packet_to_prefix(0), slow_trace);

  Controller controller(dut.kernel);
  controller.start();
  kern::CycleTrace fast_trace;
  dut.kernel.rx(dut.eth0_ifindex(), dut.packet_to_prefix(0), fast_trace);

  EXPECT_LT(fast_trace.total(), slow_trace.total());
  // The paper's headline: ~77% higher throughput, i.e. the fast path costs
  // roughly 4/7 of the slow path. Accept a generous band here; exact
  // calibration is checked by the benches.
  double ratio = static_cast<double>(fast_trace.total()) /
                 static_cast<double>(slow_trace.total());
  EXPECT_LT(ratio, 0.75);
  EXPECT_GT(ratio, 0.30);
}

TEST(Controller, ReactsToRouteChanges) {
  RouterDut dut;
  Controller controller(dut.kernel);
  controller.start();

  // No routes yet -> packets to 10.100.0.9 can't be forwarded.
  kern::CycleTrace t0;
  auto before = dut.kernel.rx(dut.eth0_ifindex(), dut.packet_to_prefix(0), t0);
  EXPECT_EQ(before.drop, kern::Drop::kNoRoute);

  dut.add_prefixes(1);
  auto reaction = controller.run_once();
  EXPECT_TRUE(reaction.changed);

  kern::CycleTrace t1;
  auto after = dut.kernel.rx(dut.eth0_ifindex(), dut.packet_to_prefix(0), t1);
  EXPECT_EQ(after.drop, kern::Drop::kNone);
  EXPECT_TRUE(after.fast_path);
  EXPECT_EQ(dut.tx_eth1.size(), 1u);
}

TEST(Controller, NoResynthesisWithoutRelevantChange) {
  RouterDut dut;
  dut.add_prefixes(5);
  Controller controller(dut.kernel);
  controller.start();
  auto n = controller.resynth_count();
  // Route churn changes the graph signature only via route_count; adding a
  // route with the same count... actually every add changes the dump, so
  // instead: polling with no events at all must not resynthesize.
  auto r = controller.run_once();
  EXPECT_FALSE(r.changed);
  EXPECT_EQ(controller.resynth_count(), n);
}

TEST(Controller, DynamicNeighborChurnNeedsNoRedeploy) {
  RouterDut dut;
  dut.add_prefixes(5);
  Controller controller(dut.kernel);
  controller.start();
  auto n = controller.resynth_count();

  // Dynamic ARP learning (an RX-path event, not a config change).
  net::Packet reply = net::build_arp_reply(
      net::MacAddr::from_id(0x777), net::Ipv4Addr::parse("10.10.1.9").value(),
      dut.eth0_mac(), net::Ipv4Addr::parse("10.10.1.1").value());
  kern::CycleTrace t;
  dut.kernel.rx(dut.eth0_ifindex(), std::move(reply), t);

  controller.run_once();
  // The fast path keeps working against live state; no redeploy happened.
  EXPECT_EQ(controller.resynth_count(), n);
}

TEST(Controller, IptablesRuleInsertsFilterFpm) {
  RouterDut dut;
  dut.add_prefixes(5);
  Controller controller(dut.kernel);
  controller.start();

  dut.run("iptables -A FORWARD -d 10.100.0.0/24 -j DROP");
  auto reaction = controller.run_once();
  EXPECT_TRUE(reaction.changed);

  // Blocked prefix is dropped ON THE FAST PATH (XDP_DROP).
  kern::CycleTrace t1;
  auto blocked =
      dut.kernel.rx(dut.eth0_ifindex(), dut.packet_to_prefix(0), t1);
  EXPECT_TRUE(blocked.fast_path);
  EXPECT_EQ(blocked.drop, kern::Drop::kXdpDrop);
  // Other prefixes still forward on the fast path.
  kern::CycleTrace t2;
  auto ok = dut.kernel.rx(dut.eth0_ifindex(), dut.packet_to_prefix(1), t2);
  EXPECT_TRUE(ok.fast_path);
  EXPECT_EQ(dut.tx_eth1.size(), 1u);
}

TEST(Controller, CornerCasesPuntToSlowPath) {
  RouterDut dut;
  dut.add_prefixes(5);
  Controller controller(dut.kernel);
  controller.start();

  // ARP is slow-path (multicast dst).
  net::Packet arp = net::build_arp_request(
      dut.src_host_mac, net::Ipv4Addr::parse("10.10.1.2").value(),
      net::Ipv4Addr::parse("10.10.1.1").value());
  kern::CycleTrace t1;
  auto arp_summary = dut.kernel.rx(dut.eth0_ifindex(), std::move(arp), t1);
  EXPECT_FALSE(arp_summary.fast_path);
  EXPECT_EQ(dut.tx_eth0.size(), 1u);  // ARP reply still generated

  // Fragments punt.
  net::Packet frag = dut.packet_to_prefix(1);
  net::Ipv4View ip(frag.data() + net::kEthHdrLen);
  ip.set_frag_field(0x2000);
  ip.update_checksum();
  kern::CycleTrace t2;
  auto frag_summary = dut.kernel.rx(dut.eth0_ifindex(), std::move(frag), t2);
  EXPECT_FALSE(frag_summary.fast_path);
  EXPECT_EQ(dut.tx_eth1.size(), 1u);  // still forwarded, by Linux

  // TTL=1 punts (ICMP time-exceeded territory).
  net::FlowKey f;
  f.src_ip = net::Ipv4Addr::parse("10.10.1.2").value();
  f.dst_ip = net::Ipv4Addr::parse("10.100.0.9").value();
  net::Packet ttl1 =
      net::build_udp_packet(dut.src_host_mac, dut.eth0_mac(), f, 64, 1);
  kern::CycleTrace t3;
  auto ttl_summary = dut.kernel.rx(dut.eth0_ifindex(), std::move(ttl1), t3);
  EXPECT_FALSE(ttl_summary.fast_path);
  EXPECT_EQ(ttl_summary.drop, kern::Drop::kTtlExceeded);
}

TEST(Controller, UnresolvedNeighborPuntsThenAccelerates) {
  RouterDut dut;
  dut.run("ip route add 10.200.0.0/24 via 10.10.2.77 dev eth1");
  Controller controller(dut.kernel);
  controller.start();

  net::FlowKey f;
  f.src_ip = net::Ipv4Addr::parse("10.10.1.2").value();
  f.dst_ip = net::Ipv4Addr::parse("10.200.0.1").value();

  // First packet: helper returns NO_NEIGH -> punt; slow path queues + ARPs.
  kern::CycleTrace t1;
  auto first = dut.kernel.rx(
      dut.eth0_ifindex(),
      net::build_udp_packet(dut.src_host_mac, dut.eth0_mac(), f, 64), t1);
  EXPECT_FALSE(first.fast_path);
  ASSERT_GE(dut.tx_eth1.size(), 1u);  // the ARP request

  // ARP reply resolves the neighbour.
  kern::CycleTrace t2;
  dut.kernel.rx(dut.eth1_ifindex(),
                net::build_arp_reply(
                    net::MacAddr::from_id(0x321),
                    net::Ipv4Addr::parse("10.10.2.77").value(),
                    dut.eth1_mac(),
                    net::Ipv4Addr::parse("10.10.2.1").value()),
                t2);

  // Subsequent packets ride the fast path — no controller action needed.
  kern::CycleTrace t3;
  auto second = dut.kernel.rx(
      dut.eth0_ifindex(),
      net::build_udp_packet(dut.src_host_mac, dut.eth0_mac(), f, 64), t3);
  EXPECT_TRUE(second.fast_path);
}

TEST(Controller, LinkDownWithdrawsAcceleration) {
  RouterDut dut;
  dut.add_prefixes(5);
  Controller controller(dut.kernel);
  controller.start();
  EXPECT_GT(controller.current_graphs().size(), 0u);

  dut.run("ip link set eth1 down");
  auto reaction = controller.run_once();
  EXPECT_TRUE(reaction.changed);
  // eth1's graph disappears; eth0's routes via eth1 are purged too, so no
  // router FPM remains anywhere.
  EXPECT_EQ(controller.current_graphs().size(), 0u);

  // Packets on eth0 now pass through the (PASS-swapped) hook to Linux.
  kern::CycleTrace t;
  auto summary =
      dut.kernel.rx(dut.eth0_ifindex(), dut.packet_to_prefix(0), t);
  EXPECT_FALSE(summary.fast_path);
}

TEST(Controller, ReactionTimesArePopulated) {
  RouterDut dut;
  dut.add_prefixes(5);
  Controller controller(dut.kernel);
  auto reaction = controller.start();
  EXPECT_GT(reaction.wall_seconds, 0.0);
  EXPECT_GT(reaction.modeled_seconds, reaction.wall_seconds);
  EXPECT_GT(reaction.insns, 0u);
}

TEST(Controller, MainlineHelpersDegradeGracefully) {
  // On a kernel without the paper's helper patches, the bridge/filter FPMs
  // are pruned but routing still accelerates (bpf_fib_lookup is mainline).
  RouterDut dut;
  dut.add_prefixes(5);
  dut.run("iptables -A FORWARD -d 10.100.0.0/24 -j DROP");
  ControllerOptions opts;
  opts.mainline_helpers_only = true;
  Controller controller(dut.kernel, opts);
  auto reaction = controller.start();
  EXPECT_FALSE(reaction.dropped_fpms.empty());

  // Packet to a non-blocked prefix: the router part is accelerated BUT
  // filtering must stay correct — since the filter FPM was pruned, the graph
  // keeps only the router; the blocked prefix would be mis-forwarded, so the
  // capability manager must have pruned the router too when a filter is
  // required. Check correctness: the blocked packet is NOT forwarded.
  kern::CycleTrace t;
  auto blocked = dut.kernel.rx(dut.eth0_ifindex(), dut.packet_to_prefix(0), t);
  EXPECT_EQ(blocked.drop, kern::Drop::kPolicy);
  EXPECT_TRUE(dut.tx_eth1.empty());
}

TEST(Controller, CustomMonitoringSnippetDeploys) {
  RouterDut dut;
  dut.add_prefixes(5);
  Controller controller(dut.kernel);
  controller.start();
  auto n = controller.resynth_count();

  controller.set_custom_snippet([](ebpf::ProgramBuilder& b) {
    b.mov(ebpf::kR3, 0);
    b.add(ebpf::kR3, 1);
  });
  auto reaction = controller.run_once();
  EXPECT_TRUE(reaction.changed);
  EXPECT_EQ(controller.resynth_count(), n + 1);

  kern::CycleTrace t;
  auto summary =
      dut.kernel.rx(dut.eth0_ifindex(), dut.packet_to_prefix(0), t);
  EXPECT_TRUE(summary.fast_path);
  EXPECT_EQ(dut.tx_eth1.size(), 1u);
}

TEST(Controller, TailCallModeStillCorrect) {
  RouterDut dut;
  dut.add_prefixes(10);
  dut.run("iptables -A FORWARD -d 10.100.0.0/24 -j DROP");
  ControllerOptions opts;
  opts.chain = ChainMode::kTailCalls;
  Controller controller(dut.kernel, opts);
  controller.start();

  kern::CycleTrace t1;
  auto blocked =
      dut.kernel.rx(dut.eth0_ifindex(), dut.packet_to_prefix(0), t1);
  EXPECT_TRUE(blocked.fast_path);
  EXPECT_EQ(blocked.drop, kern::Drop::kXdpDrop);

  kern::CycleTrace t2;
  auto ok = dut.kernel.rx(dut.eth0_ifindex(), dut.packet_to_prefix(1), t2);
  EXPECT_TRUE(ok.fast_path);
  ASSERT_EQ(dut.tx_eth1.size(), 1u);

  // Inline mode costs less than tail-call mode for the same traffic.
  RouterDut dut2;
  dut2.add_prefixes(10);
  dut2.run("iptables -A FORWARD -d 10.100.0.0/24 -j DROP");
  Controller inline_ctl(dut2.kernel);
  inline_ctl.start();
  kern::CycleTrace t3;
  dut2.kernel.rx(dut2.eth0_ifindex(), dut2.packet_to_prefix(1), t3);
  EXPECT_LT(t3.total(), t2.total());
}

TEST(ControllerStatus, ReportsGraphsAndStats) {
  RouterDut dut;
  dut.add_prefixes(3);
  Controller controller(dut.kernel);
  controller.start();
  for (int i = 0; i < 5; ++i) {
    kern::CycleTrace t;
    dut.kernel.rx(dut.eth0_ifindex(), dut.packet_to_prefix(i % 3), t);
  }
  util::Json status = status_json(controller);
  EXPECT_EQ(status.at("world").at("routes").as_int(), 5);  // 2 conn + 3
  EXPECT_TRUE(status.at("world").at("ip_forward").as_bool());
  EXPECT_EQ(status.at("graphs").size(), 2u);
  ASSERT_GT(status.at("attachments").size(), 0u);
  bool found_eth0 = false;
  for (std::size_t i = 0; i < status.at("attachments").size(); ++i) {
    const util::Json& a = status.at("attachments").at(i);
    if (a.at("device").as_string() == "eth0") {
      found_eth0 = true;
      EXPECT_EQ(a.at("stats").at("runs").as_int(), 5);
      EXPECT_EQ(a.at("stats").at("redirect").as_int(), 5);
      EXPECT_EQ(a.at("stats").at("aborted").as_int(), 0);
    }
  }
  EXPECT_TRUE(found_eth0);

  std::string text = format_status(controller);
  EXPECT_NE(text.find("router"), std::string::npos);
  EXPECT_NE(text.find("attachment eth0"), std::string::npos);
}

}  // namespace
}  // namespace linuxfp::core
