#include "core/topology.h"

#include <gtest/gtest.h>

#include "core/capability.h"
#include "core/introspect.h"
#include "ebpf/kernel_helpers.h"
#include "kernel/commands.h"
#include "kernel/kernel.h"

namespace linuxfp::core {
namespace {

class TopologyTest : public ::testing::Test {
 protected:
  WorldView view_of(kern::Kernel& k) {
    ServiceIntrospection si(k.netlink());
    si.initial_sync();
    return si.view();
  }

  void cmd(kern::Kernel& k, const std::string& c) {
    auto st = kern::run_command(k, c);
    ASSERT_TRUE(st.ok()) << c << ": " << st.error().message;
  }
};

TEST_F(TopologyTest, NoConfigMeansNoGraphs) {
  kern::Kernel k("host");
  k.add_phys_dev("eth0");
  cmd(k, "ip link set eth0 up");
  TopologyManager tm;
  auto graphs = tm.build(view_of(k));
  EXPECT_EQ(graphs.size(), 0u);
}

TEST_F(TopologyTest, RouterGraphWhenForwardingConfigured) {
  kern::Kernel k("host");
  k.add_phys_dev("eth0");
  k.add_phys_dev("eth1");
  cmd(k, "ip link set eth0 up");
  cmd(k, "ip link set eth1 up");
  cmd(k, "ip addr add 10.1.0.1/24 dev eth0");
  cmd(k, "ip addr add 10.2.0.1/24 dev eth1");
  cmd(k, "sysctl -w net.ipv4.ip_forward=1");
  cmd(k, "ip route add 10.50.0.0/16 via 10.2.0.2 dev eth1");

  TopologyManager tm;
  auto graphs = tm.build(view_of(k));
  ASSERT_EQ(graphs.size(), 2u);  // one per physical device
  const util::Json& g = graphs.at(0);
  EXPECT_EQ(g.at("hook").as_string(), "xdp");
  ASSERT_TRUE(g.at("nodes").contains("router"));
  EXPECT_FALSE(g.at("nodes").contains("filter"));
  EXPECT_FALSE(g.at("nodes").contains("bridge"));
  EXPECT_EQ(g.at("nodes").at("router").at("conf").at("route_count").as_int(),
            1);
}

TEST_F(TopologyTest, RouterRequiresIpForwardSysctl) {
  kern::Kernel k("host");
  k.add_phys_dev("eth0");
  cmd(k, "ip link set eth0 up");
  cmd(k, "ip addr add 10.1.0.1/24 dev eth0");
  cmd(k, "ip route add 10.50.0.0/16 via 10.1.0.2 dev eth0");
  // ip_forward left off.
  TopologyManager tm;
  EXPECT_EQ(tm.build(view_of(k)).size(), 0u);
}

TEST_F(TopologyTest, FilterNodeAddedWithForwardRules) {
  kern::Kernel k("host");
  k.add_phys_dev("eth0");
  cmd(k, "ip link set eth0 up");
  cmd(k, "ip addr add 10.1.0.1/24 dev eth0");
  cmd(k, "sysctl -w net.ipv4.ip_forward=1");
  cmd(k, "ip route add 10.50.0.0/16 via 10.1.0.2 dev eth0");
  cmd(k, "iptables -A FORWARD -p tcp --dport 80 -j DROP");

  TopologyManager tm;
  auto graphs = tm.build(view_of(k));
  ASSERT_EQ(graphs.size(), 1u);
  const util::Json& nodes = graphs.at(0).at("nodes");
  ASSERT_TRUE(nodes.contains("filter"));
  EXPECT_EQ(nodes.at("filter").at("next_nf").as_string(), "router");
  EXPECT_TRUE(nodes.at("filter").at("conf").at("needs_ports").as_bool());
  EXPECT_EQ(nodes.at("filter").at("conf").at("rule_count").as_int(), 1);
  // Keys are ordered: filter precedes router.
  std::vector<std::string> keys;
  for (const auto& [k2, v] : nodes.object_items()) keys.push_back(k2);
  EXPECT_EQ(keys, (std::vector<std::string>{"filter", "router"}));
}

TEST_F(TopologyTest, BridgePortGetsBridgeNode) {
  kern::Kernel k("host");
  k.add_phys_dev("eth0");
  cmd(k, "brctl addbr br0");
  cmd(k, "ip link set eth0 up");
  cmd(k, "ip link set br0 up");
  cmd(k, "brctl addif br0 eth0");

  // Physical port of a bridge is attachable even in physical-only mode
  // because it is where packets arrive.
  TopologyOptions opts;
  opts.attach_bridge_ports = true;
  TopologyManager tm(opts);
  auto graphs = tm.build(view_of(k));
  ASSERT_EQ(graphs.size(), 1u);
  const util::Json& nodes = graphs.at(0).at("nodes");
  ASSERT_TRUE(nodes.contains("bridge"));
  EXPECT_FALSE(nodes.contains("router"));
  EXPECT_FALSE(nodes.at("bridge").contains("next_nf"));
  EXPECT_FALSE(
      nodes.at("bridge").at("conf").at("STP_enabled").as_bool());
}

TEST_F(TopologyTest, BridgeWithAddressChainsToRouter) {
  kern::Kernel k("host");
  k.add_phys_dev("eth0");
  k.add_phys_dev("eth1");
  cmd(k, "brctl addbr br0");
  cmd(k, "ip link set eth0 up");
  cmd(k, "ip link set eth1 up");
  cmd(k, "ip link set br0 up");
  cmd(k, "brctl addif br0 eth0");
  cmd(k, "ip addr add 10.1.0.1/24 dev br0");
  cmd(k, "ip addr add 10.2.0.1/24 dev eth1");
  cmd(k, "sysctl -w net.ipv4.ip_forward=1");
  cmd(k, "ip route add 10.50.0.0/16 via 10.2.0.2 dev eth1");

  TopologyOptions opts;
  opts.attach_bridge_ports = true;
  TopologyManager tm(opts);
  auto graphs = tm.build(view_of(k));
  // eth0 (bridge port) and eth1 (plain L3) both get graphs.
  ASSERT_EQ(graphs.size(), 2u);
  const util::Json* port_graph = nullptr;
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    if (graphs.at(i).at("device").as_string() == "eth0") {
      port_graph = &graphs.at(i);
    }
  }
  ASSERT_NE(port_graph, nullptr);
  const util::Json& nodes = port_graph->at("nodes");
  ASSERT_TRUE(nodes.contains("bridge"));
  EXPECT_EQ(nodes.at("bridge").at("next_nf").as_string(), "router");
  ASSERT_TRUE(nodes.contains("router"));
}

TEST_F(TopologyTest, StpAndVlanFlagsReachConf) {
  kern::Kernel k("host");
  k.add_phys_dev("eth0");
  cmd(k, "brctl addbr br0");
  cmd(k, "brctl addif br0 eth0");
  cmd(k, "brctl stp br0 on");
  cmd(k, "bridge vlan add dev eth0 vid 100");
  cmd(k, "ip link set eth0 up");
  cmd(k, "ip link set br0 up");

  TopologyOptions opts;
  opts.attach_bridge_ports = true;
  TopologyManager tm(opts);
  auto graphs = tm.build(view_of(k));
  ASSERT_EQ(graphs.size(), 1u);
  const util::Json& conf = graphs.at(0).at("nodes").at("bridge").at("conf");
  EXPECT_TRUE(conf.at("STP_enabled").as_bool());
  EXPECT_TRUE(conf.at("VLAN_enabled").as_bool());
}

TEST_F(TopologyTest, DownDevicesAreSkipped) {
  kern::Kernel k("host");
  k.add_phys_dev("eth0");
  cmd(k, "ip addr add 10.1.0.1/24 dev eth0");
  cmd(k, "sysctl -w net.ipv4.ip_forward=1");
  cmd(k, "ip route add 10.50.0.0/16 via 10.1.0.2 dev eth0");
  // Route add on a down device: kernel allows it in our model, but the
  // device is down so no graph is built.
  TopologyManager tm;
  EXPECT_EQ(tm.build(view_of(k)).size(), 0u);
}

TEST_F(TopologyTest, CapabilityPruneDropsBridgeOnMainline) {
  kern::Kernel k("host");
  k.add_phys_dev("eth0");
  cmd(k, "brctl addbr br0");
  cmd(k, "ip link set eth0 up");
  cmd(k, "ip link set br0 up");
  cmd(k, "brctl addif br0 eth0");

  TopologyOptions opts;
  opts.attach_bridge_ports = true;
  TopologyManager tm(opts);
  auto graphs = tm.build(view_of(k));
  ASSERT_EQ(graphs.size(), 1u);

  ebpf::HelperRegistry mainline;
  ebpf::register_mainline_helpers(mainline, k.cost());
  CapabilityManager cap(mainline);
  std::vector<std::string> dropped;
  auto pruned = cap.prune(graphs, &dropped);
  EXPECT_EQ(pruned.size(), 0u);  // bridge node removed -> empty graph
  ASSERT_EQ(dropped.size(), 1u);
  EXPECT_EQ(dropped[0], "eth0:bridge");

  // With the full helper set nothing is pruned.
  ebpf::HelperRegistry full;
  ebpf::register_all_helpers(full, k.cost());
  CapabilityManager cap_full(full);
  EXPECT_EQ(cap_full.prune(graphs).size(), 1u);
}

TEST_F(TopologyTest, SignatureStableAcrossRebuilds) {
  kern::Kernel k("host");
  k.add_phys_dev("eth0");
  cmd(k, "ip link set eth0 up");
  cmd(k, "ip addr add 10.1.0.1/24 dev eth0");
  cmd(k, "sysctl -w net.ipv4.ip_forward=1");
  cmd(k, "ip route add 10.50.0.0/16 via 10.1.0.2 dev eth0");
  TopologyManager tm;
  auto v = view_of(k);
  EXPECT_EQ(TopologyManager::signature(tm.build(v)),
            TopologyManager::signature(tm.build(v)));
}

}  // namespace
}  // namespace linuxfp::core
