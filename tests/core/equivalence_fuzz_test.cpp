// Randomized fast/slow equivalence fuzzing (the paper's §IV-B2 contract,
// stress form): random iptables rule sets (prefixes, protocols, ports,
// negation, interfaces, ipsets, user chains) and random traffic — an
// accelerated DUT and a pure-Linux twin must emit identical packet streams
// and identical drop verdicts, packet for packet.
#include <gtest/gtest.h>

#include "core/controller.h"
#include "tests/kernel/test_topo.h"
#include "util/fault.h"
#include "util/rng.h"

namespace linuxfp::core {
namespace {

using linuxfp::testing::RouterDut;

// The whole suite runs once per execution engine: the fast/slow equivalence
// contract must hold whether the deployed programs run interpreted or
// direct-threaded (DESIGN.md §14).
class EquivalenceFuzz : public ::testing::TestWithParam<ebpf::ExecEngine> {
 protected:
  ControllerOptions controller_options() const {
    ControllerOptions opts;
    opts.exec_engine = GetParam();
    return opts;
  }
};

std::string random_prefix(util::Rng& rng) {
  return "10." + std::to_string(100 + rng.next_below(20)) + "." +
         std::to_string(rng.next_below(4)) + ".0/24";
}

std::string random_rule(util::Rng& rng, bool with_set) {
  std::string rule = "iptables -A FORWARD";
  if (rng.next_below(3) == 0) rule += " !";
  switch (rng.next_below(4)) {
    case 0: rule += " -s 10.10.1.0/24"; break;
    case 1: rule += " -s 10.10.9.0/24"; break;
    default: rule += " -d " + random_prefix(rng); break;
  }
  if (rng.next_below(2) == 0) {
    rule += rng.next_below(2) == 0 ? " -p udp" : " -p tcp";
    if (rng.next_below(2) == 0) {
      rule += " --dport " + std::to_string(rng.next_below(3) == 0 ? 7 : 80);
    }
  }
  if (rng.next_below(4) == 0) rule += " -i eth0";
  if (rng.next_below(5) == 0) rule += " -o eth1";
  if (with_set && rng.next_below(4) == 0) {
    rule = "iptables -A FORWARD -m set --match-set fuzzset src";
  }
  rule += rng.next_below(3) == 0 ? " -j ACCEPT" : " -j DROP";
  return rule;
}

TEST_P(EquivalenceFuzz, RandomFirewallsIdenticalVerdicts) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    util::Rng rng(seed * 7919);
    RouterDut fast, slow;
    fast.add_prefixes(30);
    slow.add_prefixes(30);

    auto both = [&](const std::string& cmd) {
      auto s1 = kern::run_command(fast.kernel, cmd);
      auto s2 = kern::run_command(slow.kernel, cmd);
      ASSERT_EQ(s1.ok(), s2.ok()) << cmd;
    };
    both("ipset create fuzzset hash:ip");
    for (int i = 0; i < 5; ++i) {
      both("ipset add fuzzset 10.10.1." + std::to_string(2 + i * 3));
    }
    int n_rules = 1 + static_cast<int>(rng.next_below(12));
    for (int i = 0; i < n_rules; ++i) {
      both(random_rule(rng, true));
    }
    if (rng.next_below(3) == 0) both("iptables -P FORWARD DROP");

    Controller controller(fast.kernel, controller_options());
    controller.start();

    for (int pkt_i = 0; pkt_i < 150; ++pkt_i) {
      int prefix = static_cast<int>(rng.next_below(30));
      auto flow = static_cast<std::uint16_t>(rng.next_below(64));
      // Occasionally use a blacklisted-by-set source.
      net::Packet pf = fast.packet_to_prefix(prefix, flow);
      net::Packet ps = slow.packet_to_prefix(prefix, flow);
      if (rng.next_below(4) == 0) {
        net::Ipv4View ipf(pf.data() + net::kEthHdrLen);
        net::Ipv4View ips(ps.data() + net::kEthHdrLen);
        auto src = net::Ipv4Addr::parse("10.10.1.5").value();
        ipf.set_src(src);
        ipf.update_checksum();
        ips.set_src(src);
        ips.update_checksum();
      }
      kern::CycleTrace tf, ts;
      fast.kernel.rx(fast.eth0_ifindex(), std::move(pf), tf);
      slow.kernel.rx(slow.eth0_ifindex(), std::move(ps), ts);
      ASSERT_EQ(fast.tx_eth1.size(), slow.tx_eth1.size())
          << "seed " << seed << " pkt " << pkt_i;
      if (!fast.tx_eth1.empty()) {
        const net::Packet& a = fast.tx_eth1.back();
        const net::Packet& b = slow.tx_eth1.back();
        ASSERT_EQ(a.size(), b.size());
        ASSERT_EQ(0, std::memcmp(a.data(), b.data(), a.size()))
            << "seed " << seed << " pkt " << pkt_i;
      }
    }
    // The accelerated DUT must actually have used its fast path for the
    // common case (unless the random policy dropped literally everything).
    if (!fast.tx_eth1.empty()) {
      EXPECT_GT(fast.kernel.counters().fast_path_packets, 0u)
          << "seed " << seed;
    }

    // Counter coherence (observability contract): the accelerated DUT's
    // per-reason drop totals must agree with the pure-Linux twin's once
    // fast-path verdicts are mapped back to their slow-path reason —
    // a policy drop executed in XDP/TC counts as xdp_drop/tc_drop on the
    // fast DUT but policy on the twin.
    auto drop_of = [](const kern::Kernel& k, kern::Drop r) {
      auto it = k.counters().drops.find(r);
      return it == k.counters().drops.end() ? 0ull : it->second;
    };
    std::uint64_t fast_policy = drop_of(fast.kernel, kern::Drop::kPolicy) +
                                drop_of(fast.kernel, kern::Drop::kXdpDrop) +
                                drop_of(fast.kernel, kern::Drop::kTcDrop);
    EXPECT_EQ(fast_policy, drop_of(slow.kernel, kern::Drop::kPolicy))
        << "seed " << seed;
    for (kern::Drop r :
         {kern::Drop::kNoRoute, kern::Drop::kMalformed, kern::Drop::kLinkDown,
          kern::Drop::kTtlExceeded, kern::Drop::kNotForUs}) {
      EXPECT_EQ(drop_of(fast.kernel, r), drop_of(slow.kernel, r))
          << "seed " << seed << " reason " << kern::drop_name(r);
    }

    // And the metrics registry's drop.* counters mirror KernelCounters
    // exactly on both DUTs — one event, two coherent views.
    for (const kern::Kernel* k : {&fast.kernel, &slow.kernel}) {
      for (const auto& [reason, count] : k->counters().drops) {
        EXPECT_EQ(k->metrics().value(std::string("drop.") +
                                     kern::drop_name(reason)),
                  count)
            << "seed " << seed << " reason " << kern::drop_name(reason);
      }
    }
  }
}

TEST_P(EquivalenceFuzz, FaultScheduleNeverBreaksEquivalence) {
  // The §IV-B2 contract must hold while the deploy pipeline is actively
  // failing: with injected faults at every registered point, the accelerated
  // DUT — cycling through fast path, rollback, PASS degradation and backoff
  // recovery — must stay packet-for-packet identical to the pure-Linux twin.
  // Any failure message carries the fault seed: rerun with
  //   ctest -R EquivalenceFuzz.FaultScheduleNeverBreaksEquivalence
  // after setting that seed in kFaultSeeds for a one-command repro.
  constexpr std::uint64_t kFaultSeeds[] = {11, 22, 33, 44};
  constexpr const char* kSchedule =
      "loader.load:p=0.25;verifier.verify:p=0.2;maps.update:p=0.2;"
      "deployer.attach:p=0.15;maps.lookup:p=0.05";
  std::uint64_t total_deploy_failures = 0;

  for (std::uint64_t seed : kFaultSeeds) {
    util::FaultScope faults(seed);
    ASSERT_TRUE(faults->install_schedule(kSchedule).ok()) << "seed " << seed;
    util::Rng rng(seed * 6133);
    RouterDut fast, slow;
    fast.add_prefixes(20);
    slow.add_prefixes(20);

    auto both = [&](const std::string& cmd) {
      auto s1 = kern::run_command(fast.kernel, cmd);
      auto s2 = kern::run_command(slow.kernel, cmd);
      ASSERT_EQ(s1.ok(), s2.ok()) << "seed " << seed << " cmd " << cmd;
    };

    Controller controller(fast.kernel, controller_options());
    controller.start();

    // Keeps both kernels' clocks in lockstep and fires due backoff retries.
    auto advance_to_retry = [&] {
      HealthStatus h = controller.health();
      if (h.next_retry_ns == 0) return;
      fast.kernel.set_now_ns(h.next_retry_ns);
      slow.kernel.set_now_ns(h.next_retry_ns);
      controller.run_once();
    };

    int rules_added = 0;
    for (int pkt_i = 0; pkt_i < 300; ++pkt_i) {
      // Mid-stream config churn: rule/route changes force redeploys right
      // into the armed fault schedule.
      if (pkt_i % 40 == 20 && rules_added < 5) {
        both(random_rule(rng, false));
        ++rules_added;
        controller.run_once();
      }
      if (pkt_i % 60 == 30) {
        advance_to_retry();
      }
      int prefix = static_cast<int>(rng.next_below(20));
      auto flow = static_cast<std::uint16_t>(rng.next_below(32));
      kern::CycleTrace tf, ts;
      fast.kernel.rx(fast.eth0_ifindex(),
                     fast.packet_to_prefix(prefix, flow), tf);
      slow.kernel.rx(slow.eth0_ifindex(),
                     slow.packet_to_prefix(prefix, flow), ts);
      ASSERT_EQ(fast.tx_eth1.size(), slow.tx_eth1.size())
          << "fault seed " << seed << " pkt " << pkt_i;
      if (!fast.tx_eth1.empty()) {
        const net::Packet& a = fast.tx_eth1.back();
        const net::Packet& b = slow.tx_eth1.back();
        ASSERT_EQ(a.size(), b.size()) << "fault seed " << seed;
        ASSERT_EQ(0, std::memcmp(a.data(), b.data(), a.size()))
            << "fault seed " << seed << " pkt " << pkt_i;
      }
    }

    // A datapath program was in place throughout: nothing ever aborted.
    for (const char* dev : {"eth0", "eth1"}) {
      ebpf::Attachment* att =
          controller.deployer().attachment(dev, ebpf::HookType::kXdp);
      if (att) {
        EXPECT_EQ(att->stats().aborted, 0u) << "fault seed " << seed;
      }
    }

    total_deploy_failures += controller.health().deploy_failures;

    // Clear the schedule (injector stays armed): pending retries must now
    // succeed and the controller must report full recovery.
    faults->clear_all();
    for (int i = 0; i < 3 && controller.health().degraded; ++i) {
      advance_to_retry();
    }
    HealthStatus h = controller.health();
    EXPECT_FALSE(h.degraded) << "fault seed " << seed;
    if (h.deploy_failures > 0) {
      EXPECT_GE(h.recoveries, 1u) << "fault seed " << seed;
    }
    // Still equivalent after recovery.
    kern::CycleTrace tf, ts;
    fast.kernel.rx(fast.eth0_ifindex(), fast.packet_to_prefix(1, 7), tf);
    slow.kernel.rx(slow.eth0_ifindex(), slow.packet_to_prefix(1, 7), ts);
    ASSERT_EQ(fast.tx_eth1.size(), slow.tx_eth1.size())
        << "fault seed " << seed << " post-recovery";
  }
  // The schedule actually bit somewhere across the seeds — otherwise this
  // test silently stopped exercising the rollback machinery.
  EXPECT_GT(total_deploy_failures, 0u);
}

TEST_P(EquivalenceFuzz, RandomTrafficShapesNeverDesync) {
  // Truncated/fragmented/odd-TTL/multicast traffic mixed in: both DUTs must
  // agree on every emission even when everything punts.
  util::Rng rng(424242);
  RouterDut fast, slow;
  fast.add_prefixes(8);
  slow.add_prefixes(8);
  for (const char* cmd :
       {"iptables -A FORWARD -p tcp --dport 23 -j DROP",
        "iptables -A FORWARD -d 10.101.0.0/24 -j DROP"}) {
    ASSERT_TRUE(kern::run_command(fast.kernel, cmd).ok());
    ASSERT_TRUE(kern::run_command(slow.kernel, cmd).ok());
  }
  Controller controller(fast.kernel, controller_options());
  controller.start();

  for (int i = 0; i < 400; ++i) {
    net::Packet pkt = fast.packet_to_prefix(static_cast<int>(rng.next_below(8)),
                                            static_cast<std::uint16_t>(i));
    switch (rng.next_below(6)) {
      case 0: {  // fragment
        net::Ipv4View ip(pkt.data() + net::kEthHdrLen);
        ip.set_frag_field(0x2000 | static_cast<std::uint16_t>(rng.next_below(8)));
        ip.update_checksum();
        break;
      }
      case 1: {  // low TTL
        net::Ipv4View ip(pkt.data() + net::kEthHdrLen);
        ip.set_ttl(static_cast<std::uint8_t>(rng.next_below(3)));
        ip.update_checksum();
        break;
      }
      case 2: {  // multicast destination MAC
        net::EthernetView eth(pkt.data());
        eth.set_dst(net::MacAddr::parse("01:00:5e:00:00:01").value());
        break;
      }
      case 3: {  // truncated
        pkt.resize_data(net::kEthHdrLen + rng.next_below(20));
        break;
      }
      case 4: {  // IP options (IHL != 5)
        pkt.data()[net::kEthHdrLen] = 0x46;
        net::Ipv4View ip(pkt.data() + net::kEthHdrLen);
        ip.update_checksum();
        break;
      }
      default: break;  // normal packet
    }
    net::Packet copy = pkt;
    kern::CycleTrace tf, ts;
    fast.kernel.rx(fast.eth0_ifindex(), std::move(pkt), tf);
    slow.kernel.rx(slow.eth0_ifindex(), std::move(copy), ts);
    ASSERT_EQ(fast.tx_eth1.size(), slow.tx_eth1.size()) << "pkt " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Engines, EquivalenceFuzz,
    ::testing::Values(ebpf::ExecEngine::kInterpreter, ebpf::ExecEngine::kJit),
    [](const ::testing::TestParamInfo<ebpf::ExecEngine>& info) {
      return std::string(info.param == ebpf::ExecEngine::kJit ? "jit"
                                                              : "interp");
    });

}  // namespace
}  // namespace linuxfp::core
