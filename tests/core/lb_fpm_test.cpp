// Load-balancer fast path tests: the controller synthesizes a loadbalance
// FPM when ipvs services exist; established flows are NATed on the fast path
// byte-identically to the slow path; new flows punt for scheduling.
#include <gtest/gtest.h>

#include "core/controller.h"
#include "tests/kernel/test_topo.h"

namespace linuxfp::core {
namespace {

using linuxfp::testing::RouterDut;

struct LbRig {
  RouterDut dut;

  explicit LbRig(bool accelerated) {
    dut.add_prefixes(1);
    dut.run("ipvsadm -A -t 10.0.0.100:80 -s rr");
    dut.run("ipvsadm -a -t 10.0.0.100:80 -r 10.100.0.5:8080");
    dut.run("ipvsadm -a -t 10.0.0.100:80 -r 10.100.0.6:8080");
    if (accelerated) {
      controller = std::make_unique<Controller>(dut.kernel);
      controller->start();
    }
  }

  net::Packet client_packet(std::uint16_t sport) {
    net::FlowKey f;
    f.src_ip = net::Ipv4Addr::parse("10.10.1.2").value();
    f.dst_ip = net::Ipv4Addr::parse("10.0.0.100").value();
    f.proto = net::kIpProtoTcp;
    f.src_port = sport;
    f.dst_port = 80;
    return net::build_tcp_packet(dut.src_host_mac, dut.eth0_mac(), f, 0x18,
                                 64);
  }

  net::Packet backend_reply(const std::string& backend, std::uint16_t dport) {
    net::FlowKey f;
    f.src_ip = net::Ipv4Addr::parse(backend).value();
    f.dst_ip = net::Ipv4Addr::parse("10.10.1.2").value();
    f.proto = net::kIpProtoTcp;
    f.src_port = 8080;
    f.dst_port = dport;
    return net::build_tcp_packet(dut.sink_gw_mac, dut.eth1_mac(), f, 0x18, 64);
  }

  std::unique_ptr<Controller> controller;
};

TEST(LbFpm, TopologyEmitsLoadbalanceNode) {
  LbRig rig(true);
  const util::Json& graphs = rig.controller->current_graphs();
  ASSERT_GT(graphs.size(), 0u);
  bool found = false;
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    if (graphs.at(i).at("nodes").contains("loadbalance")) {
      found = true;
      EXPECT_EQ(graphs.at(i)
                    .at("nodes")
                    .at("loadbalance")
                    .at("conf")
                    .at("service_count")
                    .as_int(),
                1);
      // Keys in processing order: loadbalance before router.
      std::vector<std::string> keys;
      for (const auto& [k, v] :
           graphs.at(i).at("nodes").object_items()) {
        keys.push_back(k);
      }
      EXPECT_LT(std::find(keys.begin(), keys.end(), "loadbalance"),
                std::find(keys.begin(), keys.end(), "router"));
    }
  }
  EXPECT_TRUE(found);
}

TEST(LbFpm, NewFlowPuntsEstablishedRidesFastPath) {
  LbRig rig(true);
  kern::CycleTrace t1;
  auto first = rig.dut.kernel.rx(rig.dut.eth0_ifindex(),
                                 rig.client_packet(7000), t1);
  EXPECT_FALSE(first.fast_path);  // scheduling = slow path
  ASSERT_EQ(rig.dut.tx_eth1.size(), 1u);

  kern::CycleTrace t2;
  auto second = rig.dut.kernel.rx(rig.dut.eth0_ifindex(),
                                  rig.client_packet(7000), t2);
  EXPECT_TRUE(second.fast_path);  // conntrack DNAT served by the FPM
  ASSERT_EQ(rig.dut.tx_eth1.size(), 2u);
  EXPECT_LT(t2.total(), t1.total());
}

TEST(LbFpm, FastPathNatByteIdenticalToSlowPath) {
  LbRig fast(true), slow(false);
  // Establish the same flow on both (slow-path scheduling is deterministic
  // round-robin, so both pick the same backend).
  kern::CycleTrace tf0, ts0;
  fast.dut.kernel.rx(fast.dut.eth0_ifindex(), fast.client_packet(8000), tf0);
  slow.dut.kernel.rx(slow.dut.eth0_ifindex(), slow.client_packet(8000), ts0);

  for (int i = 0; i < 10; ++i) {
    kern::CycleTrace tf, ts;
    fast.dut.kernel.rx(fast.dut.eth0_ifindex(), fast.client_packet(8000), tf);
    slow.dut.kernel.rx(slow.dut.eth0_ifindex(), slow.client_packet(8000), ts);
    ASSERT_EQ(fast.dut.tx_eth1.size(), slow.dut.tx_eth1.size());
    const net::Packet& a = fast.dut.tx_eth1.back();
    const net::Packet& b = slow.dut.tx_eth1.back();
    ASSERT_EQ(a.size(), b.size());
    ASSERT_EQ(0, std::memcmp(a.data(), b.data(), a.size())) << "packet " << i;
    // And the fast-path NAT result carries a valid checksum.
    auto parsed = net::parse_packet(a);
    net::Ipv4View iph(const_cast<std::uint8_t*>(a.data()) +
                      parsed->l3_offset);
    ASSERT_TRUE(iph.checksum_valid());
    EXPECT_EQ(parsed->dst_port, 8080);
  }
  EXPECT_GT(fast.dut.kernel.counters().fast_path_packets, 5u);
}

TEST(LbFpm, ReplyDirectionUnNatOnFastPath) {
  LbRig rig(true);
  kern::CycleTrace t0;
  rig.dut.kernel.rx(rig.dut.eth0_ifindex(), rig.client_packet(9000), t0);
  ASSERT_EQ(rig.dut.tx_eth1.size(), 1u);
  std::string backend =
      net::parse_packet(rig.dut.tx_eth1[0])->ip_dst.to_string();

  // First reply (reply direction promotes conntrack to established).
  kern::CycleTrace t1;
  rig.dut.kernel.rx(rig.dut.eth1_ifindex(), rig.backend_reply(backend, 9000),
                    t1);
  ASSERT_EQ(rig.dut.tx_eth0.size(), 1u);

  // Subsequent replies ride the fast path and still un-NAT to the VIP.
  kern::CycleTrace t2;
  auto summary = rig.dut.kernel.rx(rig.dut.eth1_ifindex(),
                                   rig.backend_reply(backend, 9000), t2);
  EXPECT_TRUE(summary.fast_path);
  ASSERT_EQ(rig.dut.tx_eth0.size(), 2u);
  auto parsed = net::parse_packet(rig.dut.tx_eth0[1]);
  EXPECT_EQ(parsed->ip_src.to_string(), "10.0.0.100");
  EXPECT_EQ(parsed->src_port, 80);
  net::Ipv4View iph(rig.dut.tx_eth0[1].data() + parsed->l3_offset);
  EXPECT_TRUE(iph.checksum_valid());
}

TEST(LbFpm, NonVipTrafficStaysOnFastPath) {
  // Regression: with services configured but conntrack cold, traffic NOT
  // addressed to any VIP must still ride the fast path (the FPM's baked-in
  // VIP list gates the conntrack punt).
  LbRig rig(true);
  kern::CycleTrace t;
  auto summary = rig.dut.kernel.rx(rig.dut.eth0_ifindex(),
                                   rig.dut.packet_to_prefix(0), t);
  EXPECT_TRUE(summary.fast_path);
  ASSERT_EQ(rig.dut.tx_eth1.size(), 1u);
  EXPECT_EQ(net::parse_packet(rig.dut.tx_eth1[0])->ip_dst.to_string(),
            "10.100.0.9");  // untouched by NAT
}

TEST(LbFpm, ServiceRemovalWithdrawsLbNode) {
  LbRig rig(true);
  rig.dut.run("ipvsadm -D -t 10.0.0.100:80");
  auto reaction = rig.controller->run_once();
  EXPECT_TRUE(reaction.changed);
  for (std::size_t i = 0; i < rig.controller->current_graphs().size(); ++i) {
    EXPECT_FALSE(rig.controller->current_graphs()
                     .at(i)
                     .at("nodes")
                     .contains("loadbalance"));
  }
}

TEST(LbFpm, MainlineHelpersPruneLbAndRouter) {
  RouterDut dut;
  dut.add_prefixes(1);
  dut.run("ipvsadm -A -t 10.0.0.100:80 -s rr");
  dut.run("ipvsadm -a -t 10.0.0.100:80 -r 10.100.0.5:8080");
  ControllerOptions opts;
  opts.mainline_helpers_only = true;  // no bpf_ct_lookup
  Controller controller(dut.kernel, opts);
  auto reaction = controller.start();
  // Router must be pruned with the LB (a routing-only fast path would
  // forward VIP traffic un-NATed).
  bool lb_dropped = false, router_dropped = false;
  for (const std::string& d : reaction.dropped_fpms) {
    if (d.find("loadbalance") != std::string::npos) lb_dropped = true;
    if (d.find("router") != std::string::npos) router_dropped = true;
  }
  EXPECT_TRUE(lb_dropped);
  EXPECT_TRUE(router_dropped);

  // Correctness: VIP traffic still DNATed (by the slow path).
  net::FlowKey f;
  f.src_ip = net::Ipv4Addr::parse("10.10.1.2").value();
  f.dst_ip = net::Ipv4Addr::parse("10.0.0.100").value();
  f.proto = net::kIpProtoTcp;
  f.src_port = 1;
  f.dst_port = 80;
  kern::CycleTrace t;
  dut.kernel.rx(dut.eth0_ifindex(),
                net::build_tcp_packet(dut.src_host_mac, dut.eth0_mac(), f,
                                      0x18, 64),
                t);
  ASSERT_EQ(dut.tx_eth1.size(), 1u);
  EXPECT_EQ(net::parse_packet(dut.tx_eth1[0])->ip_dst.to_string(),
            "10.100.0.5");
}

}  // namespace
}  // namespace linuxfp::core
