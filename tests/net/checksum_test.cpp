#include "net/checksum.h"

#include <gtest/gtest.h>

#include <vector>

#include "net/headers.h"
#include "util/rng.h"

namespace linuxfp::net {
namespace {

// Byte-at-a-time reference: accumulate each byte at its big-endian weight
// with end-around carry. Deliberately structured nothing like the
// word-at-a-time production code.
std::uint16_t reference_fold(const std::vector<std::uint8_t>& data) {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    sum += static_cast<std::uint64_t>(data[i]) << ((i % 2 == 0) ? 8 : 0);
  }
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(sum);
}

TEST(Checksum, KnownVector) {
  // Classic RFC 1071 example header.
  std::vector<std::uint8_t> hdr = {0x45, 0x00, 0x00, 0x73, 0x00, 0x00,
                                   0x40, 0x00, 0x40, 0x11, 0x00, 0x00,
                                   0xc0, 0xa8, 0x00, 0x01, 0xc0, 0xa8,
                                   0x00, 0xc7};
  std::uint16_t csum = internet_checksum(hdr.data(), hdr.size());
  EXPECT_EQ(csum, 0xb861);
}

TEST(Checksum, ValidatesToAllOnes) {
  std::vector<std::uint8_t> hdr = {0x45, 0x00, 0x00, 0x73, 0x00, 0x00,
                                   0x40, 0x00, 0x40, 0x11, 0xb8, 0x61,
                                   0xc0, 0xa8, 0x00, 0x01, 0xc0, 0xa8,
                                   0x00, 0xc7};
  EXPECT_EQ(checksum_fold(hdr.data(), hdr.size()), 0xffff);
}

TEST(Checksum, OddLength) {
  std::vector<std::uint8_t> data = {0x01, 0x02, 0x03};
  // 0x0102 + 0x0300 = 0x0402
  EXPECT_EQ(checksum_fold(data.data(), data.size()), 0x0402);
}

TEST(Checksum, IncrementalUpdateMatchesRecompute) {
  std::vector<std::uint8_t> hdr = {0x45, 0x00, 0x00, 0x73, 0x00, 0x00,
                                   0x40, 0x00, 0x40, 0x11, 0x00, 0x00,
                                   0xc0, 0xa8, 0x00, 0x01, 0xc0, 0xa8,
                                   0x00, 0xc7};
  std::uint16_t before = internet_checksum(hdr.data(), hdr.size());
  hdr[10] = before >> 8;
  hdr[11] = before & 0xff;

  // Change TTL 0x40 -> 0x3f (the ttl/proto 16-bit word changes).
  std::uint16_t old_word = 0x4011;
  std::uint16_t new_word = 0x3f11;
  hdr[8] = 0x3f;
  std::uint16_t incremental = checksum_update16(before, old_word, new_word);

  hdr[10] = hdr[11] = 0;
  std::uint16_t recomputed = internet_checksum(hdr.data(), hdr.size());
  EXPECT_EQ(incremental, recomputed);
}

TEST(Checksum, IncrementalUpdateManySteps) {
  std::vector<std::uint8_t> hdr(20, 0);
  hdr[0] = 0x45;
  hdr[8] = 200;  // ttl
  hdr[9] = 6;
  std::uint16_t csum = internet_checksum(hdr.data(), hdr.size());
  for (int ttl = 200; ttl > 1; --ttl) {
    std::uint16_t old_word =
        static_cast<std::uint16_t>((ttl << 8) | hdr[9]);
    std::uint16_t new_word =
        static_cast<std::uint16_t>(((ttl - 1) << 8) | hdr[9]);
    csum = checksum_update16(csum, old_word, new_word);
    hdr[8] = static_cast<std::uint8_t>(ttl - 1);
    std::uint16_t expect = internet_checksum(hdr.data(), hdr.size());
    ASSERT_EQ(csum, expect) << "ttl=" << ttl;
  }
}

TEST(Checksum, DifferentialRandomBuffersOddAndEven) {
  util::Rng rng(0xc5c5);
  for (int trial = 0; trial < 500; ++trial) {
    std::size_t len = 1 + rng.next_below(97);  // odd and even, incl. tiny
    std::vector<std::uint8_t> data(len);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_below(256));
    std::uint16_t expect = reference_fold(data);
    ASSERT_EQ(checksum_fold(data.data(), data.size()), expect)
        << "trial " << trial << " len " << len;
    ASSERT_EQ(internet_checksum(data.data(), data.size()),
              static_cast<std::uint16_t>(~expect))
        << "trial " << trial << " len " << len;
  }
}

TEST(Checksum, DifferentialIncrementalUpdateRandomWords) {
  // For random (old_csum, old_val, new_val) the RFC 1624 update must agree
  // with recomputing the checksum of a buffer that embodies the change.
  util::Rng rng(0x1624);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<std::uint8_t> data(20);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_below(256));
    // Checksum field (word 5, bytes 10-11) is zero while computing.
    data[10] = data[11] = 0;
    std::uint16_t before = internet_checksum(data.data(), data.size());

    std::size_t word = 2 * rng.next_below(10);
    if (word == 10) word = 12;  // never mutate the checksum field itself
    std::uint16_t old_val =
        static_cast<std::uint16_t>((data[word] << 8) | data[word + 1]);
    std::uint16_t new_val = static_cast<std::uint16_t>(rng.next_below(65536));
    data[word] = static_cast<std::uint8_t>(new_val >> 8);
    data[word + 1] = static_cast<std::uint8_t>(new_val & 0xff);

    std::uint16_t incremental = checksum_update16(before, old_val, new_val);
    std::uint16_t recomputed = internet_checksum(data.data(), data.size());
    // ~sum folds can differ only in the 0x0000/0xffff (-0/+0) encoding; both
    // validate identically, so accept either representation.
    bool equal = incremental == recomputed ||
                 (incremental == 0xffff && recomputed == 0) ||
                 (incremental == 0 && recomputed == 0xffff);
    ASSERT_TRUE(equal) << "trial " << trial << " incremental=" << incremental
                       << " recomputed=" << recomputed;
  }
}

TEST(Checksum, UpdateEdgeOldChecksumAllOnes) {
  // RFC 1624 edge: a stored checksum of 0xffff (an all-zero header sums to
  // zero, so its inverted checksum is all ones). The buggy RFC 1071-style
  // update ~(~HC + c) mishandles this; eqn. 3 must survive it.
  std::vector<std::uint8_t> hdr(20, 0);
  std::uint16_t before = internet_checksum(hdr.data(), hdr.size());
  ASSERT_EQ(before, 0xffff);
  hdr[10] = before >> 8;
  hdr[11] = before & 0xff;

  // Set TTL=7 (word at bytes 8-9: 0x0000 -> 0x0700).
  std::uint16_t incremental = checksum_update16(before, 0x0000, 0x0700);
  hdr[8] = 7;
  hdr[10] = hdr[11] = 0;
  std::uint16_t recomputed = internet_checksum(hdr.data(), hdr.size());
  EXPECT_EQ(incremental, recomputed);
}

TEST(Checksum, UpdateEdgeUnchangedValueKeepsHeaderValid) {
  // old_val == new_val: the update must be a no-op as far as receivers are
  // concerned — after writing the result back, the header still validates
  // and a fresh decrement_ttl from it matches full recomputation.
  std::vector<std::uint8_t> hdr = {0x45, 0x00, 0x00, 0x73, 0x00, 0x00,
                                   0x40, 0x00, 0x40, 0x11, 0x00, 0x00,
                                   0xc0, 0xa8, 0x00, 0x01, 0xc0, 0xa8,
                                   0x00, 0xc7};
  std::uint16_t csum = internet_checksum(hdr.data(), hdr.size());
  std::uint16_t same = checksum_update16(csum, 0x4011, 0x4011);
  hdr[10] = same >> 8;
  hdr[11] = same & 0xff;
  Ipv4View ip(hdr.data());
  EXPECT_TRUE(ip.checksum_valid());

  // decrement_ttl's incremental path on top of the identity-updated header
  // equals recomputation from scratch.
  ip.decrement_ttl();
  std::uint16_t after_incr = ip.checksum();
  ip.update_checksum();
  EXPECT_EQ(after_incr, ip.checksum());
  EXPECT_EQ(ip.ttl(), 0x3f);
}

TEST(Checksum, DecrementTtlDifferentialAcrossRandomHeaders) {
  util::Rng rng(0x7713);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> hdr(20);
    for (auto& b : hdr) b = static_cast<std::uint8_t>(rng.next_below(256));
    hdr[0] = 0x45;  // valid IHL so header_len() is 20
    hdr[8] = static_cast<std::uint8_t>(2 + rng.next_below(250));  // ttl >= 2
    Ipv4View ip(hdr.data());
    ip.update_checksum();
    ASSERT_TRUE(ip.checksum_valid());

    ip.decrement_ttl();
    EXPECT_TRUE(ip.checksum_valid()) << "trial " << trial;
    std::uint16_t incremental = ip.checksum();
    ip.update_checksum();
    EXPECT_EQ(incremental, ip.checksum()) << "trial " << trial;
  }
}

}  // namespace
}  // namespace linuxfp::net
