#include "net/checksum.h"

#include <gtest/gtest.h>

#include <vector>

namespace linuxfp::net {
namespace {

TEST(Checksum, KnownVector) {
  // Classic RFC 1071 example header.
  std::vector<std::uint8_t> hdr = {0x45, 0x00, 0x00, 0x73, 0x00, 0x00,
                                   0x40, 0x00, 0x40, 0x11, 0x00, 0x00,
                                   0xc0, 0xa8, 0x00, 0x01, 0xc0, 0xa8,
                                   0x00, 0xc7};
  std::uint16_t csum = internet_checksum(hdr.data(), hdr.size());
  EXPECT_EQ(csum, 0xb861);
}

TEST(Checksum, ValidatesToAllOnes) {
  std::vector<std::uint8_t> hdr = {0x45, 0x00, 0x00, 0x73, 0x00, 0x00,
                                   0x40, 0x00, 0x40, 0x11, 0xb8, 0x61,
                                   0xc0, 0xa8, 0x00, 0x01, 0xc0, 0xa8,
                                   0x00, 0xc7};
  EXPECT_EQ(checksum_fold(hdr.data(), hdr.size()), 0xffff);
}

TEST(Checksum, OddLength) {
  std::vector<std::uint8_t> data = {0x01, 0x02, 0x03};
  // 0x0102 + 0x0300 = 0x0402
  EXPECT_EQ(checksum_fold(data.data(), data.size()), 0x0402);
}

TEST(Checksum, IncrementalUpdateMatchesRecompute) {
  std::vector<std::uint8_t> hdr = {0x45, 0x00, 0x00, 0x73, 0x00, 0x00,
                                   0x40, 0x00, 0x40, 0x11, 0x00, 0x00,
                                   0xc0, 0xa8, 0x00, 0x01, 0xc0, 0xa8,
                                   0x00, 0xc7};
  std::uint16_t before = internet_checksum(hdr.data(), hdr.size());
  hdr[10] = before >> 8;
  hdr[11] = before & 0xff;

  // Change TTL 0x40 -> 0x3f (the ttl/proto 16-bit word changes).
  std::uint16_t old_word = 0x4011;
  std::uint16_t new_word = 0x3f11;
  hdr[8] = 0x3f;
  std::uint16_t incremental = checksum_update16(before, old_word, new_word);

  hdr[10] = hdr[11] = 0;
  std::uint16_t recomputed = internet_checksum(hdr.data(), hdr.size());
  EXPECT_EQ(incremental, recomputed);
}

TEST(Checksum, IncrementalUpdateManySteps) {
  std::vector<std::uint8_t> hdr(20, 0);
  hdr[0] = 0x45;
  hdr[8] = 200;  // ttl
  hdr[9] = 6;
  std::uint16_t csum = internet_checksum(hdr.data(), hdr.size());
  for (int ttl = 200; ttl > 1; --ttl) {
    std::uint16_t old_word =
        static_cast<std::uint16_t>((ttl << 8) | hdr[9]);
    std::uint16_t new_word =
        static_cast<std::uint16_t>(((ttl - 1) << 8) | hdr[9]);
    csum = checksum_update16(csum, old_word, new_word);
    hdr[8] = static_cast<std::uint8_t>(ttl - 1);
    std::uint16_t expect = internet_checksum(hdr.data(), hdr.size());
    ASSERT_EQ(csum, expect) << "ttl=" << ttl;
  }
}

}  // namespace
}  // namespace linuxfp::net
