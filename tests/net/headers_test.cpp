#include "net/headers.h"

#include <gtest/gtest.h>

#include "net/checksum.h"

namespace linuxfp::net {
namespace {

FlowKey test_flow() {
  FlowKey f;
  f.src_ip = Ipv4Addr::parse("10.1.0.2").value();
  f.dst_ip = Ipv4Addr::parse("10.2.0.2").value();
  f.proto = kIpProtoUdp;
  f.src_port = 1234;
  f.dst_port = 5678;
  return f;
}

TEST(Builders, UdpPacketParsesBack) {
  auto src = MacAddr::from_id(1);
  auto dst = MacAddr::from_id(2);
  Packet pkt = build_udp_packet(src, dst, test_flow(), 64);
  EXPECT_EQ(pkt.size(), 64u);
  auto parsed = parse_packet(pkt);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->eth_src, src);
  EXPECT_EQ(parsed->eth_dst, dst);
  EXPECT_EQ(parsed->ethertype, kEtherTypeIpv4);
  EXPECT_TRUE(parsed->has_ipv4);
  EXPECT_EQ(parsed->ip_src.to_string(), "10.1.0.2");
  EXPECT_EQ(parsed->ip_dst.to_string(), "10.2.0.2");
  EXPECT_EQ(parsed->ip_proto, kIpProtoUdp);
  ASSERT_TRUE(parsed->has_ports);
  EXPECT_EQ(parsed->src_port, 1234);
  EXPECT_EQ(parsed->dst_port, 5678);
}

TEST(Builders, IpChecksumValid) {
  Packet pkt = build_udp_packet(MacAddr::from_id(1), MacAddr::from_id(2),
                                test_flow(), 128);
  Ipv4View ip(pkt.data() + kEthHdrLen);
  EXPECT_TRUE(ip.checksum_valid());
}

TEST(Builders, MinimumFrameSizeEnforced) {
  Packet pkt = build_udp_packet(MacAddr::from_id(1), MacAddr::from_id(2),
                                test_flow(), 10);
  EXPECT_EQ(pkt.size(), 60u);
}

TEST(Ipv4View, DecrementTtlKeepsChecksumValid) {
  Packet pkt = build_udp_packet(MacAddr::from_id(1), MacAddr::from_id(2),
                                test_flow(), 64, /*ttl=*/64);
  Ipv4View ip(pkt.data() + kEthHdrLen);
  for (int i = 0; i < 63; ++i) {
    ip.decrement_ttl();
    ASSERT_TRUE(ip.checksum_valid()) << "ttl=" << int{ip.ttl()};
  }
  EXPECT_EQ(ip.ttl(), 1);
}

TEST(Arp, RequestReplyRoundTrip) {
  auto smac = MacAddr::from_id(7);
  auto sip = Ipv4Addr::parse("10.0.0.1").value();
  auto tip = Ipv4Addr::parse("10.0.0.2").value();
  Packet req = build_arp_request(smac, sip, tip);
  auto parsed = parse_packet(req);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->eth_dst.is_broadcast());
  EXPECT_EQ(parsed->ethertype, kEtherTypeArp);

  ArpView arp(req.data() + kEthHdrLen);
  ArpFields f = arp.read();
  EXPECT_EQ(f.opcode, 1);
  EXPECT_EQ(f.sender_mac, smac);
  EXPECT_EQ(f.sender_ip, sip);
  EXPECT_EQ(f.target_ip, tip);

  auto tmac = MacAddr::from_id(8);
  Packet reply = build_arp_reply(tmac, tip, smac, sip);
  ArpView rarp(reply.data() + kEthHdrLen);
  ArpFields rf = rarp.read();
  EXPECT_EQ(rf.opcode, 2);
  EXPECT_EQ(rf.sender_mac, tmac);
  EXPECT_EQ(rf.sender_ip, tip);
  EXPECT_EQ(rf.target_mac, smac);
}

TEST(Vlan, InsertAndStrip) {
  Packet pkt = build_udp_packet(MacAddr::from_id(1), MacAddr::from_id(2),
                                test_flow(), 64);
  std::size_t before = pkt.size();
  insert_vlan_tag(pkt, 100);
  EXPECT_EQ(pkt.size(), before + 4);
  auto parsed = parse_packet(pkt);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->has_vlan);
  EXPECT_EQ(parsed->vlan_id, 100);
  EXPECT_EQ(parsed->ethertype, kEtherTypeIpv4);  // inner type
  EXPECT_TRUE(parsed->has_ipv4);
  EXPECT_EQ(parsed->ip_dst.to_string(), "10.2.0.2");

  strip_vlan_tag(pkt);
  EXPECT_EQ(pkt.size(), before);
  auto parsed2 = parse_packet(pkt);
  ASSERT_TRUE(parsed2.has_value());
  EXPECT_FALSE(parsed2->has_vlan);
  EXPECT_EQ(parsed2->ip_dst.to_string(), "10.2.0.2");
}

TEST(Vxlan, EncapDecapRoundTrip) {
  Packet inner = build_udp_packet(MacAddr::from_id(1), MacAddr::from_id(2),
                                  test_flow(), 100);
  Packet pkt = inner;
  auto outer_src = Ipv4Addr::parse("192.168.0.1").value();
  auto outer_dst = Ipv4Addr::parse("192.168.0.2").value();
  vxlan_encap(pkt, 4096, MacAddr::from_id(3), MacAddr::from_id(4), outer_src,
              outer_dst, 77);
  EXPECT_EQ(pkt.size(), inner.size() + 50);

  auto outer = parse_packet(pkt);
  ASSERT_TRUE(outer.has_value());
  EXPECT_EQ(outer->ip_src, outer_src);
  EXPECT_EQ(outer->ip_dst, outer_dst);
  EXPECT_EQ(outer->ip_proto, kIpProtoUdp);
  EXPECT_EQ(outer->dst_port, kVxlanPort);

  VxlanView vx(pkt.data() + outer->l4_offset + kUdpHdrLen);
  EXPECT_EQ(vx.vni(), 4096u);

  vxlan_decap(pkt);
  ASSERT_EQ(pkt.size(), inner.size());
  EXPECT_EQ(0, std::memcmp(pkt.data(), inner.data(), inner.size()));
}

TEST(Parse, RejectsTruncatedPackets) {
  Packet tiny(8);
  EXPECT_FALSE(parse_packet(tiny).has_value());

  Packet pkt = build_udp_packet(MacAddr::from_id(1), MacAddr::from_id(2),
                                test_flow(), 64);
  pkt.resize_data(kEthHdrLen + 10);  // truncated IP header
  EXPECT_FALSE(parse_packet(pkt).has_value());
}

TEST(Parse, FragmentHasNoPorts) {
  Packet pkt = build_udp_packet(MacAddr::from_id(1), MacAddr::from_id(2),
                                test_flow(), 64);
  Ipv4View ip(pkt.data() + kEthHdrLen);
  ip.set_frag_field(0x2000);  // MF set
  ip.update_checksum();
  auto parsed = parse_packet(pkt);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->ip_fragment);
  EXPECT_FALSE(parsed->has_ports);
}

TEST(Tcp, FlagsAccessors) {
  FlowKey f = test_flow();
  f.proto = kIpProtoTcp;
  Packet pkt = build_tcp_packet(MacAddr::from_id(1), MacAddr::from_id(2), f,
                                /*flags=*/0x12 /* SYN|ACK */, 64);
  auto parsed = parse_packet(pkt);
  ASSERT_TRUE(parsed.has_value());
  TcpView tcp(pkt.data() + parsed->l4_offset);
  EXPECT_TRUE(tcp.syn());
  EXPECT_TRUE(tcp.ack_flag());
  EXPECT_FALSE(tcp.fin());
  EXPECT_FALSE(tcp.rst());
}

TEST(Packet, WireSizeIncludesFraming) {
  Packet min_pkt(60);
  EXPECT_EQ(min_pkt.wire_size(), 84u);  // 64 frame + 20 preamble/IFG
  Packet big(1500);
  EXPECT_EQ(big.wire_size(), 1524u);
}

}  // namespace
}  // namespace linuxfp::net
