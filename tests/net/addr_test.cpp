#include <gtest/gtest.h>

#include "net/ipaddr.h"
#include "net/mac.h"

namespace linuxfp::net {
namespace {

TEST(Ipv4Addr, ParseAndFormat) {
  auto a = Ipv4Addr::parse("10.10.1.2");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->value(), 0x0A0A0102u);
  EXPECT_EQ(a->to_string(), "10.10.1.2");
}

TEST(Ipv4Addr, ParseRejectsBadInput) {
  EXPECT_FALSE(Ipv4Addr::parse("10.10.1").ok());
  EXPECT_FALSE(Ipv4Addr::parse("256.0.0.1").ok());
  EXPECT_FALSE(Ipv4Addr::parse("10.0.0.1x").ok());
  EXPECT_FALSE(Ipv4Addr::parse("").ok());
  EXPECT_FALSE(Ipv4Addr::parse("a.b.c.d").ok());
}

TEST(Ipv4Addr, Classification) {
  EXPECT_TRUE(Ipv4Addr::parse("224.0.0.1")->is_multicast());
  EXPECT_FALSE(Ipv4Addr::parse("223.0.0.1")->is_multicast());
  EXPECT_TRUE(Ipv4Addr::parse("255.255.255.255")->is_broadcast());
  EXPECT_TRUE(Ipv4Addr::parse("127.0.0.1")->is_loopback());
  EXPECT_TRUE(Ipv4Addr().is_zero());
}

TEST(Ipv4Prefix, CanonicalizesHostBits) {
  auto p = Ipv4Prefix::parse("10.10.1.77/24");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->to_string(), "10.10.1.0/24");
  EXPECT_EQ(p->prefix_len(), 24);
}

TEST(Ipv4Prefix, Contains) {
  auto p = Ipv4Prefix::parse("192.168.4.0/22").value();
  EXPECT_TRUE(p.contains(Ipv4Addr::parse("192.168.7.255").value()));
  EXPECT_FALSE(p.contains(Ipv4Addr::parse("192.168.8.0").value()));
  auto sub = Ipv4Prefix::parse("192.168.5.0/24").value();
  EXPECT_TRUE(p.contains(sub));
  EXPECT_FALSE(sub.contains(p));
}

TEST(Ipv4Prefix, DefaultRouteContainsEverything) {
  auto p = Ipv4Prefix::parse("0.0.0.0/0").value();
  EXPECT_TRUE(p.contains(Ipv4Addr::parse("1.2.3.4").value()));
  EXPECT_TRUE(p.contains(Ipv4Addr::parse("255.255.255.255").value()));
}

TEST(Ipv4Prefix, HostEnumeration) {
  auto p = Ipv4Prefix::parse("10.0.2.0/24").value();
  EXPECT_EQ(p.host(1).to_string(), "10.0.2.1");
  EXPECT_EQ(p.host(254).to_string(), "10.0.2.254");
}

TEST(Ipv4Prefix, BareAddressIsSlash32) {
  auto p = Ipv4Prefix::parse("10.9.0.1");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->prefix_len(), 32);
}

TEST(IfAddr, PreservesHostBits) {
  auto a = IfAddr::parse("10.10.1.1/24");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->addr.to_string(), "10.10.1.1");
  EXPECT_EQ(a->subnet().to_string(), "10.10.1.0/24");
  EXPECT_EQ(a->to_string(), "10.10.1.1/24");
}

TEST(MacAddr, ParseFormatRoundTrip) {
  auto m = MacAddr::parse("02:00:ab:cd:ef:01");
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->to_string(), "02:00:ab:cd:ef:01");
  EXPECT_FALSE(m->is_multicast());
  EXPECT_FALSE(MacAddr::parse("02:00:gg:00:00:00").ok());
  EXPECT_FALSE(MacAddr::parse("020000000000").ok());
}

TEST(MacAddr, Broadcast) {
  EXPECT_TRUE(MacAddr::broadcast().is_broadcast());
  EXPECT_TRUE(MacAddr::broadcast().is_multicast());
  EXPECT_TRUE(MacAddr::zero().is_zero());
}

TEST(MacAddr, FromIdUniqueAndUnicast) {
  auto a = MacAddr::from_id(1);
  auto b = MacAddr::from_id(2);
  EXPECT_NE(a, b);
  EXPECT_FALSE(a.is_multicast());
  EXPECT_EQ(a.bytes()[0], 0x02);  // locally administered
}

}  // namespace
}  // namespace linuxfp::net
