#include "net/packet.h"

#include <gtest/gtest.h>

#include <cstring>

namespace linuxfp::net {
namespace {

TEST(Packet, HeadroomPushPull) {
  Packet pkt(100);
  EXPECT_EQ(pkt.size(), 100u);
  EXPECT_EQ(pkt.headroom(), Packet::kDefaultHeadroom);

  pkt.data()[0] = 0xAB;
  std::uint8_t* front = pkt.push_front(20);
  EXPECT_EQ(pkt.size(), 120u);
  std::memset(front, 0x11, 20);
  EXPECT_EQ(pkt.data()[20], 0xAB);

  pkt.pull_front(20);
  EXPECT_EQ(pkt.size(), 100u);
  EXPECT_EQ(pkt.data()[0], 0xAB);
}

TEST(Packet, CopySemantics) {
  Packet a(50);
  a.data()[10] = 42;
  a.ingress_ifindex = 3;
  Packet b = a;
  b.data()[10] = 7;
  EXPECT_EQ(a.data()[10], 42);
  EXPECT_EQ(b.data()[10], 7);
  EXPECT_EQ(b.ingress_ifindex, 3u);
}

TEST(Packet, FromBytes) {
  std::uint8_t raw[4] = {1, 2, 3, 4};
  Packet pkt = Packet::from_bytes(raw, 4);
  EXPECT_EQ(pkt.size(), 4u);
  EXPECT_EQ(pkt.data()[3], 4);
}

TEST(Packet, ResizeData) {
  Packet pkt(10);
  pkt.resize_data(30);
  EXPECT_EQ(pkt.size(), 30u);
  pkt.resize_data(5);
  EXPECT_EQ(pkt.size(), 5u);
}

}  // namespace
}  // namespace linuxfp::net
