// Quickstart: the LinuxFP zero-to-accelerated walkthrough.
//
// 1. Bring up a two-port router using ONLY standard tools (ip/sysctl).
// 2. Start the LinuxFP controller daemon.
// 3. Watch it introspect the kernel, synthesize a minimal fast path and
//    deploy it atomically.
// 4. Send traffic and compare slow-path vs fast-path cost per packet.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "core/controller.h"
#include "kernel/commands.h"
#include "kernel/kernel.h"
#include "net/headers.h"

using namespace linuxfp;

int main() {
  // --- a simulated two-port Linux box -------------------------------------
  kern::Kernel kernel("demo-router");
  kernel.add_phys_dev("eth0");
  kernel.add_phys_dev("eth1");
  std::uint64_t delivered = 0;
  kernel.dev_by_name("eth1")->set_phys_tx(
      [&](net::Packet&&) { ++delivered; });

  // --- configure it exactly like a real router (iproute2 + sysctl) ---------
  const char* setup[] = {
      "ip link set eth0 up",
      "ip link set eth1 up",
      "ip addr add 10.10.1.1/24 dev eth0",
      "ip addr add 10.10.2.1/24 dev eth1",
      "sysctl -w net.ipv4.ip_forward=1",
      "ip route add 10.100.0.0/24 via 10.10.2.2 dev eth1",
      "ip neigh add 10.10.1.2 lladdr 02:00:00:00:05:01 dev eth0 nud permanent",
      "ip neigh add 10.10.2.2 lladdr 02:00:00:00:05:02 dev eth1 nud permanent",
  };
  for (const char* cmd : setup) {
    auto st = kern::run_command(kernel, cmd);
    if (!st.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", cmd, st.error().message.c_str());
      return 1;
    }
    std::printf("$ %s\n", cmd);
  }

  // --- a packet through plain Linux ----------------------------------------
  auto make_packet = [&] {
    net::FlowKey flow;
    flow.src_ip = net::Ipv4Addr::parse("10.10.1.2").value();
    flow.dst_ip = net::Ipv4Addr::parse("10.100.0.9").value();
    flow.src_port = 1234;
    flow.dst_port = 80;
    return net::build_udp_packet(net::MacAddr::parse("02:00:00:00:05:01").value(),
                                 kernel.dev_by_name("eth0")->mac(), flow, 64);
  };
  int eth0 = kernel.dev_by_name("eth0")->ifindex();

  kern::CycleTrace slow_trace;
  kernel.rx(eth0, make_packet(), slow_trace);
  std::printf("\n[linux slow path]   forwarded=%llu  cost=%llu cycles\n",
              (unsigned long long)delivered,
              (unsigned long long)slow_trace.total());

  // --- start the LinuxFP controller: no further user action required --------
  core::Controller controller(kernel);
  core::Reaction reaction = controller.start();
  std::printf("\n[controller] introspected the kernel, synthesized %zu "
              "program(s), %zu instructions, deployed in %.3f ms\n",
              reaction.programs, reaction.insns,
              reaction.wall_seconds * 1e3);
  std::printf("[controller] processing graph:\n%s\n",
              controller.current_graphs().dump(2).c_str());

  // --- the same packet now rides the synthesized XDP fast path ---------------
  kern::CycleTrace fast_trace;
  auto summary = kernel.rx(eth0, make_packet(), fast_trace);
  std::printf("\n[linuxfp fast path] forwarded=%llu  cost=%llu cycles  "
              "(fast_path=%s)\n",
              (unsigned long long)delivered,
              (unsigned long long)fast_trace.total(),
              summary.fast_path ? "yes" : "no");
  std::printf("\nspeedup: %.2fx fewer cycles per packet — transparently, "
              "with zero configuration changes.\n",
              double(slow_trace.total()) / double(fast_trace.total()));

  // --- live reconfiguration: the fast path follows the kernel ----------------
  (void)kern::run_command(kernel,
                          "iptables -A FORWARD -d 10.100.0.0/24 -j DROP");
  controller.run_once();
  kern::CycleTrace blocked_trace;
  auto blocked = kernel.rx(eth0, make_packet(), blocked_trace);
  std::printf("\nafter `iptables -A FORWARD -d 10.100.0.0/24 -j DROP`:\n"
              "  packet dropped on the fast path: %s (XDP_DROP)\n",
              blocked.drop == kern::Drop::kXdpDrop ? "yes" : "no");
  return 0;
}
