// AF_XDP user-space application example (paper §VIII: "add custom
// packet-processing applications in user space and use a special type of
// socket, called AF_XDP, that allows sending raw packets directly from the
// XDP layer to user space").
//
// A router keeps forwarding on the LinuxFP fast path while a user-space
// monitor receives a copy-free feed of DNS traffic selected by a custom XDP
// sampler chained in front of the synthesized fast path.
#include <cstdio>
#include <map>

#include "core/controller.h"
#include "ebpf/afxdp.h"
#include "ebpf/kernel_helpers.h"
#include "kernel/commands.h"

using namespace linuxfp;

int main() {
  kern::Kernel kernel("edge-router");
  kernel.add_phys_dev("eth0");
  kernel.add_phys_dev("eth1");
  std::uint64_t forwarded = 0;
  kernel.dev_by_name("eth1")->set_phys_tx(
      [&](net::Packet&&) { ++forwarded; });
  for (const char* cmd :
       {"ip link set eth0 up", "ip link set eth1 up",
        "ip addr add 10.10.1.1/24 dev eth0",
        "ip addr add 10.10.2.1/24 dev eth1",
        "sysctl -w net.ipv4.ip_forward=1",
        "ip route add 10.100.0.0/24 via 10.10.2.2 dev eth1",
        "ip neigh add 10.10.2.2 lladdr 02:00:00:00:05:02 dev eth1 "
        "nud permanent"}) {
    if (!kern::run_command(kernel, cmd).ok()) return 1;
  }

  core::Controller controller(kernel);
  controller.start();

  // Bind an AF_XDP socket on eth0's attachment and stand up an XSK map.
  ebpf::Attachment* att =
      controller.deployer().attachment("eth0", ebpf::HookType::kXdp);
  ebpf::AfXdpSocket monitor_socket;
  std::uint32_t slot = att->register_xsk(&monitor_socket);
  std::uint32_t xsk_map =
      att->maps().create("monitor_xsks", ebpf::MapType::kXskMap, 4, 4, 4);
  std::uint32_t key = 0;
  (void)att->maps().get(xsk_map)->update(
      reinterpret_cast<std::uint8_t*>(&key),
      reinterpret_cast<std::uint8_t*>(&slot));

  // Custom sampler snippet ahead of the synthesized FPMs: UDP/53 -> XSK.
  controller.set_custom_snippet([xsk_map](ebpf::ProgramBuilder& b) {
    using namespace ebpf;
    b.new_scope();
    b.mov_reg(kR2, kR7);
    b.add(kR2, 38);
    b.jgt_reg(kR2, kR8, b.scoped("skip"));
    b.ldx(kR2, kR7, 12, MemSize::kU16);
    b.be16(kR2);
    b.jne(kR2, 0x0800, b.scoped("skip"));
    b.ldx(kR2, kR7, 23, MemSize::kU8);
    b.jne(kR2, 17, b.scoped("skip"));
    b.ldx(kR2, kR7, 36, MemSize::kU16);
    b.be16(kR2);
    b.jne(kR2, 53, b.scoped("skip"));
    b.mov(kR1, xsk_map);
    b.mov(kR2, 0);
    b.call(kHelperRedirectMap);
    b.exit();
    b.label(b.scoped("skip"));
  });
  controller.run_once();

  // Traffic mix: mostly HTTP-ish forwarding + some DNS.
  int eth0 = kernel.dev_by_name("eth0")->ifindex();
  auto send = [&](std::uint16_t dport, std::uint8_t host) {
    net::FlowKey f;
    f.src_ip = net::Ipv4Addr::from_octets(10, 10, 1, host);
    f.dst_ip = net::Ipv4Addr::parse("10.100.0.9").value();
    f.proto = net::kIpProtoUdp;
    f.src_port = 4000;
    f.dst_port = dport;
    kern::CycleTrace t;
    kernel.rx(eth0,
              net::build_udp_packet(net::MacAddr::from_id(host),
                                    kernel.dev_by_name("eth0")->mac(), f, 96),
              t);
  };
  for (int i = 0; i < 50; ++i) {
    send(80, static_cast<std::uint8_t>(2 + i % 8));
    if (i % 5 == 0) send(53, static_cast<std::uint8_t>(2 + i % 8));
  }

  // The user-space monitor drains its ring.
  std::map<std::string, int> dns_clients;
  while (auto frame = monitor_socket.poll()) {
    auto parsed = net::parse_packet(*frame);
    if (parsed) dns_clients[parsed->ip_src.to_string()]++;
  }

  std::printf("forwarded on fast path: %llu packets (port 80 traffic)\n",
              (unsigned long long)forwarded);
  std::printf("DNS frames delivered to the user-space monitor: %llu\n",
              (unsigned long long)att->stats().to_userspace);
  std::printf("per-client DNS counts seen by the monitor app:\n");
  for (auto& [client, n] : dns_clients) {
    std::printf("  %-14s %d\n", client.c_str(), n);
  }
  std::printf("\nmonitored traffic never touched the Linux stack (slow-path "
              "packets: %llu); forwarding stayed accelerated throughout.\n",
              (unsigned long long)kernel.counters().slow_path_packets);
  return 0;
}
