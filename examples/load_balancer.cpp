// ipvs load-balancer extension (paper Table I last row + §VIII: "We have
// begun work on ipvs ... initial prototyping is showing promising results").
//
// Decomposition per Table I: the fast path performs parsing, conntrack
// lookup/update and NAT rewriting; connection *scheduling* (picking a
// backend for a NEW flow) stays in the slow path. Configuration is plain
// `ipvsadm` — the controller notices the services via introspection and
// synthesizes the loadbalance FPM transparently.
#include <cstdio>
#include <map>

#include "core/controller.h"
#include "kernel/commands.h"
#include "kernel/kernel.h"
#include "net/headers.h"

using namespace linuxfp;

int main() {
  kern::Kernel kernel("lb-director");
  kernel.add_phys_dev("eth0");
  kernel.add_phys_dev("eth1");
  std::vector<net::Packet> to_backends;
  kernel.dev_by_name("eth1")->set_phys_tx(
      [&](net::Packet&& p) { to_backends.push_back(std::move(p)); });

  for (const char* cmd :
       {"ip link set eth0 up", "ip link set eth1 up",
        "ip addr add 10.10.1.1/24 dev eth0",
        "ip addr add 10.10.2.1/24 dev eth1",
        "sysctl -w net.ipv4.ip_forward=1",
        "ip route add 10.100.0.0/24 via 10.10.2.2 dev eth1",
        "ip neigh add 10.10.2.2 lladdr 02:00:00:00:05:02 dev eth1 "
        "nud permanent",
        // The load balancer itself: one VIP, two weighted backends.
        "ipvsadm -A -t 10.0.0.100:80 -s rr",
        "ipvsadm -a -t 10.0.0.100:80 -r 10.100.0.5:8080 -w 2",
        "ipvsadm -a -t 10.0.0.100:80 -r 10.100.0.6:8080 -w 1"}) {
    auto st = kern::run_command(kernel, cmd);
    if (!st.ok()) {
      std::fprintf(stderr, "%s: %s\n", cmd, st.error().message.c_str());
      return 1;
    }
    std::printf("$ %s\n", cmd);
  }

  core::Controller controller(kernel);
  controller.start();
  std::printf("\ncontroller graphs now include a loadbalance FPM:\n%s\n",
              controller.current_graphs().dump(2).c_str());

  auto client_packet = [&](std::uint16_t sport) {
    net::FlowKey f;
    f.src_ip = net::Ipv4Addr::parse("10.10.1.2").value();
    f.dst_ip = net::Ipv4Addr::parse("10.0.0.100").value();  // the VIP
    f.proto = net::kIpProtoTcp;
    f.src_port = sport;
    f.dst_port = 80;
    return net::build_tcp_packet(net::MacAddr::from_id(1),
                                 kernel.dev_by_name("eth0")->mac(), f, 0x18,
                                 64);
  };
  int eth0 = kernel.dev_by_name("eth0")->ifindex();

  std::printf("six flows to VIP 10.0.0.100:80 (two packets each):\n");
  std::map<std::string, int> backend_counts;
  for (std::uint16_t flow = 0; flow < 6; ++flow) {
    kern::CycleTrace t1, t2;
    auto first = kernel.rx(eth0, client_packet(5000 + flow), t1);
    auto second = kernel.rx(eth0, client_packet(5000 + flow), t2);
    auto parsed = net::parse_packet(to_backends.back());
    backend_counts[parsed->ip_dst.to_string()]++;
    std::printf(
        "  flow %u -> %s:%u   1st pkt: %s (%llu cyc, scheduler ran)   "
        "2nd pkt: %s (%llu cyc)\n",
        flow, parsed->ip_dst.to_string().c_str(), parsed->dst_port,
        first.fast_path ? "fast" : "slow", (unsigned long long)t1.total(),
        second.fast_path ? "FAST" : "slow", (unsigned long long)t2.total());
  }
  std::printf("\nbackend distribution (weights 2:1): ");
  for (auto& [backend, n] : backend_counts) {
    std::printf("%s=%d  ", backend.c_str(), n);
  }
  std::printf("\nconntrack entries: %zu — shared by both paths; the FPM's "
              "bpf_ct_lookup serves the DNAT the slow path scheduled.\n",
              kernel.conntrack().size());
  return 0;
}
