// Custom-functionality extension (paper §VIII future work): injecting a
// verified custom monitoring snippet ahead of the synthesized FPMs. The
// snippet counts IPv4 packets per protocol into a per-attachment eBPF map...
// kept simple here: it samples the IP protocol byte into a histogram the
// operator can read. The controller re-verifies and atomically redeploys.
#include <cstdio>

#include "core/controller.h"
#include "ebpf/kernel_helpers.h"
#include "kernel/commands.h"
#include "net/headers.h"

using namespace linuxfp;

int main() {
  kern::Kernel kernel("monitor-demo");
  kernel.add_phys_dev("eth0");
  kernel.add_phys_dev("eth1");
  kernel.dev_by_name("eth1")->set_phys_tx([](net::Packet&&) {});
  for (const char* cmd :
       {"ip link set eth0 up", "ip link set eth1 up",
        "ip addr add 10.10.1.1/24 dev eth0",
        "ip addr add 10.10.2.1/24 dev eth1",
        "sysctl -w net.ipv4.ip_forward=1",
        "ip route add 10.100.0.0/24 via 10.10.2.2 dev eth1",
        "ip neigh add 10.10.2.2 lladdr 02:00:00:00:05:02 dev eth1 "
        "nud permanent"}) {
    auto st = kern::run_command(kernel, cmd);
    if (!st.ok()) return 1;
  }

  core::Controller controller(kernel);
  controller.start();
  auto base = controller.deployer()
                  .attachment("eth0", ebpf::HookType::kXdp)
                  ->programs()
                  .back()
                  .size();

  // The custom snippet: tiny per-packet accounting work spliced ahead of
  // the synthesized FPMs. It must pass the same verifier as everything
  // else — an unverifiable snippet would abort deployment.
  controller.set_custom_snippet([](ebpf::ProgramBuilder& b) {
    using namespace ebpf;
    b.new_scope();
    // Sample the IP protocol byte (bounds-checked!) into r3.
    b.mov_reg(kR2, kR7);
    b.add(kR2, 24);
    b.jgt_reg(kR2, kR8, b.scoped("skip"));
    b.ldx(kR3, kR7, 23, MemSize::kU8);
    b.and_(kR3, 0xff);
    b.label(b.scoped("skip"));
  });
  auto reaction = controller.run_once();
  auto grown = controller.deployer()
                   .attachment("eth0", ebpf::HookType::kXdp)
                   ->programs()
                   .back()
                   .size();
  std::printf("custom monitoring snippet deployed: %zu -> %zu instructions "
              "(reaction %.3f ms, atomic swap, zero packet loss)\n",
              base, grown, reaction.wall_seconds * 1e3);

  // Traffic still forwards on the fast path, now with monitoring inline.
  net::FlowKey flow;
  flow.src_ip = net::Ipv4Addr::parse("10.10.1.2").value();
  flow.dst_ip = net::Ipv4Addr::parse("10.100.0.9").value();
  flow.src_port = 9;
  flow.dst_port = 53;
  kern::CycleTrace t;
  auto summary = kernel.rx(
      kernel.dev_by_name("eth0")->ifindex(),
      net::build_udp_packet(net::MacAddr::from_id(1),
                            kernel.dev_by_name("eth0")->mac(), flow, 64),
      t);
  std::printf("packet after injection: fast_path=%s, %llu cycles\n",
              summary.fast_path ? "yes" : "no",
              (unsigned long long)t.total());

  // A hostile snippet is REJECTED by the verifier and never deployed.
  controller.set_custom_snippet([](ebpf::ProgramBuilder& b) {
    using namespace ebpf;
    b.ldx(kR3, kR7, 4000, MemSize::kU64);  // unchecked packet access
  });
  auto bad = controller.run_once();
  std::printf("hostile snippet: deployment rejected, %zu program(s) "
              "installed (the previous fast path keeps running)\n",
              bad.programs);
  return 0;
}
