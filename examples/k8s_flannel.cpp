// Kubernetes example (paper §VI-A2): a 3-node cluster with the Flannel VXLAN
// CNI. LinuxFP controllers run per node on the TC hook and accelerate
// pod-to-pod traffic with an UNMODIFIED network plugin — nothing in the
// cluster setup knows LinuxFP exists.
#include <cstdio>

#include "k8s/cluster.h"
#include "k8s/latency_model.h"

using namespace linuxfp;

namespace {
void report(const char* label, k8s::Cluster& cluster, const k8s::PodRef& a,
            const k8s::PodRef& b) {
  cluster.warm_path(a, b);
  auto rr = cluster.run_rr_transaction(a, b);
  k8s::PodLatencyModel model;
  std::printf("  %-12s %8llu cycles/rtt  -> modeled netperf TCP_RR "
              "%.2f ms avg\n",
              label, (unsigned long long)rr.cycles,
              model.mean_rtt_ms(rr.cycles, rr.underlay_crossings));
}
}  // namespace

int main() {
  std::printf("=== plain Linux cluster (flannel) ===\n");
  {
    k8s::Cluster cluster(2);
    auto a = cluster.launch_pod(1);
    auto b = cluster.launch_pod(1);  // same node
    auto c = cluster.launch_pod(2);  // remote node
    report("intra-node:", cluster, a, b);
    report("inter-node:", cluster, a, c);
  }

  std::printf("\n=== same cluster + LinuxFP controllers (tc hook) ===\n");
  {
    k8s::Cluster cluster(2);
    cluster.enable_linuxfp();  // the ONLY difference
    auto a = cluster.launch_pod(1);
    auto b = cluster.launch_pod(1);
    auto c = cluster.launch_pod(2);
    report("intra-node:", cluster, a, b);
    report("inter-node:", cluster, a, c);

    std::printf("\nper-node synthesized graphs (node 1):\n%s\n",
                cluster.controller(1)->current_graphs().dump(2).c_str());
    std::printf("fast-path packets handled on node 1: %llu\n",
                (unsigned long long)
                    cluster.node(1).counters().fast_path_packets);
  }
  std::printf("\nno kubelet, CNI, or pod change was needed: the controller "
              "introspected the bridge/veth/vxlan plumbing flannel created "
              "and accelerated it (paper §VI-A2).\n");
  return 0;
}
