// Virtual gateway example (paper §VI-A1): IP forwarding + a blacklist
// firewall at the network edge, configured with iptables/ipset, compared
// across plain Linux, LinuxFP with linear rules, and LinuxFP with the
// blacklist aggregated into one ipset-backed rule.
#include <cstdio>

#include "sim/runners.h"
#include "sim/testbed.h"

using namespace linuxfp;

namespace {
void run_variant(const char* name, sim::ScenarioConfig cfg) {
  sim::LinuxTestbed dut(cfg);

  // Verify policy first: blacklisted sources must be dropped...
  auto blocked = dut.process(dut.blacklisted_packet(7, 0));
  // ...and clean traffic forwarded.
  auto clean = dut.process(dut.forward_packet(3, 0));

  sim::ThroughputRunner runner(25e9, 3000);
  auto tput = runner.run(
      dut,
      [&](std::uint64_t i) {
        return dut.forward_packet(static_cast<int>(i % 50),
                                  static_cast<std::uint16_t>(i % 256));
      },
      /*cores=*/1, 64);

  std::printf("%-22s drop-blacklist=%s forward-clean=%s  %6.3f Mpps "
              "(%.0f cycles/pkt)\n",
              name, blocked.dropped_by_policy ? "ok" : "FAIL",
              clean.forwarded ? "ok" : "FAIL", tput.total_pps / 1e6,
              tput.mean_cycles_per_pkt);
}
}  // namespace

int main() {
  std::printf("virtual gateway: 50 prefixes + 100-address blacklist, one "
              "core, 64B packets\n\n");

  sim::ScenarioConfig cfg;
  cfg.prefixes = 50;
  cfg.filter_rules = 100;

  run_variant("Linux (iptables)", cfg);

  cfg.accel = sim::Accel::kLinuxFpXdp;
  run_variant("LinuxFP (iptables)", cfg);

  cfg.use_ipset = true;
  run_variant("LinuxFP (ipset)", cfg);

  std::printf("\nthe ipset variant collapses 100 rules into one set-backed "
              "rule (`ipset create` + `iptables -m set --match-set`): the "
              "fast path probes a hash instead of scanning rules — the Fig 8 "
              "effect.\n");
  return 0;
}
