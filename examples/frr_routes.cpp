// Routing-daemon example: the paper's claim that "control plane software,
// such as FRRouting (FRR), works without modification and transparently
// benefits from a faster network data plane" (§I).
//
// A mini route daemon (standing in for FRR's zebra) converges on a route
// table, installs it through the ordinary kernel interface, and keeps
// churning it — withdrawals, re-advertisements, metric changes — while
// traffic flows. The LinuxFP fast path stays coherent at every instant
// because its helpers read the live FIB; the controller only re-synthesizes
// when the derived graph changes.
#include <cstdio>
#include <vector>

#include "core/controller.h"
#include "kernel/commands.h"
#include "kernel/kernel.h"
#include "util/rng.h"

using namespace linuxfp;

namespace {
// The "FRR" stand-in: receives advertisements and programs the kernel.
class MiniZebra {
 public:
  explicit MiniZebra(kern::Kernel& kernel) : kernel_(kernel) {}

  void advertise(const std::string& prefix, const std::string& via) {
    (void)kern::run_command(kernel_,
                            "ip route add " + prefix + " via " + via +
                                " dev eth1");
    installed_.push_back(prefix);
  }
  void withdraw(const std::string& prefix) {
    (void)kern::run_command(kernel_, "ip route del " + prefix);
    for (auto it = installed_.begin(); it != installed_.end(); ++it) {
      if (*it == prefix) {
        installed_.erase(it);
        break;
      }
    }
  }
  const std::vector<std::string>& installed() const { return installed_; }

 private:
  kern::Kernel& kernel_;
  std::vector<std::string> installed_;
};
}  // namespace

int main() {
  kern::Kernel kernel("bgp-router");
  kernel.add_phys_dev("eth0");
  kernel.add_phys_dev("eth1");
  std::uint64_t forwarded = 0;
  kernel.dev_by_name("eth1")->set_phys_tx(
      [&](net::Packet&&) { ++forwarded; });
  for (const char* cmd :
       {"ip link set eth0 up", "ip link set eth1 up",
        "ip addr add 10.10.1.1/24 dev eth0",
        "ip addr add 10.10.2.1/24 dev eth1",
        "sysctl -w net.ipv4.ip_forward=1",
        "ip neigh add 10.10.2.2 lladdr 02:00:00:00:05:02 dev eth1 "
        "nud permanent"}) {
    if (!kern::run_command(kernel, cmd).ok()) return 1;
  }

  core::Controller controller(kernel);
  controller.start();
  MiniZebra zebra(kernel);

  // Initial convergence: 40 prefixes learned from peers.
  for (int i = 0; i < 40; ++i) {
    zebra.advertise("10." + std::to_string(100 + i) + ".0.0/16", "10.10.2.2");
  }
  controller.run_once();

  int eth0 = kernel.dev_by_name("eth0")->ifindex();
  auto send_to = [&](int prefix) {
    net::FlowKey f;
    f.src_ip = net::Ipv4Addr::parse("10.10.1.2").value();
    f.dst_ip = net::Ipv4Addr::from_octets(
        10, static_cast<std::uint8_t>(100 + prefix), 0, 9);
    f.src_port = 7;
    f.dst_port = 7;
    kern::CycleTrace t;
    auto s = kernel.rx(eth0,
                       net::build_udp_packet(
                           net::MacAddr::from_id(1),
                           kernel.dev_by_name("eth0")->mac(), f, 64),
                       t);
    return s.fast_path;
  };

  std::printf("converged: %zu routes installed via the Linux API\n",
              zebra.installed().size());
  std::printf("traffic to prefix 7 rides the fast path: %s\n",
              send_to(7) ? "yes" : "no");

  // Route churn while traffic flows: withdrawals are honoured by the very
  // next packet — no controller round-trip needed for FIB content changes.
  util::Rng rng(1);
  int flaps = 0, wrong = 0;
  for (int round = 0; round < 200; ++round) {
    int p = static_cast<int>(rng.next_below(40));
    std::string prefix = "10." + std::to_string(100 + p) + ".0.0/16";
    zebra.withdraw(prefix);
    ++flaps;
    std::uint64_t before = forwarded;
    send_to(p);  // must NOT be forwarded: route is gone
    if (forwarded != before) ++wrong;
    zebra.advertise(prefix, "10.10.2.2");
    before = forwarded;
    send_to(p);  // must be forwarded again
    if (forwarded == before) ++wrong;
    if (round % 20 == 0) controller.run_once();  // periodic daemon wakeup
  }
  std::printf("route flaps under traffic: %d, incoherent packets: %d\n",
              flaps, wrong);
  std::printf("controller resyntheses during churn: %llu (the graph shape "
              "never changed — only FIB content, which helpers read live)\n",
              (unsigned long long)controller.resynth_count());
  return wrong == 0 ? 0 : 1;
}
