#include "ebpf/insn.h"

#include <cstdio>

namespace linuxfp::ebpf {

const char* exec_engine_name(ExecEngine engine) {
  switch (engine) {
    case ExecEngine::kInterpreter: return "interpreter";
    case ExecEngine::kJit: return "jit";
  }
  return "?";
}

const char* op_name(Op op) {
  switch (op) {
    case Op::kMov: return "mov";
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kMul: return "mul";
    case Op::kDiv: return "div";
    case Op::kMod: return "mod";
    case Op::kAnd: return "and";
    case Op::kOr: return "or";
    case Op::kXor: return "xor";
    case Op::kLsh: return "lsh";
    case Op::kRsh: return "rsh";
    case Op::kArsh: return "arsh";
    case Op::kNeg: return "neg";
    case Op::kBe16: return "be16";
    case Op::kBe32: return "be32";
    case Op::kLdx: return "ldx";
    case Op::kStx: return "stx";
    case Op::kSt: return "st";
    case Op::kJa: return "ja";
    case Op::kJeq: return "jeq";
    case Op::kJne: return "jne";
    case Op::kJgt: return "jgt";
    case Op::kJge: return "jge";
    case Op::kJlt: return "jlt";
    case Op::kJle: return "jle";
    case Op::kJset: return "jset";
    case Op::kCall: return "call";
    case Op::kExit: return "exit";
  }
  return "?";
}

std::string disassemble(const Insn& insn) {
  char buf[96];
  switch (insn.op) {
    case Op::kLdx:
      std::snprintf(buf, sizeof(buf), "r%d = *(u%d*)(r%d %+d)", insn.dst,
                    static_cast<int>(insn.size) * 8, insn.src, insn.off);
      break;
    case Op::kStx:
      std::snprintf(buf, sizeof(buf), "*(u%d*)(r%d %+d) = r%d",
                    static_cast<int>(insn.size) * 8, insn.dst, insn.off,
                    insn.src);
      break;
    case Op::kSt:
      std::snprintf(buf, sizeof(buf), "*(u%d*)(r%d %+d) = %lld",
                    static_cast<int>(insn.size) * 8, insn.dst, insn.off,
                    static_cast<long long>(insn.imm));
      break;
    case Op::kCall:
      std::snprintf(buf, sizeof(buf), "call %lld",
                    static_cast<long long>(insn.imm));
      break;
    case Op::kExit:
      std::snprintf(buf, sizeof(buf), "exit");
      break;
    case Op::kJa:
      std::snprintf(buf, sizeof(buf), "ja %+d", insn.off);
      break;
    default:
      if (insn.op >= Op::kJeq) {
        if (insn.use_imm) {
          std::snprintf(buf, sizeof(buf), "%s r%d, %lld, %+d",
                        op_name(insn.op), insn.dst,
                        static_cast<long long>(insn.imm), insn.off);
        } else {
          std::snprintf(buf, sizeof(buf), "%s r%d, r%d, %+d",
                        op_name(insn.op), insn.dst, insn.src, insn.off);
        }
      } else if (insn.use_imm) {
        std::snprintf(buf, sizeof(buf), "%s r%d, %lld", op_name(insn.op),
                      insn.dst, static_cast<long long>(insn.imm));
      } else {
        std::snprintf(buf, sizeof(buf), "%s r%d, r%d", op_name(insn.op),
                      insn.dst, insn.src);
      }
  }
  return buf;
}

}  // namespace linuxfp::ebpf
