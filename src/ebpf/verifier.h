// Static verifier for simulated eBPF programs.
//
// Models the safety contract of the kernel verifier that LinuxFP relies on
// ("safety is provided through an in-kernel verifier of bytecode", paper
// §II-A): programs are rejected unless every memory access is provably in
// bounds on every execution path.
//
// Analysis: path-sensitive abstract interpretation over register states.
//  - register typing: uninit / scalar (with constant tracking) / stack ptr /
//    ctx ptr / packet ptr / packet-end ptr / map-value ptr (maybe-null);
//  - packet accesses require a dominating bounds check against data_end
//    (the canonical `if (data + N > data_end) return` pattern);
//  - map-value dereferences require a dominating null check;
//  - stack and ctx accesses are range-checked against their fixed sizes;
//  - only forward jumps are accepted (guaranteed termination; our code
//    generator never emits loops, mirroring pre-5.3 eBPF);
//  - helper calls are checked against the capability set (registered
//    helpers) and per-helper argument contracts; calls clobber r1-r5;
//  - exit requires an initialized r0.
#pragma once

#include <cstdint>
#include <string>

#include "ebpf/program.h"
#include "util/result.h"

namespace linuxfp::ebpf {

struct VerifyStats {
  std::size_t paths_explored = 0;
  std::size_t states_visited = 0;
};

struct VerifyOptions {
  const HelperRegistry* helpers = nullptr;  // capability set (required)
  const MapSet* maps = nullptr;             // for map id validation
  std::size_t max_states = 1 << 20;
};

// Returns ok on acceptance; error.code starts with "verifier." on rejection.
util::Status verify(const Program& prog, const VerifyOptions& options,
                    VerifyStats* stats = nullptr);

}  // namespace linuxfp::ebpf
