// Program representation and the helper-function registry.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ebpf/insn.h"
#include "ebpf/maps.h"
#include "net/packet.h"
#include "util/result.h"

namespace linuxfp::kern {
class Kernel;
}

namespace linuxfp::engine {
class FlowCacheRecorder;
}

namespace linuxfp::ebpf {

enum class HookType { kXdp, kTcIngress, kTcEgress };

const char* hook_type_name(HookType type);

// Stable names for well-known helper ids and XDP action codes; used by the
// observability layer for counter names and trace events (string literals,
// so they are safe to keep in cached structures).
const char* helper_name(std::uint32_t id);
const char* action_name(std::uint64_t ret);

struct JitProgram;  // ebpf/jit.h: direct-threaded translation of a Program

// Facts the verifier proves about a program, stashed on it for the loader
// and the translator (the real kernel keeps the analogous aux info on
// bpf_prog_aux). `analyzed` is false for directly-constructed programs that
// never went through verify().
struct VerifierInfo {
  bool analyzed = false;
  bool uses_tail_call = false;
  bool calls_redirect_map = false;  // XSK / devmap redirect helper
  std::uint32_t helper_calls = 0;   // static count of kCall sites
};

struct Program {
  std::string name;
  HookType hook = HookType::kXdp;
  std::vector<Insn> insns;

  std::size_t size() const { return insns.size(); }

  // Decoded twin of insns for the interpreter hot loop. The loader builds it
  // eagerly at load time (so concurrent per-CPU VMs only ever read it); the
  // lazy path in code() exists for directly-constructed test programs, which
  // are single-threaded. Mutating insns after a run requires decoded.clear().
  const std::vector<DecodedInsn>& code() const {
    if (decoded.size() != insns.size()) decode();
    return decoded;
  }
  void decode() const;
  mutable std::vector<DecodedInsn> decoded;

  // Direct-threaded translation (ebpf/jit.h), built at load time when the
  // attachment's execution engine is kJit; null means the translator refused
  // and runs demote to the interpreter. Shared (not unique) so Program stays
  // copyable; the stream is immutable once built. Mutating insns after
  // translation requires jit.reset().
  mutable std::shared_ptr<const JitProgram> jit;

  // Filled by verify() on acceptance.
  mutable VerifierInfo vinfo;
};

// Well-known helper ids (kernel-numbering where one exists).
inline constexpr std::uint32_t kHelperMapLookup = 1;
inline constexpr std::uint32_t kHelperMapUpdate = 2;
inline constexpr std::uint32_t kHelperMapDelete = 3;
inline constexpr std::uint32_t kHelperKtimeGetNs = 5;
inline constexpr std::uint32_t kHelperGetSmpProcessorId = 8;
inline constexpr std::uint32_t kHelperTailCall = 12;
inline constexpr std::uint32_t kHelperCsumDiff = 28;
inline constexpr std::uint32_t kHelperRedirect = 23;
inline constexpr std::uint32_t kHelperRedirectMap = 51;
inline constexpr std::uint32_t kHelperFibLookup = 69;
// Helpers the paper adds to the kernel (§V "Helper Functions"):
inline constexpr std::uint32_t kHelperFdbLookup = 200;
inline constexpr std::uint32_t kHelperIptLookup = 201;
// Extension helper for the ipvs-style load balancer (paper future work):
inline constexpr std::uint32_t kHelperCtLookup = 202;

class Vm;  // fwd

// Execution-time services available to helpers.
class HelperContext {
 public:
  HelperContext(Vm& vm, net::Packet* pkt, kern::Kernel* kernel,
                int ingress_ifindex)
      : vm_(vm), pkt_(pkt), kernel_(kernel), ingress_ifindex_(ingress_ifindex) {}

  net::Packet* packet() { return pkt_; }
  kern::Kernel* kernel() { return kernel_; }
  int ingress_ifindex() const { return ingress_ifindex_; }

  // The CPU the executing VM models: bpf_get_smp_processor_id's return value
  // and the slot per-CPU map helpers address.
  unsigned cpu() const;

  // Translates a tagged pointer to host memory with bounds checking.
  util::Result<std::uint8_t*> mem(std::uint64_t tagged, std::size_t len);

  // Charges extra cycles beyond the per-helper base cost.
  void charge(std::uint64_t cycles);

  // Records an XDP_REDIRECT target.
  void set_redirect(int ifindex);
  // Records an AF_XDP (XSK map) redirect target.
  void set_redirect_xsk(int slot);

  Map* map(std::uint32_t map_id);

  // Wraps raw storage (a map value) into a tagged pointer valid for the rest
  // of this program run.
  std::uint64_t make_map_value_ptr(std::uint8_t* base, std::size_t size);

  // Flow-cache recorder riding along with this run (null when the microflow
  // cache is off). Helpers report their kernel-subsystem dependencies and
  // replayable side effects through it.
  engine::FlowCacheRecorder* recorder();

 private:
  Vm& vm_;
  net::Packet* pkt_;
  kern::Kernel* kernel_;
  int ingress_ifindex_;
};

// r1..r5 in, r0 out.
using HelperFn = std::function<std::uint64_t(
    HelperContext&, std::uint64_t, std::uint64_t, std::uint64_t,
    std::uint64_t, std::uint64_t)>;

struct Helper {
  std::uint32_t id = 0;
  std::string name;
  HelperFn fn;
};

class HelperRegistry {
 public:
  void register_helper(std::uint32_t id, std::string name, HelperFn fn);
  const Helper* find(std::uint32_t id) const;
  bool supports(std::uint32_t id) const { return find(id) != nullptr; }
  std::vector<std::uint32_t> ids() const;

 private:
  std::map<std::uint32_t, Helper> helpers_;
};

// A set of maps shared by the programs of one attachment (prog array,
// devmap, plus whatever the platform created).
class MapSet {
 public:
  // Returns the new map's id.
  std::uint32_t create(std::string name, MapType type, std::uint32_t key_size,
                       std::uint32_t value_size, std::uint32_t max_entries);
  // Frees a map (close of its last FD). The id is never reused; get() on a
  // destroyed id returns nullptr. Used by the loader to clean up a partially
  // loaded object.
  void destroy(std::uint32_t id);
  Map* get(std::uint32_t id);
  const Map* get(std::uint32_t id) const;
  Map* by_name(const std::string& name);
  // Number of live (not destroyed) maps — the VM's "map table" population.
  std::size_t count() const;

 private:
  std::vector<std::unique_ptr<Map>> maps_;
};

}  // namespace linuxfp::ebpf
