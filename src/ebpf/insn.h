// The instruction set of the simulated eBPF virtual machine.
//
// A simplified-but-faithful model of eBPF bytecode: eleven 64-bit registers
// (r0 return value / scratch, r1-r5 argument/caller-saved, r6-r9
// callee-saved, r10 read-only frame pointer), a 512-byte stack, ALU64 ops,
// sized memory accesses, conditional forward jumps, helper calls and tail
// calls. Pointers are tagged with a memory region so the VM can bounds-check
// at runtime and the verifier can type-check statically.
#pragma once

#include <cstdint>
#include <string>

namespace linuxfp::ebpf {

inline constexpr int kNumRegs = 11;
inline constexpr int kR0 = 0;   // return value
inline constexpr int kR1 = 1;   // arg1 / ctx on entry
inline constexpr int kR2 = 2;
inline constexpr int kR3 = 3;
inline constexpr int kR4 = 4;
inline constexpr int kR5 = 5;
inline constexpr int kR6 = 6;   // callee-saved
inline constexpr int kR7 = 7;
inline constexpr int kR8 = 8;
inline constexpr int kR9 = 9;
inline constexpr int kR10 = 10;  // frame pointer (read-only)

inline constexpr std::size_t kStackSize = 512;
inline constexpr std::size_t kMaxInsns = 4096;
inline constexpr int kMaxTailCalls = 33;  // kernel's MAX_TAIL_CALL_CNT

// Execution backend for a Vm: the pre-decoded interpreter, or the
// direct-threaded translator (ebpf/jit.h). Selected per attachment by the
// loader; the translator falls back to the interpreter for anything it
// cannot prove (untranslated tail-call targets, XSK redirect programs).
enum class ExecEngine : std::uint8_t { kInterpreter = 0, kJit = 1 };
const char* exec_engine_name(ExecEngine engine);

// XDP/TC action codes returned in r0 (XDP numbering; TC programs reuse it
// via the attachment adapter).
inline constexpr std::uint64_t kActAborted = 0;
inline constexpr std::uint64_t kActDrop = 1;
inline constexpr std::uint64_t kActPass = 2;
inline constexpr std::uint64_t kActTx = 3;
inline constexpr std::uint64_t kActRedirect = 4;

enum class Op : std::uint8_t {
  // ALU64: dst = dst <op> (src register or immediate)
  kMov, kAdd, kSub, kMul, kDiv, kMod, kAnd, kOr, kXor, kLsh, kRsh, kArsh,
  kNeg,
  // Byte swaps (we expose be16/be32 conversions used for network fields).
  kBe16, kBe32,
  // Memory: kLdx dst = *(size*)(src + off); kStx *(size*)(dst + off) = src;
  // kSt *(size*)(dst + off) = imm.
  kLdx, kStx, kSt,
  // Jumps: target = pc + 1 + off. kJa unconditional; others compare dst
  // against src/imm.
  kJa, kJeq, kJne, kJgt, kJge, kJlt, kJle, kJset,
  // Helper call: imm = helper id.
  kCall,
  // Program exit: r0 is the action / return value.
  kExit,
};

enum class MemSize : std::uint8_t { kU8 = 1, kU16 = 2, kU32 = 4, kU64 = 8 };

struct Insn {
  Op op = Op::kExit;
  std::uint8_t dst = 0;
  std::uint8_t src = 0;
  bool use_imm = true;   // ALU/branch second operand: imm (true) or src reg
  std::int32_t off = 0;  // memory displacement or jump offset
  std::int64_t imm = 0;
  MemSize size = MemSize::kU64;
};

// Register-file slot that mirrors the current instruction's immediate; the
// interpreter's register array is sized kNumRegs + 1 so the second-operand
// fetch is a single unconditional indexed load (regs[src_sel]) instead of a
// per-instruction use_imm branch.
inline constexpr int kImmSlot = kNumRegs;

// Load-time decoded form of an Insn: the operand selector is resolved into
// a register-file index and jump targets are absolute, so the hot loop does
// no per-instruction re-derivation.
struct DecodedInsn {
  Op op = Op::kExit;
  std::uint8_t dst = 0;
  std::uint8_t src = 0;       // raw source register (pointer special cases)
  std::uint8_t src_sel = 0;   // regs[] index of the second operand (kImmSlot
                              // when use_imm)
  bool use_imm = true;
  MemSize size = MemSize::kU64;
  std::int32_t off = 0;
  std::int64_t imm = 0;
  std::size_t jump_target = 0;  // absolute pc for kJa / taken kJ*
};

// Pointer tagging: region in bits [56,64), payload in the low 48 bits.
enum class Region : std::uint8_t {
  kNone = 0,      // scalar
  kStack = 1,     // payload = offset into the 512-byte frame
  kPacket = 2,    // payload = offset into packet data
  kCtx = 3,       // payload = offset into the context struct
  kMapValue = 4,  // payload = (handle << 24) | offset
};

inline std::uint64_t make_ptr(Region region, std::uint64_t payload) {
  return (static_cast<std::uint64_t>(region) << 56) | (payload & 0xffffffffffffull);
}
inline Region ptr_region(std::uint64_t v) {
  return static_cast<Region>(v >> 56);
}
inline std::uint64_t ptr_payload(std::uint64_t v) {
  return v & 0xffffffffffffull;
}

// Context struct layout (xdp_md / __sk_buff merged analogue). All fields are
// u64 slots; data/data_end hold tagged packet pointers.
inline constexpr std::int32_t kCtxData = 0;
inline constexpr std::int32_t kCtxDataEnd = 8;
inline constexpr std::int32_t kCtxIfindex = 16;
inline constexpr std::int32_t kCtxRxQueue = 24;
inline constexpr std::int32_t kCtxVlanTci = 32;
inline constexpr std::int32_t kCtxSize = 40;

const char* op_name(Op op);
std::string disassemble(const Insn& insn);

}  // namespace linuxfp::ebpf
