// AF_XDP-style user-space socket (paper §VIII: "add custom packet-processing
// applications in user space and use a special type of socket, called
// AF_XDP, that allows sending raw packets directly from the XDP layer to
// user space").
//
// An XDP program redirects frames into an XSK map slot; the attachment
// copies the frame into the bound socket's RX ring, and the user application
// consumes it without any further kernel processing. The TX side injects raw
// frames back through a device.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "kernel/kernel.h"
#include "net/packet.h"

namespace linuxfp::ebpf {

class AfXdpSocket {
 public:
  explicit AfXdpSocket(std::size_t ring_size = 2048)
      : ring_size_(ring_size) {}

  // RX ring (filled by the attachment on XSK redirect).
  void push_rx(net::Packet&& pkt) {
    if (rx_ring_.size() >= ring_size_) {
      ++stats_.rx_ring_full;
      return;
    }
    ++stats_.rx_delivered;
    rx_ring_.push_back(std::move(pkt));
  }
  std::optional<net::Packet> poll() {
    if (rx_ring_.empty()) return std::nullopt;
    net::Packet pkt = std::move(rx_ring_.front());
    rx_ring_.pop_front();
    return pkt;
  }
  std::size_t pending() const { return rx_ring_.size(); }

  // TX: inject a raw frame out of a device (zero-copy send model).
  void send(kern::Kernel& kernel, int ifindex, net::Packet&& pkt) {
    kern::CycleTrace trace;
    ++stats_.tx_sent;
    kernel.dev_xmit(ifindex, std::move(pkt), trace);
  }

  struct Stats {
    std::uint64_t rx_delivered = 0;
    std::uint64_t rx_ring_full = 0;
    std::uint64_t tx_sent = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  std::size_t ring_size_;
  std::deque<net::Packet> rx_ring_;
  Stats stats_;
};

}  // namespace linuxfp::ebpf
