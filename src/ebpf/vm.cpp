#include "ebpf/vm.h"

#include <cstring>

#include "engine/flowcache.h"
#include "util/logging.h"

namespace linuxfp::ebpf {

void Program::decode() const {
  decoded.clear();
  decoded.reserve(insns.size());
  for (std::size_t pc = 0; pc < insns.size(); ++pc) {
    const Insn& in = insns[pc];
    DecodedInsn d;
    d.op = in.op;
    d.dst = in.dst;
    d.src = in.src;
    d.src_sel = in.use_imm ? static_cast<std::uint8_t>(kImmSlot) : in.src;
    d.use_imm = in.use_imm;
    d.size = in.size;
    d.off = in.off;
    d.imm = in.imm;
    d.jump_target = static_cast<std::size_t>(
        static_cast<std::int64_t>(pc) + 1 + in.off);
    decoded.push_back(d);
  }
}

// Helpers whose behaviour is a pure function of the packet bytes, the
// generation-guarded kernel subsystems and the recorded replay ops. Anything
// else (map access, ktime, custom test helpers) makes a run uncacheable.
bool flowcache_replayable_helper(std::uint32_t id) {
  switch (id) {
    case kHelperGetSmpProcessorId:  // per-CPU cache: cpu is fixed
    case kHelperRedirect:           // target captured in the verdict
    case kHelperCsumDiff:           // pure over bytes read via mem()
    case kHelperFibLookup:          // generation-guarded (fib/neigh/dev)
    case kHelperFdbLookup:          // generation-guarded + FDB replay op
    case kHelperIptLookup:          // generation-guarded + ct replay op
    case kHelperCtLookup:           // ct replay op
      return true;
    default:
      return false;
  }
}

const char* hook_type_name(HookType type) {
  switch (type) {
    case HookType::kXdp: return "xdp";
    case HookType::kTcIngress: return "tc_ingress";
    case HookType::kTcEgress: return "tc_egress";
  }
  return "?";
}

const char* helper_name(std::uint32_t id) {
  switch (id) {
    case kHelperMapLookup: return "map_lookup";
    case kHelperMapUpdate: return "map_update";
    case kHelperMapDelete: return "map_delete";
    case kHelperKtimeGetNs: return "ktime_get_ns";
    case kHelperGetSmpProcessorId: return "get_smp_processor_id";
    case kHelperTailCall: return "tail_call";
    case kHelperCsumDiff: return "csum_diff";
    case kHelperRedirect: return "redirect";
    case kHelperRedirectMap: return "redirect_map";
    case kHelperFibLookup: return "fib_lookup";
    case kHelperFdbLookup: return "fdb_lookup";
    case kHelperIptLookup: return "ipt_lookup";
    case kHelperCtLookup: return "ct_lookup";
  }
  return "unknown";
}

const char* action_name(std::uint64_t ret) {
  switch (ret) {
    case kActAborted: return "aborted";
    case kActDrop: return "drop";
    case kActPass: return "pass";
    case kActTx: return "tx";
    case kActRedirect: return "redirect";
  }
  return "invalid";
}

void Vm::set_metrics(util::MetricsRegistry* registry) {
  metrics_ = registry;
  helper_counters_.clear();
  if (!registry) {
    map_hits_ = map_misses_ = tail_call_counter_ = nullptr;
    return;
  }
  map_hits_ = registry->counter("ebpf.map.hits");
  map_misses_ = registry->counter("ebpf.map.misses");
  tail_call_counter_ = registry->counter("ebpf.tail_calls");
  // Resolve every registered helper's counter now: counter creation mutates
  // the registry and is only safe on the control plane, while run() may
  // execute on an engine worker thread.
  for (std::uint32_t id : helpers_.ids()) helper_counter(id);
}

util::Counter* Vm::helper_counter(std::uint32_t helper_id) {
  if (helper_counters_.size() <= helper_id) {
    helper_counters_.resize(helper_id + 1, nullptr);
  }
  util::Counter*& slot = helper_counters_[helper_id];
  if (!slot) {
    slot = metrics_->counter(std::string("ebpf.helper.") +
                             helper_name(helper_id) + ".calls");
  }
  return slot;
}

// --- HelperRegistry / MapSet --------------------------------------------------

void HelperRegistry::register_helper(std::uint32_t id, std::string name,
                                     HelperFn fn) {
  helpers_[id] = Helper{id, std::move(name), std::move(fn)};
}

const Helper* HelperRegistry::find(std::uint32_t id) const {
  auto it = helpers_.find(id);
  return it == helpers_.end() ? nullptr : &it->second;
}

std::vector<std::uint32_t> HelperRegistry::ids() const {
  std::vector<std::uint32_t> out;
  for (const auto& [id, h] : helpers_) out.push_back(id);
  return out;
}

std::uint32_t MapSet::create(std::string name, MapType type,
                             std::uint32_t key_size, std::uint32_t value_size,
                             std::uint32_t max_entries) {
  maps_.push_back(
      std::make_unique<Map>(std::move(name), type, key_size, value_size,
                            max_entries));
  return static_cast<std::uint32_t>(maps_.size() - 1);
}

Map* MapSet::get(std::uint32_t id) {
  return id < maps_.size() ? maps_[id].get() : nullptr;
}

const Map* MapSet::get(std::uint32_t id) const {
  return id < maps_.size() ? maps_[id].get() : nullptr;
}

void MapSet::destroy(std::uint32_t id) {
  if (id < maps_.size()) maps_[id].reset();
}

Map* MapSet::by_name(const std::string& name) {
  for (auto& m : maps_) {
    if (m && m->name() == name) return m.get();
  }
  return nullptr;
}

std::size_t MapSet::count() const {
  std::size_t n = 0;
  for (const auto& m : maps_) n += m != nullptr;
  return n;
}

// --- HelperContext ------------------------------------------------------------

util::Result<std::uint8_t*> HelperContext::mem(std::uint64_t tagged,
                                               std::size_t len) {
  auto r = vm_.translate(tagged, len);
  // Helpers receive an untyped span; conservatively treat packet-region
  // accesses as both read and written for the flow-cache diff.
  if (r.ok() && vm_.state_->recorder &&
      ptr_region(tagged) == Region::kPacket) {
    vm_.state_->recorder->note_packet_read(ptr_payload(tagged), len);
    vm_.state_->recorder->note_packet_write(ptr_payload(tagged), len);
  }
  return r;
}

engine::FlowCacheRecorder* HelperContext::recorder() {
  return vm_.state_->recorder;
}

void HelperContext::charge(std::uint64_t cycles) {
  vm_.state_->extra_cycles += cycles;
}

void HelperContext::set_redirect(int ifindex) {
  vm_.state_->redirect_ifindex = ifindex;
}

void HelperContext::set_redirect_xsk(int slot) {
  vm_.state_->redirect_xsk = slot;
}

Map* HelperContext::map(std::uint32_t map_id) { return vm_.maps_.get(map_id); }

unsigned HelperContext::cpu() const { return vm_.cpu(); }

std::uint64_t HelperContext::make_map_value_ptr(std::uint8_t* base,
                                                std::size_t size) {
  auto& spans = vm_.state_->spans;
  spans.push_back({base, size});
  return make_ptr(Region::kMapValue,
                  (static_cast<std::uint64_t>(spans.size() - 1) << 24));
}

// --- Vm -----------------------------------------------------------------------

util::Result<std::uint8_t*> Vm::translate(std::uint64_t tagged,
                                          std::size_t len) {
  LFP_CHECK(state_ != nullptr);
  Region region = ptr_region(tagged);
  std::uint64_t payload = ptr_payload(tagged);
  switch (region) {
    case Region::kStack:
      if (payload + len > kStackSize) {
        return util::Error::make("vm.oob", "stack access out of bounds");
      }
      return state_->stack + payload;
    case Region::kPacket:
      if (!state_->pkt || payload + len > state_->pkt->size()) {
        return util::Error::make("vm.oob", "packet access out of bounds");
      }
      return state_->pkt->data() + payload;
    case Region::kCtx:
      if (payload + len > kCtxSize) {
        return util::Error::make("vm.oob", "ctx access out of bounds");
      }
      return state_->ctx + payload;
    case Region::kMapValue: {
      std::uint64_t handle = payload >> 24;
      std::uint64_t off = payload & 0xffffff;
      if (handle >= state_->spans.size()) {
        return util::Error::make("vm.oob", "bad map value handle");
      }
      auto& span = state_->spans[handle];
      if (off + len > span.size) {
        return util::Error::make("vm.oob", "map value access out of bounds");
      }
      return span.base + off;
    }
    case Region::kNone:
      break;
  }
  return util::Error::make("vm.badptr", "dereference of scalar value");
}

using vmops::load_sized;
using vmops::ptr_add;
using vmops::store_sized;

VmResult Vm::run(const Program& entry_prog, net::Packet& pkt,
                 int ingress_ifindex, kern::Kernel* kernel,
                 engine::FlowCacheRecorder* recorder) {
  VmResult result;
  RunState state;
  state.pkt = &pkt;
  state.recorder = recorder;
  std::memset(state.stack, 0, sizeof(state.stack));
  std::memset(state.ctx, 0, sizeof(state.ctx));
  std::memset(state.regs, 0, sizeof(state.regs));

  // Populate the context struct.
  store_sized(state.ctx + kCtxData, MemSize::kU64, make_ptr(Region::kPacket, 0));
  store_sized(state.ctx + kCtxDataEnd, MemSize::kU64,
              make_ptr(Region::kPacket, pkt.size()));
  store_sized(state.ctx + kCtxIfindex, MemSize::kU64,
              static_cast<std::uint64_t>(ingress_ifindex));
  store_sized(state.ctx + kCtxRxQueue, MemSize::kU64, pkt.rx_queue);
  store_sized(state.ctx + kCtxVlanTci, MemSize::kU64, pkt.vlan_tci);

  state.regs[kR1] = make_ptr(Region::kCtx, 0);
  state.regs[kR10] = make_ptr(Region::kStack, kStackSize);

  state_ = &state;
  struct StateGuard {
    Vm& vm;
    ~StateGuard() { vm.state_ = nullptr; }
  } guard{*this};

  HelperContext hctx(*this, &pkt, kernel, ingress_ifindex);

  if (engine_ == ExecEngine::kJit) {
    return run_jit(entry_prog, hctx, std::move(result));
  }
  return interpret(entry_prog, hctx, std::move(result));
}

VmResult Vm::interpret(const Program& entry_prog, HelperContext& hctx,
                       VmResult result) {
  RunState& state = *state_;
  engine::FlowCacheRecorder* recorder = state.recorder;

  const Program* prog = &entry_prog;
  // Hot loop runs over the pre-decoded instruction stream: operand selector
  // and jump targets were resolved at load time (Program::decode).
  const DecodedInsn* code = prog->code().data();
  std::size_t prog_size = prog->insns.size();
  std::size_t pc = 0;
  // Carried in from the translator on a mid-run demotion (zero otherwise) so
  // cycle accounting is identical whichever engine ran each instruction.
  std::uint64_t executed = result.insns_executed;
  constexpr std::uint64_t kMaxExecuted = 1u << 20;

  auto fail = [&](const std::string& why) {
    result.aborted = true;
    result.error = why;
    result.ret = kActAborted;
    result.insns_executed = executed;
    result.cycles = executed * cost_.bpf_insn + state.extra_cycles;
    for (int r = 0; r < kNumRegs; ++r) result.regs[r] = state.regs[r];
    return result;
  };

  while (true) {
    if (pc >= prog_size) {
      return fail("pc out of bounds (missing exit?)");
    }
    if (++executed > kMaxExecuted) {
      return fail("instruction budget exceeded");
    }
    const DecodedInsn& insn = code[pc];
    auto& regs = state.regs;
    // The imm slot mirrors this instruction's immediate, so the second
    // operand is one unconditional indexed load (no use_imm branch).
    regs[kImmSlot] = static_cast<std::uint64_t>(insn.imm);
    std::uint64_t src_val = regs[insn.src_sel];

    switch (insn.op) {
      case Op::kMov:
        regs[insn.dst] = src_val;
        ++pc;
        break;
      case Op::kAdd:
        regs[insn.dst] = ptr_region(regs[insn.dst]) != Region::kNone
                             ? ptr_add(regs[insn.dst],
                                       static_cast<std::int64_t>(src_val))
                             : regs[insn.dst] + src_val;
        ++pc;
        break;
      case Op::kSub:
        if (ptr_region(regs[insn.dst]) != Region::kNone &&
            !insn.use_imm && ptr_region(regs[insn.src]) ==
                ptr_region(regs[insn.dst])) {
          // pointer - pointer = scalar distance
          regs[insn.dst] =
              ptr_payload(regs[insn.dst]) - ptr_payload(regs[insn.src]);
        } else if (ptr_region(regs[insn.dst]) != Region::kNone) {
          regs[insn.dst] =
              ptr_add(regs[insn.dst], -static_cast<std::int64_t>(src_val));
        } else {
          regs[insn.dst] -= src_val;
        }
        ++pc;
        break;
      case Op::kMul: regs[insn.dst] *= src_val; ++pc; break;
      case Op::kDiv:
        if (src_val == 0) return fail("division by zero");
        regs[insn.dst] /= src_val;
        ++pc;
        break;
      case Op::kMod:
        if (src_val == 0) return fail("mod by zero");
        regs[insn.dst] %= src_val;
        ++pc;
        break;
      case Op::kAnd: regs[insn.dst] &= src_val; ++pc; break;
      case Op::kOr: regs[insn.dst] |= src_val; ++pc; break;
      case Op::kXor: regs[insn.dst] ^= src_val; ++pc; break;
      case Op::kLsh: regs[insn.dst] <<= (src_val & 63); ++pc; break;
      case Op::kRsh: regs[insn.dst] >>= (src_val & 63); ++pc; break;
      case Op::kArsh:
        regs[insn.dst] = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(regs[insn.dst]) >>
            (src_val & 63));
        ++pc;
        break;
      case Op::kNeg:
        regs[insn.dst] = static_cast<std::uint64_t>(
            -static_cast<std::int64_t>(regs[insn.dst]));
        ++pc;
        break;
      case Op::kBe16: {
        std::uint16_t v = static_cast<std::uint16_t>(regs[insn.dst]);
        regs[insn.dst] = static_cast<std::uint16_t>((v >> 8) | (v << 8));
        ++pc;
        break;
      }
      case Op::kBe32: {
        std::uint32_t v = static_cast<std::uint32_t>(regs[insn.dst]);
        regs[insn.dst] = ((v >> 24) & 0xff) | ((v >> 8) & 0xff00) |
                         ((v << 8) & 0xff0000) | (v << 24);
        ++pc;
        break;
      }
      case Op::kLdx: {
        std::uint64_t addr = ptr_add(regs[insn.src], insn.off);
        auto mem = translate(addr, static_cast<std::size_t>(insn.size));
        if (!mem.ok()) return fail(mem.error().message);
        if (recorder && ptr_region(addr) == Region::kPacket) {
          recorder->note_packet_read(ptr_payload(addr),
                                     static_cast<std::size_t>(insn.size));
        }
        regs[insn.dst] = load_sized(mem.value(), insn.size);
        ++pc;
        break;
      }
      case Op::kStx: {
        std::uint64_t addr = ptr_add(regs[insn.dst], insn.off);
        auto mem = translate(addr, static_cast<std::size_t>(insn.size));
        if (!mem.ok()) return fail(mem.error().message);
        if (recorder && ptr_region(addr) == Region::kPacket) {
          recorder->note_packet_write(ptr_payload(addr),
                                      static_cast<std::size_t>(insn.size));
        }
        store_sized(mem.value(), insn.size, regs[insn.src]);
        ++pc;
        break;
      }
      case Op::kSt: {
        std::uint64_t addr = ptr_add(regs[insn.dst], insn.off);
        auto mem = translate(addr, static_cast<std::size_t>(insn.size));
        if (!mem.ok()) return fail(mem.error().message);
        if (recorder && ptr_region(addr) == Region::kPacket) {
          recorder->note_packet_write(ptr_payload(addr),
                                      static_cast<std::size_t>(insn.size));
        }
        store_sized(mem.value(), insn.size,
                    static_cast<std::uint64_t>(insn.imm));
        ++pc;
        break;
      }
      case Op::kJa:
        pc = insn.jump_target;
        break;
      case Op::kJeq:
      case Op::kJne:
      case Op::kJgt:
      case Op::kJge:
      case Op::kJlt:
      case Op::kJle:
      case Op::kJset: {
        std::uint64_t a = regs[insn.dst];
        std::uint64_t b = src_val;
        // Pointer comparisons compare payloads within the same region (the
        // data_end bounds-check pattern).
        if (ptr_region(a) != Region::kNone && !insn.use_imm &&
            ptr_region(b) == ptr_region(a)) {
          a = ptr_payload(a);
          b = ptr_payload(b);
        }
        bool take = false;
        switch (insn.op) {
          case Op::kJeq: take = a == b; break;
          case Op::kJne: take = a != b; break;
          case Op::kJgt: take = a > b; break;
          case Op::kJge: take = a >= b; break;
          case Op::kJlt: take = a < b; break;
          case Op::kJle: take = a <= b; break;
          case Op::kJset: take = (a & b) != 0; break;
          default: break;
        }
        pc = take ? insn.jump_target : pc + 1;
        break;
      }
      case Op::kCall: {
        auto helper_id = static_cast<std::uint32_t>(insn.imm);
        if (helper_id == kHelperTailCall) {
          // bpf_tail_call(ctx=r1, prog_array=r2(map id), index=r3)
          if (result.tail_calls + 1 > kMaxTailCalls) {
            return fail("tail call limit exceeded");
          }
          Map* prog_array = maps_.get(static_cast<std::uint32_t>(regs[kR2]));
          if (!prog_array || prog_array->type() != MapType::kProgArray) {
            return fail("tail call on non prog-array map");
          }
          auto target =
              prog_array->prog_at(static_cast<std::uint32_t>(regs[kR3]));
          if (!target || !prog_table_ ||
              *target >= prog_table_->size()) {
            // Miss: like the kernel, fall through to the next instruction.
            regs[kR0] = static_cast<std::uint64_t>(-1);
            ++pc;
            break;
          }
          ++result.tail_calls;
          state.extra_cycles += cost_.bpf_tail_call;
          if (metrics_ && metrics_->enabled()) util::bump(tail_call_counter_);
          if (auto* t = util::active_packet_trace()) {
            t->add("ebpf", "tail_call", cost_.bpf_tail_call,
                   (*prog_table_)[*target].name);
          }
          prog = &(*prog_table_)[*target];
          code = prog->code().data();
          prog_size = prog->insns.size();
          pc = 0;
          // Tail call preserves only the context pointer convention: r1 is
          // re-established; caller-saved state is lost.
          regs[kR1] = make_ptr(Region::kCtx, 0);
          break;
        }
        const Helper* helper = helpers_.find(helper_id);
        if (!helper) return fail("unknown helper " + std::to_string(helper_id));
        if (recorder && !flowcache_replayable_helper(helper_id)) {
          // Map contents, time and custom helpers are outside the
          // generation-guarded replay model.
          recorder->mark_uncacheable("helper escapes replay model");
        }
        std::uint64_t cycles_before = state.extra_cycles;
        state.extra_cycles += cost_.bpf_helper_base;
        regs[kR0] = helper->fn(hctx, regs[kR1], regs[kR2], regs[kR3],
                               regs[kR4], regs[kR5]);
        if (metrics_ && metrics_->enabled()) {
          util::bump(helper_counter(helper_id));
          if (helper_id == kHelperMapLookup) {
            util::bump(regs[kR0] != 0 ? map_hits_ : map_misses_);
          }
        }
        if (auto* t = util::active_packet_trace()) {
          // Helper base cost plus whatever the helper charged itself.
          t->add("ebpf", helper_name(helper_id),
                 state.extra_cycles - cycles_before);
        }
        // r1-r5 are clobbered by calls.
        for (int r = kR1; r <= kR5; ++r) regs[r] = 0;
        ++pc;
        break;
      }
      case Op::kExit: {
        result.ret = regs[kR0];
        result.redirect_ifindex = state.redirect_ifindex;
        result.redirect_xsk = state.redirect_xsk;
        result.insns_executed = executed;
        result.cycles = executed * cost_.bpf_insn + state.extra_cycles;
        for (int r = 0; r < kNumRegs; ++r) result.regs[r] = state.regs[r];
        if (auto* t = util::active_packet_trace()) {
          t->add("ebpf", "exit", result.cycles, action_name(result.ret));
        }
        return result;
      }
    }
  }
}

}  // namespace linuxfp::ebpf
