#include "ebpf/kernel_helpers.h"

#include <cstring>

#include "engine/flowcache.h"
#include "kernel/kernel.h"
#include "net/checksum.h"
#include "util/logging.h"

namespace linuxfp::ebpf {

namespace {

std::uint32_t load_u32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
std::uint16_t load_u16(const std::uint8_t* p) {
  std::uint16_t v;
  std::memcpy(&v, p, 2);
  return v;
}
void store_u32(std::uint8_t* p, std::uint32_t v) { std::memcpy(p, &v, 4); }

const kern::CostModel& cost_of(HelperContext& ctx,
                               const kern::CostModel& fallback) {
  return ctx.kernel() ? ctx.kernel()->cost() : fallback;
}

// --- generic helpers ---------------------------------------------------------

void register_generic(HelperRegistry& registry, const kern::CostModel& cost) {
  registry.register_helper(
      kHelperMapLookup, "bpf_map_lookup_elem",
      [cost](HelperContext& ctx, std::uint64_t r1, std::uint64_t r2,
             std::uint64_t, std::uint64_t, std::uint64_t) -> std::uint64_t {
        Map* map = ctx.map(static_cast<std::uint32_t>(r1));
        if (!map) return 0;
        auto key = ctx.mem(r2, map->key_size());
        if (!key.ok()) return 0;
        const kern::CostModel& c = cost_of(ctx, cost);
        ctx.charge(map->is_array_like()
                       ? c.bpf_map_array
                       : (map->type() == MapType::kLpmTrie ? c.bpf_map_lpm
                                                           : c.bpf_map_hash));
        // On a per-CPU map this yields the running CPU's slot, so concurrent
        // workers each write private bytes (this_cpu_ptr semantics).
        std::uint8_t* value = map->lookup(key.value(), ctx.cpu());
        if (!value) return 0;
        return ctx.make_map_value_ptr(value, map->value_size());
      });

  registry.register_helper(
      kHelperMapUpdate, "bpf_map_update_elem",
      [cost](HelperContext& ctx, std::uint64_t r1, std::uint64_t r2,
             std::uint64_t r3, std::uint64_t, std::uint64_t) -> std::uint64_t {
        Map* map = ctx.map(static_cast<std::uint32_t>(r1));
        if (!map) return static_cast<std::uint64_t>(-1);
        auto key = ctx.mem(r2, map->key_size());
        auto value = ctx.mem(r3, map->value_size());
        if (!key.ok() || !value.ok()) return static_cast<std::uint64_t>(-1);
        const kern::CostModel& c = cost_of(ctx, cost);
        ctx.charge(map->is_array_like() ? c.bpf_map_array : c.bpf_map_hash);
        // Program-side per-CPU update touches only this CPU's slot (and, for
        // per-CPU hashes, fails on a missing key rather than inserting).
        return map->update_cpu(key.value(), value.value(), ctx.cpu()).ok()
                   ? 0
                   : static_cast<std::uint64_t>(-1);
      });

  registry.register_helper(
      kHelperMapDelete, "bpf_map_delete_elem",
      [cost](HelperContext& ctx, std::uint64_t r1, std::uint64_t r2,
             std::uint64_t, std::uint64_t, std::uint64_t) -> std::uint64_t {
        Map* map = ctx.map(static_cast<std::uint32_t>(r1));
        if (!map) return static_cast<std::uint64_t>(-1);
        auto key = ctx.mem(r2, map->key_size());
        if (!key.ok()) return static_cast<std::uint64_t>(-1);
        const kern::CostModel& c = cost_of(ctx, cost);
        ctx.charge(map->is_array_like() ? c.bpf_map_array : c.bpf_map_hash);
        return map->erase(key.value()) ? 0 : static_cast<std::uint64_t>(-1);
      });

  // bpf_tail_call is intercepted by the interpreter itself; the registration
  // only makes it visible to the verifier's capability check.
  registry.register_helper(
      kHelperTailCall, "bpf_tail_call",
      [](HelperContext&, std::uint64_t, std::uint64_t, std::uint64_t,
         std::uint64_t, std::uint64_t) -> std::uint64_t {
        return static_cast<std::uint64_t>(-1);
      });

  registry.register_helper(
      kHelperKtimeGetNs, "bpf_ktime_get_ns",
      [](HelperContext& ctx, std::uint64_t, std::uint64_t, std::uint64_t,
         std::uint64_t, std::uint64_t) -> std::uint64_t {
        return ctx.kernel() ? ctx.kernel()->now_ns() : 0;
      });

  registry.register_helper(
      kHelperGetSmpProcessorId, "bpf_get_smp_processor_id",
      [](HelperContext& ctx, std::uint64_t, std::uint64_t, std::uint64_t,
         std::uint64_t, std::uint64_t) -> std::uint64_t {
        return ctx.cpu();
      });

  registry.register_helper(
      kHelperRedirect, "bpf_redirect",
      [cost](HelperContext& ctx, std::uint64_t r1, std::uint64_t,
             std::uint64_t, std::uint64_t, std::uint64_t) -> std::uint64_t {
        ctx.charge(cost_of(ctx, cost).bpf_redirect);
        ctx.set_redirect(static_cast<int>(r1));
        return kActRedirect;
      });

  registry.register_helper(
      kHelperRedirectMap, "bpf_redirect_map",
      [cost](HelperContext& ctx, std::uint64_t r1, std::uint64_t r2,
             std::uint64_t, std::uint64_t, std::uint64_t) -> std::uint64_t {
        Map* map = ctx.map(static_cast<std::uint32_t>(r1));
        if (!map || (map->type() != MapType::kDevMap &&
                     map->type() != MapType::kXskMap)) {
          return kActAborted;
        }
        std::uint32_t key = static_cast<std::uint32_t>(r2);
        std::uint8_t* value =
            map->lookup(reinterpret_cast<const std::uint8_t*>(&key));
        if (!value) return kActAborted;
        ctx.charge(cost_of(ctx, cost).bpf_redirect);
        if (map->type() == MapType::kXskMap) {
          // AF_XDP: the value is an XSK socket registry slot.
          ctx.set_redirect_xsk(static_cast<int>(load_u32(value)));
        } else {
          ctx.set_redirect(static_cast<int>(load_u32(value)));
        }
        return kActRedirect;
      });

  registry.register_helper(
      kHelperCsumDiff, "bpf_csum_diff",
      [](HelperContext& ctx, std::uint64_t r1, std::uint64_t r2,
         std::uint64_t r3, std::uint64_t r4, std::uint64_t r5) -> std::uint64_t {
        // csum_diff(from, from_size, to, to_size, seed)
        std::uint32_t seed = static_cast<std::uint32_t>(r5);
        if (r2 > 0) {
          auto from = ctx.mem(r1, r2);
          if (!from.ok()) return static_cast<std::uint64_t>(-1);
          // subtracting: add one's complement
          std::uint32_t sum = net::checksum_fold(from.value(), r2);
          seed += static_cast<std::uint16_t>(~sum);
        }
        if (r4 > 0) {
          auto to = ctx.mem(r3, r4);
          if (!to.ok()) return static_cast<std::uint64_t>(-1);
          seed = net::checksum_fold(to.value(), r4, seed);
        }
        while (seed >> 16) seed = (seed & 0xffff) + (seed >> 16);
        return seed;
      });
}

// --- bpf_fib_lookup -----------------------------------------------------------

void register_fib(HelperRegistry& registry, const kern::CostModel& cost) {
  registry.register_helper(
      kHelperFibLookup, "bpf_fib_lookup",
      [cost](HelperContext& ctx, std::uint64_t, std::uint64_t r2,
             std::uint64_t, std::uint64_t, std::uint64_t) -> std::uint64_t {
        kern::Kernel* kernel = ctx.kernel();
        if (!kernel) return kFibLkupNotFwded;
        auto params = ctx.mem(r2, kFibParamSize);
        if (!params.ok()) return kFibLkupNotFwded;
        std::uint8_t* p = params.value();
        ctx.charge(cost_of(ctx, cost).bpf_fib_lookup_helper);

        if (auto* rec = ctx.recorder()) {
          // The lookup outcome depends on the FIB, the neighbour table and
          // device state (oif up, MAC, MTU).
          rec->add_dep(engine::kDepFib | engine::kDepNeigh |
                       engine::kDepDevice);
        }
        net::Ipv4Addr dst(load_u32(p + kFibParamDst));
        auto hit = kernel->fib().lookup(dst);
        kernel->note_fib_lookup(hit);
        if (!hit) return kFibLkupNotFwded;
        const kern::NetDevice* out = kernel->dev(hit->route.oif);
        if (!out || !out->is_up()) return kFibLkupNotFwded;

        const kern::NeighEntry* neigh = kernel->neigh().lookup(hit->next_hop);
        if (!neigh || neigh->state == kern::NeighState::kIncomplete) {
          return kFibLkupNoNeigh;  // punt: slow path performs ARP
        }
        store_u32(p + kFibParamOutIfindex,
                  static_cast<std::uint32_t>(hit->route.oif));
        std::memcpy(p + kFibParamSmac, out->mac().bytes().data(), 6);
        std::memcpy(p + kFibParamDmac, neigh->mac.bytes().data(), 6);
        store_u32(p + kFibParamMtu, out->mtu());
        return kFibLkupSuccess;
      });
}

// --- bpf_fdb_lookup (paper's new helper) ---------------------------------------

void register_fdb(HelperRegistry& registry, const kern::CostModel& cost) {
  registry.register_helper(
      kHelperFdbLookup, "bpf_fdb_lookup",
      [cost](HelperContext& ctx, std::uint64_t, std::uint64_t r2,
             std::uint64_t, std::uint64_t, std::uint64_t) -> std::uint64_t {
        kern::Kernel* kernel = ctx.kernel();
        if (!kernel) return kFdbLkupMiss;
        auto params = ctx.mem(r2, kFdbParamSize);
        if (!params.ok()) return kFdbLkupMiss;
        std::uint8_t* p = params.value();
        ctx.charge(cost_of(ctx, cost).bpf_fdb_lookup_helper);

        if (auto* rec = ctx.recorder()) {
          // Bridge membership/STP/VLAN config and the FDB itself.
          rec->add_dep(engine::kDepBridge | engine::kDepDevice);
        }
        int in_ifindex = static_cast<int>(load_u32(p + kFdbParamIfindex));
        std::uint16_t vlan = load_u16(p + kFdbParamVlan);
        kern::NetDevice* in_dev = kernel->dev(in_ifindex);
        if (!in_dev || in_dev->master() == 0) return kFdbLkupMiss;
        kern::Bridge* br = kernel->bridge(in_dev->master());
        if (!br) return kFdbLkupMiss;

        const kern::BridgePort* in_port = br->port(in_ifindex);
        if (!in_port || !in_port->can_forward()) return kFdbLkupBlocked;
        if (br->vlan_filtering()) {
          std::uint16_t effective = vlan ? vlan : in_port->pvid;
          if (!in_port->allows_vlan(effective)) return kFdbLkupVlanDenied;
          vlan = effective;
        } else {
          vlan = 0;
        }

        std::array<std::uint8_t, 6> mac_bytes;
        std::memcpy(mac_bytes.data(), p + kFdbParamSmac, 6);
        net::MacAddr smac(mac_bytes);
        const kern::FdbEntry* src_entry = br->fdb_lookup(smac, vlan);
        if (!src_entry || src_entry->port_ifindex != in_ifindex) {
          return kFdbLkupLearn;  // punt: slow path learns / migrates
        }
        // Refresh so the entry does not age out under fast-path traffic
        // (the helper "supports FDB entry aging", paper §V).
        br->fdb_learn(smac, vlan, in_ifindex, kernel->now_ns());
        if (auto* rec = ctx.recorder()) {
          // Replay the refresh on every cache hit so cached forwarding
          // keeps the FDB entry alive exactly like interpreted runs do.
          rec->add_fdb_refresh(engine::FdbReplayOp{
              in_dev->master(), smac, vlan, in_ifindex});
        }

        std::memcpy(mac_bytes.data(), p + kFdbParamDmac, 6);
        net::MacAddr dmac(mac_bytes);
        if (dmac.is_broadcast() || dmac.is_multicast()) return kFdbLkupMiss;
        const kern::FdbEntry* entry = br->fdb_lookup(dmac, vlan);
        if (!entry) return kFdbLkupMiss;
        if (entry->port_ifindex == in_ifindex) return kFdbLkupBlocked;
        const kern::BridgePort* out_port = br->port(entry->port_ifindex);
        if (!out_port || !out_port->can_forward()) return kFdbLkupBlocked;
        if (br->vlan_filtering() && !out_port->allows_vlan(vlan)) {
          return kFdbLkupVlanDenied;
        }
        store_u32(p + kFdbParamOutIfindex,
                  static_cast<std::uint32_t>(entry->port_ifindex));
        return kFdbLkupSuccess;
      });
}

// --- bpf_ipt_lookup (paper's new helper) ----------------------------------------

void register_ipt(HelperRegistry& registry, const kern::CostModel& cost) {
  registry.register_helper(
      kHelperIptLookup, "bpf_ipt_lookup",
      [cost](HelperContext& ctx, std::uint64_t, std::uint64_t r2,
             std::uint64_t, std::uint64_t, std::uint64_t) -> std::uint64_t {
        kern::Kernel* kernel = ctx.kernel();
        if (!kernel) return kIptVerdictPunt;
        auto params = ctx.mem(r2, kIptParamSize);
        if (!params.ok()) return kIptVerdictPunt;
        std::uint8_t* p = params.value();

        if (auto* rec = ctx.recorder()) {
          // Rule table, ipset membership and device names (-i/-o matches).
          rec->add_dep(engine::kDepNetfilter | engine::kDepIpSet |
                       engine::kDepDevice);
        }
        kern::NfPacketInfo info;
        info.src = net::Ipv4Addr(load_u32(p + kIptParamSrc));
        info.dst = net::Ipv4Addr(load_u32(p + kIptParamDst));
        info.proto = p[kIptParamProto];
        info.sport = load_u16(p + kIptParamSport);
        info.dport = load_u16(p + kIptParamDport);

        // Conntrack consultation mirrors the slow path's PREROUTING hook:
        // the helper creates/refreshes the entry in the SAME kernel table,
        // so `-m state` rules see identical state on either path.
        if (kernel->conntrack_enabled() &&
            (info.proto == net::kIpProtoTcp ||
             info.proto == net::kIpProtoUdp)) {
          net::FlowKey key{info.src, info.dst, info.proto, info.sport,
                           info.dport};
          auto ct = kernel->conntrack().lookup_or_create(key,
                                                         kernel->now_ns());
          ctx.charge(ct.created ? cost_of(ctx, cost).conntrack_new
                                : cost_of(ctx, cost).conntrack_lookup);
          info.ct_state =
              ct.entry->state == kern::CtState::kEstablished ? 1 : 0;
          if (auto* rec = ctx.recorder()) {
            // Cache hits re-perform this lookup_or_create (identical side
            // effects: refresh, promotion) and compare the state the rules
            // saw; a change falls back to a full run.
            rec->add_dep(engine::kDepConntrack);
            engine::CtReplayOp op;
            op.key = key;
            op.lookup_or_create = true;
            op.expect_found = true;
            op.expect_ct_state = info.ct_state;
            op.expect_reply_dir = ct.is_reply_direction;
            op.expect_rewrite = ct.entry->dnat_addr.has_value();
            if (op.expect_rewrite) {
              if (ct.is_reply_direction) {
                op.expect_rewrite_addr = ct.entry->original.dst_ip.value();
                op.expect_rewrite_port = ct.entry->original.dst_port;
              } else {
                op.expect_rewrite_addr = ct.entry->dnat_addr->value();
                op.expect_rewrite_port = ct.entry->dnat_port;
              }
            }
            rec->add_ct_replay(op);
          }
        }
        const kern::NetDevice* in_dev =
            kernel->dev(static_cast<int>(load_u32(p + kIptParamInIf)));
        const kern::NetDevice* out_dev =
            kernel->dev(static_cast<int>(load_u32(p + kIptParamOutIf)));
        if (in_dev) info.in_if = in_dev->name();
        if (out_dev) info.out_if = out_dev->name();

        kern::NfHook hook;
        switch (p[kIptParamHook]) {
          case kIptHookForward: hook = kern::NfHook::kForward; break;
          case kIptHookInput: hook = kern::NfHook::kInput; break;
          case kIptHookOutput: hook = kern::NfHook::kOutput; break;
          default: return kIptVerdictPunt;
        }

        auto result = kernel->netfilter().evaluate(hook, info,
                                                   kernel->ipsets());
        const kern::CostModel& c = cost_of(ctx, cost);
        // Same ABI, same verdict — only the charge reflects how the lookup
        // was answered: per-rule scan work, or tuple probes + residual
        // compares when the compiled classifier served it (DESIGN.md §17).
        ctx.charge(kern::nf_eval_cost(result, c.nf_hook_base,
                                      c.bpf_ipt_per_rule, c.bpf_ipt_clf_probe,
                                      c.ipset_lookup));
        return result.verdict == kern::NfVerdict::kDrop ? kIptVerdictDrop
                                                        : kIptVerdictAccept;
      });
}

// --- bpf_ct_lookup (ipvs extension) ---------------------------------------------

void register_ct(HelperRegistry& registry, const kern::CostModel& cost) {
  registry.register_helper(
      kHelperCtLookup, "bpf_ct_lookup",
      [cost](HelperContext& ctx, std::uint64_t, std::uint64_t r2,
             std::uint64_t, std::uint64_t, std::uint64_t) -> std::uint64_t {
        kern::Kernel* kernel = ctx.kernel();
        if (!kernel) return kCtLkupMiss;
        auto params = ctx.mem(r2, kCtParamSize);
        if (!params.ok()) return kCtLkupMiss;
        std::uint8_t* p = params.value();
        ctx.charge(cost_of(ctx, cost).conntrack_lookup);

        net::FlowKey key;
        key.src_ip = net::Ipv4Addr(load_u32(p + kCtParamSrc));
        key.dst_ip = net::Ipv4Addr(load_u32(p + kCtParamDst));
        key.proto = p[kCtParamProto];
        key.src_port = load_u16(p + kCtParamSport);
        key.dst_port = load_u16(p + kCtParamDport);

        auto result = kernel->conntrack().lookup(key, kernel->now_ns());
        if (auto* rec = ctx.recorder()) {
          rec->add_dep(engine::kDepConntrack);
          engine::CtReplayOp op;
          op.key = key;
          op.expect_found = result.entry != nullptr;
          if (result.entry) {
            op.expect_ct_state =
                result.entry->state == kern::CtState::kEstablished ? 1 : 0;
            op.expect_reply_dir = result.is_reply_direction;
            op.expect_rewrite = result.entry->dnat_addr.has_value();
            if (op.expect_rewrite) {
              if (result.is_reply_direction) {
                op.expect_rewrite_addr = result.entry->original.dst_ip.value();
                op.expect_rewrite_port = result.entry->original.dst_port;
              } else {
                op.expect_rewrite_addr = result.entry->dnat_addr->value();
                op.expect_rewrite_port = result.entry->dnat_port;
              }
            }
          }
          rec->add_ct_replay(op);
        }
        if (!result.entry) return kCtLkupMiss;  // slow path creates
        store_u32(p + kCtParamState,
                  result.entry->state == kern::CtState::kEstablished ? 1 : 0);
        std::uint8_t flags = result.is_reply_direction ? kCtFlagReply : 0;
        std::uint32_t rewrite_addr = 0;
        std::uint16_t rewrite_port = 0;
        if (result.entry->dnat_addr) {
          flags |= kCtFlagRewrite;
          if (result.is_reply_direction) {
            // Replies are un-NATed back to the virtual service address.
            rewrite_addr = result.entry->original.dst_ip.value();
            rewrite_port = result.entry->original.dst_port;
          } else {
            rewrite_addr = result.entry->dnat_addr->value();
            rewrite_port = result.entry->dnat_port;
          }
        }
        store_u32(p + kCtParamRewriteAddr, rewrite_addr);
        std::memcpy(p + kCtParamRewritePort, &rewrite_port, 2);
        p[kCtParamFlags] = flags;
        return kCtLkupFound;
      });
}

}  // namespace

void register_all_helpers(HelperRegistry& registry,
                          const kern::CostModel& cost) {
  register_generic(registry, cost);
  register_fib(registry, cost);
  register_fdb(registry, cost);
  register_ipt(registry, cost);
  register_ct(registry, cost);
}

void register_mainline_helpers(HelperRegistry& registry,
                               const kern::CostModel& cost) {
  register_generic(registry, cost);
  register_fib(registry, cost);
}

}  // namespace linuxfp::ebpf
