// Load-time translator: verified Program bytecode -> a direct-threaded
// stream of fused ops (DESIGN.md §14).
//
// Instead of the interpreter's fetch/decode/switch per instruction, the
// translator resolves each instruction — or a superinstruction covering a
// run of instructions the synthesizer habitually emits together (bounds
// check, load+byteswap+mask+compare, map-lookup+branch, field copy) — into a
// function pointer plus pre-extracted operands at load time. Execution is
// then `op = op->fn(op, state)` until a handler returns null: every fused op
// costs one indirect call instead of 2-4 dispatch iterations.
//
// Semantics contract: bit-for-bit the interpreter's (ebpf/vm.cpp), including
// region-tagged pointer arithmetic, abort error strings, flow-cache recorder
// notes and CostModel cycle charging — each op carries the count of bytecode
// instructions it covers and the run charges `insns * bpf_insn` exactly like
// the interpreter, so every cost/latency bench and differential oracle stays
// comparable across engines. Enforced by tests/ebpf/jit_diff_test.cpp.
//
// Fallback rules: jit_translate refuses whole programs it cannot prove out
// (backward jumps, XSK/devmap redirect helpers, out-of-range registers,
// oversized streams); at run time a tail call into an untranslated program
// demotes the rest of the run to the interpreter (a tail call resets all
// state but r1=ctx, so it is a clean handoff point). Both paths are counted
// in VmResult::jit_fallbacks and surface as the `jit.fallbacks` metric.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ebpf/program.h"

namespace linuxfp::ebpf {

namespace jit_detail {
struct ExecState;  // defined in jit.cpp; threaded through every handler
}

struct JitOp;

// A handler executes its op and returns the next op: op+1 on fallthrough,
// op->target on a taken branch, another program's stream head on a tail
// call, or nullptr to leave the dispatch loop (exit / abort / demote — the
// reason is in ExecState::outcome).
using JitOpFn = const JitOp* (*)(const JitOp* op, jit_detail::ExecState& st);

// One direct-threaded op. Operand roles depend on the handler: for fused ops
// (dst, src, size, off, imm) describe the leading memory/ALU instruction and
// (dst2, size2, off2, imm2) the trailing one (second ALU, store target, or
// compare immediate).
struct JitOp {
  JitOpFn fn = nullptr;
  std::uint8_t insn_count = 1;  // bytecode instructions this op covers
  std::uint8_t dst = 0;
  std::uint8_t src = 0;
  std::uint8_t dst2 = 0;
  MemSize size = MemSize::kU64;
  MemSize size2 = MemSize::kU64;
  std::int32_t off = 0;
  std::int32_t off2 = 0;
  std::int64_t imm = 0;
  std::int64_t imm2 = 0;
  const JitOp* target = nullptr;  // taken-branch destination
};

struct JitProgram {
  std::vector<JitOp> ops;   // terminated by a fell-off-end sentinel
  std::size_t n_insns = 0;  // bytecode instructions covered
  std::size_t n_fused = 0;  // ops covering more than one instruction
};

// Translates `prog` into a direct-threaded stream. Returns null when the
// program is untranslatable (the attachment then runs it interpreted), with
// the refusal reason in *reason. Pure function of the instruction list;
// control-plane only (the loader translates at load time, workers only read
// the finished stream).
std::shared_ptr<const JitProgram> jit_translate(const Program& prog,
                                                std::string* reason = nullptr);

}  // namespace linuxfp::ebpf
