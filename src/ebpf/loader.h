// Attachment: one loaded fast path on one hook of one device (the libbpf
// analogue). Owns the program table, the map set (including the tail-call
// dispatcher's prog array and the redirect devmap), and a VM. Implements
// kern::PacketProgram so the kernel invokes it at the hook.
//
// Atomic redeploy (paper §IV-A2 / Fig 4): detaching and re-attaching an eBPF
// program loses packets for seconds; instead the attachment's entry point is
// a tiny dispatcher that tail-calls prog_array[0], and deploying a new fast
// path is a single prog-array update — packets never observe a missing
// program.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ebpf/afxdp.h"
#include "ebpf/program.h"
#include "ebpf/verifier.h"
#include "ebpf/vm.h"
#include "engine/flowcache.h"
#include "kernel/kernel.h"

namespace linuxfp::ebpf {

struct AttachmentStats {
  std::uint64_t runs = 0;
  std::uint64_t pass = 0;
  std::uint64_t drop = 0;
  std::uint64_t tx = 0;
  std::uint64_t redirect = 0;
  std::uint64_t to_userspace = 0;
  std::uint64_t aborted = 0;
  std::uint64_t total_cycles = 0;
  std::uint64_t total_insns = 0;
  // Execution-engine split: runs that entered the direct-threaded translator,
  // and interpreter fallbacks within them (untranslated entry program or a
  // tail call into an untranslated target).
  std::uint64_t jit_runs = 0;
  std::uint64_t jit_fallbacks = 0;
};

// Map requested by an object about to be loaded (the BTF map section
// analogue): load_object creates these before verifying the programs.
struct MapSpec {
  std::string name;
  MapType type = MapType::kArray;
  std::uint32_t key_size = 4;
  std::uint32_t value_size = 4;
  std::uint32_t max_entries = 1;
};

// Everything one load_object call produced, for wiring and for unloading.
struct LoadedObject {
  std::vector<std::uint32_t> map_ids;
  std::vector<std::uint32_t> prog_ids;
};

class Attachment : public kern::PacketProgram {
 public:
  // `helpers` defines the capability set available at this hook; the
  // verifier rejects programs calling anything else.
  Attachment(std::string name, HookType hook, kern::Kernel& kernel,
             const HelperRegistry& helpers);

  // --- program management ------------------------------------------------------
  // Verifies and loads; returns the program id.
  util::Result<std::uint32_t> load(Program prog);

  // Transactional object load (the libbpf bpf_object__load analogue): creates
  // the requested maps, then verifies and loads every program. On ANY
  // failure, everything this call created is freed — maps are destroyed and
  // the program table is restored — so a partial load never leaks map FDs or
  // unreachable programs.
  util::Result<LoadedObject> load_object(const std::vector<MapSpec>& maps,
                                         std::vector<Program> progs);
  // Reverts a load_object whose programs were never activated. Only the most
  // recently loaded object can be unloaded (program ids are table indices and
  // must stay stable for everything loaded before it).
  void unload_object(const LoadedObject& obj);

  // Dispatcher mode: entry tail-calls prog_array[0]. swap() retargets it.
  void enable_dispatcher();
  bool dispatcher_enabled() const { return dispatcher_enabled_; }
  util::Status swap(std::uint32_t prog_id);
  // Direct mode: entry is the given program (no dispatcher indirection).
  util::Status set_entry(std::uint32_t prog_id);

  MapSet& maps() { return maps_; }

  // Binds an AF_XDP socket; the returned slot is what an XSK-map entry must
  // contain for bpf_redirect_map to deliver into this socket.
  std::uint32_t register_xsk(AfXdpSocket* socket);
  const std::vector<Program>& programs() const { return programs_; }
  std::uint32_t active_prog_id() const { return active_prog_; }

  // --- kern::PacketProgram -----------------------------------------------------
  RunResult run(net::Packet& pkt, int ingress_ifindex) override;
  // Engine entry point: runs on `cpu`'s private VM against the shared map
  // set and charges `cpu`'s stats shard; safe concurrently across distinct
  // cpus after prepare_cpus. AF_XDP delivery is not per-CPU sharded — XSK
  // redirect programs must be driven single-queue.
  RunResult run_on_cpu(net::Packet& pkt, int ingress_ifindex,
                       unsigned cpu) override;
  // Grows the per-CPU VM/stat shards to `n` (control plane, no workers
  // running). Idempotent; cpu 0 always exists.
  void prepare_cpus(unsigned n) override;
  std::string name() const override { return name_; }

  // Aggregated over the per-CPU shards. Only exact after the worker pool
  // quiesces (shard writes are unsynchronized plain fields).
  AttachmentStats stats() const;
  HookType hook() const { return hook_; }
  unsigned ncpus() const { return static_cast<unsigned>(vms_.size()); }

  // Mirrors per-run verdict/cycle counts into `registry` under
  // "fastpath.<name>.<hook>.*" and binds the VM's helper/map counters.
  // Null unbinds. AttachmentStats stays authoritative either way.
  void set_metrics(util::MetricsRegistry* registry);

  // --- execution engine (DESIGN.md §14) --------------------------------------
  // Selects the backend for every VM of this attachment. Switching to kJit
  // translates all loaded programs (and every later load translates eagerly);
  // programs the translator refuses run interpreted per-run. Control-plane
  // call (no workers running).
  void set_exec_engine(ExecEngine engine);
  ExecEngine exec_engine() const { return exec_engine_; }
  // Translation census over the program table (stable after load/swap).
  std::uint64_t jit_translated() const { return jit_translated_; }
  std::uint64_t jit_untranslatable() const { return jit_untranslatable_; }

  // --- microflow verdict cache (DESIGN.md §12) -------------------------------
  // Opt-in per-CPU exact-match verdict cache probed before the interpreter.
  // Control-plane call (no workers running). Off by default.
  void set_flow_cache(bool on);
  bool flow_cache_enabled() const { return flow_cache_on_; }
  // Deploy epoch: bumped whenever the reachable program set can change
  // (swap, set_entry, load/unload). Cached verdicts from an older epoch are
  // invalid, so every redeploy — including a fault-injection rollback —
  // flushes the cache.
  std::uint64_t flow_epoch() const {
    return flow_epoch_.load(std::memory_order_relaxed);
  }
  // Aggregated over the per-CPU caches; exact once workers quiesce.
  engine::FlowCacheStats flow_cache_stats() const;
  const engine::FlowCache* flow_cache(unsigned cpu) const {
    return cpu < flow_caches_.size() ? flow_caches_[cpu].get() : nullptr;
  }

 private:
  bool metrics_on() const {
    return metrics_registry_ != nullptr && metrics_registry_->enabled();
  }

  // One stats shard per CPU, cache-line padded so concurrent workers never
  // false-share; stats() sums the shards.
  struct alignas(64) CpuStats {
    AttachmentStats s;
  };

  std::string name_;
  HookType hook_;
  kern::Kernel& kernel_;
  const HelperRegistry& helpers_;
  MapSet maps_;
  std::vector<Program> programs_;
  // vms_[cpu] is that CPU's interpreter: same cost model, helper registry,
  // map set and program table, private run state. Index 0 is the slow-path /
  // single-queue VM.
  std::vector<std::unique_ptr<Vm>> vms_;
  std::vector<CpuStats> cpu_stats_;
  void bump_flow_epoch() {
    flow_epoch_.fetch_add(1, std::memory_order_relaxed);
  }
  // Serves a probe-hit: verdict mapping, stats, metrics, trace event.
  RunResult finish_cache_hit(const engine::FlowCache::Hit& hit,
                             AttachmentStats& sh);

  // Translates `prog` when the engine is kJit; counts the outcome.
  void translate_program(Program& prog);

  ExecEngine exec_engine_ = ExecEngine::kInterpreter;
  std::uint64_t jit_translated_ = 0;
  std::uint64_t jit_untranslatable_ = 0;

  bool dispatcher_enabled_ = false;
  std::uint32_t prog_array_id_ = 0;
  std::uint32_t entry_prog_ = 0;
  std::uint32_t active_prog_ = 0;
  bool has_entry_ = false;
  std::vector<AfXdpSocket*> xsk_sockets_;

  // flow_caches_[cpu] parallels vms_[cpu]; populated only when enabled.
  bool flow_cache_on_ = false;
  std::vector<std::unique_ptr<engine::FlowCache>> flow_caches_;
  std::atomic<std::uint64_t> flow_epoch_{0};
  engine::FlowCacheMetrics fc_metrics_;

  util::MetricsRegistry* metrics_registry_ = nullptr;
  util::Counter* m_runs_ = nullptr;
  util::Counter* m_cycles_ = nullptr;
  util::Counter* m_verdicts_[6] = {};  // indexed by Verdict
  util::Counter* m_jit_runs_ = nullptr;
  util::Counter* m_jit_fallbacks_ = nullptr;
};

// Attach/detach convenience wrappers (libbpf-style API). The program is any
// kern::PacketProgram — a raw Attachment, or a decorator such as the
// equivalence guard's GuardUnit wrapping one (core/guard.h).
util::Status attach_to_device(kern::Kernel& kernel, const std::string& dev,
                              HookType hook, kern::PacketProgram* program);
void detach_from_device(kern::Kernel& kernel, const std::string& dev,
                        HookType hook);

}  // namespace linuxfp::ebpf
