// Direct-threaded translator (see jit.h for the contract).
//
// Layout: ExecState (the run state threaded through handlers), the handler
// bodies (single-instruction ops first, then the superinstructions), the
// handler selectors, and finally jit_translate + Vm::run_jit.
//
// Every handler mirrors one interpreter case in ebpf/vm.cpp verbatim —
// including abort messages, flow-cache recorder notes, metric bumps and the
// order register writes interleave with memory accesses — because the
// differential oracle (tests/ebpf/jit_diff_test.cpp) compares verdict,
// register file, map state and charged cycles bit-for-bit between engines.

#include "ebpf/jit.h"

#include <algorithm>
#include <cstring>

#include "ebpf/vm.h"
#include "engine/flowcache.h"
#include "util/metrics.h"

namespace linuxfp::ebpf {

namespace jit_detail {

// The dispatch loop's run state. A friend of Vm so handlers reach the
// bounds-checking translate(), the map set and the pre-resolved metric
// counters without widening Vm's public surface.
struct ExecState {
  ExecState(Vm& vm_in, Vm::RunState& rs_in, HelperContext& hctx_in,
            VmResult& result_in, const kern::CostModel& cost_in,
            const std::vector<Program>* prog_table_in, const Program* prog_in)
      : vm(vm_in), rs(rs_in), hctx(hctx_in), result(result_in), cost(cost_in),
        prog_table(prog_table_in), prog(prog_in) {}

  Vm& vm;
  Vm::RunState& rs;
  HelperContext& hctx;
  VmResult& result;
  const kern::CostModel& cost;
  const std::vector<Program>* prog_table;
  const Program* prog;  // program currently executing (tail calls move it)

  // Bytecode instructions charged so far; the dispatch loop adds each op's
  // insn_count *before* running it, matching the interpreter's
  // count-then-execute order (aborting ops refund unexecuted trailing
  // constituents themselves).
  std::uint64_t executed = 0;

  enum Outcome : std::uint8_t { kRunning, kExit, kAbort, kDemote };
  Outcome outcome = kRunning;
  std::string error;                      // valid when kAbort
  const Program* demote_target = nullptr;  // valid when kDemote

  util::Result<std::uint8_t*> mem(std::uint64_t tagged, std::size_t len) {
    return vm.translate(tagged, len);
  }
  Map* map(std::uint32_t id) { return vm.maps_.get(id); }
  const Helper* find_helper(std::uint32_t id) const {
    return vm.helpers_.find(id);
  }
  bool metrics_on() const { return vm.metrics_ && vm.metrics_->enabled(); }
  void bump_tail_call() { util::bump(vm.tail_call_counter_); }
  void bump_helper(std::uint32_t id, std::uint64_t r0) {
    util::bump(vm.helper_counter(id));
    if (id == kHelperMapLookup) {
      util::bump(r0 != 0 ? vm.map_hits_ : vm.map_misses_);
    }
  }
};

}  // namespace jit_detail

namespace {

using jit_detail::ExecState;
using vmops::load_sized;
using vmops::ptr_add;
using vmops::store_sized;

// --- shared primitives --------------------------------------------------------

const JitOp* abort_run(ExecState& st, std::string why) {
  st.outcome = ExecState::kAbort;
  st.error = std::move(why);
  return nullptr;
}

enum class Swap : std::uint8_t { kNone, k16, k32 };

template <Swap S>
inline std::uint64_t byteswap(std::uint64_t x) {
  if constexpr (S == Swap::k16) {
    std::uint16_t v = static_cast<std::uint16_t>(x);
    return static_cast<std::uint16_t>((v >> 8) | (v << 8));
  } else if constexpr (S == Swap::k32) {
    std::uint32_t v = static_cast<std::uint32_t>(x);
    return ((v >> 24) & 0xff) | ((v >> 8) & 0xff00) | ((v << 8) & 0xff0000) |
           (v << 24);
  } else {
    return x;
  }
}

template <Op CC>
inline bool cmp(std::uint64_t a, std::uint64_t b) {
  if constexpr (CC == Op::kJeq) return a == b;
  if constexpr (CC == Op::kJne) return a != b;
  if constexpr (CC == Op::kJgt) return a > b;
  if constexpr (CC == Op::kJge) return a >= b;
  if constexpr (CC == Op::kJlt) return a < b;
  if constexpr (CC == Op::kJle) return a <= b;
  if constexpr (CC == Op::kJset) return (a & b) != 0;
  return false;
}

// Leading kLdx of a (possibly fused) op: address from (op->src, op->off,
// op->size). On an out-of-bounds access the interpreter counts the faulting
// instruction but none after it, so the op refunds its `uncharged` trailing
// constituents before aborting.
inline bool fused_load(const JitOp* op, ExecState& st, std::uint32_t uncharged,
                       std::uint64_t* out) {
  std::uint64_t addr = ptr_add(st.rs.regs[op->src], op->off);
  auto mem = st.mem(addr, static_cast<std::size_t>(op->size));
  if (!mem.ok()) {
    st.executed -= uncharged;
    abort_run(st, mem.error().message);
    return false;
  }
  if (st.rs.recorder && ptr_region(addr) == Region::kPacket) {
    st.rs.recorder->note_packet_read(ptr_payload(addr),
                                     static_cast<std::size_t>(op->size));
  }
  *out = load_sized(mem.value(), op->size);
  return true;
}

// Trailing kStx of a fused op: address from (op->dst2, op->off2, op->size2).
inline bool fused_store(const JitOp* op, ExecState& st, std::uint64_t v) {
  std::uint64_t addr = ptr_add(st.rs.regs[op->dst2], op->off2);
  auto mem = st.mem(addr, static_cast<std::size_t>(op->size2));
  if (!mem.ok()) {
    abort_run(st, mem.error().message);
    return false;
  }
  if (st.rs.recorder && ptr_region(addr) == Region::kPacket) {
    st.rs.recorder->note_packet_write(ptr_payload(addr),
                                      static_cast<std::size_t>(op->size2));
  }
  store_sized(mem.value(), op->size2, v);
  return true;
}

// The interpreter's non-tail-call kCall body. Returns false after aborting
// (unknown helper).
bool do_helper(ExecState& st, std::uint32_t helper_id) {
  const Helper* helper = st.find_helper(helper_id);
  if (!helper) {
    abort_run(st, "unknown helper " + std::to_string(helper_id));
    return false;
  }
  if (st.rs.recorder && !flowcache_replayable_helper(helper_id)) {
    st.rs.recorder->mark_uncacheable("helper escapes replay model");
  }
  auto& regs = st.rs.regs;
  std::uint64_t cycles_before = st.rs.extra_cycles;
  st.rs.extra_cycles += st.cost.bpf_helper_base;
  regs[kR0] = helper->fn(st.hctx, regs[kR1], regs[kR2], regs[kR3], regs[kR4],
                         regs[kR5]);
  if (st.metrics_on()) st.bump_helper(helper_id, regs[kR0]);
  if (auto* t = util::active_packet_trace()) {
    t->add("ebpf", helper_name(helper_id),
           st.rs.extra_cycles - cycles_before);
  }
  for (int r = kR1; r <= kR5; ++r) regs[r] = 0;
  return true;
}

// --- single-instruction handlers ----------------------------------------------

template <Op OP, bool IMM>
const JitOp* h_alu(const JitOp* op, ExecState& st) {
  auto& regs = st.rs.regs;
  const std::uint64_t src_val =
      IMM ? static_cast<std::uint64_t>(op->imm) : regs[op->src];
  (void)src_val;
  std::uint64_t& dst = regs[op->dst];
  if constexpr (OP == Op::kMov) {
    dst = src_val;
  } else if constexpr (OP == Op::kAdd) {
    dst = ptr_region(dst) != Region::kNone
              ? ptr_add(dst, static_cast<std::int64_t>(src_val))
              : dst + src_val;
  } else if constexpr (OP == Op::kSub) {
    if (!IMM && ptr_region(dst) != Region::kNone &&
        ptr_region(regs[op->src]) == ptr_region(dst)) {
      // pointer - pointer = scalar distance
      dst = ptr_payload(dst) - ptr_payload(regs[op->src]);
    } else if (ptr_region(dst) != Region::kNone) {
      dst = ptr_add(dst, -static_cast<std::int64_t>(src_val));
    } else {
      dst -= src_val;
    }
  } else if constexpr (OP == Op::kMul) {
    dst *= src_val;
  } else if constexpr (OP == Op::kDiv) {
    if (src_val == 0) return abort_run(st, "division by zero");
    dst /= src_val;
  } else if constexpr (OP == Op::kMod) {
    if (src_val == 0) return abort_run(st, "mod by zero");
    dst %= src_val;
  } else if constexpr (OP == Op::kAnd) {
    dst &= src_val;
  } else if constexpr (OP == Op::kOr) {
    dst |= src_val;
  } else if constexpr (OP == Op::kXor) {
    dst ^= src_val;
  } else if constexpr (OP == Op::kLsh) {
    dst <<= (src_val & 63);
  } else if constexpr (OP == Op::kRsh) {
    dst >>= (src_val & 63);
  } else if constexpr (OP == Op::kArsh) {
    dst = static_cast<std::uint64_t>(static_cast<std::int64_t>(dst) >>
                                     (src_val & 63));
  } else if constexpr (OP == Op::kNeg) {
    dst = static_cast<std::uint64_t>(-static_cast<std::int64_t>(dst));
  } else if constexpr (OP == Op::kBe16) {
    dst = byteswap<Swap::k16>(dst);
  } else if constexpr (OP == Op::kBe32) {
    dst = byteswap<Swap::k32>(dst);
  }
  return op + 1;
}

const JitOp* h_ldx(const JitOp* op, ExecState& st) {
  std::uint64_t v;
  if (!fused_load(op, st, 0, &v)) return nullptr;
  st.rs.regs[op->dst] = v;
  return op + 1;
}

const JitOp* h_stx(const JitOp* op, ExecState& st) {
  auto& regs = st.rs.regs;
  std::uint64_t addr = ptr_add(regs[op->dst], op->off);
  auto mem = st.mem(addr, static_cast<std::size_t>(op->size));
  if (!mem.ok()) return abort_run(st, mem.error().message);
  if (st.rs.recorder && ptr_region(addr) == Region::kPacket) {
    st.rs.recorder->note_packet_write(ptr_payload(addr),
                                      static_cast<std::size_t>(op->size));
  }
  store_sized(mem.value(), op->size, regs[op->src]);
  return op + 1;
}

const JitOp* h_st(const JitOp* op, ExecState& st) {
  auto& regs = st.rs.regs;
  std::uint64_t addr = ptr_add(regs[op->dst], op->off);
  auto mem = st.mem(addr, static_cast<std::size_t>(op->size));
  if (!mem.ok()) return abort_run(st, mem.error().message);
  if (st.rs.recorder && ptr_region(addr) == Region::kPacket) {
    st.rs.recorder->note_packet_write(ptr_payload(addr),
                                      static_cast<std::size_t>(op->size));
  }
  store_sized(mem.value(), op->size, static_cast<std::uint64_t>(op->imm));
  return op + 1;
}

const JitOp* h_ja(const JitOp* op, ExecState&) { return op->target; }

template <Op CC, bool IMM>
const JitOp* h_jcc(const JitOp* op, ExecState& st) {
  auto& regs = st.rs.regs;
  std::uint64_t a = regs[op->dst];
  std::uint64_t b =
      IMM ? static_cast<std::uint64_t>(op->imm) : regs[op->src];
  if constexpr (!IMM) {
    // Pointer comparisons compare payloads within the same region (the
    // data_end bounds-check pattern).
    if (ptr_region(a) != Region::kNone && ptr_region(b) == ptr_region(a)) {
      a = ptr_payload(a);
      b = ptr_payload(b);
    }
  }
  return cmp<CC>(a, b) ? op->target : op + 1;
}

const JitOp* h_call(const JitOp* op, ExecState& st) {
  return do_helper(st, static_cast<std::uint32_t>(op->imm)) ? op + 1 : nullptr;
}

const JitOp* h_tail_call(const JitOp* op, ExecState& st) {
  auto& regs = st.rs.regs;
  // bpf_tail_call(ctx=r1, prog_array=r2(map id), index=r3)
  if (st.result.tail_calls + 1 > kMaxTailCalls) {
    return abort_run(st, "tail call limit exceeded");
  }
  Map* prog_array = st.map(static_cast<std::uint32_t>(regs[kR2]));
  if (!prog_array || prog_array->type() != MapType::kProgArray) {
    return abort_run(st, "tail call on non prog-array map");
  }
  auto target = prog_array->prog_at(static_cast<std::uint32_t>(regs[kR3]));
  if (!target || !st.prog_table || *target >= st.prog_table->size()) {
    // Miss: like the kernel, fall through to the next instruction.
    regs[kR0] = static_cast<std::uint64_t>(-1);
    return op + 1;
  }
  ++st.result.tail_calls;
  st.rs.extra_cycles += st.cost.bpf_tail_call;
  if (st.metrics_on()) st.bump_tail_call();
  const Program& next = (*st.prog_table)[*target];
  if (auto* t = util::active_packet_trace()) {
    t->add("ebpf", "tail_call", st.cost.bpf_tail_call, next.name);
  }
  // Tail call preserves only the context pointer convention.
  regs[kR1] = make_ptr(Region::kCtx, 0);
  st.prog = &next;
  if (next.jit) return next.jit->ops.data();
  // Tail call into an untranslated program: demote the rest of the run to
  // the interpreter. All carried state (registers, stack, counters) is
  // already where interpret() expects it.
  st.outcome = ExecState::kDemote;
  st.demote_target = &next;
  return nullptr;
}

const JitOp* h_exit(const JitOp*, ExecState& st) {
  st.outcome = ExecState::kExit;
  return nullptr;
}

// Sentinel appended after the last translated instruction; reached only when
// control falls off the end (insn_count 0 matches the interpreter, which
// checks pc before counting).
const JitOp* h_fell_off(const JitOp*, ExecState& st) {
  return abort_run(st, "pc out of bounds (missing exit?)");
}

// --- superinstructions --------------------------------------------------------
//
// The synthesizer's parse -> map-lookup -> rewrite programs are dominated by
// a handful of short idioms; each gets one fused handler. Operand packing is
// described per pattern in jit_translate. `uncharged` arguments refund
// not-yet-executed trailing constituents when the leading load faults.

// ldx dst; be dst; and dst, imm; jcc dst, imm2  (load+mask+compare, e.g.
// "is this the IP version/proto I handle?")
template <Op CC, Swap S>
const JitOp* h_ldx_be_and_jcc(const JitOp* op, ExecState& st) {
  std::uint64_t v;
  if (!fused_load(op, st, 3, &v)) return nullptr;
  v = byteswap<S>(v);
  v &= static_cast<std::uint64_t>(op->imm);
  st.rs.regs[op->dst] = v;
  return cmp<CC>(v, static_cast<std::uint64_t>(op->imm2)) ? op->target
                                                          : op + 1;
}

// ldx dst; be dst; jcc dst, imm2
template <Op CC, Swap S>
const JitOp* h_ldx_be_jcc(const JitOp* op, ExecState& st) {
  std::uint64_t v;
  if (!fused_load(op, st, 2, &v)) return nullptr;
  v = byteswap<S>(v);
  st.rs.regs[op->dst] = v;
  return cmp<CC>(v, static_cast<std::uint64_t>(op->imm2)) ? op->target
                                                          : op + 1;
}

// ldx dst; and dst, imm; jcc dst, imm2
template <Op CC>
const JitOp* h_ldx_and_jcc(const JitOp* op, ExecState& st) {
  std::uint64_t v;
  if (!fused_load(op, st, 2, &v)) return nullptr;
  v &= static_cast<std::uint64_t>(op->imm);
  st.rs.regs[op->dst] = v;
  return cmp<CC>(v, static_cast<std::uint64_t>(op->imm2)) ? op->target
                                                          : op + 1;
}

// ldx dst; jcc dst, imm2  (map-value null checks, flag tests)
template <Op CC>
const JitOp* h_ldx_jcc(const JitOp* op, ExecState& st) {
  std::uint64_t v;
  if (!fused_load(op, st, 1, &v)) return nullptr;
  st.rs.regs[op->dst] = v;
  return cmp<CC>(v, static_cast<std::uint64_t>(op->imm2)) ? op->target
                                                          : op + 1;
}

// ldx dst; [be dst;] stx [dst2+off2] = dst  (field copy / rewrite with
// optional endianness fix; store address is read after the load's register
// write, matching the interpreter when dst aliases the address base)
template <Swap S>
const JitOp* h_ldx_be_stx(const JitOp* op, ExecState& st) {
  std::uint64_t v;
  if (!fused_load(op, st, S == Swap::kNone ? 1 : 2, &v)) return nullptr;
  v = byteswap<S>(v);
  st.rs.regs[op->dst] = v;
  if (!fused_store(op, st, v)) return nullptr;
  return op + 1;
}

// mov dst, src; add dst, imm  (pointer bump: cursor = data + off)
const JitOp* h_mov_add(const JitOp* op, ExecState& st) {
  auto& regs = st.rs.regs;
  std::uint64_t v = regs[op->src];
  regs[op->dst] = ptr_region(v) != Region::kNone
                      ? ptr_add(v, op->imm)
                      : v + static_cast<std::uint64_t>(op->imm);
  return op + 1;
}

// mov dst, src; add dst, imm; jcc dst, r[dst2]  (the canonical data_end
// bounds check the verifier demands before every packet access)
template <Op CC>
const JitOp* h_mov_add_jcc(const JitOp* op, ExecState& st) {
  auto& regs = st.rs.regs;
  std::uint64_t v = regs[op->src];
  v = ptr_region(v) != Region::kNone
          ? ptr_add(v, op->imm)
          : v + static_cast<std::uint64_t>(op->imm);
  regs[op->dst] = v;
  std::uint64_t a = v;
  std::uint64_t b = regs[op->dst2];
  if (ptr_region(a) != Region::kNone && ptr_region(b) == ptr_region(a)) {
    a = ptr_payload(a);
    b = ptr_payload(b);
  }
  return cmp<CC>(a, b) ? op->target : op + 1;
}

// alu dst, imm; alu dst2, imm2  (two independent immediate ALU ops; div/mod
// excluded so the pair cannot abort mid-op)
template <Op OP>
inline void alu_imm_apply(std::uint64_t* regs, std::uint8_t dst_r,
                          std::int64_t imm) {
  std::uint64_t& dst = regs[dst_r];
  const std::uint64_t sv = static_cast<std::uint64_t>(imm);
  if constexpr (OP == Op::kAdd) {
    dst = ptr_region(dst) != Region::kNone ? ptr_add(dst, imm) : dst + sv;
  } else if constexpr (OP == Op::kSub) {
    dst = ptr_region(dst) != Region::kNone ? ptr_add(dst, -imm) : dst - sv;
  } else if constexpr (OP == Op::kMul) {
    dst *= sv;
  } else if constexpr (OP == Op::kAnd) {
    dst &= sv;
  } else if constexpr (OP == Op::kOr) {
    dst |= sv;
  } else if constexpr (OP == Op::kXor) {
    dst ^= sv;
  } else if constexpr (OP == Op::kLsh) {
    dst <<= (sv & 63);
  } else if constexpr (OP == Op::kRsh) {
    dst >>= (sv & 63);
  } else if constexpr (OP == Op::kArsh) {
    dst = static_cast<std::uint64_t>(static_cast<std::int64_t>(dst) >>
                                     (sv & 63));
  }
}

template <Op OP1, Op OP2>
const JitOp* h_alu_pair(const JitOp* op, ExecState& st) {
  alu_imm_apply<OP1>(st.rs.regs, op->dst, op->imm);
  alu_imm_apply<OP2>(st.rs.regs, op->dst2, op->imm2);
  return op + 1;
}

// call imm; jcc r[dst2], imm2  (map-lookup + null-check branch)
template <Op CC>
const JitOp* h_call_jcc(const JitOp* op, ExecState& st) {
  if (!do_helper(st, static_cast<std::uint32_t>(op->imm))) {
    st.executed -= 1;  // the jcc never ran
    return nullptr;
  }
  return cmp<CC>(st.rs.regs[op->dst2], static_cast<std::uint64_t>(op->imm2))
             ? op->target
             : op + 1;
}

// mov dst, imm; exit  (verdict tails: "return XDP_DROP")
const JitOp* h_mov_imm_exit(const JitOp* op, ExecState& st) {
  st.rs.regs[op->dst] = static_cast<std::uint64_t>(op->imm);
  st.outcome = ExecState::kExit;
  return nullptr;
}

// --- handler selectors --------------------------------------------------------

#define LFP_PICK_CC0(FN)                  \
  switch (cc) {                           \
    case Op::kJeq: return FN<Op::kJeq>;   \
    case Op::kJne: return FN<Op::kJne>;   \
    case Op::kJgt: return FN<Op::kJgt>;   \
    case Op::kJge: return FN<Op::kJge>;   \
    case Op::kJlt: return FN<Op::kJlt>;   \
    case Op::kJle: return FN<Op::kJle>;   \
    case Op::kJset: return FN<Op::kJset>; \
    default: return nullptr;              \
  }

#define LFP_PICK_CC1(FN, A)                  \
  switch (cc) {                              \
    case Op::kJeq: return FN<Op::kJeq, A>;   \
    case Op::kJne: return FN<Op::kJne, A>;   \
    case Op::kJgt: return FN<Op::kJgt, A>;   \
    case Op::kJge: return FN<Op::kJge, A>;   \
    case Op::kJlt: return FN<Op::kJlt, A>;   \
    case Op::kJle: return FN<Op::kJle, A>;   \
    case Op::kJset: return FN<Op::kJset, A>; \
    default: return nullptr;                 \
  }

JitOpFn pick_jcc(Op cc, bool use_imm) {
  if (use_imm) {
    LFP_PICK_CC1(h_jcc, true)
  }
  LFP_PICK_CC1(h_jcc, false)
}

template <Swap S>
JitOpFn pick_ldx_be_and_jcc(Op cc) { LFP_PICK_CC1(h_ldx_be_and_jcc, S) }

template <Swap S>
JitOpFn pick_ldx_be_jcc(Op cc) { LFP_PICK_CC1(h_ldx_be_jcc, S) }

JitOpFn pick_ldx_and_jcc(Op cc) { LFP_PICK_CC0(h_ldx_and_jcc) }
JitOpFn pick_ldx_jcc(Op cc) { LFP_PICK_CC0(h_ldx_jcc) }
JitOpFn pick_mov_add_jcc(Op cc) { LFP_PICK_CC0(h_mov_add_jcc) }
JitOpFn pick_call_jcc(Op cc) { LFP_PICK_CC0(h_call_jcc) }

#undef LFP_PICK_CC0
#undef LFP_PICK_CC1

template <bool IMM>
JitOpFn pick_alu(Op o) {
  switch (o) {
    case Op::kMov: return h_alu<Op::kMov, IMM>;
    case Op::kAdd: return h_alu<Op::kAdd, IMM>;
    case Op::kSub: return h_alu<Op::kSub, IMM>;
    case Op::kMul: return h_alu<Op::kMul, IMM>;
    case Op::kDiv: return h_alu<Op::kDiv, IMM>;
    case Op::kMod: return h_alu<Op::kMod, IMM>;
    case Op::kAnd: return h_alu<Op::kAnd, IMM>;
    case Op::kOr: return h_alu<Op::kOr, IMM>;
    case Op::kXor: return h_alu<Op::kXor, IMM>;
    case Op::kLsh: return h_alu<Op::kLsh, IMM>;
    case Op::kRsh: return h_alu<Op::kRsh, IMM>;
    case Op::kArsh: return h_alu<Op::kArsh, IMM>;
    case Op::kNeg: return h_alu<Op::kNeg, IMM>;
    case Op::kBe16: return h_alu<Op::kBe16, IMM>;
    case Op::kBe32: return h_alu<Op::kBe32, IMM>;
    default: return nullptr;
  }
}

// Immediate ALU ops safe to pair (no aborts, so a fused pair cannot fail
// between its halves).
bool fusable_alu(Op o) {
  switch (o) {
    case Op::kAdd: case Op::kSub: case Op::kMul: case Op::kAnd:
    case Op::kOr: case Op::kXor: case Op::kLsh: case Op::kRsh:
    case Op::kArsh:
      return true;
    default:
      return false;
  }
}

template <Op OP1>
JitOpFn pick_alu_pair2(Op op2) {
  switch (op2) {
    case Op::kAdd: return h_alu_pair<OP1, Op::kAdd>;
    case Op::kSub: return h_alu_pair<OP1, Op::kSub>;
    case Op::kMul: return h_alu_pair<OP1, Op::kMul>;
    case Op::kAnd: return h_alu_pair<OP1, Op::kAnd>;
    case Op::kOr: return h_alu_pair<OP1, Op::kOr>;
    case Op::kXor: return h_alu_pair<OP1, Op::kXor>;
    case Op::kLsh: return h_alu_pair<OP1, Op::kLsh>;
    case Op::kRsh: return h_alu_pair<OP1, Op::kRsh>;
    case Op::kArsh: return h_alu_pair<OP1, Op::kArsh>;
    default: return nullptr;
  }
}

JitOpFn pick_alu_pair(Op op1, Op op2) {
  switch (op1) {
    case Op::kAdd: return pick_alu_pair2<Op::kAdd>(op2);
    case Op::kSub: return pick_alu_pair2<Op::kSub>(op2);
    case Op::kMul: return pick_alu_pair2<Op::kMul>(op2);
    case Op::kAnd: return pick_alu_pair2<Op::kAnd>(op2);
    case Op::kOr: return pick_alu_pair2<Op::kOr>(op2);
    case Op::kXor: return pick_alu_pair2<Op::kXor>(op2);
    case Op::kLsh: return pick_alu_pair2<Op::kLsh>(op2);
    case Op::kRsh: return pick_alu_pair2<Op::kRsh>(op2);
    case Op::kArsh: return pick_alu_pair2<Op::kArsh>(op2);
    default: return nullptr;
  }
}

inline bool is_cond_jump(Op o) { return o >= Op::kJeq && o <= Op::kJset; }

}  // namespace

// --- translator ---------------------------------------------------------------

std::shared_ptr<const JitProgram> jit_translate(const Program& prog,
                                                std::string* reason) {
  const std::vector<Insn>& ins = prog.insns;
  const std::size_t n = ins.size();
  auto refuse = [&](const char* why) -> std::shared_ptr<const JitProgram> {
    if (reason) *reason = why;
    return nullptr;
  };
  if (n == 0) return refuse("empty program");
  if (n > kMaxInsns) {
    // Oversized programs keep the interpreter's per-instruction budget
    // check; translated streams omit it (forward-only jumps bound a
    // translated program's execution to its length).
    return refuse("program exceeds the verifier size budget");
  }

  // Structural scan: registers in range, forward-only control flow with
  // in-range targets, only helpers the handlers model. Marks every jump
  // target as a fusion barrier (an op must never start mid-superinstruction).
  std::vector<std::uint8_t> head(n, 0);
  head[0] = 1;
  for (std::size_t pc = 0; pc < n; ++pc) {
    const Insn& in = ins[pc];
    if (in.op < Op::kMov || in.op > Op::kExit) return refuse("unknown opcode");
    if (in.dst >= kNumRegs || in.src >= kNumRegs) {
      return refuse("register out of range");
    }
    if (in.op >= Op::kJa && in.op <= Op::kJset) {
      if (in.off < 0) return refuse("backward jump");
      std::size_t target = pc + 1 + static_cast<std::size_t>(in.off);
      if (target >= n) return refuse("jump target out of range");
      head[target] = 1;
    }
    if (in.op == Op::kCall &&
        static_cast<std::uint32_t>(in.imm) == kHelperRedirectMap) {
      // redirect_map consults devmap/XSK map state and diverts the frame to
      // AF_XDP; keep those programs on the interpreter path wholesale.
      return refuse("redirect_map (XSK) program");
    }
  }

  auto jp = std::make_shared<JitProgram>();
  std::vector<JitOp>& ops = jp->ops;
  ops.reserve(n + 1);
  std::vector<std::size_t> op_index;
  op_index.resize(std::min(n, kMaxInsns));
  struct Fixup {
    std::size_t op;
    std::size_t target_pc;
  };
  std::vector<Fixup> fixups;

  // A window [pc, pc+len) is fusable iff it is in range and no interior
  // instruction is a jump target.
  auto open = [&](std::size_t pc, std::size_t len) {
    if (pc + len > n) return false;
    for (std::size_t k = 1; k < len; ++k) {
      if (head[pc + k]) return false;
    }
    return true;
  };
  auto jcc_target = [&](std::size_t jpc) {
    return jpc + 1 + static_cast<std::size_t>(ins[jpc].off);
  };

  std::size_t pc = 0;
  while (pc < n) {
    op_index[pc] = ops.size();
    const Insn& a = ins[pc];
    JitOp op;
    std::size_t consumed = 0;
    std::size_t branch_pc = 0;  // trailing jcc's pc when the op branches

    // Superinstruction matching, longest window first. Every pattern keeps
    // branches/exits strictly final so insn_count stays constant per op.
    if (a.op == Op::kLdx && open(pc, 4)) {
      const Insn& b = ins[pc + 1];
      const Insn& c = ins[pc + 2];
      const Insn& d = ins[pc + 3];
      if ((b.op == Op::kBe16 || b.op == Op::kBe32) && b.dst == a.dst &&
          c.op == Op::kAnd && c.use_imm && c.dst == a.dst &&
          is_cond_jump(d.op) && d.use_imm && d.dst == a.dst) {
        op.fn = b.op == Op::kBe16 ? pick_ldx_be_and_jcc<Swap::k16>(d.op)
                                  : pick_ldx_be_and_jcc<Swap::k32>(d.op);
        op.dst = a.dst;
        op.src = a.src;
        op.size = a.size;
        op.off = a.off;
        op.imm = c.imm;
        op.imm2 = d.imm;
        consumed = 4;
        branch_pc = pc + 3;
      }
    }
    if (consumed == 0 && a.op == Op::kMov && !a.use_imm && open(pc, 3)) {
      const Insn& b = ins[pc + 1];
      const Insn& c = ins[pc + 2];
      if (b.op == Op::kAdd && b.use_imm && b.dst == a.dst &&
          is_cond_jump(c.op) && !c.use_imm && c.dst == a.dst) {
        op.fn = pick_mov_add_jcc(c.op);
        op.dst = a.dst;
        op.src = a.src;
        op.imm = b.imm;
        op.dst2 = c.src;
        consumed = 3;
        branch_pc = pc + 2;
      }
    }
    if (consumed == 0 && a.op == Op::kLdx && open(pc, 3)) {
      const Insn& b = ins[pc + 1];
      const Insn& c = ins[pc + 2];
      if ((b.op == Op::kBe16 || b.op == Op::kBe32) && b.dst == a.dst &&
          is_cond_jump(c.op) && c.use_imm && c.dst == a.dst) {
        op.fn = b.op == Op::kBe16 ? pick_ldx_be_jcc<Swap::k16>(c.op)
                                  : pick_ldx_be_jcc<Swap::k32>(c.op);
        op.dst = a.dst;
        op.src = a.src;
        op.size = a.size;
        op.off = a.off;
        op.imm2 = c.imm;
        consumed = 3;
        branch_pc = pc + 2;
      } else if (b.op == Op::kAnd && b.use_imm && b.dst == a.dst &&
                 is_cond_jump(c.op) && c.use_imm && c.dst == a.dst) {
        op.fn = pick_ldx_and_jcc(c.op);
        op.dst = a.dst;
        op.src = a.src;
        op.size = a.size;
        op.off = a.off;
        op.imm = b.imm;
        op.imm2 = c.imm;
        consumed = 3;
        branch_pc = pc + 2;
      } else if ((b.op == Op::kBe16 || b.op == Op::kBe32) && b.dst == a.dst &&
                 c.op == Op::kStx && c.src == a.dst) {
        op.fn = b.op == Op::kBe16 ? h_ldx_be_stx<Swap::k16>
                                  : h_ldx_be_stx<Swap::k32>;
        op.dst = a.dst;
        op.src = a.src;
        op.size = a.size;
        op.off = a.off;
        op.dst2 = c.dst;
        op.off2 = c.off;
        op.size2 = c.size;
        consumed = 3;
      }
    }
    if (consumed == 0 && a.op == Op::kLdx && open(pc, 2)) {
      const Insn& b = ins[pc + 1];
      if (is_cond_jump(b.op) && b.use_imm && b.dst == a.dst) {
        op.fn = pick_ldx_jcc(b.op);
        op.dst = a.dst;
        op.src = a.src;
        op.size = a.size;
        op.off = a.off;
        op.imm2 = b.imm;
        consumed = 2;
        branch_pc = pc + 1;
      } else if (b.op == Op::kStx && b.src == a.dst) {
        op.fn = h_ldx_be_stx<Swap::kNone>;
        op.dst = a.dst;
        op.src = a.src;
        op.size = a.size;
        op.off = a.off;
        op.dst2 = b.dst;
        op.off2 = b.off;
        op.size2 = b.size;
        consumed = 2;
      }
    }
    if (consumed == 0 && a.op == Op::kMov && !a.use_imm && open(pc, 2)) {
      const Insn& b = ins[pc + 1];
      if (b.op == Op::kAdd && b.use_imm && b.dst == a.dst) {
        op.fn = h_mov_add;
        op.dst = a.dst;
        op.src = a.src;
        op.imm = b.imm;
        consumed = 2;
      }
    }
    if (consumed == 0 && fusable_alu(a.op) && a.use_imm && open(pc, 2)) {
      const Insn& b = ins[pc + 1];
      if (fusable_alu(b.op) && b.use_imm) {
        op.fn = pick_alu_pair(a.op, b.op);
        op.dst = a.dst;
        op.imm = a.imm;
        op.dst2 = b.dst;
        op.imm2 = b.imm;
        consumed = 2;
      }
    }
    if (consumed == 0 && a.op == Op::kCall &&
        static_cast<std::uint32_t>(a.imm) != kHelperTailCall && open(pc, 2)) {
      const Insn& b = ins[pc + 1];
      if (is_cond_jump(b.op) && b.use_imm) {
        op.fn = pick_call_jcc(b.op);
        op.imm = a.imm;
        op.dst2 = b.dst;
        op.imm2 = b.imm;
        consumed = 2;
        branch_pc = pc + 1;
      }
    }
    if (consumed == 0 && a.op == Op::kMov && a.use_imm && open(pc, 2) &&
        ins[pc + 1].op == Op::kExit) {
      op.fn = h_mov_imm_exit;
      op.dst = a.dst;
      op.imm = a.imm;
      consumed = 2;
    }

    // Single-instruction fallthrough.
    if (consumed == 0) {
      op.dst = a.dst;
      op.src = a.src;
      op.size = a.size;
      op.off = a.off;
      op.imm = a.imm;
      consumed = 1;
      if (a.op <= Op::kBe32) {
        op.fn = a.use_imm ? pick_alu<true>(a.op) : pick_alu<false>(a.op);
      } else if (a.op == Op::kLdx) {
        op.fn = h_ldx;
      } else if (a.op == Op::kStx) {
        op.fn = h_stx;
      } else if (a.op == Op::kSt) {
        op.fn = h_st;
      } else if (a.op == Op::kJa) {
        op.fn = h_ja;
        branch_pc = pc;
      } else if (is_cond_jump(a.op)) {
        op.fn = pick_jcc(a.op, a.use_imm);
        branch_pc = pc;
      } else if (a.op == Op::kCall) {
        op.fn = static_cast<std::uint32_t>(a.imm) == kHelperTailCall
                    ? h_tail_call
                    : h_call;
      } else {  // Op::kExit
        op.fn = h_exit;
      }
    }

    if (op.fn == nullptr) return refuse("no handler for instruction");
    op.insn_count = static_cast<std::uint8_t>(consumed);
    if (branch_pc != 0 || (consumed == 1 &&
                           (a.op == Op::kJa || is_cond_jump(a.op)))) {
      fixups.push_back({ops.size(), jcc_target(branch_pc ? branch_pc : pc)});
    }
    ops.push_back(op);
    if (consumed > 1) ++jp->n_fused;
    pc += consumed;
  }

  // Fell-off-the-end sentinel, then branch-target resolution (the ops vector
  // is final, so the pointers stay valid for the JitProgram's lifetime).
  JitOp sentinel;
  sentinel.fn = h_fell_off;
  sentinel.insn_count = 0;
  ops.push_back(sentinel);
  for (const Fixup& f : fixups) {
    ops[f.op].target = ops.data() + op_index[f.target_pc];
  }
  jp->n_insns = n;
  return jp;
}

// --- dispatch loop ------------------------------------------------------------

VmResult Vm::run_jit(const Program& entry_prog, HelperContext& hctx,
                     VmResult result) {
  result.jit = true;
  if (!entry_prog.jit) {
    // Untranslated entry program: the whole run is an interpreter fallback.
    ++result.jit_fallbacks;
    return interpret(entry_prog, hctx, std::move(result));
  }
  RunState& state = *state_;
  jit_detail::ExecState st{*this,       state, hctx, result,
                           cost_,       prog_table_, &entry_prog};
  st.executed = result.insns_executed;

  const JitOp* op = entry_prog.jit->ops.data();
  while (op) {
    st.executed += op->insn_count;
    op = op->fn(op, st);
  }

  if (st.outcome == jit_detail::ExecState::kDemote) {
    // Tail call landed in an untranslated program; the interpreter picks up
    // with the carried counters so cycle accounting stays engine-invariant.
    ++result.jit_fallbacks;
    result.insns_executed = st.executed;
    return interpret(*st.demote_target, hctx, std::move(result));
  }

  result.insns_executed = st.executed;
  result.cycles = st.executed * cost_.bpf_insn + state.extra_cycles;
  for (int r = 0; r < kNumRegs; ++r) result.regs[r] = state.regs[r];
  if (st.outcome == jit_detail::ExecState::kAbort) {
    result.aborted = true;
    result.error = std::move(st.error);
    result.ret = kActAborted;
    return result;
  }
  result.ret = state.regs[kR0];
  result.redirect_ifindex = state.redirect_ifindex;
  result.redirect_xsk = state.redirect_xsk;
  if (auto* t = util::active_packet_trace()) {
    t->add("ebpf", "exit", result.cycles, action_name(result.ret));
  }
  return result;
}

}  // namespace linuxfp::ebpf
