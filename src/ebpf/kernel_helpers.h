// Kernel-bound helper functions.
//
// These are the unification mechanism of LinuxFP (paper §IV-B2): instead of
// mirroring configuration into eBPF maps, fast-path programs call helpers
// that read (and where appropriate update) the *live* kernel structures —
// the FIB, the bridge FDB, iptables rules/ipsets and conntrack. bpf_fib_lookup
// exists in mainline; bpf_fdb_lookup and bpf_ipt_lookup are the ~260 LoC the
// paper adds to its kernel fork; bpf_ct_lookup supports the ipvs future-work
// extension.
//
// Param structs live on the BPF stack; layouts below are shared between the
// code generator (core/fpm_library) and the helper implementations.
#pragma once

#include <cstdint>

#include "ebpf/program.h"
#include "kernel/cost_model.h"

namespace linuxfp::ebpf {

// --- struct bpf_fib_lookup (modeled, 40 bytes) -------------------------------
// in:  ifindex (u32), ipv4_dst (u32 host order)
// out: out_ifindex (u32), smac[6], dmac[6], mtu (u32)
inline constexpr std::int32_t kFibParamIfindex = 0;
inline constexpr std::int32_t kFibParamDst = 4;
inline constexpr std::int32_t kFibParamOutIfindex = 8;
inline constexpr std::int32_t kFibParamSmac = 12;
inline constexpr std::int32_t kFibParamDmac = 18;
inline constexpr std::int32_t kFibParamMtu = 24;
inline constexpr std::int32_t kFibParamSize = 40;
// return values (mirroring BPF_FIB_LKUP_RET_*)
inline constexpr std::uint64_t kFibLkupSuccess = 0;
inline constexpr std::uint64_t kFibLkupNotFwded = 1;  // no route / blackhole
inline constexpr std::uint64_t kFibLkupNoNeigh = 7;   // punt: resolve via slow path

// --- struct bpf_fdb_lookup (24 bytes) ----------------------------------------
// in:  ifindex (u32, ingress bridge port), vlan (u16), dmac[6], smac[6]
// out: out_ifindex (u32)
inline constexpr std::int32_t kFdbParamIfindex = 0;
inline constexpr std::int32_t kFdbParamVlan = 4;
inline constexpr std::int32_t kFdbParamDmac = 6;
inline constexpr std::int32_t kFdbParamSmac = 12;
inline constexpr std::int32_t kFdbParamOutIfindex = 20;
inline constexpr std::int32_t kFdbParamSize = 24;
inline constexpr std::uint64_t kFdbLkupSuccess = 0;
inline constexpr std::uint64_t kFdbLkupMiss = 1;       // punt: flood in slow path
inline constexpr std::uint64_t kFdbLkupLearn = 2;      // punt: src unknown, learn
inline constexpr std::uint64_t kFdbLkupBlocked = 3;    // STP forbids forwarding
inline constexpr std::uint64_t kFdbLkupVlanDenied = 4; // VLAN filtering denied

// --- struct bpf_ipt_lookup (24 bytes) ---------------------------------------
// in: src (u32), dst (u32), proto (u8), hook (u8), sport (u16), dport (u16),
//     in_ifindex (u32), out_ifindex (u32)
inline constexpr std::int32_t kIptParamSrc = 0;
inline constexpr std::int32_t kIptParamDst = 4;
inline constexpr std::int32_t kIptParamProto = 8;
inline constexpr std::int32_t kIptParamHook = 9;
inline constexpr std::int32_t kIptParamSport = 10;
inline constexpr std::int32_t kIptParamDport = 12;
inline constexpr std::int32_t kIptParamInIf = 16;
inline constexpr std::int32_t kIptParamOutIf = 20;
inline constexpr std::int32_t kIptParamSize = 24;
inline constexpr std::uint64_t kIptVerdictAccept = 0;
inline constexpr std::uint64_t kIptVerdictDrop = 1;
inline constexpr std::uint64_t kIptVerdictPunt = 2;  // unsupported construct
inline constexpr std::uint8_t kIptHookForward = 0;
inline constexpr std::uint8_t kIptHookInput = 1;
inline constexpr std::uint8_t kIptHookOutput = 2;

// --- struct bpf_ct_lookup (32 bytes) ------------------------------------------
// in:  src (u32), dst (u32), proto (u8), pad, sport (u16), dport (u16)
// out: state (u32): 0 new, 1 established
//      rewrite_addr/rewrite_port: NAT rewrite this direction needs (the
//      DNAT backend for original-direction packets; the VIP for replies)
//      flags: bit0 = reply direction, bit1 = rewrite needed
inline constexpr std::int32_t kCtParamSrc = 0;
inline constexpr std::int32_t kCtParamDst = 4;
inline constexpr std::int32_t kCtParamProto = 8;
inline constexpr std::int32_t kCtParamSport = 10;
inline constexpr std::int32_t kCtParamDport = 12;
inline constexpr std::int32_t kCtParamState = 16;
inline constexpr std::int32_t kCtParamRewriteAddr = 20;
inline constexpr std::int32_t kCtParamRewritePort = 24;
inline constexpr std::int32_t kCtParamFlags = 26;
inline constexpr std::int32_t kCtParamSize = 32;
inline constexpr std::uint64_t kCtLkupFound = 0;
inline constexpr std::uint64_t kCtLkupMiss = 1;  // punt: slow path creates
inline constexpr std::uint8_t kCtFlagReply = 0x1;
inline constexpr std::uint8_t kCtFlagRewrite = 0x2;

// Registers the full helper set (generic map/ktime/redirect helpers plus all
// kernel-bound helpers). `cost` provides charges for helpers executed when
// no kernel is bound.
void register_all_helpers(HelperRegistry& registry,
                          const kern::CostModel& cost);

// Registers only the helpers available in a mainline kernel (no
// bpf_fdb_lookup / bpf_ipt_lookup / bpf_ct_lookup). Used by the Capability
// Manager tests: synthesis must degrade when the kernel lacks the paper's
// helper patches.
void register_mainline_helpers(HelperRegistry& registry,
                               const kern::CostModel& cost);

}  // namespace linuxfp::ebpf
