#include "ebpf/loader.h"

#include "ebpf/builder.h"
#include "util/logging.h"

namespace linuxfp::ebpf {

Attachment::Attachment(std::string name, HookType hook, kern::Kernel& kernel,
                       const HelperRegistry& helpers)
    : name_(std::move(name)), hook_(hook), kernel_(kernel), helpers_(helpers) {
  vm_ = std::make_unique<Vm>(kernel_.cost(), helpers_, maps_, &programs_);
}

util::Result<std::uint32_t> Attachment::load(Program prog) {
  VerifyOptions opts;
  opts.helpers = &helpers_;
  opts.maps = &maps_;
  auto status = verify(prog, opts);
  if (!status.ok()) return status.error();
  programs_.push_back(std::move(prog));
  return static_cast<std::uint32_t>(programs_.size() - 1);
}

void Attachment::enable_dispatcher() {
  if (dispatcher_enabled_) return;
  prog_array_id_ = maps_.create("fp_dispatch", MapType::kProgArray, 4, 4, 256);

  ProgramBuilder b("dispatcher", hook_);
  // bpf_tail_call(ctx, prog_array, 0); fall through to PASS on miss so the
  // window between attach and first deploy degrades to pure Linux.
  b.mov_reg(kR6, kR1);
  b.mov_reg(kR1, kR6);
  b.mov(kR2, prog_array_id_);
  b.mov(kR3, 0);
  b.call(kHelperTailCall);
  b.ret(kActPass);
  auto prog = b.build();
  LFP_CHECK(prog.ok());
  auto id = load(std::move(prog).take());
  LFP_CHECK_MSG(id.ok(), "dispatcher failed verification");
  entry_prog_ = id.value();
  has_entry_ = true;
  dispatcher_enabled_ = true;
}

util::Status Attachment::swap(std::uint32_t prog_id) {
  if (!dispatcher_enabled_) {
    return util::Error::make("loader.nodispatch", "dispatcher not enabled");
  }
  if (prog_id >= programs_.size()) {
    return util::Error::make("loader.badprog", "unknown program id");
  }
  Map* prog_array = maps_.get(prog_array_id_);
  auto st = prog_array->set_prog(0, prog_id);
  if (st.ok()) active_prog_ = prog_id;
  return st;
}

util::Status Attachment::set_entry(std::uint32_t prog_id) {
  if (prog_id >= programs_.size()) {
    return util::Error::make("loader.badprog", "unknown program id");
  }
  entry_prog_ = prog_id;
  active_prog_ = prog_id;
  has_entry_ = true;
  return {};
}

std::uint32_t Attachment::register_xsk(AfXdpSocket* socket) {
  xsk_sockets_.push_back(socket);
  return static_cast<std::uint32_t>(xsk_sockets_.size() - 1);
}

Attachment::RunResult Attachment::run(net::Packet& pkt, int ingress_ifindex) {
  RunResult out;
  if (!has_entry_) {
    out.verdict = Verdict::kPass;
    return out;
  }
  VmResult r = vm_->run(programs_[entry_prog_], pkt, ingress_ifindex,
                        &kernel_);
  ++stats_.runs;
  stats_.total_cycles += r.cycles;
  stats_.total_insns += r.insns_executed;
  out.cycles = r.cycles;
  if (r.aborted) {
    ++stats_.aborted;
    out.verdict = Verdict::kAborted;
    LFP_WARN("ebpf") << name_ << " aborted: " << r.error;
    return out;
  }
  switch (r.ret) {
    case kActDrop:
      ++stats_.drop;
      out.verdict = Verdict::kDrop;
      break;
    case kActTx:
      ++stats_.tx;
      out.verdict = Verdict::kTx;
      break;
    case kActRedirect:
      if (r.redirect_xsk >= 0) {
        // AF_XDP delivery: hand the frame to the bound user-space socket.
        if (static_cast<std::size_t>(r.redirect_xsk) < xsk_sockets_.size()) {
          xsk_sockets_[static_cast<std::size_t>(r.redirect_xsk)]->push_rx(
              net::Packet(pkt));
          ++stats_.to_userspace;
          out.verdict = Verdict::kUserspace;
        } else {
          ++stats_.aborted;
          out.verdict = Verdict::kAborted;
        }
        break;
      }
      ++stats_.redirect;
      out.verdict = Verdict::kRedirect;
      out.redirect_ifindex = r.redirect_ifindex;
      break;
    case kActPass:
      ++stats_.pass;
      out.verdict = Verdict::kPass;
      break;
    default:
      ++stats_.aborted;
      out.verdict = Verdict::kAborted;
      break;
  }
  return out;
}

util::Status attach_to_device(kern::Kernel& kernel, const std::string& dev,
                              HookType hook, Attachment* attachment) {
  kern::NetDevice* d = kernel.dev_by_name(dev);
  if (!d) return util::Error::make("dev.missing", "no such device: " + dev);
  switch (hook) {
    case HookType::kXdp: d->attach_xdp(attachment); break;
    case HookType::kTcIngress: d->attach_tc_ingress(attachment); break;
    case HookType::kTcEgress: d->attach_tc_egress(attachment); break;
  }
  return {};
}

void detach_from_device(kern::Kernel& kernel, const std::string& dev,
                        HookType hook) {
  kern::NetDevice* d = kernel.dev_by_name(dev);
  if (!d) return;
  switch (hook) {
    case HookType::kXdp: d->attach_xdp(nullptr); break;
    case HookType::kTcIngress: d->attach_tc_ingress(nullptr); break;
    case HookType::kTcEgress: d->attach_tc_egress(nullptr); break;
  }
}

}  // namespace linuxfp::ebpf
