#include "ebpf/loader.h"

#include "ebpf/builder.h"
#include "ebpf/jit.h"
#include "util/fault.h"
#include "util/logging.h"

namespace linuxfp::ebpf {

Attachment::Attachment(std::string name, HookType hook, kern::Kernel& kernel,
                       const HelperRegistry& helpers)
    : name_(std::move(name)), hook_(hook), kernel_(kernel), helpers_(helpers) {
  vms_.push_back(
      std::make_unique<Vm>(kernel_.cost(), helpers_, maps_, &programs_));
  cpu_stats_.resize(1);
}

void Attachment::prepare_cpus(unsigned n) {
  while (vms_.size() < n) {
    auto vm = std::make_unique<Vm>(kernel_.cost(), helpers_, maps_,
                                   &programs_);
    vm->set_cpu(static_cast<unsigned>(vms_.size()));
    vm->set_metrics(metrics_registry_);
    vm->set_engine(exec_engine_);
    vms_.push_back(std::move(vm));
  }
  if (cpu_stats_.size() < vms_.size()) cpu_stats_.resize(vms_.size());
  if (flow_cache_on_) {
    while (flow_caches_.size() < vms_.size()) {
      auto fc = std::make_unique<engine::FlowCache>();
      fc->set_metrics(fc_metrics_);
      flow_caches_.push_back(std::move(fc));
    }
  }
}

void Attachment::set_flow_cache(bool on) {
  flow_cache_on_ = on;
  if (!on) {
    flow_caches_.clear();
    return;
  }
  while (flow_caches_.size() < vms_.size()) {
    auto fc = std::make_unique<engine::FlowCache>();
    fc->set_metrics(fc_metrics_);
    flow_caches_.push_back(std::move(fc));
  }
}

engine::FlowCacheStats Attachment::flow_cache_stats() const {
  engine::FlowCacheStats total;
  for (const auto& fc : flow_caches_) total += fc->stats();
  return total;
}

AttachmentStats Attachment::stats() const {
  AttachmentStats total;
  for (const CpuStats& shard : cpu_stats_) {
    const AttachmentStats& s = shard.s;
    total.runs += s.runs;
    total.pass += s.pass;
    total.drop += s.drop;
    total.tx += s.tx;
    total.redirect += s.redirect;
    total.to_userspace += s.to_userspace;
    total.aborted += s.aborted;
    total.total_cycles += s.total_cycles;
    total.total_insns += s.total_insns;
    total.jit_runs += s.jit_runs;
    total.jit_fallbacks += s.jit_fallbacks;
  }
  return total;
}

void Attachment::translate_program(Program& prog) {
  if (exec_engine_ != ExecEngine::kJit || prog.jit) return;
  std::string reason;
  prog.jit = jit_translate(prog, &reason);
  if (prog.jit) {
    ++jit_translated_;
  } else {
    ++jit_untranslatable_;
    LFP_DEBUG("ebpf") << name_ << ": program '" << prog.name
                      << "' stays on the interpreter: " << reason;
  }
}

void Attachment::set_exec_engine(ExecEngine engine) {
  exec_engine_ = engine;
  for (auto& vm : vms_) vm->set_engine(engine);
  // Translate everything already loaded (later loads translate eagerly in
  // load()); re-arming the interpreter keeps existing streams — they are
  // immutable and simply go unused.
  if (engine == ExecEngine::kJit) {
    for (Program& prog : programs_) translate_program(prog);
  }
}

util::Result<std::uint32_t> Attachment::load(Program prog) {
  // Injected load failure: models bpf(BPF_PROG_LOAD) returning an error
  // (memlock limits, JIT allocation failure) before verification even runs.
  if (auto st = util::FaultInjector::global().check(util::kFaultLoaderLoad);
      !st.ok()) {
    return st.error();
  }
  VerifyOptions opts;
  opts.helpers = &helpers_;
  opts.maps = &maps_;
  auto status = verify(prog, opts);
  if (!status.ok()) return status.error();
  programs_.push_back(std::move(prog));
  // Decode (and, under kJit, translate) eagerly: per-CPU VMs run this
  // program concurrently and must only ever read the finished streams,
  // never build them.
  programs_.back().decode();
  translate_program(programs_.back());
  return static_cast<std::uint32_t>(programs_.size() - 1);
}

util::Result<LoadedObject> Attachment::load_object(
    const std::vector<MapSpec>& maps, std::vector<Program> progs) {
  LoadedObject obj;
  auto cleanup = [&] {
    util::FaultSuppress suppress;
    for (std::uint32_t id : obj.map_ids) maps_.destroy(id);
    // Programs appended by this call form the table tail; ids were never
    // handed out, so truncation is safe.
    programs_.resize(programs_.size() - obj.prog_ids.size());
  };
  for (const MapSpec& spec : maps) {
    if (auto st = util::FaultInjector::global().check(util::kFaultMapCreate);
        !st.ok()) {
      cleanup();
      return st.error();
    }
    obj.map_ids.push_back(maps_.create(spec.name, spec.type, spec.key_size,
                                       spec.value_size, spec.max_entries));
  }
  for (Program& prog : progs) {
    auto id = load(std::move(prog));
    if (!id.ok()) {
      cleanup();
      return id.error();
    }
    obj.prog_ids.push_back(id.value());
  }
  bump_flow_epoch();  // the reachable program set changed
  return obj;
}

void Attachment::unload_object(const LoadedObject& obj) {
  util::FaultSuppress suppress;
  for (std::uint32_t id : obj.map_ids) maps_.destroy(id);
  if (!obj.prog_ids.empty()) {
    LFP_CHECK_MSG(obj.prog_ids.back() + 1 == programs_.size(),
                  "unload_object: object is not the program-table tail");
    programs_.resize(programs_.size() - obj.prog_ids.size());
    LFP_CHECK_MSG(!has_entry_ || (entry_prog_ < programs_.size() &&
                                  active_prog_ < programs_.size()),
                  "unload_object: active program was in the object");
  }
  bump_flow_epoch();
}

void Attachment::enable_dispatcher() {
  if (dispatcher_enabled_) return;
  // The dispatcher is the degradation anchor: its tail-call-or-PASS stub is
  // what guarantees a missing fast path falls back to Linux. Creating it is
  // modeled as infallible (fault-suppressed) — everything that CAN fail
  // happens behind it and degrades onto it.
  util::FaultSuppress suppress;
  prog_array_id_ = maps_.create("fp_dispatch", MapType::kProgArray, 4, 4, 256);

  ProgramBuilder b("dispatcher", hook_);
  // bpf_tail_call(ctx, prog_array, 0); fall through to PASS on miss so the
  // window between attach and first deploy degrades to pure Linux.
  b.mov_reg(kR6, kR1);
  b.mov_reg(kR1, kR6);
  b.mov(kR2, prog_array_id_);
  b.mov(kR3, 0);
  b.call(kHelperTailCall);
  b.ret(kActPass);
  auto prog = b.build();
  LFP_CHECK(prog.ok());
  auto id = load(std::move(prog).take());
  LFP_CHECK_MSG(id.ok(), "dispatcher failed verification");
  entry_prog_ = id.value();
  has_entry_ = true;
  dispatcher_enabled_ = true;
}

util::Status Attachment::swap(std::uint32_t prog_id) {
  if (!dispatcher_enabled_) {
    return util::Error::make("loader.nodispatch", "dispatcher not enabled");
  }
  if (prog_id >= programs_.size()) {
    return util::Error::make("loader.badprog", "unknown program id");
  }
  Map* prog_array = maps_.get(prog_array_id_);
  auto st = prog_array->set_prog(0, prog_id);
  if (st.ok()) active_prog_ = prog_id;
  // Any deploy — including a rollback after fault injection — flushes every
  // cached verdict: entries carry the epoch they were recorded under.
  bump_flow_epoch();
  return st;
}

util::Status Attachment::set_entry(std::uint32_t prog_id) {
  if (prog_id >= programs_.size()) {
    return util::Error::make("loader.badprog", "unknown program id");
  }
  entry_prog_ = prog_id;
  active_prog_ = prog_id;
  has_entry_ = true;
  bump_flow_epoch();
  return {};
}

std::uint32_t Attachment::register_xsk(AfXdpSocket* socket) {
  xsk_sockets_.push_back(socket);
  return static_cast<std::uint32_t>(xsk_sockets_.size() - 1);
}

void Attachment::set_metrics(util::MetricsRegistry* registry) {
  metrics_registry_ = registry;
  for (auto& vm : vms_) vm->set_metrics(registry);
  if (!registry) {
    m_runs_ = m_cycles_ = nullptr;
    m_jit_runs_ = m_jit_fallbacks_ = nullptr;
    for (auto& v : m_verdicts_) v = nullptr;
    fc_metrics_ = engine::FlowCacheMetrics{};
    for (auto& fc : flow_caches_) fc->set_metrics(fc_metrics_);
    return;
  }
  std::string prefix = "fastpath." + name_ + "." + hook_type_name(hook_) + ".";
  m_runs_ = registry->counter(prefix + "runs");
  m_cycles_ = registry->counter(prefix + "cycles");
  m_jit_runs_ = registry->counter(prefix + "jit.runs");
  m_jit_fallbacks_ = registry->counter(prefix + "jit.fallbacks");
  const char* verdict_names[6] = {"pass",      "drop",    "tx",
                                  "redirect",  "to_userspace", "aborted"};
  for (int i = 0; i < 6; ++i) {
    m_verdicts_[i] = registry->counter(prefix + verdict_names[i]);
  }
  fc_metrics_.registry = registry;
  fc_metrics_.hits = registry->counter("flowcache.hits");
  fc_metrics_.misses = registry->counter("flowcache.misses");
  fc_metrics_.invalidations = registry->counter("flowcache.invalidations");
  fc_metrics_.evictions = registry->counter("flowcache.evictions");
  fc_metrics_.uncacheable = registry->counter("flowcache.uncacheable");
  fc_metrics_.replay_mismatch = registry->counter("flowcache.replay_mismatch");
  for (auto& fc : flow_caches_) fc->set_metrics(fc_metrics_);
}

Attachment::RunResult Attachment::run(net::Packet& pkt, int ingress_ifindex) {
  return run_on_cpu(pkt, ingress_ifindex, 0);
}

Attachment::RunResult Attachment::finish_cache_hit(
    const engine::FlowCache::Hit& hit, AttachmentStats& sh) {
  RunResult out;
  std::uint64_t cycles = kernel_.cost().flowcache_hit;
  ++sh.runs;
  sh.total_cycles += cycles;
  out.cycles = cycles;
  switch (hit.act) {
    case kActDrop:
      ++sh.drop;
      out.verdict = Verdict::kDrop;
      break;
    case kActTx:
      ++sh.tx;
      out.verdict = Verdict::kTx;
      break;
    case kActRedirect:
      ++sh.redirect;
      out.verdict = Verdict::kRedirect;
      out.redirect_ifindex = hit.redirect_ifindex;
      break;
    default:
      ++sh.pass;
      out.verdict = Verdict::kPass;
      break;
  }
  if (metrics_on()) {
    util::bump(m_runs_);
    util::bump(m_cycles_, cycles);
    util::bump(m_verdicts_[static_cast<int>(out.verdict)]);
  }
  if (auto* t = util::active_packet_trace()) {
    t->add("ebpf", "flowcache_hit", cycles, action_name(hit.act));
  }
  return out;
}

Attachment::RunResult Attachment::run_on_cpu(net::Packet& pkt,
                                             int ingress_ifindex,
                                             unsigned cpu) {
  LFP_CHECK_MSG(cpu < vms_.size(), "run_on_cpu without prepare_cpus");
  AttachmentStats& sh = cpu_stats_[cpu].s;
  RunResult out;
  if (!has_entry_) {
    out.verdict = Verdict::kPass;
    return out;
  }
  engine::FlowCache* fc = flow_cache_on_ && cpu < flow_caches_.size()
                              ? flow_caches_[cpu].get()
                              : nullptr;
  if (fc) {
    engine::FlowCache::Hit hit;
    if (fc->try_hit(pkt, ingress_ifindex, flow_epoch(), kernel_, &hit)) {
      return finish_cache_hit(hit, sh);
    }
  }
  if (auto* t = util::active_packet_trace()) {
    t->add("ebpf", "prog_entry", 0, programs_[entry_prog_].name);
  }
  engine::FlowCacheRecorder* rec = nullptr;
  if (fc) {
    rec = &fc->recorder();
    rec->begin(pkt);
  }
  VmResult r = vms_[cpu]->run(programs_[entry_prog_], pkt, ingress_ifindex,
                              &kernel_, rec);
  if (fc) {
    // AF_XDP delivery and aborts escape the replayable model; everything
    // else the recorder judged is insertable.
    bool cacheable =
        !r.aborted && r.redirect_xsk < 0 &&
        (r.ret == kActDrop || r.ret == kActPass || r.ret == kActTx ||
         r.ret == kActRedirect);
    fc->insert(pkt, ingress_ifindex, flow_epoch(), kernel_, *rec, r.ret,
               r.redirect_ifindex, cacheable);
  }
  ++sh.runs;
  sh.total_cycles += r.cycles;
  sh.total_insns += r.insns_executed;
  if (r.jit) {
    ++sh.jit_runs;
    sh.jit_fallbacks += r.jit_fallbacks;
  }
  if (metrics_on()) {
    util::bump(m_runs_);
    util::bump(m_cycles_, r.cycles);
    if (r.jit) util::bump(m_jit_runs_);
    if (r.jit_fallbacks) util::bump(m_jit_fallbacks_, r.jit_fallbacks);
  }
  out.cycles = r.cycles;
  if (r.aborted) {
    ++sh.aborted;
    if (metrics_on()) util::bump(m_verdicts_[static_cast<int>(Verdict::kAborted)]);
    out.verdict = Verdict::kAborted;
    LFP_WARN("ebpf") << name_ << " aborted: " << r.error;
    return out;
  }
  switch (r.ret) {
    case kActDrop:
      ++sh.drop;
      out.verdict = Verdict::kDrop;
      break;
    case kActTx:
      ++sh.tx;
      out.verdict = Verdict::kTx;
      break;
    case kActRedirect:
      if (r.redirect_xsk >= 0) {
        // AF_XDP delivery: hand the frame to the bound user-space socket.
        if (static_cast<std::size_t>(r.redirect_xsk) < xsk_sockets_.size()) {
          xsk_sockets_[static_cast<std::size_t>(r.redirect_xsk)]->push_rx(
              net::Packet(pkt));
          ++sh.to_userspace;
          out.verdict = Verdict::kUserspace;
        } else {
          ++sh.aborted;
          out.verdict = Verdict::kAborted;
        }
        break;
      }
      ++sh.redirect;
      out.verdict = Verdict::kRedirect;
      out.redirect_ifindex = r.redirect_ifindex;
      break;
    case kActPass:
      ++sh.pass;
      out.verdict = Verdict::kPass;
      break;
    default:
      ++sh.aborted;
      out.verdict = Verdict::kAborted;
      break;
  }
  if (metrics_on()) util::bump(m_verdicts_[static_cast<int>(out.verdict)]);
  return out;
}

util::Status attach_to_device(kern::Kernel& kernel, const std::string& dev,
                              HookType hook, kern::PacketProgram* program) {
  // Injected attach failure: models the netlink XDP/TC attach request being
  // rejected (driver without XDP support, qdisc race).
  if (auto st = util::FaultInjector::global().check(util::kFaultLoaderAttach);
      !st.ok()) {
    return st;
  }
  kern::NetDevice* d = kernel.dev_by_name(dev);
  if (!d) return util::Error::make("dev.missing", "no such device: " + dev);
  switch (hook) {
    case HookType::kXdp: d->attach_xdp(program); break;
    case HookType::kTcIngress: d->attach_tc_ingress(program); break;
    case HookType::kTcEgress: d->attach_tc_egress(program); break;
  }
  return {};
}

void detach_from_device(kern::Kernel& kernel, const std::string& dev,
                        HookType hook) {
  kern::NetDevice* d = kernel.dev_by_name(dev);
  if (!d) return;
  switch (hook) {
    case HookType::kXdp: d->attach_xdp(nullptr); break;
    case HookType::kTcIngress: d->attach_tc_ingress(nullptr); break;
    case HookType::kTcEgress: d->attach_tc_egress(nullptr); break;
  }
}

}  // namespace linuxfp::ebpf
