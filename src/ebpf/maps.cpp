#include "ebpf/maps.h"

#include <cstring>

#include "util/fault.h"
#include "util/logging.h"

namespace linuxfp::ebpf {

const char* map_type_name(MapType type) {
  switch (type) {
    case MapType::kArray: return "array";
    case MapType::kHash: return "hash";
    case MapType::kLpmTrie: return "lpm_trie";
    case MapType::kProgArray: return "prog_array";
    case MapType::kDevMap: return "devmap";
    case MapType::kXskMap: return "xskmap";
    case MapType::kPercpuArray: return "percpu_array";
    case MapType::kPercpuHash: return "percpu_hash";
  }
  return "?";
}

Map::Map(std::string name, MapType type, std::uint32_t key_size,
         std::uint32_t value_size, std::uint32_t max_entries)
    : name_(std::move(name)),
      type_(type),
      key_size_(key_size),
      value_size_(value_size),
      max_entries_(max_entries) {
  if (is_array_like()) {
    LFP_CHECK_MSG(key_size_ == 4, "array-like maps require u32 keys");
    array_storage_.resize(std::size_t{max_entries_} * entry_stride(), 0);
    // A per-CPU array is fully allocated up front (the kernel pre-populates
    // every index with zeroed per-CPU storage), so lookups never miss and
    // worker-side updates never allocate.
    array_present_.resize(max_entries_, type_ == MapType::kPercpuArray);
  }
  if (type_ == MapType::kLpmTrie) {
    LFP_CHECK_MSG(key_size_ == 8, "LPM key is {u32 prefixlen, u32 addr}");
  }
}

std::uint8_t* Map::entry_base(const std::uint8_t* key) {
  switch (type_) {
    case MapType::kArray:
    case MapType::kProgArray:
    case MapType::kDevMap:
    case MapType::kXskMap:
    case MapType::kPercpuArray: {
      std::uint32_t index;
      std::memcpy(&index, key, 4);
      if (index >= max_entries_ || !array_present_[index]) return nullptr;
      return array_storage_.data() + std::size_t{index} * entry_stride();
    }
    case MapType::kHash:
    case MapType::kPercpuHash: {
      auto it = hash_storage_.find(key_str(key));
      return it == hash_storage_.end() ? nullptr : it->second.data();
    }
    case MapType::kLpmTrie: {
      std::uint32_t max_len, addr;
      std::memcpy(&max_len, key, 4);
      std::memcpy(&addr, key + 4, 4);
      for (auto& [plen, bucket] : lpm_storage_) {
        if (plen > max_len) continue;
        std::uint32_t mask = plen == 0 ? 0 : (0xffffffffu << (32 - plen));
        auto it = bucket.find(addr & mask);
        if (it != bucket.end()) return it->second.data();
      }
      return nullptr;
    }
  }
  return nullptr;
}

std::uint8_t* Map::lookup(const std::uint8_t* key, unsigned cpu) {
  // A fired lookup fault is a transient miss, exactly what a real lookup
  // failure looks like to eBPF code; the dispatcher then falls through to
  // PASS and the slow path handles the packet.
  if (util::FaultInjector::global().should_fail(util::kFaultMapLookup)) {
    return nullptr;
  }
  if (!is_percpu()) {
    cpu = 0;
  } else if (cpu >= kMaxCpus) {
    return nullptr;
  }
  std::uint8_t* base = entry_base(key);
  if (!base) return nullptr;
  return base + std::size_t{cpu} * value_size_;
}

util::Status Map::update(const std::uint8_t* key, const std::uint8_t* value) {
  if (auto st = util::FaultInjector::global().check(util::kFaultMapUpdate);
      !st.ok()) {
    return st;
  }
  switch (type_) {
    case MapType::kArray:
    case MapType::kProgArray:
    case MapType::kDevMap:
    case MapType::kXskMap:
    case MapType::kPercpuArray: {
      std::uint32_t index;
      std::memcpy(&index, key, 4);
      if (index >= max_entries_) {
        return util::Error::make("map.bounds", "index out of range");
      }
      std::uint8_t* base =
          array_storage_.data() + std::size_t{index} * entry_stride();
      for (unsigned cpu = 0; cpu < (is_percpu() ? kMaxCpus : 1); ++cpu) {
        std::memcpy(base + std::size_t{cpu} * value_size_, value, value_size_);
      }
      array_present_[index] = true;
      return {};
    }
    case MapType::kHash:
    case MapType::kPercpuHash: {
      if (hash_storage_.size() >= max_entries_ &&
          !hash_storage_.count(key_str(key))) {
        return util::Error::make("map.full", "hash map full");
      }
      std::vector<std::uint8_t> entry(entry_stride());
      for (unsigned cpu = 0; cpu < (is_percpu() ? kMaxCpus : 1); ++cpu) {
        std::memcpy(entry.data() + std::size_t{cpu} * value_size_, value,
                    value_size_);
      }
      hash_storage_[key_str(key)] = std::move(entry);
      return {};
    }
    case MapType::kLpmTrie: {
      std::uint32_t plen, addr;
      std::memcpy(&plen, key, 4);
      std::memcpy(&addr, key + 4, 4);
      if (plen > 32) return util::Error::make("map.key", "prefixlen > 32");
      std::uint32_t mask = plen == 0 ? 0 : (0xffffffffu << (32 - plen));
      lpm_storage_[plen][addr & mask] =
          std::vector<std::uint8_t>(value, value + value_size_);
      return {};
    }
  }
  return util::Error::make("map.type", "unsupported");
}

util::Status Map::update_cpu(const std::uint8_t* key,
                             const std::uint8_t* value, unsigned cpu) {
  if (!is_percpu()) return update(key, value);
  if (auto st = util::FaultInjector::global().check(util::kFaultMapUpdate);
      !st.ok()) {
    return st;
  }
  if (cpu >= kMaxCpus) {
    return util::Error::make("map.cpu", "cpu id out of range");
  }
  std::uint8_t* base = entry_base(key);
  if (!base) {
    // Never insert from program context: an insert would mutate the hash
    // table under concurrent workers. Pre-create keys from the control plane.
    return util::Error::make("map.percpu_key",
                             "per-CPU hash update requires an existing key");
  }
  std::memcpy(base + std::size_t{cpu} * value_size_, value, value_size_);
  return {};
}

std::uint64_t Map::percpu_sum(const std::uint8_t* key) {
  std::uint8_t* base = entry_base(key);
  if (!base) return 0;
  const std::size_t width = value_size_ < 8 ? value_size_ : 8;
  const unsigned slots = is_percpu() ? kMaxCpus : 1;
  std::uint64_t sum = 0;
  for (unsigned cpu = 0; cpu < slots; ++cpu) {
    std::uint64_t v = 0;
    std::memcpy(&v, base + std::size_t{cpu} * value_size_, width);
    sum += v;
  }
  return sum;
}

bool Map::erase(const std::uint8_t* key) {
  switch (type_) {
    case MapType::kPercpuArray:
      // Arrays do not support delete (the kernel returns -EINVAL); presence
      // is what makes worker-side slot writes allocation-free.
      return false;
    case MapType::kArray:
    case MapType::kProgArray:
    case MapType::kDevMap:
    case MapType::kXskMap: {
      std::uint32_t index;
      std::memcpy(&index, key, 4);
      if (index >= max_entries_ || !array_present_[index]) return false;
      array_present_[index] = false;
      return true;
    }
    case MapType::kHash:
    case MapType::kPercpuHash:
      return hash_storage_.erase(key_str(key)) > 0;
    case MapType::kLpmTrie: {
      std::uint32_t plen, addr;
      std::memcpy(&plen, key, 4);
      std::memcpy(&addr, key + 4, 4);
      std::uint32_t mask = plen == 0 ? 0 : (0xffffffffu << (32 - plen));
      auto it = lpm_storage_.find(plen);
      if (it == lpm_storage_.end()) return false;
      return it->second.erase(addr & mask) > 0;
    }
  }
  return false;
}

void Map::clear() {
  if (type_ == MapType::kPercpuArray) {
    // Stays fully present; clearing zeroes every slot.
    std::fill(array_storage_.begin(), array_storage_.end(), 0);
  } else {
    std::fill(array_present_.begin(), array_present_.end(), false);
  }
  hash_storage_.clear();
  lpm_storage_.clear();
}

std::size_t Map::size() const {
  switch (type_) {
    case MapType::kArray:
    case MapType::kProgArray:
    case MapType::kDevMap:
    case MapType::kXskMap:
    case MapType::kPercpuArray: {
      std::size_t n = 0;
      for (bool p : array_present_) n += p;
      return n;
    }
    case MapType::kHash:
    case MapType::kPercpuHash:
      return hash_storage_.size();
    case MapType::kLpmTrie: {
      std::size_t n = 0;
      for (const auto& [plen, bucket] : lpm_storage_) n += bucket.size();
      return n;
    }
  }
  return 0;
}

std::optional<std::uint32_t> Map::prog_at(std::uint32_t index) const {
  // Same transient-miss semantics as lookup(): a tail call that misses falls
  // through, degrading the packet to the slow path.
  if (util::FaultInjector::global().should_fail(util::kFaultMapLookup)) {
    return std::nullopt;
  }
  if (index >= max_entries_ || !array_present_[index]) return std::nullopt;
  std::uint32_t id;
  std::memcpy(&id, array_storage_.data() + std::size_t{index} * value_size_, 4);
  return id;
}

util::Status Map::set_prog(std::uint32_t index, std::uint32_t prog_id) {
  LFP_CHECK(type_ == MapType::kProgArray);
  return update(reinterpret_cast<const std::uint8_t*>(&index),
                reinterpret_cast<const std::uint8_t*>(&prog_id));
}

}  // namespace linuxfp::ebpf
