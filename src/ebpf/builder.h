// ProgramBuilder: a small assembler with symbolic labels. The LinuxFP
// synthesizer's code snippets emit instructions through this interface; at
// build() time labels are resolved to relative jump offsets and basic
// structural sanity is checked.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ebpf/program.h"
#include "util/result.h"

namespace linuxfp::ebpf {

class ProgramBuilder {
 public:
  ProgramBuilder(std::string name, HookType hook) {
    prog_.name = std::move(name);
    prog_.hook = hook;
  }

  // --- labels ---------------------------------------------------------------
  ProgramBuilder& label(const std::string& name);
  // Makes label names unique per snippet: "drop" -> "drop@3".
  std::string scoped(const std::string& base) const {
    return base + "@" + std::to_string(scope_);
  }
  void new_scope() { ++scope_; }

  // --- ALU -----------------------------------------------------------------
  ProgramBuilder& mov(int dst, std::int64_t imm);
  ProgramBuilder& mov_reg(int dst, int src);
  ProgramBuilder& add(int dst, std::int64_t imm);
  ProgramBuilder& add_reg(int dst, int src);
  ProgramBuilder& sub(int dst, std::int64_t imm);
  ProgramBuilder& sub_reg(int dst, int src);
  ProgramBuilder& and_(int dst, std::int64_t imm);
  ProgramBuilder& or_(int dst, std::int64_t imm);
  ProgramBuilder& xor_reg(int dst, int src);
  ProgramBuilder& lsh(int dst, std::int64_t imm);
  ProgramBuilder& rsh(int dst, std::int64_t imm);
  ProgramBuilder& be16(int dst);
  ProgramBuilder& be32(int dst);

  // --- memory ---------------------------------------------------------------
  ProgramBuilder& ldx(int dst, int src, std::int32_t off, MemSize size);
  ProgramBuilder& stx(int dst, std::int32_t off, int src, MemSize size);
  ProgramBuilder& st(int dst, std::int32_t off, std::int64_t imm,
                     MemSize size);

  // --- control flow ------------------------------------------------------------
  ProgramBuilder& ja(const std::string& target);
  ProgramBuilder& jeq(int dst, std::int64_t imm, const std::string& target);
  ProgramBuilder& jne(int dst, std::int64_t imm, const std::string& target);
  ProgramBuilder& jgt(int dst, std::int64_t imm, const std::string& target);
  ProgramBuilder& jge(int dst, std::int64_t imm, const std::string& target);
  ProgramBuilder& jlt(int dst, std::int64_t imm, const std::string& target);
  ProgramBuilder& jle(int dst, std::int64_t imm, const std::string& target);
  ProgramBuilder& jset(int dst, std::int64_t imm, const std::string& target);
  ProgramBuilder& jeq_reg(int dst, int src, const std::string& target);
  ProgramBuilder& jne_reg(int dst, int src, const std::string& target);
  ProgramBuilder& jgt_reg(int dst, int src, const std::string& target);
  ProgramBuilder& jlt_reg(int dst, int src, const std::string& target);

  ProgramBuilder& call(std::uint32_t helper_id);
  ProgramBuilder& exit();

  // Convenience: r0 = action; exit.
  ProgramBuilder& ret(std::uint64_t action);

  std::size_t size() const { return prog_.insns.size(); }

  // Resolves labels; fails on unknown/duplicate labels.
  util::Result<Program> build();

 private:
  ProgramBuilder& emit(Insn insn) {
    prog_.insns.push_back(insn);
    return *this;
  }
  ProgramBuilder& jump(Op op, int dst, int src, bool use_imm,
                       std::int64_t imm, const std::string& target);

  Program prog_;
  std::map<std::string, std::size_t> labels_;
  // (insn index, label) pairs awaiting resolution.
  std::vector<std::pair<std::size_t, std::string>> fixups_;
  int scope_ = 0;
};

}  // namespace linuxfp::ebpf
