// eBPF maps: array, hash, LPM trie, program array (tail-call targets) and
// device map (redirect targets). Keys and values are raw byte strings, as in
// the kernel.
//
// Note LinuxFP's design point (paper §IV-B2): LinuxFP FPMs deliberately do
// NOT mirror kernel state into maps — they use kernel-bound helpers instead.
// Maps exist in this substrate because (a) the tail-call dispatcher that
// gives atomic fast-path swap is a prog-array map, and (b) the Polycube
// baseline uses maps for its mirrored state, which is exactly the
// architectural difference the coherence ablation measures.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/result.h"

namespace linuxfp::ebpf {

enum class MapType {
  kArray,
  kHash,
  kLpmTrie,
  kProgArray,
  kDevMap,
  kXskMap,
  kPercpuArray,
  kPercpuHash,
};

const char* map_type_name(MapType type);

// NR_CPUS analogue: per-CPU maps allocate this many value slots per entry,
// regardless of how many engine workers actually run (the kernel sizes
// per-CPU map storage by nr_cpu_ids, not by the online mask).
inline constexpr unsigned kMaxCpus = 16;

class Map {
 public:
  Map(std::string name, MapType type, std::uint32_t key_size,
      std::uint32_t value_size, std::uint32_t max_entries);

  const std::string& name() const { return name_; }
  MapType type() const { return type_; }
  std::uint32_t key_size() const { return key_size_; }
  std::uint32_t value_size() const { return value_size_; }
  std::uint32_t max_entries() const { return max_entries_; }

  // Returns a pointer to the stored value bytes (stable until the entry is
  // deleted), or nullptr on miss. On a per-CPU map this is CPU 0's slot;
  // program-side lookups go through the cpu overload below.
  std::uint8_t* lookup(const std::uint8_t* key) { return lookup(key, 0); }
  // Per-CPU-aware lookup: on a per-CPU map returns `cpu`'s slot of the entry
  // (the kernel's this_cpu_ptr semantics); on ordinary maps `cpu` is ignored.
  // Slots of one entry are distinct bytes, so concurrent workers touching
  // their own slots never race.
  std::uint8_t* lookup(const std::uint8_t* key, unsigned cpu);

  // Control-plane update. On a per-CPU map the value is replicated into every
  // CPU slot (like bpf_map_update_elem from syscall context with a single
  // value). Creates hash entries — single-threaded control plane only.
  util::Status update(const std::uint8_t* key, const std::uint8_t* value);
  // Program-side update: writes only `cpu`'s slot of a per-CPU entry. To stay
  // lock-free under the worker pool, a per-CPU *hash* entry must already
  // exist (pre-created from the control plane) — a missing key is an error,
  // never an insert. Per-CPU array slots always exist. Ordinary maps forward
  // to update().
  util::Status update_cpu(const std::uint8_t* key, const std::uint8_t* value,
                          unsigned cpu);

  // Aggregate-on-read for per-CPU maps: sums the first min(value_size, 8)
  // little-endian bytes of every CPU slot (the pattern of reading a per-CPU
  // counter map from user space). 0 on miss; on ordinary maps, reads the
  // single value the same way.
  std::uint64_t percpu_sum(const std::uint8_t* key);

  bool erase(const std::uint8_t* key);
  void clear();
  std::size_t size() const;

  // LPM trie lookup: key layout is {u32 prefix_len, u32 be_addr} like the
  // kernel's bpf_lpm_trie_key. Regular lookup() on an LPM map performs LPM.

  // Prog-array convenience (value is a u32 program id).
  std::optional<std::uint32_t> prog_at(std::uint32_t index) const;
  util::Status set_prog(std::uint32_t index, std::uint32_t prog_id);

  // Cost class used by the VM to charge map operations.
  bool is_array_like() const {
    return type_ == MapType::kArray || type_ == MapType::kProgArray ||
           type_ == MapType::kDevMap || type_ == MapType::kXskMap ||
           type_ == MapType::kPercpuArray;
  }
  bool is_percpu() const {
    return type_ == MapType::kPercpuArray || type_ == MapType::kPercpuHash;
  }

 private:
  std::string key_str(const std::uint8_t* key) const {
    return std::string(reinterpret_cast<const char*>(key), key_size_);
  }

  // Bytes one entry occupies: per-CPU maps hold kMaxCpus slots per entry.
  std::size_t entry_stride() const {
    return std::size_t{value_size_} * (is_percpu() ? kMaxCpus : 1);
  }

  // Locates the entry's storage (slot 0 for per-CPU maps) without fault
  // injection; nullptr on miss.
  std::uint8_t* entry_base(const std::uint8_t* key);

  std::string name_;
  MapType type_;
  std::uint32_t key_size_;
  std::uint32_t value_size_;
  std::uint32_t max_entries_;

  // Array storage: contiguous slots. Hash/LPM: map keyed by bytes.
  std::vector<std::uint8_t> array_storage_;
  std::vector<bool> array_present_;
  std::unordered_map<std::string, std::vector<std::uint8_t>> hash_storage_;
  // LPM: entries grouped by prefix length (longest first at lookup).
  std::map<std::uint32_t, std::unordered_map<std::uint32_t,
                                             std::vector<std::uint8_t>>,
           std::greater<>>
      lpm_storage_;
};

}  // namespace linuxfp::ebpf
