#include "ebpf/builder.h"

namespace linuxfp::ebpf {

ProgramBuilder& ProgramBuilder::label(const std::string& name) {
  labels_[name] = prog_.insns.size();
  return *this;
}

ProgramBuilder& ProgramBuilder::mov(int dst, std::int64_t imm) {
  return emit({Op::kMov, static_cast<std::uint8_t>(dst), 0, true, 0, imm,
               MemSize::kU64});
}

ProgramBuilder& ProgramBuilder::mov_reg(int dst, int src) {
  return emit({Op::kMov, static_cast<std::uint8_t>(dst),
               static_cast<std::uint8_t>(src), false, 0, 0, MemSize::kU64});
}

ProgramBuilder& ProgramBuilder::add(int dst, std::int64_t imm) {
  return emit({Op::kAdd, static_cast<std::uint8_t>(dst), 0, true, 0, imm,
               MemSize::kU64});
}

ProgramBuilder& ProgramBuilder::add_reg(int dst, int src) {
  return emit({Op::kAdd, static_cast<std::uint8_t>(dst),
               static_cast<std::uint8_t>(src), false, 0, 0, MemSize::kU64});
}

ProgramBuilder& ProgramBuilder::sub(int dst, std::int64_t imm) {
  return emit({Op::kSub, static_cast<std::uint8_t>(dst), 0, true, 0, imm,
               MemSize::kU64});
}

ProgramBuilder& ProgramBuilder::sub_reg(int dst, int src) {
  return emit({Op::kSub, static_cast<std::uint8_t>(dst),
               static_cast<std::uint8_t>(src), false, 0, 0, MemSize::kU64});
}

ProgramBuilder& ProgramBuilder::and_(int dst, std::int64_t imm) {
  return emit({Op::kAnd, static_cast<std::uint8_t>(dst), 0, true, 0, imm,
               MemSize::kU64});
}

ProgramBuilder& ProgramBuilder::or_(int dst, std::int64_t imm) {
  return emit({Op::kOr, static_cast<std::uint8_t>(dst), 0, true, 0, imm,
               MemSize::kU64});
}

ProgramBuilder& ProgramBuilder::xor_reg(int dst, int src) {
  return emit({Op::kXor, static_cast<std::uint8_t>(dst),
               static_cast<std::uint8_t>(src), false, 0, 0, MemSize::kU64});
}

ProgramBuilder& ProgramBuilder::lsh(int dst, std::int64_t imm) {
  return emit({Op::kLsh, static_cast<std::uint8_t>(dst), 0, true, 0, imm,
               MemSize::kU64});
}

ProgramBuilder& ProgramBuilder::rsh(int dst, std::int64_t imm) {
  return emit({Op::kRsh, static_cast<std::uint8_t>(dst), 0, true, 0, imm,
               MemSize::kU64});
}

ProgramBuilder& ProgramBuilder::be16(int dst) {
  return emit({Op::kBe16, static_cast<std::uint8_t>(dst), 0, true, 0, 0,
               MemSize::kU64});
}

ProgramBuilder& ProgramBuilder::be32(int dst) {
  return emit({Op::kBe32, static_cast<std::uint8_t>(dst), 0, true, 0, 0,
               MemSize::kU64});
}

ProgramBuilder& ProgramBuilder::ldx(int dst, int src, std::int32_t off,
                                    MemSize size) {
  return emit({Op::kLdx, static_cast<std::uint8_t>(dst),
               static_cast<std::uint8_t>(src), false, off, 0, size});
}

ProgramBuilder& ProgramBuilder::stx(int dst, std::int32_t off, int src,
                                    MemSize size) {
  return emit({Op::kStx, static_cast<std::uint8_t>(dst),
               static_cast<std::uint8_t>(src), false, off, 0, size});
}

ProgramBuilder& ProgramBuilder::st(int dst, std::int32_t off,
                                   std::int64_t imm, MemSize size) {
  return emit({Op::kSt, static_cast<std::uint8_t>(dst), 0, true, off, imm,
               size});
}

ProgramBuilder& ProgramBuilder::jump(Op op, int dst, int src, bool use_imm,
                                     std::int64_t imm,
                                     const std::string& target) {
  fixups_.emplace_back(prog_.insns.size(), target);
  return emit({op, static_cast<std::uint8_t>(dst),
               static_cast<std::uint8_t>(src), use_imm, 0, imm,
               MemSize::kU64});
}

ProgramBuilder& ProgramBuilder::ja(const std::string& t) {
  return jump(Op::kJa, 0, 0, true, 0, t);
}
ProgramBuilder& ProgramBuilder::jeq(int d, std::int64_t i, const std::string& t) {
  return jump(Op::kJeq, d, 0, true, i, t);
}
ProgramBuilder& ProgramBuilder::jne(int d, std::int64_t i, const std::string& t) {
  return jump(Op::kJne, d, 0, true, i, t);
}
ProgramBuilder& ProgramBuilder::jgt(int d, std::int64_t i, const std::string& t) {
  return jump(Op::kJgt, d, 0, true, i, t);
}
ProgramBuilder& ProgramBuilder::jge(int d, std::int64_t i, const std::string& t) {
  return jump(Op::kJge, d, 0, true, i, t);
}
ProgramBuilder& ProgramBuilder::jlt(int d, std::int64_t i, const std::string& t) {
  return jump(Op::kJlt, d, 0, true, i, t);
}
ProgramBuilder& ProgramBuilder::jle(int d, std::int64_t i, const std::string& t) {
  return jump(Op::kJle, d, 0, true, i, t);
}
ProgramBuilder& ProgramBuilder::jset(int d, std::int64_t i, const std::string& t) {
  return jump(Op::kJset, d, 0, true, i, t);
}
ProgramBuilder& ProgramBuilder::jeq_reg(int d, int s, const std::string& t) {
  return jump(Op::kJeq, d, s, false, 0, t);
}
ProgramBuilder& ProgramBuilder::jne_reg(int d, int s, const std::string& t) {
  return jump(Op::kJne, d, s, false, 0, t);
}
ProgramBuilder& ProgramBuilder::jgt_reg(int d, int s, const std::string& t) {
  return jump(Op::kJgt, d, s, false, 0, t);
}
ProgramBuilder& ProgramBuilder::jlt_reg(int d, int s, const std::string& t) {
  return jump(Op::kJlt, d, s, false, 0, t);
}

ProgramBuilder& ProgramBuilder::call(std::uint32_t helper_id) {
  return emit({Op::kCall, 0, 0, true, 0, helper_id, MemSize::kU64});
}

ProgramBuilder& ProgramBuilder::exit() {
  return emit({Op::kExit, 0, 0, true, 0, 0, MemSize::kU64});
}

ProgramBuilder& ProgramBuilder::ret(std::uint64_t action) {
  mov(kR0, static_cast<std::int64_t>(action));
  return exit();
}

util::Result<Program> ProgramBuilder::build() {
  for (const auto& [index, target] : fixups_) {
    auto it = labels_.find(target);
    if (it == labels_.end()) {
      return util::Error::make("builder.label",
                               "undefined label: " + target);
    }
    std::int64_t off = static_cast<std::int64_t>(it->second) -
                       static_cast<std::int64_t>(index) - 1;
    prog_.insns[index].off = static_cast<std::int32_t>(off);
  }
  return prog_;
}

}  // namespace linuxfp::ebpf
