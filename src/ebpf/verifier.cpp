#include "ebpf/verifier.h"

#include <array>
#include <deque>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "util/fault.h"
#include "util/logging.h"

namespace linuxfp::ebpf {

namespace {

using util::Error;
using util::Status;

enum class RT : std::uint8_t {
  kUninit,
  kScalar,
  kPtrStack,
  kPtrCtx,
  kPtrPacket,
  kPtrPacketEnd,
  kPtrMapValue,
  kPtrMapValueOrNull,
};

struct RegState {
  RT type = RT::kUninit;
  std::int64_t off = 0;          // pointer offset
  bool const_known = false;      // scalar constant tracking
  std::int64_t const_val = 0;
  std::uint32_t mv_size = 0;     // map value size for map-value pointers

  static RegState scalar() {
    RegState r;
    r.type = RT::kScalar;
    return r;
  }
  static RegState konst(std::int64_t v) {
    RegState r;
    r.type = RT::kScalar;
    r.const_known = true;
    r.const_val = v;
    return r;
  }
  bool is_ptr() const {
    return type != RT::kUninit && type != RT::kScalar;
  }
};

struct AbsState {
  std::size_t pc = 0;
  std::array<RegState, kNumRegs> regs;
  // Bytes from packet start proven to be readable (data + verified <= end).
  std::int64_t pkt_verified = 0;

  // State fingerprint for join-point pruning: exploring the same abstract
  // state at the same pc twice cannot find new violations.
  std::uint64_t fingerprint() const {
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 1099511628211ull;
    };
    for (const RegState& r : regs) {
      mix(static_cast<std::uint64_t>(r.type));
      mix(static_cast<std::uint64_t>(r.off));
      mix(r.const_known ? static_cast<std::uint64_t>(r.const_val) + 1 : 0);
      mix(r.mv_size);
    }
    mix(static_cast<std::uint64_t>(pkt_verified));
    return h;
  }
};

Status reject(const std::string& code, std::size_t pc,
              const std::string& message) {
  return Error::make("verifier." + code,
                     "insn " + std::to_string(pc) + ": " + message);
}

class Verifier {
 public:
  Verifier(const Program& prog, const VerifyOptions& opts, VerifyStats* stats)
      : prog_(prog), opts_(opts), stats_(stats) {}

  Status run() {
    LFP_CHECK_MSG(opts_.helpers != nullptr, "verifier needs a helper set");
    if (prog_.insns.empty()) {
      return Error::make("verifier.empty", "empty program");
    }
    if (prog_.insns.size() > kMaxInsns) {
      return Error::make("verifier.too_long",
                         "program exceeds " + std::to_string(kMaxInsns) +
                             " instructions");
    }
    // Structural pass: jump targets and back-edge rejection.
    for (std::size_t pc = 0; pc < prog_.insns.size(); ++pc) {
      const Insn& insn = prog_.insns[pc];
      if (insn.op >= Op::kJa && insn.op <= Op::kJset) {
        std::int64_t target =
            static_cast<std::int64_t>(pc) + 1 + insn.off;
        if (target < 0 ||
            target >= static_cast<std::int64_t>(prog_.insns.size())) {
          return reject("jump_oob", pc, "jump target out of range");
        }
        if (insn.off < 0) {
          return reject("back_edge", pc, "backward jump (loop) not allowed");
        }
      }
      if (insn.dst >= kNumRegs || insn.src >= kNumRegs) {
        return reject("bad_reg", pc, "register index out of range");
      }
    }
    // The last reachable instruction chain must exit; symbolic exec enforces
    // "pc past end" as an error anyway.

    AbsState init;
    init.pc = 0;
    init.regs[kR1] = RegState{RT::kPtrCtx, 0, false, 0, 0};
    init.regs[kR10] =
        RegState{RT::kPtrStack, static_cast<std::int64_t>(kStackSize),
                 false, 0, 0};

    std::deque<AbsState> worklist;
    worklist.push_back(init);
    std::size_t visited = 0;

    while (!worklist.empty()) {
      AbsState st = std::move(worklist.back());
      worklist.pop_back();
      if (stats_) ++stats_->paths_explored;

      while (true) {
        if (++visited > opts_.max_states) {
          return Error::make("verifier.state_explosion",
                             "too many states explored");
        }
        if (stats_) stats_->states_visited = visited;
        // Join-point pruning: identical abstract state already explored
        // here, so this path cannot uncover anything new.
        if (!seen_[st.pc].insert(st.fingerprint()).second) break;
        if (st.pc >= prog_.insns.size()) {
          return reject("fallthrough", st.pc - 1,
                        "control flow falls off program end");
        }
        const Insn& insn = prog_.insns[st.pc];
        Status s = step(st, insn, worklist);
        if (!s.ok()) return s;
        if (insn.op == Op::kExit) break;  // path done
        if (insn.op == Op::kJa) {
          st.pc = st.pc + 1 + static_cast<std::size_t>(insn.off);
          continue;
        }
        if (insn.op >= Op::kJeq && insn.op <= Op::kJset) {
          // step() pushed the taken branch; we continue on fall-through.
          st.pc += 1;
          continue;
        }
        st.pc += 1;
      }
    }
    return {};
  }

 private:
  Status check_mem_access(const AbsState& st, const RegState& base,
                          std::int32_t disp, MemSize size, std::size_t pc,
                          bool is_store) {
    std::int64_t width = static_cast<std::int64_t>(size);
    switch (base.type) {
      case RT::kPtrStack: {
        std::int64_t lo = base.off + disp;
        if (lo < 0 || lo + width > static_cast<std::int64_t>(kStackSize)) {
          return reject("stack_oob", pc, "stack access out of bounds");
        }
        return {};
      }
      case RT::kPtrCtx: {
        std::int64_t lo = base.off + disp;
        if (lo < 0 || lo + width > kCtxSize) {
          return reject("ctx_oob", pc, "ctx access out of bounds");
        }
        if (is_store && lo < kCtxIfindex) {
          // data/data_end are read-only, as in the kernel.
          return reject("ctx_ro", pc, "write to read-only ctx field");
        }
        return {};
      }
      case RT::kPtrPacket: {
        std::int64_t lo = base.off + disp;
        if (lo < 0) return reject("pkt_oob", pc, "negative packet offset");
        if (lo + width > st.pkt_verified) {
          return reject("pkt_unverified", pc,
                        "packet access without bounds check (need " +
                            std::to_string(lo + width) + " verified, have " +
                            std::to_string(st.pkt_verified) + ")");
        }
        return {};
      }
      case RT::kPtrMapValue: {
        std::int64_t lo = base.off + disp;
        if (lo < 0 || lo + width > static_cast<std::int64_t>(base.mv_size)) {
          return reject("mapvalue_oob", pc, "map value access out of bounds");
        }
        return {};
      }
      case RT::kPtrMapValueOrNull:
        return reject("maybe_null", pc,
                      "map value dereference without null check");
      case RT::kPtrPacketEnd:
        return reject("pkt_end_deref", pc, "dereference of data_end");
      case RT::kScalar:
      case RT::kUninit:
        return reject("bad_ptr", pc, "memory access on non-pointer");
    }
    return {};
  }

  Status check_helper_args(const AbsState& st, std::uint32_t helper_id,
                           std::size_t pc) {
    const auto& r = st.regs;
    auto need_stack_buf = [&](int reg, std::int64_t min_size) -> Status {
      if (r[reg].type != RT::kPtrStack) {
        return reject("helper_arg", pc,
                      "r" + std::to_string(reg) + " must be a stack pointer");
      }
      if (r[reg].off < 0 ||
          r[reg].off + min_size > static_cast<std::int64_t>(kStackSize)) {
        return reject("helper_arg", pc, "stack buffer too small for helper");
      }
      return {};
    };
    switch (helper_id) {
      case kHelperMapLookup:
      case kHelperMapUpdate:
      case kHelperMapDelete: {
        if (!r[kR1].const_known) {
          return reject("helper_arg", pc, "map id must be a known constant");
        }
        if (opts_.maps &&
            !opts_.maps->get(static_cast<std::uint32_t>(r[kR1].const_val))) {
          return reject("helper_arg", pc, "unknown map id");
        }
        if (!r[kR2].is_ptr()) {
          return reject("helper_arg", pc, "key must be a pointer");
        }
        return {};
      }
      case kHelperTailCall: {
        if (r[kR1].type != RT::kPtrCtx) {
          return reject("helper_arg", pc, "tail call needs ctx in r1");
        }
        if (!r[kR2].const_known) {
          return reject("helper_arg", pc,
                        "prog array id must be a known constant");
        }
        return {};
      }
      case kHelperFibLookup:
        if (r[kR1].type != RT::kPtrCtx) {
          return reject("helper_arg", pc, "fib_lookup needs ctx in r1");
        }
        return need_stack_buf(kR2, 40);  // struct bpf_fib_lookup (modeled)
      case kHelperFdbLookup:
        if (r[kR1].type != RT::kPtrCtx) {
          return reject("helper_arg", pc, "fdb_lookup needs ctx in r1");
        }
        return need_stack_buf(kR2, 24);
      case kHelperIptLookup:
        if (r[kR1].type != RT::kPtrCtx) {
          return reject("helper_arg", pc, "ipt_lookup needs ctx in r1");
        }
        return need_stack_buf(kR2, 24);
      case kHelperCtLookup:
        if (r[kR1].type != RT::kPtrCtx) {
          return reject("helper_arg", pc, "ct_lookup needs ctx in r1");
        }
        return need_stack_buf(kR2, 32);
      case kHelperRedirect:
        if (r[kR1].type != RT::kScalar) {
          return reject("helper_arg", pc, "redirect ifindex must be scalar");
        }
        return {};
      default:
        return {};
    }
  }

  // Applies branch refinement to `st` for the given comparison outcome.
  static void refine(AbsState& st, const Insn& insn, bool taken) {
    RegState& dst = st.regs[insn.dst];
    // Null-check refinement on maybe-null map values: jeq/jne against 0.
    if (dst.type == RT::kPtrMapValueOrNull && insn.use_imm && insn.imm == 0) {
      bool is_null = (insn.op == Op::kJeq && taken) ||
                     (insn.op == Op::kJne && !taken);
      if (is_null) {
        dst = RegState::konst(0);
      } else {
        dst.type = RT::kPtrMapValue;
      }
      return;
    }
    if (insn.use_imm) return;
    RegState& src = st.regs[insn.src];
    // Packet bounds refinement: compare packet ptr against data_end.
    auto apply_pkt = [&](const RegState& pkt_reg, bool ptr_le_end) {
      if (ptr_le_end) {
        st.pkt_verified = std::max(st.pkt_verified, pkt_reg.off);
      }
    };
    if (dst.type == RT::kPtrPacket && src.type == RT::kPtrPacketEnd) {
      // forms: if (ptr > end) / (ptr >= end) / (ptr < end) / (ptr <= end)
      switch (insn.op) {
        case Op::kJgt: apply_pkt(dst, !taken); break;  // !taken: ptr <= end
        case Op::kJge: if (!taken) apply_pkt(dst, true); break;  // ptr < end
        case Op::kJlt: apply_pkt(dst, taken); break;   // taken: ptr < end
        case Op::kJle: apply_pkt(dst, taken); break;   // taken: ptr <= end
        default: break;
      }
    } else if (dst.type == RT::kPtrPacketEnd && src.type == RT::kPtrPacket) {
      switch (insn.op) {
        case Op::kJgt: apply_pkt(src, taken); break;   // end > ptr
        case Op::kJge: apply_pkt(src, taken); break;
        case Op::kJlt: apply_pkt(src, !taken); break;
        case Op::kJle: if (!taken) apply_pkt(src, true); break;
        default: break;
      }
    }
  }

  Status step(AbsState& st, const Insn& insn,
              std::deque<AbsState>& worklist) {
    auto& regs = st.regs;
    std::size_t pc = st.pc;

    auto require_init = [&](int reg) -> Status {
      if (regs[reg].type == RT::kUninit) {
        return reject("uninit", pc,
                      "read of uninitialized r" + std::to_string(reg));
      }
      return {};
    };

    switch (insn.op) {
      case Op::kMov: {
        if (insn.dst == kR10) return reject("fp_write", pc, "write to r10");
        if (insn.use_imm) {
          regs[insn.dst] = RegState::konst(insn.imm);
        } else {
          Status s = require_init(insn.src);
          if (!s.ok()) return s;
          regs[insn.dst] = regs[insn.src];
        }
        return {};
      }
      case Op::kAdd:
      case Op::kSub: {
        if (insn.dst == kR10) return reject("fp_write", pc, "write to r10");
        Status s = require_init(insn.dst);
        if (!s.ok()) return s;
        std::optional<std::int64_t> delta;
        if (insn.use_imm) {
          delta = insn.imm;
        } else {
          s = require_init(insn.src);
          if (!s.ok()) return s;
          if (regs[insn.src].type == RT::kScalar &&
              regs[insn.src].const_known) {
            delta = regs[insn.src].const_val;
          }
        }
        RegState& dst = regs[insn.dst];
        if (dst.is_ptr()) {
          // ptr - ptr (same region) = scalar
          if (!insn.use_imm && regs[insn.src].type == dst.type &&
              insn.op == Op::kSub) {
            regs[insn.dst] = RegState::scalar();
            return {};
          }
          if (!delta) {
            return reject("var_ptr", pc,
                          "pointer arithmetic with unknown scalar");
          }
          dst.off += insn.op == Op::kAdd ? *delta : -*delta;
          dst.const_known = false;
          return {};
        }
        // scalar arithmetic with constant folding
        if (dst.const_known && delta) {
          dst.const_val += insn.op == Op::kAdd ? *delta : -*delta;
        } else {
          dst.const_known = false;
        }
        return {};
      }
      case Op::kMul:
      case Op::kDiv:
      case Op::kMod:
      case Op::kAnd:
      case Op::kOr:
      case Op::kXor:
      case Op::kLsh:
      case Op::kRsh:
      case Op::kArsh:
      case Op::kNeg:
      case Op::kBe16:
      case Op::kBe32: {
        if (insn.dst == kR10) return reject("fp_write", pc, "write to r10");
        Status s = require_init(insn.dst);
        if (!s.ok()) return s;
        if (regs[insn.dst].is_ptr()) {
          return reject("ptr_alu", pc, "ALU op on pointer");
        }
        if (!insn.use_imm && insn.op != Op::kNeg && insn.op != Op::kBe16 &&
            insn.op != Op::kBe32) {
          s = require_init(insn.src);
          if (!s.ok()) return s;
          if (regs[insn.src].is_ptr()) {
            return reject("ptr_alu", pc, "ALU op with pointer operand");
          }
        }
        regs[insn.dst] = RegState::scalar();
        return {};
      }
      case Op::kLdx: {
        if (insn.dst == kR10) return reject("fp_write", pc, "write to r10");
        Status s = require_init(insn.src);
        if (!s.ok()) return s;
        s = check_mem_access(st, regs[insn.src], insn.off, insn.size, pc,
                             false);
        if (!s.ok()) return s;
        // Loading ctx->data / ctx->data_end yields typed pointers.
        if (regs[insn.src].type == RT::kPtrCtx && insn.size == MemSize::kU64) {
          std::int64_t field = regs[insn.src].off + insn.off;
          if (field == kCtxData) {
            regs[insn.dst] = RegState{RT::kPtrPacket, 0, false, 0, 0};
            return {};
          }
          if (field == kCtxDataEnd) {
            regs[insn.dst] = RegState{RT::kPtrPacketEnd, 0, false, 0, 0};
            return {};
          }
        }
        regs[insn.dst] = RegState::scalar();
        return {};
      }
      case Op::kStx: {
        Status s = require_init(insn.dst);
        if (!s.ok()) return s;
        s = require_init(insn.src);
        if (!s.ok()) return s;
        if (regs[insn.src].is_ptr() &&
            regs[insn.dst].type != RT::kPtrStack) {
          return reject("ptr_leak", pc,
                        "storing pointer outside the stack");
        }
        return check_mem_access(st, regs[insn.dst], insn.off, insn.size, pc,
                                true);
      }
      case Op::kSt: {
        Status s = require_init(insn.dst);
        if (!s.ok()) return s;
        return check_mem_access(st, regs[insn.dst], insn.off, insn.size, pc,
                                true);
      }
      case Op::kJa:
        return {};
      case Op::kJeq:
      case Op::kJne:
      case Op::kJgt:
      case Op::kJge:
      case Op::kJlt:
      case Op::kJle:
      case Op::kJset: {
        Status s = require_init(insn.dst);
        if (!s.ok()) return s;
        if (!insn.use_imm) {
          s = require_init(insn.src);
          if (!s.ok()) return s;
        }
        // Fork: push the taken branch, caller continues fall-through.
        AbsState taken = st;
        taken.pc = st.pc + 1 + static_cast<std::size_t>(insn.off);
        refine(taken, insn, /*taken=*/true);
        refine(st, insn, /*taken=*/false);
        worklist.push_back(std::move(taken));
        return {};
      }
      case Op::kCall: {
        auto helper_id = static_cast<std::uint32_t>(insn.imm);
        if (!opts_.helpers->supports(helper_id)) {
          return reject("helper_unknown", pc,
                        "helper " + std::to_string(helper_id) +
                            " not available at this hook (capability check)");
        }
        Status s = check_helper_args(st, helper_id, pc);
        if (!s.ok()) return s;
        // Return value typing.
        if (helper_id == kHelperMapLookup) {
          std::uint32_t mv_size = 0;
          if (opts_.maps && regs[kR1].const_known) {
            const Map* m =
                opts_.maps->get(static_cast<std::uint32_t>(regs[kR1].const_val));
            if (m) mv_size = m->value_size();
          }
          regs[kR0] =
              RegState{RT::kPtrMapValueOrNull, 0, false, 0, mv_size};
        } else {
          regs[kR0] = RegState::scalar();
        }
        for (int r = kR1; r <= kR5; ++r) regs[r] = RegState{};
        return {};
      }
      case Op::kExit: {
        if (regs[kR0].type == RT::kUninit) {
          return reject("r0_uninit", pc, "exit with uninitialized r0");
        }
        return {};
      }
    }
    return reject("bad_op", pc, "unknown opcode");
  }

  const Program& prog_;
  const VerifyOptions& opts_;
  VerifyStats* stats_;
  std::unordered_map<std::size_t, std::unordered_set<std::uint64_t>> seen_;
};

}  // namespace

Status verify(const Program& prog, const VerifyOptions& options,
              VerifyStats* stats) {
  // Injected rejection: models a kernel verifier that refuses a program the
  // synthesizer believed to be valid (version skew, complexity limits).
  if (auto st = util::FaultInjector::global().check(util::kFaultVerifier);
      !st.ok()) {
    return st;
  }
  auto st = Verifier(prog, options, stats).run();
  if (!st.ok()) return st;
  // Accepted: stash the facts the loader and the direct-threaded translator
  // key off (the kernel's bpf_prog_aux analogue).
  VerifierInfo info;
  info.analyzed = true;
  for (const Insn& insn : prog.insns) {
    if (insn.op != Op::kCall) continue;
    ++info.helper_calls;
    auto id = static_cast<std::uint32_t>(insn.imm);
    if (id == kHelperTailCall) info.uses_tail_call = true;
    if (id == kHelperRedirectMap) info.calls_redirect_map = true;
  }
  prog.vinfo = info;
  return st;
}

}  // namespace linuxfp::ebpf
