// The eBPF interpreter with cycle accounting.
//
// Executes verified programs against a packet + context. Cycles charged:
// per-instruction cost, per-helper base cost plus whatever the helper itself
// charges (e.g. a FIB lookup charges the kernel's LPM cost), and a tail-call
// penalty per transition — the source of the Fig 10 result.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "ebpf/program.h"
#include "kernel/cost_model.h"
#include "net/packet.h"

namespace linuxfp::engine {
class FlowCacheRecorder;
}

namespace linuxfp::ebpf {

namespace jit_detail {
struct ExecState;  // ebpf/jit.cpp: the translator's threaded run state
}

// True for helpers whose behaviour is a pure function of the packet bytes,
// the generation-guarded kernel subsystems and the recorded replay ops;
// anything else makes a flow-cache miss run uncacheable. Shared by the
// interpreter and the direct-threaded translator so both engines mark runs
// identically.
bool flowcache_replayable_helper(std::uint32_t id);

// Sized loads/stores and region-tagged pointer arithmetic shared verbatim by
// the interpreter and the translator — any divergence here would split the
// two engines' semantics.
namespace vmops {
inline std::uint64_t load_sized(const std::uint8_t* p, MemSize size) {
  switch (size) {
    case MemSize::kU8: return *p;
    case MemSize::kU16: {
      std::uint16_t v;
      std::memcpy(&v, p, 2);
      return v;
    }
    case MemSize::kU32: {
      std::uint32_t v;
      std::memcpy(&v, p, 4);
      return v;
    }
    case MemSize::kU64: {
      std::uint64_t v;
      std::memcpy(&v, p, 8);
      return v;
    }
  }
  return 0;
}

inline void store_sized(std::uint8_t* p, MemSize size, std::uint64_t v) {
  switch (size) {
    case MemSize::kU8: {
      std::uint8_t b = static_cast<std::uint8_t>(v);
      std::memcpy(p, &b, 1);
      break;
    }
    case MemSize::kU16: {
      std::uint16_t h = static_cast<std::uint16_t>(v);
      std::memcpy(p, &h, 2);
      break;
    }
    case MemSize::kU32: {
      std::uint32_t w = static_cast<std::uint32_t>(v);
      std::memcpy(p, &w, 4);
      break;
    }
    case MemSize::kU64:
      std::memcpy(p, &v, 8);
      break;
  }
}

// Adds a displacement to a tagged pointer (regions propagate through
// pointer arithmetic, as in eBPF).
inline std::uint64_t ptr_add(std::uint64_t tagged, std::int64_t delta) {
  if (ptr_region(tagged) == Region::kNone) {
    return tagged + static_cast<std::uint64_t>(delta);
  }
  return make_ptr(ptr_region(tagged),
                  ptr_payload(tagged) + static_cast<std::uint64_t>(delta));
}
}  // namespace vmops

struct VmResult {
  std::uint64_t ret = kActAborted;
  std::uint64_t cycles = 0;
  bool aborted = false;
  std::string error;
  int redirect_ifindex = 0;
  int redirect_xsk = -1;  // XSK map slot on AF_XDP redirect
  std::uint64_t insns_executed = 0;
  std::uint32_t tail_calls = 0;
  // Execution-engine record: whether the run entered the direct-threaded
  // translator, and how many times it demoted to the interpreter (entry
  // program untranslated, or tail call into an untranslated target).
  bool jit = false;
  std::uint32_t jit_fallbacks = 0;
  // Final register file (r0..r10) at exit/abort — the differential oracle's
  // strongest observable.
  std::array<std::uint64_t, kNumRegs> regs{};
};

class Vm {
 public:
  Vm(const kern::CostModel& cost, const HelperRegistry& helpers,
     MapSet& maps, const std::vector<Program>* prog_table)
      : cost_(cost), helpers_(helpers), maps_(maps), prog_table_(prog_table) {}

  // Runs `prog` on the packet. `kernel` is the kernel whose state the
  // kernel-bound helpers access (nullptr for pure programs). When `recorder`
  // is non-null the run is observed for the microflow verdict cache: packet
  // reads/writes, helper subsystem dependencies and replayable side effects
  // are captured, and non-replayable runs are marked uncacheable.
  VmResult run(const Program& prog, net::Packet& pkt, int ingress_ifindex,
               kern::Kernel* kernel,
               engine::FlowCacheRecorder* recorder = nullptr);

  // The CPU this VM models (one engine worker per CPU). Selects the slot of
  // per-CPU maps and the return value of bpf_get_smp_processor_id. A Vm is
  // single-threaded; parallelism comes from one Vm per CPU over shared maps.
  void set_cpu(unsigned cpu) { cpu_ = cpu; }
  unsigned cpu() const { return cpu_; }

  // Execution backend. kJit runs a program's direct-threaded stream
  // (Program::jit, built by jit_translate) and demotes to the interpreter
  // mid-run when a tail call lands in an untranslated program; programs with
  // no stream at all run fully interpreted (counted in VmResult::jit_fallbacks
  // either way). Control-plane call; a Vm is single-threaded.
  void set_engine(ExecEngine engine) { engine_ = engine; }
  ExecEngine engine() const { return engine_; }

  // Binds per-helper-call counters ("ebpf.helper.<name>.calls"), map
  // hit/miss counters and the tail-call counter to `registry` (null
  // unbinds). Counter pointers for every registered helper are resolved
  // eagerly here (creation is control-plane-only; worker threads must never
  // insert into the registry), so the per-call cost is one indexed relaxed
  // increment.
  void set_metrics(util::MetricsRegistry* registry);

 private:
  friend class HelperContext;
  friend struct jit_detail::ExecState;

  struct RunState {
    net::Packet* pkt = nullptr;
    std::uint8_t stack[kStackSize];
    std::uint8_t ctx[kCtxSize];
    // One extra slot (kImmSlot) mirrors the current instruction's immediate
    // so operand selection is an unconditional indexed load.
    std::uint64_t regs[kNumRegs + 1];
    engine::FlowCacheRecorder* recorder = nullptr;
    std::uint64_t extra_cycles = 0;
    int redirect_ifindex = 0;
    int redirect_xsk = -1;
    // Live map-value spans handed out by map_lookup during this run.
    struct Span {
      std::uint8_t* base;
      std::size_t size;
    };
    std::vector<Span> spans;
  };

  util::Result<std::uint8_t*> translate(std::uint64_t tagged, std::size_t len);
  util::Counter* helper_counter(std::uint32_t helper_id);

  // The pre-decoded interpreter loop. `result` carries counters already
  // charged (insns_executed, tail_calls, jit bookkeeping) so the translator
  // can demote mid-run and the interpreter continues seamlessly; state_ must
  // be live. Defined in vm.cpp.
  VmResult interpret(const Program& prog, HelperContext& hctx,
                     VmResult result);
  // The direct-threaded dispatch loop over Program::jit. Defined in
  // ebpf/jit.cpp, next to the handlers it threads through.
  VmResult run_jit(const Program& prog, HelperContext& hctx, VmResult result);

  const kern::CostModel& cost_;
  const HelperRegistry& helpers_;
  MapSet& maps_;
  const std::vector<Program>* prog_table_;
  unsigned cpu_ = 0;
  ExecEngine engine_ = ExecEngine::kInterpreter;
  RunState* state_ = nullptr;  // valid during run()

  util::MetricsRegistry* metrics_ = nullptr;
  std::vector<util::Counter*> helper_counters_;  // indexed by helper id
  util::Counter* map_hits_ = nullptr;
  util::Counter* map_misses_ = nullptr;
  util::Counter* tail_call_counter_ = nullptr;
};

}  // namespace linuxfp::ebpf
