// The eBPF interpreter with cycle accounting.
//
// Executes verified programs against a packet + context. Cycles charged:
// per-instruction cost, per-helper base cost plus whatever the helper itself
// charges (e.g. a FIB lookup charges the kernel's LPM cost), and a tail-call
// penalty per transition — the source of the Fig 10 result.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ebpf/program.h"
#include "kernel/cost_model.h"
#include "net/packet.h"

namespace linuxfp::engine {
class FlowCacheRecorder;
}

namespace linuxfp::ebpf {

struct VmResult {
  std::uint64_t ret = kActAborted;
  std::uint64_t cycles = 0;
  bool aborted = false;
  std::string error;
  int redirect_ifindex = 0;
  int redirect_xsk = -1;  // XSK map slot on AF_XDP redirect
  std::uint64_t insns_executed = 0;
  std::uint32_t tail_calls = 0;
};

class Vm {
 public:
  Vm(const kern::CostModel& cost, const HelperRegistry& helpers,
     MapSet& maps, const std::vector<Program>* prog_table)
      : cost_(cost), helpers_(helpers), maps_(maps), prog_table_(prog_table) {}

  // Runs `prog` on the packet. `kernel` is the kernel whose state the
  // kernel-bound helpers access (nullptr for pure programs). When `recorder`
  // is non-null the run is observed for the microflow verdict cache: packet
  // reads/writes, helper subsystem dependencies and replayable side effects
  // are captured, and non-replayable runs are marked uncacheable.
  VmResult run(const Program& prog, net::Packet& pkt, int ingress_ifindex,
               kern::Kernel* kernel,
               engine::FlowCacheRecorder* recorder = nullptr);

  // The CPU this VM models (one engine worker per CPU). Selects the slot of
  // per-CPU maps and the return value of bpf_get_smp_processor_id. A Vm is
  // single-threaded; parallelism comes from one Vm per CPU over shared maps.
  void set_cpu(unsigned cpu) { cpu_ = cpu; }
  unsigned cpu() const { return cpu_; }

  // Binds per-helper-call counters ("ebpf.helper.<name>.calls"), map
  // hit/miss counters and the tail-call counter to `registry` (null
  // unbinds). Counter pointers for every registered helper are resolved
  // eagerly here (creation is control-plane-only; worker threads must never
  // insert into the registry), so the per-call cost is one indexed relaxed
  // increment.
  void set_metrics(util::MetricsRegistry* registry);

 private:
  friend class HelperContext;

  struct RunState {
    net::Packet* pkt = nullptr;
    std::uint8_t stack[kStackSize];
    std::uint8_t ctx[kCtxSize];
    // One extra slot (kImmSlot) mirrors the current instruction's immediate
    // so operand selection is an unconditional indexed load.
    std::uint64_t regs[kNumRegs + 1];
    engine::FlowCacheRecorder* recorder = nullptr;
    std::uint64_t extra_cycles = 0;
    int redirect_ifindex = 0;
    int redirect_xsk = -1;
    // Live map-value spans handed out by map_lookup during this run.
    struct Span {
      std::uint8_t* base;
      std::size_t size;
    };
    std::vector<Span> spans;
  };

  util::Result<std::uint8_t*> translate(std::uint64_t tagged, std::size_t len);
  util::Counter* helper_counter(std::uint32_t helper_id);

  const kern::CostModel& cost_;
  const HelperRegistry& helpers_;
  MapSet& maps_;
  const std::vector<Program>* prog_table_;
  unsigned cpu_ = 0;
  RunState* state_ = nullptr;  // valid during run()

  util::MetricsRegistry* metrics_ = nullptr;
  std::vector<util::Counter*> helper_counters_;  // indexed by helper id
  util::Counter* map_hits_ = nullptr;
  util::Counter* map_misses_ = nullptr;
  util::Counter* tail_call_counter_ = nullptr;
};

}  // namespace linuxfp::ebpf
