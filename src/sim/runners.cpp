#include "sim/runners.h"

#include <algorithm>
#include <queue>

#include "util/logging.h"

namespace linuxfp::sim {

ThroughputResult ThroughputRunner::run(DeviceUnderTest& dut,
                                       const PacketFactory& factory,
                                       int cores, std::size_t frame_len) const {
  LFP_CHECK(cores >= 1);
  ThroughputResult result;
  std::vector<util::OnlineStats> per_core(static_cast<std::size_t>(cores));
  util::OnlineStats all;
  std::uint64_t fast = 0;

  for (std::uint64_t i = 0; i < samples_; ++i) {
    net::Packet pkt = factory(i);
    // RSS: spread flows over queues/cores by the engine's Toeplitz flow
    // hash — the same hash every other consumer uses, so fragments and
    // non-IP frames stay flow-affine instead of round-robining per packet
    // (the old i % cores fallback straddled such flows across cores).
    std::size_t core = engine::rss_hash_cached(pkt) %
                       static_cast<std::size_t>(cores);
    ProcessOutcome out = dut.process(std::move(pkt));
    per_core[core].add(static_cast<double>(out.cycles));
    all.add(static_cast<double>(out.cycles));
    if (out.fast_path) ++fast;
  }

  double total_pps = 0;
  for (auto& stats : per_core) {
    if (stats.count() == 0) {
      result.per_core_pps.push_back(0);
      continue;
    }
    double pps = dut.cpu_hz() / stats.mean();
    result.per_core_pps.push_back(pps);
    total_pps += pps;
  }

  // Line-rate cap: the ingress wire can deliver at most nic_bps of framed
  // bits (min frame 64 B + 20 B preamble/IFG).
  net::Packet probe = factory(0);
  (void)frame_len;
  double wire_bits = static_cast<double>(probe.wire_size()) * 8.0;
  double wire_pps_cap = nic_bps_ / wire_bits;
  if (total_pps >= wire_pps_cap) {
    total_pps = wire_pps_cap;
    result.line_rate_limited = true;
  }

  result.total_pps = total_pps;
  result.total_bps = total_pps * wire_bits;
  result.mean_cycles_per_pkt = all.mean();
  result.fast_path_fraction =
      static_cast<double>(fast) / static_cast<double>(samples_);
  return result;
}

QueueScalingResult QueueScalingRunner::run(
    kern::Kernel& kernel, int ingress_ifindex, const PacketFactory& factory,
    unsigned queues, const engine::SteeringConfig& steering) const {
  LFP_CHECK(queues >= 1);
  engine::EngineConfig cfg;
  cfg.queues = queues;
  cfg.backpressure = true;  // exact cycle means: no sample may tail-drop
  cfg.steering = steering;
  engine::Engine eng(kernel, ingress_ifindex, cfg);
  eng.start();
  for (std::uint64_t i = 0; i < samples_; ++i) eng.inject(factory(i));
  eng.stop();

  QueueScalingResult result;
  result.queues = queues;
  const double cpu_hz = kernel.cost().cpu_hz;
  std::uint64_t fast_cycles_total = 0;
  for (unsigned q = 0; q < queues; ++q) {
    result.processed += eng.queue_stats(q).processed;
    fast_cycles_total += eng.queue_stats(q).fast_cycles;
  }
  // Bottleneck model: RSS pins each flow to one queue, so spare workers
  // cannot steal from a hot sibling. At offered rate R, queue q absorbs
  // R * share_q; the first queue to hit its capacity throttles the system.
  double fast_pps = 0;
  bool any_queue = false;
  for (unsigned q = 0; q < queues; ++q) {
    const engine::QueueStats& st = eng.queue_stats(q);
    if (st.processed == 0) {
      result.per_queue_pps.push_back(0);
      result.per_queue_share.push_back(0);
      continue;
    }
    double capacity = cpu_hz * static_cast<double>(st.processed) /
                      static_cast<double>(st.fast_cycles);
    double share = static_cast<double>(st.processed) /
                   static_cast<double>(result.processed);
    result.per_queue_pps.push_back(capacity);
    result.per_queue_share.push_back(share);
    double sustainable = capacity / share;
    if (!any_queue || sustainable < fast_pps) fast_pps = sustainable;
    any_queue = true;
  }
  if (!any_queue) fast_pps = 0;
  result.slow_processed = eng.slow_stats().processed;
  if (result.processed > 0) {
    result.mean_fast_cycles = static_cast<double>(fast_cycles_total) /
                              static_cast<double>(result.processed);
    result.fast_path_fraction =
        static_cast<double>(eng.total_fast_verdicts()) /
        static_cast<double>(result.processed);
  }

  double total_pps = fast_pps;
  if (result.slow_processed > 0 && eng.slow_stats().cycles > 0) {
    result.mean_slow_cycles = static_cast<double>(eng.slow_stats().cycles) /
                              static_cast<double>(result.slow_processed);
    double slow_fraction = static_cast<double>(result.slow_processed) /
                           static_cast<double>(result.processed);
    // The single slow-path thread serializes its share of the traffic: at
    // sustained rate R, it must absorb R * slow_fraction packets/s.
    double slow_cap_pps = cpu_hz / result.mean_slow_cycles / slow_fraction;
    if (total_pps >= slow_cap_pps) {
      total_pps = slow_cap_pps;
      result.slow_path_limited = true;
    }
  }

  net::Packet probe = factory(0);
  double wire_bits = static_cast<double>(probe.wire_size()) * 8.0;
  double wire_pps_cap = nic_bps_ / wire_bits;
  if (total_pps >= wire_pps_cap) {
    total_pps = wire_pps_cap;
    result.line_rate_limited = true;
  }

  result.total_pps = total_pps;
  result.total_bps = total_pps * wire_bits;
  return result;
}

ForwardingResult ForwardingRunner::run(kern::Kernel& kernel,
                                       int ingress_ifindex,
                                       const PacketFactory& factory,
                                       const ForwardingOptions& opts) const {
  LFP_CHECK(opts.queues >= 1);
  // True packets-out: physical-device TX deltas over the run.
  std::uint64_t tx_before = 0;
  for (kern::NetDevice* d : kernel.devices()) {
    if (d->kind() == kern::DevKind::kPhysical) tx_before += d->stats().tx_packets;
  }

  engine::EngineConfig cfg;
  cfg.queues = opts.queues;
  cfg.backpressure = true;  // exact cycle means: no sample may drop
  cfg.tx = opts.tx;
  cfg.gro = opts.gro;
  engine::Engine eng(kernel, ingress_ifindex, cfg);
  eng.start();
  for (std::uint64_t i = 0; i < samples_; ++i) eng.inject(factory(i));
  eng.stop();

  ForwardingResult result;
  result.queues = opts.queues;
  result.packets_in = samples_;
  const double cpu_hz = kernel.cost().cpu_hz;

  std::uint64_t tx_after = 0;
  for (kern::NetDevice* d : kernel.devices()) {
    if (d->kind() == kern::DevKind::kPhysical) tx_after += d->stats().tx_packets;
  }
  result.packets_out = tx_after - tx_before;

  std::uint64_t processed = 0, fast_cycles_total = 0;
  for (unsigned q = 0; q < opts.queues; ++q) {
    processed += eng.queue_stats(q).processed;
    fast_cycles_total += eng.queue_stats(q).fast_cycles;
  }
  // Worker bottleneck, as in QueueScalingRunner: RSS pins flows, the hottest
  // queue's capacity/share throttles the offered rate.
  double fast_pps = 0;
  bool any_queue = false;
  for (unsigned q = 0; q < opts.queues; ++q) {
    const engine::QueueStats& st = eng.queue_stats(q);
    if (st.processed == 0) continue;
    double capacity = cpu_hz * static_cast<double>(st.processed) /
                      static_cast<double>(st.fast_cycles);
    double share = static_cast<double>(st.processed) /
                   static_cast<double>(processed);
    double sustainable = capacity / share;
    if (!any_queue || sustainable < fast_pps) fast_pps = sustainable;
    any_queue = true;
  }
  if (!any_queue) fast_pps = 0;
  if (processed > 0) {
    result.mean_fast_cycles = static_cast<double>(fast_cycles_total) /
                              static_cast<double>(processed);
    result.fast_path_fraction =
        static_cast<double>(eng.total_fast_verdicts()) /
        static_cast<double>(processed);
  }

  // Slow-thread budget: the one thread that walks the stack for kPass
  // traffic, folds GRO, drains the TX rings and rings the doorbells. Its
  // total measured cycles per injected packet bound the sustainable rate.
  std::uint64_t slow_thread_cycles = eng.slow_stats().cycles;
  for (unsigned q = 0; q < opts.queues; ++q) {
    const engine::TxQueueStats& ts = eng.tx().queue_stats(q);
    slow_thread_cycles += ts.cycles;
    result.tx_transmitted += ts.transmitted;
  }
  slow_thread_cycles += eng.tx().flush_cycles();
  result.descriptors = eng.tx().descriptors();
  result.doorbells = eng.tx().doorbells();
  result.slow_processed = eng.slow_stats().processed;
  if (const engine::GroEngine* gro = eng.gro()) {
    result.gro_coalesced = gro->stats().coalesced;
    result.gro_superpackets = gro->stats().superpackets;
  }

  double total_pps = fast_pps;
  if (slow_thread_cycles > 0 && samples_ > 0) {
    result.slow_thread_cycles = static_cast<double>(slow_thread_cycles) /
                                static_cast<double>(samples_);
    double slow_cap_pps = cpu_hz / result.slow_thread_cycles;
    if (total_pps >= slow_cap_pps) {
      total_pps = slow_cap_pps;
      result.slow_path_limited = true;
    }
  }

  net::Packet probe = factory(0);
  double wire_bits = static_cast<double>(probe.wire_size()) * 8.0;
  double wire_pps_cap = nic_bps_ / wire_bits;
  if (total_pps >= wire_pps_cap) {
    total_pps = wire_pps_cap;
    result.line_rate_limited = true;
  }

  result.total_pps = total_pps;
  result.total_bps = total_pps * wire_bits;
  return result;
}

RrResult RrLatencyRunner::run(
    DeviceUnderTest& dut,
    const std::function<net::Packet(int session)>& request,
    const std::function<net::Packet(int session)>& response) const {
  // Measure deterministic per-direction service times by running real
  // packets through the DUT (twice each, using the second run so any
  // learning/warmup effects settle).
  std::vector<double> fwd_us(static_cast<std::size_t>(config_.sessions));
  std::vector<double> rev_us(static_cast<std::size_t>(config_.sessions));
  for (int s = 0; s < config_.sessions; ++s) {
    dut.process(request(s));
    dut.process(response(s));
    ProcessOutcome f = dut.process(request(s));
    ProcessOutcome r = dut.process(response(s));
    auto adjust = [&](const ProcessOutcome& o) {
      std::uint64_t cycles = o.cycles;
      if (!o.fast_path && !dut.busy_poll()) {
        cycles += config_.slowpath_contention_cycles;
      }
      if (cycles == 0) return 0.5;  // dropped before any accounted stage
      return static_cast<double>(cycles) / dut.cpu_hz() * 1e6;
    };
    fwd_us[static_cast<std::size_t>(s)] = adjust(f);
    rev_us[static_cast<std::size_t>(s)] = adjust(r);
  }

  // Closed-loop event simulation: one service core, FIFO queue.
  struct Event {
    double time;
    int session;
    int phase;  // 0: request arrives at DUT, 1: response arrives at DUT
    double started;  // transaction start time
    bool operator>(const Event& other) const { return time > other.time; }
  };
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;
  util::Rng rng(config_.seed);

  double half_base = config_.base_rtt_us / 2.0;
  for (int s = 0; s < config_.sessions; ++s) {
    double start = rng.next_double() * 5.0;  // staggered session start
    events.push({start + half_base / 2, s, 0, start});
  }

  double server_free_at = 0;
  RrResult result;
  result.rtt_us.reserve(static_cast<std::size_t>(config_.transactions));
  int completed = 0;
  double last_completion = 0;

  while (completed < config_.transactions && !events.empty()) {
    Event ev = events.top();
    events.pop();
    std::size_t s = static_cast<std::size_t>(ev.session);
    double base_service = ev.phase == 0 ? fwd_us[s] : rev_us[s];
    double service =
        base_service * rng.next_lognormal(0.0, config_.jitter_sigma);
    if (rng.next_double() < config_.hiccup_per_service) {
      service += rng.next_exponential(config_.hiccup_mean_us);
    }
    double begin = std::max(ev.time, server_free_at);
    double done = begin + service;
    server_free_at = done;
    if (ev.phase == 0) {
      // Forwarded request reaches the server; response comes back after the
      // other half of the base RTT (endpoint turnaround included).
      events.push({done + half_base, ev.session, 1, ev.started});
    } else {
      double rtt = done + half_base / 2 - ev.started;
      result.rtt_us.add(rtt);
      ++completed;
      last_completion = done;
      // Closed loop: the client immediately issues the next transaction.
      events.push({done + half_base / 2, ev.session, 0, done});
    }
  }
  if (last_completion > 0) {
    result.transactions_per_second =
        static_cast<double>(completed) / (last_completion * 1e-6);
  }
  return result;
}

}  // namespace linuxfp::sim
