// Scenario testbeds (paper §VI-A): the three-node line topology with the DUT
// configured as a virtual router (50 prefixes) or virtual gateway (router +
// 100 blacklist rules, optionally aggregated into an ipset) — configured
// exclusively through the standard tool front-ends, which is what makes the
// LinuxFP acceleration transparent.
#pragma once

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/controller.h"
#include "engine/engine.h"
#include "kernel/commands.h"
#include "kernel/kernel.h"
#include "net/headers.h"
#include "sim/dut.h"
#include "util/rng.h"

namespace linuxfp::sim {

enum class Accel {
  kNone,          // plain Linux
  kLinuxFpXdp,    // LinuxFP controller, XDP driver mode
  kLinuxFpTc,     // LinuxFP controller, TC hook
};

struct ScenarioConfig {
  int prefixes = 50;          // iproute2-installed routes
  int filter_rules = 0;       // iptables FORWARD blacklist entries
  bool use_ipset = false;     // aggregate the blacklist into one ipset rule
  // Compile the rule tables into the tuple-space classifier (DESIGN.md §17):
  // exact linear-scan semantics at algorithmic cost. Applies to whichever
  // netfilter consumer the scenario runs (slow path or bpf_ipt_lookup).
  bool rule_classifier = false;
  Accel accel = Accel::kNone;
  core::ChainMode chain = core::ChainMode::kInlineCalls;
  // Microflow verdict cache (DESIGN.md §12) on the deployed fast paths.
  bool flow_cache = false;
  // Execution backend for the deployed fast paths (DESIGN.md §14).
  ebpf::ExecEngine exec_engine = ebpf::ExecEngine::kInterpreter;
  // Runtime equivalence guard (DESIGN.md §13). guard.enabled routes every
  // deployed hook through canary/sampled-shadow comparison with per-FPM
  // circuit breakers; the remaining GuardPolicy knobs apply as-is.
  core::GuardPolicy guard;
  // Fault schedule armed on the global injector for the testbed's lifetime
  // (see util/fault.h grammar, e.g. "loader.load:p=0.2;maps.update:nth=3").
  // Empty = faults disarmed. Applied after base scenario setup so the
  // topology itself always configures cleanly.
  std::string fault_schedule;
  std::uint64_t fault_seed = 0x1fa017;
  // Adaptive flow steering (DESIGN.md §15) for engines driven against this
  // scenario's kernel; engine_config() folds it in. All off by default.
  engine::SteeringConfig steering;
  // TX engine (DESIGN.md §16): doorbell burst etc.; engine_config() folds it
  // in. burst=1 models the per-packet-doorbell driver.
  engine::TxConfig tx;
  // Slow-path GRO (DESIGN.md §16); off by default.
  engine::GroConfig gro;
};

// Linux / LinuxFP testbed: a kern::Kernel DUT with two physical links,
// a traffic source on eth0 and sink on eth1.
class LinuxTestbed : public DeviceUnderTest {
 public:
  explicit LinuxTestbed(const ScenarioConfig& config);
  ~LinuxTestbed() override;

  std::string name() const override;
  ProcessOutcome process(net::Packet&& pkt) override;
  double cpu_hz() const override { return kernel_.cost().cpu_hz; }

  kern::Kernel& kernel() { return kernel_; }
  core::Controller* controller() { return controller_.get(); }
  void run(const std::string& command);
  // Like run() but tolerates command failure (for fault-armed scripts);
  // still gives the controller a reaction slot.
  util::Status try_run(const std::string& command);
  // Advances simulated kernel time and gives the controller a chance to act
  // on due backoff retries. Returns the controller reaction (empty when no
  // controller is attached).
  core::Reaction step_time(std::uint64_t delta_ns);

  // Packet factories for the scenario's traffic matrix.
  net::Packet forward_packet(int prefix_index, std::uint16_t flow,
                             std::size_t frame_len = 64) const;
  // One TCP segment of a same-flow stream toward a routed prefix, with
  // caller-controlled sequence number and IP identification — the traffic
  // shape GRO coalesces and gso_segment must restore byte-exactly.
  net::Packet forward_tcp_segment(int prefix_index, std::uint16_t flow,
                                  std::size_t frame_len, std::uint32_t seq,
                                  std::uint16_t ip_id) const;
  // A packet whose source is on the configured blacklist.
  net::Packet blacklisted_packet(int entry, std::uint16_t flow) const;
  // The i-th blacklist source address (shared by setup and packet factory).
  static std::string blacklist_address(int entry);

  int ingress_ifindex() const { return ingress_ifindex_; }
  std::uint64_t forwarded_count() const { return forwarded_; }

  // EngineConfig for driving a parallel engine against this scenario's
  // kernel: backpressure mode (deterministic counters) with the scenario's
  // steering options applied.
  engine::EngineConfig engine_config(unsigned queues) const {
    engine::EngineConfig cfg;
    cfg.queues = queues;
    cfg.backpressure = true;
    cfg.steering = config_.steering;
    cfg.tx = config_.tx;
    cfg.gro = config_.gro;
    return cfg;
  }

  // Per-packet tracing (pwru-style): after enable_tracing, every process()
  // call records its ordered stage/helper/verdict journey into a ring of the
  // given capacity, retrievable via trace_ring() / latest_trace_json().
  void enable_tracing(std::size_t capacity = 64);
  void disable_tracing();
  util::TraceRing* trace_ring() { return trace_ring_.get(); }
  // JSON of the most recent packet's trace (null JSON when none recorded).
  util::Json latest_trace_json() const;

 private:
  ScenarioConfig config_;
  bool faults_armed_ = false;
  kern::Kernel kernel_;
  std::unique_ptr<core::Controller> controller_;
  std::unique_ptr<util::TraceRing> trace_ring_;
  int ingress_ifindex_ = 0;
  net::MacAddr eth0_mac_;
  net::MacAddr src_mac_;
  net::MacAddr gw_mac_;
  std::uint64_t forwarded_ = 0;
};

// Flow generator (Pktgen-style): cycles destinations across the installed
// prefixes and varies source ports per flow, which the engine's Toeplitz RSS
// classifier (engine/rss.h) then spreads across rx queues and workers.
//
// With zipf_s == 0 flows round-robin uniformly. With zipf_s > 0 flow ranks
// follow a Zipf(s) popularity law, so an elephant flow dominates — and since
// RSS steers a flow to exactly one queue, that reproduces the classic
// queue-imbalance regime (one hot worker, idle siblings).
class FlowPattern {
 public:
  FlowPattern(int prefixes, int flows, std::size_t frame_len,
              double zipf_s = 0.0)
      : prefixes_(prefixes), flows_(flows), frame_len_(frame_len) {
    if (zipf_s > 0.0 && flows_ > 1) {
      cdf_.reserve(static_cast<std::size_t>(flows_));
      double acc = 0.0;
      for (int rank = 1; rank <= flows_; ++rank) {
        acc += 1.0 / std::pow(static_cast<double>(rank), zipf_s);
        cdf_.push_back(acc);
      }
      for (double& c : cdf_) c /= acc;
    }
  }

  int prefixes() const { return prefixes_; }
  int flows() const { return flows_; }
  std::size_t frame_len() const { return frame_len_; }
  bool skewed() const { return !cdf_.empty(); }

  // Deterministic (prefix, flow) pair for the i-th packet. Skewed draws use
  // a stateless hash of i (splitmix64) inverted through the Zipf CDF, so
  // at() stays pure: the same i always yields the same flow.
  std::pair<int, std::uint16_t> at(std::uint64_t i) const {
    int prefix = static_cast<int>(i % static_cast<std::uint64_t>(prefixes_));
    if (cdf_.empty()) {
      return {prefix,
              static_cast<std::uint16_t>(i % static_cast<std::uint64_t>(flows_))};
    }
    std::uint64_t x = i + 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    x ^= x >> 31;
    double u = static_cast<double>(x >> 11) * (1.0 / 9007199254740992.0);
    std::size_t rank = static_cast<std::size_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
    if (rank >= cdf_.size()) rank = cdf_.size() - 1;
    return {prefix, static_cast<std::uint16_t>(rank)};
  }

 private:
  int prefixes_;
  int flows_;
  std::size_t frame_len_;
  std::vector<double> cdf_;  // empty = uniform
};

}  // namespace linuxfp::sim
