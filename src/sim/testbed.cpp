#include "sim/testbed.h"

#include "util/fault.h"
#include "util/logging.h"

namespace linuxfp::sim {

LinuxTestbed::LinuxTestbed(const ScenarioConfig& config)
    : config_(config), kernel_("dut") {
  kernel_.add_phys_dev("eth0");
  kern::NetDevice& eth1 = kernel_.add_phys_dev("eth1");
  eth1.set_phys_tx([this](net::Packet&&) { ++forwarded_; });
  kernel_.dev_by_name("eth0")->set_phys_tx([](net::Packet&&) {});

  run("ip link set eth0 up");
  run("ip link set eth1 up");
  run("ip addr add 10.10.1.1/24 dev eth0");
  run("ip addr add 10.10.2.1/24 dev eth1");
  run("sysctl -w net.ipv4.ip_forward=1");

  src_mac_ = net::MacAddr::from_id(0x501);
  gw_mac_ = net::MacAddr::from_id(0x502);
  run("ip neigh add 10.10.1.2 lladdr " + src_mac_.to_string() +
      " dev eth0 nud permanent");
  run("ip neigh add 10.10.2.2 lladdr " + gw_mac_.to_string() +
      " dev eth1 nud permanent");

  for (int i = 0; i < config_.prefixes; ++i) {
    run("ip route add 10." + std::to_string(100 + (i % 150)) + "." +
        std::to_string(i / 150) + ".0/24 via 10.10.2.2 dev eth1");
  }

  // The compiled classifier must be enabled before the blacklist loads so
  // each rule is an O(1) incremental append instead of a rebuild — the same
  // ordering a production restore (iptables-restore) would use.
  if (config_.rule_classifier) kernel_.netfilter().set_classifier_enabled(true);

  // Virtual-gateway filtering: a blacklist of source addresses
  // (paper §VI-A1, "100 rules blocking a blacklist of IP addresses").
  // Addresses walk 10.66.0.0/15 so mega-ruleset scenarios (up to ~128k
  // entries) stay valid; the first 62500 match the paper's original 10.66/16
  // layout exactly.
  if (config_.filter_rules > 0) {
    if (config_.use_ipset) {
      // Size the set to the scenario: mega-ruleset configs exceed the
      // kernel-default 65536 maxelem.
      std::string create = "ipset create blacklist hash:ip";
      if (static_cast<std::size_t>(config_.filter_rules) >
          kern::kIpSetDefaultMaxElem) {
        create += " maxelem " + std::to_string(config_.filter_rules);
      }
      run(create);
      for (int i = 0; i < config_.filter_rules; ++i) {
        run("ipset add blacklist " + blacklist_address(i));
      }
      run("iptables -A FORWARD -m set --match-set blacklist src -j DROP");
    } else {
      for (int i = 0; i < config_.filter_rules; ++i) {
        run("iptables -A FORWARD -s " + blacklist_address(i) + " -j DROP");
      }
    }
  }

  ingress_ifindex_ = kernel_.dev_by_name("eth0")->ifindex();
  eth0_mac_ = kernel_.dev_by_name("eth0")->mac();

  // Arm the fault schedule before the controller's first deploy so startup
  // itself is exposed to the faults; the scenario's own configuration
  // commands above always ran cleanly.
  if (!config_.fault_schedule.empty()) {
    util::FaultInjector& fi = util::FaultInjector::global();
    fi.arm(config_.fault_seed);
    auto st = fi.install_schedule(config_.fault_schedule);
    LFP_CHECK_MSG(st.ok(), "bad fault schedule: " + config_.fault_schedule);
    faults_armed_ = true;
  }

  if (config_.accel != Accel::kNone) {
    core::ControllerOptions opts;
    opts.hook = config_.accel == Accel::kLinuxFpTc ? "tc" : "xdp";
    opts.chain = config_.chain;
    opts.flow_cache = config_.flow_cache;
    opts.exec_engine = config_.exec_engine;
    opts.guard = config_.guard;
    controller_ = std::make_unique<core::Controller>(kernel_, opts);
    controller_->start();
  }
}

LinuxTestbed::~LinuxTestbed() {
  if (faults_armed_) util::FaultInjector::global().disarm();
  kernel_.set_trace_ring(nullptr);
}

void LinuxTestbed::enable_tracing(std::size_t capacity) {
  trace_ring_ = std::make_unique<util::TraceRing>(capacity);
  kernel_.set_trace_ring(trace_ring_.get());
}

void LinuxTestbed::disable_tracing() {
  kernel_.set_trace_ring(nullptr);
  trace_ring_.reset();
}

util::Json LinuxTestbed::latest_trace_json() const {
  if (!trace_ring_ || trace_ring_->empty()) return util::Json(nullptr);
  return trace_ring_->latest().to_json();
}

std::string LinuxTestbed::name() const {
  std::string suffix = config_.rule_classifier ? " +clf" : "";
  switch (config_.accel) {
    case Accel::kNone:
      return (config_.use_ipset ? "Linux (ipset)" : "Linux") + suffix;
    case Accel::kLinuxFpXdp:
      return (config_.use_ipset ? "LinuxFP (ipset)" : "LinuxFP") + suffix;
    case Accel::kLinuxFpTc:
      return "LinuxFP (tc)" + suffix;
  }
  return "?";
}

void LinuxTestbed::run(const std::string& command) {
  auto st = kern::run_command(kernel_, command);
  LFP_CHECK_MSG(st.ok(), "testbed command failed: " + command);
  if (controller_) controller_->run_once();
}

util::Status LinuxTestbed::try_run(const std::string& command) {
  auto st = kern::run_command(kernel_, command);
  if (controller_) controller_->run_once();
  return st;
}

core::Reaction LinuxTestbed::step_time(std::uint64_t delta_ns) {
  kernel_.set_now_ns(kernel_.now_ns() + delta_ns);
  if (!controller_) return core::Reaction{};
  return controller_->run_once();
}

ProcessOutcome LinuxTestbed::process(net::Packet&& pkt) {
  ProcessOutcome out;
  std::uint64_t before = forwarded_;
  kern::CycleTrace trace;
  auto summary = kernel_.rx(ingress_ifindex_, std::move(pkt), trace);
  out.cycles = trace.total();
  out.forwarded = forwarded_ > before;
  out.dropped_by_policy = summary.drop == kern::Drop::kPolicy ||
                          summary.drop == kern::Drop::kXdpDrop ||
                          summary.drop == kern::Drop::kTcDrop;
  out.fast_path = summary.fast_path;
  return out;
}

net::Packet LinuxTestbed::forward_packet(int prefix_index, std::uint16_t flow,
                                         std::size_t frame_len) const {
  net::FlowKey f;
  f.src_ip = net::Ipv4Addr::parse("10.10.1.2").value();
  f.dst_ip = net::Ipv4Addr::from_octets(
      10, static_cast<std::uint8_t>(100 + (prefix_index % 150)),
      static_cast<std::uint8_t>(prefix_index / 150), 9);
  f.proto = net::kIpProtoUdp;
  f.src_port = static_cast<std::uint16_t>(1024 + flow);
  f.dst_port = 7;
  return net::build_udp_packet(src_mac_, eth0_mac_, f, frame_len);
}

net::Packet LinuxTestbed::forward_tcp_segment(int prefix_index,
                                              std::uint16_t flow,
                                              std::size_t frame_len,
                                              std::uint32_t seq,
                                              std::uint16_t ip_id) const {
  net::FlowKey f;
  f.src_ip = net::Ipv4Addr::parse("10.10.1.2").value();
  f.dst_ip = net::Ipv4Addr::from_octets(
      10, static_cast<std::uint8_t>(100 + (prefix_index % 150)),
      static_cast<std::uint8_t>(prefix_index / 150), 9);
  f.proto = net::kIpProtoTcp;
  f.src_port = static_cast<std::uint16_t>(1024 + flow);
  f.dst_port = 80;
  net::Packet pkt =
      net::build_tcp_packet(src_mac_, eth0_mac_, f, /*flags=*/0x18, frame_len);
  net::Ipv4View ip(pkt.data() + net::kEthHdrLen);
  ip.set_id(ip_id);
  ip.update_checksum();
  net::TcpView tcp(pkt.data() + net::kEthHdrLen + net::kIpv4HdrLen);
  tcp.set_seq(seq);
  return pkt;
}

std::string LinuxTestbed::blacklist_address(int entry) {
  return "10." + std::to_string(66 + (entry / 250) / 250) + "." +
         std::to_string((entry / 250) % 250) + "." +
         std::to_string(1 + entry % 250);
}

net::Packet LinuxTestbed::blacklisted_packet(int entry,
                                             std::uint16_t flow) const {
  net::FlowKey f;
  f.src_ip = net::Ipv4Addr::from_octets(
      10, static_cast<std::uint8_t>(66 + (entry / 250) / 250),
      static_cast<std::uint8_t>((entry / 250) % 250),
      static_cast<std::uint8_t>(1 + entry % 250));
  f.dst_ip = net::Ipv4Addr::parse("10.100.0.9").value();
  f.proto = net::kIpProtoUdp;
  f.src_port = static_cast<std::uint16_t>(1024 + flow);
  f.dst_port = 7;
  return net::build_udp_packet(src_mac_, eth0_mac_, f, 64);
}

}  // namespace linuxfp::sim
