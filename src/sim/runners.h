// Measurement runners.
//
// ThroughputRunner models the Pktgen experiments: packets are sprayed across
// `cores` RX queues by RSS on the flow hash; each core's capacity follows
// from the mean measured per-packet cycle cost of the packets it actually
// processed (the code really runs); aggregate throughput is capped by the
// 25 Gbps line rate including Ethernet framing overhead.
//
// RrLatencyRunner models the netperf TCP_RR experiments: a closed-loop
// discrete-event simulation with S concurrent sessions, a single FIFO
// service core on the DUT (per the paper's single-core latency setup), and
// measured per-direction service times with multiplicative jitter.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/dut.h"
#include "sim/testbed.h"
#include "util/rng.h"
#include "util/stats.h"

namespace linuxfp::sim {

struct ThroughputResult {
  double total_pps = 0;
  double total_bps = 0;           // wire bits/s including framing
  bool line_rate_limited = false;
  double mean_cycles_per_pkt = 0;
  std::vector<double> per_core_pps;
  double fast_path_fraction = 0;
};

class ThroughputRunner {
 public:
  using PacketFactory = std::function<net::Packet(std::uint64_t index)>;

  ThroughputRunner(double nic_bps = 25e9, std::uint64_t samples = 4000)
      : nic_bps_(nic_bps), samples_(samples) {}

  ThroughputResult run(DeviceUnderTest& dut, const PacketFactory& factory,
                       int cores, std::size_t frame_len) const;

 private:
  double nic_bps_;
  std::uint64_t samples_;
};

struct RrConfig {
  int sessions = 128;       // parallel netperf sessions (paper §VI-A1)
  int transactions = 4000;  // total RR transactions to simulate
  // Fixed endpoint + wire component of the RTT (client/server stacks, PCIe,
  // interrupt moderation), microseconds.
  double base_rtt_us = 26.0;
  // Multiplicative lognormal jitter on each service time (cache pressure,
  // SMIs, softirq interference).
  double jitter_sigma = 0.28;
  // Extra per-packet cycles charged to full-stack (non-fast-path) packets
  // under concurrent load: sk_buff allocator and cache-line contention that
  // the single-packet cost model cannot see. Calibrated against Table III
  // (see EXPERIMENTS.md).
  std::uint64_t slowpath_contention_cycles = 700;
  // Server hiccups (softirq steal, timer interrupts, SMIs): with this
  // probability per service, the server stalls for an exponential duration.
  // Because every in-flight transaction queues behind the stall, hiccups
  // produce the correlated tail that gives netperf its p99/stddev character.
  double hiccup_per_service = 0.0004;
  double hiccup_mean_us = 110.0;
  std::uint64_t seed = 42;
};

struct RrResult {
  util::SampleSet rtt_us;
  double transactions_per_second = 0;
};

class RrLatencyRunner {
 public:
  explicit RrLatencyRunner(RrConfig config = {}) : config_(config) {}

  // `request` builds the i-th session's request packet (client->server
  // direction through the DUT); `response` the reverse.
  RrResult run(DeviceUnderTest& dut,
               const std::function<net::Packet(int session)>& request,
               const std::function<net::Packet(int session)>& response) const;

 private:
  RrConfig config_;
};

}  // namespace linuxfp::sim
