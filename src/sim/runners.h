// Measurement runners.
//
// ThroughputRunner models the Pktgen experiments: packets are sprayed across
// `cores` RX queues by RSS on the flow hash; each core's capacity follows
// from the mean measured per-packet cycle cost of the packets it actually
// processed (the code really runs); aggregate throughput is capped by the
// 25 Gbps line rate including Ethernet framing overhead.
//
// RrLatencyRunner models the netperf TCP_RR experiments: a closed-loop
// discrete-event simulation with S concurrent sessions, a single FIFO
// service core on the DUT (per the paper's single-core latency setup), and
// measured per-direction service times with multiplicative jitter.
//
// QueueScalingRunner drives the real parallel engine (engine/engine.h):
// packets flow through RSS -> per-queue workers -> slow-path funnel on actual
// threads; aggregate throughput is then modeled from each queue's measured
// fast-path cycle cost, capped by the single slow-path thread's capacity and
// by line rate.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "engine/engine.h"
#include "sim/dut.h"
#include "sim/testbed.h"
#include "util/rng.h"
#include "util/stats.h"

namespace linuxfp::sim {

struct ThroughputResult {
  double total_pps = 0;
  double total_bps = 0;           // wire bits/s including framing
  bool line_rate_limited = false;
  double mean_cycles_per_pkt = 0;
  std::vector<double> per_core_pps;
  double fast_path_fraction = 0;
};

class ThroughputRunner {
 public:
  using PacketFactory = std::function<net::Packet(std::uint64_t index)>;

  ThroughputRunner(double nic_bps = 25e9, std::uint64_t samples = 4000)
      : nic_bps_(nic_bps), samples_(samples) {}

  ThroughputResult run(DeviceUnderTest& dut, const PacketFactory& factory,
                       int cores, std::size_t frame_len) const;

 private:
  double nic_bps_;
  std::uint64_t samples_;
};

struct QueueScalingResult {
  unsigned queues = 0;
  double total_pps = 0;
  double total_bps = 0;            // wire bits/s including framing
  bool line_rate_limited = false;
  bool slow_path_limited = false;  // single slow thread was the bottleneck
  std::vector<double> per_queue_pps;    // each queue's standalone capacity
  std::vector<double> per_queue_share;  // fraction of traffic RSS steered to it
  double mean_fast_cycles = 0;     // driver + XDP, averaged over all queues
  double mean_slow_cycles = 0;     // stack cycles per slow-path packet
  double fast_path_fraction = 0;   // verdict settled without the stack
  std::uint64_t processed = 0;
  std::uint64_t slow_processed = 0;
};

// Runs the engine's worker pool for real (threads, rings, per-CPU VMs) over
// `samples` generated packets, then models sustained throughput from the
// measured per-queue costs. RSS pins each flow to one queue, so at offered
// rate R queue q absorbs R * share_q and saturates at capacity_q; the
// system sustains
//   R = min over queues of (capacity_q / share_q)
// further capped by the single slow-path thread ((cpu_hz / mean slow
// cycles) / slow fraction) and by line rate. Under uniform traffic this is
// N x single-queue capacity (near-linear scaling); under Zipf skew the
// elephant queue's share throttles R no matter how many workers idle.
// Backpressure mode is used so every sample is processed and the cycle means
// are exact — the drop regime is the tail-drop engine tests' concern.
class QueueScalingRunner {
 public:
  using PacketFactory = std::function<net::Packet(std::uint64_t index)>;

  QueueScalingRunner(double nic_bps = 25e9, std::uint64_t samples = 4000)
      : nic_bps_(nic_bps), samples_(samples) {}

  // `steering` (default: all off) enables the engine's adaptive steering —
  // the Zipf-recovery benchmark passes SteeringConfig::adaptive() here.
  QueueScalingResult run(kern::Kernel& kernel, int ingress_ifindex,
                         const PacketFactory& factory, unsigned queues,
                         const engine::SteeringConfig& steering = {}) const;

 private:
  double nic_bps_;
  std::uint64_t samples_;
};

struct ForwardingOptions {
  unsigned queues = 8;
  engine::TxConfig tx;   // burst=1 is the per-packet-doorbell leg
  engine::GroConfig gro;
};

struct ForwardingResult {
  unsigned queues = 0;
  double total_pps = 0;
  double total_bps = 0;  // wire bits/s including framing
  bool line_rate_limited = false;
  bool slow_path_limited = false;  // slow thread (stack + TX drain) bound
  // True packets-in/packets-out: injected at eth0 vs frames that left a
  // physical device (DevStats tx_packets delta over the run).
  std::uint64_t packets_in = 0;
  std::uint64_t packets_out = 0;
  std::uint64_t tx_transmitted = 0;  // left via the TX rings (fast path)
  std::uint64_t descriptors = 0;
  std::uint64_t doorbells = 0;
  std::uint64_t gro_coalesced = 0;
  std::uint64_t gro_superpackets = 0;
  double mean_fast_cycles = 0;      // worker-side driver + XDP per packet
  double slow_thread_cycles = 0;    // stack + GRO + TX drain, per injected
  double fast_path_fraction = 0;
  std::uint64_t slow_processed = 0;  // wire packets through the stack
};

// The closed-loop forwarding harness (DESIGN.md §16): drives the full
// RX engine -> fast path -> TX engine pipeline on real threads — packets in
// at eth0, frames out at a physical egress — then models sustained
// throughput from the measured per-thread cycle budgets:
//   R = min over queues of (worker capacity_q / share_q),
//       capped by the slow thread, which serializes the stack traversal of
//       kPass traffic AND the TX-ring drains/doorbells of fast-path egress:
//       slow_cap = cpu_hz * packets_in / slow_thread_cycles_total,
//       and by line rate on the probe's wire size.
// Unlike QueueScalingRunner this makes TX cost visible: at burst=1 every
// packet pays the doorbell MMIO on the TX drain thread; at burst=64 the
// doorbell amortizes and the bottleneck moves back to the workers.
class ForwardingRunner {
 public:
  using PacketFactory = std::function<net::Packet(std::uint64_t index)>;

  ForwardingRunner(double nic_bps = 25e9, std::uint64_t samples = 4000)
      : nic_bps_(nic_bps), samples_(samples) {}

  ForwardingResult run(kern::Kernel& kernel, int ingress_ifindex,
                       const PacketFactory& factory,
                       const ForwardingOptions& opts) const;

 private:
  double nic_bps_;
  std::uint64_t samples_;
};

struct RrConfig {
  int sessions = 128;       // parallel netperf sessions (paper §VI-A1)
  int transactions = 4000;  // total RR transactions to simulate
  // Fixed endpoint + wire component of the RTT (client/server stacks, PCIe,
  // interrupt moderation), microseconds.
  double base_rtt_us = 26.0;
  // Multiplicative lognormal jitter on each service time (cache pressure,
  // SMIs, softirq interference).
  double jitter_sigma = 0.28;
  // Extra per-packet cycles charged to full-stack (non-fast-path) packets
  // under concurrent load: sk_buff allocator and cache-line contention that
  // the single-packet cost model cannot see. Calibrated against Table III
  // (see EXPERIMENTS.md).
  std::uint64_t slowpath_contention_cycles = 700;
  // Server hiccups (softirq steal, timer interrupts, SMIs): with this
  // probability per service, the server stalls for an exponential duration.
  // Because every in-flight transaction queues behind the stall, hiccups
  // produce the correlated tail that gives netperf its p99/stddev character.
  double hiccup_per_service = 0.0004;
  double hiccup_mean_us = 110.0;
  std::uint64_t seed = 42;
};

struct RrResult {
  util::SampleSet rtt_us;
  double transactions_per_second = 0;
};

class RrLatencyRunner {
 public:
  explicit RrLatencyRunner(RrConfig config = {}) : config_(config) {}

  // `request` builds the i-th session's request packet (client->server
  // direction through the DUT); `response` the reverse.
  RrResult run(DeviceUnderTest& dut,
               const std::function<net::Packet(int session)>& request,
               const std::function<net::Packet(int session)>& response) const;

 private:
  RrConfig config_;
};

}  // namespace linuxfp::sim
