// Device-under-test abstraction: every platform (Linux, LinuxFP, Polycube,
// VPP) exposes per-packet processing with cycle accounting so the throughput
// and latency runners can compare them uniformly — the three-node line
// topology of the paper's evaluation with the middle box abstracted.
#pragma once

#include <cstdint>
#include <string>

#include "net/packet.h"

namespace linuxfp::sim {

struct ProcessOutcome {
  std::uint64_t cycles = 0;
  bool forwarded = false;  // reached the egress wire
  bool dropped_by_policy = false;
  bool fast_path = false;
};

class DeviceUnderTest {
 public:
  virtual ~DeviceUnderTest() = default;

  virtual std::string name() const = 0;

  // Processes one packet arriving on the ingress link.
  virtual ProcessOutcome process(net::Packet&& pkt) = 0;

  // Busy-polling platforms (VPP/DPDK) consume their cores entirely and
  // amortize per-packet costs over vector batches.
  virtual bool busy_poll() const { return false; }

  // CPU frequency for cycle->time conversion.
  virtual double cpu_hz() const = 0;
};

}  // namespace linuxfp::sim
