#include "baselines/vpp/vpp.h"

#include "util/strings.h"

namespace linuxfp::vpp {

VppRouter::VppRouter() {
  // Node costs calibrated so single-core 64 B forwarding lands near
  // 3 Mpps at vector=256 (the paper shows VPP well above the eBPF
  // platforms), dominated by per-packet work once vectors amortize.
  nodes_ = {
      {"dpdk-input", 120, 2600},
      {"ethernet-input", 90, 1400},
      {"ip4-lookup", 170, 2300},
      {"ip4-rewrite", 130, 1300},
      {"interface-output", 110, 1400},
  };
}

util::Status VppRouter::cli(const std::string& command) {
  auto t = util::split_ws(command);
  auto usage = [&](const char* what) {
    return util::Error::make("vpp.usage", std::string("vppctl usage: ") + what);
  };
  // set interface ip address <dev> <ip/len>
  if (t.size() >= 6 && t[0] == "set" && t[1] == "interface" && t[2] == "ip" &&
      t[3] == "address") {
    auto addr = net::IfAddr::parse(t[5]);
    if (!addr.ok()) return addr.error();
    int index = static_cast<int>(interfaces_.size()) + 1;
    interfaces_.push_back(
        {t[4], index, addr.value(),
         net::MacAddr::from_id(static_cast<std::uint32_t>(0x770000 + index))});
    kern::Route r;
    r.dst = addr->subnet();
    r.oif = index;
    r.scope = kern::RouteScope::kLink;
    fib_.add_route(r);
    return {};
  }
  // ip route add <prefix> via <ip>
  if (t.size() >= 6 && t[0] == "ip" && t[1] == "route" && t[2] == "add" &&
      t[4] == "via") {
    auto prefix = net::Ipv4Prefix::parse(t[3]);
    if (!prefix.ok()) return prefix.error();
    auto gw = net::Ipv4Addr::parse(t[5]);
    if (!gw.ok()) return gw.error();
    // Egress interface: the one whose subnet contains the gateway.
    int oif = 0;
    for (const Interface& itf : interfaces_) {
      if (itf.addr.subnet().contains(gw.value())) oif = itf.index;
    }
    if (oif == 0) return util::Error::make("vpp.route", "gateway unreachable");
    kern::Route r;
    r.dst = prefix.value();
    r.gateway = gw.value();
    r.oif = oif;
    fib_.add_route(r);
    return {};
  }
  // set ip neighbor <dev> <ip> <mac>
  if (t.size() >= 6 && t[0] == "set" && t[1] == "ip" && t[2] == "neighbor") {
    auto ip = net::Ipv4Addr::parse(t[4]);
    auto mac = net::MacAddr::parse(t[5]);
    if (!ip.ok()) return ip.error();
    if (!mac.ok()) return mac.error();
    int index = 0;
    for (const Interface& itf : interfaces_) {
      if (itf.name == t[3]) index = itf.index;
    }
    if (index == 0) return util::Error::make("vpp.dev", "no such interface");
    neighbors_.push_back({ip.value(), mac.value(), index});
    return {};
  }
  // acl add deny src <prefix>
  if (t.size() >= 5 && t[0] == "acl" && t[1] == "add" && t[2] == "deny" &&
      t[3] == "src") {
    auto prefix = net::Ipv4Prefix::parse(t[4]);
    if (!prefix.ok()) return prefix.error();
    if (acl_deny_src_.empty()) {
      // The acl-plugin inserts one classification node; cost is independent
      // of rule count (tuple-space matching).
      nodes_.insert(nodes_.begin() + 2, NodeCost{"acl-plugin", 160, 1800});
    }
    acl_deny_src_.push_back(prefix.value());
    return {};
  }
  return usage(command.c_str());
}

sim::ProcessOutcome VppRouter::process(net::Packet&& pkt) {
  sim::ProcessOutcome out;
  out.fast_path = true;  // there is no slow path at all: bypass pipeline

  std::uint64_t cycles = 0;
  auto charge = [&](const NodeCost& node) {
    cycles += node.per_packet + node.per_vector / vector_size_;
  };

  // dpdk-input + ethernet-input always run.
  charge(nodes_[0]);
  charge(nodes_[1]);

  auto parsed = net::parse_packet(pkt);
  if (!parsed || !parsed->has_ipv4) {
    out.cycles = cycles;
    return out;  // punted to... nothing; VPP drops unknown traffic
  }

  // ACL node (if configured).
  std::size_t node_index = 2;
  if (!acl_deny_src_.empty()) {
    charge(nodes_[node_index++]);
    for (const net::Ipv4Prefix& p : acl_deny_src_) {
      if (p.contains(parsed->ip_src)) {
        out.cycles = cycles;
        out.dropped_by_policy = true;
        return out;
      }
    }
  }

  // ip4-lookup against VPP's own FIB.
  charge(nodes_[node_index++]);
  auto hit = fib_.lookup(parsed->ip_dst);
  if (!hit) {
    out.cycles = cycles;
    return out;
  }

  // ip4-rewrite: resolve the neighbour from VPP's adjacency table.
  charge(nodes_[node_index++]);
  const Neighbor* adj = nullptr;
  for (const Neighbor& n : neighbors_) {
    if (n.ip == hit->next_hop) adj = &n;
  }
  if (!adj) {
    out.cycles = cycles;
    return out;
  }
  net::EthernetView eth(pkt.data());
  for (const Interface& itf : interfaces_) {
    if (itf.index == hit->route.oif) eth.set_src(itf.mac);
  }
  eth.set_dst(adj->mac);
  net::Ipv4View ip(pkt.data() + parsed->l3_offset);
  ip.decrement_ttl();

  // interface-output.
  charge(nodes_[node_index]);
  out.cycles = cycles;
  out.forwarded = true;
  return out;
}

}  // namespace linuxfp::vpp
