// VPP-like baseline (paper §II-B, v23.10 comparator): a user-space vector
// packet processor over kernel-bypass I/O.
//
// Architectural contrasts modeled:
//  1. Kernel bypass: packets never touch the Linux stack — no skb, no
//     netfilter, no kernel FIB; VPP keeps its OWN tables configured through
//     its OWN CLI ("set interface ip address", "ip route add", ...).
//  2. Vector processing: the graph nodes amortize per-node fixed costs over
//     batches of packets, the source of VPP's throughput lead (Fig 5/7).
//  3. Busy polling: each configured worker core spins at 100% regardless of
//     load (paper: "requires it to dedicate the configured number of cores
//     entirely to VPP").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kernel/fib.h"
#include "net/headers.h"
#include "sim/dut.h"
#include "util/result.h"

namespace linuxfp::vpp {

// One graph node's cost envelope.
struct NodeCost {
  const char* name;
  std::uint64_t per_packet;
  std::uint64_t per_vector;  // amortized over the vector size
};

class VppRouter : public sim::DeviceUnderTest {
 public:
  VppRouter();

  // --- vppctl-style CLI ----------------------------------------------------
  //   set interface ip address <dev> <ip/len>
  //   ip route add <prefix> via <ip>
  //   set ip neighbor <dev> <ip> <mac>
  //   acl add deny src <prefix>
  util::Status cli(const std::string& command);

  std::string name() const override { return "VPP"; }
  sim::ProcessOutcome process(net::Packet&& pkt) override;
  bool busy_poll() const override { return true; }
  double cpu_hz() const override { return cpu_hz_; }

  void set_vector_size(std::uint32_t n) { vector_size_ = n; }
  std::uint32_t vector_size() const { return vector_size_; }

  const std::vector<NodeCost>& graph_nodes() const { return nodes_; }

 private:
  struct Interface {
    std::string name;
    int index;
    net::IfAddr addr;
    net::MacAddr mac;
  };
  struct Neighbor {
    net::Ipv4Addr ip;
    net::MacAddr mac;
    int if_index;
  };

  double cpu_hz_ = 2.4e9;
  std::uint32_t vector_size_ = 256;
  std::vector<NodeCost> nodes_;
  std::vector<Interface> interfaces_;
  std::vector<Neighbor> neighbors_;
  kern::Fib fib_;  // VPP's own FIB instance, not the kernel's
  std::vector<net::Ipv4Prefix> acl_deny_src_;
};

}  // namespace linuxfp::vpp
