#include "baselines/polycube/polycube.h"

#include <cstring>

#include "ebpf/builder.h"
#include "ebpf/kernel_helpers.h"
#include "util/logging.h"
#include "util/strings.h"

namespace linuxfp::pcn {

using namespace ebpf;  // NOLINT: codegen reads much better unqualified

namespace {
// Dispatcher prog-array slots for the cube chain.
constexpr std::uint32_t kSlotParser = 1;
constexpr std::uint32_t kSlotFirewall = 2;
constexpr std::uint32_t kSlotRouter = 3;

// Generic (non-specialized) cube code carries feature checks for every
// capability whether configured or not — VLAN, tunnels, NAT, stats — which
// LinuxFP's synthesis elides. Modeled as a block of ALU/branch filler whose
// size is calibrated against the paper's LinuxFP-vs-Polycube delta (§VI-B).
constexpr int kGenericFeatureChecks = 40;

void emit_generic_overhead(ProgramBuilder& b, int checks) {
  b.new_scope();
  for (int i = 0; i < checks; ++i) {
    b.mov(kR3, i);
    b.and_(kR3, 0x7);
    b.jeq(kR3, 0x9, b.scoped("skip" + std::to_string(i)));  // never taken
    b.label(b.scoped("skip" + std::to_string(i)));
  }
}

void emit_prologue(ProgramBuilder& b) {
  b.mov_reg(kR6, kR1);
  b.ldx(kR7, kR6, kCtxData, MemSize::kU64);
  b.ldx(kR8, kR6, kCtxDataEnd, MemSize::kU64);
  b.mov_reg(kR2, kR7);
  b.add(kR2, 14);
  b.jgt_reg(kR2, kR8, "punt");
  b.ldx(kR2, kR7, 0, MemSize::kU8);
  b.and_(kR2, 0x01);
  b.jne(kR2, 0, "punt");
}

void emit_tail_call(ProgramBuilder& b, std::uint32_t slot) {
  b.mov_reg(kR1, kR6);
  b.mov(kR2, 0);  // the attachment's dispatcher prog array is map id 0
  b.mov(kR3, slot);
  b.call(kHelperTailCall);
  b.ja("punt");  // miss: fall back to the Linux stack
}

void emit_epilogue(ProgramBuilder& b) {
  b.label("punt");
  b.ret(kActPass);
  b.label("drop");
  b.ret(kActDrop);
}
}  // namespace

PolycubeRouter::PolycubeRouter(kern::Kernel& kernel) : kernel_(kernel) {
  register_all_helpers(helpers_, kernel_.cost());
  attachment_ = std::make_unique<Attachment>("polycube", HookType::kXdp,
                                             kernel_, helpers_);
  attachment_->enable_dispatcher();

  // Polycube's mirrored state maps.
  route_map_ = attachment_->maps().create("pcn_routes", MapType::kLpmTrie, 8,
                                          8, 1024);
  neigh_map_ =
      attachment_->maps().create("pcn_neigh", MapType::kHash, 4, 16, 1024);
  fw_map_ = attachment_->maps().create("pcn_fw", MapType::kHash, 4, 4, 4096);

  // Attach to every physical device (cube ports are added via the CLI, but
  // the hook is in place from the start).
  for (kern::NetDevice* dev : kernel_.devices()) {
    if (dev->kind() == kern::DevKind::kPhysical) {
      auto st = attach_to_device(kernel_, dev->name(), HookType::kXdp,
                                 attachment_.get());
      LFP_CHECK(st.ok());
      if (ingress_ifindex_ == 0) ingress_ifindex_ = dev->ifindex();
    }
  }
  rebuild_pipeline();
}

util::Status PolycubeRouter::cli(const std::string& command) {
  auto t = util::split_ws(command);
  auto usage = [&](const char* what) {
    return util::Error::make("pcn.usage", std::string("pcn usage: ") + what);
  };
  if (t.size() < 3 || t[0] != "pcn") return usage("pcn <cube> ...");

  if (t[1] == "router" && t[2] == "port" && t.size() >= 6 && t[3] == "add") {
    kern::NetDevice* dev = kernel_.dev_by_name(t[4]);
    if (!dev) return util::Error::make("pcn.dev", "no such device: " + t[4]);
    auto addr = net::IfAddr::parse(t[5]);
    if (!addr.ok()) return addr.error();
    ports_.push_back({dev->ifindex(), addr->addr, dev->mac()});
    // Connected subnet: next hop 0 marks "destination is on-link".
    routes_.push_back({addr->subnet(), net::Ipv4Addr()});
    return sync_route_map();
  }
  if (t[1] == "router" && t[2] == "route" && t.size() >= 5 && t[3] == "add") {
    auto prefix = net::Ipv4Prefix::parse(t[4]);
    if (!prefix.ok()) return prefix.error();
    auto next_hop = net::Ipv4Addr::parse(t[5]);
    if (!next_hop.ok()) return next_hop.error();
    routes_.push_back({prefix.value(), next_hop.value()});
    return sync_route_map();
  }
  if (t[1] == "router" && t[2] == "route" && t.size() >= 5 && t[3] == "del") {
    auto prefix = net::Ipv4Prefix::parse(t[4]);
    if (!prefix.ok()) return prefix.error();
    for (auto it = routes_.begin(); it != routes_.end(); ++it) {
      if (it->prefix == prefix.value()) {
        routes_.erase(it);
        return sync_route_map();
      }
    }
    return util::Error::make("pcn.route", "no such route");
  }
  if (t[1] == "router" && t[2] == "neigh" && t.size() >= 7 && t[3] == "add") {
    auto ip = net::Ipv4Addr::parse(t[4]);
    auto mac = net::MacAddr::parse(t[5]);
    kern::NetDevice* dev = kernel_.dev_by_name(t[6]);
    if (!ip.ok()) return ip.error();
    if (!mac.ok()) return mac.error();
    if (!dev) return util::Error::make("pcn.dev", "no such device: " + t[6]);
    neighbors_.push_back({ip.value(), mac.value(), dev->ifindex()});
    return sync_route_map();
  }
  if (t[1] == "firewall" && t[2] == "rule" && t.size() >= 7 && t[3] == "add" &&
      t[4] == "src" && t[6] == "action") {
    auto prefix = net::Ipv4Prefix::parse(t[5]);
    if (!prefix.ok()) return prefix.error();
    if (prefix->prefix_len() != 32) {
      return util::Error::make("pcn.fw", "this model supports /32 sources");
    }
    fw_drop_src_.push_back(prefix.value());
    bool was_enabled = fw_enabled_;
    fw_enabled_ = true;
    auto st = sync_route_map();
    if (!st.ok()) return st;
    if (!was_enabled) rebuild_pipeline();  // chain gains the firewall cube
    return {};
  }
  return usage(command.c_str());
}

util::Status PolycubeRouter::sync_route_map() {
  Map* routes = attachment_->maps().get(route_map_);
  Map* neigh = attachment_->maps().get(neigh_map_);
  Map* fw = attachment_->maps().get(fw_map_);

  // Full re-mirror (Polycube's control plane owns these maps outright).
  routes->clear();
  neigh->clear();
  fw->clear();
  for (const RouteEntry& r : routes_) {
    std::uint8_t key[8];
    std::uint32_t plen = r.prefix.prefix_len();
    std::uint32_t addr = r.prefix.network().value();
    std::memcpy(key, &plen, 4);
    std::memcpy(key + 4, &addr, 4);
    std::uint8_t value[8] = {0};
    std::uint32_t nh = r.next_hop.value();
    std::memcpy(value, &nh, 4);
    auto st = routes->update(key, value);
    if (!st.ok()) return st;
  }
  for (const NeighEntryP& n : neighbors_) {
    std::uint32_t key = n.ip.value();
    std::uint8_t value[16] = {0};
    std::memcpy(value, n.mac.bytes().data(), 6);
    // Source MAC: the egress port's MAC.
    for (const PortEntry& p : ports_) {
      if (p.ifindex == n.ifindex) {
        std::memcpy(value + 6, p.mac.bytes().data(), 6);
      }
    }
    std::uint32_t oif = static_cast<std::uint32_t>(n.ifindex);
    std::memcpy(value + 12, &oif, 4);
    auto st = neigh->update(reinterpret_cast<std::uint8_t*>(&key), value);
    if (!st.ok()) return st;
  }
  for (const net::Ipv4Prefix& p : fw_drop_src_) {
    std::uint32_t key = p.network().value();
    std::uint32_t action = 1;  // DROP
    auto st = fw->update(reinterpret_cast<std::uint8_t*>(&key),
                         reinterpret_cast<std::uint8_t*>(&action));
    if (!st.ok()) return st;
  }
  return {};
}

void PolycubeRouter::rebuild_pipeline() {
  // --- parser cube -----------------------------------------------------------
  ProgramBuilder parser("pcn_parser", HookType::kXdp);
  emit_prologue(parser);
  emit_generic_overhead(parser, kGenericFeatureChecks);
  emit_tail_call(parser, fw_enabled_ ? kSlotFirewall : kSlotRouter);
  emit_epilogue(parser);

  // --- firewall cube (efficient classification: hash probe, rule-count
  // independent — Polycube adopts a better algorithm than iptables [34]) ----
  Program fw_prog;
  {
    ProgramBuilder b("pcn_firewall", HookType::kXdp);
    emit_prologue(b);
    emit_generic_overhead(b, kGenericFeatureChecks / 2);
    b.ldx(kR2, kR7, 12, MemSize::kU16);
    b.be16(kR2);
    b.jne(kR2, 0x0800, "punt");
    b.mov_reg(kR2, kR7);
    b.add(kR2, 34);
    b.jgt_reg(kR2, kR8, "punt");
    // key = src ip
    b.mov_reg(kR9, kR10);
    b.add(kR9, -8);
    b.ldx(kR2, kR7, 26, MemSize::kU32);
    b.be32(kR2);
    b.stx(kR9, 0, kR2, MemSize::kU32);
    b.mov(kR1, fw_map_);
    b.mov_reg(kR2, kR9);
    b.call(kHelperMapLookup);
    b.jeq(kR0, 0, b.scoped("pass"));
    b.ldx(kR3, kR0, 0, MemSize::kU32);
    b.jeq(kR3, 1, "drop");
    b.label(b.scoped("pass"));
    emit_tail_call(b, kSlotRouter);
    emit_epilogue(b);
    auto built = b.build();
    LFP_CHECK(built.ok());
    fw_prog = std::move(built).take();
  }

  // --- router cube -------------------------------------------------------------
  ProgramBuilder r("pcn_router", HookType::kXdp);
  emit_prologue(r);
  emit_generic_overhead(r, kGenericFeatureChecks);
  r.ldx(kR2, kR7, 12, MemSize::kU16);
  r.be16(kR2);
  r.jne(kR2, 0x0800, "punt");
  r.mov_reg(kR2, kR7);
  r.add(kR2, 34);
  r.jgt_reg(kR2, kR8, "punt");
  r.ldx(kR2, kR7, 14, MemSize::kU8);
  r.jne(kR2, 0x45, "punt");
  r.ldx(kR2, kR7, 20, MemSize::kU16);
  r.be16(kR2);
  r.and_(kR2, 0x3fff);
  r.jne(kR2, 0, "punt");
  r.ldx(kR2, kR7, 22, MemSize::kU8);
  r.jle(kR2, 1, "punt");
  // LPM key {plen=32, dst} at r10-16.
  r.mov_reg(kR9, kR10);
  r.add(kR9, -16);
  r.st(kR9, 0, 32, MemSize::kU32);
  r.ldx(kR2, kR7, 30, MemSize::kU32);
  r.be32(kR2);
  r.stx(kR9, 4, kR2, MemSize::kU32);
  r.mov(kR1, route_map_);
  r.mov_reg(kR2, kR9);
  r.call(kHelperMapLookup);
  r.jeq(kR0, 0, "punt");
  // next_hop (0 => on-link: use dst itself).
  r.ldx(kR3, kR0, 0, MemSize::kU32);
  r.jne(kR3, 0, r.scoped("have_nh"));
  r.ldx(kR3, kR9, 4, MemSize::kU32);
  r.label(r.scoped("have_nh"));
  // neigh key at r10-24.
  r.mov_reg(kR9, kR10);
  r.add(kR9, -24);
  r.stx(kR9, 0, kR3, MemSize::kU32);
  r.mov(kR1, neigh_map_);
  r.mov_reg(kR2, kR9);
  r.call(kHelperMapLookup);
  r.jeq(kR0, 0, "punt");
  r.mov_reg(kR9, kR0);  // save neigh value pointer
  // Rewrite MACs from the mirrored neighbour entry.
  r.ldx(kR2, kR9, 0, MemSize::kU32);
  r.stx(kR7, 0, kR2, MemSize::kU32);
  r.ldx(kR2, kR9, 4, MemSize::kU16);
  r.stx(kR7, 4, kR2, MemSize::kU16);
  r.ldx(kR2, kR9, 6, MemSize::kU32);
  r.stx(kR7, 6, kR2, MemSize::kU32);
  r.ldx(kR2, kR9, 10, MemSize::kU16);
  r.stx(kR7, 10, kR2, MemSize::kU16);
  // TTL decrement + checksum fix.
  r.ldx(kR2, kR7, 22, MemSize::kU8);
  r.sub(kR2, 1);
  r.stx(kR7, 22, kR2, MemSize::kU8);
  r.ldx(kR2, kR7, 24, MemSize::kU16);
  r.be16(kR2);
  r.add(kR2, 0x0100);
  r.mov_reg(kR3, kR2);
  r.rsh(kR3, 16);
  r.add_reg(kR2, kR3);
  r.and_(kR2, 0xffff);
  r.be16(kR2);
  r.stx(kR7, 24, kR2, MemSize::kU16);
  r.ldx(kR1, kR9, 12, MemSize::kU32);
  r.call(kHelperRedirect);
  r.exit();
  emit_epilogue(r);

  auto parser_prog = parser.build();
  auto router_prog = r.build();
  LFP_CHECK(parser_prog.ok());
  LFP_CHECK(router_prog.ok());

  auto parser_id = attachment_->load(std::move(parser_prog).take());
  auto fw_id = attachment_->load(std::move(fw_prog));
  auto router_id = attachment_->load(std::move(router_prog).take());
  LFP_CHECK_MSG(parser_id.ok(), "polycube parser rejected: " +
                                    (parser_id.ok() ? "" : parser_id.error().message));
  LFP_CHECK_MSG(fw_id.ok(), "polycube firewall rejected: " +
                                (fw_id.ok() ? "" : fw_id.error().message));
  LFP_CHECK_MSG(router_id.ok(), "polycube router rejected: " +
                                    (router_id.ok() ? "" : router_id.error().message));

  Map* prog_array = attachment_->maps().get(0);
  LFP_CHECK(prog_array->set_prog(kSlotParser, parser_id.value()).ok());
  LFP_CHECK(prog_array->set_prog(kSlotFirewall, fw_id.value()).ok());
  LFP_CHECK(prog_array->set_prog(kSlotRouter, router_id.value()).ok());
  LFP_CHECK(attachment_->swap(parser_id.value()).ok());
}

std::size_t PolycubeRouter::route_map_entries() const {
  return const_cast<PolycubeRouter*>(this)
      ->attachment_->maps()
      .get(route_map_)
      ->size();
}

sim::ProcessOutcome PolycubeRouter::process(net::Packet&& pkt) {
  sim::ProcessOutcome out;
  std::uint64_t redirects = attachment_->stats().redirect;
  std::uint64_t drops = attachment_->stats().drop;
  kern::CycleTrace trace;
  auto summary = kernel_.rx(ingress_ifindex_, std::move(pkt), trace);
  out.cycles = trace.total();
  out.fast_path = summary.fast_path;
  out.forwarded = attachment_->stats().redirect > redirects;
  out.dropped_by_policy = attachment_->stats().drop > drops;
  return out;
}

}  // namespace linuxfp::pcn
