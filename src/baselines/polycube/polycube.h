// Polycube-like baseline platform (paper §II-B, v0.9.0 comparator).
//
// Architectural contrasts with LinuxFP, all modeled here:
//  1. Custom control plane + CLI ("pcn ..."): configuration does NOT come
//     from Linux; the kernel's own tables are ignored.
//  2. State lives in eBPF maps owned by the platform (LPM route map,
//     neighbour hash, port array), mirrored from ITS control plane only —
//     so kernel-side changes are invisible until the operator reconfigures
//     Polycube (the coherence ablation measures exactly this).
//  3. Cubes (modules) are generic, not configuration-specialized, and are
//     chained with tail calls (paper §VI-B attributes the LinuxFP/Polycube
//     performance delta to these implementation choices).
//
// The data plane is real bytecode executed by the same VM at the same XDP
// hook; only the state-access pattern differs.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ebpf/loader.h"
#include "kernel/kernel.h"
#include "sim/dut.h"
#include "util/result.h"

namespace linuxfp::pcn {

class PolycubeRouter : public sim::DeviceUnderTest {
 public:
  // Attaches the Polycube pipeline to both physical devices of the DUT
  // kernel. The kernel still owns devices/links; Polycube ignores its FIB.
  explicit PolycubeRouter(kern::Kernel& kernel);

  // --- pcn CLI (custom management interface) -----------------------------
  //   pcn router port add <dev> <ip/prefix>
  //   pcn router route add <prefix> <nexthop>
  //   pcn router route del <prefix>
  //   pcn router neigh add <ip> <mac> <dev>
  //   pcn firewall rule add src <prefix> action DROP
  //   pcn firewall rule del src <prefix>
  util::Status cli(const std::string& command);

  std::string name() const override { return "Polycube"; }
  sim::ProcessOutcome process(net::Packet&& pkt) override;
  double cpu_hz() const override { return kernel_.cost().cpu_hz; }

  std::size_t route_map_entries() const;
  ebpf::Attachment& attachment() { return *attachment_; }

 private:
  void rebuild_pipeline();
  util::Status sync_route_map();

  struct RouteEntry {
    net::Ipv4Prefix prefix;
    net::Ipv4Addr next_hop;
  };
  struct NeighEntryP {
    net::Ipv4Addr ip;
    net::MacAddr mac;
    int ifindex;
  };
  struct PortEntry {
    int ifindex;
    net::Ipv4Addr ip;
    net::MacAddr mac;
  };

  kern::Kernel& kernel_;
  ebpf::HelperRegistry helpers_;
  std::unique_ptr<ebpf::Attachment> attachment_;
  int ingress_ifindex_ = 0;

  // Control-plane state (mirrored into maps by sync_route_map).
  std::vector<RouteEntry> routes_;
  std::vector<NeighEntryP> neighbors_;
  std::vector<PortEntry> ports_;
  std::vector<net::Ipv4Prefix> fw_drop_src_;
  bool fw_enabled_ = false;

  // Map ids within the attachment.
  std::uint32_t route_map_ = 0;
  std::uint32_t neigh_map_ = 0;
  std::uint32_t fw_map_ = 0;
  std::uint64_t forwarded_ = 0;
};

}  // namespace linuxfp::pcn
