// Pod-to-pod latency model.
//
// netperf TCP_RR between containers measures milliseconds, not the
// microseconds the raw datapath costs: the RTT is dominated by process
// wakeups, scheduler latency and interrupt moderation — amplification the
// per-packet cycle model cannot produce directly. We model
//
//   RTT = base + amplification * datapath_time + crossing_penalty * hops
//
// where `hops` counts physical-underlay crossings (NIC interrupt moderation
// applies per crossing, which is what separates the paper's intra ~9.7 ms
// from inter ~29 ms rows). base/amplification/crossing are calibrated
// against the paper's two *Linux* rows only (see EXPERIMENTS.md); the
// LinuxFP rows then FOLLOW from the measured cycle reduction, which is the
// claim under test.
#pragma once

#include <cstdint>

#include "util/rng.h"
#include "util/stats.h"

namespace linuxfp::k8s {

struct PodLatencyModel {
  double cpu_hz = 2.4e9;
  // Fixed per-transaction overhead: two scheduler wakeups with timer slack +
  // netperf bookkeeping (ms).
  double base_ms = 1.2;
  // Each datapath millisecond costs this many RTT milliseconds end-to-end
  // (softirq->process handoffs, wakeup chains along the path).
  double amplification = 1240.0;
  // Per physical-underlay crossing: NIC interrupt moderation + PCIe +
  // inter-node wire (ms).
  double crossing_ms = 5.9;
  // Lognormal jitter on each transaction.
  double jitter_sigma = 0.20;

  double mean_rtt_ms(std::uint64_t datapath_cycles, int crossings = 0) const {
    double datapath_ms = static_cast<double>(datapath_cycles) / cpu_hz * 1e3;
    return base_ms + amplification * datapath_ms + crossing_ms * crossings;
  }

  // Simulates `n` transactions with jitter; returns RTT samples in ms.
  util::SampleSet sample_rtts(std::uint64_t datapath_cycles, int crossings,
                              int n, std::uint64_t seed) const {
    util::SampleSet out;
    util::Rng rng(seed);
    double mean = mean_rtt_ms(datapath_cycles, crossings);
    for (int i = 0; i < n; ++i) {
      out.add(mean * rng.next_lognormal(0.0, jitter_sigma));
    }
    return out;
  }
};

}  // namespace linuxfp::k8s
