// Kubernetes cluster simulation with a Flannel-style VXLAN CNI
// (paper §VI-A2): one primary and N worker nodes, pods in their own network
// namespaces (Kernel instances) wired to the per-node cni0 bridge via veth
// pairs, inter-node pod traffic VXLAN-encapsulated over the underlay.
//
// Everything is configured through the standard tool front-ends — exactly
// what Flannel's flanneld + the kubelet do on a real node — so the LinuxFP
// controller accelerates the plugin unmodified (the paper's headline
// transparency demonstration).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/controller.h"
#include "kernel/commands.h"
#include "kernel/kernel.h"
#include "net/headers.h"

namespace linuxfp::k8s {

struct PodRef {
  int node = 0;
  int index = 0;
  net::Ipv4Addr ip;
};

class Cluster {
 public:
  // worker_nodes excludes the primary (node 0), mirroring the paper's
  // 3-node cluster = 1 primary + 2 workers.
  explicit Cluster(int worker_nodes = 2);
  ~Cluster();

  int node_count() const { return static_cast<int>(nodes_.size()); }
  kern::Kernel& node(int i) { return *nodes_[static_cast<std::size_t>(i)]->host; }
  kern::Kernel& pod_kernel(const PodRef& ref);

  // Schedules a pod onto a node; plumbs veth + bridge + address + routes
  // (what the CNI plugin binary does on ADD).
  PodRef launch_pod(int node);

  // CNI DEL: removes the pod's veth plumbing; controllers react to the
  // withdrawn port.
  void delete_pod(const PodRef& ref);

  // Deploys a LinuxFP controller per node (TC hook, bridge-port attach —
  // paper: "The LinuxFP synthesized data plane is attached to the tc hook").
  void enable_linuxfp();
  bool linuxfp_enabled() const { return !controllers_.empty(); }
  core::Controller* controller(int node);

  // Runs one TCP_RR transaction between two pods, returning the total
  // datapath cycles spent across every kernel on the round trip.
  struct RrOutcome {
    std::uint64_t cycles = 0;
    // Physical-underlay wire crossings (0 intra-node, 2 inter-node when
    // warm); each adds NIC/interrupt-moderation latency in the RTT model.
    int underlay_crossings = 0;
    bool completed = false;
  };
  RrOutcome run_rr_transaction(const PodRef& client, const PodRef& server,
                               std::size_t request_bytes = 64,
                               std::size_t response_bytes = 64);

  // Warms ARP/FDB state along the path (first transactions take slow-path
  // resolution detours, as in reality).
  void warm_path(const PodRef& client, const PodRef& server);

  static constexpr std::uint16_t kRrPort = 12865;  // netperf control port

 private:
  struct Node {
    std::unique_ptr<kern::Kernel> host;
    std::vector<std::unique_ptr<kern::Kernel>> pods;
    int pod_count = 0;
    net::Ipv4Addr underlay_ip;
  };

  void run_on(kern::Kernel& k, const std::string& cmd);
  void wire_underlay();
  int node_of_mac(const net::MacAddr& mac) const;

  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<core::Controller>> controllers_;
  // Trace threaded through underlay wire crossings (single-threaded sim).
  kern::CycleTrace* active_trace_ = nullptr;
  int crossings_ = 0;
  bool rr_response_seen_ = false;
};

}  // namespace linuxfp::k8s
