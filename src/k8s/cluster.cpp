#include "k8s/cluster.h"

#include "util/logging.h"

namespace linuxfp::k8s {

namespace {
std::string pod_subnet(int node) {
  return "10.244." + std::to_string(node) + ".0/24";
}
std::string cni_gw(int node) {
  return "10.244." + std::to_string(node) + ".1";
}
std::string underlay(int node) {
  return "192.168.0." + std::to_string(10 + node);
}
}  // namespace

void Cluster::run_on(kern::Kernel& k, const std::string& cmd) {
  auto st = kern::run_command(k, cmd);
  LFP_CHECK_MSG(st.ok(), "cluster command failed: " + cmd + " (" +
                             st.error().message + ")");
}

Cluster::Cluster(int worker_nodes) {
  int total = worker_nodes + 1;
  for (int i = 0; i < total; ++i) {
    auto node = std::make_unique<Node>();
    node->host = std::make_unique<kern::Kernel>("node" + std::to_string(i));
    node->underlay_ip = net::Ipv4Addr::parse(underlay(i)).value();
    kern::Kernel& k = *node->host;

    k.add_phys_dev("ens0");
    run_on(k, "ip link set ens0 up");
    run_on(k, "ip addr add " + underlay(i) + "/24 dev ens0");
    run_on(k, "sysctl -w net.ipv4.ip_forward=1");
    run_on(k, "sysctl -w net.bridge.bridge-nf-call-iptables=1");

    // cni0 bridge with the node's pod-subnet gateway address.
    run_on(k, "ip link add cni0 type bridge");
    run_on(k, "ip link set cni0 up");
    run_on(k, "ip addr add " + cni_gw(i) + "/24 dev cni0");

    // flannel.1 VTEP.
    k.add_vxlan_dev("flannel.1", 1, node->underlay_ip,
                    k.dev_by_name("ens0")->ifindex());
    run_on(k, "ip link set flannel.1 up");
    // flannel assigns the VTEP the .0 address of the node's pod subnet.
    run_on(k, "ip addr add 10.244." + std::to_string(i) + ".0/32 dev flannel.1");

    // kube-proxy programs service/NAT bookkeeping chains that every
    // forwarded packet scans before flannel's cluster-CIDR ACCEPTs; a real
    // worker node carries dozens of such rules plus conntrack.
    run_on(k, "iptables -N KUBE-SERVICES");
    for (int svc = 0; svc < 24; ++svc) {
      run_on(k, "iptables -A KUBE-SERVICES -d 10.96." +
                    std::to_string(svc / 8) + "." + std::to_string(svc % 8) +
                    " -p tcp --dport " + std::to_string(30000 + svc) +
                    " -j ACCEPT");
    }
    run_on(k, "iptables -A FORWARD -j KUBE-SERVICES");
    // Flannel's conservative FORWARD policy for the cluster CIDR.
    run_on(k, "iptables -A FORWARD -s 10.244.0.0/16 -j ACCEPT");
    run_on(k, "iptables -A FORWARD -d 10.244.0.0/16 -j ACCEPT");
    k.set_conntrack_enabled(true);

    nodes_.push_back(std::move(node));
  }

  // Flannel overlay wiring: routes + static ARP + VTEP FDB toward every
  // remote node (what flanneld programs from its subnet leases).
  for (int i = 0; i < total; ++i) {
    kern::Kernel& k = *nodes_[static_cast<std::size_t>(i)]->host;
    for (int j = 0; j < total; ++j) {
      if (i == j) continue;
      kern::Kernel& peer = *nodes_[static_cast<std::size_t>(j)]->host;
      std::string remote_vtep_mac =
          peer.dev_by_name("flannel.1")->mac().to_string();
      std::string remote_ens_mac = peer.dev_by_name("ens0")->mac().to_string();
      run_on(k, "ip route add " + pod_subnet(j) + " via 10.244." +
                    std::to_string(j) + ".0 dev flannel.1");
      run_on(k, "ip neigh add 10.244." + std::to_string(j) + ".0 lladdr " +
                    remote_vtep_mac + " dev flannel.1 nud permanent");
      run_on(k, "bridge fdb append " + remote_vtep_mac +
                    " dev flannel.1 dst " + underlay(j));
      run_on(k, "ip neigh add " + underlay(j) + " lladdr " + remote_ens_mac +
                    " dev ens0 nud permanent");
    }
  }
  wire_underlay();
}

Cluster::~Cluster() = default;

int Cluster::node_of_mac(const net::MacAddr& mac) const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i]->host->dev_by_name("ens0")->mac() == mac) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

void Cluster::wire_underlay() {
  // The underlay switch: delivery by destination MAC. The active trace is
  // threaded through so a transaction's cycle cost spans nodes.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    kern::Kernel& k = *nodes_[i]->host;
    k.dev_by_name("ens0")->set_phys_tx([this](net::Packet&& pkt) {
      net::EthernetView eth(pkt.data());
      int target = node_of_mac(eth.dst());
      if (target < 0) return;  // no such host on the segment
      kern::Kernel& peer = *nodes_[static_cast<std::size_t>(target)]->host;
      LFP_CHECK(active_trace_ != nullptr);
      ++crossings_;
      peer.rx(peer.dev_by_name("ens0")->ifindex(), std::move(pkt),
              *active_trace_);
    });
  }
}

PodRef Cluster::launch_pod(int node_index) {
  Node& node = *nodes_[static_cast<std::size_t>(node_index)];
  kern::Kernel& host = *node.host;
  int k = node.pod_count++;

  auto pod = std::make_unique<kern::Kernel>(
      "pod-" + std::to_string(node_index) + "-" + std::to_string(k));
  std::string host_veth = "veth" + std::to_string(k);
  host.add_veth_to(host_veth, *pod, "eth0");
  run_on(host, "ip link set " + host_veth + " up");
  run_on(host, "ip link set " + host_veth + " master cni0");

  std::string pod_ip = "10.244." + std::to_string(node_index) + "." +
                       std::to_string(10 + k);
  run_on(*pod, "ip link set eth0 up");
  run_on(*pod, "ip addr add " + pod_ip + "/24 dev eth0");
  run_on(*pod, "ip route add default via " + cni_gw(node_index) + " dev eth0");

  PodRef ref;
  ref.node = node_index;
  ref.index = k;
  ref.ip = net::Ipv4Addr::parse(pod_ip).value();
  node.pods.push_back(std::move(pod));

  if (!controllers_.empty()) {
    // New veth port: the per-node controller reacts (as the real daemon
    // does when kubelet plumbs a pod).
    for (auto& ctl : controllers_) ctl->run_once();
  }
  return ref;
}

void Cluster::delete_pod(const PodRef& ref) {
  kern::Kernel& host = *nodes_[static_cast<std::size_t>(ref.node)]->host;
  std::string host_veth = "veth" + std::to_string(ref.index);
  run_on(host, "ip link del " + host_veth);
  // The pod kernel stays allocated (its veth peer is gone) — like a pod in
  // Terminating state; we only care about the host-side plumbing.
  if (!controllers_.empty()) {
    for (auto& ctl : controllers_) ctl->run_once();
  }
}

kern::Kernel& Cluster::pod_kernel(const PodRef& ref) {
  return *nodes_[static_cast<std::size_t>(ref.node)]
              ->pods[static_cast<std::size_t>(ref.index)];
}

void Cluster::enable_linuxfp() {
  LFP_CHECK(controllers_.empty());
  for (auto& node : nodes_) {
    core::ControllerOptions opts;
    opts.hook = "tc";
    opts.attach_physical = true;
    opts.attach_bridge_ports = true;
    opts.attach_overlay = true;
    auto ctl = std::make_unique<core::Controller>(*node->host, opts);
    ctl->start();
    controllers_.push_back(std::move(ctl));
  }
}

core::Controller* Cluster::controller(int node) {
  return controllers_.empty()
             ? nullptr
             : controllers_[static_cast<std::size_t>(node)].get();
}

void Cluster::warm_path(const PodRef& client, const PodRef& server) {
  for (int i = 0; i < 3; ++i) {
    run_rr_transaction(client, server);
    if (!controllers_.empty()) {
      for (auto& ctl : controllers_) ctl->run_once();
    }
  }
}

Cluster::RrOutcome Cluster::run_rr_transaction(const PodRef& client,
                                               const PodRef& server,
                                               std::size_t request_bytes,
                                               std::size_t response_bytes) {
  kern::Kernel& client_k = pod_kernel(client);
  kern::Kernel& server_k = pod_kernel(server);

  // Server application: answers a request with a response (netserver).
  server_k.register_l4_handler(
      net::kIpProtoTcp, kRrPort,
      [this, response_bytes](kern::Kernel& kernel,
                             const net::ParsedPacket& info,
                             const net::Packet&, kern::CycleTrace& trace) {
        trace.charge("pod_app", kernel.cost().process_wakeup);
        net::FlowKey back;
        back.src_ip = info.ip_dst;
        back.dst_ip = info.ip_src;
        back.proto = net::kIpProtoTcp;
        back.src_port = info.dst_port;
        back.dst_port = info.src_port;
        net::Packet response = net::build_tcp_packet(
            kernel.dev_by_name("eth0")->mac(), net::MacAddr::zero(), back,
            /*flags=*/0x18 /* PSH|ACK */,
            net::kEthHdrLen + net::kIpv4HdrLen + net::kTcpHdrLen +
                response_bytes);
        kernel.send_ip_packet(std::move(response), trace);
      });

  // Client application: notes the response arrival.
  rr_response_seen_ = false;
  client_k.register_l4_handler(
      net::kIpProtoTcp, 40000,
      [this](kern::Kernel& kernel, const net::ParsedPacket&,
             const net::Packet&, kern::CycleTrace& trace) {
        trace.charge("pod_app", kernel.cost().process_wakeup);
        rr_response_seen_ = true;
      });

  kern::CycleTrace trace;
  active_trace_ = &trace;
  crossings_ = 0;
  net::FlowKey flow;
  flow.src_ip = client.ip;
  flow.dst_ip = server.ip;
  flow.proto = net::kIpProtoTcp;
  flow.src_port = 40000;
  flow.dst_port = kRrPort;
  net::Packet request = net::build_tcp_packet(
      client_k.dev_by_name("eth0")->mac(), net::MacAddr::zero(), flow,
      /*flags=*/0x18,
      net::kEthHdrLen + net::kIpv4HdrLen + net::kTcpHdrLen + request_bytes);
  client_k.send_ip_packet(std::move(request), trace);
  active_trace_ = nullptr;

  RrOutcome outcome;
  outcome.cycles = trace.total();
  outcome.underlay_crossings = crossings_;
  outcome.completed = rr_response_seen_;
  return outcome;
}

}  // namespace linuxfp::k8s
