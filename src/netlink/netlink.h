// A netlink-like message bus between the (simulated) kernel and user-space
// controllers.
//
// Mirrors the two ways real netlink is used by the paper's Service
// Introspection component (§IV-C1):
//   1. dump requests at startup (RTM_GETLINK, RTM_GETROUTE, ...) answered
//      synchronously by the kernel, and
//   2. multicast notification groups (RTNLGRP_LINK, RTNLGRP_IPV4_ROUTE, ...)
//      delivered asynchronously to subscribers on configuration changes.
//
// Messages carry their attributes as a JSON object: this stands in for the
// TLV attribute encoding of real netlink while keeping messages
// self-describing and directly consumable by the TopologyManager.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/json.h"

namespace linuxfp::nl {

// Message types, matching the rtnetlink constants they model. We also define
// IPT_* types for iptables/ipset change events, which in the real system come
// from periodic libiptc polling rather than netlink; modeling them as bus
// messages keeps one introspection pipeline.
enum class MsgType {
  kNewLink,
  kDelLink,
  kNewAddr,
  kDelAddr,
  kNewRoute,
  kDelRoute,
  kNewNeigh,
  kDelNeigh,
  kNewRule,   // iptables rule appended/inserted
  kDelRule,   // iptables rule deleted / chain flushed
  kNewSet,    // ipset created or modified
  kDelSet,
  kSysctl,    // sysctl value changed (e.g. net.ipv4.ip_forward)
  kNewService,  // ipvs virtual service / backend added or changed
  kDelService,
};

const char* msg_type_name(MsgType type);

// Multicast groups a subscriber can join.
enum class Group {
  kLink,
  kAddr,
  kRoute,
  kNeigh,
  kNetfilter,
  kSysctl,
  kIpvs,
};

Group group_of(MsgType type);

struct Message {
  MsgType type;
  util::Json attrs;  // attribute object, e.g. {"ifname": "eth0", ...}
};

// Synchronous dump queries a subscriber can issue (RTM_GET* analogues).
enum class DumpKind {
  kLinks,
  kAddrs,
  kRoutes,
  kNeighbors,
  kRules,    // iptables
  kSets,     // ipsets
  kSysctls,
  kServices,  // ipvs
};

// The kernel side implements this to answer dump requests.
class DumpProvider {
 public:
  virtual ~DumpProvider() = default;
  virtual std::vector<Message> dump(DumpKind kind) const = 0;
};

// A subscriber endpoint: joined groups plus a pending-message queue, like a
// netlink socket with multicast memberships. Consumers poll with receive().
class Socket {
 public:
  void join(Group group) { groups_.push_back(group); }
  bool member_of(Group group) const;

  bool has_pending() const { return !queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }

  // Pops the oldest pending notification; returns false if none.
  bool receive(Message& out);

 private:
  friend class Bus;
  void enqueue(Message msg) { queue_.push_back(std::move(msg)); }

  std::vector<Group> groups_;
  std::deque<Message> queue_;
};

// The bus: the kernel publishes, sockets receive, dumps are answered by the
// registered provider.
class Bus {
 public:
  // The returned socket is owned by the bus (kernel-lifetime), mirroring
  // netlink sockets living in kernel memory.
  Socket* open_socket();

  void set_dump_provider(const DumpProvider* provider) {
    provider_ = provider;
  }

  // Kernel-side publish to every member socket.
  void publish(MsgType type, util::Json attrs);

  std::vector<Message> dump(DumpKind kind) const;

  std::uint64_t published_count() const { return published_; }

 private:
  std::vector<std::unique_ptr<Socket>> sockets_;
  const DumpProvider* provider_ = nullptr;
  std::uint64_t published_ = 0;
};

}  // namespace linuxfp::nl
