#include "netlink/netlink.h"

#include <algorithm>

#include "util/logging.h"

namespace linuxfp::nl {

const char* msg_type_name(MsgType type) {
  switch (type) {
    case MsgType::kNewLink: return "RTM_NEWLINK";
    case MsgType::kDelLink: return "RTM_DELLINK";
    case MsgType::kNewAddr: return "RTM_NEWADDR";
    case MsgType::kDelAddr: return "RTM_DELADDR";
    case MsgType::kNewRoute: return "RTM_NEWROUTE";
    case MsgType::kDelRoute: return "RTM_DELROUTE";
    case MsgType::kNewNeigh: return "RTM_NEWNEIGH";
    case MsgType::kDelNeigh: return "RTM_DELNEIGH";
    case MsgType::kNewRule: return "IPT_NEWRULE";
    case MsgType::kDelRule: return "IPT_DELRULE";
    case MsgType::kNewSet: return "IPSET_NEW";
    case MsgType::kDelSet: return "IPSET_DEL";
    case MsgType::kSysctl: return "SYSCTL";
    case MsgType::kNewService: return "IPVS_NEWSVC";
    case MsgType::kDelService: return "IPVS_DELSVC";
  }
  return "?";
}

Group group_of(MsgType type) {
  switch (type) {
    case MsgType::kNewLink:
    case MsgType::kDelLink:
      return Group::kLink;
    case MsgType::kNewAddr:
    case MsgType::kDelAddr:
      return Group::kAddr;
    case MsgType::kNewRoute:
    case MsgType::kDelRoute:
      return Group::kRoute;
    case MsgType::kNewNeigh:
    case MsgType::kDelNeigh:
      return Group::kNeigh;
    case MsgType::kNewRule:
    case MsgType::kDelRule:
    case MsgType::kNewSet:
    case MsgType::kDelSet:
      return Group::kNetfilter;
    case MsgType::kSysctl:
      return Group::kSysctl;
    case MsgType::kNewService:
    case MsgType::kDelService:
      return Group::kIpvs;
  }
  return Group::kLink;
}

bool Socket::member_of(Group group) const {
  return std::find(groups_.begin(), groups_.end(), group) != groups_.end();
}

bool Socket::receive(Message& out) {
  if (queue_.empty()) return false;
  out = std::move(queue_.front());
  queue_.pop_front();
  return true;
}

Socket* Bus::open_socket() {
  sockets_.push_back(std::make_unique<Socket>());
  return sockets_.back().get();
}

void Bus::publish(MsgType type, util::Json attrs) {
  ++published_;
  Group group = group_of(type);
  for (auto& sock : sockets_) {
    if (sock->member_of(group)) {
      sock->enqueue(Message{type, attrs});
    }
  }
}

std::vector<Message> Bus::dump(DumpKind kind) const {
  LFP_CHECK_MSG(provider_ != nullptr, "netlink dump without provider");
  return provider_->dump(kind);
}

}  // namespace linuxfp::nl
