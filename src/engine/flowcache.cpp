#include "engine/flowcache.h"

#include <cstring>

#include "engine/rss.h"
#include "util/logging.h"

namespace linuxfp::engine {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

FlowCache::FlowCache(std::size_t entries) {
  LFP_CHECK_MSG(entries >= kWays, "flow cache needs at least one set");
  std::size_t sets = round_up_pow2(entries / kWays);
  set_mask_ = sets - 1;
  entries_.resize(sets * kWays);
  victim_.resize(sets, 0);
}

std::size_t FlowCache::live_entries() const {
  std::size_t n = 0;
  for (const Entry& e : entries_) n += e.valid;
  return n;
}

bool FlowCache::contains(std::uint32_t rss_hash, std::uint64_t epoch) const {
  std::size_t base = set_base(rss_hash);
  for (std::size_t w = 0; w < kWays; ++w) {
    const Entry& e = entries_[base + w];
    if (e.valid && e.rss_hash == rss_hash && e.epoch == epoch) return true;
  }
  return false;
}

bool FlowCache::key_matches(const Entry& e, const net::Packet& pkt,
                            int ingress_ifindex, std::uint32_t hash) {
  if (e.rss_hash != hash || e.ingress_ifindex != ingress_ifindex ||
      e.pkt_size != pkt.size() || e.rx_queue != pkt.rx_queue ||
      e.vlan_tci != pkt.vlan_tci) {
    return false;
  }
  // Exact-match on every header byte the cached run read. Bytes the program
  // never looked at are free to differ — the verdict cannot depend on them.
  const std::uint8_t* data = pkt.data();
  std::uint64_t mask = e.read_mask;
  while (mask != 0) {
    int i = __builtin_ctzll(mask);
    if (data[i] != e.pre_bytes[static_cast<std::size_t>(i)]) return false;
    mask &= mask - 1;
  }
  return true;
}

bool FlowCache::replay_ct(const Entry& e, kern::Kernel& kernel) {
  for (const CtReplayOp& op : e.ct_ops) {
    kern::Conntrack::LookupResult r =
        op.lookup_or_create
            ? kernel.conntrack().lookup_or_create(op.key, kernel.now_ns())
            : kernel.conntrack().lookup(op.key, kernel.now_ns());
    bool found = r.entry != nullptr;
    if (found != op.expect_found) return false;
    if (!found) continue;
    std::uint8_t state =
        r.entry->state == kern::CtState::kEstablished ? 1 : 0;
    if (state != op.expect_ct_state) return false;
    if (r.is_reply_direction != op.expect_reply_dir) return false;
    bool rewrite = r.entry->dnat_addr.has_value();
    if (rewrite != op.expect_rewrite) return false;
    if (rewrite) {
      std::uint32_t addr;
      std::uint16_t port;
      if (r.is_reply_direction) {
        addr = r.entry->original.dst_ip.value();
        port = r.entry->original.dst_port;
      } else {
        addr = r.entry->dnat_addr->value();
        port = r.entry->dnat_port;
      }
      if (addr != op.expect_rewrite_addr || port != op.expect_rewrite_port) {
        return false;
      }
    }
  }
  return true;
}

void FlowCache::replay_fdb(const Entry& e, kern::Kernel& kernel) {
  for (const FdbReplayOp& op : e.fdb_ops) {
    kern::Bridge* br = kernel.bridge(op.bridge_ifindex);
    if (!br) continue;  // bridge gone would have bumped the generation
    br->fdb_learn(op.smac, op.vlan, op.port_ifindex, kernel.now_ns());
  }
}

bool FlowCache::try_hit(net::Packet& pkt, int ingress_ifindex,
                        std::uint64_t epoch, kern::Kernel& kernel, Hit* out) {
  std::uint32_t hash = rss_hash_cached(pkt);
  std::size_t base = set_base(hash);
  Entry* match = nullptr;
  for (std::size_t w = 0; w < kWays; ++w) {
    Entry& cand = entries_[base + w];
    if (cand.valid && key_matches(cand, pkt, ingress_ifindex, hash)) {
      match = &cand;
      break;
    }
  }
  if (!match) {
    ++stats_.misses;
    note(metrics_.misses);
    return false;
  }
  Entry& e = *match;
  if (e.epoch != epoch ||
      !e.gens.matches(GenVector::snapshot(kernel), e.deps)) {
    // The program was redeployed or a depended-on subsystem mutated since
    // the entry was recorded; drop it and take the full path.
    e.valid = false;
    ++stats_.invalidations;
    ++stats_.misses;
    note(metrics_.invalidations);
    note(metrics_.misses);
    return false;
  }
  if (!replay_ct(e, kernel)) {
    // The conntrack entry this flow depends on changed shape (established,
    // NAT installed, expired). The re-performed lookups had the same side
    // effects a full run's would, so falling through to the interpreter
    // keeps kernel state exact; the full run then refreshes the entry.
    e.valid = false;
    ++stats_.replay_mismatch;
    ++stats_.misses;
    note(metrics_.replay_mismatch);
    note(metrics_.misses);
    return false;
  }
  replay_fdb(e, kernel);
  // Replay the recorded header mutations (MAC rewrite, TTL decrement,
  // checksum fix, NAT rewrite...) byte by byte.
  std::uint8_t* data = pkt.data();
  std::uint64_t mask = e.write_mask;
  while (mask != 0) {
    int i = __builtin_ctzll(mask);
    data[i] = e.post_bytes[static_cast<std::size_t>(i)];
    mask &= mask - 1;
  }
  out->act = e.act;
  out->redirect_ifindex = e.redirect_ifindex;
  ++stats_.hits;
  note(metrics_.hits);
  return true;
}

void FlowCache::insert(const net::Packet& pkt, int ingress_ifindex,
                       std::uint64_t epoch, const kern::Kernel& kernel,
                       const FlowCacheRecorder& rec, std::uint64_t act,
                       int redirect_ifindex, bool cacheable) {
  if (!cacheable || rec.uncacheable()) {
    ++stats_.uncacheable;
    note(metrics_.uncacheable);
    return;
  }
  LFP_CHECK_MSG(pkt.rss_hash_valid, "flow cache insert without RSS hash");
  std::uint32_t hash = pkt.rss_hash;
  std::size_t base = set_base(hash);
  // Prefer an invalid way; otherwise rotate the set's eviction cursor so a
  // burst of new flows cannot pin one way while the others go stale.
  std::size_t way = kWays;
  for (std::size_t w = 0; w < kWays; ++w) {
    if (!entries_[base + w].valid) {
      way = w;
      break;
    }
  }
  if (way == kWays) {
    std::size_t set = hash & set_mask_;
    way = victim_[set];
    victim_[set] = static_cast<std::uint8_t>((way + 1) % kWays);
    ++stats_.evictions;
    note(metrics_.evictions);
  }
  Entry& e = entries_[base + way];
  e.valid = true;
  e.epoch = epoch;
  e.rss_hash = hash;
  e.ingress_ifindex = ingress_ifindex;
  e.pkt_size = static_cast<std::uint32_t>(pkt.size());
  e.rx_queue = pkt.rx_queue;
  e.vlan_tci = pkt.vlan_tci;
  e.deps = rec.deps();
  // Snapshot taken after the run: any mutation that raced the recorded run
  // makes the entry fail validation on first probe, never serve stale data.
  e.gens = GenVector::snapshot(kernel);
  e.read_mask = rec.read_mask();
  e.write_mask = rec.write_mask();
  e.pre_bytes = rec.pre_bytes();
  std::size_t post_len = pkt.size() < FlowCacheRecorder::kHeaderWindow
                             ? pkt.size()
                             : FlowCacheRecorder::kHeaderWindow;
  std::memcpy(e.post_bytes.data(), pkt.data(), post_len);
  e.act = act;
  e.redirect_ifindex = redirect_ifindex;
  e.ct_ops = rec.ct_ops();
  e.fdb_ops = rec.fdb_ops();
}

}  // namespace linuxfp::engine
