#include "engine/rss.h"

#include <cstring>

#include "net/headers.h"
#include "util/logging.h"

namespace linuxfp::engine {

namespace {

// The 40-byte symmetric RSS key: 0x6d5a repeated. With a periodic 2-byte key
// the Toeplitz hash of (a, b) equals the hash of (b, a) for the 4-byte
// aligned src/dst fields below, giving bidirectional flow affinity.
constexpr std::uint8_t kKeyByteHi = 0x6d;
constexpr std::uint8_t kKeyByteLo = 0x5a;
constexpr std::size_t kKeyLen = 40;

std::uint8_t key_byte(std::size_t i) {
  return (i & 1) ? kKeyByteLo : kKeyByteHi;
}

}  // namespace

std::uint32_t toeplitz_hash(const std::uint8_t* data, std::size_t len) {
  LFP_CHECK_MSG(len + 4 <= kKeyLen, "toeplitz input exceeds key window");
  // Standard bit-serial formulation: for each set input bit i, XOR in the
  // 32-bit key window starting at bit i.
  std::uint32_t result = 0;
  // 32-bit window of the key starting at the current input bit.
  std::uint32_t window = (std::uint32_t{key_byte(0)} << 24) |
                         (std::uint32_t{key_byte(1)} << 16) |
                         (std::uint32_t{key_byte(2)} << 8) |
                         std::uint32_t{key_byte(3)};
  for (std::size_t i = 0; i < len; ++i) {
    std::uint8_t byte = data[i];
    for (int bit = 7; bit >= 0; --bit) {
      if (byte & (1u << bit)) result ^= window;
      // Slide the window one bit: shift in the next key bit.
      std::size_t next_bit_index = (i + 4) * 8 + (7 - bit);
      std::uint8_t next_byte = key_byte(next_bit_index / 8);
      std::uint32_t next_bit = (next_byte >> (7 - next_bit_index % 8)) & 1u;
      window = (window << 1) | next_bit;
    }
  }
  return result;
}

RssClassifier::RssClassifier(unsigned queues) : queues_(queues) {
  LFP_CHECK_MSG(queues_ >= 1, "RSS needs at least one queue");
  for (std::size_t i = 0; i < kRetaSize; ++i) {
    reta_[i] = static_cast<unsigned>(i % queues_);
  }
}

std::uint32_t RssClassifier::hash(const net::Packet& pkt) const {
  auto parsed = net::parse_packet(pkt);
  if (!parsed || !parsed->has_ipv4) return 0;
  // Hash input layout follows the Microsoft RSS spec: src ip, dst ip,
  // src port, dst port (big-endian), ports only for TCP/UDP.
  std::uint8_t input[12];
  std::size_t len = 8;
  std::uint32_t src = parsed->ip_src.value();
  std::uint32_t dst = parsed->ip_dst.value();
  input[0] = static_cast<std::uint8_t>(src >> 24);
  input[1] = static_cast<std::uint8_t>(src >> 16);
  input[2] = static_cast<std::uint8_t>(src >> 8);
  input[3] = static_cast<std::uint8_t>(src);
  input[4] = static_cast<std::uint8_t>(dst >> 24);
  input[5] = static_cast<std::uint8_t>(dst >> 16);
  input[6] = static_cast<std::uint8_t>(dst >> 8);
  input[7] = static_cast<std::uint8_t>(dst);
  if (parsed->has_ports && !parsed->ip_fragment) {
    input[8] = static_cast<std::uint8_t>(parsed->src_port >> 8);
    input[9] = static_cast<std::uint8_t>(parsed->src_port);
    input[10] = static_cast<std::uint8_t>(parsed->dst_port >> 8);
    input[11] = static_cast<std::uint8_t>(parsed->dst_port);
    len = 12;
  }
  return toeplitz_hash(input, len);
}

}  // namespace linuxfp::engine
