#include "engine/rss.h"

#include <cstring>

#include "net/headers.h"
#include "util/logging.h"

namespace linuxfp::engine {

namespace {

// The Microsoft reference RSS key (mlx5/ixgbe default). Symmetry does NOT
// come from the key: a key that makes in-place Toeplitz symmetric must be
// 16-bit periodic (the 0x6d5a convention), which collapses the 32-bit hash
// image to ~2^16 values with heavy collisions between nearby flows — fatal
// for the flow cache that indexes on this hash. Instead rss_hash_of
// canonicalizes the tuple (sorts the endpoints, DPDK's symmetric_toeplitz_
// sort) and keeps the full-strength key.
constexpr std::size_t kKeyLen = 40;
constexpr std::uint8_t kRssKey[kKeyLen] = {
    0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2, 0x41, 0x67,
    0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0, 0xd0, 0xca, 0x2b, 0xcb,
    0xae, 0x7b, 0x30, 0xb4, 0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30,
    0xf2, 0x0c, 0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa};

}  // namespace

std::uint32_t toeplitz_hash(const std::uint8_t* data, std::size_t len) {
  LFP_CHECK_MSG(len + 4 <= kKeyLen, "toeplitz input exceeds key window");
  // Standard bit-serial formulation: for each set input bit i, XOR in the
  // 32-bit key window starting at bit i.
  std::uint32_t result = 0;
  // 32-bit window of the key starting at the current input bit.
  std::uint32_t window = (std::uint32_t{kRssKey[0]} << 24) |
                         (std::uint32_t{kRssKey[1]} << 16) |
                         (std::uint32_t{kRssKey[2]} << 8) |
                         std::uint32_t{kRssKey[3]};
  for (std::size_t i = 0; i < len; ++i) {
    std::uint8_t byte = data[i];
    for (int bit = 7; bit >= 0; --bit) {
      if (byte & (1u << bit)) result ^= window;
      // Slide the window one bit: shift in the next key bit.
      std::size_t next_bit_index = (i + 4) * 8 + (7 - bit);
      std::uint8_t next_byte = kRssKey[next_bit_index / 8];
      std::uint32_t next_bit = (next_byte >> (7 - next_bit_index % 8)) & 1u;
      window = (window << 1) | next_bit;
    }
  }
  return result;
}

RssClassifier::RssClassifier(unsigned queues)
    : queues_(queues), excluded_(queues) {
  LFP_CHECK_MSG(queues_ >= 1, "RSS needs at least one queue");
  for (std::size_t i = 0; i < kRetaSize; ++i) {
    reta_[i].store(static_cast<unsigned>(i % queues_),
                   std::memory_order_relaxed);
  }
}

std::size_t RssClassifier::include_queue(unsigned q) {
  if (q >= queues_ || !excluded_[q].load(std::memory_order_relaxed)) return 0;
  excluded_[q].store(false, std::memory_order_relaxed);
  // exclude_queue only rewrote the dead queue's entries, so after recovery
  // the survivors own the whole table. Re-spread every entry round-robin
  // over the alive set so the table converges back to uniform.
  std::vector<unsigned> alive;
  for (unsigned i = 0; i < queues_; ++i) {
    if (!excluded_[i].load(std::memory_order_relaxed)) alive.push_back(i);
  }
  std::size_t rewritten = 0;
  for (std::size_t i = 0; i < kRetaSize; ++i) {
    unsigned want = alive[i % alive.size()];
    if (reta_[i].load(std::memory_order_relaxed) == want) continue;
    reta_[i].store(want, std::memory_order_relaxed);
    ++rewritten;
  }
  return rewritten;
}

bool RssClassifier::set_entry(std::size_t index, unsigned q) {
  if (index >= kRetaSize || q >= queues_ ||
      excluded_[q].load(std::memory_order_relaxed)) {
    return false;
  }
  if (reta_[index].load(std::memory_order_relaxed) == q) return false;
  reta_[index].store(q, std::memory_order_relaxed);
  return true;
}

std::size_t RssClassifier::exclude_queue(unsigned q) {
  if (q >= queues_) return 0;
  excluded_[q].store(true, std::memory_order_relaxed);
  // Survivors, in queue order; bail if excluding q would leave nothing.
  std::vector<unsigned> alive;
  for (unsigned i = 0; i < queues_; ++i) {
    if (!excluded_[i].load(std::memory_order_relaxed)) alive.push_back(i);
  }
  if (alive.empty()) {
    excluded_[q].store(false, std::memory_order_relaxed);
    return 0;
  }
  std::size_t rewritten = 0;
  std::size_t rr = 0;
  for (std::size_t i = 0; i < kRetaSize; ++i) {
    if (reta_[i].load(std::memory_order_relaxed) != q) continue;
    reta_[i].store(alive[rr++ % alive.size()], std::memory_order_relaxed);
    ++rewritten;
  }
  return rewritten;
}

std::uint32_t rss_hash_cached(net::Packet& pkt) {
  if (!pkt.rss_hash_valid) {
    pkt.rss_hash = rss_hash_of(pkt);
    pkt.rss_hash_valid = true;
  }
  return pkt.rss_hash;
}

namespace {

// Fallback flow hash for frames the IPv4 parser cannot use (ARP, LLDP,
// truncated frames): Toeplitz over the canonicalized src/dst MAC pair plus
// the ethertype. Canonicalizing the MAC order keeps the request/reply
// directions of e.g. an ARP exchange on one queue, mirroring the 5-tuple
// symmetry. Without this, all such traffic hashed to 0 and pinned to
// reta_[0]'s queue while colliding in a single flowcache set.
std::uint32_t l2_hash_of(const net::Packet& pkt) {
  const std::uint8_t* d = pkt.data();
  if (pkt.size() < 14) {
    // Not even an Ethernet header: hash whatever bytes exist.
    return toeplitz_hash(d, pkt.size());
  }
  std::uint8_t input[14];
  const std::uint8_t* dst_mac = d;
  const std::uint8_t* src_mac = d + 6;
  const std::uint8_t* lo = std::memcmp(src_mac, dst_mac, 6) <= 0 ? src_mac
                                                                 : dst_mac;
  const std::uint8_t* hi = lo == src_mac ? dst_mac : src_mac;
  std::memcpy(input, lo, 6);
  std::memcpy(input + 6, hi, 6);
  input[12] = d[12];  // ethertype, big-endian as on the wire
  input[13] = d[13];
  return toeplitz_hash(input, sizeof(input));
}

}  // namespace

std::uint32_t rss_hash_of(const net::Packet& pkt) {
  auto parsed = net::parse_packet(pkt);
  if (!parsed || !parsed->has_ipv4) return l2_hash_of(pkt);
  // Hash input layout follows the Microsoft RSS spec: src ip, dst ip,
  // src port, dst port (big-endian), ports only for TCP/UDP.
  std::uint8_t input[12];
  std::size_t len = 8;
  std::uint32_t src = parsed->ip_src.value();
  std::uint32_t dst = parsed->ip_dst.value();
  std::uint16_t sport = parsed->src_port;
  std::uint16_t dport = parsed->dst_port;
  // Canonical endpoint order (addresses and ports swapped together) makes
  // both directions of a flow hash identically without weakening the key.
  if (src > dst || (src == dst && sport > dport)) {
    std::swap(src, dst);
    std::swap(sport, dport);
  }
  input[0] = static_cast<std::uint8_t>(src >> 24);
  input[1] = static_cast<std::uint8_t>(src >> 16);
  input[2] = static_cast<std::uint8_t>(src >> 8);
  input[3] = static_cast<std::uint8_t>(src);
  input[4] = static_cast<std::uint8_t>(dst >> 24);
  input[5] = static_cast<std::uint8_t>(dst >> 16);
  input[6] = static_cast<std::uint8_t>(dst >> 8);
  input[7] = static_cast<std::uint8_t>(dst);
  if (parsed->has_ports && !parsed->ip_fragment) {
    input[8] = static_cast<std::uint8_t>(sport >> 8);
    input[9] = static_cast<std::uint8_t>(sport);
    input[10] = static_cast<std::uint8_t>(dport >> 8);
    input[11] = static_cast<std::uint8_t>(dport);
    len = 12;
  }
  return toeplitz_hash(input, len);
}

}  // namespace linuxfp::engine
