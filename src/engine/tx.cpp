#include "engine/tx.h"

#include <cstring>
#include <string>

#include "util/logging.h"

namespace linuxfp::engine {

TxEngine::TxEngine(kern::Kernel& kernel, const RssClassifier& rss,
                   TxConfig cfg, unsigned nqueues)
    : kernel_(kernel), rss_(rss), cfg_(cfg) {
  LFP_CHECK_MSG(cfg_.burst >= 1, "tx burst must be positive");
  LFP_CHECK_MSG(nqueues >= 1, "tx engine needs at least one queue");
  rings_.reserve(nqueues);
  stats_.reserve(nqueues);
  for (unsigned q = 0; q < nqueues; ++q) {
    rings_.push_back(std::make_unique<BoundedRing<TxDesc>>(cfg_.ring_depth));
    stats_.push_back(std::make_unique<StatsBlock>());
  }
}

std::uint64_t TxEngine::ring_all() {
  std::uint64_t cycles = 0;
  for (auto& [ifindex, count] : pending_) {
    if (count == 0) continue;
    cycles += kernel_.cost().tx_doorbell;
    ++doorbells_;
    count = 0;
  }
  return cycles;
}

void TxEngine::post_descriptor(kern::NetDevice& dev, std::size_t /*bytes*/,
                               kern::CycleTrace& trace) {
  trace.charge("tx_descriptor", kernel_.cost().tx_descriptor);
  ++descriptors_;
  unsigned& pending = pending_[dev.ifindex()];
  if (++pending >= cfg_.burst) {
    trace.charge("tx_doorbell", kernel_.cost().tx_doorbell);
    if (auto* t = trace.packet_trace()) t->add("tx", "doorbell", 0, dev.name());
    ++doorbells_;
    pending = 0;
  }
}

std::size_t TxEngine::drain(unsigned txq) {
  BoundedRing<TxDesc>& ring = *rings_[txq];
  TxQueueStats& st = *stats_[txq];
  TxDesc d;
  std::size_t n = 0;
  while (n < cfg_.burst && ring.try_pop(d)) {
    ++n;
    const std::size_t bytes = d.pkt.size();
    kern::NetDevice* od = kernel_.dev(d.oif);
    kern::CycleTrace trace;
    // pwru-style record for fast-path egress when tracing is on: the worker's
    // verdict already said TX/redirect, so the record starts at the TX ring;
    // count_drop() inside dev_xmit appends the drop reason in path order, so
    // a redirect naming a ghost ifindex shows up as verdict no_device —
    // never silent.
    util::PacketTrace* started = nullptr;
    if (auto* tring = kernel_.trace_ring()) {
      started = tring->begin_packet(d.oif, od ? od->name() : "?");
      started->fast_path = true;
      started->add("tx", "ring_dequeue", 0, "txq" + std::to_string(txq));
      trace.bind_packet_trace(started);
      util::set_active_packet_trace(started);
    }
    // dev_xmit is the one true egress path: DevStats, TC egress, shadow
    // capture, GSO resegmentation — and drop.no_device when the redirect
    // named a ghost ifindex (audited as bad_redirect here either way).
    kernel_.dev_xmit(d.oif, std::move(d.pkt), trace);
    if (started) {
      const char* verdict = "ok";
      for (const auto& ev : started->events) {
        if (std::strcmp(ev.layer, "verdict") == 0) verdict = ev.stage;
      }
      if (std::strcmp(verdict, "ok") == 0) started->add("verdict", "ok", 0);
      started->verdict = verdict;
      started->total_cycles = trace.total();
      trace.bind_packet_trace(nullptr);
      util::set_active_packet_trace(nullptr);
    }
    st.cycles += trace.total();
    if (od != nullptr) {
      ++st.transmitted;
      st.tx_bytes += bytes;
    } else {
      ++st.bad_redirect;
    }
  }
  if (n > 0) {
    ++st.bursts;
    if (n == cfg_.burst) ++st.full_bursts;
    // xmit_more closes at the end of the TX round: no more descriptors are
    // known to be coming right now, so ring the deferred doorbells.
    st.cycles += ring_all();
  }
  return n;
}

std::uint64_t TxEngine::flush_doorbells() {
  const std::uint64_t cycles = ring_all();
  flush_cycles_ += cycles;
  return cycles;
}

bool TxEngine::all_empty() const {
  for (const auto& r : rings_) {
    if (r->occupancy() != 0) return false;
  }
  return true;
}

}  // namespace linuxfp::engine
